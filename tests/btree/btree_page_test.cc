#include "btree/btree_page.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace oib {
namespace {

constexpr size_t kPageSize = 4096;

class BTreePageTest : public ::testing::Test {
 protected:
  BTreePageTest() : buf_(kPageSize, '\0'), page_(buf_.data(), kPageSize) {}

  std::string buf_;
  BTreePage page_;
};

TEST(CompareIndexKeyTest, OrdersByValueThenRid) {
  EXPECT_LT(CompareIndexKey("a", Rid(1, 1), "b", Rid(0, 0)), 0);
  EXPECT_GT(CompareIndexKey("b", Rid(0, 0), "a", Rid(9, 9)), 0);
  EXPECT_LT(CompareIndexKey("a", Rid(1, 1), "a", Rid(1, 2)), 0);
  EXPECT_LT(CompareIndexKey("a", Rid(1, 9), "a", Rid(2, 0)), 0);
  EXPECT_EQ(CompareIndexKey("a", Rid(1, 1), "a", Rid(1, 1)), 0);
  // Prefix ordering: "ab" > "a".
  EXPECT_GT(CompareIndexKey("ab", Rid(0, 0), "a", Rid(9, 9)), 0);
}

TEST_F(BTreePageTest, LeafInsertSortedLookup) {
  page_.Init(/*leaf=*/true, 0);
  EXPECT_TRUE(page_.is_leaf());
  EXPECT_EQ(page_.level(), 0);
  // Insert out of order at computed positions.
  for (const char* k : {"mango", "apple", "zebra", "kiwi"}) {
    int pos = page_.LowerBound(k, Rid(1, 1));
    ASSERT_TRUE(page_.InsertLeafAt(pos, k, Rid(1, 1), 0).ok());
  }
  ASSERT_EQ(page_.count(), 4);
  EXPECT_EQ(page_.KeyAt(0), "apple");
  EXPECT_EQ(page_.KeyAt(1), "kiwi");
  EXPECT_EQ(page_.KeyAt(2), "mango");
  EXPECT_EQ(page_.KeyAt(3), "zebra");
  EXPECT_EQ(page_.FindExact("mango", Rid(1, 1)), 2);
  EXPECT_EQ(page_.FindExact("mango", Rid(1, 2)), -1);
  EXPECT_EQ(page_.FindExact("grape", Rid(1, 1)), -1);
}

TEST_F(BTreePageTest, FlagsRoundTrip) {
  page_.Init(true, 0);
  ASSERT_TRUE(page_.InsertLeafAt(0, "k", Rid(3, 4), 0).ok());
  EXPECT_EQ(page_.FlagsAt(0), 0);
  page_.SetFlagsAt(0, kEntryPseudoDeleted);
  EXPECT_EQ(page_.FlagsAt(0), kEntryPseudoDeleted);
  EXPECT_EQ(page_.RidAt(0), Rid(3, 4));
  page_.SetFlagsAt(0, 0);
  EXPECT_EQ(page_.FlagsAt(0), 0);
}

TEST_F(BTreePageTest, InternalRouting) {
  page_.Init(/*leaf=*/false, 1);
  page_.set_leftmost_child(100);
  // Children: [100) "g" [200) "p" [300).
  ASSERT_TRUE(page_.InsertInternalAt(0, "g", Rid(0, 0), 200).ok());
  ASSERT_TRUE(page_.InsertInternalAt(1, "p", Rid(0, 0), 300).ok());
  EXPECT_EQ(page_.Route("a", Rid(0, 0)), 100u);
  EXPECT_EQ(page_.Route("g", Rid(0, 0)), 200u);  // exact separator
  EXPECT_EQ(page_.Route("h", Rid(5, 5)), 200u);
  EXPECT_EQ(page_.Route("p", Rid(0, 0)), 300u);
  EXPECT_EQ(page_.Route("z", Rid(0, 0)), 300u);
  EXPECT_EQ(page_.ChildAt(-1), 100u);
  EXPECT_EQ(page_.ChildAt(0), 200u);
}

TEST_F(BTreePageTest, RemoveShiftsOrder) {
  page_.Init(true, 0);
  for (int i = 0; i < 5; ++i) {
    std::string k = "k" + std::to_string(i);
    ASSERT_TRUE(
        page_.InsertLeafAt(page_.count(), k, Rid(i, 0), 0).ok());
  }
  page_.RemoveAt(2);
  ASSERT_EQ(page_.count(), 4);
  EXPECT_EQ(page_.KeyAt(2), "k3");
  EXPECT_EQ(page_.FindExact("k2", Rid(2, 0)), -1);
}

TEST_F(BTreePageTest, SerializeEntriesRoundTrip) {
  page_.Init(true, 0);
  for (int i = 0; i < 8; ++i) {
    std::string k = "key" + std::to_string(i);
    ASSERT_TRUE(page_.InsertLeafAt(page_.count(), k, Rid(i, 1),
                                   i % 2 ? kEntryPseudoDeleted : 0)
                    .ok());
  }
  std::string blob = page_.SerializeEntries(3, 8);
  page_.TruncateFrom(3);
  ASSERT_EQ(page_.count(), 3);

  std::string buf2(kPageSize, '\0');
  BTreePage other(buf2.data(), kPageSize);
  other.Init(true, 0);
  ASSERT_TRUE(other.AppendSerialized(blob).ok());
  ASSERT_EQ(other.count(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(other.KeyAt(i), "key" + std::to_string(i + 3));
    EXPECT_EQ(other.RidAt(i), Rid(i + 3, 1));
    EXPECT_EQ(other.FlagsAt(i) != 0, (i + 3) % 2 == 1);
  }
}

TEST_F(BTreePageTest, SpaceAccountingAndCompaction) {
  page_.Init(true, 0);
  std::string key(100, 'x');
  int inserted = 0;
  while (page_.HasSpaceFor(key.size())) {
    std::string k = key + std::to_string(inserted);
    ASSERT_TRUE(
        page_.InsertLeafAt(page_.count(), k, Rid(inserted, 0), 0).ok());
    ++inserted;
  }
  EXPECT_GT(inserted, 20);
  // Remove half, reinsert; compaction must reclaim the garbage.
  int removed = 0;
  for (int i = page_.count() - 1; i >= 0; i -= 2) {
    page_.RemoveAt(i);
    ++removed;
  }
  int reinserted = 0;
  while (page_.HasSpaceFor(key.size() + 2) && reinserted < removed) {
    std::string k = key + "re" + std::to_string(reinserted);
    int pos = page_.LowerBound(k, Rid(999, 0));
    ASSERT_TRUE(page_.InsertLeafAt(pos, k, Rid(999, 0), 0).ok());
    ++reinserted;
  }
  EXPECT_GE(reinserted, removed - 1);
}

TEST_F(BTreePageTest, RandomizedOracle) {
  page_.Init(true, 0);
  Random rng(31);
  std::vector<std::pair<std::string, Rid>> oracle;
  for (int step = 0; step < 1500; ++step) {
    if (rng.NextDouble() < 0.6 || oracle.empty()) {
      std::string k = rng.NextString(rng.Range(1, 24));
      Rid rid(static_cast<PageId>(rng.Uniform(100)), 0);
      if (page_.FindExact(k, rid) >= 0) continue;
      if (!page_.HasSpaceFor(k.size())) continue;
      int pos = page_.LowerBound(k, rid);
      ASSERT_TRUE(page_.InsertLeafAt(pos, k, rid, 0).ok());
      oracle.emplace_back(k, rid);
    } else {
      size_t i = rng.Uniform(oracle.size());
      int pos = page_.FindExact(oracle[i].first, oracle[i].second);
      ASSERT_GE(pos, 0);
      page_.RemoveAt(pos);
      oracle.erase(oracle.begin() + i);
    }
  }
  ASSERT_EQ(page_.count(), static_cast<int>(oracle.size()));
  std::sort(oracle.begin(), oracle.end(),
            [](const auto& a, const auto& b) {
              return CompareIndexKey(a.first, a.second, b.first, b.second) <
                     0;
            });
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(page_.KeyAt(i), oracle[i].first);
    EXPECT_EQ(page_.RidAt(i), oracle[i].second);
  }
}

}  // namespace
}  // namespace oib
