#include "btree/btree_page.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace oib {
namespace {

constexpr size_t kPageSize = 4096;

class BTreePageTest : public ::testing::Test {
 protected:
  BTreePageTest() : buf_(kPageSize, '\0'), page_(buf_.data(), kPageSize) {}

  std::string buf_;
  BTreePage page_;
};

TEST(CompareIndexKeyTest, OrdersByValueThenRid) {
  EXPECT_LT(CompareIndexKey("a", Rid(1, 1), "b", Rid(0, 0)), 0);
  EXPECT_GT(CompareIndexKey("b", Rid(0, 0), "a", Rid(9, 9)), 0);
  EXPECT_LT(CompareIndexKey("a", Rid(1, 1), "a", Rid(1, 2)), 0);
  EXPECT_LT(CompareIndexKey("a", Rid(1, 9), "a", Rid(2, 0)), 0);
  EXPECT_EQ(CompareIndexKey("a", Rid(1, 1), "a", Rid(1, 1)), 0);
  // Prefix ordering: "ab" > "a".
  EXPECT_GT(CompareIndexKey("ab", Rid(0, 0), "a", Rid(9, 9)), 0);
}

TEST_F(BTreePageTest, LeafInsertSortedLookup) {
  page_.Init(/*leaf=*/true, 0);
  EXPECT_TRUE(page_.is_leaf());
  EXPECT_EQ(page_.level(), 0);
  // Insert out of order at computed positions.
  for (const char* k : {"mango", "apple", "zebra", "kiwi"}) {
    int pos = page_.LowerBound(k, Rid(1, 1));
    ASSERT_TRUE(page_.InsertLeafAt(pos, k, Rid(1, 1), 0).ok());
  }
  ASSERT_EQ(page_.count(), 4);
  EXPECT_EQ(page_.KeyAt(0), "apple");
  EXPECT_EQ(page_.KeyAt(1), "kiwi");
  EXPECT_EQ(page_.KeyAt(2), "mango");
  EXPECT_EQ(page_.KeyAt(3), "zebra");
  EXPECT_EQ(page_.FindExact("mango", Rid(1, 1)), 2);
  EXPECT_EQ(page_.FindExact("mango", Rid(1, 2)), -1);
  EXPECT_EQ(page_.FindExact("grape", Rid(1, 1)), -1);
}

TEST_F(BTreePageTest, FlagsRoundTrip) {
  page_.Init(true, 0);
  ASSERT_TRUE(page_.InsertLeafAt(0, "k", Rid(3, 4), 0).ok());
  EXPECT_EQ(page_.FlagsAt(0), 0);
  page_.SetFlagsAt(0, kEntryPseudoDeleted);
  EXPECT_EQ(page_.FlagsAt(0), kEntryPseudoDeleted);
  EXPECT_EQ(page_.RidAt(0), Rid(3, 4));
  page_.SetFlagsAt(0, 0);
  EXPECT_EQ(page_.FlagsAt(0), 0);
}

TEST_F(BTreePageTest, InternalRouting) {
  page_.Init(/*leaf=*/false, 1);
  page_.set_leftmost_child(100);
  // Children: [100) "g" [200) "p" [300).
  ASSERT_TRUE(page_.InsertInternalAt(0, "g", Rid(0, 0), 200).ok());
  ASSERT_TRUE(page_.InsertInternalAt(1, "p", Rid(0, 0), 300).ok());
  EXPECT_EQ(page_.Route("a", Rid(0, 0)), 100u);
  EXPECT_EQ(page_.Route("g", Rid(0, 0)), 200u);  // exact separator
  EXPECT_EQ(page_.Route("h", Rid(5, 5)), 200u);
  EXPECT_EQ(page_.Route("p", Rid(0, 0)), 300u);
  EXPECT_EQ(page_.Route("z", Rid(0, 0)), 300u);
  EXPECT_EQ(page_.ChildAt(-1), 100u);
  EXPECT_EQ(page_.ChildAt(0), 200u);
}

TEST_F(BTreePageTest, RemoveShiftsOrder) {
  page_.Init(true, 0);
  for (int i = 0; i < 5; ++i) {
    std::string k = "k" + std::to_string(i);
    ASSERT_TRUE(
        page_.InsertLeafAt(page_.count(), k, Rid(i, 0), 0).ok());
  }
  page_.RemoveAt(2);
  ASSERT_EQ(page_.count(), 4);
  EXPECT_EQ(page_.KeyAt(2), "k3");
  EXPECT_EQ(page_.FindExact("k2", Rid(2, 0)), -1);
}

TEST_F(BTreePageTest, SerializeEntriesRoundTrip) {
  page_.Init(true, 0);
  for (int i = 0; i < 8; ++i) {
    std::string k = "key" + std::to_string(i);
    ASSERT_TRUE(page_.InsertLeafAt(page_.count(), k, Rid(i, 1),
                                   i % 2 ? kEntryPseudoDeleted : 0)
                    .ok());
  }
  std::string blob = page_.SerializeEntries(3, 8);
  page_.TruncateFrom(3);
  ASSERT_EQ(page_.count(), 3);

  std::string buf2(kPageSize, '\0');
  BTreePage other(buf2.data(), kPageSize);
  other.Init(true, 0);
  ASSERT_TRUE(other.AppendSerialized(blob).ok());
  ASSERT_EQ(other.count(), 5);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(other.KeyAt(i), "key" + std::to_string(i + 3));
    EXPECT_EQ(other.RidAt(i), Rid(i + 3, 1));
    EXPECT_EQ(other.FlagsAt(i) != 0, (i + 3) % 2 == 1);
  }
}

TEST_F(BTreePageTest, SpaceAccountingAndCompaction) {
  page_.Init(true, 0);
  std::string key(100, 'x');
  int inserted = 0;
  for (;;) {
    std::string k = key + std::to_string(inserted);
    if (!page_.HasSpaceFor(KeySlice(k))) break;
    ASSERT_TRUE(
        page_.InsertLeafAt(page_.count(), k, Rid(inserted, 0), 0).ok());
    ++inserted;
  }
  EXPECT_GT(inserted, 20);
  // Remove half, reinsert; compaction must reclaim the garbage.
  int removed = 0;
  for (int i = page_.count() - 1; i >= 0; i -= 2) {
    page_.RemoveAt(i);
    ++removed;
  }
  int reinserted = 0;
  while (reinserted < removed) {
    std::string k = key + "re" + std::to_string(reinserted);
    if (!page_.HasSpaceFor(KeySlice(k))) break;
    int pos = page_.LowerBound(k, Rid(999, 0));
    ASSERT_TRUE(page_.InsertLeafAt(pos, k, Rid(999, 0), 0).ok());
    ++reinserted;
  }
  EXPECT_GE(reinserted, removed - 1);
}

TEST_F(BTreePageTest, PrefixFormsAndShrinksOnDivergingInsert) {
  page_.Init(true, 0);
  // Keys sharing a long prefix: the first insert installs the whole key
  // as the page prefix; later inserts shrink it to the common part.
  ASSERT_TRUE(page_.InsertLeafAt(0, "shared/prefix/aa", Rid(1, 0), 0).ok());
  EXPECT_EQ(page_.prefix_len(), 16u);  // whole first key
  EXPECT_EQ(page_.SuffixAt(0), "");
  int pos = page_.LowerBound("shared/prefix/bb", Rid(2, 0));
  ASSERT_TRUE(page_.InsertLeafAt(pos, "shared/prefix/bb", Rid(2, 0), 0).ok());
  EXPECT_EQ(page_.prefix_len(), 14u);  // "shared/prefix/"
  EXPECT_EQ(page_.SuffixAt(0), "aa");
  EXPECT_EQ(page_.SuffixAt(1), "bb");

  // A key diverging at byte 7 cuts the prefix to "shared/"; resident
  // entries re-encode with longer suffixes but unchanged full keys.
  pos = page_.LowerBound("shared/zzz", Rid(3, 0));
  ASSERT_TRUE(page_.InsertLeafAt(pos, "shared/zzz", Rid(3, 0), 0).ok());
  EXPECT_EQ(page_.prefix_len(), 7u);
  EXPECT_EQ(page_.KeyAt(0), "shared/prefix/aa");
  EXPECT_EQ(page_.KeyAt(1), "shared/prefix/bb");
  EXPECT_EQ(page_.KeyAt(2), "shared/zzz");
  EXPECT_EQ(page_.FindExact("shared/prefix/bb", Rid(2, 0)), 1);
}

TEST_F(BTreePageTest, LeftmostInsertCanEmptyThePrefix) {
  page_.Init(true, 0);
  ASSERT_TRUE(page_.InsertLeafAt(0, "mmm1", Rid(1, 0), 0).ok());
  ASSERT_TRUE(page_.InsertLeafAt(1, "mmm2", Rid(2, 0), 0).ok());
  ASSERT_GT(page_.prefix_len(), 0u);
  // New leftmost key shares nothing with the prefix.
  int pos = page_.LowerBound("aaa", Rid(3, 0));
  ASSERT_EQ(pos, 0);
  ASSERT_TRUE(page_.InsertLeafAt(pos, "aaa", Rid(3, 0), 0).ok());
  EXPECT_EQ(page_.prefix_len(), 0u);
  EXPECT_EQ(page_.KeyAt(0), "aaa");
  EXPECT_EQ(page_.KeyAt(1), "mmm1");
  EXPECT_EQ(page_.KeyAt(2), "mmm2");
}

TEST_F(BTreePageTest, KeyEqualToPrefixStoresEmptySuffix) {
  page_.Init(true, 0);
  ASSERT_TRUE(page_.InsertLeafAt(0, "abcd", Rid(1, 0), 0).ok());
  int pos = page_.LowerBound("abc", Rid(2, 0));
  ASSERT_EQ(pos, 0);
  ASSERT_TRUE(page_.InsertLeafAt(pos, "abc", Rid(2, 0), 0).ok());
  // Prefix is "abc"; the shorter key's suffix is empty and the pair
  // still orders shorter-first.
  EXPECT_EQ(page_.prefix_len(), 3u);
  EXPECT_EQ(page_.SuffixAt(0), "");
  EXPECT_EQ(page_.SuffixAt(1), "d");
  EXPECT_EQ(page_.KeyAt(0), "abc");
  EXPECT_EQ(page_.KeyAt(1), "abcd");
  EXPECT_EQ(page_.FindExact("abc", Rid(2, 0)), 0);
  EXPECT_EQ(page_.FindExact("abcd", Rid(1, 0)), 1);
}

TEST_F(BTreePageTest, FlagsSurvivePrefixShrink) {
  page_.Init(true, 0);
  ASSERT_TRUE(page_.InsertLeafAt(0, "pp/live", Rid(1, 0), 0).ok());
  ASSERT_TRUE(page_.InsertLeafAt(
                       1, "pp/tomb", Rid(2, 0), kEntryPseudoDeleted)
                  .ok());
  ASSERT_GT(page_.prefix_len(), 0u);
  // Force a shrink to zero; the pseudo-delete flag must ride along.
  ASSERT_TRUE(page_.InsertLeafAt(0, "a", Rid(3, 0), 0).ok());
  EXPECT_EQ(page_.prefix_len(), 0u);
  EXPECT_EQ(page_.FlagsAt(0), 0);
  EXPECT_EQ(page_.FlagsAt(1), 0);
  EXPECT_EQ(page_.FlagsAt(2), kEntryPseudoDeleted);
  EXPECT_EQ(page_.RidAt(2), Rid(2, 0));
  EXPECT_EQ(page_.KeyAt(2), "pp/tomb");
}

TEST_F(BTreePageTest, EntryGrowthIsExactPhysicalCost) {
  page_.Init(true, 0);
  ASSERT_TRUE(page_.InsertLeafAt(0, "row/000", Rid(0, 0), 0).ok());
  ASSERT_TRUE(page_.InsertLeafAt(1, "row/001", Rid(1, 0), 0).ok());
  // Same-prefix insert: growth covers just the new entry + slot.
  {
    std::string k = "row/500";
    size_t growth = page_.EntryGrowth(KeySlice(k));
    size_t before = page_.FreeBytes();
    int pos = page_.LowerBound(k, Rid(5, 0));
    ASSERT_TRUE(page_.InsertLeafAt(pos, k, Rid(5, 0), 0).ok());
    EXPECT_EQ(before - page_.FreeBytes(), growth);
  }
  // Prefix-shrinking insert: growth also charges the resident suffixes'
  // expansion, and must still be exact.
  {
    std::string k = "r0";
    size_t growth = page_.EntryGrowth(KeySlice(k));
    size_t before = page_.FreeBytes();
    int pos = page_.LowerBound(k, Rid(9, 0));
    ASSERT_TRUE(page_.InsertLeafAt(pos, k, Rid(9, 0), 0).ok());
    EXPECT_EQ(before - page_.FreeBytes(), growth);
  }
}

TEST_F(BTreePageTest, SerializedBlobMovesAcrossDifferentPrefixes) {
  // Split/checkpoint blobs carry full keys, so entries must land intact
  // in a page whose resident prefix is unrelated to the source's.
  page_.Init(true, 0);
  for (int i = 0; i < 4; ++i) {
    std::string k = "left/key" + std::to_string(i);
    ASSERT_TRUE(page_.InsertLeafAt(page_.count(), k, Rid(i, 0), 0).ok());
  }
  std::string blob = page_.SerializeEntries(2, 4);

  std::string buf2(kPageSize, '\0');
  BTreePage other(buf2.data(), kPageSize);
  other.Init(true, 0);
  ASSERT_TRUE(other.InsertLeafAt(0, "XX/resident", Rid(99, 0), 0).ok());
  ASSERT_GT(other.prefix_len(), 0u);
  ASSERT_TRUE(other.AppendSerialized(blob).ok());
  ASSERT_EQ(other.count(), 3);
  EXPECT_EQ(other.KeyAt(0), "XX/resident");
  EXPECT_EQ(other.KeyAt(1), "left/key2");
  EXPECT_EQ(other.KeyAt(2), "left/key3");
  // The target's prefix shrank to the new common prefix (nothing shared).
  EXPECT_EQ(other.prefix_len(), 0u);
}

TEST_F(BTreePageTest, InternalPagePrefixTruncationRoutes) {
  page_.Init(/*leaf=*/false, 1);
  page_.set_leftmost_child(100);
  ASSERT_TRUE(page_.InsertInternalAt(0, "idx/ggg", Rid(0, 0), 200).ok());
  ASSERT_TRUE(page_.InsertInternalAt(1, "idx/ppp", Rid(0, 0), 300).ok());
  EXPECT_EQ(page_.prefix_len(), 4u);  // "idx/"
  EXPECT_EQ(page_.Route("idx/a", Rid(0, 0)), 100u);
  EXPECT_EQ(page_.Route("idx/ggg", Rid(0, 0)), 200u);
  EXPECT_EQ(page_.Route("idx/hhh", Rid(0, 0)), 200u);
  EXPECT_EQ(page_.Route("idx/zzz", Rid(0, 0)), 300u);
  // Probes outside the prefix still route correctly.
  EXPECT_EQ(page_.Route("aaa", Rid(0, 0)), 100u);
  EXPECT_EQ(page_.Route("zzz", Rid(0, 0)), 300u);
}

TEST_F(BTreePageTest, RandomizedOracle) {
  page_.Init(true, 0);
  Random rng(31);
  std::vector<std::pair<std::string, Rid>> oracle;
  for (int step = 0; step < 1500; ++step) {
    if (rng.NextDouble() < 0.6 || oracle.empty()) {
      std::string k = rng.NextString(rng.Range(1, 24));
      Rid rid(static_cast<PageId>(rng.Uniform(100)), 0);
      if (page_.FindExact(k, rid) >= 0) continue;
      if (!page_.HasSpaceFor(KeySlice(k))) continue;
      int pos = page_.LowerBound(k, rid);
      ASSERT_TRUE(page_.InsertLeafAt(pos, k, rid, 0).ok());
      oracle.emplace_back(k, rid);
    } else {
      size_t i = rng.Uniform(oracle.size());
      int pos = page_.FindExact(oracle[i].first, oracle[i].second);
      ASSERT_GE(pos, 0);
      page_.RemoveAt(pos);
      oracle.erase(oracle.begin() + i);
    }
  }
  ASSERT_EQ(page_.count(), static_cast<int>(oracle.size()));
  std::sort(oracle.begin(), oracle.end(),
            [](const auto& a, const auto& b) {
              return CompareIndexKey(a.first, a.second, b.first, b.second) <
                     0;
            });
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(page_.KeyAt(i), oracle[i].first);
    EXPECT_EQ(page_.RidAt(i), oracle[i].second);
  }
}

}  // namespace
}  // namespace oib
