#include "btree/bulk_loader.h"

#include <gtest/gtest.h>

#include "btree/tree_verifier.h"
#include "common/random.h"
#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class BulkLoaderTest : public EngineTest {
 protected:
  BTree* NewTree() {
    table_ = MakeTable();
    auto desc = engine_->catalog()->CreateIndex("idx", table_, false, {0},
                                                BuildAlgo::kSf);
    EXPECT_TRUE(desc.ok());
    index_ = desc->id;
    return engine_->catalog()->index(index_);
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    return buf;
  }

  void LoadRange(BulkLoader* loader, int from, int to) {
    for (int i = from; i < to; ++i) {
      ASSERT_OK(loader->Add(Key(i), Rid(static_cast<PageId>(i), 0)));
    }
  }

  void ExpectTreeHasExactly(BTree* tree, int n) {
    uint64_t count = 0;
    int expect = 0;
    bool ordered = true;
    ASSERT_OK(tree->ScanAll([&](std::string_view key, const Rid&, uint8_t) {
      if (key != Key(expect)) ordered = false;
      ++expect;
      ++count;
    }));
    EXPECT_TRUE(ordered);
    EXPECT_EQ(count, static_cast<uint64_t>(n));
    TreeVerifier tv(tree, engine_->pool());
    auto report = tv.Check();
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->ok) << report->error;
  }

  TableId table_ = 0;
  IndexId index_ = kInvalidIndexId;
};

TEST_F(BulkLoaderTest, LoadSmall) {
  BTree* tree = NewTree();
  BulkLoader loader(tree, engine_->pool(), &options_);
  ASSERT_OK(loader.Begin());
  LoadRange(&loader, 0, 10);
  ASSERT_OK(loader.Finish());
  ExpectTreeHasExactly(tree, 10);
}

TEST_F(BulkLoaderTest, LoadEmpty) {
  BTree* tree = NewTree();
  BulkLoader loader(tree, engine_->pool(), &options_);
  ASSERT_OK(loader.Begin());
  ASSERT_OK(loader.Finish());
  ExpectTreeHasExactly(tree, 0);
}

TEST_F(BulkLoaderTest, LoadMultipleLevels) {
  BTree* tree = NewTree();
  BulkLoader loader(tree, engine_->pool(), &options_);
  ASSERT_OK(loader.Begin());
  // Prefix truncation packs both leaves and internal pages much denser
  // than full-key storage, so it takes well over 45k short keys before
  // the root overflows into a third level.
  LoadRange(&loader, 0, 120000);
  ASSERT_OK(loader.Finish());
  ExpectTreeHasExactly(tree, 120000);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto report, tv.Check());
  EXPECT_GE(report.height, 3u);
}

TEST_F(BulkLoaderTest, RespectsFillFactor) {
  BTree* tree = NewTree();
  BulkLoader loader(tree, engine_->pool(), &options_);
  ASSERT_OK(loader.Begin());
  LoadRange(&loader, 0, 5000);
  ASSERT_OK(loader.Finish());
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto clustering, tv.Clustering());
  // fill_factor 0.9: most leaves ~90% full, none over.
  EXPECT_GT(clustering.utilization, 0.75);
  EXPECT_LT(clustering.utilization, 0.95);
}

TEST_F(BulkLoaderTest, TreeUsableForPointOpsAfterLoad) {
  BTree* tree = NewTree();
  BulkLoader loader(tree, engine_->pool(), &options_);
  ASSERT_OK(loader.Begin());
  LoadRange(&loader, 0, 3000);
  ASSERT_OK(loader.Finish());
  // Normal transactional ops work on the bulk-loaded tree.
  ASSERT_OK_AND_ASSIGN(auto found, tree->Lookup(Key(1234), Rid(1234, 0)));
  EXPECT_TRUE(found.found);
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->Insert(txn, Key(99999), Rid(99999, 0)).status());
  ASSERT_OK(tree->PseudoDelete(txn, Key(7), Rid(7, 0)).status());
  ASSERT_OK(engine_->Commit(txn));
  ASSERT_OK_AND_ASSIGN(auto pd, tree->Lookup(Key(7), Rid(7, 0)));
  EXPECT_TRUE(pd.pseudo_deleted);
}

TEST_F(BulkLoaderTest, CheckpointResumeAfterCrash) {
  BTree* tree = NewTree();
  IndexId index = index_;
  std::string ckpt;
  {
    BulkLoader loader(tree, engine_->pool(), &options_);
    ASSERT_OK(loader.Begin());
    LoadRange(&loader, 0, 1000);
    ASSERT_OK_AND_ASSIGN(ckpt, loader.Checkpoint("merge@1000"));
    // Post-checkpoint work that will be lost.
    LoadRange(&loader, 1000, 1400);
  }
  CrashAndRestart();
  tree = engine_->catalog()->index(index);
  BulkLoader resumed(tree, engine_->pool(), &options_);
  ASSERT_OK_AND_ASSIGN(std::string caller, resumed.Resume(ckpt));
  EXPECT_EQ(caller, "merge@1000");
  EXPECT_EQ(resumed.keys_loaded(), 1000u);
  EXPECT_EQ(resumed.high_key(), Key(999));
  LoadRange(&resumed, 1000, 2000);
  ASSERT_OK(resumed.Finish());
  ExpectTreeHasExactly(tree, 2000);
}

TEST_F(BulkLoaderTest, ResumeTruncatesFlushedOverrun) {
  // Eviction pressure can push post-checkpoint pages to disk; Resume must
  // truncate keys above the checkpointed high key anyway (section 3.2.4:
  // "the index pages can be reset in such a way that the keys higher than
  // the checkpointed key disappear").
  BTree* tree = NewTree();
  IndexId index = index_;
  std::string ckpt;
  {
    BulkLoader loader(tree, engine_->pool(), &options_);
    ASSERT_OK(loader.Begin());
    LoadRange(&loader, 0, 1000);
    ASSERT_OK_AND_ASSIGN(ckpt, loader.Checkpoint(""));
    LoadRange(&loader, 1000, 1500);
  }
  // Force the overrun to disk, simulating eviction (the loader's latches
  // are released once it goes out of scope).
  ASSERT_OK(engine_->pool()->FlushAll());
  CrashAndRestart();
  tree = engine_->catalog()->index(index);
  BulkLoader resumed(tree, engine_->pool(), &options_);
  ASSERT_OK(resumed.Resume(ckpt).status());
  LoadRange(&resumed, 1000, 2000);
  ASSERT_OK(resumed.Finish());
  ExpectTreeHasExactly(tree, 2000);
}

TEST_F(BulkLoaderTest, ResetToEmptyDiscardsFlushedPartialLoad) {
  BTree* tree = NewTree();
  IndexId index = index_;
  {
    BulkLoader loader(tree, engine_->pool(), &options_);
    ASSERT_OK(loader.Begin());
    LoadRange(&loader, 0, 500);
  }
  ASSERT_OK(engine_->pool()->FlushAll());
  CrashAndRestart();
  tree = engine_->catalog()->index(index);
  BulkLoader fresh(tree, engine_->pool(), &options_);
  ASSERT_OK(fresh.ResetToEmpty());
  LoadRange(&fresh, 0, 800);
  ASSERT_OK(fresh.Finish());
  ExpectTreeHasExactly(tree, 800);
}

TEST_F(BulkLoaderTest, RejectsNonEmptyTree) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->Insert(txn, Key(1), Rid(1, 0)).status());
  ASSERT_OK(engine_->Commit(txn));
  BulkLoader loader(tree, engine_->pool(), &options_);
  EXPECT_TRUE(loader.Begin().IsInvalidArgument());
}

}  // namespace
}  // namespace oib
