#include "btree/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "btree/tree_verifier.h"
#include "common/random.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class BTreeTest : public EngineTest {
 protected:
  BTree* NewTree(bool unique = false) {
    table_ = MakeTable();
    auto desc = engine_->catalog()->CreateIndex("idx", table_, unique, {0},
                                                BuildAlgo::kOffline);
    EXPECT_TRUE(desc.ok()) << desc.status().ToString();
    index_ = desc->id;
    return engine_->catalog()->index(index_);
  }

  void ExpectStructurallySound(BTree* tree) {
    TreeVerifier tv(tree, engine_->pool());
    auto report = tv.Check();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok) << report->error;
  }

  static std::string Key(int i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    return buf;
  }

  TableId table_ = 0;
  IndexId index_ = kInvalidIndexId;
};

TEST_F(BTreeTest, InsertAndLookup) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(auto r, tree->Insert(txn, "apple", Rid(1, 1)));
  EXPECT_EQ(r, BTree::InsertResult::kInserted);
  ASSERT_OK(engine_->Commit(txn));

  ASSERT_OK_AND_ASSIGN(auto found, tree->Lookup("apple", Rid(1, 1)));
  EXPECT_TRUE(found.found);
  EXPECT_FALSE(found.pseudo_deleted);
  ASSERT_OK_AND_ASSIGN(auto missing, tree->Lookup("apple", Rid(1, 2)));
  EXPECT_FALSE(missing.found);
}

TEST_F(BTreeTest, ExactDuplicateRejected) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(auto a, tree->Insert(txn, "k", Rid(1, 1)));
  EXPECT_EQ(a, BTree::InsertResult::kInserted);
  ASSERT_OK_AND_ASSIGN(auto b, tree->Insert(txn, "k", Rid(1, 1)));
  EXPECT_EQ(b, BTree::InsertResult::kAlreadyPresent);
  // Same key value, different RID: fine in a non-unique index.
  ASSERT_OK_AND_ASSIGN(auto c, tree->Insert(txn, "k", Rid(1, 2)));
  EXPECT_EQ(c, BTree::InsertResult::kInserted);
  ASSERT_OK(engine_->Commit(txn));
}

TEST_F(BTreeTest, PseudoDeleteLifecycle) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->Insert(txn, "k", Rid(1, 1)).status());
  ASSERT_OK_AND_ASSIGN(auto d, tree->PseudoDelete(txn, "k", Rid(1, 1)));
  EXPECT_EQ(d, BTree::DeleteResult::kPseudoDeleted);
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup("k", Rid(1, 1)));
  EXPECT_TRUE(look.found);
  EXPECT_TRUE(look.pseudo_deleted);
  // Deleting again is a no-op.
  ASSERT_OK_AND_ASSIGN(auto again, tree->PseudoDelete(txn, "k", Rid(1, 1)));
  EXPECT_EQ(again, BTree::DeleteResult::kAlreadyPseudo);
  // Re-insert reactivates in place.
  ASSERT_OK_AND_ASSIGN(auto r, tree->Insert(txn, "k", Rid(1, 1)));
  EXPECT_EQ(r, BTree::InsertResult::kReactivated);
  ASSERT_OK_AND_ASSIGN(look, tree->Lookup("k", Rid(1, 1)));
  EXPECT_FALSE(look.pseudo_deleted);
  ASSERT_OK(engine_->Commit(txn));
}

TEST_F(BTreeTest, TombstoneInsertedWhenDeletingAbsentKey) {
  // Section 2.2.3: "If the key does not exist in the index, then the
  // deleter inserts the key with an indicator that it is pseudo deleted."
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(auto d, tree->PseudoDelete(txn, "ghost", Rid(3, 3)));
  EXPECT_EQ(d, BTree::DeleteResult::kTombstoneInserted);
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup("ghost", Rid(3, 3)));
  EXPECT_TRUE(look.found);
  EXPECT_TRUE(look.pseudo_deleted);
  ASSERT_OK(engine_->Commit(txn));
}

TEST_F(BTreeTest, RollbackOfInsertRemovesKey) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->Insert(txn, "k", Rid(1, 1)).status());
  ASSERT_OK(engine_->Rollback(txn));
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup("k", Rid(1, 1)));
  EXPECT_FALSE(look.found);
}

TEST_F(BTreeTest, RollbackOfPseudoDeleteReactivates) {
  BTree* tree = NewTree();
  Transaction* setup = engine_->Begin();
  ASSERT_OK(tree->Insert(setup, "k", Rid(1, 1)).status());
  ASSERT_OK(engine_->Commit(setup));

  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->PseudoDelete(txn, "k", Rid(1, 1)).status());
  ASSERT_OK(engine_->Rollback(txn));
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup("k", Rid(1, 1)));
  EXPECT_TRUE(look.found);
  EXPECT_FALSE(look.pseudo_deleted);
}

TEST_F(BTreeTest, RollbackOfTombstoneInsertPutsKeyInInsertedState) {
  // Section 2.2.3: the deleter's log record ensures that "in case the
  // transaction were to roll back, then the key will be reactivated
  // (i.e., put in the inserted state)" — NOT removed.
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(auto d, tree->PseudoDelete(txn, "k", Rid(1, 1)));
  ASSERT_EQ(d, BTree::DeleteResult::kTombstoneInserted);
  ASSERT_OK(engine_->Rollback(txn));
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup("k", Rid(1, 1)));
  EXPECT_TRUE(look.found);
  EXPECT_FALSE(look.pseudo_deleted);
}

TEST_F(BTreeTest, UndoOnlyInsertDeletesKeyOnRollback) {
  // NSF section 2.1.1: IB inserted the key; the transaction wrote only an
  // undo-only record.  Its rollback must remove the key.
  BTree* tree = NewTree();
  Transaction* ib = engine_->Begin();
  ASSERT_OK(tree->Insert(ib, "k", Rid(1, 1)).status());
  ASSERT_OK(engine_->Commit(ib));

  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->LogUndoOnlyInsert(txn, "k", Rid(1, 1)));
  ASSERT_OK(engine_->Rollback(txn));
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup("k", Rid(1, 1)));
  EXPECT_FALSE(look.found);
}

TEST_F(BTreeTest, PhysicalDeleteAndUndo) {
  BTree* tree = NewTree();
  Transaction* setup = engine_->Begin();
  ASSERT_OK(tree->Insert(setup, "k", Rid(1, 1)).status());
  ASSERT_OK(engine_->Commit(setup));

  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->PhysicalDelete(txn, "k", Rid(1, 1)));
  ASSERT_OK_AND_ASSIGN(auto gone, tree->Lookup("k", Rid(1, 1)));
  EXPECT_FALSE(gone.found);
  ASSERT_OK(engine_->Rollback(txn));
  ASSERT_OK_AND_ASSIGN(auto back, tree->Lookup("k", Rid(1, 1)));
  EXPECT_TRUE(back.found);
  EXPECT_FALSE(back.pseudo_deleted);
}

TEST_F(BTreeTest, ManyInsertsSplitCorrectly) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    // Shuffled-ish order via multiplicative hashing.
    int k = static_cast<int>((static_cast<uint64_t>(i) * 2654435761u) % n);
    ASSERT_OK(
        tree->Insert(txn, Key(k), Rid(static_cast<PageId>(k), 0)).status());
  }
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_GT(tree->split_count(), 10u);

  ExpectStructurallySound(tree);
  uint64_t count = 0;
  ASSERT_OK(tree->ScanAll(
      [&](std::string_view, const Rid&, uint8_t) { ++count; }));
  EXPECT_EQ(count, static_cast<uint64_t>(n));
}

TEST_F(BTreeTest, FindKeyValueAcrossDuplicatesAndLeaves) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  // Many duplicates of one value, spanning leaves.
  for (int i = 0; i < 600; ++i) {
    ASSERT_OK(
        tree->Insert(txn, "dup", Rid(static_cast<PageId>(i), 0)).status());
  }
  // Pseudo-delete all but one in the middle.
  for (int i = 0; i < 600; ++i) {
    if (i == 300) continue;
    ASSERT_OK(
        tree->PseudoDelete(txn, "dup", Rid(static_cast<PageId>(i), 0))
            .status());
  }
  ASSERT_OK(engine_->Commit(txn));
  ASSERT_OK_AND_ASSIGN(auto vm, tree->FindKeyValue("dup"));
  EXPECT_TRUE(vm.found);
  EXPECT_FALSE(vm.pseudo_deleted);
  EXPECT_EQ(vm.rid, Rid(300, 0));
}

TEST_F(BTreeTest, GcRemovePhysicallyDeletesTombstones) {
  BTree* tree = NewTree();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->Insert(txn, "k", Rid(1, 1)).status());
  ASSERT_OK(tree->PseudoDelete(txn, "k", Rid(1, 1)).status());
  ASSERT_OK(engine_->Commit(txn));
  ASSERT_OK(tree->GcRemove("k", Rid(1, 1)));
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup("k", Rid(1, 1)));
  EXPECT_FALSE(look.found);
  // GC of a live key is refused.
  Transaction* t2 = engine_->Begin();
  ASSERT_OK(tree->Insert(t2, "live", Rid(2, 2)).status());
  ASSERT_OK(engine_->Commit(t2));
  EXPECT_TRUE(tree->GcRemove("live", Rid(2, 2)).IsInvalidArgument());
}

class BTreeRandomOpsTest : public BTreeTest,
                           public ::testing::WithParamInterface<int> {};

TEST_P(BTreeRandomOpsTest, MatchesOracle) {
  BTree* tree = NewTree();
  Random rng(GetParam());
  // Oracle: (key,rid) -> live? (absent = not in tree)
  std::map<std::pair<std::string, Rid>, bool> oracle;
  Transaction* txn = engine_->Begin();
  for (int step = 0; step < 3000; ++step) {
    std::string key = Key(static_cast<int>(rng.Uniform(400)));
    Rid rid(static_cast<PageId>(rng.Uniform(4)), 0);
    auto entry = std::make_pair(key, rid);
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      auto r = tree->Insert(txn, key, rid);
      ASSERT_TRUE(r.ok());
      auto it = oracle.find(entry);
      if (it == oracle.end()) {
        EXPECT_EQ(*r, BTree::InsertResult::kInserted);
        oracle[entry] = true;
      } else if (!it->second) {
        EXPECT_EQ(*r, BTree::InsertResult::kReactivated);
        it->second = true;
      } else {
        EXPECT_EQ(*r, BTree::InsertResult::kAlreadyPresent);
      }
    } else if (dice < 0.8) {
      auto r = tree->PseudoDelete(txn, key, rid);
      ASSERT_TRUE(r.ok());
      auto it = oracle.find(entry);
      if (it == oracle.end()) {
        EXPECT_EQ(*r, BTree::DeleteResult::kTombstoneInserted);
        oracle[entry] = false;
      } else if (it->second) {
        EXPECT_EQ(*r, BTree::DeleteResult::kPseudoDeleted);
        it->second = false;
      } else {
        EXPECT_EQ(*r, BTree::DeleteResult::kAlreadyPseudo);
      }
    } else {
      auto look = tree->Lookup(key, rid);
      ASSERT_TRUE(look.ok());
      auto it = oracle.find(entry);
      if (it == oracle.end()) {
        EXPECT_FALSE(look->found);
      } else {
        EXPECT_TRUE(look->found);
        EXPECT_EQ(look->pseudo_deleted, !it->second);
      }
    }
  }
  ASSERT_OK(engine_->Commit(txn));
  ExpectStructurallySound(tree);
  // Full agreement sweep.
  std::map<std::pair<std::string, Rid>, bool> seen;
  ASSERT_OK(tree->ScanAll([&](std::string_view key, const Rid& rid,
                              uint8_t flags) {
    seen[{std::string(key), rid}] = (flags & kEntryPseudoDeleted) == 0;
  }));
  EXPECT_EQ(seen.size(), oracle.size());
  for (const auto& [entry, live] : oracle) {
    auto it = seen.find(entry);
    ASSERT_NE(it, seen.end());
    EXPECT_EQ(it->second, live);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeRandomOpsTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST_F(BTreeTest, ConcurrentInsertersDisjointRanges) {
  BTree* tree = NewTree();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 800;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Transaction* txn = engine_->Begin();
      for (int i = 0; i < kPerThread; ++i) {
        int k = t * kPerThread + i;
        auto r = tree->Insert(txn, Key(k), Rid(static_cast<PageId>(k), 0));
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
      ASSERT_TRUE(engine_->Commit(txn).ok());
    });
  }
  for (auto& t : threads) t.join();
  ExpectStructurallySound(tree);
  uint64_t count = 0;
  ASSERT_OK(tree->ScanAll(
      [&](std::string_view, const Rid&, uint8_t) { ++count; }));
  EXPECT_EQ(count, static_cast<uint64_t>(kThreads * kPerThread));
}

TEST_F(BTreeTest, CommittedKeysSurviveCrashLosersUndone) {
  BTree* tree = NewTree();
  TableId table = table_;
  IndexId index = index_;
  Transaction* committed = engine_->Begin();
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK(committed != nullptr ? Status::OK() : Status::Corruption(""));
    ASSERT_OK(
        tree->Insert(committed, Key(i), Rid(static_cast<PageId>(i), 0))
            .status());
  }
  ASSERT_OK(engine_->Commit(committed));

  Transaction* loser = engine_->Begin();
  for (int i = 300; i < 350; ++i) {
    ASSERT_OK(
        tree->Insert(loser, Key(i), Rid(static_cast<PageId>(i), 0)).status());
  }
  ASSERT_OK(tree->PseudoDelete(loser, Key(7), Rid(7, 0)).status());
  ASSERT_OK(engine_->log()->FlushAll());

  CrashAndRestart();
  tree = engine_->catalog()->index(index);
  ASSERT_NE(tree, nullptr);
  (void)table;
  for (int i = 0; i < 300; ++i) {
    ASSERT_OK_AND_ASSIGN(auto look,
                         tree->Lookup(Key(i), Rid(static_cast<PageId>(i), 0)));
    EXPECT_TRUE(look.found) << i;
    EXPECT_FALSE(look.pseudo_deleted) << i;  // loser's pseudo-delete undone
  }
  for (int i = 300; i < 350; ++i) {
    ASSERT_OK_AND_ASSIGN(auto look,
                         tree->Lookup(Key(i), Rid(static_cast<PageId>(i), 0)));
    EXPECT_FALSE(look.found) << i;
  }
  ExpectStructurallySound(tree);
}

TEST_F(BTreeTest, IbBatchInsertSkipsDuplicatesAndTombstones) {
  BTree* tree = NewTree();
  // Transactions race ahead of IB: one inserted key 5 already, one left a
  // tombstone for key 7 (deleted record), per sections 2.1.1/2.1.2.
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->Insert(txn, Key(5), Rid(5, 0)).status());
  ASSERT_OK(tree->PseudoDelete(txn, Key(7), Rid(7, 0)).status());
  ASSERT_OK(engine_->Commit(txn));

  std::vector<std::string> keys;
  for (int i = 0; i < 10; ++i) keys.push_back(Key(i));
  std::vector<IndexKeyRef> refs;
  for (int i = 0; i < 10; ++i) {
    refs.push_back({keys[i], Rid(static_cast<PageId>(i), 0)});
  }
  Transaction* ib = engine_->Begin();
  BTree::IbStats stats;
  ASSERT_OK(tree->IbInsertBatch(ib, refs, false, nullptr, &stats));
  ASSERT_OK(engine_->Commit(ib));
  EXPECT_EQ(stats.inserted, 8u);
  EXPECT_EQ(stats.skipped_duplicates, 1u);
  EXPECT_EQ(stats.skipped_tombstones, 1u);
  // Key 7 stays pseudo-deleted (the deleter committed).
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup(Key(7), Rid(7, 0)));
  EXPECT_TRUE(look.found);
  EXPECT_TRUE(look.pseudo_deleted);
}

TEST_F(BTreeTest, IbBatchInsertLargeSortedStream) {
  BTree* tree = NewTree();
  const int n = 20000;
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) keys.push_back(Key(i));

  Transaction* ib = engine_->Begin();
  BTree::IbStats stats;
  for (int base = 0; base < n; base += 64) {
    std::vector<IndexKeyRef> refs;
    for (int i = base; i < std::min(base + 64, n); ++i) {
      refs.push_back({keys[i], Rid(static_cast<PageId>(i), 0)});
    }
    ASSERT_OK(tree->IbInsertBatch(ib, refs, false, nullptr, &stats));
  }
  ASSERT_OK(engine_->Commit(ib));
  EXPECT_EQ(stats.inserted, static_cast<uint64_t>(n));
  // Remembered path: descents should be far fewer than keys.
  EXPECT_LT(stats.descents, static_cast<uint64_t>(n) / 10);
  ExpectStructurallySound(tree);
}

TEST_F(BTreeTest, IbBatchUndoneAtRestart) {
  BTree* tree = NewTree();
  IndexId index = index_;
  Transaction* ib = engine_->Begin();
  std::vector<std::string> keys;
  std::vector<IndexKeyRef> refs;
  for (int i = 0; i < 40; ++i) keys.push_back(Key(i));
  for (int i = 0; i < 40; ++i) {
    refs.push_back({keys[i], Rid(static_cast<PageId>(i), 0)});
  }
  BTree::IbStats stats;
  ASSERT_OK(tree->IbInsertBatch(ib, refs, false, nullptr, &stats));
  ASSERT_OK(engine_->log()->FlushAll());  // batch is durable, not committed

  CrashAndRestart();
  tree = engine_->catalog()->index(index);
  for (int i = 0; i < 40; ++i) {
    ASSERT_OK_AND_ASSIGN(auto look,
                         tree->Lookup(Key(i), Rid(static_cast<PageId>(i), 0)));
    EXPECT_FALSE(look.found) << i;
  }
  ExpectStructurallySound(tree);
}

}  // namespace
}  // namespace oib
