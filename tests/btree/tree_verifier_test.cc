// Negative tests: the verifiers must actually DETECT corruption — a
// verifier that always says "ok" would silently bless broken builders.

#include "btree/tree_verifier.h"

#include <gtest/gtest.h>

#include "common/key.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class TreeVerifierTest : public EngineTest {
 protected:
  // A ready index over `rows` rows; returns the tree.
  BTree* BuildIndex(uint64_t rows) {
    table_ = MakeTable();
    Populate(table_, rows);
    OfflineIndexBuilder builder(engine_.get());
    BuildParams p;
    p.name = "idx";
    p.table = table_;
    p.key_cols = {0};
    EXPECT_TRUE(builder.Build(p, &index_).ok());
    return engine_->catalog()->index(index_);
  }

  TableId table_ = 0;
  IndexId index_ = kInvalidIndexId;
};

TEST_F(TreeVerifierTest, CleanTreePasses) {
  BTree* tree = BuildIndex(3000);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto report, tv.Check());
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.entries, 3000u);
  EXPECT_GE(report.height, 2u);
}

TEST_F(TreeVerifierTest, DetectsOutOfOrderKeys) {
  BTree* tree = BuildIndex(3000);
  // Vandalize a leaf: swap two keys' bytes in place.
  std::vector<PageId> leaves;
  ASSERT_OK(tree->CollectLeaves(&leaves));
  {
    auto guard = engine_->pool()->FetchWrite(leaves[2]);
    ASSERT_TRUE(guard.ok());
    BTreePage page(guard->data(), engine_->disk()->page_size());
    ASSERT_GE(page.count(), 2);
    // Overwrite the first key's stored suffix bytes with 'z's: the page
    // prefix is shared with the right neighbour, so the key now sorts
    // above it.  (KeyAt materializes a copy; SuffixAt views page bytes.)
    std::string_view k = page.SuffixAt(0);
    ASSERT_FALSE(k.empty());
    std::memset(const_cast<char*>(k.data()), 'z', k.size());
    guard->MarkDirty();
  }
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto report, tv.Check());
  EXPECT_FALSE(report.ok);
  // Reported either as an in-page ordering violation or as a fence
  // violation, depending on which check trips first.
  EXPECT_TRUE(report.error.find("order") != std::string::npos ||
              report.error.find("fence") != std::string::npos)
      << report.error;
}

TEST_F(TreeVerifierTest, DetectsBrokenLeafChain) {
  BTree* tree = BuildIndex(3000);
  std::vector<PageId> leaves;
  ASSERT_OK(tree->CollectLeaves(&leaves));
  ASSERT_GE(leaves.size(), 3u);
  {
    // Skip a leaf in the chain.
    auto guard = engine_->pool()->FetchWrite(leaves[0]);
    ASSERT_TRUE(guard.ok());
    BTreePage page(guard->data(), engine_->disk()->page_size());
    page.set_next(leaves[2]);
    guard->MarkDirty();
  }
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto report, tv.Check());
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("chain"), std::string::npos) << report.error;
}

class IndexVerifierNegativeTest : public TreeVerifierTest {
 protected:
  // Normalized single-string-column key, as the index stores it.
  static std::string Key(const std::string& v) {
    std::string k;
    keyenc::AppendStringColumn(&k, v);
    return k;
  }
};

TEST_F(IndexVerifierNegativeTest, DetectsMissingEntry) {
  BTree* tree = BuildIndex(500);
  // Physically remove one key behind the record manager's back.
  std::string key = Key(Workload::MakeKey(123, 12));
  Rid victim;
  bool found = false;
  ASSERT_OK(tree->ScanAll([&](std::string_view k, const Rid& rid, uint8_t) {
    if (k == key) {
      victim = rid;
      found = true;
    }
  }));
  ASSERT_TRUE(found);
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->PhysicalDelete(txn, key, victim));
  ASSERT_OK(engine_->Commit(txn));

  IndexVerifier verifier(engine_.get());
  ASSERT_OK_AND_ASSIGN(auto report, verifier.Verify(table_, index_));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("missing from index"), std::string::npos)
      << report.error;
}

TEST_F(IndexVerifierNegativeTest, DetectsExtraEntry) {
  BTree* tree = BuildIndex(500);
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->Insert(txn, "nonexistent!", Rid(9999, 9)).status());
  ASSERT_OK(engine_->Commit(txn));
  IndexVerifier verifier(engine_.get());
  ASSERT_OK_AND_ASSIGN(auto report, verifier.Verify(table_, index_));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("without record"), std::string::npos)
      << report.error;
}

TEST_F(IndexVerifierNegativeTest, DetectsShadowingTombstone) {
  BTree* tree = BuildIndex(500);
  // Pseudo-delete a key whose record still lives: the entry "shadows" it.
  std::string key = Key(Workload::MakeKey(7, 12));
  Rid victim;
  bool found = false;
  ASSERT_OK(tree->ScanAll([&](std::string_view k, const Rid& rid, uint8_t) {
    if (k == key) {
      victim = rid;
      found = true;
    }
  }));
  ASSERT_TRUE(found);
  Transaction* txn = engine_->Begin();
  ASSERT_OK(tree->PseudoDelete(txn, key, victim).status());
  ASSERT_OK(engine_->Commit(txn));
  IndexVerifier verifier(engine_.get());
  ASSERT_OK_AND_ASSIGN(auto report, verifier.Verify(table_, index_));
  EXPECT_FALSE(report.ok);
  // Either error is acceptable: the live key is missing, or the
  // tombstone shadows a live record (the verifier reports the first).
  EXPECT_TRUE(report.error.find("missing") != std::string::npos ||
              report.error.find("shadows") != std::string::npos)
      << report.error;
}

TEST_F(IndexVerifierNegativeTest, DetectsDuplicateValuesInUniqueIndex) {
  table_ = MakeTable();
  Populate(table_, 200);
  OfflineIndexBuilder builder(engine_.get());
  BuildParams p;
  p.name = "u";
  p.table = table_;
  p.unique = true;
  p.key_cols = {0};
  ASSERT_OK(builder.Build(p, &index_));
  BTree* tree = engine_->catalog()->index(index_);

  // Forge a duplicate value under a different RID AND a matching record,
  // so only the uniqueness invariant is broken.
  Transaction* txn = engine_->Begin();
  std::string key = Workload::MakeKey(5, 12);
  ASSERT_OK_AND_ASSIGN(
      Rid rid, engine_->catalog()->table(table_)->Insert(
                   txn, Schema::EncodeRecord({key, "dup"}), nullptr));
  ASSERT_OK(tree->Insert(txn, Key(key), rid).status());
  ASSERT_OK(engine_->Commit(txn));

  IndexVerifier verifier(engine_.get());
  ASSERT_OK_AND_ASSIGN(auto report, verifier.Verify(table_, index_));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("unique"), std::string::npos) << report.error;
}

}  // namespace
}  // namespace oib
