// HashIndex concurrency stress: concurrent probes, inserts, erases, and
// flag flips across shards.  Run under TSan in CI; the assertions here
// check per-key linearizability where each key has a single writer, while
// shared hot keys generate pure lock contention.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "common/random.h"
#include "hashidx/hash_index.h"

namespace oib {
namespace {

TEST(HashStressTest, ConcurrentProbeInsertErase) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 3;
  constexpr int kKeysPerWriter = 200;
  constexpr int kRounds = 60;

  HashIndex hash(/*index_id=*/1, /*shards=*/4);
  hash.set_readable(true);

  auto key_of = [](int writer, int k) {
    return "w" + std::to_string(writer) + ".k" + std::to_string(k);
  };

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;

  // Writers: each owns a disjoint key range and cycles every key through
  // insert -> pseudo-delete -> reactivate -> remove, plus churn on a
  // shared hot key so different threads hit the same shard slot.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int round = 0; round < kRounds; ++round) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          std::string key = key_of(w, k);
          Rid rid(static_cast<PageId>(w * kKeysPerWriter + k + 1), 0);
          hash.OnLeafInsert(key, rid, 0);
          hash.OnLeafSetFlags(key, rid, kEntryPseudoDeleted);
          hash.OnLeafSetFlags(key, rid, 0);
          if (round + 1 < kRounds) hash.OnLeafRemove(key, rid);
        }
        Rid hot(static_cast<PageId>(1000 + w), 0);
        hash.OnLeafInsert("hot", hot, 0);
        hash.OnLeafRemove("hot", hot);
      }
    });
  }

  // Readers: probe random keys; any of {hit, deleted, miss} is legal
  // mid-churn, but a hit must return a RID a writer actually published.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Random rng(1234 + r);
      while (!stop.load(std::memory_order_acquire)) {
        int w = static_cast<int>(rng.Uniform(kWriters));
        int k = static_cast<int>(rng.Uniform(kKeysPerWriter));
        Rid rid;
        HashProbe p = hash.Probe(key_of(w, k), &rid);
        if (p == HashProbe::kHit) {
          EXPECT_EQ(rid, Rid(static_cast<PageId>(w * kKeysPerWriter + k + 1),
                             0));
        }
        Rid hot;
        hash.Probe("hot", &hot);
      }
    });
  }

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Final state: every owned key ended its last round live.
  uint64_t live = 0;
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      Rid rid;
      ASSERT_EQ(hash.Probe(key_of(w, k), &rid), HashProbe::kHit);
      EXPECT_EQ(rid,
                Rid(static_cast<PageId>(w * kKeysPerWriter + k + 1), 0));
      ++live;
    }
  }
  // "hot" may or may not have survived the final interleaving of
  // concurrent insert/remove pairs from different writers.
  Rid hot;
  HashProbe hp = hash.Probe("hot", &hot);
  uint64_t expected = live + (hp == HashProbe::kHit ? 1 : 0);
  EXPECT_EQ(hash.entry_count(), expected);
}

TEST(HashStressTest, ClearRacesWithWriters) {
  HashIndex hash(/*index_id=*/2, /*shards=*/2);
  hash.set_readable(true);
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::string key = "k" + std::to_string(i % 64);
      hash.OnLeafInsert(key, Rid(static_cast<PageId>(i % 64 + 1), 0), 0);
      ++i;
    }
  });
  std::thread prober([&] {
    while (!stop.load(std::memory_order_acquire)) {
      Rid rid;
      hash.Probe("k3", &rid);
    }
  });
  for (int i = 0; i < 200; ++i) hash.Clear();
  stop.store(true, std::memory_order_release);
  writer.join();
  prober.join();
}

}  // namespace
}  // namespace oib
