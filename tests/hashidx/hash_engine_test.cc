// Engine-level hash fast-path tests: population by every build algorithm,
// NSF/SF visibility, read equivalence hash-on vs hash-off, GC purge,
// teardown of failed builds, and restart repopulation.

#include <gtest/gtest.h>

#include <map>
#include <thread>

#include "btree/tree_verifier.h"
#include "common/key.h"
#include "core/index_builder.h"
#include "core/pseudo_delete_gc.h"
#include "hashidx/hash_index.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class HashEngineTest : public EngineTest {
 protected:
  void SetUp() override {
    EngineTest::SetUp();
    // The fixture opened the engine with the flag clear; flip it and
    // reopen so every index built below carries a hash fragment.
    options_.enable_hash_index = true;
    options_.hash_index_shards = 4;
    ReopenWithOptions();
  }

  BuildParams Params(TableId table, bool unique = false,
                     const std::string& name = "idx") {
    BuildParams p;
    p.name = name;
    p.table = table;
    p.unique = unique;
    p.key_cols = {0};
    return p;
  }

  static std::string Key(const std::string& v) {
    std::string k;
    keyenc::AppendStringColumn(&k, v);
    return k;
  }

  // Asserts the hash mirror answers exactly what a FindKeyValue descent
  // would for every key present in the tree.
  void ExpectHashMatchesTree(IndexId index) {
    BTree* tree = engine_->catalog()->index(index);
    HashIndex* hash = engine_->catalog()->hash_index(index);
    ASSERT_NE(tree, nullptr);
    ASSERT_NE(hash, nullptr);
    ASSERT_TRUE(hash->readable());
    std::map<std::string, std::pair<bool, Rid>> expected;  // live?, min rid
    uint64_t tree_entries = 0;
    ASSERT_OK(tree->ScanAll(
        [&](std::string_view key, const Rid& rid, uint8_t flags) {
          ++tree_entries;
          bool live = (flags & kEntryPseudoDeleted) == 0;
          auto [it, inserted] = expected.emplace(
              std::string(key), std::make_pair(live, rid));
          if (!inserted && live &&
              (!it->second.first || rid < it->second.second)) {
            it->second = {true, rid};
          }
        }));
    EXPECT_EQ(hash->entry_count(), tree_entries);
    for (const auto& [key, want] : expected) {
      Rid rid;
      HashProbe p = hash->Probe(key, &rid);
      if (want.first) {
        ASSERT_EQ(p, HashProbe::kHit) << "key " << key;
        EXPECT_EQ(rid, want.second) << "key " << key;
      } else {
        EXPECT_EQ(p, HashProbe::kDeleted) << "key " << key;
      }
    }
  }
};

TEST_F(HashEngineTest, OfflineBuildPopulatesHash) {
  TableId table = MakeTable();
  Populate(table, 1500);
  OfflineIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table), &index));
  HashIndex* hash = engine_->catalog()->hash_index(index);
  ASSERT_NE(hash, nullptr);
  EXPECT_TRUE(hash->readable());
  EXPECT_EQ(hash->entry_count(), 1500u);
  ExpectHashMatchesTree(index);

  // Point reads go through the hash and return the right records.
  uint64_t hits_before =
      engine_->metrics()->GetCounter("hash.hits")->value();
  Transaction* txn = engine_->Begin();
  for (uint64_t i = 0; i < 100; ++i) {
    std::string raw = Workload::MakeKey(i * 7 % 1500, 12);
    ASSERT_OK_AND_ASSIGN(
        std::string rec,
        engine_->records()->ReadRecordByKey(txn, table, index, Key(raw)));
    std::vector<std::string> fields;
    ASSERT_OK(Schema::DecodeRecord(rec, &fields));
    EXPECT_EQ(fields[0], raw);
  }
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_GE(engine_->metrics()->GetCounter("hash.hits")->value(),
            hits_before + 100);

  // Absent key: miss falls back to the tree and still answers NotFound.
  Transaction* txn2 = engine_->Begin();
  auto missing = engine_->records()->ReadRecordByKey(txn2, table, index,
                                                     Key("nonexistent"));
  EXPECT_TRUE(missing.status().IsNotFound());
  ASSERT_OK(engine_->Commit(txn2));
}

TEST_F(HashEngineTest, HashOffPathUnaffected) {
  // Same engine family with the flag clear: no fragments, reads still
  // resolve through the tree.
  options_.enable_hash_index = false;
  ReopenWithOptions();
  TableId table = MakeTable();
  Populate(table, 300);
  OfflineIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table), &index));
  EXPECT_EQ(engine_->catalog()->hash_index(index), nullptr);
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(std::string rec,
                       engine_->records()->ReadRecordByKey(
                           txn, table, index, Key(Workload::MakeKey(7, 12))));
  std::vector<std::string> fields;
  ASSERT_OK(Schema::DecodeRecord(rec, &fields));
  EXPECT_EQ(fields[0], Workload::MakeKey(7, 12));
  ASSERT_OK(engine_->Commit(txn));
  options_.enable_hash_index = true;
}

TEST_F(HashEngineTest, NsfBuildMaintainsMirrorOnline) {
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  WorkloadOptions wo;
  wo.threads = 2;
  wo.rollback_pct = 0.15;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  WaitForOps(&workload, 20);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  workload.Stop();
  ASSERT_OK(s);
  ExpectIndexConsistent(table, index);
  ExpectHashMatchesTree(index);
}

TEST_F(HashEngineTest, SfBuildMaintainsMirrorOnline) {
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  WorkloadOptions wo;
  wo.threads = 2;
  wo.rollback_pct = 0.15;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  WaitForOps(&workload, 20);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  workload.Stop();
  ASSERT_OK(s);
  ExpectIndexConsistent(table, index);
  ExpectHashMatchesTree(index);
}

TEST_F(HashEngineTest, ReadsDuringSfBuildFallBackThenHit) {
  TableId table = MakeTable();
  auto rids = Populate(table, 4000);
  // A ready index to read through while the SF build runs on the side.
  OfflineIndexBuilder offline(engine_.get());
  IndexId ready_index;
  ASSERT_OK(offline.Build(Params(table, false, "ready"), &ready_index));

  WorkloadOptions wo;
  wo.threads = 2;
  wo.insert_pct = 0.05;
  wo.delete_pct = 0.05;
  wo.update_pct = 0.10;  // 80% point reads
  wo.read_index = ready_index;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 4000);
  workload.Start();
  WaitForOps(&workload, 50);
  SfIndexBuilder builder(engine_.get());
  IndexId building;
  Status s = builder.Build(Params(table, false, "built_under_reads"),
                           &building);
  WorkloadStats wstats = workload.Stop();
  ASSERT_OK(s);
  EXPECT_GT(wstats.reads, 0u);
  ExpectIndexConsistent(table, building);
  ExpectHashMatchesTree(ready_index);
  ExpectHashMatchesTree(building);
}

TEST_F(HashEngineTest, EquivalenceHashOnOffDeterministicWorkload) {
  // The same seeded single-threaded workload replayed hash-on and
  // hash-off must visit identical states; afterwards every key must read
  // back identically through both resolution paths.
  std::map<std::string, std::string> results[2];
  WorkloadStats stats[2];
  for (int pass = 0; pass < 2; ++pass) {
    bool with_hash = pass == 0;
    TearDown();
    SetUp();  // fresh engine, enable_hash_index = true
    if (!with_hash) {
      options_.enable_hash_index = false;
      ReopenWithOptions();
    }
    TableId table = MakeTable();
    auto rids = Populate(table, 800);
    OfflineIndexBuilder builder(engine_.get());
    IndexId index;
    ASSERT_OK(builder.Build(Params(table), &index));
    WorkloadOptions wo;
    wo.threads = 1;
    wo.seed = 20260808;
    wo.insert_pct = 0.2;
    wo.delete_pct = 0.2;
    wo.update_pct = 0.2;
    wo.rollback_pct = 0.1;
    wo.read_index = index;
    Workload workload(engine_.get(), table, wo);
    workload.Seed(rids, 800);
    ASSERT_OK(workload.Run(3000, &stats[pass]));
    // Read back every key ever allocated; record hit payload or miss.
    Transaction* txn = engine_->Begin();
    for (uint64_t i = 0; i < 800 + 3000; ++i) {
      std::string raw = Workload::MakeKey(i, 12);
      auto rec = engine_->records()->ReadRecordByKey(txn, table, index,
                                                     Key(raw));
      if (rec.ok()) {
        results[pass][raw] = *rec;
      } else {
        ASSERT_TRUE(rec.status().IsNotFound()) << rec.status().ToString();
      }
    }
    ASSERT_OK(engine_->Commit(txn));
    options_.enable_hash_index = true;
  }
  EXPECT_EQ(stats[0].commits, stats[1].commits);
  EXPECT_EQ(stats[0].ops(), stats[1].ops());
  EXPECT_EQ(results[0], results[1]);
}

TEST_F(HashEngineTest, PseudoDeleteGcPurgesBothStructures) {
  TableId table = MakeTable();
  auto rids = Populate(table, 1000);
  WorkloadOptions wo;
  wo.threads = 2;
  wo.insert_pct = 0.1;
  wo.delete_pct = 0.6;
  wo.update_pct = 0.2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 1000);
  workload.Start();
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  workload.Stop();
  ASSERT_OK(s);
  ExpectHashMatchesTree(index);

  BTree* tree = engine_->catalog()->index(index);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto before, tv.Clustering());
  ASSERT_GT(before.pseudo_deleted, 0u);
  PseudoDeleteGC gc(engine_.get());
  GcStats gc_stats;
  ASSERT_OK(gc.Run(index, &gc_stats));
  EXPECT_EQ(gc_stats.removed, before.pseudo_deleted);
  // The observer carried every GcRemove into the mirror.
  ExpectHashMatchesTree(index);
}

TEST_F(HashEngineTest, FailedBuildTearsDownFragment) {
  TableId table = MakeTable();
  // Two records with the same key value: a unique offline build fails.
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table, Schema::EncodeRecord({"dup", "a"}))
                .status());
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table, Schema::EncodeRecord({"dup", "b"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));
  OfflineIndexBuilder builder(engine_.get());
  IndexId index = kInvalidIndexId;
  Status s = builder.Build(Params(table, /*unique=*/true), &index);
  ASSERT_TRUE(s.IsUniqueViolation()) << s.ToString();
  // Fragment gone with the descriptor; no dangling observer.
  EXPECT_TRUE(engine_->catalog()->IndexesOf(table).empty());
  Transaction* txn2 = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn2, table,
                               Schema::EncodeRecord({"after", "c"}))
                .status());
  ASSERT_OK(engine_->Commit(txn2));
}

TEST_F(HashEngineTest, HashCommitFailpointLeavesBuildResumable) {
  TableId table = MakeTable();
  Populate(table, 500);
  FailPointRegistry::Instance().Reset();
  FailPointRegistry::Instance().Arm("hash.commit");
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  EXPECT_FALSE(s.ok());
  FailPointRegistry::Instance().Reset();
  // The fragment (if any survived the abort) must not be readable: a
  // failed publish never exposes the hash.
  for (const IndexDescriptor& d : engine_->catalog()->IndexesOf(table)) {
    HashIndex* hash = engine_->catalog()->hash_index(d.id);
    if (hash != nullptr) EXPECT_FALSE(hash->readable());
  }
}

TEST_F(HashEngineTest, RestartRepopulatesReadyIndex) {
  TableId table = MakeTable();
  Populate(table, 1200);
  OfflineIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table), &index));
  ExpectHashMatchesTree(index);

  CrashAndRestart();
  HashIndex* hash = engine_->catalog()->hash_index(index);
  ASSERT_NE(hash, nullptr);
  EXPECT_TRUE(hash->readable());
  ExpectHashMatchesTree(index);
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(std::string rec,
                       engine_->records()->ReadRecordByKey(
                           txn, table, index, Key(Workload::MakeKey(3, 12))));
  std::vector<std::string> fields;
  ASSERT_OK(Schema::DecodeRecord(rec, &fields));
  EXPECT_EQ(fields[0], Workload::MakeKey(3, 12));
  ASSERT_OK(engine_->Commit(txn));
}

}  // namespace
}  // namespace oib
