// HashIndex unit tests: probe semantics (hit / deleted / miss /
// fallback), mirror maintenance through the observer interface, multi-RID
// slots, and the publication gate.

#include "hashidx/hash_index.h"

#include <gtest/gtest.h>

#include "btree/btree.h"

namespace oib {
namespace {

class HashIndexTest : public ::testing::Test {
 protected:
  HashIndexTest() : hash_(/*index_id=*/1, /*shards=*/4) {
    hash_.set_readable(true);
  }

  HashProbe Probe(const std::string& key, Rid* rid = nullptr) {
    Rid scratch;
    return hash_.Probe(key, rid != nullptr ? rid : &scratch);
  }

  HashIndex hash_;
};

TEST_F(HashIndexTest, FallbackUntilReadable) {
  HashIndex fresh(/*index_id=*/2, /*shards=*/2);
  fresh.OnLeafInsert("k", Rid(1, 1), 0);
  Rid rid;
  EXPECT_EQ(fresh.Probe("k", &rid), HashProbe::kFallback);
  fresh.set_readable(true);
  EXPECT_EQ(fresh.Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(1, 1));
}

TEST_F(HashIndexTest, MissForAbsentKey) {
  EXPECT_EQ(Probe("nope"), HashProbe::kMiss);
}

TEST_F(HashIndexTest, InsertThenHit) {
  hash_.OnLeafInsert("alpha", Rid(3, 7), 0);
  Rid rid;
  EXPECT_EQ(Probe("alpha", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(3, 7));
  EXPECT_EQ(hash_.entry_count(), 1u);
}

TEST_F(HashIndexTest, PseudoDeletedEntryNotSurfaced) {
  hash_.OnLeafInsert("k", Rid(1, 1), 0);
  hash_.OnLeafSetFlags("k", Rid(1, 1), kEntryPseudoDeleted);
  EXPECT_EQ(Probe("k"), HashProbe::kDeleted);
  // Reactivation makes it live again (Figure 2 undo path).
  hash_.OnLeafSetFlags("k", Rid(1, 1), 0);
  Rid rid;
  EXPECT_EQ(Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(1, 1));
}

TEST_F(HashIndexTest, TombstoneInsertStartsDeleted) {
  // A deleter of an absent key inserts a tombstone (section 2.1.2).
  hash_.OnLeafInsert("k", Rid(1, 1), kEntryPseudoDeleted);
  EXPECT_EQ(Probe("k"), HashProbe::kDeleted);
}

TEST_F(HashIndexTest, RemoveErasesEntry) {
  hash_.OnLeafInsert("k", Rid(1, 1), 0);
  hash_.OnLeafRemove("k", Rid(1, 1));
  EXPECT_EQ(Probe("k"), HashProbe::kMiss);
  EXPECT_EQ(hash_.entry_count(), 0u);
  // Removing again (or a never-seen key) is a tolerated no-op.
  hash_.OnLeafRemove("k", Rid(1, 1));
  hash_.OnLeafRemove("other", Rid(9, 9));
}

TEST_F(HashIndexTest, MinimumLiveRidWins) {
  // FindKeyValue scans ascending (key, rid) and returns the first live
  // entry; the mirror must agree regardless of insertion order.
  hash_.OnLeafInsert("k", Rid(5, 0), 0);
  hash_.OnLeafInsert("k", Rid(3, 0), 0);
  hash_.OnLeafInsert("k", Rid(8, 0), 0);
  Rid rid;
  ASSERT_EQ(Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(3, 0));
  EXPECT_EQ(hash_.entry_count(), 3u);

  // Pseudo-deleting the minimum shifts the answer to the next live RID.
  hash_.OnLeafSetFlags("k", Rid(3, 0), kEntryPseudoDeleted);
  ASSERT_EQ(Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(5, 0));

  // All pseudo -> deleted.
  hash_.OnLeafSetFlags("k", Rid(5, 0), kEntryPseudoDeleted);
  hash_.OnLeafSetFlags("k", Rid(8, 0), kEntryPseudoDeleted);
  EXPECT_EQ(Probe("k"), HashProbe::kDeleted);
}

TEST_F(HashIndexTest, RemoveFirstPromotesOverflow) {
  hash_.OnLeafInsert("k", Rid(1, 0), 0);
  hash_.OnLeafInsert("k", Rid(2, 0), 0);
  hash_.OnLeafInsert("k", Rid(3, 0), 0);
  hash_.OnLeafRemove("k", Rid(1, 0));  // first slot entry
  Rid rid;
  ASSERT_EQ(Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(2, 0));
  hash_.OnLeafRemove("k", Rid(2, 0));
  ASSERT_EQ(Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(3, 0));
  hash_.OnLeafRemove("k", Rid(3, 0));
  EXPECT_EQ(Probe("k"), HashProbe::kMiss);
  EXPECT_EQ(hash_.entry_count(), 0u);
}

TEST_F(HashIndexTest, ReinsertSameRidUpdatesFlagsInPlace) {
  hash_.OnLeafInsert("k", Rid(1, 1), kEntryPseudoDeleted);
  hash_.OnLeafInsert("k", Rid(1, 1), 0);  // reactivating re-insert
  Rid rid;
  EXPECT_EQ(Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(hash_.entry_count(), 1u);
}

TEST_F(HashIndexTest, SetFlagsUpsertsUnseenEntry) {
  // A flag change for an entry the mirror never saw (population gap)
  // upserts it rather than diverging from the tree.
  hash_.OnLeafSetFlags("k", Rid(4, 2), 0);
  Rid rid;
  EXPECT_EQ(Probe("k", &rid), HashProbe::kHit);
  EXPECT_EQ(rid, Rid(4, 2));
}

TEST_F(HashIndexTest, ClearEmptiesEveryShard) {
  for (int i = 0; i < 100; ++i) {
    hash_.OnLeafInsert("key" + std::to_string(i), Rid(i + 1, 0), 0);
  }
  EXPECT_EQ(hash_.entry_count(), 100u);
  uint64_t spread = 0;
  for (size_t s = 0; s < hash_.shard_count(); ++s) {
    if (hash_.shard_entry_count(s) > 0) ++spread;
  }
  EXPECT_GT(spread, 1u);  // keys land on more than one shard
  hash_.Clear();
  EXPECT_EQ(hash_.entry_count(), 0u);
  EXPECT_EQ(Probe("key42"), HashProbe::kMiss);
}

TEST_F(HashIndexTest, AutoShardCountIsPowerOfTwo) {
  HashIndex h(/*index_id=*/3, /*shards=*/0);
  size_t n = h.shard_count();
  EXPECT_GE(n, 1u);
  EXPECT_EQ(n & (n - 1), 0u);
}

}  // namespace
}  // namespace oib
