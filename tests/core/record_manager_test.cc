#include "core/record_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class RecordManagerTest : public EngineTest {
 protected:
  // A table with one READY index on column 0, built offline while empty.
  void SetUpTableWithIndex(bool unique = false) {
    table_ = MakeTable();
    OfflineIndexBuilder builder(engine_.get());
    BuildParams params;
    params.name = "idx";
    params.table = table_;
    params.unique = unique;
    params.key_cols = {0};
    ASSERT_OK(builder.Build(params, &index_));
  }

  std::string Rec(const std::string& key, const std::string& payload = "p") {
    return Schema::EncodeRecord({key, payload});
  }

  // Normalized single-string-column key, as stored in the index.
  std::string Key(const std::string& v) {
    std::string k;
    keyenc::AppendStringColumn(&k, v);
    return k;
  }

  TableId table_ = 0;
  IndexId index_ = kInvalidIndexId;
};

TEST_F(RecordManagerTest, InsertMaintainsReadyIndex) {
  SetUpTableWithIndex();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid,
      engine_->records()->InsertRecord(txn, table_, Rec("aaa")));
  ASSERT_OK(engine_->Commit(txn));
  BTree* tree = engine_->catalog()->index(index_);
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup(Key("aaa"), rid));
  EXPECT_TRUE(look.found);
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, DeleteRemovesKeyFromReadyIndex) {
  SetUpTableWithIndex();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid,
      engine_->records()->InsertRecord(txn, table_, Rec("aaa")));
  ASSERT_OK(engine_->Commit(txn));

  txn = engine_->Begin();
  ASSERT_OK(engine_->records()->DeleteRecord(txn, table_, rid));
  ASSERT_OK(engine_->Commit(txn));
  BTree* tree = engine_->catalog()->index(index_);
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup(Key("aaa"), rid));
  EXPECT_FALSE(look.found);
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, UpdateChangingKeyMovesIndexEntry) {
  SetUpTableWithIndex();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid,
      engine_->records()->InsertRecord(txn, table_, Rec("aaa")));
  ASSERT_OK(engine_->Commit(txn));

  txn = engine_->Begin();
  ASSERT_OK(engine_->records()->UpdateRecord(txn, table_, rid, Rec("bbb")));
  ASSERT_OK(engine_->Commit(txn));
  BTree* tree = engine_->catalog()->index(index_);
  ASSERT_OK_AND_ASSIGN(auto old_look, tree->Lookup(Key("aaa"), rid));
  EXPECT_FALSE(old_look.found);
  ASSERT_OK_AND_ASSIGN(auto new_look, tree->Lookup(Key("bbb"), rid));
  EXPECT_TRUE(new_look.found);
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, UpdateSameKeyLeavesIndexUntouched) {
  SetUpTableWithIndex();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid,
      engine_->records()->InsertRecord(txn, table_, Rec("aaa", "v1")));
  ASSERT_OK(engine_->Commit(txn));
  LogStats before = engine_->log()->stats();
  txn = engine_->Begin();
  ASSERT_OK(engine_->records()->UpdateRecord(txn, table_, rid,
                                             Rec("aaa", "v2")));
  ASSERT_OK(engine_->Commit(txn));
  LogStats after = engine_->log()->stats();
  EXPECT_EQ(after.records_by_rm[static_cast<size_t>(RmId::kBtree)],
            before.records_by_rm[static_cast<size_t>(RmId::kBtree)]);
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, RollbackRestoresIndexAndTable) {
  SetUpTableWithIndex();
  Transaction* setup = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid keep,
      engine_->records()->InsertRecord(setup, table_, Rec("keep")));
  ASSERT_OK(engine_->Commit(setup));

  Transaction* txn = engine_->Begin();
  ASSERT_OK(
      engine_->records()->InsertRecord(txn, table_, Rec("temp")).status());
  ASSERT_OK(engine_->records()->UpdateRecord(txn, table_, keep,
                                             Rec("moved")));
  ASSERT_OK(engine_->Rollback(txn));

  BTree* tree = engine_->catalog()->index(index_);
  ASSERT_OK_AND_ASSIGN(auto keep_look, tree->Lookup(Key("keep"), keep));
  EXPECT_TRUE(keep_look.found);
  ASSERT_OK_AND_ASSIGN(auto moved_look, tree->Lookup(Key("moved"), keep));
  EXPECT_FALSE(moved_look.found);
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, UniqueIndexRejectsDuplicateValue) {
  SetUpTableWithIndex(/*unique=*/true);
  Transaction* txn = engine_->Begin();
  ASSERT_OK(
      engine_->records()->InsertRecord(txn, table_, Rec("dup")).status());
  ASSERT_OK(engine_->Commit(txn));

  txn = engine_->Begin();
  auto second = engine_->records()->InsertRecord(txn, table_, Rec("dup"));
  EXPECT_TRUE(second.status().IsUniqueViolation())
      << second.status().ToString();
  ASSERT_OK(engine_->Rollback(txn));
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, UniqueInsertSucceedsAfterCommittedDelete) {
  SetUpTableWithIndex(/*unique=*/true);
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid, engine_->records()->InsertRecord(txn, table_, Rec("val")));
  ASSERT_OK(engine_->Commit(txn));
  txn = engine_->Begin();
  ASSERT_OK(engine_->records()->DeleteRecord(txn, table_, rid));
  ASSERT_OK(engine_->Commit(txn));

  txn = engine_->Begin();
  ASSERT_OK(
      engine_->records()->InsertRecord(txn, table_, Rec("val")).status());
  ASSERT_OK(engine_->Commit(txn));
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, UniqueInsertWaitsForUncommittedConflict) {
  SetUpTableWithIndex(/*unique=*/true);
  Transaction* t1 = engine_->Begin();
  ASSERT_OK(
      engine_->records()->InsertRecord(t1, table_, Rec("hot")).status());

  std::atomic<bool> t2_done{false};
  Status t2_status;
  std::thread t2([&] {
    Transaction* txn = engine_->Begin();
    auto r = engine_->records()->InsertRecord(txn, table_, Rec("hot"));
    t2_status = r.status();
    if (r.ok()) {
      (void)engine_->Commit(txn);
    } else {
      (void)engine_->Rollback(txn);
    }
    t2_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(t2_done.load());  // blocked on t1's record lock
  // t1 rolls back: its key disappears, so t2 must succeed.
  ASSERT_OK(engine_->Rollback(t1));
  t2.join();
  EXPECT_OK(t2_status);
  ExpectIndexConsistent(table_, index_);
}

TEST_F(RecordManagerTest, ReadRecordTakesSharedLock) {
  SetUpTableWithIndex();
  Transaction* t1 = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid, engine_->records()->InsertRecord(t1, table_, Rec("r")));
  ASSERT_OK(engine_->Commit(t1));

  Transaction* reader = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(std::string rec,
                       engine_->records()->ReadRecord(reader, table_, rid));
  std::vector<std::string> fields;
  ASSERT_OK(Schema::DecodeRecord(rec, &fields));
  EXPECT_EQ(fields[0], "r");
  // A writer cannot delete while the reader holds its S lock.
  Transaction* writer = engine_->Begin();
  LockOptions opt;
  opt.conditional = true;
  EXPECT_TRUE(engine_->locks()
                  ->Lock(writer->id(), RecordLockId(table_, rid),
                         LockMode::kX, opt)
                  .IsBusy());
  ASSERT_OK(engine_->Commit(reader));
  ASSERT_OK(engine_->Rollback(writer));
}

TEST_F(RecordManagerTest, CrashRestartKeepsTableAndIndexAligned) {
  SetUpTableWithIndex();
  Transaction* txn = engine_->Begin();
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(engine_->records()
                  ->InsertRecord(txn, table_,
                                 Rec(Workload::MakeKey(i, 8)))
                  .status());
  }
  ASSERT_OK(engine_->Commit(txn));

  // A loser transaction with mixed ops, durable but uncommitted.
  Transaction* loser = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(loser, table_, Rec("zzz-loser"))
                .status());
  ASSERT_OK(engine_->log()->FlushAll());

  CrashAndRestart();
  ExpectIndexConsistent(table_, index_);
}

}  // namespace
}  // namespace oib
