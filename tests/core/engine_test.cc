#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class EngineLifecycleTest : public EngineTest {};

TEST_F(EngineLifecycleTest, CatalogSurvivesRestart) {
  TableId t1 = MakeTable("orders");
  TableId t2 = MakeTable("lines");
  EXPECT_NE(t1, t2);
  CrashAndRestart();
  ASSERT_OK_AND_ASSIGN(TableId r1,
                       engine_->catalog()->TableByName("orders"));
  ASSERT_OK_AND_ASSIGN(TableId r2, engine_->catalog()->TableByName("lines"));
  EXPECT_EQ(r1, t1);
  EXPECT_EQ(r2, t2);
  // New tables get fresh ids.
  TableId t3 = MakeTable("third");
  EXPECT_GT(t3, t2);
}

TEST_F(EngineLifecycleTest, CheckpointBoundsRedoWork) {
  TableId table = MakeTable();
  Populate(table, 500);
  ASSERT_OK(engine_->Checkpoint());
  // A little more work after the checkpoint.
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"post-ckpt", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));

  CrashAndRestart();
  // Redo scanned only the post-checkpoint suffix, far fewer records than
  // the populate traffic.
  EXPECT_LT(recovery_stats_.records_scanned, 100u);
  HeapFile* heap = engine_->catalog()->table(table);
  uint64_t count = 0;
  ASSERT_OK(heap->ForEach(
      [&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 501u);
}

TEST_F(EngineLifecycleTest, RepeatedCrashRestartCycles) {
  TableId table = MakeTable();
  uint64_t expected = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    Transaction* txn = engine_->Begin();
    for (int i = 0; i < 50; ++i) {
      ASSERT_OK(engine_->records()
                    ->InsertRecord(
                        txn, table,
                        Schema::EncodeRecord(
                            {Workload::MakeKey(expected + i, 8), "p"}))
                    .status());
    }
    ASSERT_OK(engine_->Commit(txn));
    expected += 50;
    if (cycle % 2 == 0) {
      ASSERT_OK(engine_->Checkpoint());
    }
    CrashAndRestart();
    HeapFile* heap = engine_->catalog()->table(table);
    uint64_t count = 0;
    ASSERT_OK(heap->ForEach(
        [&](const Rid&, std::string_view) { ++count; }));
    ASSERT_EQ(count, expected) << "after cycle " << cycle;
  }
}

TEST_F(EngineLifecycleTest, CleanShutdownNeedsNoRedo) {
  TableId table = MakeTable();
  Populate(table, 200);
  ASSERT_OK(engine_->Checkpoint());
  ASSERT_OK(engine_->FlushAll());
  CrashAndRestart();
  EXPECT_LE(recovery_stats_.records_redone, 1u);
  EXPECT_EQ(recovery_stats_.loser_txns, 0u);
}

TEST_F(EngineLifecycleTest, WorkloadRunsAndStaysConsistent) {
  TableId table = MakeTable();
  auto rids = Populate(table, 300);
  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "idx";
  params.table = table;
  params.key_cols = {0};
  IndexId index;
  ASSERT_OK(builder.Build(params, &index));

  WorkloadOptions wo;
  wo.threads = 2;
  wo.rollback_pct = 0.2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 300);
  WorkloadStats stats;
  ASSERT_OK(workload.Run(2000, &stats));
  EXPECT_GT(stats.commits, 0u);
  EXPECT_GT(stats.rollbacks, 0u);
  ExpectIndexConsistent(table, index);
}

TEST_F(EngineLifecycleTest, WorkloadSurvivesCrashMidStream) {
  TableId table = MakeTable();
  auto rids = Populate(table, 200);
  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "idx";
  params.table = table;
  params.key_cols = {0};
  IndexId index;
  ASSERT_OK(builder.Build(params, &index));

  WorkloadOptions wo;
  wo.threads = 2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 200);
  workload.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  WorkloadStats stats = workload.Stop();
  EXPECT_GT(stats.ops(), 0u);

  CrashAndRestart();
  ExpectIndexConsistent(table, index);
}

}  // namespace
}  // namespace oib
