#include <gtest/gtest.h>

#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

TEST(BuildMetaCodecTest, RoundTrip) {
  BuildMeta meta;
  meta.algo = BuildAlgo::kSf;
  meta.indexes = {3, 7};
  meta.phase = 2;
  meta.current_rid = PackRid(Rid(55, 8));
  meta.fences = {{{100, PackRid(Rid(10, 0))}, {250, PackRid(Rid(40, 2))}},
                 {}};
  meta.phase_blob = "opaque-phase-state";

  BuildMeta out;
  ASSERT_TRUE(DecodeBuildMeta(EncodeBuildMeta(meta), &out).ok());
  EXPECT_EQ(out.algo, BuildAlgo::kSf);
  EXPECT_EQ(out.indexes, meta.indexes);
  EXPECT_EQ(out.phase, 2);
  EXPECT_EQ(out.current_rid, meta.current_rid);
  ASSERT_EQ(out.fences.size(), 2u);
  ASSERT_EQ(out.fences[0].size(), 2u);
  EXPECT_EQ(out.fences[0][1].before_ordinal, 250u);
  EXPECT_EQ(out.fences[0][1].rid_floor, PackRid(Rid(40, 2)));
  EXPECT_TRUE(out.fences[1].empty());
  EXPECT_EQ(out.phase_blob, "opaque-phase-state");
}

TEST(BuildMetaCodecTest, GarbageRejected) {
  BuildMeta out;
  EXPECT_TRUE(DecodeBuildMeta("xx", &out).IsCorruption());
}

TEST(PackRidTest, PreservesOrder) {
  std::vector<Rid> rids = {Rid::MinusInfinity(), Rid(0, 1), Rid(1, 0),
                           Rid(1, 5), Rid(2, 0), Rid(100, 65534),
                           Rid::Infinity()};
  for (size_t i = 1; i < rids.size(); ++i) {
    EXPECT_LT(PackRid(rids[i - 1]), PackRid(rids[i]))
        << rids[i - 1].ToString() << " vs " << rids[i].ToString();
    EXPECT_EQ(UnpackRid(PackRid(rids[i])), rids[i]);
  }
}

class BuildMetaPersistTest : public EngineTest {};

TEST_F(BuildMetaPersistTest, SaveLoadClear) {
  TableId t = MakeTable();
  BuildMeta meta;
  meta.algo = BuildAlgo::kNsf;
  meta.indexes = {1};
  meta.phase = 1;
  ASSERT_OK(SaveBuildMeta(engine_.get(), t, meta));
  ASSERT_OK_AND_ASSIGN(BuildMeta loaded, LoadBuildMeta(engine_.get(), t));
  EXPECT_EQ(loaded.algo, BuildAlgo::kNsf);
  ASSERT_OK(ClearBuildMeta(engine_.get(), t));
  EXPECT_TRUE(LoadBuildMeta(engine_.get(), t).status().IsNotFound());
}

TEST_F(BuildMetaPersistTest, ReattachAddsFenceForInterruptedSfBuild) {
  TableId t = MakeTable();
  Populate(t, 500);
  options_.sort_checkpoint_every_keys = 100;
  ReopenWithOptions();
  FailPointRegistry::Instance().Arm("sf.scan", 3);
  SfIndexBuilder builder(engine_.get());
  BuildParams p;
  p.name = "i";
  p.table = t;
  p.key_cols = {0};
  IndexId index;
  ASSERT_TRUE(builder.Build(p, &index).IsInjected());

  CrashAndRestart();
  // Reattach (run by Restart) must have added one fence per index.
  ASSERT_OK_AND_ASSIGN(BuildMeta meta, LoadBuildMeta(engine_.get(), t));
  ASSERT_EQ(meta.fences.size(), 1u);
  EXPECT_EQ(meta.fences[0].size(), 1u);
  // And the build is registered so transactions keep maintaining it.
  EXPECT_NE(engine_->records()->GetBuild(t), nullptr);
  SfIndexBuilder resumed(engine_.get());
  ASSERT_OK(resumed.Resume(t, nullptr));
}

}  // namespace
}  // namespace oib
