#include "core/workload.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class WorkloadTest : public EngineTest {};

TEST_F(WorkloadTest, MakeKeyFixedWidthOrdered) {
  EXPECT_EQ(Workload::MakeKey(0, 8), "00000000");
  EXPECT_EQ(Workload::MakeKey(42, 8), "00000042");
  EXPECT_LT(Workload::MakeKey(99, 8), Workload::MakeKey(100, 8));
}

TEST_F(WorkloadTest, PopulateCreatesDistinctOrderedRids) {
  TableId t = MakeTable();
  auto rids = Populate(t, 500);
  ASSERT_EQ(rids.size(), 500u);
  for (size_t i = 1; i < rids.size(); ++i) {
    EXPECT_LT(rids[i - 1], rids[i]);
  }
  uint64_t count = 0;
  ASSERT_OK(engine_->catalog()->table(t)->ForEach(
      [&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 500u);
}

TEST_F(WorkloadTest, MixedRunKeepsTableAndShardConsistent) {
  TableId t = MakeTable();
  auto rids = Populate(t, 400);
  WorkloadOptions wo;
  wo.threads = 2;
  wo.rollback_pct = 0.1;
  Workload w(engine_.get(), t, wo);
  w.Seed(rids, 400);
  WorkloadStats stats;
  ASSERT_OK(w.Run(1500, &stats));
  EXPECT_GT(stats.commits, 0u);
  EXPECT_EQ(stats.rollback_errors, 0u);
  // Applied-op accounting: net live rows = 400 + inserts - deletes.
  uint64_t count = 0;
  ASSERT_OK(engine_->catalog()->table(t)->ForEach(
      [&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 400u + stats.inserts - stats.deletes);
}

TEST_F(WorkloadTest, DeliberateRollbacksLeaveNoTrace) {
  TableId t = MakeTable();
  auto rids = Populate(t, 100);
  WorkloadOptions wo;
  wo.threads = 1;
  wo.rollback_pct = 1.0;  // every transaction rolls back
  Workload w(engine_.get(), t, wo);
  w.Seed(rids, 100);
  WorkloadStats stats;
  ASSERT_OK(w.Run(400, &stats));
  EXPECT_EQ(stats.commits, 0u);
  EXPECT_GT(stats.rollbacks, 0u);
  EXPECT_EQ(stats.rollback_errors, 0u);
  uint64_t count = 0;
  ASSERT_OK(engine_->catalog()->table(t)->ForEach(
      [&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 100u);  // table unchanged
}

TEST(EngineOnFileDiskTest, FullBuildPipelineOnRealFiles) {
  // The whole engine + an online build, over the pread/pwrite-backed
  // page store.
  auto path = std::filesystem::temp_directory_path() /
              ("oib_engine_file_" + std::to_string(::getpid()));
  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".meta");

  Options options;
  Env env;
  {
    auto disk = FileDisk::Open(path.string(), options.page_size);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    env.disk = std::move(*disk);
  }
  auto engine = std::move(*Engine::Open(options, &env));
  TableId t = *engine->catalog()->CreateTable("t");
  WorkloadOptions wo;
  auto rids = Workload::Populate(engine.get(), t, 2000, wo);
  ASSERT_TRUE(rids.ok());

  SfIndexBuilder builder(engine.get());
  BuildParams p;
  p.name = "i";
  p.table = t;
  p.key_cols = {0};
  IndexId index;
  ASSERT_TRUE(builder.Build(p, &index).ok());
  IndexVerifier verifier(engine.get());
  auto report = verifier.Verify(t, index);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok) << report->error;

  std::filesystem::remove(path);
  std::filesystem::remove(path.string() + ".meta");
}

}  // namespace
}  // namespace oib
