// NSF (No Side-File) algorithm tests — paper section 2.

#include <gtest/gtest.h>

#include <thread>

#include "btree/tree_verifier.h"
#include "core/index_builder.h"
#include "core/pseudo_delete_gc.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class NsfBuilderTest : public EngineTest {
 protected:
  BuildParams Params(TableId table, bool unique = false) {
    BuildParams p;
    p.name = "nsf_idx";
    p.table = table;
    p.unique = unique;
    p.key_cols = {0};
    return p;
  }

  // Normalized single-string-column key, as the index stores it.
  static std::string Key(const std::string& v) {
    std::string k;
    keyenc::AppendStringColumn(&k, v);
    return k;
  }
};

TEST_F(NsfBuilderTest, QuietBuildMatchesTable) {
  TableId table = MakeTable();
  Populate(table, 3000);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  BuildStats stats;
  ASSERT_OK(builder.Build(Params(table), &index, &stats));
  EXPECT_EQ(stats.keys_extracted, 3000u);
  EXPECT_EQ(stats.ib.inserted, 3000u);
  EXPECT_GT(stats.log_records, 0u);  // NSF logs its inserts
  ExpectIndexConsistent(table, index);
  // Index is ready for reads.
  ASSERT_OK_AND_ASSIGN(auto desc, engine_->catalog()->descriptor(index));
  EXPECT_EQ(desc.state, IndexState::kReady);
}

TEST_F(NsfBuilderTest, MultiKeyLoggingBatchesLogRecords) {
  TableId table = MakeTable();
  Populate(table, 3000);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  BuildStats stats;
  ASSERT_OK(builder.Build(Params(table), &index, &stats));
  // "One log record for multiple keys" (2.3.1): far fewer btree log
  // records than keys.
  EXPECT_LT(stats.ib.log_records, 3000u / 8);
  EXPECT_GT(stats.ib.log_records, 0u);
}

TEST_F(NsfBuilderTest, ConcurrentWorkloadBuildStaysCorrect) {
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);

  WorkloadOptions wo;
  wo.threads = 2;
  wo.rollback_pct = 0.15;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  WaitForOps(&workload, 20);

  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  BuildStats stats;
  Status s = builder.Build(Params(table), &index, &stats);
  WorkloadStats wstats = workload.Stop();
  ASSERT_OK(s);
  EXPECT_GT(wstats.ops(), 0u);  // updates really ran during the build
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, ConcurrentWorkloadManyThreads) {
  TableId table = MakeTable();
  auto rids = Populate(table, 1500);
  WorkloadOptions wo;
  wo.threads = 4;
  wo.update_changes_key = 0.8;
  wo.rollback_pct = 0.25;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 1500);
  workload.Start();
  WaitForOps(&workload, 20);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index, nullptr);
  WorkloadStats wstats = workload.Stop();
  ASSERT_OK(s);
  EXPECT_GT(wstats.commits, 0u);
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, PaperSection223Example) {
  // The nine-step race example from section 2.2.3, reproduced verbatim
  // for a non-unique index.
  TableId table = MakeTable();
  auto rids = Populate(table, 100);

  // Drive the paper's exact interleaving by hand: create the descriptor
  // under the short quiesce and register the build, then play IB's moves
  // through the tree interface.
  Transaction* quiesce = engine_->Begin();
  ASSERT_OK(engine_->locks()->Lock(quiesce->id(), TableLockId(table),
                                   LockMode::kS));
  auto desc = engine_->catalog()->CreateIndex("nsf_idx", table, false, {0},
                                              BuildAlgo::kNsf);
  ASSERT_TRUE(desc.ok());
  InBuildIndex ib;
  ib.id = desc->id;
  ib.tree = engine_->catalog()->index(desc->id);
  ib.unique = false;
  ib.key_cols = {0};
  engine_->records()->RegisterBuild(table, BuildAlgo::kNsf, {ib});
  ASSERT_OK(engine_->Commit(quiesce));
  BTree* tree = ib.tree;

  // 1-2. T1 inserts a record with key value K; T1 inserts <K,R> into the
  // index (direct maintenance, index visible).
  Transaction* t1 = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid r, engine_->records()->InsertRecord(
                 t1, table, Schema::EncodeRecord({"KKKKKKKK", "t1"})));
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup(Key("KKKKKKKK"), r));
  EXPECT_TRUE(look.found);

  // 3-4. IB reads the new record and tries to insert its key; finding the
  // duplicate, it does not insert (and writes no log record).
  Transaction* ib_txn = engine_->Begin();
  std::string key_storage = Key("KKKKKKKK");
  std::vector<IndexKeyRef> refs{{key_storage, r}};
  BTree::IbStats ib_stats;
  ASSERT_OK(tree->IbInsertBatch(ib_txn, refs, false, nullptr, &ib_stats));
  EXPECT_EQ(ib_stats.skipped_duplicates, 1u);
  EXPECT_EQ(ib_stats.inserted, 0u);
  ASSERT_OK(engine_->Commit(ib_txn));

  // 5-6. T1 rolls back: the key is marked pseudo-deleted and the record
  // vanishes from the data page.
  ASSERT_OK(engine_->Rollback(t1));
  ASSERT_OK_AND_ASSIGN(look, tree->Lookup(Key("KKKKKKKK"), r));
  EXPECT_TRUE(look.found);
  EXPECT_TRUE(look.pseudo_deleted);
  EXPECT_FALSE(engine_->catalog()->table(table)->Exists(r));

  // 7-9. T2 inserts a record at the same RID R with the same key value K;
  // its key insert resets the pseudo-deleted flag; T2 commits, leaving
  // <K,R> live and a valid record at R.
  Transaction* t2 = engine_->Begin();
  ASSERT_OK(engine_->records()->InsertRecordAt(
      t2, table, r, Schema::EncodeRecord({"KKKKKKKK", "t2"})));
  ASSERT_OK(engine_->Commit(t2));
  ASSERT_OK_AND_ASSIGN(look, tree->Lookup(Key("KKKKKKKK"), r));
  EXPECT_TRUE(look.found);
  EXPECT_FALSE(look.pseudo_deleted);
  EXPECT_TRUE(engine_->catalog()->table(table)->Exists(r));

  engine_->records()->UnregisterBuild(table);
  (void)rids;
}

TEST_F(NsfBuilderTest, DeleteDuringBuildLeavesTombstoneThatRejectsIb) {
  // Delete-key problem (1.2): the deleter leaves a pseudo-deleted key so
  // a late IB insert is rejected.
  TableId table = MakeTable();
  auto rids = Populate(table, 50);

  Transaction* quiesce = engine_->Begin();
  ASSERT_OK(engine_->locks()->Lock(quiesce->id(), TableLockId(table),
                                   LockMode::kS));
  auto desc = engine_->catalog()->CreateIndex("nsf_idx", table, false, {0},
                                              BuildAlgo::kNsf);
  ASSERT_TRUE(desc.ok());
  InBuildIndex ib;
  ib.id = desc->id;
  ib.tree = engine_->catalog()->index(desc->id);
  ib.key_cols = {0};
  engine_->records()->RegisterBuild(table, BuildAlgo::kNsf, {ib});
  ASSERT_OK(engine_->Commit(quiesce));

  // IB extracted rids[3]'s key earlier (pretend); then a transaction
  // deletes the record and commits, leaving a tombstone.
  std::string key = Key(Workload::MakeKey(3, 12));
  Transaction* deleter = engine_->Begin();
  ASSERT_OK(engine_->records()->DeleteRecord(deleter, table, rids[3]));
  ASSERT_OK(engine_->Commit(deleter));
  ASSERT_OK_AND_ASSIGN(auto look, ib.tree->Lookup(key, rids[3]));
  EXPECT_TRUE(look.found);
  EXPECT_TRUE(look.pseudo_deleted);

  // IB now tries to insert its stale key: rejected, stays pseudo-deleted.
  Transaction* ib_txn = engine_->Begin();
  std::vector<IndexKeyRef> refs{{key, rids[3]}};
  BTree::IbStats stats;
  ASSERT_OK(ib.tree->IbInsertBatch(ib_txn, refs, false, nullptr, &stats));
  ASSERT_OK(engine_->Commit(ib_txn));
  EXPECT_EQ(stats.skipped_tombstones, 1u);
  ASSERT_OK_AND_ASSIGN(look, ib.tree->Lookup(key, rids[3]));
  EXPECT_TRUE(look.pseudo_deleted);
  engine_->records()->UnregisterBuild(table);
}

TEST_F(NsfBuilderTest, UniqueBuildSucceedsOnUniqueData) {
  TableId table = MakeTable();
  Populate(table, 1000);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table, /*unique=*/true), &index));
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, UniqueBuildDetectsCommittedDuplicates) {
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine_->records()
                  ->InsertRecord(txn, table,
                                 Schema::EncodeRecord(
                                     {Workload::MakeKey(i % 9, 12), "p"}))
                  .status());
  }
  ASSERT_OK(engine_->Commit(txn));
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table, /*unique=*/true), &index);
  EXPECT_TRUE(s.IsUniqueViolation()) << s.ToString();
  EXPECT_TRUE(engine_->catalog()->IndexesOf(table).empty());
}

TEST_F(NsfBuilderTest, ResumeAfterCrashDuringScan) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.sort_checkpoint_every_keys = 500;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("nsf.scan", 8);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  NsfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &index, &stats));
  // Resume re-scans only the post-checkpoint pages.
  EXPECT_LT(stats.keys_extracted, 3000u);
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, ResumeAfterCrashDuringInserts) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.ib_checkpoint_every_keys = 500;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("nsf.insert_batch", 40);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  NsfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &index, &stats));
  // Inserts resumed from the checkpoint, not from scratch.
  EXPECT_LT(stats.ib.inserted, 3000u);
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, ResumeWithConcurrentUpdatesAfterRestart) {
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  options_.ib_checkpoint_every_keys = 400;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("nsf.insert_batch", 20);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected());

  CrashAndRestart();
  // Transactions run against the half-built index before Resume: the
  // reattached build keeps them maintaining it.
  WorkloadOptions wo;
  wo.threads = 2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  WorkloadStats wstats;
  ASSERT_OK(workload.Run(500, &wstats));
  EXPECT_GT(wstats.commits, 0u);

  NsfIndexBuilder resumed(engine_.get());
  ASSERT_OK(resumed.Resume(table, &index, nullptr));
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, CommitFailpointAbortsAndResumeCompletes) {
  TableId table = MakeTable();
  Populate(table, 1500);
  options_.ib_checkpoint_every_keys = 400;
  ReopenWithOptions();

  // Injected at the final commit edge: the build aborts with its last
  // checkpoint on disk and the insert txn still open (a loser at
  // restart), exactly as if the process had died there.
  FailPointRegistry::Instance().Arm("nsf.commit");
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  NsfIndexBuilder resumed(engine_.get());
  ASSERT_OK(resumed.Resume(table, &index, nullptr));
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, SaveMetaFailpointAbortsAndResumeCompletes) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.ib_checkpoint_every_keys = 500;
  ReopenWithOptions();

  // Let the first checkpoint persist, fail the second: Resume starts
  // from the surviving checkpoint, not from scratch.
  FailPointRegistry::Instance().Arm("build.save_meta", 1);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  NsfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &index, &stats));
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, CancelDropsDescriptorUnderQuiesce) {
  TableId table = MakeTable();
  Populate(table, 500);
  FailPointRegistry::Instance().Arm("nsf.insert_batch", 2);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected());
  ASSERT_OK(builder.Cancel(table));
  EXPECT_TRUE(engine_->catalog()->IndexesOf(table).empty());
  // Updates continue normally afterwards.
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"after-cancel", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));
}

TEST_F(NsfBuilderTest, PseudoDeleteGcCleansCommittedTombstones) {
  TableId table = MakeTable();
  auto rids = Populate(table, 1000);
  // Build with concurrent deletes to generate pseudo-deleted keys.
  WorkloadOptions wo;
  wo.threads = 2;
  wo.insert_pct = 0.1;
  wo.delete_pct = 0.6;
  wo.update_pct = 0.2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 1000);
  workload.Start();
  NsfIndexBuilder builder(engine_.get());
  BuildParams params = Params(table);
  IndexId index;
  Status s = builder.Build(params, &index);
  workload.Stop();
  ASSERT_OK(s);
  ExpectIndexConsistent(table, index);

  BTree* tree = engine_->catalog()->index(index);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto before, tv.Clustering());
  PseudoDeleteGC gc(engine_.get());
  GcStats gc_stats;
  ASSERT_OK(gc.Run(index, &gc_stats));
  EXPECT_EQ(gc_stats.removed, before.pseudo_deleted);
  ASSERT_OK_AND_ASSIGN(auto after, tv.Clustering());
  EXPECT_EQ(after.pseudo_deleted, 0u);
  ExpectIndexConsistent(table, index);
}

TEST_F(NsfBuilderTest, GcSkipsUncommittedDeletions) {
  TableId table = MakeTable();
  auto rids = Populate(table, 20);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table), &index));

  // A new build-in-progress is needed for pseudo-deletes; emulate one so
  // DeleteRecord produces tombstones... Instead, use the tree directly:
  // pseudo-delete under an uncommitted transaction holding the X lock.
  BTree* tree = engine_->catalog()->index(index);
  Transaction* deleter = engine_->Begin();
  std::string key = Key(Workload::MakeKey(0, 12));
  ASSERT_OK(engine_->locks()->Lock(deleter->id(),
                                   RecordLockId(table, rids[0]),
                                   LockMode::kX));
  ASSERT_OK(tree->PseudoDelete(deleter, key, rids[0]).status());

  PseudoDeleteGC gc(engine_.get());
  GcStats stats;
  ASSERT_OK(gc.Run(index, &stats));
  EXPECT_EQ(stats.removed, 0u);
  EXPECT_EQ(stats.skipped_locked, 1u);
  ASSERT_OK(engine_->Rollback(deleter));
  ExpectIndexConsistent(table, index);
}

}  // namespace
}  // namespace oib
