#include <gtest/gtest.h>

#include <thread>

#include "btree/tree_verifier.h"
#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class OfflineBuilderTest : public EngineTest {};

TEST_F(OfflineBuilderTest, BuildsCorrectIndex) {
  TableId table = MakeTable();
  Populate(table, 2000);
  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "idx";
  params.table = table;
  params.key_cols = {0};
  IndexId index;
  BuildStats stats;
  ASSERT_OK(builder.Build(params, &index, &stats));
  EXPECT_EQ(stats.keys_extracted, 2000u);
  EXPECT_EQ(stats.keys_loaded, 2000u);
  EXPECT_GT(stats.quiesce_ms, 0.0);
  ExpectIndexConsistent(table, index);
}

TEST_F(OfflineBuilderTest, BottomUpBuildIsPerfectlyClustered) {
  TableId table = MakeTable();
  Populate(table, 5000);
  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "idx";
  params.table = table;
  params.key_cols = {0};
  IndexId index;
  ASSERT_OK(builder.Build(params, &index));
  BTree* tree = engine_->catalog()->index(index);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto clustering, tv.Clustering());
  EXPECT_GT(clustering.leaf_pages, 10u);
  // Leaves allocated sequentially; the only gaps are the internal pages
  // allocated when a level fills (~1 per 30 leaves at 4 KiB pages).
  EXPECT_GT(clustering.adjacency, 0.95);
  // Fill factor respected: ~90% full leaves (except possibly the last).
  EXPECT_GT(clustering.utilization, 0.7);
}

TEST_F(OfflineBuilderTest, BlocksConcurrentUpdatesForWholeBuild) {
  // The updater must be able to out-wait the entire build even on a
  // heavily loaded machine.
  options_.lock_timeout_ms = 60'000;
  ReopenWithOptions();
  TableId table = MakeTable();
  auto rids = Populate(table, 3000);

  std::atomic<bool> update_done{false};
  std::atomic<bool> build_done{false};
  IndexId index = kInvalidIndexId;
  Status build_status;
  std::thread build_thread([&] {
    OfflineIndexBuilder builder(engine_.get());
    BuildParams params;
    params.name = "idx";
    params.table = table;
    params.key_cols = {0};
    build_status = builder.Build(params, &index);
    build_done.store(true);
  });
  // Wait until the builder holds the table X lock (a conditional IS probe
  // comes back Busy).  On a loaded single-core machine this thread can be
  // starved past the entire lock window, so also stop once the build is
  // over — spinning forever here used to hang the suite (and each probe
  // txn appends WAL, so the spin also exhausted memory).
  bool caught_lock_window = false;
  while (!build_done.load()) {
    Transaction* probe = engine_->Begin();
    LockOptions opt;
    opt.conditional = true;
    opt.instant = true;
    Status s = engine_->locks()->Lock(probe->id(), TableLockId(table),
                                      LockMode::kIS, opt);
    (void)engine_->Rollback(probe);
    if (s.IsBusy()) {
      caught_lock_window = true;
      break;
    }
    std::this_thread::yield();
  }
  // While the build holds its X lock, an updater's conditional IX is
  // denied — "current DBMSs do not allow updates while building an index".
  // (Skipped when the build outran the probe: the window is gone.)
  if (caught_lock_window) {
    Transaction* txn = engine_->Begin();
    LockOptions opt;
    opt.conditional = true;
    Status s = engine_->locks()->Lock(txn->id(), TableLockId(table),
                                      LockMode::kIX, opt);
    EXPECT_TRUE(s.IsBusy()) << s.ToString();
    (void)engine_->Rollback(txn);
  }
  std::thread updater([&] {
    // A blocking update waits out the whole build.
    Transaction* txn = engine_->Begin();
    Status s = engine_->records()->UpdateRecord(
        txn, table, rids[0], Schema::EncodeRecord({"newkey00000x", "p"}));
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (s.ok()) {
      (void)engine_->Commit(txn);
    } else {
      (void)engine_->Rollback(txn);
    }
    update_done.store(true);
  });
  build_thread.join();
  updater.join();
  ASSERT_OK(build_status);
  EXPECT_TRUE(update_done.load());
  EXPECT_TRUE(build_done.load());
  ExpectIndexConsistent(table, index);
}

TEST_F(OfflineBuilderTest, UniqueViolationAborts) {
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"same", "a"}))
                .status());
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"same", "b"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));

  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "u";
  params.table = table;
  params.unique = true;
  params.key_cols = {0};
  IndexId index;
  Status s = builder.Build(params, &index);
  EXPECT_TRUE(s.IsUniqueViolation()) << s.ToString();
  // Descriptor dropped: catalog holds no indexes for the table.
  EXPECT_TRUE(engine_->catalog()->IndexesOf(table).empty());
}

TEST_F(OfflineBuilderTest, FailedBuildReleasesLoaderLatches) {
  // Regression: the abort path used to run the transaction rollback with
  // the bulk loader's page X latches still open (found by the lock-rank
  // checker; loaders must Abandon() before abort_build).  A leaked latch
  // would wedge everything that touches those frames afterwards.
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  Rid dup_rid;
  {
    auto r = engine_->records()->InsertRecord(
        txn, table, Schema::EncodeRecord({"same", "a"}));
    ASSERT_OK(r.status());
  }
  {
    auto r = engine_->records()->InsertRecord(
        txn, table, Schema::EncodeRecord({"same", "b"}));
    ASSERT_OK(r.status());
    dup_rid = *r;
  }
  ASSERT_OK(engine_->Commit(txn));

  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "u";
  params.table = table;
  params.unique = true;
  params.key_cols = {0};
  IndexId index;
  Status s = builder.Build(params, &index);
  ASSERT_TRUE(s.IsUniqueViolation()) << s.ToString();

  // Every frame must be unpinned and unlatched again: deleting the
  // duplicate and rebuilding exercises the same heap pages and fresh
  // tree pages end-to-end (a leaked latch hangs here, tripping the
  // suite timeout; a leaked pin trips DiscardAll-style asserts later).
  txn = engine_->Begin();
  ASSERT_OK(engine_->records()->DeleteRecord(txn, table, dup_rid));
  ASSERT_OK(engine_->Commit(txn));
  ASSERT_OK(builder.Build(params, &index));
  ExpectIndexConsistent(table, index);
}

TEST_F(OfflineBuilderTest, EmptyTableBuild) {
  TableId table = MakeTable();
  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "idx";
  params.table = table;
  params.key_cols = {0};
  IndexId index;
  BuildStats stats;
  ASSERT_OK(builder.Build(params, &index, &stats));
  EXPECT_EQ(stats.keys_loaded, 0u);
  ExpectIndexConsistent(table, index);
}

TEST_F(OfflineBuilderTest, IndexSurvivesCrashAfterBuild) {
  TableId table = MakeTable();
  Populate(table, 1000);
  OfflineIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "idx";
  params.table = table;
  params.key_cols = {0};
  IndexId index;
  ASSERT_OK(builder.Build(params, &index));

  CrashAndRestart();
  ExpectIndexConsistent(table, index);
  // And it keeps absorbing maintenance after restart.
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"zzzz", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));
  ExpectIndexConsistent(table, index);
}

}  // namespace
}  // namespace oib
