// Engine / recovery flows parameterized over the durable world: every
// case runs once on InMemoryDisk and once on FileDisk (real files, with
// crash cycles that re-attach from disk — see EngineTest::CrashAndRestart).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class EngineOnDiskTest : public EngineDiskTest {
 protected:
  BuildParams Params(TableId table, BuildAlgo algo) {
    BuildParams p;
    p.name = "idx";
    p.table = table;
    p.unique = false;
    p.key_cols = {0};
    (void)algo;
    return p;
  }

  uint64_t CountRows(TableId table) {
    uint64_t n = 0;
    EXPECT_OK(engine_->catalog()->table(table)->ForEach(
        [&](const Rid&, std::string_view) { ++n; }));
    return n;
  }
};

TEST_P(EngineOnDiskTest, CommittedRowsSurviveCrash) {
  TableId table = MakeTable();
  Populate(table, 500);
  CrashAndRestart();
  EXPECT_EQ(CountRows(table), 500u);
  EXPECT_GT(recovery_stats_.records_scanned, 0u);
}

TEST_P(EngineOnDiskTest, UncommittedTxnRolledBackAtRestart) {
  TableId table = MakeTable();
  Populate(table, 100);
  Transaction* txn = engine_->Begin();
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(engine_->records()
                  ->InsertRecord(txn, table,
                                 Schema::EncodeRecord(
                                     {"loser" + std::to_string(i), "p"}))
                  .status());
  }
  // Make the loser's records durable in the log without committing.
  ASSERT_OK(engine_->log()->FlushAll());
  CrashAndRestart();
  EXPECT_EQ(recovery_stats_.loser_txns, 1u);
  EXPECT_EQ(CountRows(table), 100u);
}

TEST_P(EngineOnDiskTest, DropUnflushedBoundaryKeepsExactlyCommittedState) {
  // Commit N batches; the WAL is fsynced at each commit, so the crash
  // (which drops everything after the durable boundary) must preserve
  // every committed batch and nothing of the in-flight one.
  TableId table = MakeTable();
  Populate(table, 50);
  for (int batch = 0; batch < 5; ++batch) {
    Transaction* txn = engine_->Begin();
    for (int i = 0; i < 20; ++i) {
      ASSERT_OK(
          engine_->records()
              ->InsertRecord(txn, table,
                             Schema::EncodeRecord(
                                 {"b" + std::to_string(batch) + "_" +
                                      std::to_string(i),
                                  "p"}))
              .status());
    }
    ASSERT_OK(engine_->Commit(txn));
  }
  // In-flight txn: never flushed, must vanish entirely.
  Transaction* inflight = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(inflight, table,
                               Schema::EncodeRecord({"inflight", "p"}))
                .status());
  CrashAndRestart();
  EXPECT_EQ(CountRows(table), 50u + 5 * 20u);
}

TEST_P(EngineOnDiskTest, CheckpointBoundsRedoAndStateSurvives) {
  TableId table = MakeTable();
  Populate(table, 300);
  ASSERT_OK(engine_->Checkpoint());
  uint64_t before = 0;
  {
    CrashAndRestart();
    before = recovery_stats_.records_scanned;
    EXPECT_EQ(CountRows(table), 300u);
  }
  Populate(table, 300);  // appends 300 more rows after the checkpoint
  CrashAndRestart();
  EXPECT_EQ(CountRows(table), 600u);
  EXPECT_GT(recovery_stats_.records_scanned, before);
}

TEST_P(EngineOnDiskTest, NsfBuildResumesAcrossCrash) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.ib_checkpoint_every_keys = 500;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("nsf.insert_batch", 40);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table, BuildAlgo::kNsf), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  NsfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &index, &stats));
  EXPECT_LT(stats.ib.inserted, 3000u);  // resumed from the checkpoint
  ExpectIndexConsistent(table, index);
}

TEST_P(EngineOnDiskTest, SfBuildResumesAcrossCrash) {
  TableId table = MakeTable();
  Populate(table, 2000);
  options_.sort_checkpoint_every_keys = 400;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("sf.scan", 10);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table, BuildAlgo::kSf), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  ASSERT_OK(resumed.Resume(table, nullptr));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_P(EngineOnDiskTest, ParallelRedoRecoversSameState) {
  TableId table = MakeTable();
  Populate(table, 400);
  options_.recovery_threads = 4;
  // No flush: restart replays the whole insert history partitioned
  // across four workers.
  ASSERT_OK(engine_->log()->FlushAll());
  CrashAndRestart();
  EXPECT_EQ(recovery_stats_.redo_threads, 4u);
  EXPECT_EQ(CountRows(table), 400u);
  // And a second cycle over the recovered state.
  CrashAndRestart();
  EXPECT_EQ(CountRows(table), 400u);
}

TEST_P(EngineOnDiskTest, DoubleCrashIsIdempotent) {
  TableId table = MakeTable();
  Populate(table, 250);
  CrashAndRestart();
  CrashAndRestart();
  EXPECT_EQ(CountRows(table), 250u);
  // The engine stays writable after repeated recoveries.
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"after", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_EQ(CountRows(table), 251u);
}

INSTANTIATE_TEST_SUITE_P(Disks, EngineOnDiskTest,
                         ::testing::Values(DiskKind::kInMemory,
                                           DiskKind::kFile),
                         DiskParamName);

}  // namespace
}  // namespace oib
