// Figure 2 (index updates during rollback) transition scenarios, including
// the two-index example spelled out in paper section 3.2.3:
//
//   "T1 updates data page P10; index build for I3 begins and completes;
//    index build for I4 begins and causes IB to process P10 and move
//    Target-RID past P10; T1 rolls back its change to P10.  In this
//    scenario, while undoing its change to P10, T1 has to make an entry in
//    the side-file for the index undo to be performed in I4 and it should
//    perform a logical undo (by traversing the tree) in I3."

#include <gtest/gtest.h>

#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class Figure2Test : public EngineTest {
 protected:
  std::string Rec(const std::string& key, const std::string& payload = "p") {
    return Schema::EncodeRecord({key, payload});
  }

  // Normalized single-string-column key, as the index and side-file
  // store it.
  static std::string Key(const std::string& v) {
    std::string k;
    keyenc::AppendStringColumn(&k, v);
    return k;
  }
};

TEST_F(Figure2Test, InvisibleForwardVisibleRollbackAppendsInverse) {
  // Forward op while the SF scan had NOT passed the record; the scan
  // passes it before rollback: the undo must append the inverse entry
  // (the record's pre-change state was extracted by IB).
  TableId table = MakeTable();
  auto rids = Populate(table, 50);

  auto desc = engine_->catalog()->CreateIndex("i4", table, false, {0},
                                              BuildAlgo::kSf);
  ASSERT_TRUE(desc.ok());
  InBuildIndex ib;
  ib.id = desc->id;
  ib.tree = engine_->catalog()->index(desc->id);
  ib.side_file = engine_->catalog()->side_file(desc->id);
  ib.key_cols = {0};
  auto build = engine_->records()->RegisterBuild(table, BuildAlgo::kSf, {ib});
  build->SetCurrentRid(Rid::MinusInfinity());  // scan not started

  Transaction* t1 = engine_->Begin();
  ASSERT_OK(engine_->records()->UpdateRecord(
      t1, table, rids[10], Rec("zzzzNEWKEY01")));
  EXPECT_EQ(ib.side_file->entries_appended(), 0u);  // invisible: no entry

  // IB's scan passes the record (it extracts the NEW key state).
  build->SetCurrentRid(Rid::Infinity());

  ASSERT_OK(engine_->Rollback(t1));
  // Figure 2: count-mismatch compensation — inverse entries for the
  // update: delete the new key, insert the old key.
  EXPECT_EQ(ib.side_file->entries_appended(), 2u);
  SideFile::Cursor cursor = ib.side_file->Begin();
  std::vector<SideFile::Entry> entries;
  ASSERT_OK(ib.side_file->ReadBatch(&cursor, 10, &entries).status());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].op, SideFileOp::kDeleteKey);
  EXPECT_EQ(entries[0].key, Key("zzzzNEWKEY01"));
  EXPECT_EQ(entries[1].op, SideFileOp::kInsertKey);
  EXPECT_EQ(entries[1].key, Key(Workload::MakeKey(10, 12)));
  engine_->records()->UnregisterBuild(table);
}

TEST_F(Figure2Test, CompletedSinceForwardGetsDirectLogicalUndo) {
  // Forward op before any build; a build completes before rollback: the
  // undo must traverse the (now complete) tree and fix it directly.
  TableId table = MakeTable();
  auto rids = Populate(table, 50);

  Transaction* t1 = engine_->Begin();
  ASSERT_OK(engine_->records()->UpdateRecord(
      t1, table, rids[10], Rec("zzzzNEWKEY02")));

  // I3 is built and completed while T1 is still active (SF never
  // quiesces, so this is legal).
  SfIndexBuilder builder(engine_.get());
  BuildParams params;
  params.name = "i3";
  params.table = table;
  params.key_cols = {0};
  IndexId i3;
  ASSERT_OK(builder.Build(params, &i3));
  BTree* tree = engine_->catalog()->index(i3);
  // The completed index reflects T1's uncommitted new key (extracted by
  // the scan).
  ASSERT_OK_AND_ASSIGN(auto look, tree->Lookup(Key("zzzzNEWKEY02"), rids[10]));
  EXPECT_TRUE(look.found);

  ASSERT_OK(engine_->Rollback(t1));
  ASSERT_OK_AND_ASSIGN(look, tree->Lookup(Key("zzzzNEWKEY02"), rids[10]));
  EXPECT_FALSE(look.found);
  ASSERT_OK_AND_ASSIGN(
      look, tree->Lookup(Key(Workload::MakeKey(10, 12)), rids[10]));
  EXPECT_TRUE(look.found);
  ExpectIndexConsistent(table, i3);
}

TEST_F(Figure2Test, PaperSection323TwoIndexScenario) {
  TableId table = MakeTable();
  auto rids = Populate(table, 50);

  // T1 updates "data page P10" (record rids[10]) before any index exists.
  Transaction* t1 = engine_->Begin();
  ASSERT_OK(engine_->records()->UpdateRecord(
      t1, table, rids[10], Rec("zzzzNEWKEY03")));

  // Index build for I3 begins and completes.
  SfIndexBuilder b3(engine_.get());
  BuildParams p3;
  p3.name = "i3";
  p3.table = table;
  p3.key_cols = {0};
  IndexId i3;
  ASSERT_OK(b3.Build(p3, &i3));

  // Index build for I4 begins, and IB's scan moves past P10 (we stage I4
  // by hand to hold it in the in-progress state).
  auto d4 = engine_->catalog()->CreateIndex("i4", table, false, {0},
                                            BuildAlgo::kSf);
  ASSERT_TRUE(d4.ok());
  InBuildIndex ib4;
  ib4.id = d4->id;
  ib4.tree = engine_->catalog()->index(d4->id);
  ib4.side_file = engine_->catalog()->side_file(d4->id);
  ib4.key_cols = {0};
  auto build4 =
      engine_->records()->RegisterBuild(table, BuildAlgo::kSf, {ib4});
  build4->SetCurrentRid(Rid::Infinity());

  // T1 rolls back: entry in the side-file for I4, logical undo in I3.
  uint64_t sf_before = ib4.side_file->entries_appended();
  ASSERT_OK(engine_->Rollback(t1));
  EXPECT_EQ(ib4.side_file->entries_appended(), sf_before + 2);

  BTree* t3 = engine_->catalog()->index(i3);
  ASSERT_OK_AND_ASSIGN(auto look, t3->Lookup(Key("zzzzNEWKEY03"), rids[10]));
  EXPECT_FALSE(look.found);
  ASSERT_OK_AND_ASSIGN(look,
                       t3->Lookup(Key(Workload::MakeKey(10, 12)), rids[10]));
  EXPECT_TRUE(look.found);
  ExpectIndexConsistent(table, i3);
  engine_->records()->UnregisterBuild(table);
}

TEST_F(Figure2Test, VisibleForwardVisibleRollbackBothEntriesAppended) {
  // Equal counts (visible at both times): the rollback still appends the
  // inverse — the forward entry alone would re-apply the change.
  TableId table = MakeTable();
  auto rids = Populate(table, 50);
  auto desc = engine_->catalog()->CreateIndex("i", table, false, {0},
                                              BuildAlgo::kSf);
  ASSERT_TRUE(desc.ok());
  InBuildIndex ib;
  ib.id = desc->id;
  ib.tree = engine_->catalog()->index(desc->id);
  ib.side_file = engine_->catalog()->side_file(desc->id);
  ib.key_cols = {0};
  auto build = engine_->records()->RegisterBuild(table, BuildAlgo::kSf, {ib});
  build->SetCurrentRid(Rid::Infinity());

  Transaction* t1 = engine_->Begin();
  ASSERT_OK(engine_->records()->DeleteRecord(t1, table, rids[5]));
  EXPECT_EQ(ib.side_file->entries_appended(), 1u);  // forward delete entry
  ASSERT_OK(engine_->Rollback(t1));
  EXPECT_EQ(ib.side_file->entries_appended(), 2u);  // inverse insert entry
  SideFile::Cursor cursor = ib.side_file->Begin();
  std::vector<SideFile::Entry> entries;
  ASSERT_OK(ib.side_file->ReadBatch(&cursor, 10, &entries).status());
  EXPECT_EQ(entries[0].op, SideFileOp::kDeleteKey);
  EXPECT_EQ(entries[1].op, SideFileOp::kInsertKey);
  EXPECT_EQ(entries[1].key, Key(Workload::MakeKey(5, 12)));
  engine_->records()->UnregisterBuild(table);
}

}  // namespace
}  // namespace oib
