// Stress scenarios: memory pressure (tiny buffer pool forces eviction and
// the WAL-before-data rule through every code path), repeated crashes,
// GC under live load, and multi-threaded tree churn.

#include <gtest/gtest.h>

#include <thread>

#include "btree/tree_verifier.h"
#include "core/index_builder.h"
#include "core/pseudo_delete_gc.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class StressTest : public EngineTest {};

TEST_F(StressTest, BuildsUnderSevereBufferPoolPressure) {
  // 64 pages of pool for a ~270-page table + index: every phase must
  // survive constant eviction, and evicted dirty pages force WAL flushes.
  options_.buffer_pool_pages = 64;
  ReopenWithOptions();
  TableId table = MakeTable();
  auto rids = Populate(table, 20000);
  EXPECT_GT(engine_->pool()->evictions(), 0u);

  for (const char* algo : {"sf", "nsf"}) {
    BuildParams params;
    params.name = std::string("idx_") + algo;
    params.table = table;
    params.key_cols = {0};
    IndexId index;
    Status s;
    if (std::string(algo) == "sf") {
      SfIndexBuilder b(engine_.get());
      s = b.Build(params, &index);
    } else {
      NsfIndexBuilder b(engine_.get());
      s = b.Build(params, &index);
    }
    ASSERT_OK(s);
    ExpectIndexConsistent(table, index);
  }
  (void)rids;
}

TEST_F(StressTest, CrashUnderBufferPressureRecovers) {
  options_.buffer_pool_pages = 64;
  ReopenWithOptions();
  TableId table = MakeTable();
  Populate(table, 10000);
  // Under pressure many pages are already on disk; recovery must cope
  // with an arbitrary mix of flushed and unflushed state.
  CrashAndRestart();
  uint64_t count = 0;
  ASSERT_OK(engine_->catalog()->table(table)->ForEach(
      [&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 10000u);
}

TEST_F(StressTest, DoubleCrashDuringResumedBuild) {
  TableId table = MakeTable();
  Populate(table, 4000);
  options_.sort_checkpoint_every_keys = 500;
  options_.ib_checkpoint_every_keys = 500;
  ReopenWithOptions();

  // First crash during the scan.
  FailPointRegistry::Instance().Arm("sf.scan", 10);
  {
    SfIndexBuilder builder(engine_.get());
    BuildParams p;
    p.name = "i";
    p.table = table;
    p.key_cols = {0};
    IndexId index;
    ASSERT_TRUE(builder.Build(p, &index).IsInjected());
  }
  CrashAndRestart();

  // Second crash during the resumed build's load phase.
  FailPointRegistry::Instance().Arm("sf.load", 1000);
  {
    SfIndexBuilder builder(engine_.get());
    Status s = builder.Resume(table, nullptr);
    ASSERT_TRUE(s.IsInjected()) << s.ToString();
  }
  CrashAndRestart();

  // Third attempt completes.
  SfIndexBuilder builder(engine_.get());
  ASSERT_OK(builder.Resume(table, nullptr));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(StressTest, NsfDoubleCrashAcrossPhases) {
  TableId table = MakeTable();
  Populate(table, 4000);
  options_.sort_checkpoint_every_keys = 500;
  options_.ib_checkpoint_every_keys = 500;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("nsf.scan", 10);
  {
    NsfIndexBuilder builder(engine_.get());
    BuildParams p;
    p.name = "i";
    p.table = table;
    p.key_cols = {0};
    IndexId index;
    ASSERT_TRUE(builder.Build(p, &index).IsInjected());
  }
  CrashAndRestart();

  FailPointRegistry::Instance().Arm("nsf.insert_batch", 20);
  {
    NsfIndexBuilder builder(engine_.get());
    IndexId index;
    ASSERT_TRUE(builder.Resume(table, &index, nullptr).IsInjected());
  }
  CrashAndRestart();

  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Resume(table, &index, nullptr));
  ExpectIndexConsistent(table, index);
}

TEST_F(StressTest, GcRunsAsBackgroundActivityUnderLoad) {
  // Section 2.2.4: "garbage collection ... can be scheduled as a
  // background activity" — run it while transactions keep updating.
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  WorkloadOptions wo;
  wo.threads = 2;
  wo.delete_pct = 0.4;
  wo.update_changes_key = 1.0;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  WaitForOps(&workload, 20);

  NsfIndexBuilder builder(engine_.get());
  BuildParams p;
  p.name = "i";
  p.table = table;
  p.key_cols = {0};
  IndexId index;
  ASSERT_OK(builder.Build(p, &index));

  // GC passes while the workload is still running.
  PseudoDeleteGC gc(engine_.get());
  for (int pass = 0; pass < 3; ++pass) {
    GcStats stats;
    ASSERT_OK(gc.Run(index, &stats));
  }
  workload.Stop();
  // Quiesced now: one final pass, then exact verification.
  GcStats final_stats;
  ASSERT_OK(gc.Run(index, &final_stats));
  ExpectIndexConsistent(table, index);
  BTree* tree = engine_->catalog()->index(index);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto clustering, tv.Clustering());
  EXPECT_EQ(clustering.pseudo_deleted, 0u);
}

TEST_F(StressTest, ConcurrentMixedTreeChurnMatchesOracle) {
  // Multiple threads hammer one tree with inserts and pseudo-deletes on
  // disjoint key ranges; the final tree must match the union of the
  // per-thread oracles and pass the structural check.
  TableId table = MakeTable();
  auto desc = engine_->catalog()->CreateIndex("t", table, false, {0},
                                              BuildAlgo::kOffline);
  ASSERT_TRUE(desc.ok());
  BTree* tree = engine_->catalog()->index(desc->id);

  constexpr int kThreads = 4;
  constexpr int kOps = 1500;
  std::vector<std::map<std::pair<std::string, Rid>, bool>> oracles(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(t * 31 + 5);
      Transaction* txn = engine_->Begin();
      auto& oracle = oracles[t];
      for (int i = 0; i < kOps; ++i) {
        char buf[24];
        snprintf(buf, sizeof(buf), "T%d-%06llu", t,
                 (unsigned long long)rng.Uniform(500));
        std::string key = buf;
        Rid rid(static_cast<PageId>(t), 0);
        auto entry = std::make_pair(key, rid);
        if (rng.NextDouble() < 0.6) {
          auto r = tree->Insert(txn, key, rid);
          ASSERT_TRUE(r.ok());
          oracle[entry] = true;
        } else {
          auto r = tree->PseudoDelete(txn, key, rid);
          ASSERT_TRUE(r.ok());
          oracle[entry] = false;
        }
        if (i % 500 == 499) {
          ASSERT_TRUE(engine_->Commit(txn).ok());
          txn = engine_->Begin();
        }
      }
      ASSERT_TRUE(engine_->Commit(txn).ok());
    });
  }
  for (auto& th : threads) th.join();

  std::map<std::pair<std::string, Rid>, bool> seen;
  ASSERT_OK(tree->ScanAll([&](std::string_view key, const Rid& rid,
                              uint8_t flags) {
    seen[{std::string(key), rid}] = (flags & kEntryPseudoDeleted) == 0;
  }));
  size_t expected = 0;
  for (const auto& oracle : oracles) {
    expected += oracle.size();
    for (const auto& [entry, live] : oracle) {
      auto it = seen.find(entry);
      ASSERT_NE(it, seen.end()) << entry.first;
      EXPECT_EQ(it->second, live) << entry.first;
    }
  }
  EXPECT_EQ(seen.size(), expected);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto report, tv.Check());
  EXPECT_TRUE(report.ok) << report.error;
}

TEST_F(StressTest, BackToBackBuildsOnSameTable) {
  // Build, drop, rebuild with the other algorithm, repeatedly, with a
  // workload running throughout.
  TableId table = MakeTable();
  auto rids = Populate(table, 1500);
  WorkloadOptions wo;
  wo.threads = 2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 1500);
  workload.Start();
  WaitForOps(&workload, 10);

  for (int round = 0; round < 3; ++round) {
    BuildParams p;
    p.name = "idx_round" + std::to_string(round);
    p.table = table;
    p.key_cols = {0};
    IndexId index;
    Status s;
    if (round % 2 == 0) {
      SfIndexBuilder b(engine_.get());
      s = b.Build(p, &index);
    } else {
      NsfIndexBuilder b(engine_.get());
      s = b.Build(p, &index);
    }
    ASSERT_OK(s);
    // Keep maintaining all the ready indexes built so far.
  }
  workload.Stop();
  for (const auto& d : engine_->catalog()->IndexesOf(table)) {
    ExpectIndexConsistent(table, d.id);
  }
}

}  // namespace
}  // namespace oib
