// SF (Side-File) algorithm tests — paper section 3.

#include <gtest/gtest.h>

#include <thread>

#include "btree/tree_verifier.h"
#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class SfBuilderTest : public EngineTest {
 protected:
  BuildParams Params(TableId table, bool unique = false,
                     const std::string& name = "sf_idx") {
    BuildParams p;
    p.name = name;
    p.table = table;
    p.unique = unique;
    p.key_cols = {0};
    return p;
  }
};

TEST_F(SfBuilderTest, QuietBuildMatchesTable) {
  TableId table = MakeTable();
  Populate(table, 3000);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  BuildStats stats;
  ASSERT_OK(builder.Build(Params(table), &index, &stats));
  EXPECT_EQ(stats.keys_extracted, 3000u);
  EXPECT_EQ(stats.keys_loaded, 3000u);
  EXPECT_EQ(stats.side_file_applied, 0u);  // no concurrent updates
  EXPECT_EQ(stats.quiesce_ms, 0.0);        // SF never quiesces
  ExpectIndexConsistent(table, index);
}

TEST_F(SfBuilderTest, BottomUpLoadWritesNoKeyLogRecords) {
  // "No log records are written by IB for inserting keys until side-file
  // processing begins" (section 4).
  TableId table = MakeTable();
  Populate(table, 3000);
  LogStats before = engine_->log()->stats();
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table), &index));
  LogStats after = engine_->log()->stats();
  uint64_t btree_records =
      after.records_by_rm[static_cast<size_t>(RmId::kBtree)] -
      before.records_by_rm[static_cast<size_t>(RmId::kBtree)];
  // Only tree-creation NTAs and the final anchor publish; no per-key or
  // per-leaf records for the 3000 keys.
  EXPECT_LT(btree_records, 10u);
  ExpectIndexConsistent(table, index);
}

TEST_F(SfBuilderTest, SfIndexMorePerfectlyClusteredThanNsf) {
  // Section 4: "the index built by SF would be more clustered... than the
  // one built by NSF" even without updates (page allocation interleaves
  // with NSF's logged top-down inserts only when updates run; quiet NSF
  // is also sequential, so compare under concurrent churn in the bench;
  // here just assert SF achieves perfect adjacency).
  // Prefix truncation shrinks the leaf count, so use enough rows that the
  // handful of internal-page allocations interleaved with the leaf chain
  // don't dominate the adjacency ratio.
  TableId table = MakeTable();
  Populate(table, 20000);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table), &index));
  BTree* tree = engine_->catalog()->index(index);
  TreeVerifier tv(tree, engine_->pool());
  ASSERT_OK_AND_ASSIGN(auto clustering, tv.Clustering());
  EXPECT_GT(clustering.adjacency, 0.9);
}

TEST_F(SfBuilderTest, ConcurrentWorkloadBuildStaysCorrect) {
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  WorkloadOptions wo;
  wo.threads = 2;
  wo.rollback_pct = 0.15;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  WaitForOps(&workload, 20);

  SfIndexBuilder builder(engine_.get());
  IndexId index;
  BuildStats stats;
  Status s = builder.Build(Params(table), &index, &stats);
  WorkloadStats wstats = workload.Stop();
  ASSERT_OK(s);
  EXPECT_GT(wstats.ops(), 0u);
  ExpectIndexConsistent(table, index);
}

TEST_F(SfBuilderTest, SideFileCollectsOnlyBehindTheScanUpdates) {
  TableId table = MakeTable();
  auto rids = Populate(table, 10000);
  WorkloadOptions wo;
  wo.threads = 2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 10000);
  workload.Start();
  WaitForOps(&workload, 20);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  BuildStats stats;
  uint64_t ops_before = workload.ops_done();
  Status s = builder.Build(Params(table), &index, &stats);
  uint64_t ops_during = workload.ops_done() - ops_before;
  workload.Stop();
  ASSERT_OK(s);
  if (ops_during > 500) {
    // Enough of the workload demonstrably overlapped the build that some
    // updates must have landed behind the scan (everything is "behind"
    // once Current-RID reaches infinity for the load/apply phases); those
    // flowed through the side-file.
    EXPECT_GT(engine_->records()->stats().side_file_appends.load(), 0u);
  }
  ExpectIndexConsistent(table, index);
}

TEST_F(SfBuilderTest, ConcurrentWorkloadManyThreadsHighChurn) {
  TableId table = MakeTable();
  auto rids = Populate(table, 1500);
  WorkloadOptions wo;
  wo.threads = 4;
  wo.update_changes_key = 0.9;
  wo.rollback_pct = 0.3;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 1500);
  workload.Start();
  WaitForOps(&workload, 20);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  WorkloadStats wstats = workload.Stop();
  ASSERT_OK(s);
  EXPECT_GT(wstats.commits, 0u);
  ExpectIndexConsistent(table, index);
}

TEST_F(SfBuilderTest, UpdatesAfterFlagFlipGoDirectlyToIndex) {
  TableId table = MakeTable();
  auto rids = Populate(table, 500);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  ASSERT_OK(builder.Build(Params(table), &index));

  uint64_t appends_before =
      engine_->records()->stats().side_file_appends.load();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"zzz-direct", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_EQ(engine_->records()->stats().side_file_appends.load(),
            appends_before);
  ExpectIndexConsistent(table, index);
  (void)rids;
}

TEST_F(SfBuilderTest, RollbackDuringBuildCompensatesViaSideFile) {
  // Section 3.2.3 / Figure 2: a transaction's rollback appends inverse
  // entries for an index whose build scan has passed its records.
  TableId table = MakeTable();
  auto rids = Populate(table, 1000);

  // Descriptor + registration by hand so we control the scan position.
  auto desc = engine_->catalog()->CreateIndex("sf_idx", table, false, {0},
                                              BuildAlgo::kSf);
  ASSERT_TRUE(desc.ok());
  InBuildIndex ib;
  ib.id = desc->id;
  ib.tree = engine_->catalog()->index(desc->id);
  ib.side_file = engine_->catalog()->side_file(desc->id);
  ib.key_cols = {0};
  auto build =
      engine_->records()->RegisterBuild(table, BuildAlgo::kSf, {ib});
  // Pretend the scan has passed everything.
  build->SetCurrentRid(Rid::Infinity());

  SideFile* sf = ib.side_file;
  uint64_t before = sf->entries_appended();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid, engine_->records()->InsertRecord(
                   txn, table, Schema::EncodeRecord({"zzzz-rb", "p"})));
  EXPECT_EQ(sf->entries_appended(), before + 1);  // forward insert entry
  ASSERT_OK(engine_->Rollback(txn));
  // The rollback appended the inverse (delete) entry.
  EXPECT_EQ(sf->entries_appended(), before + 2);

  // Read them back and check the op sequence.
  SideFile::Cursor cursor = sf->Begin();
  std::vector<SideFile::Entry> entries;
  ASSERT_OK(sf->ReadBatch(&cursor, 1000, &entries).status());
  ASSERT_EQ(entries.size(), before + 2);
  EXPECT_EQ(entries[before].op, SideFileOp::kInsertKey);
  EXPECT_EQ(entries[before].rid, rid);
  EXPECT_EQ(entries[before + 1].op, SideFileOp::kDeleteKey);
  EXPECT_EQ(entries[before + 1].rid, rid);
  engine_->records()->UnregisterBuild(table);
  (void)rids;
}

TEST_F(SfBuilderTest, InvisibleUpdatesMakeNoSideFileEntries) {
  TableId table = MakeTable();
  Populate(table, 100);
  auto desc = engine_->catalog()->CreateIndex("sf_idx", table, false, {0},
                                              BuildAlgo::kSf);
  ASSERT_TRUE(desc.ok());
  InBuildIndex ib;
  ib.id = desc->id;
  ib.tree = engine_->catalog()->index(desc->id);
  ib.side_file = engine_->catalog()->side_file(desc->id);
  ib.key_cols = {0};
  auto build =
      engine_->records()->RegisterBuild(table, BuildAlgo::kSf, {ib});
  build->SetCurrentRid(Rid::MinusInfinity());  // scan not started

  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"zzzz-inv", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_EQ(ib.side_file->entries_appended(), 0u);
  engine_->records()->UnregisterBuild(table);
}

TEST_F(SfBuilderTest, UniqueBuildSucceedsAndDetectsViolation) {
  TableId table = MakeTable();
  Populate(table, 500);
  {
    SfIndexBuilder builder(engine_.get());
    IndexId index;
    ASSERT_OK(builder.Build(Params(table, true, "u1"), &index));
    ExpectIndexConsistent(table, index);
  }
  // Drop u1 so a duplicate key value can exist in the table, then try
  // another unique build over the now non-unique data.
  auto all = engine_->catalog()->IndexesOf(table);
  for (const auto& d : all) {
    ASSERT_OK(engine_->catalog()->DropIndex(d.id));
  }
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord(
                                   {Workload::MakeKey(7, 12), "dup"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));

  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table, true, "u2"), &index);
  EXPECT_TRUE(s.IsUniqueViolation()) << s.ToString();
  EXPECT_TRUE(engine_->catalog()->IndexesOf(table).empty());
}

TEST_F(SfBuilderTest, BuildManyInOneScan) {
  // Section 6.2: multiple indexes in one scan of the data.
  TableId table = MakeTable();
  auto rids = Populate(table, 1500);
  WorkloadOptions wo;
  wo.threads = 2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 1500);
  workload.Start();
  WaitForOps(&workload, 20);

  SfIndexBuilder builder(engine_.get());
  std::vector<BuildParams> params;
  BuildParams p1 = Params(table, false, "multi_key");
  BuildParams p2 = Params(table, false, "multi_payload");
  p2.key_cols = {1};  // payload column — non-unique random strings
  params.push_back(p1);
  params.push_back(p2);
  std::vector<IndexId> ids;
  BuildStats stats;
  Status s = builder.BuildMany(params, &ids, &stats);
  workload.Stop();
  ASSERT_OK(s);
  ASSERT_EQ(ids.size(), 2u);
  // One scan fed both: pages scanned counted once.
  EXPECT_GT(stats.data_pages_scanned, 0u);
  ExpectIndexConsistent(table, ids[0]);
  ExpectIndexConsistent(table, ids[1]);
}

// ---- crash / resume ----

TEST_F(SfBuilderTest, ResumeAfterCrashDuringScan) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.sort_checkpoint_every_keys = 500;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("sf.scan", 10);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &stats));
  EXPECT_LT(stats.keys_extracted, 3000u);  // partial rescan only
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(SfBuilderTest, ResumeAfterCrashDuringLoad) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.ib_checkpoint_every_keys = 500;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("sf.load", 1200);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &stats));
  // The load resumed from the checkpointed highest key.
  EXPECT_LT(stats.keys_loaded, 3000u);
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(SfBuilderTest, ResumeAfterCrashDuringApply) {
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  options_.sf_apply_batch = 16;
  ReopenWithOptions();

  // Generate side-file traffic during the build, then crash during apply.
  WorkloadOptions wo;
  wo.threads = 2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  FailPointRegistry::Instance().Arm("sf.apply", 3);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  workload.Stop();
  if (s.ok()) {
    // Not enough side-file traffic to hit the fail point; still verify.
    auto descs = engine_->catalog()->IndexesOf(table);
    ExpectIndexConsistent(table, descs[0].id);
    return;
  }
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  ASSERT_OK(resumed.Resume(table, nullptr));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(SfBuilderTest, CrashBeforeFirstCheckpointRestartsCleanly) {
  TableId table = MakeTable();
  Populate(table, 1000);
  FailPointRegistry::Instance().Arm("sf.scan", 2);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected());

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &stats));
  EXPECT_EQ(stats.keys_extracted, 1000u);  // full rescan
  auto descs = engine_->catalog()->IndexesOf(table);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(SfBuilderTest, StaleSideFileEntriesFencedAfterScanRestart) {
  // A crash resets the scan position backwards; entries appended when the
  // (old) scan had passed a RID must be skipped after restart because the
  // resumed scan re-extracts those records (see DESIGN.md).
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  options_.sort_checkpoint_every_keys = 300;
  ReopenWithOptions();

  WorkloadOptions wo;
  wo.threads = 2;
  wo.update_changes_key = 1.0;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  // On a single-core runner the build can hit the armed failpoint before
  // the workload threads ever get a timeslice; wait for real activity so
  // the side-file is guaranteed to receive concurrent entries.
  WaitForOps(&workload, 1);
  FailPointRegistry::Instance().Arm("sf.scan", 20);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  WorkloadStats mid = workload.Stop();
  ASSERT_TRUE(s.IsInjected()) << s.ToString();
  EXPECT_GT(mid.ops(), 0u);

  CrashAndRestart();
  // More updates between restart and resume.
  Workload workload2(engine_.get(), table, wo);
  // Rebuild shard seeds from the current table contents.
  std::vector<Rid> live;
  ASSERT_OK(engine_->catalog()->table(table)->ForEach(
      [&](const Rid& rid, std::string_view) { live.push_back(rid); }));
  workload2.Seed(live, 100000);
  WorkloadStats post;
  ASSERT_OK(workload2.Run(300, &post));

  SfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &stats));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(SfBuilderTest, FinalizeFailpointAbortsAndResumeCompletes) {
  TableId table = MakeTable();
  Populate(table, 1500);
  options_.ib_checkpoint_every_keys = 400;
  ReopenWithOptions();

  // Injected just before the drain gate: the gate is never taken, so the
  // abort cannot wedge updaters, and Resume finishes the build.
  FailPointRegistry::Instance().Arm("sf.finalize");
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  // The engine is still usable — no latch or gate leaked.
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"post-abort", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  ASSERT_OK(resumed.Resume(table, nullptr));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(SfBuilderTest, CommitFailpointAbortsAndResumeCompletes) {
  TableId table = MakeTable();
  Populate(table, 1500);
  options_.ib_checkpoint_every_keys = 400;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("sf.commit");
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  ASSERT_OK(resumed.Resume(table, nullptr));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(SfBuilderTest, CancelDropsEverything) {
  TableId table = MakeTable();
  Populate(table, 500);
  FailPointRegistry::Instance().Arm("sf.scan", 2);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected());
  ASSERT_OK(builder.Cancel(table));
  EXPECT_TRUE(engine_->catalog()->IndexesOf(table).empty());
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table,
                               Schema::EncodeRecord({"post-cancel", "p"}))
                .status());
  ASSERT_OK(engine_->Commit(txn));
}

}  // namespace
}  // namespace oib
