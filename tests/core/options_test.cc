// ValidateOptions: malformed engine options must be rejected at
// construction with InvalidArgument, not discovered as corruption or
// division-by-zero deep inside a build.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class OptionsTest : public ::testing::Test {
 protected:
  // Opens an engine with `options` over a fresh in-memory env and returns
  // the construction status.
  Status TryOpen(const Options& options) {
    auto env = Env::InMemory(options);
    auto engine = Engine::Open(options, env.get());
    return engine.status();
  }
};

TEST_F(OptionsTest, DefaultsAreValid) {
  Options options;
  EXPECT_OK(ValidateOptions(options));
  EXPECT_OK(TryOpen(options));
}

TEST_F(OptionsTest, RejectsZeroBuildThreads) {
  Options options;
  options.build_threads = 0;
  Status s = TryOpen(options);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(OptionsTest, RejectsZeroMergeBatch) {
  Options options;
  options.merge_batch_keys = 0;
  Status s = ValidateOptions(options);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(OptionsTest, RejectsZeroMergeQueueDepth) {
  Options options;
  options.merge_queue_depth = 0;
  Status s = ValidateOptions(options);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(OptionsTest, RejectsZeroSortWorkspace) {
  Options options;
  options.sort_workspace_keys = 0;
  Status s = ValidateOptions(options);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(OptionsTest, RejectsTinyPageSize) {
  Options options;
  options.page_size = 64;
  Status s = ValidateOptions(options);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(OptionsTest, RejectsBadFanin) {
  Options options;
  options.sort_merge_fanin = 1;
  Status s = ValidateOptions(options);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(OptionsTest, RejectsBadFillFactor) {
  Options options;
  options.leaf_fill_factor = 0.0;
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
  options.leaf_fill_factor = 1.5;
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
}

TEST_F(OptionsTest, RejectsNonPowerOfTwoShards) {
  Options options;
  options.buffer_pool_shards = 3;
  Status s = ValidateOptions(options);
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  options.buffer_pool_shards = 8;
  EXPECT_OK(ValidateOptions(options));
  options.buffer_pool_shards = 0;  // auto
  EXPECT_OK(ValidateOptions(options));
}

TEST_F(OptionsTest, RejectsBadWalRing) {
  Options options;
  options.wal_ring_bytes = 1000;  // not a power of two
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
  options.wal_ring_bytes = 4096;  // too small
  EXPECT_TRUE(ValidateOptions(options).IsInvalidArgument());
  options.wal_ring_bytes = 1 << 17;
  EXPECT_OK(ValidateOptions(options));
}

TEST_F(OptionsTest, ValidationFailureNamesTheField) {
  Options options;
  options.build_threads = 0;
  Status s = ValidateOptions(options);
  EXPECT_NE(s.ToString().find("build_threads"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace oib
