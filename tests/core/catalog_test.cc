#include "core/catalog.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oib {
namespace {

class CatalogTest : public EngineTest {};

TEST_F(CatalogTest, DuplicateNamesRejected) {
  TableId t = MakeTable("dup");
  EXPECT_TRUE(
      engine_->catalog()->CreateTable("dup").status().IsInvalidArgument());
  auto i1 = engine_->catalog()->CreateIndex("i", t, false, {0},
                                            BuildAlgo::kOffline);
  ASSERT_TRUE(i1.ok());
  EXPECT_TRUE(engine_->catalog()
                  ->CreateIndex("i", t, false, {0}, BuildAlgo::kOffline)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(CatalogTest, IndexOnMissingTableRejected) {
  EXPECT_TRUE(engine_->catalog()
                  ->CreateIndex("i", 999, false, {0}, BuildAlgo::kOffline)
                  .status()
                  .IsNotFound());
}

TEST_F(CatalogTest, CreationOrderPreservedAcrossRestart) {
  TableId t = MakeTable();
  std::vector<IndexId> ids;
  for (int i = 0; i < 4; ++i) {
    auto d = engine_->catalog()->CreateIndex("i" + std::to_string(i), t,
                                             false, {0}, BuildAlgo::kOffline);
    ASSERT_TRUE(d.ok());
    ids.push_back(d->id);
  }
  CrashAndRestart();
  auto descs = engine_->catalog()->IndexesOf(t);
  ASSERT_EQ(descs.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(descs[i].id, ids[i]);  // the count-prefix order
    EXPECT_EQ(descs[i].name, "i" + std::to_string(i));
  }
}

TEST_F(CatalogTest, SfIndexGetsSideFile) {
  TableId t = MakeTable();
  auto d = engine_->catalog()->CreateIndex("sf", t, false, {0},
                                           BuildAlgo::kSf);
  ASSERT_TRUE(d.ok());
  EXPECT_NE(d->side_file_first, kInvalidPageId);
  EXPECT_NE(engine_->catalog()->side_file(d->id), nullptr);

  auto d2 = engine_->catalog()->CreateIndex("nsf", t, false, {0},
                                            BuildAlgo::kNsf);
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d2->side_file_first, kInvalidPageId);
  EXPECT_EQ(engine_->catalog()->side_file(d2->id), nullptr);
}

TEST_F(CatalogTest, DropIndexRemovesFromOrder) {
  TableId t = MakeTable();
  auto a = engine_->catalog()->CreateIndex("a", t, false, {0},
                                           BuildAlgo::kOffline);
  auto b = engine_->catalog()->CreateIndex("b", t, false, {0},
                                           BuildAlgo::kOffline);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_OK(engine_->catalog()->DropIndex(a->id));
  auto descs = engine_->catalog()->IndexesOf(t);
  ASSERT_EQ(descs.size(), 1u);
  EXPECT_EQ(descs[0].id, b->id);
  EXPECT_EQ(engine_->catalog()->index(a->id), nullptr);
}

TEST_F(CatalogTest, StateTransitionsPersist) {
  TableId t = MakeTable();
  auto d = engine_->catalog()->CreateIndex("i", t, false, {0},
                                           BuildAlgo::kSf);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->state, IndexState::kBuilding);
  ASSERT_OK(engine_->catalog()->SetIndexReady(d->id));
  CrashAndRestart();
  ASSERT_OK_AND_ASSIGN(auto desc, engine_->catalog()->descriptor(d->id));
  EXPECT_EQ(desc.state, IndexState::kReady);
}

}  // namespace
}  // namespace oib
