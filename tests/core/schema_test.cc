#include "core/schema.h"

#include <gtest/gtest.h>

namespace oib {
namespace {

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  std::vector<std::string> fields = {"alpha", "", "gamma with spaces"};
  std::string rec = Schema::EncodeRecord(fields);
  std::vector<std::string> out;
  ASSERT_TRUE(Schema::DecodeRecord(rec, &out).ok());
  EXPECT_EQ(out, fields);
}

TEST(SchemaTest, ExtractSingleColumn) {
  std::string rec = Schema::EncodeRecord({"key-part", "payload"});
  auto key = Schema::ExtractKey(rec, {0});
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, "key-part");
}

TEST(SchemaTest, ExtractConcatenatesColumns) {
  // "Key value is the concatenation of the values of the columns of the
  // table over which the index is defined" (section 1.1).
  std::string rec = Schema::EncodeRecord({"AA", "BB", "CC"});
  auto key = Schema::ExtractKey(rec, {2, 0});
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, "CCAA");
}

TEST(SchemaTest, ExtractOutOfRangeColumn) {
  std::string rec = Schema::EncodeRecord({"only-one"});
  EXPECT_TRUE(Schema::ExtractKey(rec, {3}).status().IsCorruption());
}

TEST(SchemaTest, DecodeGarbageFails) {
  std::vector<std::string> out;
  EXPECT_TRUE(Schema::DecodeRecord("x", &out).IsCorruption());
  std::string truncated = Schema::EncodeRecord({"abcdef"});
  truncated.resize(truncated.size() - 3);
  EXPECT_TRUE(Schema::DecodeRecord(truncated, &out).IsCorruption());
}

}  // namespace
}  // namespace oib
