#include "core/schema.h"

#include <gtest/gtest.h>

#include "common/key.h"

namespace oib {
namespace {

// Normalized single-string-column encoding (terminator included).
std::string NormStr(std::string_view v) {
  std::string out;
  keyenc::AppendStringColumn(&out, v);
  return out;
}

TEST(SchemaTest, EncodeDecodeRoundTrip) {
  std::vector<std::string> fields = {"alpha", "", "gamma with spaces"};
  std::string rec = Schema::EncodeRecord(fields);
  std::vector<std::string> out;
  ASSERT_TRUE(Schema::DecodeRecord(rec, &out).ok());
  EXPECT_EQ(out, fields);
}

TEST(SchemaTest, ExtractSingleColumn) {
  std::string rec = Schema::EncodeRecord({"key-part", "payload"});
  auto key = Schema::ExtractKey(rec, {0});
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, NormStr("key-part"));
}

TEST(SchemaTest, ExtractConcatenatesColumns) {
  // "Key value is the concatenation of the values of the columns of the
  // table over which the index is defined" (section 1.1) — here the
  // concatenation of the *normalized* column encodings, each string
  // column carrying its own terminator.
  std::string rec = Schema::EncodeRecord({"AA", "BB", "CC"});
  auto key = Schema::ExtractKey(rec, {2, 0});
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(*key, NormStr("CC") + NormStr("AA"));
}

TEST(SchemaTest, MultiColumnKeysDoNotCollide) {
  // Regression: raw concatenation mapped ("ab","c") and ("a","bc") to the
  // same key bytes "abc".  Column terminators keep them distinct and in
  // tuple order.
  std::string r1 = Schema::EncodeRecord({"ab", "c"});
  std::string r2 = Schema::EncodeRecord({"a", "bc"});
  auto k1 = Schema::ExtractKey(r1, {0, 1});
  auto k2 = Schema::ExtractKey(r2, {0, 1});
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(*k1, *k2);
  // Tuple order: ("a","bc") < ("ab","c") because "a" < "ab" in the first
  // column; memcmp over the normalized bytes must agree.
  EXPECT_LT(*k2, *k1);
}

TEST(SchemaTest, EmbeddedNulAndEmptyColumns) {
  std::string with_nul("a\0b", 3);
  std::string r1 = Schema::EncodeRecord({with_nul, ""});
  std::string r2 = Schema::EncodeRecord({"a", ""});
  auto k1 = Schema::ExtractKey(r1, {0, 1});
  auto k2 = Schema::ExtractKey(r2, {0, 1});
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_NE(*k1, *k2);
  // "a" < "a\0b" in tuple order; the terminator 0x00 0x00 sorts below the
  // escaped NUL 0x00 0xFF, so the normalized bytes agree.
  EXPECT_LT(*k2, *k1);
  // Decoding recovers the original column values.
  KeyDecoder dec((KeySlice(*k1)));
  std::string c0, c1;
  ASSERT_TRUE(dec.DecodeString(&c0));
  ASSERT_TRUE(dec.DecodeString(&c1));
  EXPECT_EQ(c0, with_nul);
  EXPECT_EQ(c1, "");
  EXPECT_TRUE(dec.done());
}

TEST(SchemaTest, Int64ColumnsSortNumerically) {
  auto enc = [](int64_t v) {
    std::string out;
    keyenc::AppendInt64Column(&out, v);
    return out;
  };
  EXPECT_LT(enc(-5), enc(-1));
  EXPECT_LT(enc(-1), enc(0));
  EXPECT_LT(enc(0), enc(1));
  EXPECT_LT(enc(1), enc(INT64_MAX));
  EXPECT_LT(enc(INT64_MIN), enc(-1));
}

TEST(SchemaTest, ExtractOutOfRangeColumn) {
  std::string rec = Schema::EncodeRecord({"only-one"});
  EXPECT_TRUE(Schema::ExtractKey(rec, {3}).status().IsCorruption());
}

TEST(SchemaTest, DecodeGarbageFails) {
  std::vector<std::string> out;
  EXPECT_TRUE(Schema::DecodeRecord("x", &out).IsCorruption());
  std::string truncated = Schema::EncodeRecord({"abcdef"});
  truncated.resize(truncated.size() - 3);
  EXPECT_TRUE(Schema::DecodeRecord(truncated, &out).IsCorruption());
}

}  // namespace
}  // namespace oib
