// Property-style sweep: the whole pipeline (populate -> concurrent-ish
// build -> verify) must hold across page sizes and builder algorithms.

#include <gtest/gtest.h>

#include "core/index_builder.h"
#include "tests/test_util.h"

namespace oib {
namespace {

struct SweepParam {
  size_t page_size;
  BuildAlgo algo;
};

class PageSizeSweepTest
    : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PageSizeSweepTest, BuildVerifiesAcrossGeometries) {
  const SweepParam param = GetParam();
  Options options;
  options.page_size = param.page_size;
  options.buffer_pool_pages = 4096;
  options.sort_workspace_keys = 512;
  options.ib_keys_per_call = 16;
  auto env = Env::InMemory(options);
  auto engine = std::move(*Engine::Open(options, env.get()));

  TableId table = *engine->catalog()->CreateTable("t");
  WorkloadOptions wo;
  auto rids = *Workload::Populate(engine.get(), table, 2500, wo);

  // A few pre-build deletes/updates so the heap has dead slots and mixed
  // page occupancy.
  Transaction* txn = engine->Begin();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine->records()->DeleteRecord(txn, table, rids[i * 7]).ok());
  }
  ASSERT_TRUE(engine->Commit(txn).ok());

  BuildParams params;
  params.name = "idx";
  params.table = table;
  params.key_cols = {0};
  IndexId index;
  Status s;
  if (param.algo == BuildAlgo::kOffline) {
    OfflineIndexBuilder b(engine.get());
    s = b.Build(params, &index);
  } else if (param.algo == BuildAlgo::kNsf) {
    NsfIndexBuilder b(engine.get());
    s = b.Build(params, &index);
  } else {
    SfIndexBuilder b(engine.get());
    s = b.Build(params, &index);
  }
  ASSERT_TRUE(s.ok()) << s.ToString();

  IndexVerifier verifier(engine.get());
  auto report = verifier.Verify(table, index);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok) << report->error;
  EXPECT_EQ(report->live_entries, 2400u);

  // Crash + restart: still consistent.
  ASSERT_TRUE(engine->SimulateCrash().ok());
  engine.reset();
  engine = std::move(*Engine::Restart(options, env.get()));
  IndexVerifier verifier2(engine.get());
  auto report2 = verifier2.Verify(table, index);
  ASSERT_TRUE(report2.ok());
  EXPECT_TRUE(report2->ok) << report2->error;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PageSizeSweepTest,
    ::testing::Values(SweepParam{2048, BuildAlgo::kOffline},
                      SweepParam{2048, BuildAlgo::kNsf},
                      SweepParam{2048, BuildAlgo::kSf},
                      SweepParam{4096, BuildAlgo::kNsf},
                      SweepParam{8192, BuildAlgo::kOffline},
                      SweepParam{8192, BuildAlgo::kNsf},
                      SweepParam{8192, BuildAlgo::kSf},
                      SweepParam{16384, BuildAlgo::kSf}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      std::string algo = info.param.algo == BuildAlgo::kOffline ? "offline"
                         : info.param.algo == BuildAlgo::kNsf   ? "nsf"
                                                                : "sf";
      return algo + "_" + std::to_string(info.param.page_size);
    });

}  // namespace
}  // namespace oib
