// Tests for the shared parallel BuildPipeline: partition planning,
// plan codec round-trips, the overlapped merge->consumer queue, and —
// most importantly — that parallel builds (build_threads > 1) produce an
// index with content identical to the single-threaded build, for every
// builder, unique and non-unique, quiet and under concurrent updates,
// and across crash/Resume at per-partition checkpoints.

#include "core/build_pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <thread>

#include "btree/tree_verifier.h"
#include "core/index_builder.h"
#include "sort/external_sorter.h"
#include "tests/test_util.h"

namespace oib {
namespace {

TEST(ScanPlanCodecTest, RoundTrip) {
  ScanPlan plan;
  plan.stop_page = 17;
  ScanPartition a;
  a.next = 3;
  a.bound = 9;
  a.sorter_blobs = {"blob-a0", "blob-a1"};
  ScanPartition b;
  b.next = 9;
  b.bound = kInvalidPageId;
  plan.parts = {a, b};

  ScanPlan decoded;
  ASSERT_OK(DecodeScanPlan(EncodeScanPlan(plan), &decoded));
  EXPECT_EQ(decoded.stop_page, 17u);
  ASSERT_EQ(decoded.parts.size(), 2u);
  EXPECT_EQ(decoded.parts[0].next, 3u);
  EXPECT_EQ(decoded.parts[0].bound, 9u);
  EXPECT_EQ(decoded.parts[0].sorter_blobs,
            (std::vector<std::string>{"blob-a0", "blob-a1"}));
  EXPECT_EQ(decoded.parts[1].next, 9u);
  EXPECT_EQ(decoded.parts[1].bound, kInvalidPageId);
  EXPECT_TRUE(decoded.parts[1].sorter_blobs.empty());
}

TEST(ScanPlanCodecTest, RejectsGarbage) {
  ScanPlan plan;
  EXPECT_FALSE(DecodeScanPlan("not a plan", &plan).ok());
}

class BuildPipelineTest : public EngineTest {
 protected:
  BuildParams Params(TableId table, bool unique = false,
                     const std::string& name = "idx") {
    BuildParams p;
    p.name = name;
    p.table = table;
    p.unique = unique;
    p.key_cols = {0};
    return p;
  }

  // Collects the full leaf-order content stream of an index.
  std::vector<std::tuple<std::string, uint64_t, uint8_t>> IndexContent(
      IndexId id) {
    std::vector<std::tuple<std::string, uint64_t, uint8_t>> out;
    BTree* tree = engine_->catalog()->index(id);
    EXPECT_NE(tree, nullptr);
    if (tree != nullptr) {
      EXPECT_OK(tree->ScanAll(
          [&](std::string_view key, const Rid& rid, uint8_t flags) {
            out.emplace_back(std::string(key), PackRid(rid), flags);
          }));
    }
    return out;
  }

  void ExpectTreeSound(IndexId id) {
    BTree* tree = engine_->catalog()->index(id);
    ASSERT_NE(tree, nullptr);
    TreeVerifier verifier(tree, engine_->pool());
    auto report = verifier.Check();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok) << report->error;
  }
};

TEST_F(BuildPipelineTest, PlanPartitioningIsDeterministicAndCovers) {
  TableId table = MakeTable();
  Populate(table, 3000);
  HeapFile* heap = engine_->catalog()->table(table);

  ASSERT_OK_AND_ASSIGN(auto pages, heap->ChainPages());
  ASSERT_GT(pages.size(), 4u);

  ASSERT_OK_AND_ASSIGN(ScanPlan p4, PlanPartitionedScan(heap, kInvalidPageId, 4));
  ASSERT_OK_AND_ASSIGN(ScanPlan p4b, PlanPartitionedScan(heap, kInvalidPageId, 4));
  EXPECT_EQ(EncodeScanPlan(p4), EncodeScanPlan(p4b));  // deterministic

  ASSERT_EQ(p4.parts.size(), 4u);
  // Partitions tile the chain: first starts at the head, each bound is the
  // next partition's start, last is unbounded.
  EXPECT_EQ(p4.parts[0].next, heap->first_page());
  for (size_t k = 0; k + 1 < p4.parts.size(); ++k) {
    EXPECT_EQ(p4.parts[k].bound, p4.parts[k + 1].next);
  }
  EXPECT_EQ(p4.parts.back().bound, kInvalidPageId);

  // More threads than pages clamps to one partition per page.
  ASSERT_OK_AND_ASSIGN(ScanPlan big,
                       PlanPartitionedScan(heap, kInvalidPageId, 10000));
  EXPECT_EQ(big.parts.size(), pages.size());

  // threads=1 degenerates to the whole chain.
  ASSERT_OK_AND_ASSIGN(ScanPlan p1, PlanPartitionedScan(heap, kInvalidPageId, 1));
  ASSERT_EQ(p1.parts.size(), 1u);
  EXPECT_EQ(p1.parts[0].next, heap->first_page());
  EXPECT_EQ(p1.parts[0].bound, kInvalidPageId);
}

TEST_F(BuildPipelineTest, MergeToConsumerOverlappedDeliversAllInOrder) {
  // Feed an ExternalSorter and drain it through the overlapped queue;
  // every item must arrive exactly once, in sorted order, with monotone
  // counters snapshots.
  ExternalSorter sorter(engine_->runs(), &engine_->options());
  const int kItems = 10000;
  for (int i = 0; i < kItems; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%08d", (i * 7919) % kItems);
    ASSERT_OK(sorter.Add(std::string_view(buf), Rid(1 + i / 100, i % 100)));
  }
  ASSERT_OK(sorter.FinishInput());
  ASSERT_OK(sorter.PrepareMerge());
  ASSERT_OK_AND_ASSIGN(auto cursor, sorter.OpenMerge());

  std::vector<std::string> seen;
  size_t batches = 0;
  auto consume = [&](const BuildPipeline::Batch& b) -> Status {
    ++batches;
    for (const SortItem& item : b.items) seen.push_back(item.key.bytes());
    return Status::OK();
  };
  BuildPipeline::MergeStats stats;
  ASSERT_OK(BuildPipeline::MergeToConsumer(cursor.get(), /*batch_keys=*/256,
                                           /*queue_depth=*/2,
                                           /*overlapped=*/true, consume,
                                           &stats));
  ASSERT_EQ(seen.size(), static_cast<size_t>(kItems));
  EXPECT_GE(batches, static_cast<size_t>(kItems) / 256);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_GT(stats.merge_busy_ms, 0.0);
  EXPECT_GT(stats.consume_busy_ms, 0.0);
}

TEST_F(BuildPipelineTest, MergeToConsumerPropagatesConsumerError) {
  ExternalSorter sorter(engine_->runs(), &engine_->options());
  for (int i = 0; i < 2000; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%08d", i);
    ASSERT_OK(sorter.Add(std::string_view(buf), Rid(1, i % 100)));
  }
  ASSERT_OK(sorter.FinishInput());
  ASSERT_OK(sorter.PrepareMerge());
  ASSERT_OK_AND_ASSIGN(auto cursor, sorter.OpenMerge());
  size_t consumed = 0;
  auto consume = [&](const BuildPipeline::Batch& b) -> Status {
    consumed += b.items.size();
    if (consumed >= 500) return Status::IoError("consumer boom");
    return Status::OK();
  };
  Status s = BuildPipeline::MergeToConsumer(cursor.get(), 128, 2,
                                            /*overlapped=*/true, consume,
                                            nullptr);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("consumer boom"), std::string::npos);
}

// ---- parallel == sequential, quiet table ----

class QuietThreadSweepTest
    : public BuildPipelineTest,
      public ::testing::WithParamInterface<std::tuple<BuildAlgo, size_t>> {};

TEST_P(QuietThreadSweepTest, ParallelBuildMatchesSequential) {
  auto [algo, threads] = GetParam();
  // Build the reference index single-threaded, the candidate with N
  // threads, over the same table; content streams must be identical.
  TableId table = MakeTable();
  Populate(table, 4000);

  options_.build_threads = 1;
  ReopenWithOptions();
  IndexId ref_id = 0;
  {
    BuildParams p = Params(table, false, "ref");
    if (algo == BuildAlgo::kOffline) {
      OfflineIndexBuilder b(engine_.get());
      ASSERT_OK(b.Build(p, &ref_id));
    } else if (algo == BuildAlgo::kNsf) {
      NsfIndexBuilder b(engine_.get());
      ASSERT_OK(b.Build(p, &ref_id));
    } else {
      SfIndexBuilder b(engine_.get());
      ASSERT_OK(b.Build(p, &ref_id));
    }
  }
  auto ref = IndexContent(ref_id);
  ASSERT_EQ(ref.size(), 4000u);

  options_.build_threads = threads;
  ReopenWithOptions();
  IndexId par_id = 0;
  BuildStats stats;
  {
    BuildParams p = Params(table, false, "par");
    if (algo == BuildAlgo::kOffline) {
      OfflineIndexBuilder b(engine_.get());
      ASSERT_OK(b.Build(p, &par_id, &stats));
    } else if (algo == BuildAlgo::kNsf) {
      NsfIndexBuilder b(engine_.get());
      ASSERT_OK(b.Build(p, &par_id, &stats));
    } else {
      SfIndexBuilder b(engine_.get());
      ASSERT_OK(b.Build(p, &par_id, &stats));
    }
  }
  EXPECT_EQ(stats.keys_extracted, 4000u);
  EXPECT_EQ(IndexContent(par_id), ref);
  ExpectTreeSound(par_id);
  ExpectIndexConsistent(table, par_id);
  EXPECT_GT(stats.elapsed_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, QuietThreadSweepTest,
    ::testing::Combine(::testing::Values(BuildAlgo::kOffline, BuildAlgo::kNsf,
                                         BuildAlgo::kSf),
                       ::testing::Values(2u, 8u)),
    [](const auto& info) {
      BuildAlgo algo = std::get<0>(info.param);
      std::string name = algo == BuildAlgo::kOffline ? "offline"
                         : algo == BuildAlgo::kNsf   ? "nsf"
                                                     : "sf";
      return name + "_t" + std::to_string(std::get<1>(info.param));
    });

// ---- parallel builds under a concurrent workload ----

struct WorkloadSweepParam {
  BuildAlgo algo;
  size_t threads;
  bool unique;
};

class WorkloadThreadSweepTest
    : public BuildPipelineTest,
      public ::testing::WithParamInterface<WorkloadSweepParam> {};

TEST_P(WorkloadThreadSweepTest, BuildStaysConsistent) {
  const WorkloadSweepParam& param = GetParam();
  TableId table = MakeTable();
  auto rids = Populate(table, 2000);
  options_.build_threads = param.threads;
  ReopenWithOptions();

  WorkloadOptions wo;
  wo.threads = 2;
  wo.update_changes_key = 1.0;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 2000);
  workload.Start();
  WaitForOps(&workload, 1);

  IndexId index = 0;
  Status s;
  if (param.algo == BuildAlgo::kNsf) {
    NsfIndexBuilder builder(engine_.get());
    s = builder.Build(Params(table, param.unique), &index);
  } else {
    SfIndexBuilder builder(engine_.get());
    s = builder.Build(Params(table, param.unique), &index);
  }
  WorkloadStats mid = workload.Stop();
  // Workload keys are unique by construction, so even unique builds
  // succeed; any UniqueViolation here is a pipeline bug.
  ASSERT_OK(s);
  EXPECT_GT(mid.ops(), 0u);
  ExpectTreeSound(index);
  ExpectIndexConsistent(table, index);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, WorkloadThreadSweepTest,
    ::testing::Values(WorkloadSweepParam{BuildAlgo::kNsf, 1, false},
                      WorkloadSweepParam{BuildAlgo::kNsf, 2, false},
                      WorkloadSweepParam{BuildAlgo::kNsf, 8, true},
                      WorkloadSweepParam{BuildAlgo::kSf, 1, false},
                      WorkloadSweepParam{BuildAlgo::kSf, 2, true},
                      WorkloadSweepParam{BuildAlgo::kSf, 8, false}),
    [](const auto& info) {
      const WorkloadSweepParam& p = info.param;
      return std::string(p.algo == BuildAlgo::kNsf ? "nsf" : "sf") + "_t" +
             std::to_string(p.threads) + (p.unique ? "_unique" : "");
    });

// ---- crash / Resume at per-partition checkpoints ----

TEST_F(BuildPipelineTest, NsfParallelCrashDuringScanResumes) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.build_threads = 4;
  options_.sort_checkpoint_every_keys = 200;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("nsf.scan", 12);
  NsfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  NsfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &index, &stats));
  ExpectTreeSound(index);
  ExpectIndexConsistent(table, index);
}

TEST_F(BuildPipelineTest, SfParallelCrashDuringScanResumes) {
  TableId table = MakeTable();
  auto rids = Populate(table, 3000);
  options_.build_threads = 4;
  options_.sort_checkpoint_every_keys = 200;
  ReopenWithOptions();

  WorkloadOptions wo;
  wo.threads = 2;
  wo.update_changes_key = 1.0;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 3000);
  workload.Start();
  WaitForOps(&workload, 1);
  FailPointRegistry::Instance().Arm("sf.scan", 12);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  workload.Stop();
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  // The resumed build must honor the *saved* 4-partition plan even if the
  // engine now runs with a different thread count.
  options_.build_threads = 1;
  ReopenWithOptions();
  SfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &stats));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectTreeSound(descs[0].id);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(BuildPipelineTest, SfParallelCrashDuringLoadResumes) {
  TableId table = MakeTable();
  Populate(table, 3000);
  options_.build_threads = 4;
  options_.ib_checkpoint_every_keys = 500;
  ReopenWithOptions();

  FailPointRegistry::Instance().Arm("sf.load", 1500);
  SfIndexBuilder builder(engine_.get());
  IndexId index;
  Status s = builder.Build(Params(table), &index);
  ASSERT_TRUE(s.IsInjected()) << s.ToString();

  CrashAndRestart();
  SfIndexBuilder resumed(engine_.get());
  BuildStats stats;
  ASSERT_OK(resumed.Resume(table, &stats));
  auto descs = engine_->catalog()->IndexesOf(table);
  ASSERT_EQ(descs.size(), 1u);
  ExpectTreeSound(descs[0].id);
  ExpectIndexConsistent(table, descs[0].id);
}

TEST_F(BuildPipelineTest, ParallelScanTakesPerPartitionCheckpoints) {
  TableId table = MakeTable();
  Populate(table, 4000);
  options_.build_threads = 4;
  options_.sort_checkpoint_every_keys = 200;
  ReopenWithOptions();

  SfIndexBuilder builder(engine_.get());
  IndexId index;
  BuildStats stats;
  ASSERT_OK(builder.Build(Params(table), &index, &stats));
  // 4 workers x ~1000 keys each at a 200-key cadence: several checkpoints
  // must have been persisted during the scan alone.
  EXPECT_GE(stats.checkpoints, 4u);
  ExpectIndexConsistent(table, index);
}

}  // namespace
}  // namespace oib
