// Live build-progress reporting (Engine::GetBuildProgress) — the monitor
// view of an in-flight build: phase transitions, Current-RID advance vs
// the table tail, and side-file accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/progress.h"
#include "tests/test_util.h"

namespace oib {
namespace {

class BuildProgressTest : public EngineTest {
 protected:
  BuildParams Params(TableId table) {
    BuildParams p;
    p.name = "idx";
    p.table = table;
    p.key_cols = {0};
    return p;
  }
};

TEST_F(BuildProgressTest, NoBuildReportsInactive) {
  TableId table = MakeTable();
  Populate(table, 100);
  obs::BuildProgress p = engine_->GetBuildProgress(table);
  EXPECT_FALSE(p.active);
  EXPECT_EQ(p.phase, obs::BuildPhase::kIdle);
  EXPECT_EQ(p.keys_done, 0u);
}

TEST_F(BuildProgressTest, SfBuildAdvancesMonotonically) {
  TableId table = MakeTable();
  Populate(table, 30000);

  std::atomic<bool> done{false};
  IndexId index = kInvalidIndexId;
  Status build_status;
  std::thread builder_thread([&] {
    SfIndexBuilder builder(engine_.get());
    build_status = builder.Build(Params(table), &index);
    done.store(true);
  });

  // Poll the progress API while the build runs.  Every sampled quantity
  // must be non-decreasing and phases must follow the SF order.
  std::vector<obs::BuildProgress> samples;
  while (!done.load()) {
    obs::BuildProgress p = engine_->GetBuildProgress(table);
    if (p.active) samples.push_back(p);
    std::this_thread::yield();
  }
  builder_thread.join();
  ASSERT_OK(build_status);
  ExpectIndexConsistent(table, index);

  // An in-memory 30k-row build still takes long enough that the polling
  // loop observes it mid-flight many times.
  ASSERT_GT(samples.size(), 0u);
  for (size_t i = 0; i < samples.size(); ++i) {
    const obs::BuildProgress& p = samples[i];
    EXPECT_STREQ(p.algo, "sf");
    EXPECT_GE(p.scan_fraction, 0.0);
    EXPECT_LE(p.scan_fraction, 1.0);
    EXPECT_GE(p.side_file_appended, p.side_file_backlog);
    if (i == 0) continue;
    const obs::BuildProgress& prev = samples[i - 1];
    // BuildPhase is ordered so legal sequences are non-decreasing.
    EXPECT_GE(static_cast<int>(p.phase), static_cast<int>(prev.phase));
    EXPECT_GE(p.keys_done, prev.keys_done);
    EXPECT_GE(p.side_file_applied, prev.side_file_applied);
    // Current-RID never moves backwards during the scan (3.2.2);
    // comparing packed RIDs preserves (page, slot) order.
    if (p.phase == obs::BuildPhase::kScan &&
        prev.phase == obs::BuildPhase::kScan) {
      EXPECT_GE(p.current_rid, prev.current_rid);
    }
    EXPECT_GE(p.elapsed_ms, prev.elapsed_ms);
  }

  // The builder deregisters on completion: progress goes back to idle.
  obs::BuildProgress after = engine_->GetBuildProgress(table);
  EXPECT_FALSE(after.active);
  EXPECT_EQ(after.phase, obs::BuildPhase::kIdle);
}

TEST_F(BuildProgressTest, SfBuildUnderUpdatesTracksSideFile) {
  TableId table = MakeTable();
  auto rids = Populate(table, 20000);

  WorkloadOptions wo;
  wo.threads = 2;
  Workload workload(engine_.get(), table, wo);
  workload.Seed(rids, 20000);
  workload.Start();
  WaitForOps(&workload, 50);

  std::atomic<bool> done{false};
  IndexId index = kInvalidIndexId;
  Status build_status;
  std::thread builder_thread([&] {
    SfIndexBuilder builder(engine_.get());
    build_status = builder.Build(Params(table), &index);
    done.store(true);
  });

  uint64_t max_appended = 0;
  bool saw_active = false;
  while (!done.load()) {
    obs::BuildProgress p = engine_->GetBuildProgress(table);
    if (p.active) {
      saw_active = true;
      EXPECT_GE(p.side_file_appended, max_appended);
      max_appended = p.side_file_appended;
      EXPECT_LE(p.side_file_backlog, p.side_file_appended);
    }
    std::this_thread::yield();
  }
  builder_thread.join();
  workload.Stop();
  ASSERT_OK(build_status);
  ExpectIndexConsistent(table, index);

  EXPECT_TRUE(saw_active);
  // Concurrent updates during an SF build must have gone through the
  // side-file, and the progress API must have seen them.
  EXPECT_GT(max_appended, 0u);
}

TEST_F(BuildProgressTest, NsfBuildReportsPhases) {
  TableId table = MakeTable();
  Populate(table, 20000);

  std::atomic<bool> done{false};
  IndexId index = kInvalidIndexId;
  Status build_status;
  std::thread builder_thread([&] {
    NsfIndexBuilder builder(engine_.get());
    build_status = builder.Build(Params(table), &index);
    done.store(true);
  });

  std::vector<obs::BuildProgress> samples;
  while (!done.load()) {
    obs::BuildProgress p = engine_->GetBuildProgress(table);
    if (p.active) samples.push_back(p);
    std::this_thread::yield();
  }
  builder_thread.join();
  ASSERT_OK(build_status);
  ExpectIndexConsistent(table, index);

  ASSERT_GT(samples.size(), 0u);
  uint64_t last_keys = 0;
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_STREQ(samples[i].algo, "nsf");
    EXPECT_GE(samples[i].keys_done, last_keys);
    last_keys = samples[i].keys_done;
    if (i > 0) {
      EXPECT_GE(static_cast<int>(samples[i].phase),
                static_cast<int>(samples[i - 1].phase));
    }
  }
}

}  // namespace
}  // namespace oib
