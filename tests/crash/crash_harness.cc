// Crash harness: randomized kill-point testing of index builds over real
// files.
//
// Each iteration runs a complete build lifecycle in forked children over
// a file-backed Env:
//
//   1. A worker child populates a table, arms one seed-chosen kill
//      failpoint (kAbort = SIGKILL at the site, or kTornWrite = scramble
//      the I/O tail then SIGKILL), starts concurrent update traffic, and
//      runs an NSF or SF build.  The kill strikes at a randomized point —
//      during the scan, the sort spill, a WAL flush, a page write-back, a
//      checkpoint persist, or the commit edges.
//   2. The parent reaps the corpse and forks another worker, which
//      re-attaches the Env from the on-disk files (torn-tail repair),
//      runs restart recovery, and resumes the build — itself under a
//      fresh randomized kill.  Repeat until a worker finishes.
//   3. A verify child restarts once more with no failpoints armed and
//      checks every index against the table with IndexVerifier.  Any
//      violation fails the iteration.
//
// Every random choice derives from --seed, so a failing iteration is
// replayed exactly by the REPRO line the harness prints.
//
// Exit status: 0 if every iteration verified clean, 1 otherwise.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/workload.h"

namespace oib {
namespace {

struct HarnessOptions {
  uint64_t iters = 20;
  uint64_t seed = 1;
  std::string algo = "both";  // nsf | sf | both (alternates)
  std::string site;           // restrict kill sites to this name prefix
  uint64_t rows = 1500;
  uint32_t update_threads = 2;
  std::string dir;
  int max_restarts = 60;
  int child_timeout_s = 180;
  bool verbose = false;
};

uint64_t SplitMix64(uint64_t* s) {
  uint64_t z = (*s += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Kill sites: whether the site honours kTornWrite (scramble + die), and
// the countdown range, scaled to how often the site is evaluated per
// build (a commit edge fires once, so only countdown 0 can ever hit it).
struct KillSite {
  const char* name;
  bool torn;
  bool sf_only;
  bool nsf_only;
  int max_countdown;
};

constexpr KillSite kKillSites[] = {
    {"filedisk.write", true, false, false, 64},
    {"filedisk.sync", false, false, false, 8},
    {"filedisk.meta", false, false, false, 8},
    {"wal.flush", true, false, false, 48},
    {"wal.fsync", false, false, false, 48},
    {"runstore.flush", true, false, false, 4},
    {"bufferpool.writeback", false, false, false, 32},
    {"build.save_meta", false, false, false, 6},
    {"nsf.scan", false, false, true, 24},
    {"nsf.insert_batch", false, false, true, 24},
    {"nsf.commit", false, false, true, 1},
    {"sf.scan", false, true, false, 24},
    {"sf.load", false, true, false, 32},
    {"sf.apply", false, true, false, 16},
    {"sf.finalize", false, true, false, 1},
    {"sf.commit", false, true, false, 1},
    // Hash fast-path sites: populate fires per key during the SF phase-2
    // consume (and on resume repopulation); commit fires once when the
    // descriptor flips to ready (both algorithms).
    {"hash.populate", false, true, false, 32},
    {"hash.commit", false, false, false, 1},
};

struct KillChoice {
  std::string name;
  FailPointPolicy policy;
  bool before_restart = false;  // arm before recovery runs, not after
};

KillChoice PickKill(uint64_t* rng, bool sf, const std::string& site_prefix) {
  std::vector<const KillSite*> eligible;
  for (const KillSite& s : kKillSites) {
    if (s.sf_only && !sf) continue;
    if (s.nsf_only && sf) continue;
    if (!site_prefix.empty() &&
        std::strncmp(s.name, site_prefix.c_str(), site_prefix.size()) != 0) {
      continue;
    }
    eligible.push_back(&s);
  }
  if (eligible.empty()) {
    // --site excluded everything for this algorithm (e.g. an sf_only
    // prefix on an nsf iteration): fall back to the full set so the
    // iteration still makes progress.
    for (const KillSite& s : kKillSites) {
      if (s.sf_only && !sf) continue;
      if (s.nsf_only && sf) continue;
      eligible.push_back(&s);
    }
  }
  const KillSite* site = eligible[SplitMix64(rng) % eligible.size()];
  KillChoice choice;
  choice.name = site->name;
  choice.policy.countdown =
      int(SplitMix64(rng) % uint64_t(site->max_countdown));
  choice.policy.max_fires = 1;
  bool torn = site->torn && SplitMix64(rng) % 10 < 3;
  choice.policy.action =
      torn ? FailPointAction::kTornWrite : FailPointAction::kAbort;
  if (torn) choice.policy.arg = uint32_t(SplitMix64(rng) % 64);
  choice.before_restart = SplitMix64(rng) % 2 == 0;
  return choice;
}

Options EngineOptions() {
  Options o;
  o.buffer_pool_pages = 512;  // small pool: evictions (write-backs) happen
  o.sort_workspace_keys = 512;
  o.ib_keys_per_call = 32;
  o.ib_checkpoint_every_keys = 300;
  o.sort_checkpoint_every_keys = 300;
  o.sf_apply_batch = 64;
  // The hash fast path rides along so its populate/commit kill sites and
  // restart repopulation get the same randomized coverage as the tree.
  o.enable_hash_index = true;
  o.hash_index_shards = 4;
  return o;
}

BuildParams MakeParams(TableId table) {
  BuildParams p;
  p.name = "idx";
  p.table = table;
  p.unique = false;
  p.key_cols = {0};
  return p;
}

// Exit codes a worker child can produce (besides dying by signal).
constexpr int kExitDone = 0;
constexpr int kExitInjected = 42;  // graceful abort, state recoverable
constexpr int kExitError = 43;    // unexpected error: fails the iteration

void Fail(const char* what, const Status& s) {
  std::fprintf(stderr, "  child error at %s: %s\n", what,
               s.ToString().c_str());
  std::exit(kExitError);
}

// Worker child body: never returns.
void RunWorker(const HarnessOptions& opts, bool sf, int attempt,
               const KillChoice& kill) {
  alarm(uint32_t(opts.child_timeout_s));  // a hang is a failure, not a wait
  Options options = EngineOptions();
  FailPointRegistry& reg = FailPointRegistry::Instance();
  auto arm = [&] { reg.ArmPolicy(kill.name, kill.policy); };

  auto env_or = Env::OnFiles(opts.dir, options);
  if (!env_or.ok()) Fail("Env::OnFiles", env_or.status());
  std::unique_ptr<Env> env = std::move(*env_or);

  std::unique_ptr<Engine> engine;
  TableId table = 0;
  if (attempt == 0) {
    auto e = Engine::Open(options, env.get());
    if (!e.ok()) Fail("Engine::Open", e.status());
    engine = std::move(*e);
    auto t = engine->catalog()->CreateTable("t");
    if (!t.ok()) Fail("CreateTable", t.status());
    table = *t;
    WorkloadOptions wo;
    auto rids = Workload::Populate(engine.get(), table, opts.rows, wo);
    if (!rids.ok()) Fail("Populate", rids.status());
    if (Status s = engine->FlushAll(); !s.ok()) Fail("FlushAll", s);
  } else {
    // Kills armed "before restart" strike during recovery itself.
    if (kill.before_restart) arm();
    auto e = Engine::Restart(options, env.get());
    if (!e.ok()) Fail("Engine::Restart", e.status());
    engine = std::move(*e);
    auto t = engine->catalog()->TableByName("t");
    if (!t.ok()) Fail("TableByName", t.status());
    table = *t;
  }

  // Concurrent update traffic while the build runs — the scenario the
  // paper's algorithms exist for.
  std::unique_ptr<Workload> workload;
  if (opts.update_threads > 0) {
    WorkloadOptions wo;
    wo.threads = opts.update_threads;
    workload = std::make_unique<Workload>(engine.get(), table, wo);
    std::vector<Rid> live;
    if (Status s = engine->catalog()->table(table)->ForEach(
            [&](const Rid& rid, std::string_view) { live.push_back(rid); });
        !s.ok()) {
      Fail("ForEach", s);
    }
    workload->Seed(live, 1000000 + uint64_t(attempt) * 1000000);
    workload->Start();
  }

  if (attempt == 0 || !kill.before_restart) arm();

  Status s;
  auto descs = engine->catalog()->IndexesOf(table);
  bool ready = !descs.empty() && descs[0].state == IndexState::kReady;
  if (ready) {
    // Build committed just before the previous kill; nothing to resume.
  } else if (sf) {
    SfIndexBuilder builder(engine.get());
    if (descs.empty()) {
      IndexId index;
      s = builder.Build(MakeParams(table), &index);
    } else {
      s = builder.Resume(table, nullptr);
    }
  } else {
    NsfIndexBuilder builder(engine.get());
    IndexId index;
    if (descs.empty()) {
      s = builder.Build(MakeParams(table), &index);
    } else {
      s = builder.Resume(table, &index, nullptr);
    }
  }
  if (workload) workload->Stop();
  if (s.ok()) std::exit(kExitDone);
  if (s.IsInjected()) std::exit(kExitInjected);
  Fail("Build/Resume", s);
}

// Verify child body: never returns.
void RunVerify(const HarnessOptions& opts, bool sf) {
  alarm(uint32_t(opts.child_timeout_s));
  Options options = EngineOptions();
  auto env_or = Env::OnFiles(opts.dir, options);
  if (!env_or.ok()) Fail("verify Env::OnFiles", env_or.status());
  std::unique_ptr<Env> env = std::move(*env_or);
  auto e = Engine::Restart(options, env.get());
  if (!e.ok()) Fail("verify Restart", e.status());
  std::unique_ptr<Engine> engine = std::move(*e);
  auto t = engine->catalog()->TableByName("t");
  if (!t.ok()) Fail("verify TableByName", t.status());
  TableId table = *t;

  auto descs = engine->catalog()->IndexesOf(table);
  if (descs.empty()) Fail("verify", Status::Corruption("index lost"));
  if (descs[0].state != IndexState::kReady) {
    Fail("verify", Status::Corruption("index not ready after completion"));
  }
  (void)sf;
  IndexVerifier verifier(engine.get());
  for (const IndexDescriptor& d : descs) {
    auto report = verifier.Verify(table, d.id);
    if (!report.ok()) Fail("verifier", report.status());
    if (!report->ok) {
      std::fprintf(stderr,
                   "  CONSISTENCY VIOLATION index %u: %s (records=%" PRIu64
                   " live=%" PRIu64 " pseudo=%" PRIu64 ")\n",
                   d.id, report->error.c_str(), report->table_records,
                   report->live_entries, report->pseudo_entries);
      std::exit(kExitError);
    }
  }
  std::exit(kExitDone);
}

// Forks `body`; returns the child's wait status.
template <typename Fn>
int ForkAndWait(Fn body) {
  pid_t pid = fork();
  if (pid == 0) {
    body();
    _exit(kExitError);  // body must exit itself
  }
  int wstatus = 0;
  waitpid(pid, &wstatus, 0);
  return wstatus;
}

int Run(const HarnessOptions& opts) {
  uint64_t failures = 0;
  uint64_t total_kills = 0;
  for (uint64_t iter = 0; iter < opts.iters; ++iter) {
    // Per-iteration RNG stream: replaying iteration i needs only the
    // base seed (REPRO lines pass the derived value with --iters=1).
    uint64_t iter_seed = opts.seed + iter * 0x9e3779b97f4a7c15ULL;
    uint64_t rng = iter_seed;
    bool sf = opts.algo == "sf" || (opts.algo == "both" && iter % 2 == 1);
    std::error_code ec;
    std::filesystem::remove_all(opts.dir, ec);

    std::string kill_log;
    bool iteration_failed = false;
    int attempt = 0;
    for (; attempt <= opts.max_restarts; ++attempt) {
      // --site pins only the FIRST kill.  Restart attempts draw from the
      // full set: convergence relies on an attempt eventually picking a
      // kill the resumed build never reaches, and a narrow filter (e.g. a
      // commit-edge site, which fires on every resume) would loop until
      // max_restarts.
      KillChoice kill =
          PickKill(&rng, sf, attempt == 0 ? opts.site : std::string());
      if (opts.verbose) {
        std::fprintf(stderr, "  iter %" PRIu64 " attempt %d: %s@%d %s%s\n",
                     iter, attempt, kill.name.c_str(),
                     kill.policy.countdown,
                     kill.policy.action == FailPointAction::kTornWrite
                         ? "torn"
                         : "kill",
                     kill.before_restart ? " (during recovery)" : "");
      }
      int ws = ForkAndWait(
          [&] { RunWorker(opts, sf, attempt, kill); });
      if (WIFEXITED(ws) && WEXITSTATUS(ws) == kExitDone) break;
      if (WIFSIGNALED(ws) && WTERMSIG(ws) == SIGKILL) {
        ++total_kills;
        kill_log += (kill_log.empty() ? "" : ",") + kill.name;
        continue;  // expected death: restart and resume
      }
      if (WIFEXITED(ws) && WEXITSTATUS(ws) == kExitInjected) continue;
      std::fprintf(stderr,
                   "iter %" PRIu64 ": worker failed unexpectedly "
                   "(status 0x%x)\n",
                   iter, ws);
      iteration_failed = true;
      break;
    }
    if (!iteration_failed && attempt > opts.max_restarts) {
      std::fprintf(stderr,
                   "iter %" PRIu64 ": build did not complete in %d restarts\n",
                   iter, opts.max_restarts);
      iteration_failed = true;
    }
    if (!iteration_failed) {
      int ws = ForkAndWait([&] { RunVerify(opts, sf); });
      if (!WIFEXITED(ws) || WEXITSTATUS(ws) != kExitDone) {
        std::fprintf(stderr, "iter %" PRIu64 ": VERIFY FAILED (status 0x%x)\n",
                     iter, ws);
        iteration_failed = true;
      }
    }
    if (iteration_failed) {
      ++failures;
      std::fprintf(stderr,
                   "REPRO: crash_harness --iters=1 --seed=%" PRIu64
                   " --algo=%s --rows=%" PRIu64 " --updates=%u%s%s\n",
                   iter_seed, sf ? "sf" : "nsf", opts.rows,
                   opts.update_threads, opts.site.empty() ? "" : " --site=",
                   opts.site.c_str());
    } else if (opts.verbose || (iter + 1) % 10 == 0 ||
               iter + 1 == opts.iters) {
      std::fprintf(stderr,
                   "iter %" PRIu64 "/%" PRIu64 " ok: algo=%s attempts=%d "
                   "kills=[%s]\n",
                   iter + 1, opts.iters, sf ? "sf" : "nsf", attempt,
                   kill_log.c_str());
    }
  }
  std::fprintf(stderr,
               "crash_harness: %" PRIu64 "/%" PRIu64
               " iterations clean, %" PRIu64 " kills injected, seed=%" PRIu64
               "\n",
               opts.iters - failures, opts.iters, total_kills, opts.seed);
  std::filesystem::remove_all(opts.dir);
  return failures == 0 ? 0 : 1;
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace
}  // namespace oib

int main(int argc, char** argv) {
  oib::HarnessOptions opts;
  opts.dir = (std::filesystem::temp_directory_path() /
              ("oib_crash_harness_" + std::to_string(getpid())))
                 .string();
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (oib::ParseFlag(argv[i], "--iters", &v)) {
      opts.iters = std::strtoull(v.c_str(), nullptr, 10);
    } else if (oib::ParseFlag(argv[i], "--seed", &v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (oib::ParseFlag(argv[i], "--algo", &v)) {
      opts.algo = v;
    } else if (oib::ParseFlag(argv[i], "--site", &v)) {
      opts.site = v;
    } else if (oib::ParseFlag(argv[i], "--rows", &v)) {
      opts.rows = std::strtoull(v.c_str(), nullptr, 10);
    } else if (oib::ParseFlag(argv[i], "--updates", &v)) {
      opts.update_threads = uint32_t(std::strtoul(v.c_str(), nullptr, 10));
    } else if (oib::ParseFlag(argv[i], "--dir", &v)) {
      opts.dir = v;
    } else if (oib::ParseFlag(argv[i], "--max-restarts", &v)) {
      opts.max_restarts = int(std::strtol(v.c_str(), nullptr, 10));
    } else if (oib::ParseFlag(argv[i], "--timeout", &v)) {
      opts.child_timeout_s = int(std::strtol(v.c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      opts.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: crash_harness [--iters=N] [--seed=S] "
                   "[--algo=nsf|sf|both] [--site=PREFIX] [--rows=N] "
                   "[--updates=T] [--dir=PATH] [--max-restarts=N] "
                   "[--timeout=SECS] [--verbose]\n");
      return 2;
    }
  }
  if (opts.algo != "nsf" && opts.algo != "sf" && opts.algo != "both") {
    std::fprintf(stderr, "bad --algo: %s\n", opts.algo.c_str());
    return 2;
  }
  if (!opts.site.empty()) {
    bool any = false;
    for (const oib::KillSite& s : oib::kKillSites) {
      if (std::strncmp(s.name, opts.site.c_str(), opts.site.size()) == 0) {
        any = true;
        break;
      }
    }
    if (!any) {
      std::fprintf(stderr, "bad --site: no kill site matches prefix %s\n",
                   opts.site.c_str());
      return 2;
    }
  }
  return oib::Run(opts);
}
