// Shared test scaffolding: status assertions and an engine fixture with a
// crash/restart cycle helper.

#ifndef OIB_TESTS_TEST_UTIL_H_
#define OIB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/schema.h"
#include "core/workload.h"

#define ASSERT_OK(expr)                                            \
  do {                                                             \
    const ::oib::Status _s = (expr);                               \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();           \
  } while (0)

#define EXPECT_OK(expr)                                            \
  do {                                                             \
    const ::oib::Status _s = (expr);                               \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();           \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                            \
  auto OIB_CONCAT_(_sor_, __LINE__) = (expr);                      \
  ASSERT_TRUE(OIB_CONCAT_(_sor_, __LINE__).ok())                   \
      << OIB_CONCAT_(_sor_, __LINE__).status().ToString();         \
  lhs = std::move(OIB_CONCAT_(_sor_, __LINE__)).value()

namespace oib {

// Which durable world a fixture runs over.  kFile exercises the real
// FileDisk / WAL-file / run-spill paths, and its crash cycle re-attaches
// from the on-disk files, covering the torn-tail repair code.
enum class DiskKind { kInMemory, kFile };

inline const char* DiskKindName(DiskKind k) {
  return k == DiskKind::kInMemory ? "InMemory" : "File";
}

class EngineTest : public ::testing::Test {
 protected:
  // Override (e.g. from a TEST_P fixture's GetParam()) to run the whole
  // fixture over a file-backed Env.
  virtual DiskKind disk_kind() const { return DiskKind::kInMemory; }

  void SetUp() override {
    FailPointRegistry::Instance().Reset();
    options_.buffer_pool_pages = 2048;
    options_.sort_workspace_keys = 1024;
    options_.ib_keys_per_call = 32;
    options_.ib_checkpoint_every_keys = 2000;
    options_.sort_checkpoint_every_keys = 2000;
    options_.sf_apply_batch = 128;
    ASSERT_OK(MakeEnv());
    auto engine = Engine::Open(options_, env_.get());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  void TearDown() override {
    engine_.reset();
    env_.reset();
    if (!env_dir_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(env_dir_, ec);
    }
    FailPointRegistry::Instance().Reset();
  }

  // Clean reopen (no crash) applying any changes made to options_.
  void ReopenWithOptions() {
    ASSERT_OK(engine_->FlushAll());
    engine_.reset();
    auto engine = Engine::Restart(options_, env_.get());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  // Simulates a crash and restarts.  In-memory: volatile state is
  // discarded and the same Env is re-used.  File-backed: the Env object
  // is additionally torn down and re-attached from the on-disk files, so
  // recovery runs against exactly what a kill would have left behind.
  void CrashAndRestart() {
    ASSERT_OK(engine_->SimulateCrash());
    engine_.reset();
    if (disk_kind() == DiskKind::kFile) {
      env_.reset();
      ASSERT_OK(MakeEnv());
    }
    auto engine = Engine::Restart(options_, env_.get(), &recovery_stats_);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  TableId MakeTable(const std::string& name = "t") {
    auto id = engine_->catalog()->CreateTable(name);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  // Inserts `rows` records with zero-padded numeric keys; returns RIDs.
  std::vector<Rid> Populate(TableId table, uint64_t rows) {
    WorkloadOptions wo;
    auto rids = Workload::Populate(engine_.get(), table, rows, wo);
    EXPECT_TRUE(rids.ok()) << rids.status().ToString();
    return rids.ok() ? *rids : std::vector<Rid>{};
  }

  void ExpectIndexConsistent(TableId table, IndexId index) {
    IndexVerifier verifier(engine_.get());
    auto report = verifier.Verify(table, index);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok) << report->error
        << " (records=" << report->table_records
        << " live=" << report->live_entries
        << " pseudo=" << report->pseudo_entries << ")";
  }

  // Blocks until the workload has applied at least `n` operations (so a
  // concurrent build demonstrably overlaps real update traffic).
  static void WaitForOps(Workload* workload, uint64_t n) {
    while (workload->ops_done() < n) {
      std::this_thread::yield();
    }
  }

  Options options_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
  RecoveryStats recovery_stats_;

 private:
  Status MakeEnv() {
    if (disk_kind() == DiskKind::kInMemory) {
      env_ = Env::InMemory(options_);
      return Status::OK();
    }
    if (env_dir_.empty()) {
      const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info();
      std::string leaf = "oib_engine_test_" + std::to_string(getpid()) +
                         "_" + info->test_suite_name() + "_" + info->name();
      // Parameterized names contain '/'; flatten for the filesystem.
      for (char& c : leaf) {
        if (c == '/') c = '_';
      }
      env_dir_ =
          (std::filesystem::temp_directory_path() / leaf).string();
      std::error_code ec;
      std::filesystem::remove_all(env_dir_, ec);
    }
    auto env = Env::OnFiles(env_dir_, options_);
    if (!env.ok()) return env.status();
    env_ = std::move(*env);
    return Status::OK();
  }

  std::string env_dir_;  // non-empty only for DiskKind::kFile
};

// Fixture for TEST_P suites that run every case over both disk kinds:
//
//   class MyTest : public EngineDiskTest {};
//   TEST_P(MyTest, Foo) { ... }
//   INSTANTIATE_TEST_SUITE_P(Disks, MyTest,
//                            ::testing::Values(DiskKind::kInMemory,
//                                              DiskKind::kFile),
//                            DiskParamName);
class EngineDiskTest : public EngineTest,
                       public ::testing::WithParamInterface<DiskKind> {
 protected:
  DiskKind disk_kind() const override { return GetParam(); }
};

inline std::string DiskParamName(
    const ::testing::TestParamInfo<DiskKind>& info) {
  return DiskKindName(info.param);
}

}  // namespace oib

#endif  // OIB_TESTS_TEST_UTIL_H_
