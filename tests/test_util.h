// Shared test scaffolding: status assertions and an engine fixture with a
// crash/restart cycle helper.

#ifndef OIB_TESTS_TEST_UTIL_H_
#define OIB_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "common/failpoint.h"
#include "core/engine.h"
#include "core/index_builder.h"
#include "core/index_verifier.h"
#include "core/schema.h"
#include "core/workload.h"

#define ASSERT_OK(expr)                                            \
  do {                                                             \
    const ::oib::Status _s = (expr);                               \
    ASSERT_TRUE(_s.ok()) << "status: " << _s.ToString();           \
  } while (0)

#define EXPECT_OK(expr)                                            \
  do {                                                             \
    const ::oib::Status _s = (expr);                               \
    EXPECT_TRUE(_s.ok()) << "status: " << _s.ToString();           \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                            \
  auto OIB_CONCAT_(_sor_, __LINE__) = (expr);                      \
  ASSERT_TRUE(OIB_CONCAT_(_sor_, __LINE__).ok())                   \
      << OIB_CONCAT_(_sor_, __LINE__).status().ToString();         \
  lhs = std::move(OIB_CONCAT_(_sor_, __LINE__)).value()

namespace oib {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Instance().Reset();
    options_.buffer_pool_pages = 2048;
    options_.sort_workspace_keys = 1024;
    options_.ib_keys_per_call = 32;
    options_.ib_checkpoint_every_keys = 2000;
    options_.sort_checkpoint_every_keys = 2000;
    options_.sf_apply_batch = 128;
    env_ = Env::InMemory(options_);
    auto engine = Engine::Open(options_, env_.get());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  void TearDown() override { FailPointRegistry::Instance().Reset(); }

  // Clean reopen (no crash) applying any changes made to options_.
  void ReopenWithOptions() {
    ASSERT_OK(engine_->FlushAll());
    engine_.reset();
    auto engine = Engine::Restart(options_, env_.get());
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  // Simulates a crash and restarts over the same durable Env.
  void CrashAndRestart() {
    ASSERT_OK(engine_->SimulateCrash());
    engine_.reset();
    auto engine = Engine::Restart(options_, env_.get(), &recovery_stats_);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    engine_ = std::move(*engine);
  }

  TableId MakeTable(const std::string& name = "t") {
    auto id = engine_->catalog()->CreateTable(name);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    return *id;
  }

  // Inserts `rows` records with zero-padded numeric keys; returns RIDs.
  std::vector<Rid> Populate(TableId table, uint64_t rows) {
    WorkloadOptions wo;
    auto rids = Workload::Populate(engine_.get(), table, rows, wo);
    EXPECT_TRUE(rids.ok()) << rids.status().ToString();
    return rids.ok() ? *rids : std::vector<Rid>{};
  }

  void ExpectIndexConsistent(TableId table, IndexId index) {
    IndexVerifier verifier(engine_.get());
    auto report = verifier.Verify(table, index);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok) << report->error
        << " (records=" << report->table_records
        << " live=" << report->live_entries
        << " pseudo=" << report->pseudo_entries << ")";
  }

  // Blocks until the workload has applied at least `n` operations (so a
  // concurrent build demonstrably overlaps real update traffic).
  static void WaitForOps(Workload* workload, uint64_t n) {
    while (workload->ops_done() < n) {
      std::this_thread::yield();
    }
  }

  Options options_;
  std::unique_ptr<Env> env_;
  std::unique_ptr<Engine> engine_;
  RecoveryStats recovery_stats_;
};

}  // namespace oib

#endif  // OIB_TESTS_TEST_UTIL_H_
