// Log-level transaction semantics: record chaining, commit durability,
// CLR structure during rollback.

#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oib {
namespace {

class TransactionManagerTest : public EngineTest {};

TEST_F(TransactionManagerTest, CommitForcesTheLog) {
  TableId table = MakeTable();
  Lsn flushed_before = engine_->log()->flushed_lsn();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()
                ->InsertRecord(txn, table, Schema::EncodeRecord({"k", "v"}))
                .status());
  // Not yet durable...
  EXPECT_EQ(engine_->log()->flushed_lsn(), flushed_before);
  ASSERT_OK(engine_->Commit(txn));
  // ...durable at commit (the WAL rule).
  EXPECT_GT(engine_->log()->flushed_lsn(), flushed_before);
}

TEST_F(TransactionManagerTest, RecordsChainThroughPrevLsn) {
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(engine_->records()
                  ->InsertRecord(txn, table,
                                 Schema::EncodeRecord(
                                     {"k" + std::to_string(i), "v"}))
                  .status());
  }
  // Walk the chain backwards from last_lsn to Begin.
  int chained = 0;
  Lsn cur = txn->last_lsn();
  while (cur != kInvalidLsn) {
    LogRecord rec;
    ASSERT_OK(engine_->log()->ReadRecord(cur, &rec));
    EXPECT_EQ(rec.txn_id, txn->id());
    if (rec.type == LogRecordType::kBegin) break;
    cur = rec.prev_lsn;
    ++chained;
  }
  EXPECT_GE(chained, 3);
  ASSERT_OK(engine_->Commit(txn));
}

TEST_F(TransactionManagerTest, RollbackWritesClrsWithUndoNext) {
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  std::vector<Lsn> update_lsns;
  for (int i = 0; i < 3; ++i) {
    ASSERT_OK(engine_->records()
                  ->InsertRecord(txn, table,
                                 Schema::EncodeRecord(
                                     {"k" + std::to_string(i), "v"}))
                  .status());
    update_lsns.push_back(txn->last_lsn());
  }
  TxnId id = txn->id();
  ASSERT_OK(engine_->Rollback(txn));

  // Scan the whole log for this txn's CLRs: each must name an undo_next
  // equal to the prev_lsn of the record it compensates.
  ASSERT_OK(engine_->log()->FlushAll());
  int clrs = 0;
  bool abort_seen = false;
  ASSERT_OK(engine_->log()->ScanDurable(
      kInvalidLsn, [&](const LogRecord& rec) {
        if (rec.txn_id != id) return true;
        if (rec.type == LogRecordType::kClr) {
          ++clrs;
          EXPECT_NE(rec.undo_next_lsn, kInvalidLsn + 999999);  // well-formed
        }
        if (rec.type == LogRecordType::kAbort) abort_seen = true;
        return true;
      }));
  EXPECT_GE(clrs, 3);  // one per heap insert (plus index compensations)
  EXPECT_TRUE(abort_seen);
}

TEST_F(TransactionManagerTest, ActiveTransactionsSnapshot) {
  Transaction* a = engine_->Begin();
  Transaction* b = engine_->Begin();
  auto active = engine_->txns()->ActiveTransactions();
  EXPECT_EQ(active.size(), 2u);
  ASSERT_OK(engine_->Commit(a));
  active = engine_->txns()->ActiveTransactions();
  EXPECT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].first, b->id());
  ASSERT_OK(engine_->Rollback(b));
  EXPECT_TRUE(engine_->txns()->ActiveTransactions().empty());
}

TEST_F(TransactionManagerTest, CommitReleasesLocks) {
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid, engine_->records()->InsertRecord(
                   txn, table, Schema::EncodeRecord({"k", "v"})));
  EXPECT_GT(engine_->locks()->held_count(txn->id()), 0u);
  TxnId id = txn->id();
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_EQ(engine_->locks()->held_count(id), 0u);
  // Another transaction can now X-lock the record.
  Transaction* t2 = engine_->Begin();
  LockOptions opt;
  opt.conditional = true;
  EXPECT_OK(engine_->locks()->Lock(t2->id(), RecordLockId(table, rid),
                                   LockMode::kX, opt));
  ASSERT_OK(engine_->Rollback(t2));
}

TEST_F(TransactionManagerTest, EmptyTransactionCommitAndRollback) {
  Transaction* a = engine_->Begin();
  ASSERT_OK(engine_->Commit(a));
  Transaction* b = engine_->Begin();
  ASSERT_OK(engine_->Rollback(b));
}

}  // namespace
}  // namespace oib
