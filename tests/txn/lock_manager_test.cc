#include "txn/lock_manager.h"

#include <gtest/gtest.h>

#include <thread>

namespace oib {
namespace {

TEST(LockModeTest, CompatibilityMatrix) {
  // Spot-check the classic matrix.
  EXPECT_TRUE(LockCompatible(LockMode::kIS, LockMode::kIX));
  EXPECT_TRUE(LockCompatible(LockMode::kIX, LockMode::kIX));
  EXPECT_TRUE(LockCompatible(LockMode::kS, LockMode::kS));
  EXPECT_FALSE(LockCompatible(LockMode::kS, LockMode::kIX));
  EXPECT_FALSE(LockCompatible(LockMode::kIX, LockMode::kS));
  EXPECT_FALSE(LockCompatible(LockMode::kX, LockMode::kIS));
  EXPECT_FALSE(LockCompatible(LockMode::kSIX, LockMode::kIX));
  EXPECT_TRUE(LockCompatible(LockMode::kIS, LockMode::kSIX));
}

TEST(LockModeTest, Supremum) {
  EXPECT_EQ(LockSupremum(LockMode::kIS, LockMode::kIX), LockMode::kIX);
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kIX), LockMode::kSIX);
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kX), LockMode::kX);
  EXPECT_EQ(LockSupremum(LockMode::kS, LockMode::kS), LockMode::kS);
}

TEST(LockManagerTest, SharedGrantsCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, 100, LockMode::kS).ok());
  EXPECT_TRUE(lm.Lock(2, 100, LockMode::kS).ok());
  EXPECT_TRUE(lm.Holds(1, 100, LockMode::kS));
  EXPECT_TRUE(lm.Holds(2, 100, LockMode::kS));
}

TEST(LockManagerTest, ConditionalXDeniedUnderS) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, 100, LockMode::kS).ok());
  LockOptions opt;
  opt.conditional = true;
  EXPECT_TRUE(lm.Lock(2, 100, LockMode::kX, opt).IsBusy());
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager lm;
  EXPECT_TRUE(lm.Lock(1, 5, LockMode::kS).ok());
  EXPECT_TRUE(lm.Lock(1, 5, LockMode::kS).ok());  // re-entrant
  EXPECT_TRUE(lm.Lock(1, 5, LockMode::kX).ok());  // upgrade (sole holder)
  EXPECT_TRUE(lm.Holds(1, 5, LockMode::kX));
}

TEST(LockManagerTest, TimeoutResolvesDeadlock) {
  LockManager lm(/*default_timeout_ms=*/100);
  EXPECT_TRUE(lm.Lock(1, 10, LockMode::kX).ok());
  LockOptions opt;
  opt.timeout_ms = 100;
  Status s = lm.Lock(2, 10, LockMode::kX, opt);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_EQ(lm.timeout_count(), 1u);
}

TEST(LockManagerTest, ReleaseWakesWaiter) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, 10, LockMode::kX).ok());
  std::thread waiter([&] {
    LockOptions opt;
    opt.timeout_ms = 5000;
    EXPECT_TRUE(lm.Lock(2, 10, LockMode::kX, opt).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  lm.ReleaseAll(1);
  waiter.join();
  EXPECT_TRUE(lm.Holds(2, 10, LockMode::kX));
}

TEST(LockManagerTest, InstantLockNotRetained) {
  LockManager lm;
  LockOptions opt;
  opt.instant = true;
  EXPECT_TRUE(lm.Lock(1, 10, LockMode::kS, opt).ok());
  EXPECT_FALSE(lm.Holds(1, 10, LockMode::kS));
  // Someone else can take X immediately.
  EXPECT_TRUE(lm.Lock(2, 10, LockMode::kX).ok());
}

TEST(LockManagerTest, InstantConditionalDeniedByHolder) {
  // The GC protocol: conditional instant S on a record whose deleter is
  // still active (holds X) must come back Busy.
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, 10, LockMode::kX).ok());
  LockOptions opt;
  opt.instant = true;
  opt.conditional = true;
  EXPECT_TRUE(lm.Lock(2, 10, LockMode::kS, opt).IsBusy());
  lm.ReleaseAll(1);
  EXPECT_TRUE(lm.Lock(2, 10, LockMode::kS, opt).ok());
}

TEST(LockManagerTest, ReleaseAllDropsEverything) {
  LockManager lm;
  ASSERT_TRUE(lm.Lock(1, 10, LockMode::kS).ok());
  ASSERT_TRUE(lm.Lock(1, 11, LockMode::kX).ok());
  EXPECT_EQ(lm.held_count(1), 2u);
  lm.ReleaseAll(1);
  EXPECT_EQ(lm.held_count(1), 0u);
  EXPECT_TRUE(lm.Lock(2, 10, LockMode::kX).ok());
  EXPECT_TRUE(lm.Lock(3, 11, LockMode::kX).ok());
}

TEST(LockManagerTest, TableQuiesceProtocol) {
  // NSF: IB's table S lock waits for updaters (IX) and blocks new ones.
  LockManager lm;
  LockId table = TableLockId(1);
  ASSERT_TRUE(lm.Lock(10, table, LockMode::kIX).ok());  // active updater
  std::atomic<bool> s_granted{false};
  std::thread builder([&] {
    LockOptions opt;
    opt.timeout_ms = 5000;
    ASSERT_TRUE(lm.Lock(99, table, LockMode::kS, opt).ok());
    s_granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(s_granted.load());
  lm.ReleaseAll(10);  // updater commits
  builder.join();
  EXPECT_TRUE(s_granted.load());
}

TEST(LockManagerTest, LockIdNamespacesDisjoint) {
  // Record and table lock names never collide.
  EXPECT_NE(TableLockId(1), RecordLockId(1, Rid(0, 0)));
  EXPECT_NE(RecordLockId(1, Rid(2, 3)), RecordLockId(2, Rid(2, 3)));
  EXPECT_NE(RecordLockId(1, Rid(2, 3)), RecordLockId(1, Rid(2, 4)));
}

}  // namespace
}  // namespace oib
