#include "sidefile/side_file.h"

#include <gtest/gtest.h>

#include <thread>

#include "tests/test_util.h"

namespace oib {
namespace {

class SideFileTest : public EngineTest {
 protected:
  std::unique_ptr<SideFile> NewSideFile(IndexId id = 77) {
    auto sf = std::make_unique<SideFile>(id, engine_->pool(),
                                         engine_->txns());
    EXPECT_OK(sf->Create());
    return sf;
  }
};

TEST_F(SideFileTest, AppendAndReadBack) {
  auto sf = NewSideFile();
  Transaction* txn = engine_->Begin();
  ASSERT_OK(sf->Append(txn, SideFileOp::kInsertKey, "apple", Rid(1, 2)));
  ASSERT_OK(sf->Append(txn, SideFileOp::kDeleteKey, "banana", Rid(3, 4)));
  ASSERT_OK(engine_->Commit(txn));

  SideFile::Cursor cursor = sf->Begin();
  std::vector<SideFile::Entry> entries;
  ASSERT_OK(sf->ReadBatch(&cursor, 10, &entries).status());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].op, SideFileOp::kInsertKey);
  EXPECT_EQ(entries[0].key, "apple");
  EXPECT_EQ(entries[0].rid, Rid(1, 2));
  EXPECT_EQ(entries[1].op, SideFileOp::kDeleteKey);
  EXPECT_EQ(entries[1].key, "banana");
}

TEST_F(SideFileTest, CursorResumesMidStream) {
  auto sf = NewSideFile();
  Transaction* txn = engine_->Begin();
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK(sf->Append(txn, SideFileOp::kInsertKey,
                         "key" + std::to_string(i), Rid(1, 0)));
  }
  ASSERT_OK(engine_->Commit(txn));

  SideFile::Cursor cursor = sf->Begin();
  std::vector<SideFile::Entry> entries;
  ASSERT_OK(sf->ReadBatch(&cursor, 30, &entries).status());
  ASSERT_EQ(entries.size(), 30u);
  // Same cursor continues exactly where it stopped.
  ASSERT_OK(sf->ReadBatch(&cursor, 1000, &entries).status());
  ASSERT_EQ(entries.size(), 70u);
  EXPECT_EQ(entries[0].key, "key30");
  // Caught up: nothing more.
  auto more = sf->ReadBatch(&cursor, 10, &entries);
  ASSERT_TRUE(more.ok());
  EXPECT_EQ(*more, 0u);
  // New appends become visible to the same cursor (the "transactions may
  // still be appending" property of section 3.2.5).
  txn = engine_->Begin();
  ASSERT_OK(sf->Append(txn, SideFileOp::kDeleteKey, "late", Rid(9, 9)));
  ASSERT_OK(engine_->Commit(txn));
  ASSERT_OK(sf->ReadBatch(&cursor, 10, &entries).status());
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].key, "late");
}

TEST_F(SideFileTest, GrowsAcrossPagesAndCountsEntries) {
  auto sf = NewSideFile();
  Transaction* txn = engine_->Begin();
  std::string key(100, 'k');
  for (int i = 0; i < 200; ++i) {
    ASSERT_OK(sf->Append(txn, SideFileOp::kInsertKey, key, Rid(i, 0)));
  }
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_GT(sf->page_count(), 2u);
  EXPECT_EQ(sf->entries_appended(), 200u);

  SideFile::Cursor cursor = sf->Begin();
  std::vector<SideFile::Entry> entries;
  size_t total = 0;
  for (;;) {
    auto got = sf->ReadBatch(&cursor, 64, &entries);
    ASSERT_TRUE(got.ok());
    if (*got == 0) break;
    total += *got;
    // Order preserved: RIDs ascend with append order.
  }
  EXPECT_EQ(total, 200u);
}

TEST_F(SideFileTest, ConcurrentAppendersKeepAllEntries) {
  auto sf = NewSideFile();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Transaction* txn = engine_->Begin();
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(sf->Append(txn, SideFileOp::kInsertKey,
                               "t" + std::to_string(t) + "-" +
                                   std::to_string(i),
                               Rid(t, static_cast<SlotId>(i)))
                        .ok());
      }
      ASSERT_TRUE(engine_->Commit(txn).ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sf->entries_appended(),
            static_cast<uint64_t>(kThreads * kPerThread));
  SideFile::Cursor cursor = sf->Begin();
  std::vector<SideFile::Entry> entries;
  std::set<std::string> seen;
  for (;;) {
    auto got = sf->ReadBatch(&cursor, 128, &entries);
    ASSERT_TRUE(got.ok());
    if (*got == 0) break;
    for (const auto& e : entries) seen.insert(e.key);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(SideFileTest, AppendsAreRedoOnlyAndSurviveCrash) {
  IndexId id = 77;
  PageId first;
  {
    auto sf = NewSideFile(id);
    first = sf->first_page();
    Transaction* txn = engine_->Begin();
    ASSERT_OK(sf->Append(txn, SideFileOp::kInsertKey, "durable", Rid(1, 1)));
    ASSERT_OK(engine_->Commit(txn));
    // An uncommitted append is NOT undone at restart (redo-only records;
    // rollback appends inverse entries instead — section 3.2.3).
    Transaction* loser = engine_->Begin();
    ASSERT_OK(sf->Append(loser, SideFileOp::kDeleteKey, "loser", Rid(2, 2)));
    ASSERT_OK(engine_->log()->FlushAll());
  }
  CrashAndRestart();
  SideFile sf(id, engine_->pool(), engine_->txns());
  ASSERT_OK(sf.Open(first));
  EXPECT_EQ(sf.entries_appended(), 2u);
  SideFile::Cursor cursor = sf.Begin();
  std::vector<SideFile::Entry> entries;
  ASSERT_OK(sf.ReadBatch(&cursor, 10, &entries).status());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "durable");
  EXPECT_EQ(entries[1].key, "loser");
}

}  // namespace
}  // namespace oib
