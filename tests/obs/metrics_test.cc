// Metrics layer tests: histogram bucket layout, quantile extraction,
// lock-free counters under contention, and registry ownership rules.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

namespace oib {
namespace obs {
namespace {

TEST(HistogramBucketsTest, SmallValuesGetExactBuckets) {
  // Values 0..3 are below the first sub-bucketed octave and must map to
  // dedicated buckets whose range is a single value.
  for (uint64_t v = 0; v < 4; ++v) {
    uint32_t b = HistogramBuckets::Index(v);
    EXPECT_EQ(HistogramBuckets::LowerBound(b), v);
    EXPECT_EQ(HistogramBuckets::UpperBound(b), v);
  }
}

TEST(HistogramBucketsTest, IndexIsMonotonicAndRoundTrips) {
  uint32_t prev = 0;
  for (int shift = 0; shift < 64; ++shift) {
    for (uint64_t delta : {0ull, 1ull}) {
      uint64_t v = (1ull << shift) + delta;
      if (delta > 0 && v < delta) continue;  // overflow wrap
      uint32_t b = HistogramBuckets::Index(v);
      ASSERT_LT(b, HistogramBuckets::kNumBuckets);
      EXPECT_GE(b, prev);
      prev = b;
      // Every value lies inside its own bucket's [lower, upper] range.
      EXPECT_LE(HistogramBuckets::LowerBound(b), v);
      EXPECT_GE(HistogramBuckets::UpperBound(b), v);
    }
  }
  EXPECT_EQ(HistogramBuckets::Index(~0ull),
            HistogramBuckets::Index(~0ull));  // no out-of-range UB
}

TEST(HistogramBucketsTest, BucketsTileTheRangeWithoutGaps) {
  // upper(b) + 1 == lower(b+1) for every adjacent pair: no value can
  // fall between buckets and none belongs to two.
  for (uint32_t b = 0; b + 1 < HistogramBuckets::kNumBuckets; ++b) {
    uint64_t upper = HistogramBuckets::UpperBound(b);
    if (upper == ~0ull) break;  // reached the top of the uint64 range
    EXPECT_EQ(upper + 1, HistogramBuckets::LowerBound(b + 1))
        << "gap after bucket " << b;
  }
}

TEST(HistogramTest, CountSumMax) {
  Histogram h;
  h.Record(5);
  h.Record(10);
  h.Record(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 18u);
  EXPECT_EQ(h.max(), 10u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Snapshot().Percentile(50), 0u);
}

TEST(HistogramTest, PercentilesOnUniformData) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.max, 1000u);
  // Log buckets guarantee <= 25% relative error (kSubBits = 2).
  uint64_t p50 = s.Percentile(50);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 625u);
  uint64_t p99 = s.Percentile(99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1000u);  // clamped to observed max
  EXPECT_EQ(s.Percentile(100), s.max);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
}

TEST(HistogramTest, PercentileOfSingleValue) {
  Histogram h;
  h.Record(42);
  HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Percentile(0), 42u);
  EXPECT_EQ(s.Percentile(50), 42u);
  EXPECT_EQ(s.Percentile(100), 42u);
}

TEST(HistogramTest, PercentileInterpolationTracksSortedReference) {
  // Exactness check against a sorted reference: for every percentile the
  // interpolated readout must stay within the layout's error bound.  The
  // estimate and the true nearest-rank value always land in the same
  // log-scaled bucket, whose relative width is <= 25% (kSubBits = 2), so
  // the bound is deterministic for any input distribution.
  auto check = [](const std::vector<uint64_t>& values, const char* what) {
    Histogram h;
    for (uint64_t v : values) h.Record(v);
    std::vector<uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    HistogramSnapshot s = h.Snapshot();
    for (int p = 1; p <= 99; ++p) {
      // Same nearest-rank convention as HistogramSnapshot::Percentile.
      uint64_t rank = static_cast<uint64_t>(p / 100.0 * sorted.size());
      if (rank < 1) rank = 1;
      uint64_t truth = sorted[rank - 1];
      uint64_t est = s.Percentile(p);
      double err =
          truth == 0
              ? static_cast<double>(est)
              : std::fabs(static_cast<double>(est) - static_cast<double>(truth)) /
                    static_cast<double>(truth);
      EXPECT_LE(err, 0.25) << what << " p" << p << ": estimate " << est
                           << " vs reference " << truth;
    }
    EXPECT_EQ(s.Percentile(100), sorted.back());
  };

  std::vector<uint64_t> uniform;
  for (uint64_t v = 1; v <= 1000; ++v) uniform.push_back(v);
  check(uniform, "uniform");

  std::vector<uint64_t> squares;  // quadratic spread across many octaves
  for (uint64_t i = 1; i <= 500; ++i) squares.push_back(i * i);
  check(squares, "squares");

  std::vector<uint64_t> lumpy;  // heavy repeats piled into few buckets
  for (uint64_t i = 0; i < 600; ++i) lumpy.push_back(100);
  for (uint64_t i = 0; i < 300; ++i) lumpy.push_back(10000 + i * 7);
  for (uint64_t i = 0; i < 100; ++i) lumpy.push_back(1u << (10 + i % 10));
  check(lumpy, "lumpy");
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (uint64_t j = 0; j < kPerThread; ++j) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(HistogramTest, ConcurrentRecordsKeepTotals) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&h] {
      for (uint64_t j = 0; j < kPerThread; ++j) h.Record(7);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(h.sum(), 7 * kThreads * kPerThread);
  EXPECT_EQ(h.max(), 7u);
}

TEST(MetricsRegistryTest, CreateOrGetReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("a.counter");
  Counter* c2 = reg.GetCounter("a.counter");
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("a.hist");
  EXPECT_EQ(h1, reg.GetHistogram("a.hist"));
}

TEST(MetricsRegistryTest, KindMismatchReturnsNull) {
  MetricsRegistry reg;
  ASSERT_NE(reg.GetCounter("x"), nullptr);
  EXPECT_EQ(reg.GetGauge("x"), nullptr);
  EXPECT_EQ(reg.GetHistogram("x"), nullptr);
}

TEST(MetricsRegistryTest, ComponentRegistrationAndDetach) {
  MetricsRegistry reg;
  Counter mine;
  mine.Inc(7);
  int owner_token = 0;
  reg.RegisterCounter("comp.hits", &mine, &owner_token);
  MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("comp.hits"), 7u);

  reg.DetachOwner(&owner_token);
  snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.count("comp.hits"), 0u);
}

TEST(MetricsRegistryTest, ReRegisterReplacesEntry) {
  // Engine restart re-attaches the same names with new components.
  MetricsRegistry reg;
  Counter first, second;
  first.Inc(1);
  second.Inc(2);
  int owner_a = 0, owner_b = 0;
  reg.RegisterCounter("comp.hits", &first, &owner_a);
  reg.RegisterCounter("comp.hits", &second, &owner_b);
  EXPECT_EQ(reg.TakeSnapshot().counters.at("comp.hits"), 2u);
  // Detaching the stale owner must not remove the live replacement.
  reg.DetachOwner(&owner_a);
  EXPECT_EQ(reg.TakeSnapshot().counters.at("comp.hits"), 2u);
}

TEST(MetricsRegistryTest, ValueFnAppearsAmongCounters) {
  MetricsRegistry reg;
  uint64_t source = 41;
  int owner_token = 0;
  reg.RegisterValueFn("derived.value", [&source] { return source; },
                      &owner_token);
  source = 42;
  EXPECT_EQ(reg.TakeSnapshot().counters.at("derived.value"), 42u);
  reg.DetachOwner(&owner_token);
}

TEST(MetricsRegistryTest, ResetAllZeroesMetricsButNotValueFns) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Inc(5);
  reg.GetGauge("g")->Set(-3);
  reg.GetHistogram("h")->Record(100);
  int owner_token = 0;
  reg.RegisterValueFn("fn", [] { return 9u; }, &owner_token);

  reg.ResetAll();
  MetricsSnapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("c"), 0u);
  EXPECT_EQ(snap.gauges.at("g"), 0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
  EXPECT_EQ(snap.counters.at("fn"), 9u);  // callbacks untouched
  reg.DetachOwner(&owner_token);
}

}  // namespace
}  // namespace obs
}  // namespace oib
