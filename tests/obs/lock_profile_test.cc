// Lock-contention profiler tests: gating, contended-only recording, the
// per-rank collection, and the JSON export shape.
//
// Contention is manufactured deterministically: the main thread holds the
// lock, a worker announces itself and blocks on it, and the main thread
// releases only after a sleep far longer than the announce-to-block gap.
// A scheduler stall can still (rarely) let the worker through
// uncontended, so the contended assertions retry rather than trusting
// one attempt.

#include "obs/lock_profile.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "common/sync.h"
#include "obs/export.h"

namespace oib {
namespace obs {
namespace {

// Runs `worker_acquire_release` on a thread while the caller holds the
// lock it targets; `unlock` releases the caller's hold once the worker is
// (almost surely) parked, then the worker is joined.
template <typename AcquireRelease, typename Unlock>
void Contend(AcquireRelease worker_acquire_release, Unlock unlock) {
  std::atomic<bool> trying{false};
  std::thread th([&] {
    trying.store(true);
    worker_acquire_release();
  });
  while (!trying.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  unlock();
  th.join();
}

[[maybe_unused]] bool RankHasWaits(sync::LockRank rank) {
  for (const LockRankContention& c : CollectLockProfile()) {
    if (c.rank == rank) return true;
  }
  return false;
}

TEST(LockProfileTest, DisabledRecordsNothing) {
  sync::prof::SetEnabled(false);
  ResetLockProfile();
  sync::Mutex mu(sync::LockRank::kDisk, "lp.test.disabled");
  mu.Lock();
  Contend([&] { sync::MutexLock l(&mu); }, [&] { mu.Unlock(); });
  EXPECT_TRUE(CollectLockProfile().empty());
  EXPECT_FALSE(LockProfileEnabled());
}

TEST(LockProfileTest, UncontendedAcquisitionsRecordNothing) {
#if OIB_LOCK_PROFILE
  ResetLockProfile();
  sync::prof::SetEnabled(true);
  sync::Mutex mu(sync::LockRank::kDisk, "lp.test.fast");
  for (int i = 0; i < 1000; ++i) {
    sync::MutexLock l(&mu);
  }
  sync::SharedMutex smu(sync::LockRank::kRunStore, "lp.test.fast.shared");
  for (int i = 0; i < 1000; ++i) {
    sync::ReaderMutexLock l(&smu);
  }
  sync::prof::SetEnabled(false);
  // Single-threaded: every acquire took the try_lock fast path.
  EXPECT_TRUE(CollectLockProfile().empty());
#endif
}

TEST(LockProfileTest, ContendedMutexRecordsWaitAndHold) {
#if OIB_LOCK_PROFILE
  sync::prof::SetEnabled(true);
  sync::Mutex mu(sync::LockRank::kDisk, "lp.test.contended");
  bool saw_wait = false;
  for (int attempt = 0; attempt < 10 && !saw_wait; ++attempt) {
    ResetLockProfile();
    mu.Lock();
    Contend([&] { sync::MutexLock l(&mu); }, [&] { mu.Unlock(); });
    saw_wait = RankHasWaits(sync::LockRank::kDisk);
  }
  sync::prof::SetEnabled(false);
  ASSERT_TRUE(saw_wait) << "no contended wait recorded in 10 attempts";

  bool found = false;
  for (const LockRankContention& c : CollectLockProfile()) {
    if (c.rank != sync::LockRank::kDisk) continue;
    found = true;
    EXPECT_STREQ(c.name, sync::LockRankName(sync::LockRank::kDisk));
    EXPECT_GE(c.waits, 1u);
    EXPECT_GE(c.wait_ns.count, 1u);
    EXPECT_GT(c.wait_ns.sum, 0u);  // the worker was parked ~25 ms
    // The worker's post-wait hold is recorded on its unlock.
    EXPECT_GE(c.hold_ns.count, 1u);
  }
  EXPECT_TRUE(found);
#endif
}

TEST(LockProfileTest, SharedAcquireRecordsWaitButNoHold) {
#if OIB_LOCK_PROFILE
  sync::prof::SetEnabled(true);
  sync::SharedMutex smu(sync::LockRank::kRunStore, "lp.test.shared");
  bool saw_wait = false;
  for (int attempt = 0; attempt < 10 && !saw_wait; ++attempt) {
    ResetLockProfile();
    smu.Lock();  // exclusive: readers must block
    Contend([&] { sync::ReaderMutexLock l(&smu); }, [&] { smu.Unlock(); });
    saw_wait = RankHasWaits(sync::LockRank::kRunStore);
  }
  sync::prof::SetEnabled(false);
  ASSERT_TRUE(saw_wait) << "no contended shared wait in 10 attempts";

  for (const LockRankContention& c : CollectLockProfile()) {
    if (c.rank != sync::LockRank::kRunStore) continue;
    EXPECT_GE(c.waits, 1u);
    // Shared holds are unattributable (many concurrent holders), so the
    // reader path records the wait only.
    EXPECT_EQ(c.hold_ns.count, 0u);
  }
#endif
}

TEST(LockProfileTest, JsonExportCarriesRanksAndHistograms) {
#if OIB_LOCK_PROFILE
  sync::prof::SetEnabled(true);
  sync::Mutex mu(sync::LockRank::kWalFlush, "lp.test.json");
  bool saw_wait = false;
  for (int attempt = 0; attempt < 10 && !saw_wait; ++attempt) {
    ResetLockProfile();
    mu.Lock();
    Contend([&] { sync::MutexLock l(&mu); }, [&] { mu.Unlock(); });
    saw_wait = RankHasWaits(sync::LockRank::kWalFlush);
  }
  sync::prof::SetEnabled(false);
  ASSERT_TRUE(saw_wait);

  JsonWriter w;
  LockContentionToJson(CollectLockProfile(), &w);
  const std::string& json = w.str();
  EXPECT_NE(json.find("\"enabled\":false"), std::string::npos);  // now off
  EXPECT_NE(json.find("\"WalFlush\""), std::string::npos);
  EXPECT_NE(json.find("\"waits\""), std::string::npos);
  EXPECT_NE(json.find("\"total_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"hold\""), std::string::npos);
#else
  // Compiled out: collection is empty and reports disabled.
  JsonWriter w;
  LockContentionToJson(CollectLockProfile(), &w);
  EXPECT_NE(w.str().find("\"enabled\":false"), std::string::npos);
#endif
}

TEST(LockProfileTest, ResetClearsAccumulatedProfile) {
#if OIB_LOCK_PROFILE
  sync::prof::SetEnabled(true);
  sync::Mutex mu(sync::LockRank::kDisk, "lp.test.reset");
  bool saw_wait = false;
  for (int attempt = 0; attempt < 10 && !saw_wait; ++attempt) {
    mu.Lock();
    Contend([&] { sync::MutexLock l(&mu); }, [&] { mu.Unlock(); });
    saw_wait = RankHasWaits(sync::LockRank::kDisk);
  }
  sync::prof::SetEnabled(false);
  ASSERT_TRUE(saw_wait);
  EXPECT_FALSE(CollectLockProfile().empty());
  ResetLockProfile();
  EXPECT_TRUE(CollectLockProfile().empty());
#endif
}

}  // namespace
}  // namespace obs
}  // namespace oib
