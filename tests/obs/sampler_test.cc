// StatsSampler tests: background ticking, idempotent start/stop (and
// stop-before-start), the guaranteed final sample, histogram folding,
// and ring capacity bounds.

#include "obs/sampler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/metrics.h"

namespace oib {
namespace obs {
namespace {

TEST(StatsSamplerTest, BackgroundThreadCollectsTicks) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  StatsSampler sampler(&reg, /*interval_ms=*/5);
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  c->Inc(10);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());

  std::vector<StatsSampler::Sample> samples = sampler.Samples();
  ASSERT_GE(samples.size(), 2u);  // several 5 ms ticks fit in 60 ms
  // Monotonic timestamps, and the final sample sees the counter.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].t_ms, samples[i - 1].t_ms);
  }
  EXPECT_EQ(samples.back().counters.at("test.counter"), 10u);
}

TEST(StatsSamplerTest, StopBeforeStartAndDoubleStopAreSafe) {
  MetricsRegistry reg;
  StatsSampler sampler(&reg, 10);
  sampler.Stop();  // never started: no-op
  EXPECT_FALSE(sampler.running());
  sampler.Start();
  sampler.Start();  // already running: no-op
  sampler.Stop();
  sampler.Stop();  // already stopped: no-op
  EXPECT_FALSE(sampler.running());
  // Start after Stop resumes.
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  sampler.Stop();
}

TEST(StatsSamplerTest, StopTakesAFinalSampleEvenWithinOneInterval) {
  MetricsRegistry reg;
  reg.GetCounter("test.counter")->Inc();
  // Interval far longer than the test: only the shutdown sample fires.
  StatsSampler sampler(&reg, /*interval_ms=*/60000);
  sampler.Start();
  sampler.Stop();
  ASSERT_GE(sampler.Samples().size(), 1u);
  EXPECT_EQ(sampler.Samples().back().counters.at("test.counter"), 1u);
}

TEST(StatsSamplerTest, DestructorStopsARunningSampler) {
  MetricsRegistry reg;
  {
    StatsSampler sampler(&reg, 5);
    sampler.Start();
  }  // must join without deadlock or crash
}

TEST(StatsSamplerTest, SampleNowWorksWithoutBackgroundThread) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  StatsSampler sampler(&reg, 100);
  c->Inc(3);
  sampler.SampleNow();
  c->Inc(4);
  sampler.SampleNow();
  std::vector<StatsSampler::Sample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].counters.at("test.counter"), 3u);
  EXPECT_EQ(samples[1].counters.at("test.counter"), 7u);
}

TEST(StatsSamplerTest, HistogramsFoldToCountAndSum) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("test.lat_ns");
  h->Record(5);
  h->Record(7);
  StatsSampler sampler(&reg, 100);
  sampler.SampleNow();
  const StatsSampler::Sample s = sampler.Samples().back();
  EXPECT_EQ(s.counters.at("test.lat_ns.count"), 2u);
  EXPECT_EQ(s.counters.at("test.lat_ns.sum"), 12u);
}

TEST(StatsSamplerTest, RingKeepsOnlyTheNewestCapacitySamples) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("test.counter");
  StatsSampler sampler(&reg, 100, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    c->Inc();
    sampler.SampleNow();
  }
  std::vector<StatsSampler::Sample> samples = sampler.Samples();
  ASSERT_EQ(samples.size(), 4u);
  // Oldest evicted: the survivors are ticks 7..10.
  EXPECT_EQ(samples.front().counters.at("test.counter"), 7u);
  EXPECT_EQ(samples.back().counters.at("test.counter"), 10u);
}

}  // namespace
}  // namespace obs
}  // namespace oib
