// Tracer tests: scoped span recording, ring-buffer wraparound,
// dropped-span accounting, per-thread tracks, Chrome trace export, and
// the per-name aggregation used by exporters.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"

namespace oib {
namespace obs {
namespace {

TEST(TracerTest, ScopedSpanRecordsNameTimesAndArg) {
  Tracer tracer(16);
  uint64_t before = MonotonicNanos();
  {
    ScopedSpan span(&tracer, "unit.test", 7);
  }
  uint64_t after = MonotonicNanos();

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit.test");
  EXPECT_EQ(spans[0].arg, 7u);
  EXPECT_GE(spans[0].start_ns, before);
  EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
  EXPECT_LE(spans[0].end_ns, after);
}

TEST(TracerTest, EndIsIdempotentAndSetArgApplies) {
  Tracer tracer(16);
  {
    ScopedSpan span(&tracer, "once");
    span.set_arg(99);
    span.End();
    span.End();  // destructor also becomes a no-op
  }
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg, 99u);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(TracerTest, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(5);
  EXPECT_EQ(tracer.capacity(), 8u);
}

TEST(TracerTest, RingWrapsKeepingMostRecentSpans) {
  Tracer tracer(8);
  constexpr uint64_t kTotal = 20;
  for (uint64_t i = 0; i < kTotal; ++i) {
    tracer.Record("wrap", i, i + 1, i);
  }
  EXPECT_EQ(tracer.recorded(), kTotal);

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), tracer.capacity());
  // Oldest-first, consecutive seq numbers, and exactly the newest
  // `capacity` spans survive (args 12..19 for 20 recorded into 8 slots).
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].arg, kTotal - spans.size() + i);
    if (i > 0) {
      EXPECT_EQ(spans[i].seq, spans[i - 1].seq + 1);
    }
  }
  EXPECT_EQ(spans.back().seq, kTotal);
}

TEST(TracerTest, ResetEmptiesTheRing) {
  Tracer tracer(8);
  tracer.Record("a", 0, 1);
  tracer.Reset();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, ConcurrentWritersLoseNothingBeforeWrap) {
  // With capacity >= total spans, every span must be present exactly once.
  Tracer tracer(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t arg = static_cast<uint64_t>(t) * kPerThread + i;
        tracer.Record("mt", arg, arg + 1, arg);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), size_t{kThreads} * kPerThread);
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (const Span& s : spans) {
    ASSERT_LT(s.arg, seen.size());
    EXPECT_FALSE(seen[s.arg]);
    seen[s.arg] = true;
  }
}

TEST(TracerTest, DroppedCountsRingEvictions) {
  Tracer tracer(8);
  EXPECT_EQ(tracer.dropped(), 0u);
  for (uint64_t i = 0; i < tracer.capacity(); ++i) {
    tracer.Record("d", i, i + 1);
  }
  EXPECT_EQ(tracer.dropped(), 0u);  // exactly full: nothing evicted yet
  tracer.Record("d", 100, 101);
  EXPECT_EQ(tracer.dropped(), 1u);
  tracer.Reset();
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(TracerTest, EightConcurrentEmittersWrapWithExactAccounting) {
  // Well past capacity from 8 threads at once: the ring must end up
  // internally consistent (unique seqs, bounded size, exact totals) even
  // though which spans survive is scheduling-dependent.
  Tracer tracer(64);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.Record("wrap.mt", 1, 2, 1);
      }
    });
  }
  for (auto& th : threads) th.join();

  const uint64_t total = uint64_t{kThreads} * kPerThread;
  EXPECT_EQ(tracer.recorded(), total);
  EXPECT_EQ(tracer.dropped(), total - tracer.capacity());

  std::vector<Span> spans = tracer.Snapshot();
  EXPECT_FALSE(spans.empty());
  EXPECT_LE(spans.size(), tracer.capacity());
  std::set<uint64_t> seqs;
  for (const Span& s : spans) {
    EXPECT_GE(s.seq, 1u);
    EXPECT_LE(s.seq, total);
    EXPECT_TRUE(seqs.insert(s.seq).second) << "duplicate seq " << s.seq;
  }
}

TEST(TracerTest, SpansCarryTheEmittingThreadsTid) {
  Tracer tracer(16);
  tracer.Record("from.main", 0, 1);
  uint32_t main_tid = CurrentThreadTid();
  uint32_t worker_tid = 0;
  std::thread th([&] {
    worker_tid = CurrentThreadTid();
    tracer.Record("from.worker", 0, 1);
  });
  th.join();
  ASSERT_NE(worker_tid, 0u);
  EXPECT_NE(worker_tid, main_tid);
  for (const Span& s : tracer.Snapshot()) {
    if (std::string(s.name) == "from.main") {
      EXPECT_EQ(s.tid, main_tid);
    } else {
      EXPECT_EQ(s.tid, worker_tid);
    }
  }
}

TEST(TracerTest, ThreadNamesRegisterPerTid) {
  uint32_t worker_tid = 0;
  std::thread th([&] {
    SetCurrentThreadName("trace-test-worker");
    worker_tid = CurrentThreadTid();
  });
  th.join();
  bool found = false;
  for (const auto& [tid, name] : ThreadNames()) {
    if (tid == worker_tid) {
      EXPECT_EQ(name, "trace-test-worker");
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(TracerTest, ChromeJsonHasEventsThreadNamesAndDropCount) {
  Tracer tracer(16);
  SetCurrentThreadName("trace-test-main");
  tracer.Record("chrome.span", 1000, 4000, 5);
  tracer.Record("chrome.later", 2000, 2500);
  std::string json = TraceToChromeJson(tracer.Snapshot(), tracer.dropped());

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"chrome.span\""), std::string::npos);
  EXPECT_NE(json.find("\"chrome.later\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"trace-test-main\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
  // Timestamps are rebased to the earliest span and emitted in
  // microseconds with ns precision: 1000ns..4000ns -> ts 0, dur 3.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3.000"), std::string::npos);
  // 2000ns start -> 1.000us after the base.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(TracerTest, AggregateSpansRollsUpPerName) {
  Tracer tracer(16);
  tracer.Record("phase.a", 0, 10);
  tracer.Record("phase.a", 10, 40);
  tracer.Record("phase.b", 0, 5);
  auto agg = AggregateSpans(tracer.Snapshot());
  ASSERT_EQ(agg.size(), 2u);
  for (const auto& [name, a] : agg) {
    if (name == "phase.a") {
      EXPECT_EQ(a.count, 2u);
      EXPECT_EQ(a.total_ns, 40u);
      EXPECT_EQ(a.max_ns, 30u);
    } else {
      EXPECT_EQ(name, "phase.b");
      EXPECT_EQ(a.count, 1u);
      EXPECT_EQ(a.total_ns, 5u);
    }
  }
}

TEST(TracerTest, LongNamesAreTruncatedNotOverflowed) {
  Tracer tracer(8);
  const char* long_name =
      "a.name.much.longer.than.the.thirty.one.bytes.a.slot.stores";
  tracer.Record(long_name, 0, 1);
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::strlen(spans[0].name), 31u);
  EXPECT_EQ(std::string(spans[0].name), std::string(long_name).substr(0, 31));
}

}  // namespace
}  // namespace obs
}  // namespace oib
