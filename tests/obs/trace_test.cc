// Tracer tests: scoped span recording, ring-buffer wraparound, and the
// per-name aggregation used by exporters.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace oib {
namespace obs {
namespace {

TEST(TracerTest, ScopedSpanRecordsNameTimesAndArg) {
  Tracer tracer(16);
  uint64_t before = MonotonicNanos();
  {
    ScopedSpan span(&tracer, "unit.test", 7);
  }
  uint64_t after = MonotonicNanos();

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit.test");
  EXPECT_EQ(spans[0].arg, 7u);
  EXPECT_GE(spans[0].start_ns, before);
  EXPECT_LE(spans[0].start_ns, spans[0].end_ns);
  EXPECT_LE(spans[0].end_ns, after);
}

TEST(TracerTest, EndIsIdempotentAndSetArgApplies) {
  Tracer tracer(16);
  {
    ScopedSpan span(&tracer, "once");
    span.set_arg(99);
    span.End();
    span.End();  // destructor also becomes a no-op
  }
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].arg, 99u);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(TracerTest, CapacityRoundsUpToPowerOfTwo) {
  Tracer tracer(5);
  EXPECT_EQ(tracer.capacity(), 8u);
}

TEST(TracerTest, RingWrapsKeepingMostRecentSpans) {
  Tracer tracer(8);
  constexpr uint64_t kTotal = 20;
  for (uint64_t i = 0; i < kTotal; ++i) {
    tracer.Record("wrap", i, i + 1, i);
  }
  EXPECT_EQ(tracer.recorded(), kTotal);

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), tracer.capacity());
  // Oldest-first, consecutive seq numbers, and exactly the newest
  // `capacity` spans survive (args 12..19 for 20 recorded into 8 slots).
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].arg, kTotal - spans.size() + i);
    if (i > 0) {
      EXPECT_EQ(spans[i].seq, spans[i - 1].seq + 1);
    }
  }
  EXPECT_EQ(spans.back().seq, kTotal);
}

TEST(TracerTest, ResetEmptiesTheRing) {
  Tracer tracer(8);
  tracer.Record("a", 0, 1);
  tracer.Reset();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TracerTest, ConcurrentWritersLoseNothingBeforeWrap) {
  // With capacity >= total spans, every span must be present exactly once.
  Tracer tracer(1024);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        uint64_t arg = static_cast<uint64_t>(t) * kPerThread + i;
        tracer.Record("mt", arg, arg + 1, arg);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), size_t{kThreads} * kPerThread);
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (const Span& s : spans) {
    ASSERT_LT(s.arg, seen.size());
    EXPECT_FALSE(seen[s.arg]);
    seen[s.arg] = true;
  }
}

TEST(TracerTest, AggregateSpansRollsUpPerName) {
  Tracer tracer(16);
  tracer.Record("phase.a", 0, 10);
  tracer.Record("phase.a", 10, 40);
  tracer.Record("phase.b", 0, 5);
  auto agg = AggregateSpans(tracer.Snapshot());
  ASSERT_EQ(agg.size(), 2u);
  for (const auto& [name, a] : agg) {
    if (name == "phase.a") {
      EXPECT_EQ(a.count, 2u);
      EXPECT_EQ(a.total_ns, 40u);
      EXPECT_EQ(a.max_ns, 30u);
    } else {
      EXPECT_EQ(name, "phase.b");
      EXPECT_EQ(a.count, 1u);
      EXPECT_EQ(a.total_ns, 5u);
    }
  }
}

TEST(TracerTest, LongNamesAreTruncatedNotOverflowed) {
  Tracer tracer(8);
  const char* long_name =
      "a.name.much.longer.than.the.thirty.one.bytes.a.slot.stores";
  tracer.Record(long_name, 0, 1);
  std::vector<Span> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(std::strlen(spans[0].name), 31u);
  EXPECT_EQ(std::string(spans[0].name), std::string(long_name).substr(0, 31));
}

}  // namespace
}  // namespace obs
}  // namespace oib
