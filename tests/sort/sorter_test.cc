#include "sort/external_sorter.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>

#include "common/failpoint.h"
#include "common/random.h"

namespace oib {
namespace {

Options SmallOptions() {
  Options o;
  o.sort_workspace_keys = 64;
  o.sort_merge_fanin = 4;
  return o;
}

std::vector<SortItem> DrainMerge(ExternalSorter* sorter) {
  auto cursor = sorter->OpenMerge();
  EXPECT_TRUE(cursor.ok());
  std::vector<SortItem> out;
  SortItem item;
  for (;;) {
    auto more = (*cursor)->Next(&item);
    EXPECT_TRUE(more.ok());
    if (!*more) break;
    out.push_back(item);
  }
  return out;
}

TEST(TournamentTreeTest, SelectsMinimum) {
  std::vector<int> values = {5, 1, 7, 3};
  LoserTree tree(4, [&](size_t a, size_t b) {
    return values[a] < values[b];
  });
  tree.Init();
  EXPECT_EQ(tree.Winner(), 1u);
  values[1] = 100;
  tree.Update(1);
  EXPECT_EQ(tree.Winner(), 3u);
}

TEST(TournamentTreeTest, NonPowerOfTwo) {
  std::vector<int> values = {9, 2, 8, 4, 6};
  std::vector<bool> valid(8, false);
  for (size_t i = 0; i < values.size(); ++i) valid[i] = true;
  values.resize(8, 0);
  LoserTree tree(5, [&](size_t a, size_t b) {
    if (!valid[a]) return false;
    if (!valid[b]) return true;
    return values[a] < values[b];
  });
  tree.Init();
  EXPECT_EQ(tree.Winner(), 1u);
  valid[1] = false;
  tree.Update(1);
  EXPECT_EQ(tree.Winner(), 3u);
}

class SorterTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SorterTest, SortsAgainstOracle) {
  size_t n = GetParam();
  Options options = SmallOptions();
  RunStore store;
  ExternalSorter sorter(&store, &options);
  Random rng(n + 1);

  std::vector<SortItem> expected;
  for (size_t i = 0; i < n; ++i) {
    SortItem item;
    item.key.Assign(rng.NextString(8));
    item.rid = Rid(static_cast<PageId>(rng.Uniform(1000)),
                   static_cast<SlotId>(rng.Uniform(100)));
    expected.push_back(item);
    ASSERT_TRUE(sorter.Add(item.key, item.rid).ok());
  }
  ASSERT_TRUE(sorter.FinishInput().ok());
  ASSERT_TRUE(sorter.PrepareMerge().ok());
  std::stable_sort(expected.begin(), expected.end(),
                   [](const SortItem& a, const SortItem& b) {
                     return CompareSortItem(a, b) < 0;
                   });
  std::vector<SortItem> got = DrainMerge(&sorter);
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expected[i].key) << "at " << i;
    EXPECT_EQ(got[i].rid, expected[i].rid) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SorterTest,
                         ::testing::Values(0, 1, 10, 63, 64, 65, 500, 5000));

TEST(SorterTest, ReplacementSelectionMakesLongRuns) {
  // On random input, replacement selection produces runs ~2x workspace.
  Options options = SmallOptions();
  RunStore store;
  ExternalSorter sorter(&store, &options);
  Random rng(3);
  const size_t n = 2000;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(sorter.Add(rng.NextString(8), Rid(1, 0)).ok());
  }
  ASSERT_TRUE(sorter.FinishInput().ok());
  size_t runs = sorter.runs().size();
  // Naive quicksort-runs would need n / 64 ~= 31 runs; replacement
  // selection should roughly halve that.
  EXPECT_LT(runs, 25u);
  EXPECT_GE(runs, 1u);
}

TEST(SorterTest, SortedInputYieldsSingleRun) {
  Options options = SmallOptions();
  RunStore store;
  ExternalSorter sorter(&store, &options);
  for (int i = 0; i < 1000; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    ASSERT_TRUE(sorter.Add(std::string_view(buf), Rid(1, 0)).ok());
  }
  ASSERT_TRUE(sorter.FinishInput().ok());
  EXPECT_EQ(sorter.runs().size(), 1u);
}

TEST(SorterTest, PreMergeReducesRunCountUnderFanin) {
  Options options = SmallOptions();  // fanin 4
  options.sort_workspace_keys = 8;
  RunStore store;
  ExternalSorter sorter(&store, &options);
  Random rng(17);
  std::vector<std::string> keys;
  for (int i = 0; i < 2000; ++i) {
    std::string k = rng.NextString(8);
    keys.push_back(k);
    ASSERT_TRUE(sorter.Add(k, Rid(1, 0)).ok());
  }
  ASSERT_TRUE(sorter.FinishInput().ok());
  ASSERT_GT(sorter.runs().size(), 4u);
  ASSERT_TRUE(sorter.PrepareMerge().ok());
  EXPECT_LE(sorter.runs().size(), 4u);
  std::vector<SortItem> got = DrainMerge(&sorter);
  EXPECT_EQ(got.size(), keys.size());
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end(),
                             [](const SortItem& a, const SortItem& b) {
                               return CompareSortItem(a, b) < 0;
                             }));
}

// ---- Restartable sort (paper section 5.1) ----

TEST(RestartableSortTest, SortPhaseCheckpointAndResume) {
  Options options = SmallOptions();
  RunStore store;
  Random rng(11);
  const size_t n = 1000;
  std::vector<SortItem> all;
  for (size_t i = 0; i < n; ++i) {
    SortItem item;
    item.key.Assign(rng.NextString(8));
    item.rid = Rid(static_cast<PageId>(i), 0);
    all.push_back(item);
  }

  ExternalSorter sorter(&store, &options);
  // Feed half, checkpoint (with a caller scan position), feed a bit more
  // (lost in the crash), crash, resume, re-feed from the checkpoint.
  size_t half = n / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(sorter.Add(all[i].key, all[i].rid).ok());
  }
  auto blob = sorter.CheckpointSortPhase("scan@500");
  ASSERT_TRUE(blob.ok());
  for (size_t i = half; i < half + 200; ++i) {
    ASSERT_TRUE(sorter.Add(all[i].key, all[i].rid).ok());
  }
  // Crash: unflushed run tails vanish.
  store.DropUnflushed();

  ExternalSorter resumed(&store, &options);
  auto caller = resumed.ResumeSortPhase(*blob);
  ASSERT_TRUE(caller.ok());
  EXPECT_EQ(*caller, "scan@500");
  for (size_t i = half; i < n; ++i) {
    ASSERT_TRUE(resumed.Add(all[i].key, all[i].rid).ok());
  }
  ASSERT_TRUE(resumed.FinishInput().ok());
  ASSERT_TRUE(resumed.PrepareMerge().ok());
  std::vector<SortItem> got = DrainMerge(&resumed);

  std::stable_sort(all.begin(), all.end(),
                   [](const SortItem& a, const SortItem& b) {
                     return CompareSortItem(a, b) < 0;
                   });
  ASSERT_EQ(got.size(), all.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, all[i].key) << i;
    EXPECT_EQ(got[i].rid, all[i].rid) << i;
  }
}

TEST(RestartableSortTest, ResumeAppendsToSameStreamWhenOrdered) {
  // Section 5.1: after restart, if the first new key is >= the
  // checkpointed highest output, the same stream continues.
  Options options = SmallOptions();
  RunStore store;
  ExternalSorter sorter(&store, &options);
  for (int i = 0; i < 200; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    ASSERT_TRUE(sorter.Add(std::string_view(buf), Rid(1, 0)).ok());
  }
  auto blob = sorter.CheckpointSortPhase("");
  ASSERT_TRUE(blob.ok());
  size_t runs_at_ckpt = sorter.runs().size();
  store.DropUnflushed();

  ExternalSorter resumed(&store, &options);
  ASSERT_TRUE(resumed.ResumeSortPhase(*blob).ok());
  for (int i = 200; i < 400; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "%08d", i);
    ASSERT_TRUE(resumed.Add(std::string_view(buf), Rid(1, 0)).ok());
  }
  ASSERT_TRUE(resumed.FinishInput().ok());
  EXPECT_EQ(resumed.runs().size(), runs_at_ckpt);  // same stream continued
}

// ---- Restartable merge (paper section 5.2) ----

TEST(RestartableMergeTest, CountersResumeExactly) {
  Options options = SmallOptions();
  RunStore store;
  ExternalSorter sorter(&store, &options);
  Random rng(23);
  const size_t n = 800;
  for (size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(
        sorter.Add(rng.NextString(8), Rid(static_cast<PageId>(i), 0)).ok());
  }
  ASSERT_TRUE(sorter.FinishInput().ok());
  ASSERT_TRUE(sorter.PrepareMerge().ok());

  // Reference output.
  std::vector<SortItem> expected = DrainMerge(&sorter);

  // Consume 300 items, checkpoint the counters, "crash", resume.
  auto cursor = sorter.OpenMerge();
  ASSERT_TRUE(cursor.ok());
  std::vector<SortItem> got;
  SortItem item;
  for (int i = 0; i < 300; ++i) {
    auto more = (*cursor)->Next(&item);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    got.push_back(item);
  }
  std::vector<uint64_t> counters = (*cursor)->counters();
  cursor->reset();

  auto resumed = sorter.OpenMerge(&counters);
  ASSERT_TRUE(resumed.ok());
  for (;;) {
    auto more = (*resumed)->Next(&item);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    got.push_back(item);
  }
  ASSERT_EQ(got.size(), expected.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expected[i].key) << i;
    EXPECT_EQ(got[i].rid, expected[i].rid) << i;
  }
}

TEST(RunStoreTest, TruncateAndItemCount) {
  RunStore store;
  RunId id = store.CreateRun();
  for (int i = 0; i < 10; ++i) {
    std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(store.Append(id, key, Rid(1, 0)).ok());
  }
  auto count = store.ItemCount(id);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 10u);
  auto size = store.Size(id);
  ASSERT_TRUE(size.ok());
  // Truncate to 4 items' worth of bytes.  Prefix compression: the first
  // item stores "key0" in full (4 + 4 + 6 = 14); each later item shares
  // "key" and stores a 1-byte suffix (4 + 1 + 6 = 11).
  ASSERT_TRUE(store.Truncate(id, 14 + 3 * 11).ok());
  count = store.ItemCount(id);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 4u);
}

TEST(RunStoreTest, PrefixCompressionCountersAndRoundTrip) {
  RunStore store;
  RunId id = store.CreateRun();
  // Sorted, heavily shared keys: "item/0000".."item/0099".
  std::vector<std::string> keys;
  for (int i = 0; i < 100; ++i) {
    char buf[16];
    snprintf(buf, sizeof(buf), "item/%04d", i);
    keys.emplace_back(buf);
    ASSERT_TRUE(
        store.Append(id, std::string_view(keys.back()), Rid(i, 0)).ok());
  }
  // raw = 100 * 9 submitted bytes.  stored = 9 for the first item plus
  // the unshared tail of each later key: the counters must show real
  // compression, and reading the run back must reconstruct every key.
  EXPECT_EQ(store.raw_key_bytes(), 900u);
  EXPECT_LT(store.stored_key_bytes(), store.raw_key_bytes() / 3);
  EXPECT_GE(store.stored_key_bytes(), 9u);
  RunReader reader(&store, id);
  SortItem item;
  for (int i = 0; i < 100; ++i) {
    auto more = reader.Read(&item);
    ASSERT_TRUE(more.ok());
    ASSERT_TRUE(*more);
    EXPECT_EQ(item.key.view(), keys[i]);
    EXPECT_EQ(item.rid, Rid(i, 0));
  }
  auto more = reader.Read(&item);
  ASSERT_TRUE(more.ok());
  EXPECT_FALSE(*more);
}

TEST(RunStoreTest, DropUnflushedRespectsFlushBoundary) {
  RunStore store;
  RunId id = store.CreateRun();
  ASSERT_TRUE(store.Append(id, std::string_view("aaa"), Rid(1, 0)).ok());
  ASSERT_TRUE(store.Flush(id).ok());
  ASSERT_TRUE(store.Append(id, std::string_view("bbb"), Rid(2, 0)).ok());
  store.DropUnflushed();
  auto count = store.ItemCount(id);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 1u);
  RunReader reader(&store, id);
  SortItem item;
  auto more = reader.Read(&item);
  ASSERT_TRUE(more.ok());
  ASSERT_TRUE(*more);
  EXPECT_EQ(item.key.view(), "aaa");
}

// --- spill directory (AttachDir) ---

class RunStoreDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Instance().Reset();
    dir_ = (std::filesystem::temp_directory_path() /
            ("oib_runstore_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    FailPointRegistry::Instance().Reset();
    std::filesystem::remove_all(dir_);
  }
  std::vector<std::string> ReadKeys(RunStore* store, RunId id) {
    std::vector<std::string> keys;
    RunReader reader(store, id);
    SortItem item;
    for (;;) {
      auto more = reader.Read(&item);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      keys.emplace_back(item.key.view());
    }
    return keys;
  }
  std::string dir_;
};

TEST_F(RunStoreDirTest, DurablePrefixSurvivesReattach) {
  RunId id;
  {
    RunStore store;
    ASSERT_TRUE(store.AttachDir(dir_).ok());
    EXPECT_TRUE(store.has_dir());
    id = store.CreateRun();
    for (const char* k : {"aa", "ab", "ac"}) {
      ASSERT_TRUE(store.Append(id, std::string_view(k), Rid(1, 0)).ok());
    }
    ASSERT_TRUE(store.Flush(id).ok());
    // This tail is never flushed: it must not survive the "crash".
    ASSERT_TRUE(store.Append(id, std::string_view("ad"), Rid(2, 0)).ok());
  }
  RunStore store;
  ASSERT_TRUE(store.AttachDir(dir_).ok());
  EXPECT_EQ(store.run_count(), 1u);
  EXPECT_EQ(ReadKeys(&store, id),
            (std::vector<std::string>{"aa", "ab", "ac"}));
  // Run ids keep counting past the recovered ones.
  EXPECT_GT(store.CreateRun(), id);
}

TEST_F(RunStoreDirTest, RemoveUnlinksAndTruncateShrinksFile) {
  RunId keep, gone;
  {
    RunStore store;
    ASSERT_TRUE(store.AttachDir(dir_).ok());
    keep = store.CreateRun();
    gone = store.CreateRun();
    for (int i = 0; i < 10; ++i) {
      std::string key = "key" + std::to_string(i);
      ASSERT_TRUE(store.Append(keep, key, Rid(1, 0)).ok());
      ASSERT_TRUE(store.Append(gone, key, Rid(2, 0)).ok());
    }
    ASSERT_TRUE(store.Flush(keep).ok());
    ASSERT_TRUE(store.Flush(gone).ok());
    store.Remove(gone);
    // 4 items' worth: "key0" in full (14), then three 1-byte suffixes (11).
    ASSERT_TRUE(store.Truncate(keep, 14 + 3 * 11).ok());
  }
  RunStore store;
  ASSERT_TRUE(store.AttachDir(dir_).ok());
  EXPECT_EQ(store.run_count(), 1u);
  EXPECT_EQ(ReadKeys(&store, keep),
            (std::vector<std::string>{"key0", "key1", "key2", "key3"}));
  EXPECT_FALSE(store.Size(gone).ok());
}

TEST_F(RunStoreDirTest, SpillErrorHoldsDurableBoundary) {
  RunStore store;
  ASSERT_TRUE(store.AttachDir(dir_).ok());
  RunId id = store.CreateRun();
  ASSERT_TRUE(store.Append(id, std::string_view("aa"), Rid(1, 0)).ok());
  FailPointPolicy policy;
  policy.action = FailPointAction::kReturnError;
  policy.max_fires = -1;
  FailPointRegistry::Instance().ArmPolicy("runstore.flush", policy);
  EXPECT_TRUE(store.Flush(id).IsInjected());
  auto durable = store.DurableSize(id);
  ASSERT_TRUE(durable.ok());
  EXPECT_EQ(*durable, 0u);
  FailPointRegistry::Instance().Disarm("runstore.flush");
  ASSERT_TRUE(store.Flush(id).ok());
  durable = store.DurableSize(id);
  ASSERT_TRUE(durable.ok());
  EXPECT_GT(*durable, 0u);
}

TEST_F(RunStoreDirTest, ShortSpillIsRetriedAndRepaired) {
  {
    RunStore store;
    ASSERT_TRUE(store.AttachDir(dir_).ok());
    RunId id = store.CreateRun();
    ASSERT_TRUE(store.Append(id, std::string_view("whole"), Rid(1, 0)).ok());
    FailPointPolicy policy;
    policy.action = FailPointAction::kShortWrite;
    policy.arg = 2;  // only 2 bytes land on the first attempt
    FailPointRegistry::Instance().ArmPolicy("runstore.flush", policy);
    ASSERT_TRUE(store.Flush(id).ok());
    EXPECT_EQ(FailPointRegistry::Instance().fired_count("runstore.flush"), 1);
  }
  RunStore store;
  ASSERT_TRUE(store.AttachDir(dir_).ok());
  ASSERT_EQ(store.run_count(), 1u);
  EXPECT_EQ(ReadKeys(&store, 1), (std::vector<std::string>{"whole"}));
}

// A torn spill kills the process (torn-implies-death invariant); on
// reattach the item walk keeps the clean prefix and drops the scrambled
// tail.
TEST_F(RunStoreDirTest, TornSpillKillsProcessAndCleanPrefixSurvives) {
  RunId id;
  {
    RunStore store;
    ASSERT_TRUE(store.AttachDir(dir_).ok());
    id = store.CreateRun();
    ASSERT_TRUE(store.Append(id, std::string_view("aa"), Rid(1, 0)).ok());
    ASSERT_TRUE(store.Append(id, std::string_view("ab"), Rid(1, 1)).ok());
    ASSERT_TRUE(store.Flush(id).ok());
  }
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunStore store;
    if (!store.AttachDir(dir_).ok()) _exit(2);
    if (!store.Append(id, std::string_view("ac"), Rid(1, 2)).ok()) _exit(3);
    FailPointPolicy policy;
    policy.action = FailPointAction::kTornWrite;
    policy.arg = 0;  // scramble the whole appended tail
    FailPointRegistry::Instance().ArmPolicy("runstore.flush", policy);
    (void)store.Flush(id);
    _exit(4);  // unreachable if the failpoint fired
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  RunStore store;
  ASSERT_TRUE(store.AttachDir(dir_).ok());
  EXPECT_EQ(ReadKeys(&store, id), (std::vector<std::string>{"aa", "ab"}));
}

}  // namespace
}  // namespace oib
