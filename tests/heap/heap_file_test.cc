#include "heap/heap_file.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oib {
namespace {

class HeapFileTest : public EngineTest {
 protected:
  HeapFile* NewTable() {
    table_ = MakeTable();
    return engine_->catalog()->table(table_);
  }
  TableId table_ = 0;
};

TEST_F(HeapFileTest, InsertGetDelete) {
  HeapFile* heap = NewTable();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(txn, "record-1", nullptr));
  ASSERT_OK(engine_->Commit(txn));

  ASSERT_OK_AND_ASSIGN(std::string rec, heap->Get(rid));
  EXPECT_EQ(rec, "record-1");

  txn = engine_->Begin();
  std::string old;
  ASSERT_OK(heap->Delete(txn, rid, nullptr, &old));
  EXPECT_EQ(old, "record-1");
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_TRUE(heap->Get(rid).status().IsNotFound());
}

TEST_F(HeapFileTest, UpdatePreservesRid) {
  HeapFile* heap = NewTable();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(txn, "before", nullptr));
  std::string old;
  ASSERT_OK(heap->Update(txn, rid, "after-longer-record", nullptr, &old));
  EXPECT_EQ(old, "before");
  ASSERT_OK(engine_->Commit(txn));
  ASSERT_OK_AND_ASSIGN(std::string rec, heap->Get(rid));
  EXPECT_EQ(rec, "after-longer-record");
}

TEST_F(HeapFileTest, ChainGrowsAcrossPages) {
  HeapFile* heap = NewTable();
  Transaction* txn = engine_->Begin();
  std::string payload(512, 'p');
  std::vector<Rid> rids;
  for (int i = 0; i < 100; ++i) {
    ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(txn, payload, nullptr));
    rids.push_back(rid);
  }
  ASSERT_OK(engine_->Commit(txn));
  EXPECT_GT(heap->page_count(), 10u);
  // RID page components must be non-decreasing in insertion order for
  // pages allocated by chain extension (no-reuse allocation).
  for (size_t i = 1; i < rids.size(); ++i) {
    EXPECT_LE(rids[i - 1].page, rids[i].page);
  }
  // Everything readable via the chain scan.
  size_t count = 0;
  ASSERT_OK(heap->ForEach([&](const Rid&, std::string_view rec) {
    EXPECT_EQ(rec.size(), payload.size());
    ++count;
  }));
  EXPECT_EQ(count, rids.size());
}

TEST_F(HeapFileTest, RollbackRestoresAllOps) {
  HeapFile* heap = NewTable();
  Transaction* setup = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(Rid keep, heap->Insert(setup, "keep-me", nullptr));
  ASSERT_OK_AND_ASSIGN(Rid gone, heap->Insert(setup, "delete-me", nullptr));
  ASSERT_OK(engine_->Commit(setup));

  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(Rid added, heap->Insert(txn, "added", nullptr));
  ASSERT_OK(heap->Delete(txn, gone, nullptr));
  ASSERT_OK(heap->Update(txn, keep, "mutated", nullptr));
  ASSERT_OK(engine_->Rollback(txn));

  EXPECT_TRUE(heap->Get(added).status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(std::string back, heap->Get(gone));
  EXPECT_EQ(back, "delete-me");
  ASSERT_OK_AND_ASSIGN(std::string kept, heap->Get(keep));
  EXPECT_EQ(kept, "keep-me");
}

TEST_F(HeapFileTest, UndoOfDeleteRestoresExactRid) {
  HeapFile* heap = NewTable();
  Transaction* setup = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(Rid rid, heap->Insert(setup, "victim", nullptr));
  ASSERT_OK(engine_->Commit(setup));

  Transaction* txn = engine_->Begin();
  ASSERT_OK(heap->Delete(txn, rid, nullptr));
  ASSERT_OK(engine_->Rollback(txn));
  ASSERT_OK_AND_ASSIGN(std::string rec, heap->Get(rid));
  EXPECT_EQ(rec, "victim");
}

TEST_F(HeapFileTest, CommittedDataSurvivesCrash) {
  TableId table = MakeTable();
  HeapFile* heap = engine_->catalog()->table(table);
  Transaction* txn = engine_->Begin();
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(
        Rid rid, heap->Insert(txn, "rec" + std::to_string(i), nullptr));
    rids.push_back(rid);
  }
  ASSERT_OK(engine_->Commit(txn));

  CrashAndRestart();
  heap = engine_->catalog()->table(table);
  ASSERT_NE(heap, nullptr);
  for (int i = 0; i < 50; ++i) {
    ASSERT_OK_AND_ASSIGN(std::string rec, heap->Get(rids[i]));
    EXPECT_EQ(rec, "rec" + std::to_string(i));
  }
}

TEST_F(HeapFileTest, UncommittedDataRolledBackAtRestart) {
  TableId table = MakeTable();
  HeapFile* heap = engine_->catalog()->table(table);
  Transaction* committed = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(Rid keep, heap->Insert(committed, "keep", nullptr));
  ASSERT_OK(engine_->Commit(committed));

  Transaction* loser = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(Rid lost, heap->Insert(loser, "lost", nullptr));
  ASSERT_OK(heap->Update(loser, keep, "dirty", nullptr));
  // Force the log so the loser's records are durable (they must be undone,
  // not merely forgotten).
  ASSERT_OK(engine_->log()->FlushAll());

  CrashAndRestart();
  EXPECT_GE(recovery_stats_.loser_txns, 1u);
  heap = engine_->catalog()->table(table);
  EXPECT_TRUE(heap->Get(lost).status().IsNotFound());
  ASSERT_OK_AND_ASSIGN(std::string rec, heap->Get(keep));
  EXPECT_EQ(rec, "keep");
}

TEST_F(HeapFileTest, VisibleCountReachesLogRecords) {
  HeapFile* heap = NewTable();
  Transaction* txn = engine_->Begin();
  Rid seen_rid;
  ASSERT_OK_AND_ASSIGN(
      Rid rid, heap->Insert(txn, "x", [&](const Rid& r) {
        seen_rid = r;
        return 7u;  // pretend 7 indexes are visible
      }));
  EXPECT_EQ(seen_rid, rid);
  ASSERT_OK(engine_->Commit(txn));
  // Find the heap insert record and check the stored count.
  ASSERT_OK(engine_->log()->FlushAll());
  bool found = false;
  ASSERT_OK(engine_->log()->ScanDurable(
      kInvalidLsn, [&](const LogRecord& rec) {
        if (rec.rm_id == RmId::kHeap &&
            rec.opcode == static_cast<uint8_t>(HeapOp::kInsert)) {
          HeapRecPayload p;
          EXPECT_TRUE(DecodeHeapPayload(rec.redo, &p).ok());
          EXPECT_EQ(p.visible_count, 7u);
          found = true;
        }
        return true;
      }));
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace oib
