#include "heap/slotted_page.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace oib {
namespace {

constexpr size_t kPageSize = 4096;

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : buf_(kPageSize, '\0'), page_(buf_.data(), kPageSize) {
    page_.Init(PageType::kHeap);
  }

  std::string buf_;
  SlottedPage page_;
};

TEST_F(SlottedPageTest, InsertAndGet) {
  auto slot = page_.Insert("hello");
  ASSERT_TRUE(slot.ok());
  auto rec = page_.Get(*slot);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "hello");
}

TEST_F(SlottedPageTest, DeleteKeepsSlotStable) {
  auto a = page_.Insert("aaa");
  auto b = page_.Insert("bbb");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(page_.Delete(*a).ok());
  EXPECT_FALSE(page_.IsLive(*a));
  // b's slot id unchanged, record intact.
  auto rec = page_.Get(*b);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "bbb");
  EXPECT_TRUE(page_.Get(*a).status().IsNotFound());
}

TEST_F(SlottedPageTest, DeadSlotReused) {
  auto a = page_.Insert("aaa");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(page_.Delete(*a).ok());
  auto b = page_.Insert("bbb");
  ASSERT_TRUE(b.ok());
  // The paper's section 2.2.3 example: a new record can land at the same
  // RID as a deleted one.
  EXPECT_EQ(*b, *a);
}

TEST_F(SlottedPageTest, InsertAtRestoresExactRid) {
  auto a = page_.Insert("aaa");
  ASSERT_TRUE(a.ok());
  auto b = page_.Insert("bbb");
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(page_.Delete(*a).ok());
  // Undo-of-delete must restore the same slot.
  ASSERT_TRUE(page_.InsertAt(*a, "aaa2").ok());
  auto rec = page_.Get(*a);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, "aaa2");
}

TEST_F(SlottedPageTest, InsertAtRejectsLiveSlot) {
  auto a = page_.Insert("aaa");
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(page_.InsertAt(*a, "xxx").IsInvalidArgument());
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  auto a = page_.Insert(std::string(100, 'a'));
  ASSERT_TRUE(a.ok());
  // Shrink.
  ASSERT_TRUE(page_.Update(*a, "tiny").ok());
  EXPECT_EQ(*page_.Get(*a), "tiny");
  // Grow.
  ASSERT_TRUE(page_.Update(*a, std::string(500, 'b')).ok());
  EXPECT_EQ(page_.Get(*a)->size(), 500u);
}

TEST_F(SlottedPageTest, FullPageReportsBusy) {
  std::string rec(200, 'x');
  int inserted = 0;
  for (;;) {
    auto slot = page_.Insert(rec);
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsBusy());
      break;
    }
    ++inserted;
  }
  EXPECT_GT(inserted, 15);
}

TEST_F(SlottedPageTest, CompactionReclaimsGarbage) {
  std::string rec(200, 'x');
  std::vector<SlotId> slots;
  for (;;) {
    auto slot = page_.Insert(rec);
    if (!slot.ok()) break;
    slots.push_back(*slot);
  }
  // Delete every other record, then insert records that only fit if the
  // holes are coalesced.
  size_t deleted = 0;
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.Delete(slots[i]).ok());
    ++deleted;
  }
  size_t reinserted = 0;
  for (size_t i = 0; i < deleted; ++i) {
    auto slot = page_.Insert(rec);
    if (!slot.ok()) break;
    ++reinserted;
  }
  EXPECT_EQ(reinserted, deleted);
}

TEST_F(SlottedPageTest, NextPageChain) {
  EXPECT_EQ(page_.next_page(), kInvalidPageId);
  page_.set_next_page(42);
  EXPECT_EQ(page_.next_page(), 42u);
}

TEST_F(SlottedPageTest, RandomOpsAgainstOracle) {
  Random rng(99);
  std::vector<std::string> oracle;  // slot -> contents ("" = dead)
  for (int step = 0; step < 2000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.5) {
      std::string rec = rng.NextString(rng.Range(1, 60));
      auto slot = page_.Insert(rec);
      if (slot.ok()) {
        if (*slot >= oracle.size()) oracle.resize(*slot + 1);
        ASSERT_EQ(oracle[*slot], "");  // must reuse only dead slots
        oracle[*slot] = rec;
      }
    } else if (dice < 0.8 && !oracle.empty()) {
      SlotId slot = static_cast<SlotId>(rng.Uniform(oracle.size()));
      if (oracle[slot].empty()) {
        EXPECT_FALSE(page_.Delete(slot).ok());
      } else {
        ASSERT_TRUE(page_.Delete(slot).ok());
        oracle[slot] = "";
      }
    } else if (!oracle.empty()) {
      SlotId slot = static_cast<SlotId>(rng.Uniform(oracle.size()));
      auto rec = page_.Get(slot);
      if (oracle[slot].empty()) {
        EXPECT_TRUE(rec.status().IsNotFound());
      } else {
        ASSERT_TRUE(rec.ok());
        EXPECT_EQ(*rec, oracle[slot]);
      }
    }
  }
  // Final sweep.
  for (size_t s = 0; s < oracle.size(); ++s) {
    auto rec = page_.Get(static_cast<SlotId>(s));
    if (oracle[s].empty()) {
      EXPECT_FALSE(rec.ok());
    } else {
      ASSERT_TRUE(rec.ok());
      EXPECT_EQ(*rec, oracle[s]);
    }
  }
}

}  // namespace
}  // namespace oib
