#include "wal/log_manager.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/random.h"

namespace oib {
namespace {

LogRecord MakeRec(TxnId txn, LogRecordType type, std::string redo = "") {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = type;
  rec.rm_id = RmId::kHeap;
  rec.opcode = 1;
  rec.page_id = 7;
  rec.redo = std::move(redo);
  return rec;
}

TEST(LogRecordTest, SerializationRoundTrip) {
  LogRecord rec;
  rec.prev_lsn = 123;
  rec.txn_id = 9;
  rec.type = LogRecordType::kClr;
  rec.rm_id = RmId::kBtree;
  rec.opcode = 42;
  rec.page_id = 88;
  rec.aux_id = 3;
  rec.undo_next_lsn = 55;
  rec.redo = "redo-bytes";
  rec.undo = "undo-bytes";

  std::string buf;
  rec.SerializeTo(&buf);
  LogRecord out;
  ASSERT_TRUE(LogRecord::DeserializeFrom(buf, &out).ok());
  EXPECT_EQ(out.prev_lsn, 123u);
  EXPECT_EQ(out.txn_id, 9u);
  EXPECT_EQ(out.type, LogRecordType::kClr);
  EXPECT_EQ(out.rm_id, RmId::kBtree);
  EXPECT_EQ(out.opcode, 42);
  EXPECT_EQ(out.page_id, 88u);
  EXPECT_EQ(out.aux_id, 3u);
  EXPECT_EQ(out.undo_next_lsn, 55u);
  EXPECT_EQ(out.redo, "redo-bytes");
  EXPECT_EQ(out.undo, "undo-bytes");
}

TEST(LogRecordTest, RedoUndoClassification) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  EXPECT_TRUE(rec.RequiresRedo());
  EXPECT_TRUE(rec.RequiresUndo());
  rec.type = LogRecordType::kRedoOnly;
  EXPECT_TRUE(rec.RequiresRedo());
  EXPECT_FALSE(rec.RequiresUndo());
  rec.type = LogRecordType::kUndoOnly;
  EXPECT_FALSE(rec.RequiresRedo());
  EXPECT_TRUE(rec.RequiresUndo());
  rec.type = LogRecordType::kClr;
  EXPECT_TRUE(rec.RequiresRedo());
  EXPECT_FALSE(rec.RequiresUndo());
}

TEST(LogManagerTest, AppendAssignsMonotoneLsns) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate, "a");
  LogRecord b = MakeRec(1, LogRecordType::kUpdate, "b");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());
  EXPECT_GT(b.lsn, a.lsn);
}

TEST(LogManagerTest, ReadRecordRandomAccess) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate, "first");
  LogRecord b = MakeRec(2, LogRecordType::kCommit, "second");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());
  LogRecord out;
  ASSERT_TRUE(log.ReadRecord(a.lsn, &out).ok());
  EXPECT_EQ(out.redo, "first");
  ASSERT_TRUE(log.ReadRecord(b.lsn, &out).ok());
  EXPECT_EQ(out.redo, "second");
  EXPECT_EQ(out.txn_id, 2u);
}

TEST(LogManagerTest, CrashDropsUnflushedTail) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate, "durable");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Flush(a.lsn).ok());
  LogRecord b = MakeRec(1, LogRecordType::kUpdate, "volatile");
  ASSERT_TRUE(log.Append(&b).ok());
  log.DropUnflushed();

  int seen = 0;
  ASSERT_TRUE(log.ScanDurable(kInvalidLsn, [&](const LogRecord& rec) {
    ++seen;
    EXPECT_EQ(rec.redo, "durable");
    return true;
  }).ok());
  EXPECT_EQ(seen, 1);
}

TEST(LogManagerTest, ScanFromLsn) {
  LogManager log;
  std::vector<Lsn> lsns;
  for (int i = 0; i < 5; ++i) {
    LogRecord rec = MakeRec(1, LogRecordType::kUpdate, std::to_string(i));
    ASSERT_TRUE(log.Append(&rec).ok());
    lsns.push_back(rec.lsn);
  }
  ASSERT_TRUE(log.FlushAll().ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(log.ScanDurable(lsns[2], [&](const LogRecord& rec) {
    seen.push_back(rec.redo);
    return true;
  }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"2", "3", "4"}));
}

TEST(LogManagerTest, FlushIsIdempotentForDurableLsn) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate);
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Flush(a.lsn).ok());
  Lsn flushed = log.flushed_lsn();
  ASSERT_TRUE(log.Flush(a.lsn).ok());
  EXPECT_EQ(log.flushed_lsn(), flushed);
}

TEST(LogManagerTest, StatsByResourceManager) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate);
  a.rm_id = RmId::kHeap;
  LogRecord b = MakeRec(1, LogRecordType::kUpdate);
  b.rm_id = RmId::kBtree;
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());
  LogStats stats = log.stats();
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.records_by_rm[static_cast<size_t>(RmId::kHeap)], 1u);
  EXPECT_EQ(stats.records_by_rm[static_cast<size_t>(RmId::kBtree)], 1u);
  EXPECT_GT(stats.bytes, 0u);
}

// --- concurrency coverage for the reservation-based append path ---
// (suite name matches the TSan CI job's `Stress` test filter)

// Concurrent appenders must produce a dense LSN space: sorting all
// assigned LSNs and walking the frame lengths reconstructs the byte
// stream with no gaps or overlaps, and every record reads back intact.
TEST(LogManagerStressTest, ConcurrentAppendsAreDenseAndReadable) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 800;
  LogManager log;
  std::vector<std::vector<std::pair<Lsn, std::string>>> appended(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(7 * t + 1);
      appended[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        // Variable payload sizes so reservations interleave unevenly.
        std::string body = "t" + std::to_string(t) + ":" + std::to_string(i) +
                           std::string(rng.Uniform(60), 'x');
        LogRecord rec = MakeRec(t + 1, LogRecordType::kUpdate, body);
        ASSERT_TRUE(log.Append(&rec).ok());
        appended[t].emplace_back(rec.lsn, body);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::map<Lsn, std::string> by_lsn;
  for (const auto& per_thread : appended) {
    for (const auto& [lsn, body] : per_thread) {
      ASSERT_TRUE(by_lsn.emplace(lsn, body).second) << "duplicate lsn " << lsn;
    }
  }
  ASSERT_EQ(by_lsn.size(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(by_lsn.begin()->first, 1u);
  Lsn expect_next = 1;
  for (const auto& [lsn, body] : by_lsn) {
    EXPECT_EQ(lsn, expect_next) << "hole in the lsn space";
    LogRecord out;
    ASSERT_TRUE(log.ReadRecord(lsn, &out).ok());
    EXPECT_EQ(out.redo, body);
    std::string payload;
    out.SerializeTo(&payload);
    expect_next = lsn + 8 + payload.size();  // [len:u32][crc:u32][payload]
  }
  EXPECT_EQ(log.next_lsn(), expect_next);
}

// A ring much smaller than the appended volume forces appenders through
// the backpressure + help-drain path; everything must still flush and
// scan back in order.
TEST(LogManagerStressTest, TinyRingForcesDrainUnderConcurrency) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 600;
  LogManager log(64 * 1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // ~400-byte records: 4 threads * 600 * 400 ≈ 15x the ring.
        LogRecord rec =
            MakeRec(t + 1, LogRecordType::kUpdate, std::string(400, 'a' + t));
        ASSERT_TRUE(log.Append(&rec).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_TRUE(log.FlushAll().ok());
  uint64_t seen = 0;
  Lsn prev = 0;
  ASSERT_TRUE(log.ScanDurable(kInvalidLsn, [&](const LogRecord& rec) {
    EXPECT_GT(rec.lsn, prev);
    prev = rec.lsn;
    ++seen;
    return true;
  }).ok());
  EXPECT_EQ(seen, uint64_t{kThreads} * kPerThread);
}

// Tiny records against the default (large) ring: the ring never exerts
// backpressure, so sealed-but-unconsumed slots pile up until sealers lap
// the seal array and must claim slots concurrently with the drain freeing
// them — the regression surface for the torn-seal race (a sealer preempted
// between observing a free slot and publishing let the next lap's sealer
// in, and their interleaved start/end writes produced a range spanning a
// whole lap, wedging DrainUntilLocked behind unpoppable pending ranges).
// A racing flusher keeps ConsumeSealedLocked live throughout.  With the
// bug, this hangs or loses records; with CAS claiming, the log is dense.
TEST(LogManagerStressTest, SealSlotLappingKeepsRangesIntact) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;  // ~31 laps of the 1024 seal slots
  LogManager log;
  std::atomic<bool> done{false};
  std::thread flusher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(log.FlushAll().ok());
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec = MakeRec(t + 1, LogRecordType::kUpdate, "s");
        ASSERT_TRUE(log.Append(&rec).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  done.store(true, std::memory_order_relaxed);
  flusher.join();
  ASSERT_TRUE(log.FlushAll().ok());
  uint64_t seen = 0;
  Lsn prev = 0;
  uint64_t next = 1;
  ASSERT_TRUE(log.ScanDurable(kInvalidLsn, [&](const LogRecord& rec) {
    EXPECT_GT(rec.lsn, prev);
    EXPECT_EQ(rec.lsn, next) << "hole or overlap in the drained stream";
    prev = rec.lsn;
    std::string payload;
    rec.SerializeTo(&payload);
    next = rec.lsn + 8 + payload.size();
    ++seen;
    return true;
  }).ok());
  EXPECT_EQ(seen, uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(log.next_lsn(), next);
}

// Appenders race a group-commit flusher; after a crash at whatever
// boundary the last flush reached, the durable log must be *prefix
// exact*: every record that starts below flushed_lsn is present and
// intact, no record at or beyond it survives, and the scan walks frames
// back-to-back with no torn bytes.
TEST(LogManagerStressTest, CrashAtRandomFlushBoundaryKeepsExactPrefix) {
  for (uint64_t round = 0; round < 3; ++round) {
    constexpr int kThreads = 3;
    constexpr int kPerThread = 400;
    LogManager log(128 * 1024);
    std::atomic<uint64_t> last_lsn{0};
    std::atomic<bool> stop{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Random rng(round * 100 + t);
        for (int i = 0; i < kPerThread; ++i) {
          std::string body =
              std::to_string(t) + ":" + std::string(rng.Uniform(100), 'p');
          LogRecord rec = MakeRec(t + 1, LogRecordType::kUpdate, body);
          ASSERT_TRUE(log.Append(&rec).ok());
          uint64_t cur = last_lsn.load();
          while (rec.lsn > cur && !last_lsn.compare_exchange_weak(cur, rec.lsn)) {
          }
        }
      });
    }
    // Group-commit flusher: keeps moving the durable boundary to a recent
    // lsn while appends are still in flight.
    std::thread flusher([&] {
      Random rng(round + 42);
      while (!stop.load()) {
        Lsn target = last_lsn.load();
        if (target != kInvalidLsn && rng.Uniform(2) == 0) {
          ASSERT_TRUE(log.Flush(target).ok());
        }
        std::this_thread::yield();
      }
    });
    for (auto& th : threads) th.join();
    stop.store(true);
    flusher.join();

    // One more flush to a random mid-stream lsn, then crash: the boundary
    // lands wherever that flush (plus group-commit overshoot) put it.
    ASSERT_TRUE(log.Flush(1 + last_lsn.load() / 2).ok());
    Lsn boundary = log.flushed_lsn();
    log.DropUnflushed();
    EXPECT_EQ(log.flushed_lsn(), boundary);
    EXPECT_EQ(log.next_lsn(), boundary);  // tail discarded exactly

    Lsn expect_next = 1;
    uint64_t seen = 0;
    ASSERT_TRUE(log.ScanDurable(kInvalidLsn, [&](const LogRecord& rec) {
      EXPECT_EQ(rec.lsn, expect_next) << "durable log has a hole";
      std::string payload;
      rec.SerializeTo(&payload);
      expect_next = rec.lsn + 8 + payload.size();
      ++seen;
      return true;
    }).ok());
    // Prefix exactness: the scan consumed every durable byte (no torn
    // record before the boundary, nothing readable past it).
    EXPECT_EQ(expect_next, boundary);
    EXPECT_GT(seen, 0u);
  }
}

// next_lsn()/flushed_lsn() are single atomic loads — hammer them from a
// reader thread while appends and flushes run, and require monotonicity.
TEST(LogManagerStressTest, ProgressReadsNeverGoBackwards) {
  LogManager log;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Lsn next_seen = 0, flushed_seen = 0;
    while (!stop.load()) {
      Lsn n = log.next_lsn();
      Lsn f = log.flushed_lsn();
      EXPECT_GE(n, next_seen);
      EXPECT_GE(f, flushed_seen);
      EXPECT_LE(f, log.next_lsn());
      next_seen = n;
      flushed_seen = f;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        LogRecord rec = MakeRec(t + 1, LogRecordType::kUpdate, "body");
        ASSERT_TRUE(log.Append(&rec).ok());
        if (i % 64 == 0) ASSERT_TRUE(log.Flush(rec.lsn).ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  reader.join();
}

// --- file sink (AttachFile) ---

class LogFileSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Instance().Reset();
    path_ = (std::filesystem::temp_directory_path() /
             ("oib_wal_test_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    FailPointRegistry::Instance().Reset();
    std::filesystem::remove(path_);
  }
  // Flips one byte of the log file in place.
  void FlipByte(long offset) {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  std::vector<std::string> ScanBodies(LogManager* log) {
    std::vector<std::string> bodies;
    EXPECT_TRUE(log->ScanDurable(kInvalidLsn, [&](const LogRecord& rec) {
      bodies.push_back(rec.redo);
      return true;
    }).ok());
    return bodies;
  }
  std::string path_;
};

TEST_F(LogFileSinkTest, RoundTripAcrossReattach) {
  Lsn flushed;
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    EXPECT_TRUE(log.has_file());
    for (int i = 0; i < 5; ++i) {
      LogRecord rec = MakeRec(1, LogRecordType::kUpdate, "rec" + std::to_string(i));
      ASSERT_TRUE(log.Append(&rec).ok());
    }
    ASSERT_TRUE(log.FlushAll().ok());
    flushed = log.flushed_lsn();
  }
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    // The durable prefix is rebuilt from the file, byte-exact.
    EXPECT_EQ(log.flushed_lsn(), flushed);
    EXPECT_EQ(ScanBodies(&log),
              (std::vector<std::string>{"rec0", "rec1", "rec2", "rec3", "rec4"}));
    // New appends continue after the recovered prefix.
    LogRecord rec = MakeRec(2, LogRecordType::kCommit, "rec5");
    ASSERT_TRUE(log.Append(&rec).ok());
    EXPECT_GE(rec.lsn, flushed);
    ASSERT_TRUE(log.FlushAll().ok());
  }
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    EXPECT_EQ(ScanBodies(&log).size(), 6u);
  }
}

TEST_F(LogFileSinkTest, AttachRequiresEmptyLog) {
  LogManager log;
  LogRecord rec = MakeRec(1, LogRecordType::kUpdate, "x");
  ASSERT_TRUE(log.Append(&rec).ok());
  EXPECT_TRUE(log.AttachFile(path_).IsInvalidArgument());
}

// The satellite regression test: a torn write *inside* a frame body (all
// length fields intact) must truncate the scan tail, not replay garbage.
TEST_F(LogFileSinkTest, ByteFlippedFrameBodyTruncatesTail) {
  Lsn second_lsn;
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    LogRecord a = MakeRec(1, LogRecordType::kUpdate, "good");
    LogRecord b = MakeRec(1, LogRecordType::kUpdate, "flipped");
    LogRecord c = MakeRec(1, LogRecordType::kCommit, "unreachable");
    ASSERT_TRUE(log.Append(&a).ok());
    ASSERT_TRUE(log.Append(&b).ok());
    ASSERT_TRUE(log.Append(&c).ok());
    ASSERT_TRUE(log.FlushAll().ok());
    second_lsn = b.lsn;
  }
  // Flip one byte inside b's payload: frame starts at lsn - 1, payload at
  // frame + 8.  The length prefix stays valid, so only the CRC can catch it.
  FlipByte(long(second_lsn - 1 + 8 + 2));
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    // Everything from the corrupt frame on is untrustworthy and gone —
    // including c, whose own frame is intact.
    EXPECT_EQ(ScanBodies(&log), (std::vector<std::string>{"good"}));
    EXPECT_EQ(log.flushed_lsn(), second_lsn);
  }
}

TEST_F(LogFileSinkTest, IncompleteTailFrameTruncatedAtAttach) {
  Lsn second_lsn;
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    LogRecord a = MakeRec(1, LogRecordType::kUpdate, "keep");
    LogRecord b = MakeRec(1, LogRecordType::kUpdate, "torn-off");
    ASSERT_TRUE(log.Append(&a).ok());
    ASSERT_TRUE(log.Append(&b).ok());
    ASSERT_TRUE(log.FlushAll().ok());
    second_lsn = b.lsn;
  }
  // Chop the file mid-way through b's frame, as a crash mid-write would.
  std::filesystem::resize_file(path_, second_lsn - 1 + 3);
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    EXPECT_EQ(ScanBodies(&log), (std::vector<std::string>{"keep"}));
    // Appending after recovery reuses the truncated range cleanly.
    LogRecord c = MakeRec(2, LogRecordType::kCommit, "after");
    ASSERT_TRUE(log.Append(&c).ok());
    ASSERT_TRUE(log.FlushAll().ok());
  }
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    EXPECT_EQ(ScanBodies(&log), (std::vector<std::string>{"keep", "after"}));
  }
}

TEST_F(LogFileSinkTest, TransientFlushErrorIsRetried) {
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path_).ok());
  FailPointRegistry::Instance().Arm("wal.flush");  // fires once
  LogRecord rec = MakeRec(1, LogRecordType::kCommit, "retried");
  ASSERT_TRUE(log.Append(&rec).ok());
  ASSERT_TRUE(log.Flush(rec.lsn).ok());
  EXPECT_EQ(FailPointRegistry::Instance().fired_count("wal.flush"), 1);
  EXPECT_GE(log.flushed_lsn(), rec.lsn);
}

TEST_F(LogFileSinkTest, ShortWriteIsRetriedAndRepaired) {
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    FailPointPolicy policy;
    policy.action = FailPointAction::kShortWrite;
    policy.arg = 3;  // only 3 bytes of the flush land the first time
    FailPointRegistry::Instance().ArmPolicy("wal.flush", policy);
    LogRecord rec = MakeRec(1, LogRecordType::kCommit, "whole");
    ASSERT_TRUE(log.Append(&rec).ok());
    ASSERT_TRUE(log.Flush(rec.lsn).ok());
  }
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path_).ok());
  EXPECT_EQ(ScanBodies(&log), (std::vector<std::string>{"whole"}));
}

TEST_F(LogFileSinkTest, PersistentFlushErrorLeavesBoundaryBehind) {
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path_).ok());
  FailPointPolicy policy;
  policy.action = FailPointAction::kReturnError;
  policy.max_fires = -1;
  FailPointRegistry::Instance().ArmPolicy("wal.flush", policy);
  LogRecord rec = MakeRec(1, LogRecordType::kCommit, "stuck");
  ASSERT_TRUE(log.Append(&rec).ok());
  Lsn before = log.flushed_lsn();
  EXPECT_TRUE(log.Flush(rec.lsn).IsInjected());
  EXPECT_EQ(log.flushed_lsn(), before);
  // Once the fault clears, the same flush goes through.
  FailPointRegistry::Instance().Disarm("wal.flush");
  ASSERT_TRUE(log.Flush(rec.lsn).ok());
  EXPECT_GE(log.flushed_lsn(), rec.lsn);
}

TEST_F(LogFileSinkTest, FsyncFailpointIsRetried) {
  LogManager log;
  ASSERT_TRUE(log.AttachFile(path_).ok());
  FailPointRegistry::Instance().Arm("wal.fsync");
  LogRecord rec = MakeRec(1, LogRecordType::kCommit, "synced");
  ASSERT_TRUE(log.Append(&rec).ok());
  ASSERT_TRUE(log.Flush(rec.lsn).ok());
  EXPECT_EQ(FailPointRegistry::Instance().fired_count("wal.fsync"), 1);
}

// A torn flush kills the process (torn-implies-death invariant) and the
// attach-time scan in the next process discards the scrambled tail.
TEST_F(LogFileSinkTest, TornFlushKillsProcessAndPrefixSurvives) {
  {
    LogManager log;
    ASSERT_TRUE(log.AttachFile(path_).ok());
    LogRecord a = MakeRec(1, LogRecordType::kUpdate, "durable");
    ASSERT_TRUE(log.Append(&a).ok());
    ASSERT_TRUE(log.FlushAll().ok());
  }
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: tear the next flush 4 bytes in.  FailPointHardAbort SIGKILLs,
    // so nothing below the flush call runs.
    LogManager log;
    if (!log.AttachFile(path_).ok()) _exit(2);
    FailPointPolicy policy;
    policy.action = FailPointAction::kTornWrite;
    policy.arg = 4;
    FailPointRegistry::Instance().ArmPolicy("wal.flush", policy);
    LogRecord b = MakeRec(1, LogRecordType::kCommit, "torn-away");
    if (!log.Append(&b).ok()) _exit(3);
    (void)log.FlushAll();
    _exit(4);  // unreachable if the failpoint fired
  }
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGKILL);

  LogManager log;
  ASSERT_TRUE(log.AttachFile(path_).ok());
  EXPECT_EQ(ScanBodies(&log), (std::vector<std::string>{"durable"}));
}

}  // namespace
}  // namespace oib
