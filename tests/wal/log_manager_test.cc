#include "wal/log_manager.h"

#include <gtest/gtest.h>

namespace oib {
namespace {

LogRecord MakeRec(TxnId txn, LogRecordType type, std::string redo = "") {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = type;
  rec.rm_id = RmId::kHeap;
  rec.opcode = 1;
  rec.page_id = 7;
  rec.redo = std::move(redo);
  return rec;
}

TEST(LogRecordTest, SerializationRoundTrip) {
  LogRecord rec;
  rec.prev_lsn = 123;
  rec.txn_id = 9;
  rec.type = LogRecordType::kClr;
  rec.rm_id = RmId::kBtree;
  rec.opcode = 42;
  rec.page_id = 88;
  rec.aux_id = 3;
  rec.undo_next_lsn = 55;
  rec.redo = "redo-bytes";
  rec.undo = "undo-bytes";

  std::string buf;
  rec.SerializeTo(&buf);
  LogRecord out;
  ASSERT_TRUE(LogRecord::DeserializeFrom(buf, &out).ok());
  EXPECT_EQ(out.prev_lsn, 123u);
  EXPECT_EQ(out.txn_id, 9u);
  EXPECT_EQ(out.type, LogRecordType::kClr);
  EXPECT_EQ(out.rm_id, RmId::kBtree);
  EXPECT_EQ(out.opcode, 42);
  EXPECT_EQ(out.page_id, 88u);
  EXPECT_EQ(out.aux_id, 3u);
  EXPECT_EQ(out.undo_next_lsn, 55u);
  EXPECT_EQ(out.redo, "redo-bytes");
  EXPECT_EQ(out.undo, "undo-bytes");
}

TEST(LogRecordTest, RedoUndoClassification) {
  LogRecord rec;
  rec.type = LogRecordType::kUpdate;
  EXPECT_TRUE(rec.RequiresRedo());
  EXPECT_TRUE(rec.RequiresUndo());
  rec.type = LogRecordType::kRedoOnly;
  EXPECT_TRUE(rec.RequiresRedo());
  EXPECT_FALSE(rec.RequiresUndo());
  rec.type = LogRecordType::kUndoOnly;
  EXPECT_FALSE(rec.RequiresRedo());
  EXPECT_TRUE(rec.RequiresUndo());
  rec.type = LogRecordType::kClr;
  EXPECT_TRUE(rec.RequiresRedo());
  EXPECT_FALSE(rec.RequiresUndo());
}

TEST(LogManagerTest, AppendAssignsMonotoneLsns) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate, "a");
  LogRecord b = MakeRec(1, LogRecordType::kUpdate, "b");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());
  EXPECT_GT(b.lsn, a.lsn);
}

TEST(LogManagerTest, ReadRecordRandomAccess) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate, "first");
  LogRecord b = MakeRec(2, LogRecordType::kCommit, "second");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());
  LogRecord out;
  ASSERT_TRUE(log.ReadRecord(a.lsn, &out).ok());
  EXPECT_EQ(out.redo, "first");
  ASSERT_TRUE(log.ReadRecord(b.lsn, &out).ok());
  EXPECT_EQ(out.redo, "second");
  EXPECT_EQ(out.txn_id, 2u);
}

TEST(LogManagerTest, CrashDropsUnflushedTail) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate, "durable");
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Flush(a.lsn).ok());
  LogRecord b = MakeRec(1, LogRecordType::kUpdate, "volatile");
  ASSERT_TRUE(log.Append(&b).ok());
  log.DropUnflushed();

  int seen = 0;
  ASSERT_TRUE(log.ScanDurable(kInvalidLsn, [&](const LogRecord& rec) {
    ++seen;
    EXPECT_EQ(rec.redo, "durable");
    return true;
  }).ok());
  EXPECT_EQ(seen, 1);
}

TEST(LogManagerTest, ScanFromLsn) {
  LogManager log;
  std::vector<Lsn> lsns;
  for (int i = 0; i < 5; ++i) {
    LogRecord rec = MakeRec(1, LogRecordType::kUpdate, std::to_string(i));
    ASSERT_TRUE(log.Append(&rec).ok());
    lsns.push_back(rec.lsn);
  }
  ASSERT_TRUE(log.FlushAll().ok());
  std::vector<std::string> seen;
  ASSERT_TRUE(log.ScanDurable(lsns[2], [&](const LogRecord& rec) {
    seen.push_back(rec.redo);
    return true;
  }).ok());
  EXPECT_EQ(seen, (std::vector<std::string>{"2", "3", "4"}));
}

TEST(LogManagerTest, FlushIsIdempotentForDurableLsn) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate);
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Flush(a.lsn).ok());
  Lsn flushed = log.flushed_lsn();
  ASSERT_TRUE(log.Flush(a.lsn).ok());
  EXPECT_EQ(log.flushed_lsn(), flushed);
}

TEST(LogManagerTest, StatsByResourceManager) {
  LogManager log;
  LogRecord a = MakeRec(1, LogRecordType::kUpdate);
  a.rm_id = RmId::kHeap;
  LogRecord b = MakeRec(1, LogRecordType::kUpdate);
  b.rm_id = RmId::kBtree;
  ASSERT_TRUE(log.Append(&a).ok());
  ASSERT_TRUE(log.Append(&b).ok());
  LogStats stats = log.stats();
  EXPECT_EQ(stats.records, 2u);
  EXPECT_EQ(stats.records_by_rm[static_cast<size_t>(RmId::kHeap)], 1u);
  EXPECT_EQ(stats.records_by_rm[static_cast<size_t>(RmId::kBtree)], 1u);
  EXPECT_GT(stats.bytes, 0u);
}

}  // namespace
}  // namespace oib
