#include "wal/recovery.h"

#include <gtest/gtest.h>

#include "btree/btree.h"
#include "tests/test_util.h"

namespace oib {
namespace {

TEST(CheckpointPayloadTest, RoundTrip) {
  std::vector<std::pair<TxnId, Lsn>> active = {{3, 100}, {9, 250}};
  std::string blob = EncodeCheckpointPayload(active);
  std::vector<std::pair<TxnId, Lsn>> out;
  ASSERT_TRUE(DecodeCheckpointPayload(blob, &out).ok());
  EXPECT_EQ(out, active);
  EXPECT_TRUE(DecodeCheckpointPayload("junk", &out).IsCorruption());
}

class RecoveryTest : public EngineTest {};

TEST_F(RecoveryTest, RedoIsIdempotentAcrossDoubleRestart) {
  TableId table = MakeTable();
  Populate(table, 300);
  CrashAndRestart();
  CrashAndRestart();  // second recovery replays over already-redone pages
  HeapFile* heap = engine_->catalog()->table(table);
  uint64_t count = 0;
  ASSERT_OK(heap->ForEach([&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 300u);
}

TEST_F(RecoveryTest, TxnIdsAdvancePastRecoveredOnes) {
  TableId table = MakeTable();
  Transaction* t1 = engine_->Begin();
  TxnId before = t1->id();
  ASSERT_OK(engine_->records()
                ->InsertRecord(t1, table,
                               Schema::EncodeRecord({"aaaa", "b"}))
                .status());
  ASSERT_OK(engine_->Commit(t1));
  CrashAndRestart();
  Transaction* t2 = engine_->Begin();
  EXPECT_GT(t2->id(), before);
  ASSERT_OK(engine_->Rollback(t2));
}

TEST_F(RecoveryTest, CrashDuringRollbackFinishesUndoAtRestart) {
  // CLRs guarantee rollback completes exactly once even when interrupted.
  TableId table = MakeTable();
  auto rids = Populate(table, 10);

  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()->DeleteRecord(txn, table, rids[3]));
  ASSERT_OK(engine_->records()->DeleteRecord(txn, table, rids[7]));
  // Flush everything logged so far, then "crash" without finishing: the
  // restart must roll the loser back.
  ASSERT_OK(engine_->log()->FlushAll());
  CrashAndRestart();
  EXPECT_GE(recovery_stats_.loser_txns, 1u);
  HeapFile* heap = engine_->catalog()->table(table);
  EXPECT_TRUE(heap->Exists(rids[3]));
  EXPECT_TRUE(heap->Exists(rids[7]));

  // Crash again right after: the CLRs from the first undo replay as
  // redo-only and the txn stays ended (no double-undo).
  ASSERT_OK(engine_->log()->FlushAll());
  CrashAndRestart();
  EXPECT_EQ(recovery_stats_.loser_txns, 0u);
  heap = engine_->catalog()->table(table);
  EXPECT_TRUE(heap->Exists(rids[3]));
}

// Runs one deterministic world — heap rows plus enough B+-tree inserts to
// split repeatedly — crashes it, recovers with `redo_threads` workers, and
// returns the flushed disk image plus recovery stats.
struct WorldResult {
  std::string image;
  RecoveryStats stats;
};

WorldResult RunRedoWorld(size_t redo_threads) {
  Options options;
  options.buffer_pool_pages = 2048;
  options.recovery_threads = redo_threads;
  auto env = Env::InMemory(options);
  {
    auto engine = Engine::Open(options, env.get());
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    auto table = (*engine)->catalog()->CreateTable("t");
    EXPECT_TRUE(table.ok());
    WorkloadOptions wo;
    EXPECT_TRUE(Workload::Populate(engine->get(), *table, 200, wo).ok());
    auto desc = (*engine)->catalog()->CreateIndex("idx", *table, false, {0},
                                                  BuildAlgo::kOffline);
    EXPECT_TRUE(desc.ok());
    BTree* tree = (*engine)->catalog()->index(desc->id);
    Transaction* txn = (*engine)->Begin();
    for (int i = 0; i < 3000; ++i) {
      char key[16];
      snprintf(key, sizeof(key), "%08d", (i * 7919) % 100000);
      auto r = tree->Insert(txn, key, Rid(uint32_t(i), 0));
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    }
    EXPECT_TRUE((*engine)->Commit(txn).ok());
    EXPECT_TRUE((*engine)->SimulateCrash().ok());
  }
  WorldResult out;
  auto engine = Engine::Restart(options, env.get(), &out.stats);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->FlushAll().ok());
  DiskManager* disk = env->disk.get();
  std::string page(disk->page_size(), '\0');
  for (PageId p = 0; p < disk->PageCount(); ++p) {
    if (disk->ReadPage(p, page.data()).ok()) {
      out.image += page;
    } else {
      out.image += "<unreadable:" + std::to_string(p) + ">";
    }
  }
  return out;
}

// The tentpole equivalence check: partitioned redo must reconstruct the
// exact same pages as single-threaded redo, barriers and all.
TEST(ParallelRedoTest, PartitionedRedoProducesIdenticalPages) {
  WorldResult serial = RunRedoWorld(1);
  WorldResult parallel = RunRedoWorld(4);
  EXPECT_EQ(serial.stats.redo_threads, 1u);
  EXPECT_EQ(parallel.stats.redo_threads, 4u);
  // Same log → same redo work, and the splits/new-roots show up as
  // barriers only on the partitioned path.
  EXPECT_EQ(serial.stats.records_scanned, parallel.stats.records_scanned);
  EXPECT_EQ(serial.stats.records_redone, parallel.stats.records_redone);
  EXPECT_GT(parallel.stats.records_redone, 3000u);
  EXPECT_GT(parallel.stats.redo_barriers, 0u);
  EXPECT_EQ(serial.stats.redo_barriers, 0u);
  ASSERT_EQ(serial.image.size(), parallel.image.size());
  EXPECT_TRUE(serial.image == parallel.image) << "disk images diverge";
}

TEST_F(RecoveryTest, ParallelRedoRecoversEngineConsistently) {
  options_.recovery_threads = 4;
  TableId table = MakeTable();
  Populate(table, 300);
  CrashAndRestart();
  EXPECT_EQ(recovery_stats_.redo_threads, 4u);
  EXPECT_GT(recovery_stats_.records_redone, 0u);
  HeapFile* heap = engine_->catalog()->table(table);
  uint64_t count = 0;
  ASSERT_OK(heap->ForEach([&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 300u);
  // A second crash replays over the already-redone pages.
  CrashAndRestart();
  count = 0;
  heap = engine_->catalog()->table(table);
  ASSERT_OK(heap->ForEach([&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 300u);
}

TEST_F(RecoveryTest, LatePagesRedoneFromLog) {
  // A committed change whose page never reached disk must be redone.
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid, engine_->records()->InsertRecord(
                   txn, table, Schema::EncodeRecord({"zzzz", "vvv"})));
  ASSERT_OK(engine_->Commit(txn));  // forces the log, not the pages
  CrashAndRestart();
  EXPECT_GT(recovery_stats_.records_redone, 0u);
  ASSERT_OK_AND_ASSIGN(std::string rec,
                       engine_->catalog()->table(table)->Get(rid));
  std::vector<std::string> fields;
  ASSERT_OK(Schema::DecodeRecord(rec, &fields));
  EXPECT_EQ(fields[0], "zzzz");
}

}  // namespace
}  // namespace oib
