#include "wal/recovery.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oib {
namespace {

TEST(CheckpointPayloadTest, RoundTrip) {
  std::vector<std::pair<TxnId, Lsn>> active = {{3, 100}, {9, 250}};
  std::string blob = EncodeCheckpointPayload(active);
  std::vector<std::pair<TxnId, Lsn>> out;
  ASSERT_TRUE(DecodeCheckpointPayload(blob, &out).ok());
  EXPECT_EQ(out, active);
  EXPECT_TRUE(DecodeCheckpointPayload("junk", &out).IsCorruption());
}

class RecoveryTest : public EngineTest {};

TEST_F(RecoveryTest, RedoIsIdempotentAcrossDoubleRestart) {
  TableId table = MakeTable();
  Populate(table, 300);
  CrashAndRestart();
  CrashAndRestart();  // second recovery replays over already-redone pages
  HeapFile* heap = engine_->catalog()->table(table);
  uint64_t count = 0;
  ASSERT_OK(heap->ForEach([&](const Rid&, std::string_view) { ++count; }));
  EXPECT_EQ(count, 300u);
}

TEST_F(RecoveryTest, TxnIdsAdvancePastRecoveredOnes) {
  TableId table = MakeTable();
  Transaction* t1 = engine_->Begin();
  TxnId before = t1->id();
  ASSERT_OK(engine_->records()
                ->InsertRecord(t1, table,
                               Schema::EncodeRecord({"aaaa", "b"}))
                .status());
  ASSERT_OK(engine_->Commit(t1));
  CrashAndRestart();
  Transaction* t2 = engine_->Begin();
  EXPECT_GT(t2->id(), before);
  ASSERT_OK(engine_->Rollback(t2));
}

TEST_F(RecoveryTest, CrashDuringRollbackFinishesUndoAtRestart) {
  // CLRs guarantee rollback completes exactly once even when interrupted.
  TableId table = MakeTable();
  auto rids = Populate(table, 10);

  Transaction* txn = engine_->Begin();
  ASSERT_OK(engine_->records()->DeleteRecord(txn, table, rids[3]));
  ASSERT_OK(engine_->records()->DeleteRecord(txn, table, rids[7]));
  // Flush everything logged so far, then "crash" without finishing: the
  // restart must roll the loser back.
  ASSERT_OK(engine_->log()->FlushAll());
  CrashAndRestart();
  EXPECT_GE(recovery_stats_.loser_txns, 1u);
  HeapFile* heap = engine_->catalog()->table(table);
  EXPECT_TRUE(heap->Exists(rids[3]));
  EXPECT_TRUE(heap->Exists(rids[7]));

  // Crash again right after: the CLRs from the first undo replay as
  // redo-only and the txn stays ended (no double-undo).
  ASSERT_OK(engine_->log()->FlushAll());
  CrashAndRestart();
  EXPECT_EQ(recovery_stats_.loser_txns, 0u);
  heap = engine_->catalog()->table(table);
  EXPECT_TRUE(heap->Exists(rids[3]));
}

TEST_F(RecoveryTest, LatePagesRedoneFromLog) {
  // A committed change whose page never reached disk must be redone.
  TableId table = MakeTable();
  Transaction* txn = engine_->Begin();
  ASSERT_OK_AND_ASSIGN(
      Rid rid, engine_->records()->InsertRecord(
                   txn, table, Schema::EncodeRecord({"zzzz", "vvv"})));
  ASSERT_OK(engine_->Commit(txn));  // forces the log, not the pages
  CrashAndRestart();
  EXPECT_GT(recovery_stats_.records_redone, 0u);
  ASSERT_OK_AND_ASSIGN(std::string rec,
                       engine_->catalog()->table(table)->Get(rid));
  std::vector<std::string> fields;
  ASSERT_OK(Schema::DecodeRecord(rec, &fields));
  EXPECT_EQ(fields[0], "zzzz");
}

}  // namespace
}  // namespace oib
