#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/failpoint.h"
#include "storage/disk_manager.h"

namespace oib {
namespace {

class FileDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPointRegistry::Instance().Reset();
    path_ = std::filesystem::temp_directory_path() /
            ("oib_filedisk_test_" + std::to_string(::getpid()));
    RemoveAll();
  }
  void TearDown() override {
    FailPointRegistry::Instance().Reset();
    RemoveAll();
  }
  void RemoveAll() {
    for (const char* suffix : {"", ".meta", ".meta.tmp", ".dw"}) {
      std::filesystem::remove(path_.string() + suffix);
    }
  }
  // Flips one byte of a file in place.
  static void FlipByte(const std::string& file, long offset) {
    std::FILE* f = std::fopen(file.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  std::filesystem::path path_;
};

TEST_F(FileDiskTest, PagesPersistAcrossReopen) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    auto id = (*disk)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::string page(4096, '\0');
    page[100] = 'z';
    ASSERT_TRUE((*disk)->WritePage(*id, page.data()).ok());
    ASSERT_TRUE((*disk)->PutMeta("root", "41").ok());
  }
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    EXPECT_EQ((*disk)->PageCount(), 1u);
    std::string page(4096, '\0');
    ASSERT_TRUE((*disk)->ReadPage(0, page.data()).ok());
    EXPECT_EQ(page[100], 'z');
    std::string meta;
    ASSERT_TRUE((*disk)->GetMeta("root", &meta).ok());
    EXPECT_EQ(meta, "41");
  }
}

TEST_F(FileDiskTest, NoReuseAllocationIsMonotone) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  auto a = (*disk)->AllocatePage();
  auto b = (*disk)->AllocatePageNoReuse();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*disk)->FreePage(*a).ok());
  auto c = (*disk)->AllocatePageNoReuse();
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, *b);
}

TEST_F(FileDiskTest, OutOfRangeAccessRejected) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  std::string page(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(7, page.data()).IsIoError());
  EXPECT_TRUE((*disk)->WritePage(7, page.data()).IsIoError());
}

TEST_F(FileDiskTest, FreshlyExtendedPagesVerifyAfterReopen) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    ASSERT_TRUE((*disk)->AllocatePageNoReuse().ok());
  }
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  std::string page(4096, 'x');
  ASSERT_TRUE((*disk)->ReadPage(1, page.data()).ok());
  EXPECT_EQ(page, std::string(4096, '\0'));
}

TEST_F(FileDiskTest, ChecksumCatchesBitRot) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    auto id = (*disk)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::string page(4096, 'q');
    ASSERT_TRUE((*disk)->WritePage(*id, page.data()).ok());
  }
  FlipByte(path_.string(), 1234);
  // Drop the journal so recovery cannot (correctly!) repair the slot.
  std::filesystem::remove(path_.string() + ".dw");
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  std::string page(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(0, page.data()).IsCorruption());
}

TEST_F(FileDiskTest, MisdirectedSlotDetectedByPageIdEcho) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    std::string page(4096, 'm');
    ASSERT_TRUE((*disk)->WritePage(0, page.data()).ok());
    ASSERT_TRUE((*disk)->WritePage(1, page.data()).ok());
  }
  // Copy slot 0 over slot 1: both CRCs are fine, but slot 1 now claims to
  // be page 0.
  const size_t slot = 4096 + FileDisk::kPageTrailerSize;
  std::string bytes(slot, '\0');
  std::FILE* f = std::fopen(path_.string().c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fread(bytes.data(), 1, slot, f), slot);
  ASSERT_EQ(std::fseek(f, long(slot), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, slot, f), slot);
  std::fclose(f);
  std::filesystem::remove(path_.string() + ".dw");
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  std::string page(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(1, page.data()).IsCorruption());
}

TEST_F(FileDiskTest, PartialTrailingSlotTruncatedAtOpen) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    std::string page(4096, 'p');
    ASSERT_TRUE((*disk)->WritePage(0, page.data()).ok());
  }
  {
    // A crash mid-extend: garbage partial slot at the tail.
    std::FILE* f = std::fopen(path_.string().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::string garbage(100, 'g');
    ASSERT_EQ(std::fwrite(garbage.data(), 1, garbage.size(), f),
              garbage.size());
    std::fclose(f);
  }
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  EXPECT_EQ((*disk)->PageCount(), 1u);
  std::string page(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(0, page.data()).ok());
  EXPECT_EQ(page[0], 'p');
  // The truncated tail is reusable.
  auto id = (*disk)->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 1u);
}

TEST_F(FileDiskTest, TransientWriteErrorIsRetried) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  FailPointRegistry::Instance().ArmPolicy("filedisk.write",
                                          FailPointPolicy{});  // error, once
  std::string page(4096, 'r');
  EXPECT_TRUE((*disk)->WritePage(0, page.data()).ok());
  EXPECT_EQ(FailPointRegistry::Instance().fired_count("filedisk.write"), 1);
  std::string out(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST_F(FileDiskTest, ShortWriteIsRetriedAndRepaired) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  FailPointPolicy policy;
  policy.action = FailPointAction::kShortWrite;
  policy.arg = 100;  // only 100 bytes land on the first attempt
  FailPointRegistry::Instance().ArmPolicy("filedisk.write", policy);
  std::string page(4096, 's');
  EXPECT_TRUE((*disk)->WritePage(0, page.data()).ok());
  std::string out(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST_F(FileDiskTest, PersistentWriteErrorEscapesAfterRetries) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  FailPointPolicy policy;
  policy.max_fires = -1;  // never heals
  FailPointRegistry::Instance().ArmPolicy("filedisk.write", policy);
  std::string page(4096, 'e');
  EXPECT_TRUE((*disk)->WritePage(0, page.data()).IsInjected());
  EXPECT_GT(FailPointRegistry::Instance().fired_count("filedisk.write"), 1)
      << "bounded retry should have made several attempts";
  FailPointRegistry::Instance().Reset();
  EXPECT_TRUE((*disk)->WritePage(0, page.data()).ok());
}

TEST_F(FileDiskTest, TransientReadErrorIsRetried) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  std::string page(4096, 't');
  ASSERT_TRUE((*disk)->WritePage(0, page.data()).ok());
  FailPointRegistry::Instance().ArmPolicy("filedisk.read",
                                          FailPointPolicy{});
  std::string out(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, page);
}

TEST_F(FileDiskTest, SyncFailpointInjects) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  EXPECT_TRUE((*disk)->Sync().ok());
  FailPointRegistry::Instance().Arm("filedisk.sync");
  EXPECT_TRUE((*disk)->Sync().IsInjected());
  EXPECT_TRUE((*disk)->Sync().ok());
}

TEST_F(FileDiskTest, TornWriteKillsProcessAndJournalRestoresAtReopen) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    auto id = (*disk)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::string v1(4096, 'a');
    ASSERT_TRUE((*disk)->WritePage(*id, v1.data()).ok());
  }
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: overwrite page 0, tearing the slot halfway and dying.
    auto disk = FileDisk::Open(path_.string(), 4096);
    if (!disk.ok()) _exit(2);
    FailPointPolicy policy;
    policy.action = FailPointAction::kTornWrite;
    policy.arg = 2048;
    FailPointRegistry::Instance().ArmPolicy("filedisk.write", policy);
    std::string v2(4096, 'b');
    (void)(*disk)->WritePage(0, v2.data());
    _exit(3);  // unreachable: the torn write SIGKILLs
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ASSERT_EQ(WTERMSIG(status), SIGKILL);
  // Reopen: the journal holds the whole new slot, so the torn in-place
  // write is rolled forward to v2.
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  std::string out(4096, '\0');
  ASSERT_TRUE((*disk)->ReadPage(0, out.data()).ok());
  EXPECT_EQ(out, std::string(4096, 'b'));
}

TEST_F(FileDiskTest, CorruptMetaFileRejectedAtOpen) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->PutMeta("key", "value-that-matters").ok());
  }
  FlipByte(path_.string() + ".meta", 6);
  auto disk = FileDisk::Open(path_.string(), 4096);
  EXPECT_FALSE(disk.ok());
  EXPECT_TRUE(disk.status().IsCorruption());
}

TEST_F(FileDiskTest, StaleMetaTmpFromCrashedStoreIsIgnored) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->PutMeta("key", "good").ok());
  }
  {
    // A crash between writing .meta.tmp and the rename leaves a partial
    // tmp file behind; it must not shadow the committed blob.
    std::FILE* f = std::fopen((path_.string() + ".meta.tmp").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("partial garbage", f);
    std::fclose(f);
  }
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  std::string value;
  ASSERT_TRUE((*disk)->GetMeta("key", &value).ok());
  EXPECT_EQ(value, "good");
}

TEST_F(FileDiskTest, MetaFailpointInjectsWithoutTearing) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->PutMeta("key", "v1").ok());
  FailPointRegistry::Instance().Arm("filedisk.meta");
  EXPECT_TRUE((*disk)->PutMeta("key", "v2").IsInjected());
  // The committed blob still parses and serves the old value after a
  // reopen (the failed Put never reached the file).
  disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  std::string value;
  ASSERT_TRUE((*disk)->GetMeta("key", &value).ok());
  EXPECT_EQ(value, "v1");
}

}  // namespace
}  // namespace oib
