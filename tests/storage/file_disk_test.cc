#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/disk_manager.h"

namespace oib {
namespace {

class FileDiskTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("oib_filedisk_test_" + std::to_string(::getpid()));
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".meta");
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".meta");
  }
  std::filesystem::path path_;
};

TEST_F(FileDiskTest, PagesPersistAcrossReopen) {
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    auto id = (*disk)->AllocatePage();
    ASSERT_TRUE(id.ok());
    std::string page(4096, '\0');
    page[100] = 'z';
    ASSERT_TRUE((*disk)->WritePage(*id, page.data()).ok());
    ASSERT_TRUE((*disk)->PutMeta("root", "41").ok());
  }
  {
    auto disk = FileDisk::Open(path_.string(), 4096);
    ASSERT_TRUE(disk.ok());
    EXPECT_EQ((*disk)->PageCount(), 1u);
    std::string page(4096, '\0');
    ASSERT_TRUE((*disk)->ReadPage(0, page.data()).ok());
    EXPECT_EQ(page[100], 'z');
    std::string meta;
    ASSERT_TRUE((*disk)->GetMeta("root", &meta).ok());
    EXPECT_EQ(meta, "41");
  }
}

TEST_F(FileDiskTest, NoReuseAllocationIsMonotone) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  auto a = (*disk)->AllocatePage();
  auto b = (*disk)->AllocatePageNoReuse();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE((*disk)->FreePage(*a).ok());
  auto c = (*disk)->AllocatePageNoReuse();
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, *b);
}

TEST_F(FileDiskTest, OutOfRangeAccessRejected) {
  auto disk = FileDisk::Open(path_.string(), 4096);
  ASSERT_TRUE(disk.ok());
  std::string page(4096, '\0');
  EXPECT_TRUE((*disk)->ReadPage(7, page.data()).IsIoError());
  EXPECT_TRUE((*disk)->WritePage(7, page.data()).IsIoError());
}

}  // namespace
}  // namespace oib
