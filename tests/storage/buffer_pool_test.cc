#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.h"
#include "storage/disk_manager.h"

namespace oib {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(4096), pool_(&disk_, 8) {}

  InMemoryDisk disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, NewPageReadBack) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->data()[100] = 'z';
    guard->MarkDirty();
  }
  auto rd = pool_.FetchRead(id);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->data()[100], 'z');
}

TEST_F(BufferPoolTest, DirtyPageSurvivesEviction) {
  PageId first;
  {
    auto guard = pool_.NewPage(&first);
    ASSERT_TRUE(guard.ok());
    guard->data()[10] = 'a';
    guard->MarkDirty();
  }
  // Fill the pool to force eviction of `first`.
  for (int i = 0; i < 20; ++i) {
    PageId id;
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
  }
  auto rd = pool_.FetchRead(first);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->data()[10], 'a');
  EXPECT_GT(pool_.evictions(), 0u);
}

TEST_F(BufferPoolTest, WalHookCalledBeforeDirtyWrite) {
  Lsn flushed_to = 0;
  pool_.SetWalFlushHook([&](Lsn lsn) {
    flushed_to = std::max(flushed_to, lsn);
    return Status::OK();
  });
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->set_page_lsn(777);
  }
  ASSERT_TRUE(pool_.FlushPage(id).ok());
  EXPECT_EQ(flushed_to, 777u);
}

TEST_F(BufferPoolTest, PoolExhaustionReported) {
  std::vector<WritePageGuard> guards;
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(*guard));
  }
  PageId id;
  auto overflow = pool_.NewPage(&id);
  EXPECT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsBusy());
}

TEST_F(BufferPoolTest, DiscardAllDropsUnflushed) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->data()[10] = 'x';
    guard->MarkDirty();
  }
  pool_.DiscardAll();
  // Disk still holds zeroes (never flushed).
  auto rd = pool_.FetchRead(id);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->data()[10], '\0');
}

TEST_F(BufferPoolTest, ConcurrentReadersShareLatch) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->data()[0 + 8] = 'r';
    guard->MarkDirty();
  }
  std::atomic<int> readers{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto rd = pool_.FetchRead(id);
      ASSERT_TRUE(rd.ok());
      readers.fetch_add(1);
      while (readers.load() < 4) {
        std::this_thread::yield();  // all four hold the S latch together
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(readers.load(), 4);
}

TEST_F(BufferPoolTest, HitMissCountersTrackFetches) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }
  uint64_t hits0 = pool_.hits();
  uint64_t misses0 = pool_.misses();
  // Resident page: every fetch is a hit.
  for (int i = 0; i < 3; ++i) {
    auto rd = pool_.FetchRead(id);
    ASSERT_TRUE(rd.ok());
  }
  EXPECT_EQ(pool_.hits(), hits0 + 3);
  EXPECT_EQ(pool_.misses(), misses0);
  // Evict it by churning through the 8-frame pool, then fetch again.
  for (int i = 0; i < 20; ++i) {
    PageId other;
    ASSERT_TRUE(pool_.NewPage(&other).ok());
  }
  uint64_t misses1 = pool_.misses();
  auto rd = pool_.FetchRead(id);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(pool_.misses(), misses1 + 1);
}

TEST_F(BufferPoolTest, MetricsRegistryExposesCounters) {
  // The process-wide registry: it outlives the pool, whose destructor
  // detaches the entries it registered here.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  pool_.AttachMetrics(&registry);
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
  }
  ASSERT_TRUE(pool_.FetchRead(id).ok());
  obs::MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("bufferpool.hits"), pool_.hits());
  EXPECT_EQ(snap.counters.at("bufferpool.misses"), pool_.misses());
  EXPECT_EQ(snap.counters.at("bufferpool.evictions"), pool_.evictions());
  EXPECT_GE(snap.counters.at("bufferpool.hits"), 1u);
}

TEST(DiskManagerTest, AllocateReuseAndNoReuse) {
  InMemoryDisk disk(4096);
  auto a = disk.AllocatePage();
  ASSERT_TRUE(a.ok());
  auto b = disk.AllocatePage();
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(disk.FreePage(*a).ok());
  auto c = disk.AllocatePage();  // reuses a
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
  ASSERT_TRUE(disk.FreePage(*c).ok());
  auto d = disk.AllocatePageNoReuse();  // must NOT reuse
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, *b);
}

TEST(DiskManagerTest, MetaRoundTrip) {
  InMemoryDisk disk(4096);
  ASSERT_TRUE(disk.PutMeta("k1", "v1").ok());
  ASSERT_TRUE(disk.PutMeta("k1", "v2").ok());
  std::string v;
  ASSERT_TRUE(disk.GetMeta("k1", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_TRUE(disk.GetMeta("absent", &v).IsNotFound());
}

}  // namespace
}  // namespace oib
