#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/coding.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"

namespace oib {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(4096), pool_(&disk_, 8) {}

  InMemoryDisk disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, NewPageReadBack) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->data()[100] = 'z';
    guard->MarkDirty();
  }
  auto rd = pool_.FetchRead(id);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->data()[100], 'z');
}

TEST_F(BufferPoolTest, DirtyPageSurvivesEviction) {
  PageId first;
  {
    auto guard = pool_.NewPage(&first);
    ASSERT_TRUE(guard.ok());
    guard->data()[10] = 'a';
    guard->MarkDirty();
  }
  // Fill the pool to force eviction of `first`.
  for (int i = 0; i < 20; ++i) {
    PageId id;
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
  }
  auto rd = pool_.FetchRead(first);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->data()[10], 'a');
  EXPECT_GT(pool_.evictions(), 0u);
}

TEST_F(BufferPoolTest, WalHookCalledBeforeDirtyWrite) {
  Lsn flushed_to = 0;
  pool_.SetWalFlushHook([&](Lsn lsn) {
    flushed_to = std::max(flushed_to, lsn);
    return Status::OK();
  });
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->set_page_lsn(777);
  }
  ASSERT_TRUE(pool_.FlushPage(id).ok());
  EXPECT_EQ(flushed_to, 777u);
}

TEST_F(BufferPoolTest, PoolExhaustionReported) {
  std::vector<WritePageGuard> guards;
  for (int i = 0; i < 8; ++i) {
    PageId id;
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guards.push_back(std::move(*guard));
  }
  PageId id;
  auto overflow = pool_.NewPage(&id);
  EXPECT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsBusy());
}

TEST_F(BufferPoolTest, DiscardAllDropsUnflushed) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->data()[10] = 'x';
    guard->MarkDirty();
  }
  pool_.DiscardAll();
  // Disk still holds zeroes (never flushed).
  auto rd = pool_.FetchRead(id);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(rd->data()[10], '\0');
}

TEST_F(BufferPoolTest, ConcurrentReadersShareLatch) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->data()[0 + 8] = 'r';
    guard->MarkDirty();
  }
  std::atomic<int> readers{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      auto rd = pool_.FetchRead(id);
      ASSERT_TRUE(rd.ok());
      readers.fetch_add(1);
      while (readers.load() < 4) {
        std::this_thread::yield();  // all four hold the S latch together
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(readers.load(), 4);
}

TEST_F(BufferPoolTest, HitMissCountersTrackFetches) {
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
    guard->MarkDirty();
  }
  uint64_t hits0 = pool_.hits();
  uint64_t misses0 = pool_.misses();
  // Resident page: every fetch is a hit.
  for (int i = 0; i < 3; ++i) {
    auto rd = pool_.FetchRead(id);
    ASSERT_TRUE(rd.ok());
  }
  EXPECT_EQ(pool_.hits(), hits0 + 3);
  EXPECT_EQ(pool_.misses(), misses0);
  // Evict it by churning through the 8-frame pool, then fetch again.
  for (int i = 0; i < 20; ++i) {
    PageId other;
    ASSERT_TRUE(pool_.NewPage(&other).ok());
  }
  uint64_t misses1 = pool_.misses();
  auto rd = pool_.FetchRead(id);
  ASSERT_TRUE(rd.ok());
  EXPECT_EQ(pool_.misses(), misses1 + 1);
}

TEST_F(BufferPoolTest, MetricsRegistryExposesCounters) {
  // The process-wide registry: it outlives the pool, whose destructor
  // detaches the entries it registered here.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  pool_.AttachMetrics(&registry);
  PageId id;
  {
    auto guard = pool_.NewPage(&id);
    ASSERT_TRUE(guard.ok());
  }
  ASSERT_TRUE(pool_.FetchRead(id).ok());
  obs::MetricsSnapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("bufferpool.hits"), pool_.hits());
  EXPECT_EQ(snap.counters.at("bufferpool.misses"), pool_.misses());
  EXPECT_EQ(snap.counters.at("bufferpool.evictions"), pool_.evictions());
  EXPECT_GE(snap.counters.at("bufferpool.hits"), 1u);
}

TEST(BufferPoolShardingTest, ExplicitShardCountIsHonoured) {
  InMemoryDisk disk(4096);
  BufferPool pool(&disk, 64, 4);
  EXPECT_EQ(pool.shard_count(), 4u);
}

TEST(BufferPoolShardingTest, ShardCountCappedByPoolSize) {
  InMemoryDisk disk(4096);
  // 8 frames cannot support 16 shards of >= kMinPagesPerShard frames.
  BufferPool pool(&disk, 8, 16);
  EXPECT_EQ(pool.shard_count(), 8 / BufferPool::kMinPagesPerShard);
}

// Concurrent fetch/unpin/write/evict/flush across shards with the pool
// much smaller than the working set, so the CLOCK hand, the free lists,
// and the lock-free Unpin path are all exercised under real contention.
// Runs under the TSan CI job (name matches its `Stress` filter).
TEST(BufferPoolStressTest, ConcurrentFetchEvictFlush) {
  constexpr size_t kPoolPages = 16;
  constexpr size_t kWorkingSet = 64;  // 4x the pool: constant eviction
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 4000;
  constexpr size_t kStampOff = 8;    // after the page-LSN header
  constexpr size_t kCounterOff = 16;

  InMemoryDisk disk(4096);
  BufferPool pool(&disk, kPoolPages, 4);
  ASSERT_EQ(pool.shard_count(), 4u);

  std::vector<PageId> pages(kWorkingSet);
  for (size_t i = 0; i < kWorkingSet; ++i) {
    auto guard = pool.NewPage(&pages[i]);
    ASSERT_TRUE(guard.ok());
    EncodeFixed64(guard->data() + kStampOff, pages[i]);
    guard->MarkDirty();
  }

  // expected[i] counts successful increments of page i's counter; it is
  // bumped while the exclusive latch is still held, so it can never lag
  // or lead the on-page value.
  std::vector<std::atomic<uint64_t>> expected(kWorkingSet);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Random rng(1234 + t);
      for (int i = 0; i < kOpsPerThread; ++i) {
        size_t victim = rng.Uniform(kWorkingSet);
        PageId pid = pages[victim];
        if (rng.Uniform(10) < 7) {
          auto rd = pool.FetchRead(pid);
          if (!rd.ok()) {
            failures.fetch_add(1);
            continue;
          }
          if (DecodeFixed64(rd->data() + kStampOff) != pid) {
            failures.fetch_add(1);
          }
        } else {
          auto wr = pool.FetchWrite(pid);
          if (!wr.ok()) {
            failures.fetch_add(1);
            continue;
          }
          uint64_t v = DecodeFixed64(wr->data() + kCounterOff);
          EncodeFixed64(wr->data() + kCounterOff, v + 1);
          wr->MarkDirty();
          expected[victim].fetch_add(1);
        }
      }
    });
  }
  // A concurrent flusher: FlushPage/FlushAll racing fetches and evictions.
  std::thread flusher([&] {
    Random rng(99);
    while (!stop.load()) {
      if (rng.Uniform(4) == 0) {
        ASSERT_TRUE(pool.FlushAll().ok());
      } else {
        ASSERT_TRUE(pool.FlushPage(pages[rng.Uniform(kWorkingSet)]).ok());
      }
      std::this_thread::yield();
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true);
  flusher.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(pool.evictions(), 0u);  // working set 4x pool: must evict
  // Every increment that was applied under the X latch must be visible,
  // whether the page stayed resident, was evicted + re-read, or was
  // flushed concurrently.
  for (size_t i = 0; i < kWorkingSet; ++i) {
    auto rd = pool.FetchRead(pages[i]);
    ASSERT_TRUE(rd.ok());
    EXPECT_EQ(DecodeFixed64(rd->data() + kStampOff), pages[i]);
    EXPECT_EQ(DecodeFixed64(rd->data() + kCounterOff), expected[i].load())
        << "page " << pages[i];
  }
}

// Pins from several threads racing eviction pressure: a pinned frame must
// never be chosen as a CLOCK victim, and exhaustion must surface as Busy
// rather than corruption.
TEST(BufferPoolStressTest, PinnedFramesSurviveEvictionPressure) {
  InMemoryDisk disk(4096);
  BufferPool pool(&disk, 16, 4);
  std::vector<PageId> pinned_ids(8);
  std::vector<WritePageGuard> held;
  for (size_t i = 0; i < pinned_ids.size(); ++i) {
    auto guard = pool.NewPage(&pinned_ids[i]);
    ASSERT_TRUE(guard.ok());
    EncodeFixed64(guard->data() + 8, 0xD00D + i);
    guard->MarkDirty();
    held.push_back(std::move(*guard));
  }
  std::vector<std::thread> churners;
  for (int t = 0; t < 3; ++t) {
    churners.emplace_back([&pool] {
      for (int i = 0; i < 500; ++i) {
        PageId id;
        auto guard = pool.NewPage(&id);
        // Busy is legal here (shard momentarily all-pinned); anything
        // else is not.
        if (!guard.ok()) {
          ASSERT_TRUE(guard.status().IsBusy()) << guard.status().ToString();
        }
      }
    });
  }
  for (auto& c : churners) c.join();
  for (size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(DecodeFixed64(held[i].data() + 8), 0xD00D + i);
  }
  held.clear();
}

TEST(DiskManagerTest, AllocateReuseAndNoReuse) {
  InMemoryDisk disk(4096);
  auto a = disk.AllocatePage();
  ASSERT_TRUE(a.ok());
  auto b = disk.AllocatePage();
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(disk.FreePage(*a).ok());
  auto c = disk.AllocatePage();  // reuses a
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
  ASSERT_TRUE(disk.FreePage(*c).ok());
  auto d = disk.AllocatePageNoReuse();  // must NOT reuse
  ASSERT_TRUE(d.ok());
  EXPECT_GT(*d, *b);
}

TEST(DiskManagerTest, MetaRoundTrip) {
  InMemoryDisk disk(4096);
  ASSERT_TRUE(disk.PutMeta("k1", "v1").ok());
  ASSERT_TRUE(disk.PutMeta("k1", "v2").ok());
  std::string v;
  ASSERT_TRUE(disk.GetMeta("k1", &v).ok());
  EXPECT_EQ(v, "v2");
  EXPECT_TRUE(disk.GetMeta("absent", &v).IsNotFound());
}

// Regression: reads()/writes() used to load the counters without the disk
// mutex while I/O threads increment them under it — a data race TSan
// flags and a torn read on principle.  The suite name keeps this test in
// the TSan CI job's filter ("Stress").
TEST(DiskManagerStressTest, IoCountersAreSafeToPollDuringIo) {
  InMemoryDisk disk(4096);
  auto page = disk.AllocatePage();
  ASSERT_TRUE(page.ok());
  std::vector<char> buf(4096, 0);
  ASSERT_TRUE(disk.WritePage(*page, buf.data()).ok());

  constexpr int kThreads = 4;
  constexpr int kIosPerThread = 500;
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    uint64_t last_reads = 0, last_writes = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t r = disk.reads(), w = disk.writes();
      // Monotonicity is the only invariant a racing poller can check.
      EXPECT_GE(r, last_reads);
      EXPECT_GE(w, last_writes);
      last_reads = r;
      last_writes = w;
    }
  });
  std::vector<std::thread> io;
  io.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    io.emplace_back([&] {
      std::vector<char> local(4096, 0);
      for (int i = 0; i < kIosPerThread; ++i) {
        ASSERT_TRUE(disk.ReadPage(*page, local.data()).ok());
        ASSERT_TRUE(disk.WritePage(*page, local.data()).ok());
      }
    });
  }
  for (auto& t : io) t.join();
  stop.store(true, std::memory_order_relaxed);
  poller.join();
  EXPECT_GE(disk.reads(), static_cast<uint64_t>(kThreads * kIosPerThread));
  EXPECT_GE(disk.writes(),
            static_cast<uint64_t>(kThreads * kIosPerThread) + 1);
}

}  // namespace
}  // namespace oib
