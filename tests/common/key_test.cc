// Property tests for the normalized key codec: memcmp over the encoded
// bytes must order keys exactly like column-wise comparison of the
// decoded tuples, for every tuple the schema can produce — empty
// strings, embedded NULs, 0xFF bytes, negative and extreme integers.

#include "common/key.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace oib {
namespace {

// One row of the test schema (string, int64, string).
struct Tuple {
  std::string s0;
  int64_t i1 = 0;
  std::string s2;

  // Column-wise tuple order.  std::string comparison is memcmp-like
  // (char_traits compares as unsigned char), which is the order the
  // paper's "concatenation of the values of the columns" implies.
  bool operator<(const Tuple& o) const {
    return std::tie(s0, i1, s2) < std::tie(o.s0, o.i1, o.s2);
  }
  bool operator==(const Tuple& o) const {
    return std::tie(s0, i1, s2) == std::tie(o.s0, o.i1, o.s2);
  }
};

std::string Encode(const Tuple& t) {
  std::string k;
  keyenc::AppendStringColumn(&k, t.s0);
  keyenc::AppendInt64Column(&k, t.i1);
  keyenc::AppendStringColumn(&k, t.s2);
  return k;
}

// Strings over a tiny alphabet that includes the two bytes the codec
// treats specially (0x00 is escaped, 0xFF is the escape's second byte),
// so collisions and shared prefixes are common.
std::string HostileString(Random* rng) {
  static const char kAlphabet[] = {'\x00', '\xff', 'a', 'b'};
  std::string s(rng->Uniform(6), '\0');
  for (char& c : s) c = kAlphabet[rng->Uniform(4)];
  return s;
}

int64_t HostileInt(Random* rng) {
  switch (rng->Uniform(6)) {
    case 0: return 0;
    case 1: return -1;
    case 2: return INT64_MIN;
    case 3: return INT64_MAX;
    case 4: return -static_cast<int64_t>(rng->Uniform(1000));
    default: return static_cast<int64_t>(rng->Uniform(1000));
  }
}

TEST(KeyCodecPropertyTest, NormalizedOrderMatchesTupleOrder) {
  Random rng(20260808);
  std::vector<Tuple> tuples;
  for (int i = 0; i < 300; ++i) {
    tuples.push_back({HostileString(&rng), HostileInt(&rng),
                      HostileString(&rng)});
  }
  std::vector<std::string> keys;
  keys.reserve(tuples.size());
  for (const Tuple& t : tuples) keys.push_back(Encode(t));

  for (size_t i = 0; i < tuples.size(); ++i) {
    for (size_t j = i + 1; j < tuples.size(); ++j) {
      int tuple_order = tuples[i] < tuples[j]   ? -1
                        : tuples[j] < tuples[i] ? 1
                                                : 0;
      int key_order = KeySlice(keys[i]).Compare(KeySlice(keys[j]));
      ASSERT_EQ(key_order, tuple_order)
          << "tuple (" << testing::PrintToString(tuples[i].s0) << ", "
          << tuples[i].i1 << ", " << testing::PrintToString(tuples[i].s2)
          << ") vs (" << testing::PrintToString(tuples[j].s0) << ", "
          << tuples[j].i1 << ", " << testing::PrintToString(tuples[j].s2)
          << ")";
    }
  }
}

TEST(KeyCodecPropertyTest, DecodeRoundTripsEveryTuple) {
  Random rng(7);
  for (int i = 0; i < 500; ++i) {
    Tuple t{HostileString(&rng), HostileInt(&rng), HostileString(&rng)};
    std::string k = Encode(t);
    KeyDecoder dec((KeySlice(k)));
    Tuple out;
    ASSERT_TRUE(dec.DecodeString(&out.s0));
    ASSERT_TRUE(dec.DecodeInt64(&out.i1));
    ASSERT_TRUE(dec.DecodeString(&out.s2));
    EXPECT_TRUE(dec.done());
    EXPECT_TRUE(t == out);
  }
}

TEST(KeyCodecPropertyTest, CommonPrefixLenIsExact) {
  Random rng(11);
  for (int i = 0; i < 500; ++i) {
    std::string a = HostileString(&rng) + HostileString(&rng);
    std::string b = a;
    // Mutate b past a random point.
    size_t cut = rng.Uniform(a.size() + 1);
    b.resize(cut);
    b += HostileString(&rng);
    size_t n = CommonPrefixLen(KeySlice(a), KeySlice(b));
    ASSERT_LE(n, std::min(a.size(), b.size()));
    EXPECT_EQ(a.compare(0, n, b, 0, n), 0);
    if (n < a.size() && n < b.size()) EXPECT_NE(a[n], b[n]);
  }
}

TEST(KeyCodecPropertyTest, ComparePrefixedKeyAgreesWithMaterialized) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    std::string full = HostileString(&rng) + HostileString(&rng);
    size_t split = rng.Uniform(full.size() + 1);
    KeySlice prefix(full.data(), split);
    KeySlice suffix(full.data() + split, full.size() - split);
    std::string probe = (rng.Uniform(3) == 0) ? full : HostileString(&rng);
    int via_parts = ComparePrefixedKey(prefix, suffix, KeySlice(probe));
    int via_full = KeySlice(full).Compare(KeySlice(probe));
    EXPECT_EQ(via_parts < 0, via_full < 0);
    EXPECT_EQ(via_parts > 0, via_full > 0);
  }
}

TEST(KeyCodecPropertyTest, TruncateSeparatorBounds) {
  Random rng(17);
  int truncated = 0;
  for (int i = 0; i < 1000; ++i) {
    std::string a = HostileString(&rng);
    std::string b = HostileString(&rng);
    if (KeySlice(b) < KeySlice(a)) std::swap(a, b);
    if (KeySlice(a) == KeySlice(b)) {
      std::string sep;
      EXPECT_FALSE(TruncateSeparator(KeySlice(a), KeySlice(b), &sep));
      continue;
    }
    std::string sep;
    if (TruncateSeparator(KeySlice(a), KeySlice(b), &sep)) {
      ++truncated;
      // sep is a proper prefix of b that still sorts strictly above a,
      // so it routes left_max left and right_first right.
      EXPECT_LT(sep.size(), b.size());
      EXPECT_EQ(b.compare(0, sep.size(), sep), 0);
      EXPECT_LT(KeySlice(a).Compare(KeySlice(sep)), 0);
      EXPECT_LE(KeySlice(sep).Compare(KeySlice(b)), 0);
    } else {
      // Full key required: b itself is the shortest separator.
      EXPECT_LT(KeySlice(a).Compare(KeySlice(b)), 0);
    }
  }
  // The hostile alphabet shares prefixes constantly; truncation must
  // actually fire or the test is vacuous.
  EXPECT_GT(truncated, 50);
}

TEST(KeyCodecPropertyTest, StringColumnTerminatorSortsBelowContent) {
  // ("a", "bc") < ("ab", "c"): the first column's terminator must sort
  // below every content byte, including escaped NUL.
  std::string k1, k2;
  keyenc::AppendStringColumn(&k1, "a");
  keyenc::AppendStringColumn(&k1, "bc");
  keyenc::AppendStringColumn(&k2, "ab");
  keyenc::AppendStringColumn(&k2, "c");
  EXPECT_LT(KeySlice(k1).Compare(KeySlice(k2)), 0);

  std::string nul1, nul2;
  keyenc::AppendStringColumn(&nul1, std::string("a", 1));
  keyenc::AppendStringColumn(&nul2, std::string("a\0", 2));
  EXPECT_LT(KeySlice(nul1).Compare(KeySlice(nul2)), 0);
}

}  // namespace
}  // namespace oib
