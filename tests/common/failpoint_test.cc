#include "common/failpoint.h"

#include <gtest/gtest.h>

namespace oib {
namespace {

Status GuardedOp() {
  OIB_FAIL_POINT("test.point");
  return Status::OK();
}

TEST(FailPointTest, DisarmedIsNoop) {
  FailPointRegistry::Instance().Reset();
  EXPECT_TRUE(GuardedOp().ok());
}

TEST(FailPointTest, FiresOnce) {
  FailPointRegistry::Instance().Reset();
  FailPointRegistry::Instance().Arm("test.point");
  EXPECT_TRUE(GuardedOp().IsInjected());
  // Fires once, then disarms.
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(FailPointRegistry::Instance().fired_count(), 1);
}

TEST(FailPointTest, Countdown) {
  FailPointRegistry::Instance().Reset();
  FailPointRegistry::Instance().Arm("test.point", 2);
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().IsInjected());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST(FailPointTest, Disarm) {
  FailPointRegistry::Instance().Reset();
  FailPointRegistry::Instance().Arm("test.point", 5);
  FailPointRegistry::Instance().Disarm("test.point");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(GuardedOp().ok());
}

}  // namespace
}  // namespace oib
