#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <vector>

namespace oib {
namespace {

Status GuardedOp() {
  OIB_FAIL_POINT("test.point");
  return Status::OK();
}

// An I/O-style site that can honour short/torn hits.
FailPointHit IoOp() {
  FailPointHit hit;
  OIB_FAIL_POINT_HIT("test.io_point", hit);
  return hit;
}

class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailPointRegistry::Instance().Reset(); }
  void TearDown() override { FailPointRegistry::Instance().Reset(); }
};

TEST_F(FailPointTest, DisarmedIsNoop) { EXPECT_TRUE(GuardedOp().ok()); }

TEST_F(FailPointTest, FiresOnce) {
  FailPointRegistry::Instance().Arm("test.point");
  EXPECT_TRUE(GuardedOp().IsInjected());
  // Fires once, then disarms.
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_EQ(FailPointRegistry::Instance().fired_count(), 1);
}

TEST_F(FailPointTest, Countdown) {
  FailPointRegistry::Instance().Arm("test.point", 2);
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().ok());
  EXPECT_TRUE(GuardedOp().IsInjected());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(FailPointTest, Disarm) {
  FailPointRegistry::Instance().Arm("test.point", 5);
  FailPointRegistry::Instance().Disarm("test.point");
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(FailPointTest, ArmingOnePointLeavesOthersCheap) {
  FailPointRegistry::Instance().Arm("some.other.point", 0);
  // test.point's own flag stays clear, so the site never takes a lock.
  EXPECT_FALSE(
      FailPointRegistry::Instance().GetOrCreate("test.point")->armed());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(FailPointTest, UnlimitedFires) {
  FailPointPolicy policy;
  policy.max_fires = -1;
  FailPointRegistry::Instance().ArmPolicy("test.point", policy);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(GuardedOp().IsInjected());
  EXPECT_EQ(FailPointRegistry::Instance().fired_count(), 5);
}

TEST_F(FailPointTest, ShortAndTornHitsCarryArg) {
  FailPointPolicy policy;
  policy.action = FailPointAction::kShortWrite;
  policy.arg = 512;
  FailPointRegistry::Instance().ArmPolicy("test.io_point", policy);
  FailPointHit hit = IoOp();
  EXPECT_EQ(hit.action, FailPointAction::kShortWrite);
  EXPECT_EQ(hit.arg, 512u);
  // Disarmed after max_fires=1.
  EXPECT_EQ(IoOp().action, FailPointAction::kOff);

  policy.action = FailPointAction::kTornWrite;
  policy.arg = 17;
  FailPointRegistry::Instance().ArmPolicy("test.io_point", policy);
  hit = IoOp();
  EXPECT_EQ(hit.action, FailPointAction::kTornWrite);
  EXPECT_EQ(hit.arg, 17u);
}

TEST_F(FailPointTest, ShortWriteAtGenericSiteIsInjected) {
  // A generic (non-I/O) site cannot honour a partial write, so the hit
  // degrades to a plain injected error.
  FailPointPolicy policy;
  policy.action = FailPointAction::kShortWrite;
  FailPointRegistry::Instance().ArmPolicy("test.point", policy);
  EXPECT_TRUE(GuardedOp().IsInjected());
}

TEST_F(FailPointTest, SeededProbabilityIsReproducible) {
  auto run = [](uint64_t seed) {
    FailPointRegistry::Instance().Reset();
    FailPointRegistry::Instance().SetSeed(seed);
    FailPointPolicy policy;
    policy.probability = 0.3;
    policy.max_fires = -1;
    FailPointRegistry::Instance().ArmPolicy("test.point", policy);
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) fires.push_back(GuardedOp().IsInjected());
    return fires;
  };
  std::vector<bool> a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 64 draws
  // p=0.3 over 64 draws: expect some hits and some misses.
  int hits = 0;
  for (bool f : a) hits += f;
  EXPECT_GT(hits, 0);
  EXPECT_LT(hits, 64);
}

TEST_F(FailPointTest, DistinctPointsDrawIndependentSequences) {
  FailPointRegistry::Instance().SetSeed(7);
  FailPointPolicy policy;
  policy.probability = 0.5;
  policy.max_fires = -1;
  FailPointRegistry::Instance().ArmPolicy("test.point", policy);
  FailPointRegistry::Instance().ArmPolicy("test.io_point", policy);
  std::vector<bool> a, b;
  for (int i = 0; i < 64; ++i) {
    a.push_back(GuardedOp().IsInjected());
    b.push_back(IoOp().action != FailPointAction::kOff);
  }
  EXPECT_NE(a, b);
}

TEST_F(FailPointTest, ConfigureFromSpec) {
  auto& reg = FailPointRegistry::Instance();
  ASSERT_TRUE(reg
                  .ConfigureFromSpec(
                      "test.point=error:count=1;"
                      "test.io_point=torn:arg=512:fires=2")
                  .ok());
  EXPECT_TRUE(GuardedOp().ok());          // countdown
  EXPECT_TRUE(GuardedOp().IsInjected());  // fires
  EXPECT_TRUE(GuardedOp().ok());          // disarmed (fires=1 default)
  EXPECT_EQ(IoOp().action, FailPointAction::kTornWrite);
  EXPECT_EQ(IoOp().arg, 512u);
  EXPECT_EQ(IoOp().action, FailPointAction::kOff);  // fires=2 exhausted

  // "off" disarms.
  reg.Arm("test.point", 100);
  ASSERT_TRUE(reg.ConfigureFromSpec("test.point=off").ok());
  EXPECT_TRUE(GuardedOp().ok());
}

TEST_F(FailPointTest, ConfigureFromSpecRejectsGarbage) {
  auto& reg = FailPointRegistry::Instance();
  EXPECT_TRUE(reg.ConfigureFromSpec("no-equals-sign").IsInvalidArgument());
  EXPECT_TRUE(reg.ConfigureFromSpec("x=explode").IsInvalidArgument());
  EXPECT_TRUE(reg.ConfigureFromSpec("x=error:count=abc").IsInvalidArgument());
  EXPECT_TRUE(reg.ConfigureFromSpec("x=error:p=1.5").IsInvalidArgument());
  EXPECT_TRUE(reg.ConfigureFromSpec("x=error:bogus=1").IsInvalidArgument());
  EXPECT_TRUE(reg.ConfigureFromSpec("=error").IsInvalidArgument());
}

TEST_F(FailPointTest, ArmedNamesAndPerPointCounts) {
  auto& reg = FailPointRegistry::Instance();
  reg.Arm("test.point", 0);
  std::vector<std::string> armed = reg.ArmedNames();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0], "test.point");
  EXPECT_TRUE(GuardedOp().IsInjected());
  EXPECT_TRUE(reg.ArmedNames().empty());
  EXPECT_EQ(reg.fired_count("test.point"), 1);
  EXPECT_EQ(reg.fired_count("never.created"), 0);
}

TEST_F(FailPointTest, LegacyCheckRuntimeName) {
  auto& reg = FailPointRegistry::Instance();
  std::string name = "runtime.name";
  EXPECT_FALSE(reg.Check(name));
  reg.Arm(name, 1);
  EXPECT_FALSE(reg.Check(name));
  EXPECT_TRUE(reg.Check(name));
  EXPECT_FALSE(reg.Check(name));
}

}  // namespace
}  // namespace oib
