#include "common/status.h"

#include <gtest/gtest.h>

namespace oib {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CodesAndMessages) {
  Status s = Status::NotFound("missing row");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: missing row");

  EXPECT_TRUE(Status::DuplicateKey().IsDuplicateKey());
  EXPECT_TRUE(Status::UniqueViolation().IsUniqueViolation());
  EXPECT_TRUE(Status::Busy().IsBusy());
  EXPECT_TRUE(Status::Aborted().IsAborted());
  EXPECT_TRUE(Status::Injected().IsInjected());
  EXPECT_TRUE(Status::Corruption().IsCorruption());
}

Status Fails() { return Status::IoError("disk on fire"); }
Status Propagates() {
  OIB_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates().IsIoError());
}

StatusOr<int> GiveValue() { return 42; }
StatusOr<int> GiveError() { return Status::NotFound("nope"); }

TEST(StatusOrTest, ValueAndError) {
  auto v = GiveValue();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);

  auto e = GiveError();
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsNotFound());
}

StatusOr<std::string> Compose() {
  OIB_ASSIGN_OR_RETURN(int v, GiveValue());
  return std::to_string(v);
}

TEST(StatusOrTest, AssignOrReturn) {
  auto r = Compose();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "42");
}

}  // namespace
}  // namespace oib
