// Compile-only smoke file for scripts/check_thread_safety.py.
//
// Never linked into any target.  Compiled twice by the script under
// clang -Werror=thread-safety: once with OIB_SMOKE_THREAD_SAFETY_VIOLATION
// defined (must FAIL — a guarded field is touched without its mutex) and
// once without (must pass).  If the seeded build ever compiles cleanly,
// the thread-safety gate has stopped analyzing our annotations.

#include "common/sync.h"

namespace oib {
namespace {

class SmokeCounter {
 public:
  void Increment() {
    sync::MutexLock g(&mu_);
    ++value_;
  }

  int Get() {
#ifdef OIB_SMOKE_THREAD_SAFETY_VIOLATION
    // Seeded violation: reading value_ without holding mu_.
    return value_;
#else
    sync::MutexLock g(&mu_);
    return value_;
#endif
  }

 private:
  sync::Mutex mu_{sync::LockRank::kObs, "smoke.mu"};
  int value_ OIB_GUARDED_BY(mu_) = 0;
};

// Odr-use the class so the analysis runs over the member functions.
[[maybe_unused]] int SmokeUse() {
  SmokeCounter c;
  c.Increment();
  return c.Get();
}

}  // namespace
}  // namespace oib
