#include "common/random.h"

#include <gtest/gtest.h>

#include <map>

namespace oib {
namespace {

TEST(RandomTest, Deterministic) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Range(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(99);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_GT(hits, 2500);
  EXPECT_LT(hits, 3500);
}

TEST(RandomTest, NextStringAlphanumeric) {
  Random r(5);
  std::string s = r.NextString(64);
  EXPECT_EQ(s.size(), 64u);
  for (char c : s) EXPECT_TRUE(isalnum(static_cast<unsigned char>(c)));
}

TEST(ZipfTest, SkewsTowardLowIds) {
  ZipfGenerator zipf(1000, 0.9, 7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // The most popular item should be drawn far more often than a uniform
  // draw would suggest (20 expected uniform).
  int max_count = 0;
  for (auto& [k, c] : counts) {
    (void)k;
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 200);
}

}  // namespace
}  // namespace oib
