// Tests for the ranked-mutex layer (common/sync.h).
//
// The interesting assertions are death tests: the runtime rank checker
// aborts the process on lock-discipline violations, so each violation runs
// in a forked child via EXPECT_DEATH and we match the diagnostic, which
// must name BOTH mutexes involved.  The checker is only compiled into
// debug builds (or with OIB_FORCE_RANK_CHECK); in release builds the
// death tests skip and only the pass-through behaviour is exercised.

#include "common/sync.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "gtest/gtest.h"

namespace oib {
namespace sync {
namespace {

#define SKIP_IF_NO_RANK_CHECK()                                     \
  do {                                                              \
    if (!RankCheckActive()) {                                       \
      GTEST_SKIP() << "rank checker compiled out (release build)";  \
    }                                                               \
  } while (0)

TEST(SyncTest, LockUnlockRoundTrip) {
  Mutex mu(LockRank::kObs, "test.roundtrip");
  mu.Lock();
  mu.Unlock();
  MutexLock g(&mu);
}

TEST(SyncTest, AscendingRanksNest) {
  Mutex outer(LockRank::kBuildPlan, "test.outer");
  Mutex mid(LockRank::kCatalog, "test.mid");
  Mutex inner(LockRank::kObs, "test.inner");
  MutexLock a(&outer);
  MutexLock b(&mid);
  MutexLock c(&inner);
}

TEST(SyncTest, SharedMutexReadersShare) {
  SharedMutex mu(LockRank::kCatalog, "test.shared");
  mu.LockShared();
  std::atomic<bool> got{false};
  std::thread t([&] {
    ReaderMutexLock g(&mu);
    got.store(true);
  });
  t.join();
  EXPECT_TRUE(got.load());
  mu.UnlockShared();
  WriterMutexLock w(&mu);
}

TEST(SyncTest, TryLockReportsContention) {
  Mutex mu(LockRank::kObs, "test.try");
  {
    TryMutexLock g(&mu);
    ASSERT_TRUE(g.owns_lock());
    std::atomic<bool> other_got{true};
    std::thread t([&] {
      TryMutexLock h(&mu);
      other_got.store(h.owns_lock());
    });
    t.join();
    EXPECT_FALSE(other_got.load());
  }
  TryMutexLock again(&mu);
  EXPECT_TRUE(again.owns_lock());
}

TEST(SyncTest, MovableUniqueLockTransfersOwnership) {
  SharedMutex mu(LockRank::kDrainGate, "test.movable");
  UniqueLock a(&mu);
  EXPECT_TRUE(a.owns_lock());
  UniqueLock b(std::move(a));
  EXPECT_FALSE(a.owns_lock());
  EXPECT_TRUE(b.owns_lock());
  b.Release();
  EXPECT_FALSE(b.owns_lock());
  // Releasable again without effect, and the mutex is free.
  b.Release();
  WriterMutexLock w(&mu);
}

TEST(SyncTest, MovableSharedLockTransfersOwnership) {
  SharedMutex mu(LockRank::kDrainGate, "test.movable.shared");
  SharedLock a(&mu);
  SharedLock b(std::move(a));
  EXPECT_FALSE(a.owns_lock());
  EXPECT_TRUE(b.owns_lock());
  b.Release();
  WriterMutexLock w(&mu);
}

// ---- runtime rank checker ----

TEST(SyncDeathTest, OutOfOrderAcquisitionAbortsNamingBothMutexes) {
  SKIP_IF_NO_RANK_CHECK();
  Mutex high(LockRank::kWalFlush, "test.held_high");
  Mutex low(LockRank::kBufferShard, "test.acquired_low");
  MutexLock g(&high);
  // The diagnostic must name the acquired mutex AND the held one.
  EXPECT_DEATH({ MutexLock h(&low); },
               "test\\.acquired_low.*test\\.held_high");
}

TEST(SyncDeathTest, EqualRankNonNestableAborts) {
  SKIP_IF_NO_RANK_CHECK();
  Mutex a(LockRank::kCatalog, "test.rank_a");
  Mutex b(LockRank::kCatalog, "test.rank_b");
  MutexLock g(&a);
  EXPECT_DEATH({ MutexLock h(&b); }, "test\\.rank_b.*test\\.rank_a");
}

TEST(SyncDeathTest, RecursiveAcquisitionAborts) {
  SKIP_IF_NO_RANK_CHECK();
  Mutex mu(LockRank::kObs, "test.recursive");
  MutexLock g(&mu);
  EXPECT_DEATH({ mu.Lock(); }, "test\\.recursive");
}

TEST(SyncDeathTest, RecursiveTryLockAborts) {
  SKIP_IF_NO_RANK_CHECK();
  // Same-thread TryLock on a held std::mutex is UB, so the checker must
  // abort even though try-locks are exempt from the order check.
  Mutex mu(LockRank::kObs, "test.recursive_try");
  MutexLock g(&mu);
  EXPECT_DEATH({ TryMutexLock h(&mu); }, "test\\.recursive_try");
}

TEST(SyncDeathTest, ReleasingUnheldMutexAborts) {
  SKIP_IF_NO_RANK_CHECK();
  Mutex mu(LockRank::kObs, "test.not_held");
  EXPECT_DEATH({ mu.Unlock(); }, "test\\.not_held.*not held");
}

TEST(SyncTest, TryLockSkipsOrderCheck) {
  SKIP_IF_NO_RANK_CHECK();
  // A successful try-lock against rank order must NOT abort: it cannot
  // deadlock (failure is an immediate return, not a wait).
  Mutex high(LockRank::kWalFlush, "test.try_high");
  Mutex low(LockRank::kBufferShard, "test.try_low");
  MutexLock g(&high);
  TryMutexLock h(&low);
  EXPECT_TRUE(h.owns_lock());
}

TEST(SyncDeathTest, TryLockStillPushesForLaterChecks) {
  SKIP_IF_NO_RANK_CHECK();
  // A try-acquired mutex joins the held stack: blocking acquisitions
  // under it are still rank-checked.
  Mutex high(LockRank::kWalFlush, "test.pushed_high");
  Mutex low(LockRank::kBufferShard, "test.pushed_low");
  TryMutexLock g(&high);
  ASSERT_TRUE(g.owns_lock());
  EXPECT_DEATH({ MutexLock h(&low); },
               "test\\.pushed_low.*test\\.pushed_high");
}

TEST(SyncTest, PageLatchRankIsNestable) {
  SKIP_IF_NO_RANK_CHECK();
  // Crabbing: parent and child page latches are held together at the
  // same rank.
  SharedMutex parent(LockRank::kPageLatch, "test.page_parent");
  SharedMutex child(LockRank::kPageLatch, "test.page_child");
  parent.Lock();
  child.Lock();
  parent.Unlock();  // out-of-LIFO, like latch crabbing releases
  child.Unlock();
}

TEST(SyncTest, ExemptRankSkipsCheckInBothDirections) {
  SKIP_IF_NO_RANK_CHECK();
  // The SF drain gate (rank kDrainGate, exempt) is taken shared under a
  // page latch on the update path, and page latches are taken under the
  // gate on the drain path.  Neither direction may abort.
  SharedMutex gate(LockRank::kDrainGate, "test.gate");
  SharedMutex latch(LockRank::kPageLatch, "test.page");
  {
    latch.Lock();
    gate.LockShared();  // gate under latch
    latch.Unlock();
    gate.UnlockShared();
  }
  {
    gate.Lock();
    latch.Lock();  // latch under gate
    latch.Unlock();
    gate.Unlock();
  }
  // Same shape for the side-file extension mutex: the Figure 2 undo hook
  // takes it under a data-page latch, and ExtendChain latches side-file
  // pages under it.
  Mutex extend(LockRank::kSideFileExtend, "test.extend");
  {
    latch.Lock();
    extend.Lock();  // extend under latch
    latch.Unlock();
  }
  {
    latch.Lock();  // latch under extend
    latch.Unlock();
    extend.Unlock();
  }
}

TEST(SyncTest, OutOfLifoReleaseIsSupported) {
  SKIP_IF_NO_RANK_CHECK();
  // Release order need not mirror acquisition order (e.g. a page latch
  // released while an outer mutex stays held); removal is by identity.
  Mutex a(LockRank::kBuildPlan, "test.lifo_a");
  Mutex b(LockRank::kCatalog, "test.lifo_b");
  Mutex c(LockRank::kObs, "test.lifo_c");
  a.Lock();
  b.Lock();
  c.Lock();
  b.Unlock();
  a.Unlock();
  c.Unlock();
}

TEST(SyncTest, CondVarWaitReleasesAndReacquiresRankSlot) {
  SKIP_IF_NO_RANK_CHECK();
  // While a thread waits, the mutex must not count as held (another
  // thread takes it to set the predicate); after wake-up it must count
  // as held again (an in-order acquisition under it still works).
  Mutex mu(LockRank::kLockTable, "test.cv_mu");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock g(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock g(&mu);
    cv.Wait(mu, [&] { return ready; });
    Mutex inner(LockRank::kObs, "test.cv_inner");
    MutexLock h(&inner);  // mu is on the stack again; kObs > kLockTable
  }
  waker.join();
}

TEST(SyncDeathTest, CondVarWakeupRestoresRankChecking) {
  SKIP_IF_NO_RANK_CHECK();
  // The waker thread may still be live at fork time.
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(LockRank::kLockTable, "test.cv_restored");
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    MutexLock g(&mu);
    ready = true;
    cv.NotifyAll();
  });
  {
    MutexLock g(&mu);
    cv.Wait(mu, [&] { return ready; });
    Mutex lower(LockRank::kBufferShard, "test.cv_lower");
    EXPECT_DEATH({ MutexLock h(&lower); },
                 "test\\.cv_lower.*test\\.cv_restored");
  }
  waker.join();
}

TEST(SyncTest, RankNamesCoverEveryRank) {
  // LockRankName must never fall through to a numeric placeholder for a
  // rank used in the tree — the abort diagnostic depends on it.
  for (LockRank r : {LockRank::kBuildPlan, LockRank::kDrainGate,
                     LockRank::kHeapExtend, LockRank::kSideFileExtend,
                     LockRank::kTxnActive, LockRank::kPageLatch,
                     LockRank::kBufferShard, LockRank::kRecordBuilds,
                     LockRank::kCatalog, LockRank::kHeapHints,
                     LockRank::kSideFileCount, LockRank::kLockTable,
                     LockRank::kWalFlush, LockRank::kWalDrain,
                     LockRank::kRunStore, LockRank::kMergeQueue,
                     LockRank::kDisk, LockRank::kFailPoint,
                     LockRank::kObs}) {
    EXPECT_STRNE(LockRankName(r), "?") << static_cast<int>(r);
  }
}

}  // namespace
}  // namespace sync
}  // namespace oib
