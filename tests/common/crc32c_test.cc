#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace oib {
namespace {

TEST(Crc32cTest, StandardVectors) {
  // RFC 3720 / iSCSI test vectors (Castagnoli polynomial).
  char zeros[32] = {};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);

  char ones[32];
  for (char& c : ones) c = char(0xff);
  EXPECT_EQ(crc32c::Value(ones, sizeof(ones)), 0x62a8ab43u);

  char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = char(i);
  EXPECT_EQ(crc32c::Value(ascending, sizeof(ascending)), 0x46dd794eu);

  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendMatchesWholeBuffer) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data.push_back(char(i * 37 + i / 7));
  uint32_t whole = crc32c::Value(data.data(), data.size());
  // Any split point must give the same result (including unaligned ones
  // that exercise the hardware path's head/tail loops).
  for (size_t split : {size_t(0), size_t(1), size_t(7), size_t(63),
                       size_t(512), data.size()}) {
    uint32_t crc = crc32c::Extend(0, data.data(), split);
    crc = crc32c::Extend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndChangesValue) {
  for (uint32_t crc : {0u, 1u, 0xdeadbeefu, 0xffffffffu,
                       crc32c::Value("123456789", 9)}) {
    uint32_t masked = crc32c::Mask(crc);
    EXPECT_NE(masked, crc);
    EXPECT_EQ(crc32c::Unmask(masked), crc);
    // Double-masking must not be the identity either.
    EXPECT_NE(crc32c::Mask(masked), crc);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::string data(4096, '\0');
  for (size_t i = 0; i < data.size(); ++i) data[i] = char(i * 131 + 17);
  uint32_t good = crc32c::Value(data.data(), data.size());
  for (size_t byte : {size_t(0), size_t(100), data.size() - 1}) {
    std::string bad = data;
    bad[byte] = char(bad[byte] ^ 0x40);
    EXPECT_NE(crc32c::Value(bad.data(), bad.size()), good);
  }
}

}  // namespace
}  // namespace oib
