#include "common/coding.h"

#include <gtest/gtest.h>

namespace oib {
namespace {

TEST(CodingTest, FixedWidthRoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0xBEEF);
  PutFixed32(&buf, 0xDEADBEEFu);
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  BufferReader r(buf);
  uint16_t v16;
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(r.GetFixed16(&v16));
  ASSERT_TRUE(r.GetFixed32(&v32));
  ASSERT_TRUE(r.GetFixed64(&v64));
  EXPECT_EQ(v16, 0xBEEF);
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.empty());
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  BufferReader r(buf);
  std::string a, b, c;
  ASSERT_TRUE(r.GetLengthPrefixed(&a));
  ASSERT_TRUE(r.GetLengthPrefixed(&b));
  ASSERT_TRUE(r.GetLengthPrefixed(&c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'x'));
  EXPECT_TRUE(r.empty());
}

TEST(CodingTest, TruncationDetected) {
  std::string buf;
  PutFixed32(&buf, 7);
  buf.resize(2);
  BufferReader r(buf);
  uint32_t v;
  EXPECT_FALSE(r.GetFixed32(&v));
}

TEST(CodingTest, LengthPrefixTruncationDoesNotAdvance) {
  std::string buf;
  PutFixed32(&buf, 100);  // claims 100 bytes follow
  buf.append("short");
  BufferReader r(buf);
  std::string out;
  EXPECT_FALSE(r.GetLengthPrefixed(&out));
  // Cursor restored: the length word can be re-read.
  uint32_t len;
  EXPECT_TRUE(r.GetFixed32(&len));
  EXPECT_EQ(len, 100u);
}

TEST(CodingTest, ByteAndSkip) {
  std::string buf = "abcdef";
  BufferReader r(buf);
  uint8_t b;
  ASSERT_TRUE(r.GetByte(&b));
  EXPECT_EQ(b, 'a');
  ASSERT_TRUE(r.Skip(3));
  ASSERT_TRUE(r.GetByte(&b));
  EXPECT_EQ(b, 'e');
  EXPECT_FALSE(r.Skip(5));
}

}  // namespace
}  // namespace oib
