file(REMOVE_RECURSE
  "CMakeFiles/bulk_loader_test.dir/btree/bulk_loader_test.cc.o"
  "CMakeFiles/bulk_loader_test.dir/btree/bulk_loader_test.cc.o.d"
  "bulk_loader_test"
  "bulk_loader_test.pdb"
  "bulk_loader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
