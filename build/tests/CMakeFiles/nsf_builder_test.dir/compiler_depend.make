# Empty compiler generated dependencies file for nsf_builder_test.
# This may be replaced when dependencies are built.
