file(REMOVE_RECURSE
  "CMakeFiles/nsf_builder_test.dir/core/nsf_builder_test.cc.o"
  "CMakeFiles/nsf_builder_test.dir/core/nsf_builder_test.cc.o.d"
  "nsf_builder_test"
  "nsf_builder_test.pdb"
  "nsf_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsf_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
