# Empty dependencies file for tree_verifier_test.
# This may be replaced when dependencies are built.
