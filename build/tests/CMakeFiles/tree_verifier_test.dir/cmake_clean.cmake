file(REMOVE_RECURSE
  "CMakeFiles/tree_verifier_test.dir/btree/tree_verifier_test.cc.o"
  "CMakeFiles/tree_verifier_test.dir/btree/tree_verifier_test.cc.o.d"
  "tree_verifier_test"
  "tree_verifier_test.pdb"
  "tree_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
