file(REMOVE_RECURSE
  "CMakeFiles/file_disk_test.dir/storage/file_disk_test.cc.o"
  "CMakeFiles/file_disk_test.dir/storage/file_disk_test.cc.o.d"
  "file_disk_test"
  "file_disk_test.pdb"
  "file_disk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
