# Empty dependencies file for file_disk_test.
# This may be replaced when dependencies are built.
