file(REMOVE_RECURSE
  "CMakeFiles/sorter_test.dir/sort/sorter_test.cc.o"
  "CMakeFiles/sorter_test.dir/sort/sorter_test.cc.o.d"
  "sorter_test"
  "sorter_test.pdb"
  "sorter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
