# Empty dependencies file for sorter_test.
# This may be replaced when dependencies are built.
