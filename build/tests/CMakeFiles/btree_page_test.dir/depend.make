# Empty dependencies file for btree_page_test.
# This may be replaced when dependencies are built.
