file(REMOVE_RECURSE
  "CMakeFiles/btree_page_test.dir/btree/btree_page_test.cc.o"
  "CMakeFiles/btree_page_test.dir/btree/btree_page_test.cc.o.d"
  "btree_page_test"
  "btree_page_test.pdb"
  "btree_page_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
