file(REMOVE_RECURSE
  "CMakeFiles/sf_builder_test.dir/core/sf_builder_test.cc.o"
  "CMakeFiles/sf_builder_test.dir/core/sf_builder_test.cc.o.d"
  "sf_builder_test"
  "sf_builder_test.pdb"
  "sf_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sf_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
