# Empty compiler generated dependencies file for sf_builder_test.
# This may be replaced when dependencies are built.
