file(REMOVE_RECURSE
  "CMakeFiles/offline_builder_test.dir/core/offline_builder_test.cc.o"
  "CMakeFiles/offline_builder_test.dir/core/offline_builder_test.cc.o.d"
  "offline_builder_test"
  "offline_builder_test.pdb"
  "offline_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
