# Empty dependencies file for offline_builder_test.
# This may be replaced when dependencies are built.
