file(REMOVE_RECURSE
  "CMakeFiles/record_manager_test.dir/core/record_manager_test.cc.o"
  "CMakeFiles/record_manager_test.dir/core/record_manager_test.cc.o.d"
  "record_manager_test"
  "record_manager_test.pdb"
  "record_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
