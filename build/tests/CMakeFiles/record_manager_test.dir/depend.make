# Empty dependencies file for record_manager_test.
# This may be replaced when dependencies are built.
