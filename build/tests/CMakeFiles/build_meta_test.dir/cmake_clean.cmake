file(REMOVE_RECURSE
  "CMakeFiles/build_meta_test.dir/core/build_meta_test.cc.o"
  "CMakeFiles/build_meta_test.dir/core/build_meta_test.cc.o.d"
  "build_meta_test"
  "build_meta_test.pdb"
  "build_meta_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_meta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
