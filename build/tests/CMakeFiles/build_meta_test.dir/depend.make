# Empty dependencies file for build_meta_test.
# This may be replaced when dependencies are built.
