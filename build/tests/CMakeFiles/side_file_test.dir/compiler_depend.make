# Empty compiler generated dependencies file for side_file_test.
# This may be replaced when dependencies are built.
