file(REMOVE_RECURSE
  "CMakeFiles/side_file_test.dir/sidefile/side_file_test.cc.o"
  "CMakeFiles/side_file_test.dir/sidefile/side_file_test.cc.o.d"
  "side_file_test"
  "side_file_test.pdb"
  "side_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/side_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
