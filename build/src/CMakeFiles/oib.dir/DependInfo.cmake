
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cc" "src/CMakeFiles/oib.dir/btree/btree.cc.o" "gcc" "src/CMakeFiles/oib.dir/btree/btree.cc.o.d"
  "/root/repo/src/btree/btree_page.cc" "src/CMakeFiles/oib.dir/btree/btree_page.cc.o" "gcc" "src/CMakeFiles/oib.dir/btree/btree_page.cc.o.d"
  "/root/repo/src/btree/bulk_loader.cc" "src/CMakeFiles/oib.dir/btree/bulk_loader.cc.o" "gcc" "src/CMakeFiles/oib.dir/btree/bulk_loader.cc.o.d"
  "/root/repo/src/btree/tree_verifier.cc" "src/CMakeFiles/oib.dir/btree/tree_verifier.cc.o" "gcc" "src/CMakeFiles/oib.dir/btree/tree_verifier.cc.o.d"
  "/root/repo/src/common/coding.cc" "src/CMakeFiles/oib.dir/common/coding.cc.o" "gcc" "src/CMakeFiles/oib.dir/common/coding.cc.o.d"
  "/root/repo/src/common/failpoint.cc" "src/CMakeFiles/oib.dir/common/failpoint.cc.o" "gcc" "src/CMakeFiles/oib.dir/common/failpoint.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/oib.dir/common/random.cc.o" "gcc" "src/CMakeFiles/oib.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/oib.dir/common/status.cc.o" "gcc" "src/CMakeFiles/oib.dir/common/status.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/CMakeFiles/oib.dir/core/catalog.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/catalog.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/oib.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/engine.cc.o.d"
  "/root/repo/src/core/index_builder.cc" "src/CMakeFiles/oib.dir/core/index_builder.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/index_builder.cc.o.d"
  "/root/repo/src/core/index_verifier.cc" "src/CMakeFiles/oib.dir/core/index_verifier.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/index_verifier.cc.o.d"
  "/root/repo/src/core/nsf_builder.cc" "src/CMakeFiles/oib.dir/core/nsf_builder.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/nsf_builder.cc.o.d"
  "/root/repo/src/core/offline_builder.cc" "src/CMakeFiles/oib.dir/core/offline_builder.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/offline_builder.cc.o.d"
  "/root/repo/src/core/pseudo_delete_gc.cc" "src/CMakeFiles/oib.dir/core/pseudo_delete_gc.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/pseudo_delete_gc.cc.o.d"
  "/root/repo/src/core/record_manager.cc" "src/CMakeFiles/oib.dir/core/record_manager.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/record_manager.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/CMakeFiles/oib.dir/core/schema.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/schema.cc.o.d"
  "/root/repo/src/core/sf_builder.cc" "src/CMakeFiles/oib.dir/core/sf_builder.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/sf_builder.cc.o.d"
  "/root/repo/src/core/workload.cc" "src/CMakeFiles/oib.dir/core/workload.cc.o" "gcc" "src/CMakeFiles/oib.dir/core/workload.cc.o.d"
  "/root/repo/src/heap/heap_file.cc" "src/CMakeFiles/oib.dir/heap/heap_file.cc.o" "gcc" "src/CMakeFiles/oib.dir/heap/heap_file.cc.o.d"
  "/root/repo/src/heap/slotted_page.cc" "src/CMakeFiles/oib.dir/heap/slotted_page.cc.o" "gcc" "src/CMakeFiles/oib.dir/heap/slotted_page.cc.o.d"
  "/root/repo/src/sidefile/side_file.cc" "src/CMakeFiles/oib.dir/sidefile/side_file.cc.o" "gcc" "src/CMakeFiles/oib.dir/sidefile/side_file.cc.o.d"
  "/root/repo/src/sort/external_sorter.cc" "src/CMakeFiles/oib.dir/sort/external_sorter.cc.o" "gcc" "src/CMakeFiles/oib.dir/sort/external_sorter.cc.o.d"
  "/root/repo/src/sort/run.cc" "src/CMakeFiles/oib.dir/sort/run.cc.o" "gcc" "src/CMakeFiles/oib.dir/sort/run.cc.o.d"
  "/root/repo/src/sort/tournament_tree.cc" "src/CMakeFiles/oib.dir/sort/tournament_tree.cc.o" "gcc" "src/CMakeFiles/oib.dir/sort/tournament_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/oib.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/oib.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_manager.cc" "src/CMakeFiles/oib.dir/storage/disk_manager.cc.o" "gcc" "src/CMakeFiles/oib.dir/storage/disk_manager.cc.o.d"
  "/root/repo/src/txn/lock_manager.cc" "src/CMakeFiles/oib.dir/txn/lock_manager.cc.o" "gcc" "src/CMakeFiles/oib.dir/txn/lock_manager.cc.o.d"
  "/root/repo/src/txn/transaction_manager.cc" "src/CMakeFiles/oib.dir/txn/transaction_manager.cc.o" "gcc" "src/CMakeFiles/oib.dir/txn/transaction_manager.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/oib.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/oib.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/oib.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/oib.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/recovery.cc" "src/CMakeFiles/oib.dir/wal/recovery.cc.o" "gcc" "src/CMakeFiles/oib.dir/wal/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
