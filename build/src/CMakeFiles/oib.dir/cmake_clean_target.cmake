file(REMOVE_RECURSE
  "liboib.a"
)
