# Empty dependencies file for oib.
# This may be replaced when dependencies are built.
