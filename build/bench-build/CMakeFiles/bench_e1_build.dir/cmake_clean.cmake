file(REMOVE_RECURSE
  "../bench/bench_e1_build"
  "../bench/bench_e1_build.pdb"
  "CMakeFiles/bench_e1_build.dir/bench_e1_build.cc.o"
  "CMakeFiles/bench_e1_build.dir/bench_e1_build.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
