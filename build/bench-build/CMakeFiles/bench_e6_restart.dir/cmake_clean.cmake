file(REMOVE_RECURSE
  "../bench/bench_e6_restart"
  "../bench/bench_e6_restart.pdb"
  "CMakeFiles/bench_e6_restart.dir/bench_e6_restart.cc.o"
  "CMakeFiles/bench_e6_restart.dir/bench_e6_restart.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
