file(REMOVE_RECURSE
  "../bench/bench_e8_multi_index"
  "../bench/bench_e8_multi_index.pdb"
  "CMakeFiles/bench_e8_multi_index.dir/bench_e8_multi_index.cc.o"
  "CMakeFiles/bench_e8_multi_index.dir/bench_e8_multi_index.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_multi_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
