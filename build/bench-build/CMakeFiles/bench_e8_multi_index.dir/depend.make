# Empty dependencies file for bench_e8_multi_index.
# This may be replaced when dependencies are built.
