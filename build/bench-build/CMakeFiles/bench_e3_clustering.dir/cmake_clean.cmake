file(REMOVE_RECURSE
  "../bench/bench_e3_clustering"
  "../bench/bench_e3_clustering.pdb"
  "CMakeFiles/bench_e3_clustering.dir/bench_e3_clustering.cc.o"
  "CMakeFiles/bench_e3_clustering.dir/bench_e3_clustering.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
