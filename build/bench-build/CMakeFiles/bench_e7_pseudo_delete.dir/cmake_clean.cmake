file(REMOVE_RECURSE
  "../bench/bench_e7_pseudo_delete"
  "../bench/bench_e7_pseudo_delete.pdb"
  "CMakeFiles/bench_e7_pseudo_delete.dir/bench_e7_pseudo_delete.cc.o"
  "CMakeFiles/bench_e7_pseudo_delete.dir/bench_e7_pseudo_delete.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_pseudo_delete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
