# Empty compiler generated dependencies file for bench_e7_pseudo_delete.
# This may be replaced when dependencies are built.
