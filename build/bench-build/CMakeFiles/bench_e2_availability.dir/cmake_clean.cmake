file(REMOVE_RECURSE
  "../bench/bench_e2_availability"
  "../bench/bench_e2_availability.pdb"
  "CMakeFiles/bench_e2_availability.dir/bench_e2_availability.cc.o"
  "CMakeFiles/bench_e2_availability.dir/bench_e2_availability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
