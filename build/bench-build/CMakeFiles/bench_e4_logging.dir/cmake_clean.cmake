file(REMOVE_RECURSE
  "../bench/bench_e4_logging"
  "../bench/bench_e4_logging.pdb"
  "CMakeFiles/bench_e4_logging.dir/bench_e4_logging.cc.o"
  "CMakeFiles/bench_e4_logging.dir/bench_e4_logging.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
