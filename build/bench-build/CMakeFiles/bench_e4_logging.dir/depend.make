# Empty dependencies file for bench_e4_logging.
# This may be replaced when dependencies are built.
