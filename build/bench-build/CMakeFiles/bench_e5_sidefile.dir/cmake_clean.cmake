file(REMOVE_RECURSE
  "../bench/bench_e5_sidefile"
  "../bench/bench_e5_sidefile.pdb"
  "CMakeFiles/bench_e5_sidefile.dir/bench_e5_sidefile.cc.o"
  "CMakeFiles/bench_e5_sidefile.dir/bench_e5_sidefile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_sidefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
