file(REMOVE_RECURSE
  "CMakeFiles/crash_restart.dir/crash_restart.cpp.o"
  "CMakeFiles/crash_restart.dir/crash_restart.cpp.o.d"
  "crash_restart"
  "crash_restart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_restart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
