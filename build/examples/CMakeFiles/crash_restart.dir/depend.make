# Empty dependencies file for crash_restart.
# This may be replaced when dependencies are built.
