# Empty compiler generated dependencies file for online_reindex.
# This may be replaced when dependencies are built.
