file(REMOVE_RECURSE
  "CMakeFiles/online_reindex.dir/online_reindex.cpp.o"
  "CMakeFiles/online_reindex.dir/online_reindex.cpp.o.d"
  "online_reindex"
  "online_reindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_reindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
