#include "sort/external_sorter.h"

#include <algorithm>

#include "common/coding.h"

namespace oib {

// --------------------------- RunGenerator ---------------------------

RunGenerator::RunGenerator(RunStore* store, size_t workspace_keys)
    : store_(store),
      k_(workspace_keys == 0 ? 1 : workspace_keys),
      items_(k_),
      tags_(k_, 0),
      valid_(k_, false),
      tree_(k_, [this](size_t a, size_t b) {
        // Valid sorts before invalid; ties by (tag, key, rid).  Slots at
        // or beyond k_ are power-of-two padding and always invalid.
        bool va = a < k_ && valid_[a];
        bool vb = b < k_ && valid_[b];
        if (!va) return false;
        if (!vb) return true;
        if (tags_[a] != tags_[b]) return tags_[a] < tags_[b];
        return CompareSortItem(items_[a], items_[b]) < 0;
      }) {
  free_.reserve(k_);
  for (size_t i = 0; i < k_; ++i) free_.push_back(k_ - 1 - i);
}

Status RunGenerator::EnsureRunOpen() {
  if (current_run_ == 0) {
    current_run_ = store_->CreateRun();
    runs_.push_back(current_run_);
  }
  return Status::OK();
}

Status RunGenerator::Output(size_t slot) {
  if (tags_[slot] > current_tag_) {
    // Winner belongs to the next run: close the current one.
    current_tag_ = tags_[slot];
    current_run_ = 0;
  }
  OIB_RETURN_IF_ERROR(EnsureRunOpen());
  OIB_RETURN_IF_ERROR(
      store_->Append(current_run_, items_[slot].key, items_[slot].rid));
  // Copy (not steal) into last_output_: the slot keeps its buffer
  // capacity for the item that will replace it.
  last_output_.key.Assign(items_[slot].key);
  last_output_.rid = items_[slot].rid;
  has_last_output_ = true;
  return Status::OK();
}

Status RunGenerator::Add(KeySlice key, const Rid& rid) {
  uint64_t tag = current_tag_;
  if (has_last_output_ && CompareKeyRid(key, rid, last_output_) < 0) {
    tag = current_tag_ + 1;
  }
  if (!free_.empty()) {
    size_t slot = free_.back();
    free_.pop_back();
    items_[slot].key.Assign(key);
    items_[slot].rid = rid;
    tags_[slot] = tag;
    valid_[slot] = true;
    if (free_.empty()) {
      tree_.Init();
      tree_built_ = true;
    }
    return Status::OK();
  }
  // Workspace full: emit the winner, then take its slot.
  size_t w = tree_.Winner();
  OIB_RETURN_IF_ERROR(Output(w));
  // Recompute the tag: last_output_ just changed.
  tag = current_tag_;
  if (CompareKeyRid(key, rid, last_output_) < 0) tag = current_tag_ + 1;
  items_[w].key.Assign(key);
  items_[w].rid = rid;
  tags_[w] = tag;
  tree_.Update(w);
  return Status::OK();
}

Status RunGenerator::Drain() {
  if (!tree_built_) {
    // Workspace never filled: sort what's there directly.
    std::vector<size_t> live;
    for (size_t i = 0; i < k_; ++i) {
      if (valid_[i]) live.push_back(i);
    }
    std::sort(live.begin(), live.end(), [this](size_t a, size_t b) {
      if (tags_[a] != tags_[b]) return tags_[a] < tags_[b];
      return CompareSortItem(items_[a], items_[b]) < 0;
    });
    for (size_t slot : live) {
      OIB_RETURN_IF_ERROR(Output(slot));
      valid_[slot] = false;
      free_.push_back(slot);
    }
    return Status::OK();
  }
  for (;;) {
    size_t w = tree_.Winner();
    if (!valid_[w]) break;
    OIB_RETURN_IF_ERROR(Output(w));
    valid_[w] = false;
    free_.push_back(w);
    tree_.Update(w);
  }
  tree_built_ = false;
  return Status::OK();
}

Status RunGenerator::FinishInput() {
  OIB_RETURN_IF_ERROR(Drain());
  current_run_ = 0;  // close the run
  return Status::OK();
}

void RunGenerator::Restore(std::vector<RunId> runs, RunId current_run,
                           bool has_last_output, SortItem last_output) {
  runs_ = std::move(runs);
  current_run_ = current_run;
  current_tag_ = 0;
  has_last_output_ = has_last_output;
  last_output_ = std::move(last_output);
  std::fill(valid_.begin(), valid_.end(), false);
  free_.clear();
  for (size_t i = 0; i < k_; ++i) free_.push_back(k_ - 1 - i);
  tree_built_ = false;
}

// ---------------------------- MergeCursor ----------------------------

Status MergeCursor::Init(RunStore* store, const std::vector<RunId>& runs,
                         const std::vector<uint64_t>* counters) {
  store_ = store;
  runs_ = runs;
  size_t n = runs.size();
  if (counters != nullptr && counters->size() != n) {
    return Status::InvalidArgument("counter vector size mismatch");
  }
  readers_.clear();
  items_.assign(n, {});
  valid_.assign(n, false);
  out_counts_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    readers_.push_back(std::make_unique<RunReader>(store, runs[i]));
    if (counters != nullptr) {
      OIB_RETURN_IF_ERROR(readers_[i]->SeekToItem((*counters)[i]));
      out_counts_[i] = (*counters)[i];
    }
    OIB_RETURN_IF_ERROR(Refill(i));
  }
  tree_ = std::make_unique<LoserTree>(
      n == 0 ? 1 : n, [this](size_t a, size_t b) {
        bool va = a < valid_.size() && valid_[a];
        bool vb = b < valid_.size() && valid_[b];
        if (!va) return false;
        if (!vb) return true;
        return CompareSortItem(items_[a], items_[b]) < 0;
      });
  tree_->Init();
  return Status::OK();
}

Status MergeCursor::Refill(size_t slot) {
  auto more = readers_[slot]->Read(&items_[slot]);
  if (!more.ok()) return more.status();
  valid_[slot] = *more;
  return Status::OK();
}

StatusOr<bool> MergeCursor::Next(SortItem* item) {
  if (valid_.empty()) return false;
  size_t w = tree_->Winner();
  if (w >= valid_.size() || !valid_[w]) return false;
  *item = std::move(items_[w]);
  ++out_counts_[w];
  OIB_RETURN_IF_ERROR(Refill(w));
  tree_->Update(w);
  return true;
}

// --------------------------- ExternalSorter ---------------------------

namespace {

// §5.1 checkpoint of one generator's state: drain, force the runs, record
// the run list + open run + highest output.  Shared by the sorter's
// single-stream checkpoint and the per-partition RunWriter checkpoint.
Status AppendGeneratorCheckpoint(RunStore* store, RunGenerator* gen,
                                 std::string* blob) {
  OIB_RETURN_IF_ERROR(gen->Drain());
  for (RunId id : gen->runs()) {
    OIB_RETURN_IF_ERROR(store->Flush(id));
  }
  PutFixed32(blob, static_cast<uint32_t>(gen->runs().size()));
  for (RunId id : gen->runs()) {
    auto size = store->Size(id);
    if (!size.ok()) return size.status();
    PutFixed64(blob, id);
    PutFixed64(blob, *size);
  }
  PutFixed64(blob, gen->current_run());
  blob->push_back(gen->has_last_output() ? 1 : 0);
  if (gen->has_last_output()) {
    PutLengthPrefixed(blob, gen->last_output().key.bytes());
    PutFixed32(blob, gen->last_output().rid.page);
    PutFixed16(blob, gen->last_output().rid.slot);
  }
  return Status::OK();
}

Status RestoreGeneratorCheckpoint(RunStore* store, RunGenerator* gen,
                                  BufferReader* r) {
  uint32_t n;
  if (!r->GetFixed32(&n)) return Status::Corruption("sort checkpoint blob");
  std::vector<RunId> runs;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t id, size;
    if (!r->GetFixed64(&id) || !r->GetFixed64(&size)) {
      return Status::Corruption("sort checkpoint run entry");
    }
    // Reposition the stream to its checkpointed end-of-file (5.1).
    OIB_RETURN_IF_ERROR(store->Truncate(id, size));
    runs.push_back(id);
  }
  uint64_t current_run;
  uint8_t has_last;
  if (!r->GetFixed64(&current_run) || !r->GetByte(&has_last)) {
    return Status::Corruption("sort checkpoint tail");
  }
  SortItem last;
  if (has_last != 0) {
    uint16_t slot;
    if (!r->GetLengthPrefixed(last.key.mutable_bytes()) ||
        !r->GetFixed32(&last.rid.page) || !r->GetFixed16(&slot)) {
      return Status::Corruption("sort checkpoint last key");
    }
    last.rid.slot = slot;
  }
  gen->Restore(std::move(runs), current_run, has_last != 0, std::move(last));
  return Status::OK();
}

}  // namespace

StatusOr<std::string> ExternalSorter::CheckpointSortPhase(
    const std::string& caller_state) {
  std::string blob;
  PutLengthPrefixed(&blob, caller_state);
  OIB_RETURN_IF_ERROR(AppendGeneratorCheckpoint(store_, &gen_, &blob));
  return blob;
}

StatusOr<std::string> ExternalSorter::ResumeSortPhase(
    const std::string& blob) {
  BufferReader r(blob);
  std::string caller_state;
  if (!r.GetLengthPrefixed(&caller_state)) {
    return Status::Corruption("sort checkpoint blob");
  }
  OIB_RETURN_IF_ERROR(RestoreGeneratorCheckpoint(store_, &gen_, &r));
  return caller_state;
}

StatusOr<std::string> ExternalSorter::RunWriter::Checkpoint() {
  std::string blob;
  OIB_RETURN_IF_ERROR(AppendGeneratorCheckpoint(store_, &gen_, &blob));
  return blob;
}

Status ExternalSorter::RunWriter::Resume(const std::string& blob) {
  BufferReader r(blob);
  return RestoreGeneratorCheckpoint(store_, &gen_, &r);
}

Status ExternalSorter::CreateWriters(size_t n) {
  if (n == 0) return Status::InvalidArgument("need at least one run writer");
  if (!writers_.empty()) {
    return Status::InvalidArgument("run writers already created");
  }
  for (size_t i = 0; i < n; ++i) {
    writers_.push_back(std::make_unique<RunWriter>(
        store_, options_->sort_workspace_keys));
  }
  return Status::OK();
}

Status ExternalSorter::FinishWriters() {
  std::vector<RunId> all;
  for (auto& w : writers_) {
    OIB_RETURN_IF_ERROR(w->FinishInput());
    all.insert(all.end(), w->runs().begin(), w->runs().end());
    items_added_ += w->items_added();
  }
  writers_.clear();
  // Adopt every partition's runs; the merge/checkpoint machinery is
  // oblivious to where a run came from.
  gen_.Restore(std::move(all), 0, false, {});
  return Status::OK();
}

Status ExternalSorter::PrepareMerge() {
  // Merge the oldest fan-in runs into one until we fit a single pass.
  // These passes are not checkpointed (a crash repeats the incomplete
  // pass); the final pass is the restartable one.
  size_t fanin = options_->sort_merge_fanin < 2 ? 2
                                                : options_->sort_merge_fanin;
  while (gen_.runs().size() > fanin) {
    std::vector<RunId> batch(gen_.runs().begin(),
                             gen_.runs().begin() + fanin);
    MergeCursor cursor;
    OIB_RETURN_IF_ERROR(cursor.Init(store_, batch, nullptr));
    RunId merged = store_->CreateRun();
    SortItem item;
    for (;;) {
      auto more = cursor.Next(&item);
      if (!more.ok()) return more.status();
      if (!*more) break;
      OIB_RETURN_IF_ERROR(store_->Append(merged, item.key, item.rid));
    }
    OIB_RETURN_IF_ERROR(store_->Flush(merged));
    std::vector<RunId> remaining;
    remaining.push_back(merged);
    remaining.insert(remaining.end(), gen_.runs().begin() + fanin,
                     gen_.runs().end());
    for (RunId id : batch) store_->Remove(id);
    gen_.Restore(std::move(remaining), 0, gen_.has_last_output(),
                 gen_.last_output());
  }
  return Status::OK();
}

StatusOr<std::unique_ptr<MergeCursor>> ExternalSorter::OpenMerge(
    const std::vector<uint64_t>* counters) {
  auto cursor = std::make_unique<MergeCursor>();
  OIB_RETURN_IF_ERROR(cursor->Init(store_, gen_.runs(), counters));
  return cursor;
}

}  // namespace oib
