// ExternalSorter: replacement-selection run generation + N-way merge, both
// restartable per the paper's section 5.
//
// Sort phase (5.1): keys stream in from the IB scan; a tournament tree
// performs replacement selection, emitting sorted runs (~2x workspace per
// run on random input).  A checkpoint waits for the tree to output all
// extracted keys (Drain), forces the runs, and records the run list, the
// last (open) run, and the highest key output — plus the caller's scan
// position, which travels in the same blob.  Resume discards unknown runs,
// truncates known runs to their checkpointed sizes, and applies the
// paper's append-or-new-stream rule for the first post-restart output.
//
// Merge phase (5.2): a loser tree merges the runs; each input stream is
// permanently bound to one leaf, so a vector of per-stream output counters
// identifies the exact restart position.  A merge checkpoint is just that
// counter vector (the consumer checkpoints its own output position
// alongside).

#ifndef OIB_SORT_EXTERNAL_SORTER_H_
#define OIB_SORT_EXTERNAL_SORTER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/status.h"
#include "sort/run.h"
#include "sort/tournament_tree.h"

namespace oib {

// Replacement selection over a fixed workspace.
class RunGenerator {
 public:
  RunGenerator(RunStore* store, size_t workspace_keys);

  // Copies the key into a workspace slot, reusing the slot's buffer
  // capacity — steady state adds are allocation-free.
  Status Add(KeySlice key, const Rid& rid);
  // Outputs every buffered key (checkpoint prerequisite: "we wait for the
  // tournament tree to output all the keys that have so far been
  // extracted").  The current run stays open.
  Status Drain();
  // Drain + close the current run.
  Status FinishInput();

  const std::vector<RunId>& runs() const { return runs_; }
  RunId current_run() const { return current_run_; }
  bool has_last_output() const { return has_last_output_; }
  const SortItem& last_output() const { return last_output_; }

  // Restart: adopt the checkpointed run list / open run / highest key.
  void Restore(std::vector<RunId> runs, RunId current_run,
               bool has_last_output, SortItem last_output);

 private:
  Status Output(size_t slot);
  Status EnsureRunOpen();

  RunStore* store_;
  size_t k_;
  std::vector<SortItem> items_;
  std::vector<uint64_t> tags_;
  std::vector<bool> valid_;
  std::vector<size_t> free_;
  LoserTree tree_;
  bool tree_built_ = false;

  std::vector<RunId> runs_;
  RunId current_run_ = 0;  // 0 = none open
  uint64_t current_tag_ = 0;
  SortItem last_output_;
  bool has_last_output_ = false;
};

class MergeCursor {
 public:
  // `counters` (if given) are per-input output counts from a checkpoint;
  // each input is repositioned so its counters[i]-th item is next.
  Status Init(RunStore* store, const std::vector<RunId>& runs,
              const std::vector<uint64_t>* counters);

  // False at end of merge.
  StatusOr<bool> Next(SortItem* item);

  // Output counts per input stream — the section 5.2 checkpoint vector.
  const std::vector<uint64_t>& counters() const { return out_counts_; }
  const std::vector<RunId>& runs() const { return runs_; }

 private:
  Status Refill(size_t slot);

  RunStore* store_ = nullptr;
  std::vector<RunId> runs_;
  std::vector<std::unique_ptr<RunReader>> readers_;
  std::vector<SortItem> items_;
  std::vector<bool> valid_;
  std::vector<uint64_t> out_counts_;
  std::unique_ptr<LoserTree> tree_;
};

class ExternalSorter {
 public:
  ExternalSorter(RunStore* store, const Options* options)
      : store_(store), options_(options),
        gen_(store, options->sort_workspace_keys) {}

  Status Add(KeySlice key, const Rid& rid) {
    ++items_added_;
    return gen_.Add(key, rid);
  }

  // Section 5.1 checkpoint: drain + force runs + serialize state.  The
  // caller embeds its scan position via `caller_state` (opaque here).
  StatusOr<std::string> CheckpointSortPhase(const std::string& caller_state);
  // Returns the embedded caller state.
  StatusOr<std::string> ResumeSortPhase(const std::string& blob);

  Status FinishInput() { return gen_.FinishInput(); }

  // --- partitioned input (BuildPipeline) ---
  //
  // One RunWriter per scan partition: each owns a private replacement-
  // selection generator, so workers feed the sorter concurrently without
  // sharing any mutable state (RunStore itself is thread-safe).  A writer
  // checkpoints/resumes its own run list with the same §5.1 rule the
  // single-threaded sorter uses; FinishWriters() closes every writer and
  // adopts all runs — in partition order, so run naming is deterministic
  // for Resume — after which PrepareMerge/OpenMerge/CheckpointSortPhase
  // behave exactly as in the single-stream case.
  class RunWriter {
   public:
    RunWriter(RunStore* store, size_t workspace_keys)
        : store_(store), gen_(store, workspace_keys) {}

    Status Add(KeySlice key, const Rid& rid) {
      ++items_added_;
      return gen_.Add(key, rid);
    }
    Status FinishInput() { return gen_.FinishInput(); }
    StatusOr<std::string> Checkpoint();
    Status Resume(const std::string& blob);

    const std::vector<RunId>& runs() const { return gen_.runs(); }
    uint64_t items_added() const { return items_added_; }

   private:
    friend class ExternalSorter;
    RunStore* store_;
    RunGenerator gen_;
    uint64_t items_added_ = 0;
  };

  Status CreateWriters(size_t n);
  RunWriter* writer(size_t i) { return writers_[i].get(); }
  size_t writer_count() const { return writers_.size(); }
  // FinishInput on every writer, then adopt all their runs (partition
  // order) into the main generator so the merge path sees one run list.
  Status FinishWriters();

  // Reduces the run count to the merge fan-in with extra (non-checkpointed)
  // merge passes.
  Status PrepareMerge();

  StatusOr<std::unique_ptr<MergeCursor>> OpenMerge(
      const std::vector<uint64_t>* counters = nullptr);

  const std::vector<RunId>& runs() const { return gen_.runs(); }
  uint64_t items_added() const { return items_added_; }
  RunStore* store() { return store_; }

 private:
  RunStore* store_;
  const Options* options_;
  RunGenerator gen_;
  uint64_t items_added_ = 0;
  std::vector<std::unique_ptr<RunWriter>> writers_;
};

}  // namespace oib

#endif  // OIB_SORT_EXTERNAL_SORTER_H_
