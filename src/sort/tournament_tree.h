// Tournament (loser) tree [Knut73], the selection structure the paper's
// restartable sort is built on (section 5).
//
// Internal nodes store the *losers* of their sub-tournaments; the overall
// winner sits at tree_[0].  After the winner's slot is refilled, a single
// leaf-to-root replay restores the invariant in O(log k) comparisons.
//
// The property the merge-phase checkpoint relies on — "a particular leaf
// node of the tree is always fed from the same input stream" (section
// 5.2) — holds by construction: slot i is permanently bound to input i.

#ifndef OIB_SORT_TOURNAMENT_TREE_H_
#define OIB_SORT_TOURNAMENT_TREE_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace oib {

class LoserTree {
 public:
  // `less(a, b)`: slot a's current value sorts strictly before slot b's.
  // Invalid (exhausted) slots must compare after every valid slot; the
  // callback receives slot indices and owns that logic.
  using LessFn = std::function<bool(size_t, size_t)>;

  LoserTree(size_t k, LessFn less);

  // Builds the tournament from scratch over all k slots.
  void Init();

  // Index of the winning slot (call after Init).
  size_t Winner() const { return winner_; }

  // Re-runs the tournament along slot's leaf-to-root path after the
  // slot's value changed (refill or invalidation).
  void Update(size_t slot);

  size_t k() const { return k_; }

 private:
  size_t InitRange(size_t node);  // returns winner of subtree

  size_t k_;
  LessFn less_;
  std::vector<size_t> tree_;  // tree_[1..k-1]: losers; winner_ cached
  size_t winner_ = 0;
};

}  // namespace oib

#endif  // OIB_SORT_TOURNAMENT_TREE_H_
