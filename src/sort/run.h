// Sorted-run storage for the external sorter.
//
// Runs are scratch data, not WAL-protected; durability is modeled the same
// way as the log: each run has a *durable* prefix (what would be on disk at
// a crash) and a volatile tail, with Flush() moving the boundary.  The
// paper's restartable-sort checkpoints (section 5) force runs to disk and
// record their sizes; after a simulated crash, RunStore::DropUnflushed()
// discards the volatile tails and Resume truncates runs to the
// checkpointed lengths.
//
// AttachDir() adds a real spill directory: each run is mirrored to
// `<dir>/run-<id>`, and Flush appends the new tail to the file and
// fdatasyncs *before* advancing the durable boundary, so the file always
// holds at least the durable prefix.  At attach time existing run files
// are loaded back (a torn trailing item is dropped), which is what lets a
// restartable sort resume across a real process crash: the checkpoint's
// recorded run sizes then Truncate away anything past the last
// checkpoint.  Failpoint `runstore.flush` covers the spill write (error /
// short / torn — torn kills the process, see FailPointHardAbort).
//
// Run payload: prefix-compressed items
//   [shared u16][suffix_len u16][suffix bytes][rid u32+u16]
// where `shared` is the length of the common prefix with the *previous*
// item in the run.  Keys are normalized byte strings, so within a sorted
// run adjacent keys share long prefixes and the delta encoding is both
// order-preserving and dictionary-free: a reader reconstructs each key
// from the previous one with a resize+append, and the merge never needs
// to decompress more than the run's running key.  The store keeps
// cumulative raw vs stored key-byte counters so builds can report their
// compression ratio.

#ifndef OIB_SORT_RUN_H_
#define OIB_SORT_RUN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/key.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"

namespace oib {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct SortItem {
  NormalizedKey key;
  Rid rid;
};

// (key, rid) ordering — identical to the index entry order.
int CompareSortItem(const SortItem& a, const SortItem& b);
// Same ordering, comparing a not-yet-materialized (key, rid) pair against
// an item (replacement selection's run-assignment test).
int CompareKeyRid(KeySlice key, const Rid& rid, const SortItem& item);

using RunId = uint64_t;

class RunStore {
 public:
  RunStore() = default;

  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;

  // Attaches a spill directory (created if missing) and loads any run
  // files already in it as durable runs.  Must be called before the first
  // CreateRun.  See the file comment for the crash model.
  Status AttachDir(const std::string& dir);
  bool has_dir() const;

  RunId CreateRun();
  Status Append(RunId id, KeySlice key, const Rid& rid);
  // Marks everything appended so far durable.  With a directory attached
  // this writes the tail to the run file first and fails (boundary
  // unmoved) if the write does.
  Status Flush(RunId id);
  // Crash simulation: every run loses its volatile tail.
  void DropUnflushed();
  // Deletes a run entirely.
  void Remove(RunId id);
  // Truncates a run to `bytes` (restart repositioning, section 5.1).
  Status Truncate(RunId id, uint64_t bytes);

  StatusOr<uint64_t> DurableSize(RunId id) const;
  StatusOr<uint64_t> Size(RunId id) const;
  StatusOr<uint64_t> ItemCount(RunId id) const;

  size_t run_count() const;
  uint64_t total_bytes() const;

  // Cumulative (monotone, never reset) key-byte counters across all runs
  // ever appended: raw = normalized key bytes submitted, stored = suffix
  // bytes actually written after prefix compression.  Builders report the
  // delta over a build as its bytes-moved / compression-ratio stats.
  uint64_t raw_key_bytes() const;
  uint64_t stored_key_bytes() const;

  // Publishes the cumulative counters as sort.key_bytes_raw /
  // sort.key_bytes_stored value callbacks.
  void AttachMetrics(obs::MetricsRegistry* registry);
  ~RunStore();

 private:
  friend class RunReader;

  struct Run {
    std::string data;
    uint64_t durable = 0;
    uint64_t items = 0;
    // Full key of the last appended item — the prefix reference for the
    // next append.  Rebuilt by walking after DropUnflushed/Truncate.
    std::string last_key;
  };

  std::string RunFilePath(RunId id) const OIB_REQUIRES(mu_);
  // Appends run bytes [durable, data.size()) to the run file and
  // fdatasyncs.  Bounded retry on transient errors; `runstore.flush`
  // failpoint site.
  Status SpillLocked(RunId id, const Run& run) OIB_REQUIRES(mu_);

  mutable sync::Mutex mu_{sync::LockRank::kRunStore, "runstore.mu"};
  std::string dir_ OIB_GUARDED_BY(mu_);  // empty = in-memory only
  std::map<RunId, Run> runs_ OIB_GUARDED_BY(mu_);
  RunId next_id_ OIB_GUARDED_BY(mu_) = 1;
  uint64_t raw_key_bytes_ OIB_GUARDED_BY(mu_) = 0;
  uint64_t stored_key_bytes_ OIB_GUARDED_BY(mu_) = 0;
  obs::MetricsRegistry* metrics_ = nullptr;  // set by AttachMetrics
};

// Sequential reader over a run, positionable by item index.  Keeps the
// running reconstructed key between Reads (prefix decompression state).
class RunReader {
 public:
  RunReader(RunStore* store, RunId id) : store_(store), id_(id) {}

  // Positions so the next Read returns item `index` (0-based).  O(index)
  // skip — restart repositioning per the merge checkpoint counters
  // (section 5.2) — reconstructing the running key along the way.
  Status SeekToItem(uint64_t index);

  // False at end of run.
  StatusOr<bool> Read(SortItem* item);

  uint64_t items_read() const { return items_read_; }

 private:
  RunStore* store_;
  RunId id_;
  uint64_t offset_ = 0;
  uint64_t items_read_ = 0;
  std::string key_;  // running key (previous item's full key)
};

}  // namespace oib

#endif  // OIB_SORT_RUN_H_
