// Sorted-run storage for the external sorter.
//
// Runs are scratch data, not WAL-protected; durability is modeled the same
// way as the log: each run has a *durable* prefix (what would be on disk at
// a crash) and a volatile tail, with Flush() moving the boundary.  The
// paper's restartable-sort checkpoints (section 5) force runs to disk and
// record their sizes; after a simulated crash, RunStore::DropUnflushed()
// discards the volatile tails and Resume truncates runs to the
// checkpointed lengths.
//
// Run payload: a sequence of items [klen u16][key bytes][rid u32+u16].

#ifndef OIB_SORT_RUN_H_
#define OIB_SORT_RUN_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"

namespace oib {

struct SortItem {
  std::string key;
  Rid rid;
};

// (key, rid) ordering — identical to the index entry order.
int CompareSortItem(const SortItem& a, const SortItem& b);

using RunId = uint64_t;

class RunStore {
 public:
  RunStore() = default;

  RunStore(const RunStore&) = delete;
  RunStore& operator=(const RunStore&) = delete;

  RunId CreateRun();
  Status Append(RunId id, const SortItem& item);
  // Marks everything appended so far durable.
  Status Flush(RunId id);
  // Crash simulation: every run loses its volatile tail.
  void DropUnflushed();
  // Deletes a run entirely.
  void Remove(RunId id);
  // Truncates a run to `bytes` (restart repositioning, section 5.1).
  Status Truncate(RunId id, uint64_t bytes);

  StatusOr<uint64_t> DurableSize(RunId id) const;
  StatusOr<uint64_t> Size(RunId id) const;
  StatusOr<uint64_t> ItemCount(RunId id) const;

  size_t run_count() const;
  uint64_t total_bytes() const;

 private:
  friend class RunReader;

  struct Run {
    std::string data;
    uint64_t durable = 0;
    uint64_t items = 0;
  };

  mutable sync::Mutex mu_{sync::LockRank::kRunStore, "runstore.mu"};
  std::map<RunId, Run> runs_ OIB_GUARDED_BY(mu_);
  RunId next_id_ OIB_GUARDED_BY(mu_) = 1;
};

// Sequential reader over a run, positionable by item index.
class RunReader {
 public:
  RunReader(RunStore* store, RunId id) : store_(store), id_(id) {}

  // Positions so the next Read returns item `index` (0-based).  O(index)
  // skip — restart repositioning per the merge checkpoint counters
  // (section 5.2).
  Status SeekToItem(uint64_t index);

  // False at end of run.
  StatusOr<bool> Read(SortItem* item);

  uint64_t items_read() const { return items_read_; }

 private:
  RunStore* store_;
  RunId id_;
  uint64_t offset_ = 0;
  uint64_t items_read_ = 0;
};

}  // namespace oib

#endif  // OIB_SORT_RUN_H_
