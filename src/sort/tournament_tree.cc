#include "sort/tournament_tree.h"

#include <cassert>

namespace oib {

namespace {
// Rounds k up to a power of two so the tree is a complete binary tree;
// slots >= real k are permanently invalid (the less callback handles them
// via an index range check in the wrapper below).
size_t RoundUpPow2(size_t k) {
  size_t p = 1;
  while (p < k) p <<= 1;
  return p;
}
}  // namespace

LoserTree::LoserTree(size_t k, LessFn less) : less_(std::move(less)) {
  k_ = RoundUpPow2(k == 0 ? 1 : k);
  tree_.assign(k_, 0);
}

size_t LoserTree::InitRange(size_t node) {
  if (node >= k_) return node - k_;  // leaf: slot index
  size_t left = InitRange(2 * node);
  size_t right = InitRange(2 * node + 1);
  if (less_(right, left)) {
    tree_[node] = left;  // left loses
    return right;
  }
  tree_[node] = right;
  return left;
}

void LoserTree::Init() { winner_ = InitRange(1); }

void LoserTree::Update(size_t slot) {
  assert(slot < k_);
  size_t cur = slot;
  for (size_t node = (slot + k_) / 2; node >= 1; node /= 2) {
    if (less_(tree_[node], cur)) {
      std::swap(tree_[node], cur);
    }
  }
  winner_ = cur;
}

}  // namespace oib
