#include "sort/run.h"

#include "common/coding.h"

namespace oib {

int CompareSortItem(const SortItem& a, const SortItem& b) {
  int c = a.key.compare(b.key);
  if (c != 0) return c;
  if (a.rid < b.rid) return -1;
  if (b.rid < a.rid) return 1;
  return 0;
}

RunId RunStore::CreateRun() {
  sync::MutexLock g(&mu_);
  RunId id = next_id_++;
  runs_[id];
  return id;
}

Status RunStore::Append(RunId id, const SortItem& item) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  std::string& d = it->second.data;
  PutFixed16(&d, static_cast<uint16_t>(item.key.size()));
  d.append(item.key);
  PutFixed32(&d, item.rid.page);
  PutFixed16(&d, item.rid.slot);
  ++it->second.items;
  return Status::OK();
}

Status RunStore::Flush(RunId id) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  it->second.durable = it->second.data.size();
  return Status::OK();
}

void RunStore::DropUnflushed() {
  sync::MutexLock g(&mu_);
  for (auto& [id, run] : runs_) {
    (void)id;
    run.data.resize(run.durable);
    // Recount items in the durable prefix.
    uint64_t items = 0, off = 0;
    while (off + 2 <= run.data.size()) {
      uint16_t klen = DecodeFixed16(run.data.data() + off);
      if (off + 2 + klen + 6 > run.data.size()) break;
      off += 2 + klen + 6;
      ++items;
    }
    run.data.resize(off);  // drop a torn trailing item
    run.durable = off;
    run.items = items;
  }
}

void RunStore::Remove(RunId id) {
  sync::MutexLock g(&mu_);
  runs_.erase(id);
}

Status RunStore::Truncate(RunId id, uint64_t bytes) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  Run& run = it->second;
  if (bytes > run.data.size()) {
    return Status::InvalidArgument("truncate beyond run end");
  }
  run.data.resize(bytes);
  if (run.durable > bytes) run.durable = bytes;
  uint64_t items = 0, off = 0;
  while (off + 2 <= run.data.size()) {
    uint16_t klen = DecodeFixed16(run.data.data() + off);
    if (off + 2 + klen + 6 > run.data.size()) {
      return Status::Corruption("truncate split an item");
    }
    off += 2 + klen + 6;
    ++items;
  }
  run.items = items;
  return Status::OK();
}

StatusOr<uint64_t> RunStore::DurableSize(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return it->second.durable;
}

StatusOr<uint64_t> RunStore::Size(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return static_cast<uint64_t>(it->second.data.size());
}

StatusOr<uint64_t> RunStore::ItemCount(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return it->second.items;
}

size_t RunStore::run_count() const {
  sync::MutexLock g(&mu_);
  return runs_.size();
}

uint64_t RunStore::total_bytes() const {
  sync::MutexLock g(&mu_);
  uint64_t total = 0;
  for (const auto& [id, run] : runs_) {
    (void)id;
    total += run.data.size();
  }
  return total;
}

Status RunReader::SeekToItem(uint64_t index) {
  offset_ = 0;
  items_read_ = 0;
  sync::MutexLock g(&store_->mu_);
  auto it = store_->runs_.find(id_);
  if (it == store_->runs_.end()) return Status::NotFound("no such run");
  const std::string& d = it->second.data;
  for (uint64_t i = 0; i < index; ++i) {
    if (offset_ + 2 > d.size()) return Status::Corruption("seek past end");
    uint16_t klen = DecodeFixed16(d.data() + offset_);
    offset_ += 2 + klen + 6;
    if (offset_ > d.size()) return Status::Corruption("seek past end");
    ++items_read_;
  }
  return Status::OK();
}

StatusOr<bool> RunReader::Read(SortItem* item) {
  sync::MutexLock g(&store_->mu_);
  auto it = store_->runs_.find(id_);
  if (it == store_->runs_.end()) return Status::NotFound("no such run");
  const std::string& d = it->second.data;
  if (offset_ >= d.size()) return false;
  if (offset_ + 2 > d.size()) return Status::Corruption("torn item");
  uint16_t klen = DecodeFixed16(d.data() + offset_);
  if (offset_ + 2 + klen + 6 > d.size()) return Status::Corruption("torn item");
  item->key.assign(d.data() + offset_ + 2, klen);
  item->rid.page = DecodeFixed32(d.data() + offset_ + 2 + klen);
  item->rid.slot = DecodeFixed16(d.data() + offset_ + 2 + klen + 4);
  offset_ += 2 + klen + 6;
  ++items_read_;
  return true;
}

}  // namespace oib
