#include "sort/run.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>

#include "common/coding.h"
#include "common/failpoint.h"
#include "common/posix_io.h"
#include "obs/metrics.h"

namespace oib {

namespace {

// Per-item framing around the suffix: [shared u16][suffix_len u16] before,
// [rid u32+u16] after.
constexpr uint64_t kItemOverhead = 4 + 6;

// Spill-write retry bounds (transient injected/IO errors only).
constexpr int kMaxSpillAttempts = 4;
constexpr int kBackoffBaseUs = 50;

// Walks the prefix-compressed item stream in d[0, limit), rebuilding the
// running key.  Stops before the first incomplete (torn) item; *end is the
// offset just past the last whole item.  On a broken prefix chain
// (scrambled bytes, not just a tear) *end/*items/*last_key still describe
// the clean prefix walked so far, so callers can keep it.
Status WalkItems(const std::string& d, uint64_t limit, uint64_t* end,
                 uint64_t* items, std::string* last_key) {
  uint64_t off = 0, n = 0;
  last_key->clear();
  Status s;
  while (off + 4 <= limit) {
    uint16_t shared = DecodeFixed16(d.data() + off);
    uint16_t slen = DecodeFixed16(d.data() + off + 2);
    if (off + kItemOverhead + slen > limit) break;
    if (shared > last_key->size()) {
      s = Status::Corruption("run prefix chain broken");
      break;
    }
    last_key->resize(shared);
    last_key->append(d.data() + off + 4, slen);
    off += kItemOverhead + slen;
    ++n;
  }
  *end = off;
  *items = n;
  return s;
}

}  // namespace

int CompareSortItem(const SortItem& a, const SortItem& b) {
  return CompareKeyRid(a.key.slice(), a.rid, b);
}

int CompareKeyRid(KeySlice key, const Rid& rid, const SortItem& item) {
  int c = key.Compare(item.key.slice());
  if (c != 0) return c;
  if (rid < item.rid) return -1;
  if (item.rid < rid) return 1;
  return 0;
}

Status RunStore::AttachDir(const std::string& dir) {
  sync::MutexLock g(&mu_);
  if (!runs_.empty() || !dir_.empty()) {
    return Status::InvalidArgument(
        "AttachDir requires an empty store with no directory attached");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  // Load surviving run files.  A crash can leave a torn trailing item (or
  // a scrambled tail from a torn spill write); WalkItems keeps the clean
  // item prefix and the restartable-sort resume then truncates to the
  // last checkpointed length, cutting anything the checkpoint never saw.
  RunId max_id = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("run-", 0) != 0) continue;
    char* end_ptr = nullptr;
    unsigned long long parsed = std::strtoull(name.c_str() + 4, &end_ptr, 10);
    if (end_ptr == nullptr || *end_ptr != '\0' || parsed == 0) continue;
    RunId id = RunId(parsed);
    Run run;
    OIB_RETURN_IF_ERROR(ReadFileToString(entry.path().string(), &run.data));
    uint64_t end = 0, items = 0;
    (void)WalkItems(run.data, run.data.size(), &end, &items, &run.last_key);
    if (end < run.data.size()) {
      run.data.resize(end);
      std::filesystem::resize_file(entry.path(), end, ec);
      if (ec) {
        return Status::IoError("cannot truncate " + entry.path().string() +
                               ": " + ec.message());
      }
    }
    run.durable = end;
    run.items = items;
    if (id > max_id) max_id = id;
    runs_.emplace(id, std::move(run));
  }
  if (ec) return Status::IoError("cannot scan " + dir + ": " + ec.message());
  if (max_id >= next_id_) next_id_ = max_id + 1;
  dir_ = dir;
  return Status::OK();
}

bool RunStore::has_dir() const {
  sync::MutexLock g(&mu_);
  return !dir_.empty();
}

std::string RunStore::RunFilePath(RunId id) const {
  return dir_ + "/run-" + std::to_string(id);
}

Status RunStore::SpillLocked(RunId id, const Run& run) {
  const std::string path = RunFilePath(id);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  const char* data = run.data.data() + run.durable;
  const size_t n = run.data.size() - size_t(run.durable);
  Status s;
  for (int attempt = 1; attempt <= kMaxSpillAttempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(kBackoffBaseUs << (attempt - 2)));
    }
    s = [&]() -> Status {
      FailPointHit hit;
      OIB_FAIL_POINT_HIT("runstore.flush", hit);
      if (hit.action == FailPointAction::kReturnError) {
        return Status::Injected("runstore.flush");
      }
      if (hit.action == FailPointAction::kShortWrite) {
        size_t k = n > 0 ? std::min(size_t(hit.arg), n - 1) : 0;
        OIB_RETURN_IF_ERROR(PwriteFull(fd, data, k, run.durable));
        return Status::Injected("runstore.flush: short write");
      }
      if (hit.action == FailPointAction::kTornWrite) {
        // Crash mid-spill: a scrambled tail lands and the process dies.
        std::string torn(data, n);
        for (size_t i = std::min(size_t(hit.arg), n > 0 ? n - 1 : 0);
             i < torn.size(); ++i) {
          torn[i] = char(torn[i] ^ 0xa5);
        }
        (void)PwriteFull(fd, torn.data(), torn.size(), run.durable);
        FailPointHardAbort("runstore.flush");
      }
      OIB_RETURN_IF_ERROR(PwriteFull(fd, data, n, run.durable));
      if (::fdatasync(fd) != 0) {
        return Status::IoError(std::string("fdatasync: ") +
                               std::strerror(errno));
      }
      return Status::OK();
    }();
    if (s.ok()) break;
    if (!s.IsInjected() && !s.IsIoError()) break;
  }
  ::close(fd);
  return s;
}

RunId RunStore::CreateRun() {
  sync::MutexLock g(&mu_);
  RunId id = next_id_++;
  runs_[id];
  return id;
}

Status RunStore::Append(RunId id, KeySlice key, const Rid& rid) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  Run& run = it->second;
  size_t shared = CommonPrefixLen(KeySlice(run.last_key), key);
  std::string& d = run.data;
  PutFixed16(&d, static_cast<uint16_t>(shared));
  PutFixed16(&d, static_cast<uint16_t>(key.size() - shared));
  d.append(key.data() + shared, key.size() - shared);
  PutFixed32(&d, rid.page);
  PutFixed16(&d, rid.slot);
  run.last_key.assign(key.data(), key.size());
  ++run.items;
  raw_key_bytes_ += key.size();
  stored_key_bytes_ += key.size() - shared;
  return Status::OK();
}

Status RunStore::Flush(RunId id) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  if (!dir_.empty()) {
    // Write the tail to the run file before advancing the boundary, so
    // `durable` never claims bytes the file does not hold.
    OIB_RETURN_IF_ERROR(SpillLocked(id, it->second));
  }
  it->second.durable = it->second.data.size();
  return Status::OK();
}

void RunStore::DropUnflushed() {
  sync::MutexLock g(&mu_);
  for (auto& [id, run] : runs_) {
    (void)id;
    run.data.resize(run.durable);
    // Recount items in the durable prefix, dropping a torn trailing item
    // and rebuilding the prefix reference for subsequent appends.
    uint64_t end = 0, items = 0;
    if (!WalkItems(run.data, run.data.size(), &end, &items, &run.last_key)
             .ok()) {
      // A broken prefix chain can only come from memory corruption, not a
      // torn write; keep whatever walked clean.
    }
    run.data.resize(end);
    run.durable = end;
    run.items = items;
  }
}

void RunStore::Remove(RunId id) {
  sync::MutexLock g(&mu_);
  if (runs_.erase(id) > 0 && !dir_.empty()) {
    ::unlink(RunFilePath(id).c_str());
  }
}

Status RunStore::Truncate(RunId id, uint64_t bytes) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  Run& run = it->second;
  if (bytes > run.data.size()) {
    return Status::InvalidArgument("truncate beyond run end");
  }
  uint64_t end = 0, items = 0;
  OIB_RETURN_IF_ERROR(WalkItems(run.data, bytes, &end, &items,
                                &run.last_key));
  if (end != bytes) return Status::Corruption("truncate split an item");
  run.data.resize(bytes);
  if (run.durable > bytes) {
    run.durable = bytes;
    if (!dir_.empty()) {
      std::error_code ec;
      std::filesystem::resize_file(RunFilePath(id), bytes, ec);
      if (ec) {
        return Status::IoError("cannot truncate run file: " + ec.message());
      }
    }
  }
  run.items = items;
  return Status::OK();
}

StatusOr<uint64_t> RunStore::DurableSize(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return it->second.durable;
}

StatusOr<uint64_t> RunStore::Size(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return static_cast<uint64_t>(it->second.data.size());
}

StatusOr<uint64_t> RunStore::ItemCount(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return it->second.items;
}

size_t RunStore::run_count() const {
  sync::MutexLock g(&mu_);
  return runs_.size();
}

uint64_t RunStore::total_bytes() const {
  sync::MutexLock g(&mu_);
  uint64_t total = 0;
  for (const auto& [id, run] : runs_) {
    (void)id;
    total += run.data.size();
  }
  return total;
}

uint64_t RunStore::raw_key_bytes() const {
  sync::MutexLock g(&mu_);
  return raw_key_bytes_;
}

uint64_t RunStore::stored_key_bytes() const {
  sync::MutexLock g(&mu_);
  return stored_key_bytes_;
}

RunStore::~RunStore() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

void RunStore::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterValueFn("sort.key_bytes_raw",
                            [this] { return raw_key_bytes(); }, this);
  registry->RegisterValueFn("sort.key_bytes_stored",
                            [this] { return stored_key_bytes(); }, this);
}

Status RunReader::SeekToItem(uint64_t index) {
  offset_ = 0;
  items_read_ = 0;
  key_.clear();
  sync::MutexLock g(&store_->mu_);
  auto it = store_->runs_.find(id_);
  if (it == store_->runs_.end()) return Status::NotFound("no such run");
  const std::string& d = it->second.data;
  for (uint64_t i = 0; i < index; ++i) {
    if (offset_ + 4 > d.size()) return Status::Corruption("seek past end");
    uint16_t shared = DecodeFixed16(d.data() + offset_);
    uint16_t slen = DecodeFixed16(d.data() + offset_ + 2);
    if (offset_ + 4 + slen + 6 > d.size()) {
      return Status::Corruption("seek past end");
    }
    if (shared > key_.size()) {
      return Status::Corruption("run prefix chain broken");
    }
    key_.resize(shared);
    key_.append(d.data() + offset_ + 4, slen);
    offset_ += 4 + slen + 6;
    ++items_read_;
  }
  return Status::OK();
}

StatusOr<bool> RunReader::Read(SortItem* item) {
  sync::MutexLock g(&store_->mu_);
  auto it = store_->runs_.find(id_);
  if (it == store_->runs_.end()) return Status::NotFound("no such run");
  const std::string& d = it->second.data;
  if (offset_ >= d.size()) return false;
  if (offset_ + 4 > d.size()) return Status::Corruption("torn item");
  uint16_t shared = DecodeFixed16(d.data() + offset_);
  uint16_t slen = DecodeFixed16(d.data() + offset_ + 2);
  if (offset_ + 4 + slen + 6 > d.size()) return Status::Corruption("torn item");
  if (shared > key_.size()) {
    return Status::Corruption("run prefix chain broken");
  }
  key_.resize(shared);
  key_.append(d.data() + offset_ + 4, slen);
  item->key.Assign(key_);
  item->rid.page = DecodeFixed32(d.data() + offset_ + 4 + slen);
  item->rid.slot = DecodeFixed16(d.data() + offset_ + 4 + slen + 4);
  offset_ += 4 + slen + 6;
  ++items_read_;
  return true;
}

}  // namespace oib
