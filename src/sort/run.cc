#include "sort/run.h"

#include "common/coding.h"
#include "obs/metrics.h"

namespace oib {

namespace {

// Per-item framing around the suffix: [shared u16][suffix_len u16] before,
// [rid u32+u16] after.
constexpr uint64_t kItemOverhead = 4 + 6;

// Walks the prefix-compressed item stream in d[0, limit), rebuilding the
// running key.  Stops before the first incomplete (torn) item; *end is the
// offset just past the last whole item.
Status WalkItems(const std::string& d, uint64_t limit, uint64_t* end,
                 uint64_t* items, std::string* last_key) {
  uint64_t off = 0, n = 0;
  last_key->clear();
  while (off + 4 <= limit) {
    uint16_t shared = DecodeFixed16(d.data() + off);
    uint16_t slen = DecodeFixed16(d.data() + off + 2);
    if (off + kItemOverhead + slen > limit) break;
    if (shared > last_key->size()) {
      return Status::Corruption("run prefix chain broken");
    }
    last_key->resize(shared);
    last_key->append(d.data() + off + 4, slen);
    off += kItemOverhead + slen;
    ++n;
  }
  *end = off;
  *items = n;
  return Status::OK();
}

}  // namespace

int CompareSortItem(const SortItem& a, const SortItem& b) {
  return CompareKeyRid(a.key.slice(), a.rid, b);
}

int CompareKeyRid(KeySlice key, const Rid& rid, const SortItem& item) {
  int c = key.Compare(item.key.slice());
  if (c != 0) return c;
  if (rid < item.rid) return -1;
  if (item.rid < rid) return 1;
  return 0;
}

RunId RunStore::CreateRun() {
  sync::MutexLock g(&mu_);
  RunId id = next_id_++;
  runs_[id];
  return id;
}

Status RunStore::Append(RunId id, KeySlice key, const Rid& rid) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  Run& run = it->second;
  size_t shared = CommonPrefixLen(KeySlice(run.last_key), key);
  std::string& d = run.data;
  PutFixed16(&d, static_cast<uint16_t>(shared));
  PutFixed16(&d, static_cast<uint16_t>(key.size() - shared));
  d.append(key.data() + shared, key.size() - shared);
  PutFixed32(&d, rid.page);
  PutFixed16(&d, rid.slot);
  run.last_key.assign(key.data(), key.size());
  ++run.items;
  raw_key_bytes_ += key.size();
  stored_key_bytes_ += key.size() - shared;
  return Status::OK();
}

Status RunStore::Flush(RunId id) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  it->second.durable = it->second.data.size();
  return Status::OK();
}

void RunStore::DropUnflushed() {
  sync::MutexLock g(&mu_);
  for (auto& [id, run] : runs_) {
    (void)id;
    run.data.resize(run.durable);
    // Recount items in the durable prefix, dropping a torn trailing item
    // and rebuilding the prefix reference for subsequent appends.
    uint64_t end = 0, items = 0;
    if (!WalkItems(run.data, run.data.size(), &end, &items, &run.last_key)
             .ok()) {
      // A broken prefix chain can only come from memory corruption, not a
      // torn write; keep whatever walked clean.
    }
    run.data.resize(end);
    run.durable = end;
    run.items = items;
  }
}

void RunStore::Remove(RunId id) {
  sync::MutexLock g(&mu_);
  runs_.erase(id);
}

Status RunStore::Truncate(RunId id, uint64_t bytes) {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  Run& run = it->second;
  if (bytes > run.data.size()) {
    return Status::InvalidArgument("truncate beyond run end");
  }
  uint64_t end = 0, items = 0;
  OIB_RETURN_IF_ERROR(WalkItems(run.data, bytes, &end, &items,
                                &run.last_key));
  if (end != bytes) return Status::Corruption("truncate split an item");
  run.data.resize(bytes);
  if (run.durable > bytes) run.durable = bytes;
  run.items = items;
  return Status::OK();
}

StatusOr<uint64_t> RunStore::DurableSize(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return it->second.durable;
}

StatusOr<uint64_t> RunStore::Size(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return static_cast<uint64_t>(it->second.data.size());
}

StatusOr<uint64_t> RunStore::ItemCount(RunId id) const {
  sync::MutexLock g(&mu_);
  auto it = runs_.find(id);
  if (it == runs_.end()) return Status::NotFound("no such run");
  return it->second.items;
}

size_t RunStore::run_count() const {
  sync::MutexLock g(&mu_);
  return runs_.size();
}

uint64_t RunStore::total_bytes() const {
  sync::MutexLock g(&mu_);
  uint64_t total = 0;
  for (const auto& [id, run] : runs_) {
    (void)id;
    total += run.data.size();
  }
  return total;
}

uint64_t RunStore::raw_key_bytes() const {
  sync::MutexLock g(&mu_);
  return raw_key_bytes_;
}

uint64_t RunStore::stored_key_bytes() const {
  sync::MutexLock g(&mu_);
  return stored_key_bytes_;
}

RunStore::~RunStore() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

void RunStore::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterValueFn("sort.key_bytes_raw",
                            [this] { return raw_key_bytes(); }, this);
  registry->RegisterValueFn("sort.key_bytes_stored",
                            [this] { return stored_key_bytes(); }, this);
}

Status RunReader::SeekToItem(uint64_t index) {
  offset_ = 0;
  items_read_ = 0;
  key_.clear();
  sync::MutexLock g(&store_->mu_);
  auto it = store_->runs_.find(id_);
  if (it == store_->runs_.end()) return Status::NotFound("no such run");
  const std::string& d = it->second.data;
  for (uint64_t i = 0; i < index; ++i) {
    if (offset_ + 4 > d.size()) return Status::Corruption("seek past end");
    uint16_t shared = DecodeFixed16(d.data() + offset_);
    uint16_t slen = DecodeFixed16(d.data() + offset_ + 2);
    if (offset_ + 4 + slen + 6 > d.size()) {
      return Status::Corruption("seek past end");
    }
    if (shared > key_.size()) {
      return Status::Corruption("run prefix chain broken");
    }
    key_.resize(shared);
    key_.append(d.data() + offset_ + 4, slen);
    offset_ += 4 + slen + 6;
    ++items_read_;
  }
  return Status::OK();
}

StatusOr<bool> RunReader::Read(SortItem* item) {
  sync::MutexLock g(&store_->mu_);
  auto it = store_->runs_.find(id_);
  if (it == store_->runs_.end()) return Status::NotFound("no such run");
  const std::string& d = it->second.data;
  if (offset_ >= d.size()) return false;
  if (offset_ + 4 > d.size()) return Status::Corruption("torn item");
  uint16_t shared = DecodeFixed16(d.data() + offset_);
  uint16_t slen = DecodeFixed16(d.data() + offset_ + 2);
  if (offset_ + 4 + slen + 6 > d.size()) return Status::Corruption("torn item");
  if (shared > key_.size()) {
    return Status::Corruption("run prefix chain broken");
  }
  key_.resize(shared);
  key_.append(d.data() + offset_ + 4, slen);
  item->key.Assign(key_);
  item->rid.page = DecodeFixed32(d.data() + offset_ + 4 + slen);
  item->rid.slot = DecodeFixed16(d.data() + offset_ + 4 + slen + 4);
  offset_ += 4 + slen + 6;
  ++items_read_;
  return true;
}

}  // namespace oib
