#include "sidefile/side_file.h"

#include "common/coding.h"
#include "heap/slotted_page.h"

namespace oib {

void EncodeSideFileEntry(std::string* out, SideFileOp op,
                         std::string_view key, const Rid& rid) {
  out->push_back(static_cast<char>(op));
  PutFixed32(out, rid.page);
  PutFixed16(out, rid.slot);
  out->append(key.data(), key.size());
}

Status DecodeSideFileEntry(std::string_view in, SideFile::Entry* out) {
  if (in.size() < 7) return Status::Corruption("side-file entry");
  out->op = static_cast<SideFileOp>(static_cast<uint8_t>(in[0]));
  out->rid.page = DecodeFixed32(in.data() + 1);
  out->rid.slot = DecodeFixed16(in.data() + 5);
  out->key.assign(in.data() + 7, in.size() - 7);
  return Status::OK();
}

Status SideFile::Create() {
  PageId id;
  auto guard = pool_->NewPage(&id);
  if (!guard.ok()) return guard.status();
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  sp.Init(PageType::kSideFile);
  LogRecord rec;
  rec.type = LogRecordType::kRedoOnly;
  rec.rm_id = RmId::kSideFile;
  rec.opcode = static_cast<uint8_t>(SfOp::kFormat);
  rec.page_id = id;
  rec.aux_id = index_id_;
  OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
  guard->set_page_lsn(rec.lsn);
  first_page_ = id;
  tail_page_.store(id);
  {
    sync::MutexLock g(&count_mu_);
    page_count_ = 1;
  }
  return Status::OK();
}

Status SideFile::Open(PageId first) {
  first_page_ = first;
  PageId cur = first;
  PageId tail = first;
  size_t count = 0;
  uint64_t entries = 0;
  while (cur != kInvalidPageId) {
    auto guard = pool_->FetchRead(cur);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(const_cast<char*>(guard->data()),
                   pool_->disk()->page_size());
    if (sp.type() != PageType::kSideFile || sp.next_page() == cur) {
      return Status::Corruption("broken side-file chain at page " +
                                std::to_string(cur));
    }
    entries += sp.slot_count();
    ++count;
    tail = cur;
    cur = sp.next_page();
  }
  tail_page_.store(tail);
  appended_.store(entries);
  sync::MutexLock g(&count_mu_);
  page_count_ = count;
  return Status::OK();
}

StatusOr<PageId> SideFile::ExtendChain() {
  PageId old_tail = tail_page_.load();
  PageId id;
  {
    auto guard = pool_->NewPage(&id);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(guard->data(), pool_->disk()->page_size());
    sp.Init(PageType::kSideFile);
    LogRecord rec;
    rec.type = LogRecordType::kRedoOnly;
    rec.rm_id = RmId::kSideFile;
    rec.opcode = static_cast<uint8_t>(SfOp::kFormat);
    rec.page_id = id;
    rec.aux_id = index_id_;
    OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
    guard->set_page_lsn(rec.lsn);
  }
  {
    auto guard = pool_->FetchWrite(old_tail);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(guard->data(), pool_->disk()->page_size());
    sp.set_next_page(id);
    LogRecord rec;
    rec.type = LogRecordType::kRedoOnly;
    rec.rm_id = RmId::kSideFile;
    rec.opcode = static_cast<uint8_t>(SfOp::kLink);
    rec.page_id = old_tail;
    rec.aux_id = index_id_;
    PutFixed32(&rec.redo, id);
    OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
    guard->set_page_lsn(rec.lsn);
  }
  tail_page_.store(id);
  {
    sync::MutexLock g(&count_mu_);
    ++page_count_;
  }
  return id;
}

Status SideFile::Append(Transaction* txn, SideFileOp op,
                        std::string_view key, const Rid& rid) {
  std::string entry;
  EncodeSideFileEntry(&entry, op, key, rid);
  for (;;) {
    PageId tail = tail_page_.load();
    auto guard = pool_->FetchWrite(tail);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(guard->data(), pool_->disk()->page_size());
    // Appends must land in slot order on the tail; a page that has been
    // extended past is never appended to again.
    if (tail != tail_page_.load()) continue;
    auto slot = sp.Insert(entry);
    if (slot.ok()) {
      LogRecord rec;
      rec.type = LogRecordType::kRedoOnly;
      rec.rm_id = RmId::kSideFile;
      rec.opcode = static_cast<uint8_t>(SfOp::kAppend);
      rec.page_id = tail;
      rec.aux_id = index_id_;
      PutFixed16(&rec.redo, *slot);
      rec.redo.append(entry);
      OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &rec));
      guard->set_page_lsn(rec.lsn);
      appended_.fetch_add(1);
      return Status::OK();
    }
    if (!slot.status().IsBusy()) return slot.status();
    guard->Release();
    sync::MutexLock ext(&extend_mu_);
    if (tail == tail_page_.load()) {
      auto extended = ExtendChain();
      if (!extended.ok()) return extended.status();
    }
  }
}

StatusOr<size_t> SideFile::ReadBatch(Cursor* cursor, size_t max,
                                     std::vector<Entry>* out) const {
  out->clear();
  while (out->size() < max && cursor->page != kInvalidPageId) {
    auto guard = pool_->FetchRead(cursor->page);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(const_cast<char*>(guard->data()),
                   pool_->disk()->page_size());
    uint16_t n = sp.slot_count();
    while (cursor->slot < n && out->size() < max) {
      auto rec = sp.Get(cursor->slot);
      if (rec.ok()) {
        Entry e;
        OIB_RETURN_IF_ERROR(DecodeSideFileEntry(*rec, &e));
        out->push_back(std::move(e));
      }
      ++cursor->slot;
    }
    if (cursor->slot >= n) {
      PageId next = sp.next_page();
      if (next == kInvalidPageId) break;  // caught up on the tail
      cursor->page = next;
      cursor->slot = 0;
    }
  }
  return out->size();
}

size_t SideFile::page_count() const {
  sync::MutexLock g(&count_mu_);
  return page_count_;
}

Status SideFileRm::Redo(const LogRecord& rec) {
  SfOp op = static_cast<SfOp>(rec.opcode);
  auto guard = pool_->FetchWrite(rec.page_id);
  if (!guard.ok()) return guard.status();
  if (guard->page_lsn() >= rec.lsn) return Status::OK();
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  switch (op) {
    case SfOp::kFormat:
      sp.Init(PageType::kSideFile);
      break;
    case SfOp::kLink: {
      BufferReader r(rec.redo);
      uint32_t next;
      if (!r.GetFixed32(&next)) return Status::Corruption("sf link redo");
      sp.set_next_page(next);
      break;
    }
    case SfOp::kAppend: {
      BufferReader r(rec.redo);
      uint16_t slot;
      if (!r.GetFixed16(&slot)) return Status::Corruption("sf append redo");
      OIB_RETURN_IF_ERROR(
          sp.InsertAt(slot, rec.redo.substr(2)));
      break;
    }
  }
  guard->set_page_lsn(rec.lsn);
  return Status::OK();
}

Status SideFileRm::Undo(Transaction* txn, const LogRecord& rec) {
  (void)txn;
  (void)rec;
  return Status::Corruption("side-file records are redo-only");
}

}  // namespace oib
