// SideFile: the append-only table at the heart of the SF algorithm
// (paper section 3).
//
// While the index builder is active, transactions append tuples
// <operation, key, RID> describing key inserts and deletes for the index
// under construction, *without locking the appended entries*; appends are
// redo-only logged.  After the bottom-up build, IB drains the side-file
// from the beginning, applying each entry to the index as a normal
// transaction would.
//
// Entries live in a chain of slotted pages (same physical machinery as
// the heap).  The drain position is a (page, slot) cursor; IB checkpoints
// it so a restart resumes where it left off (section 3.2.5).

#ifndef OIB_SIDEFILE_SIDE_FILE_H_
#define OIB_SIDEFILE_SIDE_FILE_H_

#include <atomic>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"

namespace oib {

enum class SideFileOp : uint8_t {
  kInsertKey = 1,
  kDeleteKey = 2,
};

// Side-file RM opcodes.
enum class SfOp : uint8_t {
  kAppend = 1,
  kFormat = 2,
  kLink = 3,
};

class SideFile {
 public:
  struct Entry {
    SideFileOp op;
    std::string key;
    Rid rid;
  };
  struct Cursor {
    PageId page = kInvalidPageId;
    SlotId slot = 0;  // next slot to read on `page`
  };

  SideFile(IndexId index, BufferPool* pool, TransactionManager* txns)
      : index_id_(index), pool_(pool), txns_(txns) {}

  SideFile(const SideFile&) = delete;
  SideFile& operator=(const SideFile&) = delete;

  Status Create();
  Status Open(PageId first);

  PageId first_page() const { return first_page_; }
  IndexId index_id() const { return index_id_; }

  // Appends one entry (redo-only logged on txn's chain; never undone —
  // rollback appends *new* inverse entries instead, section 3.2.3).
  Status Append(Transaction* txn, SideFileOp op, std::string_view key,
                const Rid& rid);

  // Reads up to `max` entries from *cursor, advancing it.  Returns the
  // number read (0 = caught up with the appenders).
  StatusOr<size_t> ReadBatch(Cursor* cursor, size_t max,
                             std::vector<Entry>* out) const;

  Cursor Begin() const { return Cursor{first_page_, 0}; }

  uint64_t entries_appended() const { return appended_.load(); }
  size_t page_count() const;

 private:
  StatusOr<PageId> ExtendChain();

  IndexId index_id_;
  BufferPool* pool_;
  TransactionManager* txns_;
  PageId first_page_ = kInvalidPageId;
  std::atomic<PageId> tail_page_{kInvalidPageId};
  std::atomic<uint64_t> appended_{0};
  // Serializes chain extension.  The appender's own tail guard is always
  // released before taking this, but the Figure 2 undo hook appends with
  // the undone *data* page still latched, while ExtendChain latches
  // side-file pages under this mutex — a benign crossing over disjoint
  // page sets, so the rank is EXEMPT from order checking (common/sync.h).
  sync::Mutex extend_mu_{sync::LockRank::kSideFileExtend,
                         "sidefile.extend_mu"};
  mutable sync::Mutex count_mu_{sync::LockRank::kSideFileCount,
                                "sidefile.count_mu"};
  size_t page_count_ OIB_GUARDED_BY(count_mu_) = 0;
};

// Recovery handler: physical redo only (appends are never undone).
class SideFileRm : public ResourceManager {
 public:
  explicit SideFileRm(BufferPool* pool) : pool_(pool) {}

  RmId rm_id() const override { return RmId::kSideFile; }
  Status Redo(const LogRecord& rec) override;
  Status Undo(Transaction* txn, const LogRecord& rec) override;

 private:
  BufferPool* pool_;
};

// Entry codec (shared with recovery): [op u8][rid u32+u16][key bytes].
void EncodeSideFileEntry(std::string* out, SideFileOp op,
                         std::string_view key, const Rid& rid);
Status DecodeSideFileEntry(std::string_view in, SideFile::Entry* out);

}  // namespace oib

#endif  // OIB_SIDEFILE_SIDE_FILE_H_
