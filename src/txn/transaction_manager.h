// TransactionManager: begin/commit/rollback and the logging helpers every
// resource manager uses to chain records onto a transaction.
//
// Rollback walks the transaction's log chain backwards, dispatching undo to
// the owning resource manager; CLRs are written so that a crash during
// rollback never repeats completed undo work (ARIES).  The same machinery
// rolls back loser transactions during restart recovery.

#ifndef OIB_TXN_TRANSACTION_MANAGER_H_
#define OIB_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "txn/lock_manager.h"
#include "txn/transaction.h"
#include "wal/log_manager.h"
#include "wal/resource_manager.h"

namespace oib {

class TransactionManager {
 public:
  TransactionManager(LogManager* log, LockManager* locks, RmRegistry* rms)
      : log_(log), locks_(locks), rms_(rms) {}

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // Starts a transaction (writes its Begin record).
  Transaction* Begin();

  // Commits: Commit record, log force, lock release.
  Status Commit(Transaction* txn);

  // Rolls back all of txn's work, then releases locks.
  Status Rollback(Transaction* txn);

  // Appends a record on txn's chain (sets prev_lsn/last_lsn).  For records
  // not tied to a transaction (txn == nullptr) the chain fields stay empty.
  Status AppendLog(Transaction* txn, LogRecord* rec);

  // Appends a CLR compensating `undone`, with undo_next = undone.prev_lsn.
  // Returns the CLR's LSN via rec->lsn.
  Status AppendClr(Transaction* txn, const LogRecord& undone,
                   LogRecord* rec);

  // Restart-recovery hook: adopts a loser transaction reconstructed by
  // analysis so Rollback can drive its undo.
  Transaction* AdoptLoser(TxnId id, Lsn last_lsn);

  // Ends (forgets) a transaction object after commit/rollback.  Any raw
  // pointer to it becomes invalid.
  void End(Transaction* txn);

  // Snapshot of active transactions (id, last_lsn) for fuzzy checkpoints.
  std::vector<std::pair<TxnId, Lsn>> ActiveTransactions() const;

  // Ensures future txn ids start above `floor` (used after restart).
  void BumpNextTxnId(TxnId floor);

  LockManager* locks() { return locks_; }
  LogManager* log() { return log_; }
  RmRegistry* rms() { return rms_; }

  uint64_t commits() const { return commits_.load(); }
  uint64_t aborts() const { return aborts_.load(); }

 private:
  // Undo dispatch loop shared by Rollback and restart undo.
  Status UndoChain(Transaction* txn);

  LogManager* log_;
  LockManager* locks_;
  RmRegistry* rms_;

  std::atomic<TxnId> next_txn_id_{1};
  mutable sync::Mutex mu_{sync::LockRank::kTxnActive, "txn.active_mu"};
  std::unordered_map<TxnId, std::unique_ptr<Transaction>> active_
      OIB_GUARDED_BY(mu_);
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
};

}  // namespace oib

#endif  // OIB_TXN_TRANSACTION_MANAGER_H_
