// LockManager: transaction locks (distinct from page latches).
//
// Modes IS/IX/S/SIX/X with the standard compatibility matrix.  Supports
// blocking requests with a timeout (timeout-based deadlock resolution:
// the waiter gets Status::Aborted and its transaction rolls back),
// conditional requests (return Busy instead of waiting — used by the
// pseudo-delete garbage collector, paper section 2.2.4), and instant
// duration (grant then release immediately — "conditional instant share
// lock").
//
// Lock names follow data-only locking (ARIES/IM, paper section 6.2): a key
// lock shares its name with the lock on the record the key points to, so a
// freshly built index can be exposed to readers without quiescing updates.

#ifndef OIB_TXN_LOCK_MANAGER_H_
#define OIB_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace oib {

enum class LockMode : uint8_t { kIS = 0, kIX = 1, kS = 2, kSIX = 3, kX = 4 };

// True if a holder in `held` allows a new request in `requested`.
bool LockCompatible(LockMode held, LockMode requested);
// Least mode at least as strong as both (conversion lattice supremum).
LockMode LockSupremum(LockMode a, LockMode b);
const char* LockModeName(LockMode m);

using LockId = uint64_t;

// Lock-name constructors (data-only locking).
LockId TableLockId(TableId table);
LockId RecordLockId(TableId table, const Rid& rid);

struct LockOptions {
  bool conditional = false;  // don't wait; Busy if not grantable now
  bool instant = false;      // release immediately upon grant
  uint64_t timeout_ms = 2000;
};

class LockManager {
 public:
  explicit LockManager(uint64_t default_timeout_ms = 2000)
      : default_timeout_ms_(default_timeout_ms) {}
  ~LockManager();

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Acquires (or converts to) `mode` on `lock` for `txn`.
  //  OK       — granted (and already released if options.instant)
  //  Busy     — conditional request not grantable
  //  Aborted  — wait timed out (presumed deadlock); caller must roll back
  Status Lock(TxnId txn, LockId lock, LockMode mode,
              const LockOptions& options = {});

  // Releases one lock (rarely needed; commit/abort use ReleaseAll).
  void Unlock(TxnId txn, LockId lock);

  // Releases every lock held by `txn`.
  void ReleaseAll(TxnId txn);

  // True if `txn` holds `lock` in a mode at least as strong as `mode`.
  bool Holds(TxnId txn, LockId lock, LockMode mode) const;

  size_t held_count(TxnId txn) const;

  uint64_t wait_count() const { return waits_.value(); }
  uint64_t timeout_count() const { return timeouts_.value(); }
  // Time blocked waiting for locks, in nanoseconds (both granted-after-wait
  // and timed-out requests record here).
  const obs::Histogram& wait_hist() const { return wait_ns_; }

  // Registers lock.{waits,timeouts,wait_ns} with `registry` (owner = this;
  // the destructor detaches them).
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct LockState {
    std::map<TxnId, LockMode> holders;
    // FIFO wait queue: (txn, requested mode).
    std::deque<std::pair<TxnId, LockMode>> waiters;
  };

  // True if `txn` may be granted `mode` right now (ignores queue order;
  // caller checks queue position).
  static bool Grantable(const LockState& st, TxnId txn, LockMode mode);

  uint64_t default_timeout_ms_;
  mutable sync::Mutex mu_{sync::LockRank::kLockTable, "locktable.mu"};
  sync::CondVar cv_;
  std::unordered_map<LockId, LockState> locks_ OIB_GUARDED_BY(mu_);
  std::unordered_map<TxnId, std::unordered_set<LockId>> held_
      OIB_GUARDED_BY(mu_);
  obs::Counter waits_;
  obs::Counter timeouts_;  // timeout-based deadlock aborts
  obs::Histogram wait_ns_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace oib

#endif  // OIB_TXN_LOCK_MANAGER_H_
