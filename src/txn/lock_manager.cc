#include "txn/lock_manager.h"

#include <chrono>

#include "obs/trace.h"

namespace oib {

namespace {
// compat[held][requested]
constexpr bool kCompat[5][5] = {
    //            IS     IX     S      SIX    X
    /* IS  */ {true, true, true, true, false},
    /* IX  */ {true, true, false, false, false},
    /* S   */ {true, false, true, false, false},
    /* SIX */ {true, false, false, false, false},
    /* X   */ {false, false, false, false, false},
};

// sup[a][b]
constexpr LockMode kSup[5][5] = {
    /* IS  */ {LockMode::kIS, LockMode::kIX, LockMode::kS, LockMode::kSIX,
               LockMode::kX},
    /* IX  */ {LockMode::kIX, LockMode::kIX, LockMode::kSIX, LockMode::kSIX,
               LockMode::kX},
    /* S   */ {LockMode::kS, LockMode::kSIX, LockMode::kS, LockMode::kSIX,
               LockMode::kX},
    /* SIX */ {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX,
               LockMode::kX},
    /* X   */ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
               LockMode::kX},
};
}  // namespace

bool LockCompatible(LockMode held, LockMode requested) {
  return kCompat[static_cast<int>(held)][static_cast<int>(requested)];
}

LockMode LockSupremum(LockMode a, LockMode b) {
  return kSup[static_cast<int>(a)][static_cast<int>(b)];
}

const char* LockModeName(LockMode m) {
  static const char* kNames[] = {"IS", "IX", "S", "SIX", "X"};
  return kNames[static_cast<int>(m)];
}

LockManager::~LockManager() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

void LockManager::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterCounter("lock.waits", &waits_, this);
  registry->RegisterCounter("lock.timeouts", &timeouts_, this);
  registry->RegisterHistogram("lock.wait_ns", &wait_ns_, this);
}

LockId TableLockId(TableId table) {
  return (static_cast<uint64_t>(1) << 56) | table;
}

LockId RecordLockId(TableId table, const Rid& rid) {
  // (2, table, page, slot) packed; table in bits 48..55.
  return (static_cast<uint64_t>(2) << 56) |
         (static_cast<uint64_t>(table & 0xff) << 48) |
         (static_cast<uint64_t>(rid.page) << 16) | rid.slot;
}

bool LockManager::Grantable(const LockState& st, TxnId txn, LockMode mode) {
  auto self = st.holders.find(txn);
  LockMode effective = mode;
  if (self != st.holders.end()) {
    effective = LockSupremum(self->second, mode);
  }
  for (const auto& [holder, held_mode] : st.holders) {
    if (holder == txn) continue;
    if (!LockCompatible(held_mode, effective)) return false;
  }
  return true;
}

Status LockManager::Lock(TxnId txn, LockId lock, LockMode mode,
                         const LockOptions& options) {
  sync::MutexLock g(&mu_);
  LockState& st = locks_[lock];

  // Re-entrant fast path: already held in a sufficient mode.
  auto self = st.holders.find(txn);
  if (self != st.holders.end() &&
      LockSupremum(self->second, mode) == self->second) {
    return Status::OK();
  }

  auto grant = [&]() {
    LockMode new_mode = mode;
    auto it = st.holders.find(txn);
    if (it != st.holders.end()) new_mode = LockSupremum(it->second, mode);
    if (options.instant) {
      // Instant duration: grant is the answer; don't retain (unless the
      // txn already held the lock, which stays as-is).
      return;
    }
    st.holders[txn] = new_mode;
    held_[txn].insert(lock);
  };

  // Conversions (already a holder) jump the queue, as is standard;
  // fresh requests respect FIFO order among waiters.
  bool is_conversion = self != st.holders.end();
  bool queue_clear = is_conversion || st.waiters.empty();
  if (queue_clear && Grantable(st, txn, mode)) {
    grant();
    return Status::OK();
  }

  if (options.conditional) return Status::Busy("lock not available");

  // Wait with timeout.
  waits_.Inc();
  uint64_t wait_start_ns = obs::MonotonicNanos();
  uint64_t timeout = options.timeout_ms ? options.timeout_ms
                                        : default_timeout_ms_;
  st.waiters.emplace_back(txn, mode);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout);
  for (;;) {
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      // Remove self from the queue and abort.
      auto& q = locks_[lock].waiters;
      for (auto it = q.begin(); it != q.end(); ++it) {
        if (it->first == txn && it->second == mode) {
          q.erase(it);
          break;
        }
      }
      timeouts_.Inc();
      wait_ns_.Record(obs::MonotonicNanos() - wait_start_ns);
      cv_.NotifyAll();
      return Status::Aborted("lock wait timeout (presumed deadlock)");
    }
    LockState& cur = locks_[lock];
    bool at_head = !cur.waiters.empty() && cur.waiters.front().first == txn;
    bool conv = cur.holders.count(txn) > 0;
    if ((at_head || conv) && Grantable(cur, txn, mode)) {
      // Dequeue self.
      for (auto it = cur.waiters.begin(); it != cur.waiters.end(); ++it) {
        if (it->first == txn && it->second == mode) {
          cur.waiters.erase(it);
          break;
        }
      }
      LockMode new_mode = mode;
      auto h = cur.holders.find(txn);
      if (h != cur.holders.end()) new_mode = LockSupremum(h->second, mode);
      if (!options.instant) {
        cur.holders[txn] = new_mode;
        held_[txn].insert(lock);
      }
      wait_ns_.Record(obs::MonotonicNanos() - wait_start_ns);
      cv_.NotifyAll();
      return Status::OK();
    }
  }
}

void LockManager::Unlock(TxnId txn, LockId lock) {
  sync::MutexLock g(&mu_);
  auto it = locks_.find(lock);
  if (it == locks_.end()) return;
  it->second.holders.erase(txn);
  auto h = held_.find(txn);
  if (h != held_.end()) h->second.erase(lock);
  if (it->second.holders.empty() && it->second.waiters.empty()) {
    locks_.erase(it);
  }
  cv_.NotifyAll();
}

void LockManager::ReleaseAll(TxnId txn) {
  sync::MutexLock g(&mu_);
  auto h = held_.find(txn);
  if (h == held_.end()) return;
  for (LockId lock : h->second) {
    auto it = locks_.find(lock);
    if (it == locks_.end()) continue;
    it->second.holders.erase(txn);
    if (it->second.holders.empty() && it->second.waiters.empty()) {
      locks_.erase(it);
    }
  }
  held_.erase(h);
  cv_.NotifyAll();
}

bool LockManager::Holds(TxnId txn, LockId lock, LockMode mode) const {
  sync::MutexLock g(&mu_);
  auto it = locks_.find(lock);
  if (it == locks_.end()) return false;
  auto h = it->second.holders.find(txn);
  if (h == it->second.holders.end()) return false;
  return LockSupremum(h->second, mode) == h->second;
}

size_t LockManager::held_count(TxnId txn) const {
  sync::MutexLock g(&mu_);
  auto h = held_.find(txn);
  return h == held_.end() ? 0 : h->second.size();
}

}  // namespace oib
