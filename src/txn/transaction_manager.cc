#include "txn/transaction_manager.h"

namespace oib {

Transaction* TransactionManager::Begin() {
  TxnId id = next_txn_id_.fetch_add(1);
  auto txn = std::make_unique<Transaction>(id);
  Transaction* raw = txn.get();
  {
    sync::MutexLock g(&mu_);
    active_[id] = std::move(txn);
  }
  LogRecord rec;
  rec.type = LogRecordType::kBegin;
  rec.txn_id = id;
  // A Begin record is a fixed-size header that always fits the ring, and
  // Begin() has no error channel; a failure would only repeat on the first
  // real append, which does propagate.
  (void)AppendLog(raw, &rec);
  return raw;
}

Status TransactionManager::Commit(Transaction* txn) {
  LogRecord rec;
  rec.type = LogRecordType::kCommit;
  rec.txn_id = txn->id();
  OIB_RETURN_IF_ERROR(AppendLog(txn, &rec));
  // Force the log at commit (WAL durability rule).
  OIB_RETURN_IF_ERROR(log_->Flush(rec.lsn));
  txn->set_state(TxnState::kCommitted);
  locks_->ReleaseAll(txn->id());
  commits_.fetch_add(1);
  End(txn);
  return Status::OK();
}

Status TransactionManager::Rollback(Transaction* txn) {
  txn->set_state(TxnState::kRollingBack);
  Status s = UndoChain(txn);
  if (!s.ok()) return s;
  LogRecord rec;
  rec.type = LogRecordType::kAbort;
  rec.txn_id = txn->id();
  OIB_RETURN_IF_ERROR(AppendLog(txn, &rec));
  txn->set_state(TxnState::kAborted);
  locks_->ReleaseAll(txn->id());
  aborts_.fetch_add(1);
  End(txn);
  return Status::OK();
}

Status TransactionManager::UndoChain(Transaction* txn) {
  Lsn cur = txn->last_lsn();
  while (cur != kInvalidLsn) {
    LogRecord rec;
    OIB_RETURN_IF_ERROR(log_->ReadRecord(cur, &rec));
    switch (rec.type) {
      case LogRecordType::kClr:
        cur = rec.undo_next_lsn;
        break;
      case LogRecordType::kBegin:
        return Status::OK();
      case LogRecordType::kUpdate:
      case LogRecordType::kUndoOnly: {
        ResourceManager* rm = rms_->Get(rec.rm_id);
        if (rm == nullptr) {
          return Status::Corruption("no RM for undo dispatch");
        }
        OIB_RETURN_IF_ERROR(rm->Undo(txn, rec));
        cur = rec.prev_lsn;
        break;
      }
      default:
        cur = rec.prev_lsn;
        break;
    }
  }
  return Status::OK();
}

Status TransactionManager::AppendLog(Transaction* txn, LogRecord* rec) {
  if (txn != nullptr) {
    rec->txn_id = txn->id();
    rec->prev_lsn = txn->last_lsn();
  }
  OIB_RETURN_IF_ERROR(log_->Append(rec));
  if (txn != nullptr) txn->set_last_lsn(rec->lsn);
  return Status::OK();
}

Status TransactionManager::AppendClr(Transaction* txn,
                                     const LogRecord& undone,
                                     LogRecord* rec) {
  rec->type = LogRecordType::kClr;
  rec->undo_next_lsn = undone.prev_lsn;
  return AppendLog(txn, rec);
}

Transaction* TransactionManager::AdoptLoser(TxnId id, Lsn last_lsn) {
  auto txn = std::make_unique<Transaction>(id);
  txn->set_last_lsn(last_lsn);
  Transaction* raw = txn.get();
  sync::MutexLock g(&mu_);
  active_[id] = std::move(txn);
  return raw;
}

void TransactionManager::End(Transaction* txn) {
  sync::MutexLock g(&mu_);
  active_.erase(txn->id());
}

std::vector<std::pair<TxnId, Lsn>> TransactionManager::ActiveTransactions()
    const {
  sync::MutexLock g(&mu_);
  std::vector<std::pair<TxnId, Lsn>> out;
  out.reserve(active_.size());
  for (const auto& [id, txn] : active_) {
    out.emplace_back(id, txn->last_lsn());
  }
  return out;
}

void TransactionManager::BumpNextTxnId(TxnId floor) {
  TxnId cur = next_txn_id_.load();
  while (cur <= floor && !next_txn_id_.compare_exchange_weak(cur, floor + 1)) {
  }
}

}  // namespace oib
