// Transaction: identity, state, and the per-transaction log-record chain.
//
// The chain (last_lsn -> prev_lsn -> ... -> Begin) drives rollback; CLRs
// written during rollback link past already-undone records via
// undo_next_lsn, exactly as in ARIES.

#ifndef OIB_TXN_TRANSACTION_H_
#define OIB_TXN_TRANSACTION_H_

#include <atomic>

#include "common/types.h"

namespace oib {

enum class TxnState {
  kActive,
  kCommitted,
  kAborted,
  kRollingBack,
};

class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }

  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  Lsn last_lsn() const { return last_lsn_; }
  void set_last_lsn(Lsn lsn) { last_lsn_ = lsn; }

  bool in_rollback() const { return state_ == TxnState::kRollingBack; }

 private:
  TxnId id_;
  TxnState state_ = TxnState::kActive;
  Lsn last_lsn_ = kInvalidLsn;
};

}  // namespace oib

#endif  // OIB_TXN_TRANSACTION_H_
