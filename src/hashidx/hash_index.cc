#include "hashidx/hash_index.h"

#include <thread>

#include "common/failpoint.h"
#include "obs/metrics.h"

namespace oib {

namespace {

// FNV-1a 64-bit.  Cheap, good-enough dispersion for short normalized
// keys; the low bits select the shard and the full value feeds the
// per-shard unordered_map.
uint64_t HashBytes(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

size_t AutoShards() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  size_t n = hw < 16 ? hw : 16;
  // Round down to a power of two.
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

size_t HashIndex::KeyHash::operator()(std::string_view s) const {
  return static_cast<size_t>(HashBytes(s));
}

HashIndex::HashIndex(IndexId index_id, size_t shards) : index_id_(index_id) {
  size_t n = shards == 0 ? AutoShards() : shards;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

HashIndex::~HashIndex() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

HashIndex::Shard& HashIndex::ShardFor(std::string_view key) {
  return *shards_[HashBytes(key) & (shards_.size() - 1)];
}

const HashIndex::Shard& HashIndex::ShardFor(std::string_view key) const {
  return *shards_[HashBytes(key) & (shards_.size() - 1)];
}

HashProbe HashIndex::Probe(std::string_view key, Rid* rid) const {
  if (!readable()) return HashProbe::kFallback;
  const Shard& shard = ShardFor(key);
  sync::ReaderMutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return HashProbe::kMiss;
  // Minimum live RID, matching FindKeyValue's ascending (key, rid) scan
  // where the first live entry wins.
  const Slot& slot = it->second;
  bool have_live = false;
  Rid best;
  auto consider = [&](const Entry& e) {
    if ((e.flags & kEntryPseudoDeleted) != 0) return;
    if (!have_live || e.rid < best) {
      best = e.rid;
      have_live = true;
    }
  };
  consider(slot.first);
  if (slot.overflow != nullptr) {
    for (const Entry& e : *slot.overflow) consider(e);
  }
  if (!have_live) return HashProbe::kDeleted;
  *rid = best;
  return HashProbe::kHit;
}

void HashIndex::OnLeafInsert(std::string_view key, const Rid& rid,
                             uint8_t flags) {
  Shard& shard = ShardFor(key);
  sync::WriterMutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.map.emplace(std::string(key), Slot{Entry{rid, flags}, nullptr});
    shard.entries.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = it->second;
  if (slot.first.rid == rid) {  // re-insert over an existing mirror entry
    slot.first.flags = flags;
    return;
  }
  if (slot.overflow != nullptr) {
    for (Entry& e : *slot.overflow) {
      if (e.rid == rid) {
        e.flags = flags;
        return;
      }
    }
  } else {
    slot.overflow = std::make_unique<std::vector<Entry>>();
  }
  slot.overflow->push_back(Entry{rid, flags});
  shard.entries.fetch_add(1, std::memory_order_relaxed);
}

void HashIndex::OnLeafRemove(std::string_view key, const Rid& rid) {
  Shard& shard = ShardFor(key);
  sync::WriterMutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return;
  Slot& slot = it->second;
  if (slot.first.rid == rid) {
    if (slot.overflow == nullptr || slot.overflow->empty()) {
      shard.map.erase(it);
    } else {
      slot.first = slot.overflow->back();
      slot.overflow->pop_back();
    }
    shard.entries.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  if (slot.overflow == nullptr) return;
  for (size_t i = 0; i < slot.overflow->size(); ++i) {
    if ((*slot.overflow)[i].rid == rid) {
      (*slot.overflow)[i] = slot.overflow->back();
      slot.overflow->pop_back();
      shard.entries.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
  }
}

void HashIndex::OnLeafSetFlags(std::string_view key, const Rid& rid,
                               uint8_t flags) {
  Shard& shard = ShardFor(key);
  sync::WriterMutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    // Flag change for an entry the mirror has not seen (population gap).
    // The tree holds the entry, so upserting keeps the mirror a subset of
    // the truth rather than diverging from it.
    shard.map.emplace(std::string(key), Slot{Entry{rid, flags}, nullptr});
    shard.entries.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = it->second;
  if (slot.first.rid == rid) {
    slot.first.flags = flags;
    return;
  }
  if (slot.overflow != nullptr) {
    for (Entry& e : *slot.overflow) {
      if (e.rid == rid) {
        e.flags = flags;
        return;
      }
    }
  } else {
    slot.overflow = std::make_unique<std::vector<Entry>>();
  }
  slot.overflow->push_back(Entry{rid, flags});
  shard.entries.fetch_add(1, std::memory_order_relaxed);
}

void HashIndex::Clear() {
  for (auto& shard : shards_) {
    sync::WriterMutexLock lock(&shard->mu);
    shard->map.clear();
    shard->entries.store(0, std::memory_order_relaxed);
  }
}

uint64_t HashIndex::entry_count() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->entries.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t HashIndex::shard_entry_count(size_t shard) const {
  return shards_[shard]->entries.load(std::memory_order_relaxed);
}

void HashIndex::AttachMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr || metrics_ != nullptr) return;
  metrics_ = registry;
  std::string prefix = "hash.idx" + std::to_string(index_id_) + ".";
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard* shard = shards_[i].get();
    registry->RegisterValueFn(
        prefix + "shard" + std::to_string(i) + ".entries",
        [shard] { return shard->entries.load(std::memory_order_relaxed); },
        this);
  }
}

Status PopulateHashFromTree(BTree* tree, HashIndex* hash) {
  OIB_FAIL_POINT("hash.populate");
  hash->Clear();
  return tree->ScanAll(
      [hash](std::string_view key, const Rid& rid, uint8_t flags) {
        hash->BulkAdd(key, rid, flags);
      });
}

}  // namespace oib
