// Griffin-style hash fast path: a sharded in-memory hash table over
// <normalized key -> RID> kept next to a B+-tree index.  Point reads
// probe the hash first (O(1), no page latches) and fall back to a tree
// descent on a miss; range scans keep using the tree.
//
// The hash is a *mirror* of the tree's leaf entries, maintained through
// BTree's IndexEntryObserver hooks, which fire under the leaf X latch at
// every logical entry mutation (insert, remove, flag change) — including
// the ARIES/IM logical-undo and pseudo-delete-GC paths.  Because the
// mirror carries the per-entry pseudo-delete flag, the NSF/SF visibility
// rules carry over unchanged: a probe never surfaces a pseudo-deleted
// entry, and an all-pseudo slot answers "deleted" exactly as a tree
// descent would.
//
// Correctness stance: a *missing* key is always safe (probe misses, the
// read falls back to the tree), so the structure only has to guarantee
// it never holds a *wrong* entry.  During bulk population (offline / SF
// phase 2) slots may be transiently incomplete; the fragment therefore
// stays unreadable (`readable() == false`, every probe reports kFallback)
// until Catalog::SetIndexReady publishes it together with the index
// state flip.
//
// Concurrency: one SharedMutex per shard at rank kHashShard (95), which
// sits above the page-latch rank, so observer callbacks — running under a
// leaf X latch (rank 60) — acquire it in legal ascending order.  Probes
// take the shard lock shared with no latch held.

#ifndef OIB_HASHIDX_HASH_INDEX_H_
#define OIB_HASHIDX_HASH_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"

namespace oib {

namespace obs {
class MetricsRegistry;
}  // namespace obs

// Outcome of a point probe.
enum class HashProbe : uint8_t {
  kHit,       // live entry found; *rid is the minimum live RID for the key
  kDeleted,   // key present but every entry is pseudo-deleted: the tree
              // would answer the same, so the read resolves to NotFound
              // without a descent
  kMiss,      // key definitely absent from the slot map: for a fragment
              // mirroring a complete tree this is authoritative, but the
              // read path still descends (cheap, and keeps the fallback
              // contract uniform)
  kFallback,  // fragment not readable yet (build in flight): descend
};

class HashIndex final : public IndexEntryObserver {
 public:
  // `shards` must be a power of two; 0 picks min(16, hw_concurrency)
  // rounded down to a power of two.
  explicit HashIndex(IndexId index_id, size_t shards = 0);
  ~HashIndex() override;

  HashIndex(const HashIndex&) = delete;
  HashIndex& operator=(const HashIndex&) = delete;

  // --- read side -----------------------------------------------------
  // Probes for `key`.  On kHit, *rid is the minimum live RID — exactly
  // the entry BTree::FindKeyValue would return for a point lookup.
  // Never blocks on page latches; takes one shard lock shared.
  HashProbe Probe(std::string_view key, Rid* rid) const;

  // --- mirror maintenance (IndexEntryObserver) -----------------------
  // Called by the tree under the leaf X latch; per-entry ordering is
  // inherited from the latch.
  void OnLeafInsert(std::string_view key, const Rid& rid,
                    uint8_t flags) override;
  void OnLeafRemove(std::string_view key, const Rid& rid) override;
  void OnLeafSetFlags(std::string_view key, const Rid& rid,
                      uint8_t flags) override;

  // --- bulk population ----------------------------------------------
  // Same semantics as OnLeafInsert; used by the build pipeline's consume
  // stage (bulk loader writes bypass the tree's mutation choke points)
  // and by the restart repopulation scan.
  void BulkAdd(std::string_view key, const Rid& rid, uint8_t flags) {
    OnLeafInsert(key, rid, flags);
  }

  // Empties every shard (build rollback / re-population from scratch).
  void Clear();

  // --- publication gate ----------------------------------------------
  bool readable() const { return readable_.load(std::memory_order_acquire); }
  void set_readable(bool on) {
    readable_.store(on, std::memory_order_release);
  }

  // --- introspection --------------------------------------------------
  size_t shard_count() const { return shards_.size(); }
  // Total mirrored entries (relaxed sum across shards).
  uint64_t entry_count() const;
  // Entries in one shard (relaxed).
  uint64_t shard_entry_count(size_t shard) const;

  // Registers per-shard occupancy value-fns (`hash.idx<N>.shard<K>.entries`)
  // with `this` as owner; the destructor detaches them.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  struct Entry {
    Rid rid;
    uint8_t flags;
  };
  // All entries for one normalized key: first duplicate inline (unique
  // indexes never allocate), the rest in a rarely-touched overflow list.
  struct Slot {
    Entry first;
    std::unique_ptr<std::vector<Entry>> overflow;
  };

  struct KeyHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const;
  };

  struct Shard {
    mutable sync::SharedMutex mu{sync::LockRank::kHashShard,
                                 "hashidx.shard.mu"};
    std::unordered_map<std::string, Slot, KeyHash, std::equal_to<>> map
        OIB_GUARDED_BY(mu);
    // Mirror of the total entry count (not slot count), readable without
    // the lock by the occupancy gauges.
    std::atomic<uint64_t> entries{0};
  };

  Shard& ShardFor(std::string_view key);
  const Shard& ShardFor(std::string_view key) const;

  IndexId index_id_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> readable_{false};
  obs::MetricsRegistry* metrics_ = nullptr;
};

// Rebuilds the mirror from a full tree scan: clears every shard, then
// replays the tree's leaf entries (flags included) through BulkAdd.
// Used at restart (Catalog::Load, SfIndexBuilder::Resume after a loader
// truncation) where the tree is quiescent.  Carries the `hash.populate`
// failpoint.
Status PopulateHashFromTree(BTree* tree, HashIndex* hash);

}  // namespace oib

#endif  // OIB_HASHIDX_HASH_INDEX_H_
