// BTreePage: sorted slotted layout for B+-tree nodes, viewed over a raw
// page buffer.
//
// Keys are <key value, RID> pairs (paper section 1.1); the RID acts as a
// tie-breaker so non-unique indexes store duplicates as distinct keys.
// Every leaf entry carries a flags byte whose low bit is the *pseudo-delete*
// flag ("a 1-bit flag is associated with every key in the index to indicate
// whether the key is pseudo deleted or not", section 2.1.2).
//
// Layout (offsets within the page):
//   [0..8)    page LSN
//   [8]       page type (kBtreeLeaf / kBtreeInternal)
//   [9]       level (0 = leaf)
//   [10..12)  entry count
//   [12..14)  free_end — lowest byte offset used by entry data
//   [14..18)  next page id (leaf right-sibling chain)
//   [18..22)  leftmost child (internal pages only)
//   [22..)    offset array, 2 bytes per entry, in key order
//   ...       free space
//   [free_end..page_size)  entry data, growing downward
//
// Entry encodings:
//   leaf:     [flags u8][rid_page u32][rid_slot u16][klen u16][key bytes]
//   internal: [child u32][rid_page u32][rid_slot u16][klen u16][key bytes]
//
// Internal-node routing: child pointers are leftmost_child, child_0, ...,
// child_{n-1}; an entry (key_i, child_i) routes keys >= key_i and
// < key_{i+1}.

#ifndef OIB_BTREE_BTREE_PAGE_H_
#define OIB_BTREE_BTREE_PAGE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "common/types.h"
#include "heap/slotted_page.h"  // PageType

namespace oib {

// Pseudo-delete flag bit (paper section 2.1.2).
inline constexpr uint8_t kEntryPseudoDeleted = 0x1;

// Three-way comparison of full index keys <key value, RID>.
int CompareIndexKey(std::string_view a_key, const Rid& a_rid,
                    std::string_view b_key, const Rid& b_rid);

class BTreePage {
 public:
  BTreePage(char* data, size_t page_size)
      : data_(data), page_size_(page_size) {}

  void Init(bool leaf, uint8_t level);

  bool is_leaf() const;
  uint8_t level() const;
  uint16_t count() const;
  PageId next() const;
  void set_next(PageId id);
  PageId leftmost_child() const;
  void set_leftmost_child(PageId id);

  std::string_view KeyAt(int i) const;
  Rid RidAt(int i) const;
  uint8_t FlagsAt(int i) const;        // leaf only
  void SetFlagsAt(int i, uint8_t f);   // leaf only
  PageId ChildAt(int i) const;         // internal; i == -1 -> leftmost

  // First index whose entry >= (key, rid); count() if none.
  int LowerBound(std::string_view key, const Rid& rid) const;
  // Index of the exact entry (key, rid), or -1.
  int FindExact(std::string_view key, const Rid& rid) const;
  // Internal routing: child to descend into for (key, rid).
  PageId Route(std::string_view key, const Rid& rid) const;

  // Space checks (entry data + one offset slot).
  bool HasSpaceFor(size_t key_len) const;
  size_t FreeBytes() const;
  size_t UsedEntryBytes() const;

  Status InsertLeafAt(int i, std::string_view key, const Rid& rid,
                      uint8_t flags);
  Status InsertInternalAt(int i, std::string_view key, const Rid& rid,
                          PageId child);
  void RemoveAt(int i);

  // Serializes entries [from, to) as an opaque blob (for split log records
  // and checkpoints) and appends a previously serialized blob in order.
  std::string SerializeEntries(int from, int to) const;
  Status AppendSerialized(std::string_view blob);
  // Removes entries [from, count()).
  void TruncateFrom(int from);

 private:
  static constexpr size_t kTypeOff = 8;
  static constexpr size_t kLevelOff = 9;
  static constexpr size_t kCountOff = 10;
  static constexpr size_t kFreeEndOff = 12;
  static constexpr size_t kNextOff = 14;
  static constexpr size_t kLeftmostOff = 18;
  static constexpr size_t kOffsetsOff = 22;

  size_t EntryHeaderSize() const;  // bytes before klen+key
  uint16_t entry_offset(int i) const;
  void set_entry_offset(int i, uint16_t off);
  uint16_t free_end() const;
  void set_free_end(uint16_t v);
  void set_count(uint16_t v);

  size_t ContiguousFree() const;
  void Compact();
  // Writes entry bytes into data area; returns offset.  Caller ensures
  // space (after Compact if needed).
  uint16_t WriteEntry(std::string_view raw);
  std::string_view RawEntry(int i) const;
  Status InsertRawAt(int i, std::string_view raw);

  char* data_;
  size_t page_size_;
};

}  // namespace oib

#endif  // OIB_BTREE_BTREE_PAGE_H_
