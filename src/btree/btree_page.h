// BTreePage: sorted slotted layout for B+-tree nodes, viewed over a raw
// page buffer.
//
// Keys are <key value, RID> pairs (paper section 1.1); the RID acts as a
// tie-breaker so non-unique indexes store duplicates as distinct keys.
// Every leaf entry carries a flags byte whose low bit is the *pseudo-delete*
// flag ("a 1-bit flag is associated with every key in the index to indicate
// whether the key is pseudo deleted or not", section 2.1.2).
//
// Keys are normalized byte strings (common/key.h): all ordering is raw
// memcmp.  Each page stores the common prefix of its keys ONCE (at the top
// of the page) and every entry stores only its suffix past that prefix —
// classic prefix truncation.  The prefix only ever shrinks: inserting a key
// that shares less with the prefix re-encodes the resident entries with
// correspondingly longer suffixes.  Comparisons run against the
// (prefix, suffix) pair without materializing full keys.
//
// Layout (offsets within the page):
//   [0..8)    page LSN
//   [8]       page type (kBtreeLeaf / kBtreeInternal)
//   [9]       level (0 = leaf)
//   [10..12)  entry count
//   [12..14)  free_end — lowest byte offset used by entry data
//   [14..18)  next page id (leaf right-sibling chain)
//   [18..22)  leftmost child (internal pages only)
//   [22..24)  prefix length
//   [24..)    offset array, 2 bytes per entry, in key order
//   ...       free space
//   [free_end..page_size-prefix_len)  entry data, growing downward
//   [page_size-prefix_len..page_size) shared key prefix
//
// Entry encodings (suffix = key bytes past the page prefix):
//   leaf:     [flags u8][rid_page u32][rid_slot u16][slen u16][suffix]
//   internal: [child u32][rid_page u32][rid_slot u16][slen u16][suffix]
//
// Internal-node routing: child pointers are leftmost_child, child_0, ...,
// child_{n-1}; an entry (key_i, child_i) routes keys >= key_i and
// < key_{i+1}.
//
// Space accounting is dual.  *Physical* (FreeBytes/EntryGrowth) is exact
// under compression and is what admission on the bulk-load path uses, so
// compressed leaves hold more entries.  *Logical* (LogicalFreeBytes)
// prices every entry at its uncompressed size; the insert path's
// safe-node and admission checks use it so the pre-compression split
// invariants (kSafeNodeFreeBytes margins) stay valid: HasSpaceFor demands
// logical room plus prefix_len, which provably covers the worst physical
// expansion a prefix shrink can cause.

#ifndef OIB_BTREE_BTREE_PAGE_H_
#define OIB_BTREE_BTREE_PAGE_H_

#include <string>
#include <string_view>

#include "common/key.h"
#include "common/status.h"
#include "common/types.h"
#include "heap/slotted_page.h"  // PageType

namespace oib {

// Pseudo-delete flag bit (paper section 2.1.2).
inline constexpr uint8_t kEntryPseudoDeleted = 0x1;

// Three-way comparison of full index keys <key value, RID>.  Keys are
// normalized byte strings: memcmp order.
int CompareIndexKey(std::string_view a_key, const Rid& a_rid,
                    std::string_view b_key, const Rid& b_rid);

class BTreePage {
 public:
  BTreePage(char* data, size_t page_size)
      : data_(data), page_size_(page_size) {}

  void Init(bool leaf, uint8_t level);

  bool is_leaf() const;
  uint8_t level() const;
  uint16_t count() const;
  PageId next() const;
  void set_next(PageId id);
  PageId leftmost_child() const;
  void set_leftmost_child(PageId id);

  // Page-wide shared key prefix.
  size_t prefix_len() const;
  std::string_view prefix() const;
  // Suffix stored by entry i (full key = prefix + suffix).
  std::string_view SuffixAt(int i) const;

  // Materializes entry i's full key (prefix + suffix).  Hot paths compare
  // via CompareEntryAt instead.
  std::string KeyAt(int i) const;
  Rid RidAt(int i) const;
  uint8_t FlagsAt(int i) const;        // leaf only
  void SetFlagsAt(int i, uint8_t f);   // leaf only
  PageId ChildAt(int i) const;         // internal; i == -1 -> leftmost

  // Three-way comparison of entry i against (key, rid) without
  // materializing the entry's key.
  int CompareEntryAt(int i, std::string_view key, const Rid& rid) const;

  // First index whose entry >= (key, rid); count() if none.
  int LowerBound(std::string_view key, const Rid& rid) const;
  // Index of the exact entry (key, rid), or -1.
  int FindExact(std::string_view key, const Rid& rid) const;
  // Internal routing: child to descend into for (key, rid).
  PageId Route(std::string_view key, const Rid& rid) const;

  // Exact physical bytes inserting `key` would consume: entry + offset
  // slot + the expansion of resident suffixes if the prefix shrinks.
  size_t EntryGrowth(KeySlice key) const;
  // Conservative logical-space admission (insert path): logical room for
  // the uncompressed entry plus prefix_len, which always covers the
  // physical cost of the worst prefix shrink `key` can cause.
  bool HasSpaceFor(KeySlice key) const;
  // Physical free bytes (offset directory through entry data + prefix).
  size_t FreeBytes() const;
  // Free bytes if every entry were priced at its uncompressed size —
  // FreeBytes() minus the savings (count-1)*prefix_len.  The insert
  // path's safe-node checks use this so pre-compression thresholds hold.
  size_t LogicalFreeBytes() const;
  size_t UsedEntryBytes() const;

  Status InsertLeafAt(int i, std::string_view key, const Rid& rid,
                      uint8_t flags);
  Status InsertInternalAt(int i, std::string_view key, const Rid& rid,
                          PageId child);
  void RemoveAt(int i);

  // Serializes entries [from, to) as an opaque blob (for split log records
  // and checkpoints) and appends a previously serialized blob in order.
  // Blob entries carry FULL keys — the blob format is independent of the
  // source/target pages' prefixes; AppendSerialized re-encodes under the
  // target's prefix.
  std::string SerializeEntries(int from, int to) const;
  Status AppendSerialized(std::string_view blob);
  // Removes entries [from, count()).
  void TruncateFrom(int from);

 private:
  static constexpr size_t kTypeOff = 8;
  static constexpr size_t kLevelOff = 9;
  static constexpr size_t kCountOff = 10;
  static constexpr size_t kFreeEndOff = 12;
  static constexpr size_t kNextOff = 14;
  static constexpr size_t kLeftmostOff = 18;
  static constexpr size_t kPrefixLenOff = 22;
  static constexpr size_t kOffsetsOff = 24;

  size_t EntryHeaderSize() const;  // bytes before slen+suffix
  uint16_t entry_offset(int i) const;
  void set_entry_offset(int i, uint16_t off);
  uint16_t free_end() const;
  void set_free_end(uint16_t v);
  void set_count(uint16_t v);
  void set_prefix_len(uint16_t v);

  // count()==0: install `key` as the whole-page prefix.
  void ResetPrefix(KeySlice key);
  // Re-encodes every entry with the prefix cut to new_len (suffixes grow
  // by the cut bytes).  new_len <= prefix_len().
  void ShrinkPrefix(size_t new_len);
  // ResetPrefix/ShrinkPrefix as needed so `key` shares the page prefix.
  void AdjustPrefixFor(KeySlice key);
  // Shared insert path: space check, prefix adjust, suffix encode.
  Status InsertFullAt(int i, std::string_view key, std::string_view header);

  size_t ContiguousFree() const;
  void Compact();
  // Writes entry bytes into data area; returns offset.  Caller ensures
  // space (after Compact if needed).
  uint16_t WriteEntry(std::string_view raw);
  std::string_view RawEntry(int i) const;
  Status InsertRawAt(int i, std::string_view raw);

  char* data_;
  size_t page_size_;
};

}  // namespace oib

#endif  // OIB_BTREE_BTREE_PAGE_H_
