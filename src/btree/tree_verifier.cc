#include "btree/tree_verifier.h"

#include <cmath>
#include <vector>

namespace oib {

Status TreeVerifier::CheckSubtree(PageId page_id, uint32_t expect_level,
                                  const std::string* low_key,
                                  const Rid* low_rid,
                                  const std::string* high_key,
                                  const Rid* high_rid,
                                  TreeCheckReport* report,
                                  std::vector<PageId>* leaves_in_order) {
  size_t page_size = pool_->disk()->page_size();
  auto guard = pool_->FetchRead(page_id);
  if (!guard.ok()) return guard.status();
  BTreePage page(const_cast<char*>(guard->data()), page_size);

  if (page.level() != expect_level) {
    return Status::Corruption("level mismatch at page " +
                              std::to_string(page_id));
  }

  // Every key must lie in [low, high).
  for (int i = 0; i < page.count(); ++i) {
    if (i > 0 && CompareIndexKey(page.KeyAt(i - 1), page.RidAt(i - 1),
                                 page.KeyAt(i), page.RidAt(i)) >= 0) {
      return Status::Corruption("out-of-order keys in page " +
                                std::to_string(page_id));
    }
    if (low_key != nullptr &&
        CompareIndexKey(page.KeyAt(i), page.RidAt(i), *low_key, *low_rid) <
            0) {
      return Status::Corruption("key below low fence in page " +
                                std::to_string(page_id));
    }
    if (high_key != nullptr &&
        CompareIndexKey(page.KeyAt(i), page.RidAt(i), *high_key,
                        *high_rid) >= 0) {
      return Status::Corruption("key above high fence in page " +
                                std::to_string(page_id));
    }
  }

  if (page.is_leaf()) {
    ++report->leaf_pages;
    report->entries += page.count();
    for (int i = 0; i < page.count(); ++i) {
      if ((page.FlagsAt(i) & kEntryPseudoDeleted) != 0) {
        ++report->pseudo_deleted;
      }
    }
    leaves_in_order->push_back(page_id);
    return Status::OK();
  }

  ++report->internal_pages;
  if (page.leftmost_child() == kInvalidPageId) {
    return Status::Corruption("internal page without leftmost child");
  }
  // Children: leftmost covers [low, key_0); child_i covers
  // [key_i, key_{i+1}).
  int n = page.count();
  // Copy keys out: the guard is released during recursion.
  std::vector<std::string> keys(n);
  std::vector<Rid> rids(n);
  std::vector<PageId> children(n);
  PageId leftmost = page.leftmost_child();
  for (int i = 0; i < n; ++i) {
    keys[i] = page.KeyAt(i);
    rids[i] = page.RidAt(i);
    children[i] = page.ChildAt(i);
  }
  guard->Release();

  OIB_RETURN_IF_ERROR(CheckSubtree(
      leftmost, expect_level - 1, low_key, low_rid,
      n > 0 ? &keys[0] : high_key, n > 0 ? &rids[0] : high_rid, report,
      leaves_in_order));
  for (int i = 0; i < n; ++i) {
    const std::string* hk = (i + 1 < n) ? &keys[i + 1] : high_key;
    const Rid* hr = (i + 1 < n) ? &rids[i + 1] : high_rid;
    OIB_RETURN_IF_ERROR(CheckSubtree(children[i], expect_level - 1, &keys[i],
                                     &rids[i], hk, hr, report,
                                     leaves_in_order));
  }
  return Status::OK();
}

StatusOr<TreeCheckReport> TreeVerifier::Check() {
  TreeCheckReport report;
  PageId root = tree_->root();
  uint32_t height;
  {
    auto guard = pool_->FetchRead(root);
    if (!guard.ok()) return guard.status();
    BTreePage page(const_cast<char*>(guard->data()),
                   pool_->disk()->page_size());
    height = page.level() + 1;
  }
  report.height = height;

  std::vector<PageId> leaves_in_order;
  Status s = CheckSubtree(root, height - 1, nullptr, nullptr, nullptr,
                          nullptr, &report, &leaves_in_order);
  if (!s.ok()) {
    report.ok = false;
    report.error = s.ToString();
    return report;
  }

  // Leaf chain must equal the in-order leaf sequence.
  std::vector<PageId> chain;
  OIB_RETURN_IF_ERROR(tree_->CollectLeaves(&chain));
  if (chain != leaves_in_order) {
    report.ok = false;
    report.error = "leaf chain disagrees with in-order tree walk";
    return report;
  }

  report.ok = true;
  return report;
}

StatusOr<ClusteringStats> TreeVerifier::Clustering() {
  ClusteringStats stats;
  std::vector<PageId> chain;
  OIB_RETURN_IF_ERROR(tree_->CollectLeaves(&chain));
  stats.leaf_pages = chain.size();
  size_t page_size = pool_->disk()->page_size();

  uint64_t adjacent = 0;
  double gap_sum = 0.0;
  for (size_t i = 1; i < chain.size(); ++i) {
    int64_t gap = static_cast<int64_t>(chain[i]) -
                  static_cast<int64_t>(chain[i - 1]);
    if (gap == 1) ++adjacent;
    gap_sum += std::abs(static_cast<double>(gap));
  }
  if (chain.size() > 1) {
    stats.adjacency =
        static_cast<double>(adjacent) / static_cast<double>(chain.size() - 1);
    stats.mean_gap = gap_sum / static_cast<double>(chain.size() - 1);
  } else {
    stats.adjacency = 1.0;
    stats.mean_gap = 0.0;
  }

  double util_sum = 0.0;
  double prefix_len_sum = 0.0;
  uint64_t nonempty = 0;
  for (PageId id : chain) {
    auto guard = pool_->FetchRead(id);
    if (!guard.ok()) return guard.status();
    BTreePage page(const_cast<char*>(guard->data()), page_size);
    util_sum += 1.0 - static_cast<double>(page.FreeBytes()) /
                          static_cast<double>(page_size);
    stats.entries += page.count();
    if (page.count() > 0) {
      ++nonempty;
      prefix_len_sum += static_cast<double>(page.prefix_len());
      stats.prefix_saved_bytes +=
          static_cast<uint64_t>(page.count() - 1) * page.prefix_len();
    }
    for (int i = 0; i < page.count(); ++i) {
      if ((page.FlagsAt(i) & kEntryPseudoDeleted) != 0) {
        ++stats.pseudo_deleted;
      }
    }
  }
  if (!chain.empty()) {
    stats.utilization = util_sum / static_cast<double>(chain.size());
    stats.entries_per_leaf = static_cast<double>(stats.entries) /
                             static_cast<double>(chain.size());
  }
  if (nonempty > 0) {
    stats.mean_leaf_prefix_len = prefix_len_sum / static_cast<double>(nonempty);
  }
  return stats;
}

}  // namespace oib
