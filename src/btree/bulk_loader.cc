#include "btree/bulk_loader.h"

#include "common/coding.h"

namespace oib {

namespace {
constexpr size_t kAnchorRootOff = 8;
}  // namespace

size_t BulkLoader::SoftCapacity() const {
  return static_cast<size_t>(
      static_cast<double>(pool_->disk()->page_size()) *
      options_->leaf_fill_factor);
}

StatusOr<PageId> BulkLoader::AllocPage(bool leaf, uint8_t level) {
  PageId id;
  auto guard = pool_->NewPage(&id);
  if (!guard.ok()) return guard.status();
  BTreePage page(guard->data(), pool_->disk()->page_size());
  page.Init(leaf, level);
  allocated_.push_back(id);
  dirty_.insert(id);
  guards_.resize(std::max(guards_.size(), static_cast<size_t>(level) + 1));
  guards_[level] = std::move(*guard);
  return id;
}

Status BulkLoader::Begin() {
  levels_.clear();
  guards_.clear();
  allocated_.clear();
  dirty_.clear();
  keys_loaded_ = 0;
  high_key_.clear();

  PageId root = tree_->root();
  auto guard = pool_->FetchWrite(root);
  if (!guard.ok()) return guard.status();
  BTreePage page(guard->data(), pool_->disk()->page_size());
  if (!page.is_leaf() || page.count() != 0) {
    return Status::InvalidArgument("bulk load requires an empty tree");
  }
  levels_.push_back(Level{root, root});
  guards_.clear();
  guards_.push_back(std::move(*guard));
  dirty_.insert(root);
  return Status::OK();
}

Status BulkLoader::Add(KeySlice key, const Rid& rid) {
  size_t page_size = pool_->disk()->page_size();
  BTreePage leaf(guards_[0].data(), page_size);
  // Physical-exact admission: under prefix truncation the entry's real
  // cost is EntryGrowth, so leaves whose keys share prefixes pack more
  // entries before hitting the fill factor.
  size_t growth = leaf.EntryGrowth(key);
  bool fits = growth <= leaf.FreeBytes() &&
              (leaf.count() == 0 ||
               (page_size - leaf.FreeBytes()) + growth <= SoftCapacity());
  if (!fits) {
    // Chain a new rightmost leaf.  The separator is the shortest prefix
    // of the new leaf's first key that still sorts above the old leaf's
    // last key (suffix truncation); a truncated separator carries a -inf
    // RID so every real (key, rid) >= it still routes right.
    std::string sep;
    Rid sep_rid = rid;
    if (TruncateSeparator(KeySlice(high_key_), key, &sep)) {
      sep_rid = Rid::MinusInfinity();
    } else {
      sep.assign(key.data(), key.size());
    }
    PageId old_leaf = levels_[0].cur;
    WritePageGuard old_guard = std::move(guards_[0]);
    auto new_id = AllocPage(/*leaf=*/true, 0);
    if (!new_id.ok()) return new_id.status();
    {
      BTreePage op(old_guard.data(), page_size);
      op.set_next(*new_id);
      old_guard.MarkDirty();
      // The closed leaf's next pointer changed after it may already have
      // been flushed by an earlier checkpoint: it is dirty again.
      dirty_.insert(old_leaf);
    }
    old_guard.Release();
    levels_[0].cur = *new_id;
    OIB_RETURN_IF_ERROR(AddToLevel(1, KeySlice(sep), sep_rid, *new_id));
    BTreePage np(guards_[0].data(), page_size);
    OIB_RETURN_IF_ERROR(np.InsertLeafAt(np.count(), key, rid, 0));
    guards_[0].MarkDirty();
    dirty_.insert(*new_id);
  } else {
    OIB_RETURN_IF_ERROR(leaf.InsertLeafAt(leaf.count(), key, rid, 0));
    guards_[0].MarkDirty();
    dirty_.insert(levels_[0].cur);
  }
  ++keys_loaded_;
  high_key_.assign(key.data(), key.size());
  high_rid_ = rid;
  return Status::OK();
}

Status BulkLoader::AddToLevel(size_t i, KeySlice key, const Rid& rid,
                              PageId right_child) {
  size_t page_size = pool_->disk()->page_size();
  if (i >= levels_.size()) {
    // The level below just got its second page: grow a new top level
    // whose leftmost child is the level-below's first page.
    PageId below_first = levels_[i - 1].first;
    // AllocPage stores the guard at index `level`, which equals i here.
    WritePageGuard keep;  // guard slot may alias; AllocPage manages sizes
    (void)keep;
    auto new_id = AllocPage(/*leaf=*/false, static_cast<uint8_t>(i));
    if (!new_id.ok()) return new_id.status();
    BTreePage page(guards_[i].data(), page_size);
    page.set_leftmost_child(below_first);
    OIB_RETURN_IF_ERROR(page.InsertInternalAt(0, key, rid, right_child));
    guards_[i].MarkDirty();
    dirty_.insert(*new_id);
    levels_.push_back(Level{*new_id, *new_id});
    return Status::OK();
  }
  BTreePage page(guards_[i].data(), page_size);
  size_t growth = page.EntryGrowth(key);
  bool fits = growth <= page.FreeBytes() &&
              (page_size - page.FreeBytes()) + growth <= SoftCapacity();
  if (fits) {
    OIB_RETURN_IF_ERROR(
        page.InsertInternalAt(page.count(), key, rid, right_child));
    guards_[i].MarkDirty();
    dirty_.insert(levels_[i].cur);
    return Status::OK();
  }
  // Page full: the separator is pushed up; right_child becomes the new
  // page's leftmost child (mirrors the internal split rule).
  guards_[i].Release();
  auto new_id = AllocPage(/*leaf=*/false, static_cast<uint8_t>(i));
  if (!new_id.ok()) return new_id.status();
  BTreePage np(guards_[i].data(), page_size);
  np.set_leftmost_child(right_child);
  guards_[i].MarkDirty();
  dirty_.insert(*new_id);
  levels_[i].cur = *new_id;
  return AddToLevel(i + 1, key, rid, *new_id);
}

Status BulkLoader::Finish() {
  PageId new_root = levels_.back().cur;
  OIB_RETURN_IF_ERROR(ReleaseGuards());
  if (new_root != tree_->root()) {
    // Publish the new root.  This is the loader's only logged action: the
    // anchor must survive restart once the build commits.
    LogRecord rec;
    rec.type = LogRecordType::kRedoOnly;
    rec.rm_id = RmId::kBtree;
    rec.opcode = static_cast<uint8_t>(BtreeOp::kInitAnchor);
    rec.page_id = tree_->anchor_page();
    rec.aux_id = tree_->index_id();
    PutFixed32(&rec.redo, new_root);
    OIB_RETURN_IF_ERROR(tree_->txns_->AppendLog(nullptr, &rec));
    auto anchor = pool_->FetchWrite(tree_->anchor_page());
    if (!anchor.ok()) return anchor.status();
    EncodeFixed32(anchor->data() + kAnchorRootOff, new_root);
    anchor->set_page_lsn(rec.lsn);
    tree_->root_.store(new_root);
  }
  return Status::OK();
}

Status BulkLoader::ReleaseGuards() {
  for (auto& g : guards_) g.Release();
  return Status::OK();
}

Status BulkLoader::ReacquireGuards() {
  guards_.clear();
  guards_.resize(levels_.size());
  for (size_t i = 0; i < levels_.size(); ++i) {
    auto g = pool_->FetchWrite(levels_[i].cur);
    if (!g.ok()) return g.status();
    guards_[i] = std::move(*g);
  }
  return Status::OK();
}

StatusOr<std::string> BulkLoader::Checkpoint(const std::string& caller_state) {
  OIB_RETURN_IF_ERROR(ReleaseGuards());
  // "This checkpointing to stable storage is done after all the dirty
  // pages of the index have been written to disk" (3.2.4).  Pages
  // untouched since the previous checkpoint are already on disk.
  for (PageId id : dirty_) {
    OIB_RETURN_IF_ERROR(pool_->FlushPage(id));
  }
  dirty_.clear();
  OIB_RETURN_IF_ERROR(pool_->FlushPage(tree_->root()));
  for (const Level& l : levels_) {
    OIB_RETURN_IF_ERROR(pool_->FlushPage(l.cur));
  }

  std::string blob;
  PutLengthPrefixed(&blob, caller_state);
  PutFixed64(&blob, keys_loaded_);
  PutLengthPrefixed(&blob, high_key_);
  PutFixed32(&blob, high_rid_.page);
  PutFixed16(&blob, high_rid_.slot);
  PutFixed32(&blob, static_cast<uint32_t>(levels_.size()));
  for (const Level& l : levels_) {
    PutFixed32(&blob, l.cur);
    PutFixed32(&blob, l.first);
  }
  PutFixed32(&blob, static_cast<uint32_t>(allocated_.size()));
  for (PageId id : allocated_) PutFixed32(&blob, id);

  OIB_RETURN_IF_ERROR(ReacquireGuards());
  return blob;
}

StatusOr<std::string> BulkLoader::Resume(const std::string& blob) {
  BufferReader r(blob);
  std::string caller_state;
  uint16_t slot;
  uint32_t n_levels, n_alloc;
  if (!r.GetLengthPrefixed(&caller_state) || !r.GetFixed64(&keys_loaded_) ||
      !r.GetLengthPrefixed(&high_key_) || !r.GetFixed32(&high_rid_.page) ||
      !r.GetFixed16(&slot) || !r.GetFixed32(&n_levels)) {
    return Status::Corruption("bulk-loader checkpoint blob");
  }
  high_rid_.slot = slot;
  levels_.clear();
  for (uint32_t i = 0; i < n_levels; ++i) {
    Level l;
    if (!r.GetFixed32(&l.cur) || !r.GetFixed32(&l.first)) {
      return Status::Corruption("bulk-loader level entry");
    }
    levels_.push_back(l);
  }
  if (!r.GetFixed32(&n_alloc)) {
    return Status::Corruption("bulk-loader alloc list");
  }
  allocated_.clear();
  for (uint32_t i = 0; i < n_alloc; ++i) {
    PageId id;
    if (!r.GetFixed32(&id)) return Status::Corruption("alloc entry");
    allocated_.push_back(id);
  }

  // Truncate the rightmost branch: keys above the checkpointed high key
  // disappear (3.2.4).  The leaf also drops any post-checkpoint next link.
  size_t page_size = pool_->disk()->page_size();
  for (size_t i = 0; i < levels_.size(); ++i) {
    auto g = pool_->FetchWrite(levels_[i].cur);
    if (!g.ok()) return g.status();
    BTreePage page(g->data(), page_size);
    int cut = page.count();
    while (cut > 0 &&
           CompareIndexKey(page.KeyAt(cut - 1), page.RidAt(cut - 1),
                           high_key_, high_rid_) > 0) {
      --cut;
    }
    if (cut < page.count()) page.TruncateFrom(cut);
    if (page.is_leaf()) page.set_next(kInvalidPageId);
    g->MarkDirty();
    dirty_.insert(levels_[i].cur);
  }

  OIB_RETURN_IF_ERROR(ReacquireGuards());
  return caller_state;
}

Status BulkLoader::ResetToEmpty() {
  levels_.clear();
  guards_.clear();
  allocated_.clear();
  dirty_.clear();
  keys_loaded_ = 0;
  high_key_.clear();
  high_rid_ = Rid();

  PageId root = tree_->root();
  auto guard = pool_->FetchWrite(root);
  if (!guard.ok()) return guard.status();
  BTreePage page(guard->data(), pool_->disk()->page_size());
  page.Init(/*leaf=*/true, 0);
  guard->MarkDirty();
  levels_.push_back(Level{root, root});
  guards_.push_back(std::move(*guard));
  return Status::OK();
}

}  // namespace oib
