// BulkLoader: bottom-up B+-tree construction for the SF algorithm
// (paper sections 2.3.1 and 3.2.4).
//
// Keys arrive in ascending order (from the sort's final merge pass) and
// are appended to the rightmost leaf; when a leaf reaches the fill factor
// a new one is chained and a separator propagates into the rightmost
// internal page of the level above.  New keys never cause tree traversals,
// latch contention, or key comparisons against interior pages, and — per
// the SF design — *no log records are written*.
//
// Restartability (3.2.4): Checkpoint() flushes every page the loader has
// touched, then records the highest key loaded, the page ids of the
// rightmost branch, the per-level first pages, and the allocated-page
// list.  Resume() truncates the rightmost branch so keys above the
// checkpointed high key disappear, frees pages allocated after the
// checkpoint (those named in a newer in-memory list are gone after a
// crash and are simply abandoned — see DESIGN.md), and re-opens the
// branch for appending.

#ifndef OIB_BTREE_BULK_LOADER_H_
#define OIB_BTREE_BULK_LOADER_H_

#include <set>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/options.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace oib {

class BulkLoader {
 public:
  BulkLoader(BTree* tree, BufferPool* pool, const Options* options)
      : tree_(tree), pool_(pool), options_(options) {}

  BulkLoader(const BulkLoader&) = delete;
  BulkLoader& operator=(const BulkLoader&) = delete;

  // Starts loading into the tree's (empty) root leaf.
  Status Begin();

  // Appends one key; keys must arrive in strictly ascending (key, rid)
  // order.  Unique violations among consecutive keys surface as
  // UniqueViolation when `unique` was set in Begin... (checked by caller).
  // Admission is physically exact (EntryGrowth), so leaves whose keys
  // compress well pack more entries per page; separators pushed into
  // internal levels are suffix-truncated.
  Status Add(KeySlice key, const Rid& rid);

  // Completes internal levels and publishes the new root (anchor update is
  // the only logged action).
  Status Finish();

  // Section 3.2.4 checkpoint: flush + serialize loader state.  The caller
  // embeds its own state (e.g. merge counters) via `caller_state`.
  StatusOr<std::string> Checkpoint(const std::string& caller_state);
  // Restores from a checkpoint blob, truncating keys above the
  // checkpointed high key.  Returns the embedded caller state.
  StatusOr<std::string> Resume(const std::string& blob);

  // Restart with no checkpoint: wipe the root leaf and start over.
  Status ResetToEmpty();

  // Drops every open page guard (latch + pin) without finishing the
  // load.  A failed build MUST call this before transaction-level
  // cleanup: rollback paths acquire txn/lock-manager mutexes and latch
  // other pages, none of which may happen under the loader's latches.
  void Abandon() { guards_.clear(); }

  uint64_t keys_loaded() const { return keys_loaded_; }
  size_t pages_allocated() const { return allocated_.size(); }
  bool has_high_key() const { return keys_loaded_ > 0; }
  const std::string& high_key() const { return high_key_; }
  const Rid& high_rid() const { return high_rid_; }

 private:
  struct Level {
    PageId cur = kInvalidPageId;
    PageId first = kInvalidPageId;
  };

  // Propagates separator (key, rid) -> right_child into level `i`.
  Status AddToLevel(size_t i, KeySlice key, const Rid& rid,
                    PageId right_child);
  StatusOr<PageId> AllocPage(bool leaf, uint8_t level);
  size_t SoftCapacity() const;
  Status ReleaseGuards();
  Status ReacquireGuards();

  BTree* tree_;
  BufferPool* pool_;
  const Options* options_;

  std::vector<Level> levels_;  // [0] = leaf level
  // One open X guard per level's rightmost page, aligned with levels_.
  std::vector<WritePageGuard> guards_;
  std::vector<PageId> allocated_;  // pages this loader allocated
  std::set<PageId> dirty_;         // pages modified since last checkpoint
  uint64_t keys_loaded_ = 0;
  std::string high_key_;
  Rid high_rid_;
};

}  // namespace oib

#endif  // OIB_BTREE_BULK_LOADER_H_
