#include "btree/btree.h"

#include <cassert>

#include "common/coding.h"

namespace oib {

namespace {

// Maximum key-value size accepted by the tree.  Keeping this well under
// page capacity lets the pessimistic descent use a constant "safe node"
// space threshold.  The threshold is measured in *logical* free bytes
// (every entry priced uncompressed) and must cover the largest logical
// entry (internal header 10 + slen 2 + key 128 + offset slot 2 = 142)
// plus the prefix_len reserve (<= kMaxKeySize) that HasSpaceFor demands
// to absorb the worst physical expansion of a prefix shrink.
constexpr size_t kMaxKeySize = 128;
constexpr size_t kSafeNodeFreeBytes = 288;

// Split-record payload codec (kSplit).
struct SplitPayload {
  PageId new_page = kInvalidPageId;
  PageId parent = kInvalidPageId;
  PageId new_leftmost = kInvalidPageId;
  PageId new_next = kInvalidPageId;
  uint8_t is_leaf = 1;
  uint8_t level = 0;
  std::string sep_key;
  Rid sep_rid;
  std::string moved;  // SerializeEntries blob
};

void EncodeSplitPayload(std::string* out, const SplitPayload& p) {
  PutFixed32(out, p.new_page);
  PutFixed32(out, p.parent);
  PutFixed32(out, p.new_leftmost);
  PutFixed32(out, p.new_next);
  out->push_back(static_cast<char>(p.is_leaf));
  out->push_back(static_cast<char>(p.level));
  PutFixed32(out, p.sep_rid.page);
  PutFixed16(out, p.sep_rid.slot);
  PutLengthPrefixed(out, p.sep_key);
  out->append(p.moved);
}

Status DecodeSplitPayload(std::string_view in, SplitPayload* p) {
  BufferReader r(in);
  uint16_t slot;
  if (!r.GetFixed32(&p->new_page) || !r.GetFixed32(&p->parent) ||
      !r.GetFixed32(&p->new_leftmost) || !r.GetFixed32(&p->new_next) ||
      !r.GetByte(&p->is_leaf) || !r.GetByte(&p->level) ||
      !r.GetFixed32(&p->sep_rid.page) || !r.GetFixed16(&slot) ||
      !r.GetLengthPrefixed(&p->sep_key)) {
    return Status::Corruption("split payload");
  }
  p->sep_rid.slot = slot;
  p->moved = std::string(in.substr(r.position()));
  return Status::OK();
}

// New-root payload codec (kNewRoot): [anchor][old_root][level].
void EncodeNewRootPayload(std::string* out, PageId anchor, PageId old_root,
                          uint8_t level) {
  PutFixed32(out, anchor);
  PutFixed32(out, old_root);
  out->push_back(static_cast<char>(level));
}

Status DecodeNewRootPayload(std::string_view in, PageId* anchor,
                            PageId* old_root, uint8_t* level) {
  BufferReader r(in);
  if (!r.GetFixed32(anchor) || !r.GetFixed32(old_root) || !r.GetByte(level)) {
    return Status::Corruption("new-root payload");
  }
  return Status::OK();
}

// Decoded view of one leaf entry from a SerializeEntries blob.
struct LeafEntryView {
  uint8_t flags;
  Rid rid;
  std::string_view key;
};

Status DecodeLeafEntriesBlob(std::string_view blob,
                             std::vector<LeafEntryView>* out) {
  BufferReader r(blob);
  uint16_t n;
  if (!r.GetFixed16(&n)) return Status::Corruption("leaf entry blob");
  out->clear();
  out->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t len;
    if (!r.GetFixed16(&len) || r.remaining() < len) {
      return Status::Corruption("leaf entry blob item");
    }
    std::string_view raw = blob.substr(r.position(), len);
    r.Skip(len);
    // Raw leaf entry: [flags u8][rid u32+u16][klen u16][key].
    if (raw.size() < 9) return Status::Corruption("leaf raw entry");
    LeafEntryView v;
    v.flags = static_cast<uint8_t>(raw[0]);
    v.rid = Rid(DecodeFixed32(raw.data() + 1), DecodeFixed16(raw.data() + 5));
    uint16_t klen = DecodeFixed16(raw.data() + 7);
    if (raw.size() < 9u + klen) return Status::Corruption("leaf raw entry");
    v.key = raw.substr(9, klen);
    out->push_back(v);
  }
  return Status::OK();
}

constexpr size_t kAnchorRootOff = 8;

}  // namespace

void EncodeKeyPayload(std::string* out, uint8_t flags, std::string_view key,
                      const Rid& rid) {
  out->push_back(static_cast<char>(flags));
  PutFixed32(out, rid.page);
  PutFixed16(out, rid.slot);
  PutFixed16(out, static_cast<uint16_t>(key.size()));
  out->append(key.data(), key.size());
}

Status DecodeKeyPayload(std::string_view in, KeyPayload* out) {
  BufferReader r(in);
  uint16_t slot, klen;
  if (!r.GetByte(&out->flags) || !r.GetFixed32(&out->rid.page) ||
      !r.GetFixed16(&slot) || !r.GetFixed16(&klen) || r.remaining() < klen) {
    return Status::Corruption("key payload");
  }
  out->rid.slot = slot;
  out->key = in.substr(r.position(), klen);
  return Status::OK();
}

// ----------------------------- lifecycle -----------------------------

Status BTree::Create() {
  auto anchor_guard = pool_->NewPage(&anchor_);
  if (!anchor_guard.ok()) return anchor_guard.status();
  PageId root_id;
  auto root_guard = pool_->NewPage(&root_id);
  if (!root_guard.ok()) return root_guard.status();
  BTreePage rp(root_guard->data(), page_size());
  rp.Init(/*leaf=*/true, /*level=*/0);
  {
    LogRecord rec;
    rec.type = LogRecordType::kRedoOnly;
    rec.rm_id = RmId::kBtree;
    rec.opcode = static_cast<uint8_t>(BtreeOp::kFormat);
    rec.page_id = root_id;
    rec.aux_id = index_id_;
    rec.redo.push_back(1);  // leaf
    rec.redo.push_back(0);  // level
    OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
    root_guard->set_page_lsn(rec.lsn);
  }
  {
    LogRecord rec;
    rec.type = LogRecordType::kRedoOnly;
    rec.rm_id = RmId::kBtree;
    rec.opcode = static_cast<uint8_t>(BtreeOp::kInitAnchor);
    rec.page_id = anchor_;
    rec.aux_id = index_id_;
    PutFixed32(&rec.redo, root_id);
    OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
    EncodeFixed32(anchor_guard->data() + kAnchorRootOff, root_id);
    anchor_guard->set_page_lsn(rec.lsn);
  }
  root_.store(root_id);
  return Status::OK();
}

Status BTree::Open(PageId anchor) {
  anchor_ = anchor;
  auto guard = pool_->FetchRead(anchor);
  if (!guard.ok()) return guard.status();
  root_.store(DecodeFixed32(guard->data() + kAnchorRootOff));
  return Status::OK();
}

// ----------------------------- descents -----------------------------

Status BTree::LatchRootRead(ReadPageGuard* out) const {
  for (;;) {
    PageId r = root_.load();
    auto guard = pool_->FetchRead(r);
    if (!guard.ok()) return guard.status();
    if (root_.load() == r) {
      *out = std::move(*guard);
      return Status::OK();
    }
    // Root changed while we were latching; retry from the new root.
  }
}

Status BTree::DescendToLeafRead(std::string_view key, const Rid& rid,
                                ReadPageGuard* out) const {
  ReadPageGuard cur;
  OIB_RETURN_IF_ERROR(LatchRootRead(&cur));
  for (;;) {
    BTreePage page(const_cast<char*>(cur.data()), page_size());
    if (page.is_leaf()) {
      *out = std::move(cur);
      return Status::OK();
    }
    PageId child = page.Route(key, rid);
    auto next = pool_->FetchRead(child);  // latch child before parent drop
    if (!next.ok()) return next.status();
    cur = std::move(*next);
  }
}

Status BTree::DescendToLeafWrite(std::string_view key, const Rid& rid,
                                 WritePageGuard* out) {
  for (;;) {
    PageId r = root_.load();
    auto rg = pool_->FetchRead(r);
    if (!rg.ok()) return rg.status();
    if (root_.load() != r) continue;
    BTreePage rp(const_cast<char*>(rg->data()), page_size());
    if (rp.is_leaf()) {
      rg->Release();
      auto wg = pool_->FetchWrite(r);
      if (!wg.ok()) return wg.status();
      if (root_.load() != r) continue;
      BTreePage wp(wg->data(), page_size());
      if (!wp.is_leaf()) continue;  // tree grew under us
      *out = std::move(*wg);
      return Status::OK();
    }
    ReadPageGuard cur = std::move(*rg);
    for (;;) {
      BTreePage page(const_cast<char*>(cur.data()), page_size());
      PageId child = page.Route(key, rid);
      if (page.level() == 1) {
        auto wg = pool_->FetchWrite(child);
        if (!wg.ok()) return wg.status();
        cur.Release();
        *out = std::move(*wg);
        return Status::OK();
      }
      auto next = pool_->FetchRead(child);
      if (!next.ok()) return next.status();
      cur = std::move(*next);
    }
  }
}

Status BTree::DescendPessimistic(std::string_view key, const Rid& rid,
                                 size_t key_len_for_safety,
                                 std::vector<WritePageGuard>* path,
                                 bool ib_mode, KeyBound* high) {
  (void)key_len_for_safety;
  // A node is "safe" if it cannot possibly need a split on this insert;
  // ancestors above a safe node are released.  IB inserts split leaves
  // earlier (at the fill factor), so in ib_mode a leaf must also have
  // soft-capacity room to count as safe — otherwise the retained path
  // could be just [leaf] while a split is still required, and the split
  // would wrongly grow a new root above a non-root page.
  auto is_safe = [&](const BTreePage& page) {
    if (page.LogicalFreeBytes() < kSafeNodeFreeBytes) return false;
    if (ib_mode && page.is_leaf() && page.count() > 0) {
      size_t entry = 1 + 6 + 2 + kMaxKeySize + 2;
      return (page_size() - page.LogicalFreeBytes()) + entry <=
             LeafSoftCapacity();
    }
    return true;
  };
  path->clear();
  if (high != nullptr) high->valid = false;
  for (;;) {
    PageId r = root_.load();
    auto rg = pool_->FetchWrite(r);
    if (!rg.ok()) return rg.status();
    if (root_.load() != r) continue;
    path->push_back(std::move(*rg));
    break;
  }
  for (;;) {
    BTreePage page(path->back().data(), page_size());
    if (page.is_leaf()) return Status::OK();
    PageId child = page.Route(key, rid);
    if (high != nullptr) {
      // Tightest separator above the descent edge bounds the leaf's key
      // space; on a rightmost edge the bound from higher levels stands.
      int i = page.LowerBound(key, rid);
      int ci = (i < page.count() && page.CompareEntryAt(i, key, rid) == 0)
                   ? i
                   : i - 1;
      if (ci + 1 < page.count()) {
        high->key = page.KeyAt(ci + 1);
        high->rid = page.RidAt(ci + 1);
        high->valid = true;
      }
    }
    auto cg = pool_->FetchWrite(child);
    if (!cg.ok()) return cg.status();
    path->push_back(std::move(*cg));
    BTreePage cp(path->back().data(), page_size());
    if (is_safe(cp)) {
      path->erase(path->begin(), path->end() - 1);
    }
  }
}

// ------------------------- split machinery --------------------------

Status BTree::GrowRoot(std::vector<WritePageGuard>* path) {
  if (path->front().page_id() != root_.load()) {
    // The retained path must start at the real root here; anything else
    // means a descent-safety bug and would orphan the tree.
    return Status::Corruption("GrowRoot on a non-root page");
  }
  BTreePage old_page(path->front().data(), page_size());
  uint8_t new_level = static_cast<uint8_t>(old_page.level() + 1);
  PageId old_root_id = path->front().page_id();

  PageId new_root_id;
  auto new_root = pool_->NewPage(&new_root_id);
  if (!new_root.ok()) return new_root.status();

  LogRecord rec;
  rec.type = LogRecordType::kRedoOnly;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(BtreeOp::kNewRoot);
  rec.page_id = new_root_id;
  rec.aux_id = index_id_;
  EncodeNewRootPayload(&rec.redo, anchor_, old_root_id, new_level);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));

  BTreePage np(new_root->data(), page_size());
  np.Init(/*leaf=*/false, new_level);
  np.set_leftmost_child(old_root_id);
  new_root->set_page_lsn(rec.lsn);

  {
    auto anchor_guard = pool_->FetchWrite(anchor_);
    if (!anchor_guard.ok()) return anchor_guard.status();
    EncodeFixed32(anchor_guard->data() + kAnchorRootOff, new_root_id);
    anchor_guard->set_page_lsn(rec.lsn);
  }

  // Publish while the old root's X latch is still held (path->front()),
  // so any stale descent re-validates and retries.
  root_.store(new_root_id);

  path->insert(path->begin(), std::move(*new_root));
  return Status::OK();
}

Status BTree::EnsureParentHasRoom(std::vector<WritePageGuard>* path,
                                  size_t* idx, std::string_view sep_key,
                                  const Rid& sep_rid) {
  size_t parent_idx = *idx - 1;
  {
    BTreePage parent((*path)[parent_idx].data(), page_size());
    if (parent.HasSpaceFor(KeySlice(sep_key))) return Status::OK();
  }
  int mid;
  {
    BTreePage parent((*path)[parent_idx].data(), page_size());
    mid = parent.count() / 2;
    if (mid == 0) mid = 1;
  }
  WritePageGuard new_half;
  std::string psep_key;
  Rid psep_rid;
  OIB_RETURN_IF_ERROR(
      SplitNode(path, &parent_idx, mid, &new_half, &psep_key, &psep_rid));
  if (CompareIndexKey(sep_key, sep_rid, psep_key, psep_rid) >= 0) {
    (*path)[parent_idx] = std::move(new_half);
  }
  *idx = parent_idx + 1;
  return Status::OK();
}

Status BTree::SplitNode(std::vector<WritePageGuard>* path, size_t* idx,
                        int split_at, WritePageGuard* new_guard,
                        std::string* out_sep_key, Rid* out_sep_rid) {
  if (*idx == 0) {
    // The topmost retained node is either safe (then it would not need a
    // split) or the root; grow the tree first.
    OIB_RETURN_IF_ERROR(GrowRoot(path));
    *idx = 1;
  }

  SplitPayload p;
  int moved_from;
  {
    BTreePage node((*path)[*idx].data(), page_size());
    bool leaf = node.is_leaf();
    int n = node.count();
    // Leaves allow split_at == 0 (IB "move all higher keys" case,
    // section 2.3.1); internal splits push entry[split_at] up, so they
    // need at least one entry on each side.
    assert(split_at >= 0 && split_at < n && (leaf || split_at > 0));
    p.is_leaf = leaf ? 1 : 0;
    p.level = node.level();
    p.sep_key = node.KeyAt(split_at);
    p.sep_rid = node.RidAt(split_at);
    if (leaf) {
      moved_from = split_at;
      p.new_leftmost = kInvalidPageId;
      p.new_next = node.next();
    } else {
      // The separator is pushed up; its child becomes the new page's
      // leftmost child.
      moved_from = split_at + 1;
      p.new_leftmost = node.ChildAt(split_at);
      p.new_next = kInvalidPageId;
    }
    p.moved = node.SerializeEntries(moved_from, n);
  }

  OIB_RETURN_IF_ERROR(EnsureParentHasRoom(path, idx, p.sep_key, p.sep_rid));
  p.parent = (*path)[*idx - 1].page_id();

  PageId new_id;
  auto ng = pool_->NewPage(&new_id);
  if (!ng.ok()) return ng.status();
  p.new_page = new_id;

  LogRecord rec;
  rec.type = LogRecordType::kRedoOnly;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(BtreeOp::kSplit);
  rec.page_id = (*path)[*idx].page_id();
  rec.aux_id = index_id_;
  EncodeSplitPayload(&rec.redo, p);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));

  // Apply: new page.
  {
    BTreePage np(ng->data(), page_size());
    np.Init(p.is_leaf != 0, p.level);
    np.set_leftmost_child(p.new_leftmost);
    OIB_RETURN_IF_ERROR(np.AppendSerialized(p.moved));
    np.set_next(p.new_next);
    ng->set_page_lsn(rec.lsn);
  }
  // Apply: old page.
  {
    BTreePage node((*path)[*idx].data(), page_size());
    node.TruncateFrom(p.is_leaf ? moved_from : split_at);
    if (p.is_leaf) node.set_next(new_id);
    (*path)[*idx].set_page_lsn(rec.lsn);
  }
  // Apply: parent.
  {
    BTreePage parent((*path)[*idx - 1].data(), page_size());
    int pos = parent.LowerBound(p.sep_key, p.sep_rid);
    OIB_RETURN_IF_ERROR(
        parent.InsertInternalAt(pos, p.sep_key, p.sep_rid, new_id));
    (*path)[*idx - 1].set_page_lsn(rec.lsn);
  }

  splits_.fetch_add(1);
  *new_guard = std::move(*ng);
  *out_sep_key = std::move(p.sep_key);
  *out_sep_rid = p.sep_rid;
  return Status::OK();
}

Status BTree::SplitEmptyRight(std::vector<WritePageGuard>* path, size_t idx,
                              std::string_view key, const Rid& rid) {
  if (idx == 0) {
    OIB_RETURN_IF_ERROR(GrowRoot(path));
    idx = 1;
  }

  SplitPayload p;
  {
    BTreePage node((*path)[idx].data(), page_size());
    assert(node.is_leaf());
    p.is_leaf = 1;
    p.level = 0;
    p.sep_key.assign(key.data(), key.size());
    p.sep_rid = rid;
    p.new_leftmost = kInvalidPageId;
    p.new_next = node.next();
    p.moved = node.SerializeEntries(node.count(), node.count());  // empty
  }

  OIB_RETURN_IF_ERROR(EnsureParentHasRoom(path, &idx, p.sep_key, p.sep_rid));
  p.parent = (*path)[idx - 1].page_id();

  PageId new_id;
  auto ng = pool_->NewPage(&new_id);
  if (!ng.ok()) return ng.status();
  p.new_page = new_id;

  LogRecord rec;
  rec.type = LogRecordType::kRedoOnly;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(BtreeOp::kSplit);
  rec.page_id = (*path)[idx].page_id();
  rec.aux_id = index_id_;
  EncodeSplitPayload(&rec.redo, p);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));

  {
    BTreePage np(ng->data(), page_size());
    np.Init(/*leaf=*/true, 0);
    np.set_next(p.new_next);
    ng->set_page_lsn(rec.lsn);
  }
  {
    BTreePage node((*path)[idx].data(), page_size());
    node.set_next(new_id);
    (*path)[idx].set_page_lsn(rec.lsn);
  }
  {
    BTreePage parent((*path)[idx - 1].data(), page_size());
    int pos = parent.LowerBound(p.sep_key, p.sep_rid);
    OIB_RETURN_IF_ERROR(
        parent.InsertInternalAt(pos, p.sep_key, p.sep_rid, new_id));
    (*path)[idx - 1].set_page_lsn(rec.lsn);
  }

  splits_.fetch_add(1);
  // The pending key belongs in the new (empty) right page.
  path->back() = std::move(*ng);
  return Status::OK();
}

Status BTree::MakeRoomInLeaf(std::vector<WritePageGuard>* path,
                             std::string_view key, const Rid& rid,
                             bool ib_mode) {
  for (;;) {
    size_t leaf_idx = path->size() - 1;
    bool has_room;
    int n, pos;
    {
      BTreePage leaf((*path)[leaf_idx].data(), page_size());
      has_room = leaf.HasSpaceFor(KeySlice(key));
      if (has_room && ib_mode && leaf.count() > 0) {
        // Respect the IB fill factor: leave free space in each leaf for
        // future inserts (section 2.2.3).  Measured logically so the fill
        // factor is independent of how well the leaf compresses.
        size_t entry = 1 + 6 + 2 + key.size() + 2;
        has_room = (page_size() - leaf.LogicalFreeBytes()) + entry <=
                   LeafSoftCapacity();
      }
      n = leaf.count();
      pos = leaf.LowerBound(key, rid);
    }
    if (has_room) return Status::OK();

    int split_at;
    if (ib_mode) {
      // Section 2.3.1: move only the keys higher than IB's (those were
      // inserted by transactions); if there are none, open a fresh leaf.
      split_at = pos;
    } else if (pos == n) {
      // Append pattern: leave the full page behind, open an empty right
      // neighbour (mimics bottom-up growth).
      split_at = n;
    } else {
      split_at = n / 2;
      if (split_at == 0) split_at = 1;
      if (split_at >= n) split_at = n - 1;
    }

    if (split_at >= n) {
      OIB_RETURN_IF_ERROR(SplitEmptyRight(path, leaf_idx, key, rid));
      // SplitEmptyRight re-aims path->back() at the empty right leaf.
    } else {
      WritePageGuard new_half;
      std::string sep_key;
      Rid sep_rid;
      OIB_RETURN_IF_ERROR(SplitNode(path, &leaf_idx, split_at, &new_half,
                                    &sep_key, &sep_rid));
      if (CompareIndexKey(key, rid, sep_key, sep_rid) >= 0) {
        (*path)[leaf_idx] = std::move(new_half);
      }
    }
    // Loop to re-check space on the (possibly new) target leaf.
  }
}

size_t BTree::LeafSoftCapacity() const {
  return static_cast<size_t>(static_cast<double>(page_size()) *
                             options_->leaf_fill_factor);
}

// ------------------------ logged page mutations ----------------------

Status BTree::LoggedLeafInsert(Transaction* txn, WritePageGuard* leaf,
                               int pos, std::string_view key, const Rid& rid,
                               uint8_t flags, LogRecordType type) {
  LogRecord rec;
  rec.type = type;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(BtreeOp::kInsertKey);
  rec.page_id = leaf->page_id();
  rec.aux_id = index_id_;
  EncodeKeyPayload(&rec.redo, flags, key, rid);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &rec));
  BTreePage page(leaf->data(), page_size());
  OIB_RETURN_IF_ERROR(page.InsertLeafAt(pos, key, rid, flags));
  leaf->set_page_lsn(rec.lsn);
  NotifyInsert(key, rid, flags);
  return Status::OK();
}

Status BTree::LoggedSetFlags(Transaction* txn, WritePageGuard* leaf, int pos,
                             std::string_view key, const Rid& rid,
                             BtreeOp op, LogRecordType type) {
  LogRecord rec;
  rec.type = type;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(op);
  rec.page_id = leaf->page_id();
  rec.aux_id = index_id_;
  EncodeKeyPayload(&rec.redo, 0, key, rid);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &rec));
  BTreePage page(leaf->data(), page_size());
  uint8_t new_flags =
      op == BtreeOp::kPseudoDelete ? kEntryPseudoDeleted : uint8_t{0};
  page.SetFlagsAt(pos, new_flags);
  leaf->set_page_lsn(rec.lsn);
  NotifySetFlags(key, rid, new_flags);
  return Status::OK();
}

Status BTree::LoggedLeafRemove(Transaction* txn, WritePageGuard* leaf,
                               int pos, std::string_view key,
                               const Rid& rid, LogRecordType type) {
  BTreePage page(leaf->data(), page_size());
  uint8_t old_flags = page.FlagsAt(pos);
  LogRecord rec;
  rec.type = type;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(BtreeOp::kPhysicalDelete);
  rec.page_id = leaf->page_id();
  rec.aux_id = index_id_;
  EncodeKeyPayload(&rec.redo, old_flags, key, rid);
  EncodeKeyPayload(&rec.undo, old_flags, key, rid);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &rec));
  page.RemoveAt(pos);
  leaf->set_page_lsn(rec.lsn);
  NotifyRemove(key, rid);
  return Status::OK();
}

// --------------------------- public key ops --------------------------

StatusOr<BTree::InsertResult> BTree::Insert(Transaction* txn,
                                            std::string_view key,
                                            const Rid& rid, uint8_t flags,
                                            LogRecordType log_type) {
  if (key.size() > kMaxKeySize) {
    return Status::InvalidArgument("key too large");
  }
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool pessimistic = attempt == 1;
    WritePageGuard leaf;
    std::vector<WritePageGuard> path;
    if (pessimistic) {
      OIB_RETURN_IF_ERROR(DescendPessimistic(key, rid, key.size(), &path));
    } else {
      OIB_RETURN_IF_ERROR(DescendToLeafWrite(key, rid, &leaf));
    }
    WritePageGuard* lg = pessimistic ? &path.back() : &leaf;
    BTreePage page(lg->data(), page_size());
    int pos = page.LowerBound(key, rid);
    bool exact = pos < page.count() && page.CompareEntryAt(pos, key, rid) == 0;
    if (exact) {
      uint8_t f = page.FlagsAt(pos);
      if ((f & kEntryPseudoDeleted) == 0) return InsertResult::kAlreadyPresent;
      if ((flags & kEntryPseudoDeleted) != 0) {
        // Tombstone over tombstone: nothing to do.
        return InsertResult::kAlreadyPresent;
      }
      OIB_RETURN_IF_ERROR(LoggedSetFlags(txn, lg, pos, key, rid,
                                         BtreeOp::kReactivate, log_type));
      return InsertResult::kReactivated;
    }
    if (!page.HasSpaceFor(KeySlice(key))) {
      if (!pessimistic) continue;  // retry with the full path held
      OIB_RETURN_IF_ERROR(MakeRoomInLeaf(&path, key, rid, /*ib_mode=*/false));
      lg = &path.back();
      BTreePage page2(lg->data(), page_size());
      pos = page2.LowerBound(key, rid);
      OIB_RETURN_IF_ERROR(
          LoggedLeafInsert(txn, lg, pos, key, rid, flags, log_type));
      return InsertResult::kInserted;
    }
    OIB_RETURN_IF_ERROR(
        LoggedLeafInsert(txn, lg, pos, key, rid, flags, log_type));
    return InsertResult::kInserted;
  }
  return Status::Corruption("unreachable insert state");
}

StatusOr<BTree::DeleteResult> BTree::PseudoDelete(Transaction* txn,
                                                  std::string_view key,
                                                  const Rid& rid) {
  for (;;) {
    WritePageGuard leaf;
    OIB_RETURN_IF_ERROR(DescendToLeafWrite(key, rid, &leaf));
    BTreePage page(leaf.data(), page_size());
    int pos = page.FindExact(key, rid);
    if (pos >= 0) {
      if ((page.FlagsAt(pos) & kEntryPseudoDeleted) != 0) {
        return DeleteResult::kAlreadyPseudo;
      }
      OIB_RETURN_IF_ERROR(LoggedSetFlags(txn, &leaf, pos, key, rid,
                                         BtreeOp::kPseudoDelete,
                                         LogRecordType::kUpdate));
      return DeleteResult::kPseudoDeleted;
    }
    // Key absent: leave a tombstone so a later IB insert is rejected
    // (section 2.2.3, "IB and Delete Operations").
    leaf.Release();
    auto r = Insert(txn, key, rid, kEntryPseudoDeleted);
    if (!r.ok()) return r.status();
    if (*r == InsertResult::kAlreadyPresent) {
      // The section 1.2 race, live: between our lookup and the tombstone
      // insert, IB physically inserted the key.  Retry — this time the
      // entry is found and gets marked pseudo-deleted.
      continue;
    }
    return DeleteResult::kTombstoneInserted;
  }
}

Status BTree::PhysicalDelete(Transaction* txn, std::string_view key,
                             const Rid& rid, LogRecordType log_type) {
  WritePageGuard leaf;
  OIB_RETURN_IF_ERROR(DescendToLeafWrite(key, rid, &leaf));
  BTreePage page(leaf.data(), page_size());
  int pos = page.FindExact(key, rid);
  if (pos < 0) return Status::NotFound("key not in index");
  return LoggedLeafRemove(txn, &leaf, pos, key, rid, log_type);
}

Status BTree::LogUndoOnlyInsert(Transaction* txn, std::string_view key,
                                const Rid& rid) {
  // NSF section 2.1.1: record that this transaction logically owns the
  // key IB physically inserted, so rollback deletes it.  No page change
  // now, hence no page id and no redo semantics (kUndoOnly records are
  // never redone; the payload travels in `redo` by RM convention).
  LogRecord rec;
  rec.type = LogRecordType::kUndoOnly;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(BtreeOp::kInsertKey);
  rec.page_id = kInvalidPageId;
  rec.aux_id = index_id_;
  EncodeKeyPayload(&rec.redo, 0, key, rid);
  return txns_->AppendLog(txn, &rec);
}

Status BTree::GcRemove(std::string_view key, const Rid& rid) {
  WritePageGuard leaf;
  OIB_RETURN_IF_ERROR(DescendToLeafWrite(key, rid, &leaf));
  BTreePage page(leaf.data(), page_size());
  int pos = page.FindExact(key, rid);
  if (pos < 0) return Status::NotFound("key not in index");
  if ((page.FlagsAt(pos) & kEntryPseudoDeleted) == 0) {
    return Status::InvalidArgument("GC of a live key");
  }
  LogRecord rec;
  rec.type = LogRecordType::kRedoOnly;
  rec.rm_id = RmId::kBtree;
  rec.opcode = static_cast<uint8_t>(BtreeOp::kGcRemove);
  rec.page_id = leaf.page_id();
  rec.aux_id = index_id_;
  EncodeKeyPayload(&rec.redo, kEntryPseudoDeleted, key, rid);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
  page.RemoveAt(pos);
  leaf.set_page_lsn(rec.lsn);
  NotifyRemove(key, rid);
  return Status::OK();
}

// ------------------------------ lookups ------------------------------

StatusOr<BTree::LookupResult> BTree::Lookup(std::string_view key,
                                            const Rid& rid) const {
  ReadPageGuard leaf;
  OIB_RETURN_IF_ERROR(DescendToLeafRead(key, rid, &leaf));
  BTreePage page(const_cast<char*>(leaf.data()), page_size());
  int pos = page.FindExact(key, rid);
  LookupResult r;
  if (pos >= 0) {
    r.found = true;
    r.pseudo_deleted = (page.FlagsAt(pos) & kEntryPseudoDeleted) != 0;
  }
  return r;
}

StatusOr<BTree::ValueMatch> BTree::FindKeyValue(std::string_view key) const {
  ReadPageGuard leaf;
  OIB_RETURN_IF_ERROR(
      DescendToLeafRead(key, Rid::MinusInfinity(), &leaf));
  ValueMatch best;
  for (;;) {
    BTreePage page(const_cast<char*>(leaf.data()), page_size());
    int pos = page.LowerBound(key, Rid::MinusInfinity());
    for (int i = pos; i < page.count(); ++i) {
      if (page.KeyAt(i) != key) return best;
      bool pseudo = (page.FlagsAt(i) & kEntryPseudoDeleted) != 0;
      if (!best.found || (best.pseudo_deleted && !pseudo)) {
        best.found = true;
        best.rid = page.RidAt(i);
        best.pseudo_deleted = pseudo;
      }
      if (!pseudo) return best;  // live match wins immediately
    }
    PageId next = page.next();
    if (next == kInvalidPageId) return best;
    // Matching values may continue on the right sibling.
    auto ng = pool_->FetchRead(next);
    if (!ng.ok()) return ng.status();
    leaf = std::move(*ng);
  }
}

// ----------------------- IB multi-key interface ----------------------

Status BTree::IbInsertBatch(Transaction* txn,
                            const std::vector<IndexKeyRef>& keys,
                            bool unique, const UniqueConflictFn& on_conflict,
                            IbStats* stats) {
  size_t i = 0;
  while (i < keys.size()) {
    // One descent per leaf-run: the "remembered path" effect of section
    // 2.2.3 — consecutive sorted keys land in the same leaf.
    std::vector<WritePageGuard> path;
    KeyBound high;
    OIB_RETURN_IF_ERROR(DescendPessimistic(
        keys[i].key, keys[i].rid, keys[i].key.size(), &path,
        /*ib_mode=*/true, &high));
    if (stats != nullptr) ++stats->descents;

    // Pending entries inserted into the current leaf but not yet logged.
    std::string pending_blob;
    uint16_t pending_count = 0;
    PageId pending_page = path.back().page_id();

    auto flush_pending = [&]() -> Status {
      if (pending_count == 0) return Status::OK();
      LogRecord rec;
      rec.type = LogRecordType::kUpdate;
      rec.rm_id = RmId::kBtree;
      rec.opcode = static_cast<uint8_t>(BtreeOp::kBatchInsert);
      rec.page_id = pending_page;
      rec.aux_id = index_id_;
      PutFixed16(&rec.redo, pending_count);
      rec.redo.append(pending_blob);
      OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &rec));
      path.back().set_page_lsn(rec.lsn);
      if (stats != nullptr) ++stats->log_records;
      pending_blob.clear();
      pending_count = 0;
      return Status::OK();
    };

    // Upper bound of the current leaf = the parent-separator fence
    // captured during the descent.  The right sibling's first key is NOT
    // a safe proxy: recovery undo or GC can physically remove it, and a
    // run bounded by the drifted value would insert keys above this
    // leaf's high fence.  The fence itself only moves when this leaf
    // splits, which we alone can do while holding its X latch.
    auto leaf_covers = [&](std::string_view k, const Rid& r) -> bool {
      if (!high.valid) return true;  // rightmost edge: no upper bound
      return CompareIndexKey(k, r, high.key, high.rid) < 0;
    };

    bool leaf_done = false;
    while (i < keys.size() && !leaf_done) {
      const IndexKeyRef& k = keys[i];
      if (k.key.size() > kMaxKeySize) {
        return Status::InvalidArgument("key too large");
      }
      if (!leaf_covers(k.key, k.rid)) break;  // next leaf: re-descend

      BTreePage page(path.back().data(), page_size());
      int pos = page.LowerBound(k.key, k.rid);
      bool exact =
          pos < page.count() && page.CompareEntryAt(pos, k.key, k.rid) == 0;
      if (exact) {
        // Duplicate <key,RID>: a transaction beat IB to it, or left a
        // tombstone; IB's insert is rejected with no log record
        // (sections 2.1.1, 2.2.3).
        if (stats != nullptr) {
          if ((page.FlagsAt(pos) & kEntryPseudoDeleted) != 0) {
            ++stats->skipped_tombstones;
          } else {
            ++stats->skipped_duplicates;
          }
        }
        ++i;
        continue;
      }
      if (unique) {
        // A value-equal neighbour under a different RID needs the unique
        // verification protocol (lock both records, recheck).
        for (int nb : {pos - 1, pos}) {
          if (nb < 0 || nb >= page.count()) continue;
          if (page.KeyAt(nb) != k.key) continue;
          Status s = on_conflict
                         ? on_conflict(k.key, page.RidAt(nb),
                                       (page.FlagsAt(nb) &
                                        kEntryPseudoDeleted) != 0,
                                       k.rid)
                         : Status::UniqueViolation("duplicate key value");
          if (!s.ok()) {
            OIB_RETURN_IF_ERROR(flush_pending());
            return s;
          }
        }
      }
      // Space check against the soft (fill-factor) capacity, in logical
      // bytes so compression does not loosen the fill factor.
      size_t entry = 1 + 6 + 2 + k.key.size() + 2;
      bool fits = page.HasSpaceFor(k.key) &&
                  (page.count() == 0 ||
                   (page_size() - page.LogicalFreeBytes()) + entry <=
                       LeafSoftCapacity());
      if (!fits) {
        OIB_RETURN_IF_ERROR(flush_pending());
        // The leaf filled up under this descent, invalidating the
        // released-safe-ancestors invariant (path may be just [leaf]).
        // Re-descend with the leaf now full so the unsafe path is
        // retained, then split.
        path.clear();
        OIB_RETURN_IF_ERROR(DescendPessimistic(k.key, k.rid, k.key.size(),
                                               &path, /*ib_mode=*/true));
        if (stats != nullptr) ++stats->descents;
        OIB_RETURN_IF_ERROR(MakeRoomInLeaf(&path, k.key, k.rid,
                                           /*ib_mode=*/true));
        if (stats != nullptr) stats->splits = splits_.load();
        // The split moved this leaf's high fence; re-descend so the run
        // is bounded by the post-split fence, not the stale one.
        path.clear();
        OIB_RETURN_IF_ERROR(DescendPessimistic(k.key, k.rid, k.key.size(),
                                               &path, /*ib_mode=*/true,
                                               &high));
        if (stats != nullptr) ++stats->descents;
        pending_page = path.back().page_id();
        continue;  // re-evaluate the same key on the new leaf
      }
      BTreePage page2(path.back().data(), page_size());
      int pos2 = page2.LowerBound(k.key, k.rid);
      OIB_RETURN_IF_ERROR(page2.InsertLeafAt(pos2, k.key, k.rid, 0));
      NotifyInsert(k.key, k.rid, 0);
      std::string raw;
      raw.push_back(0);  // flags
      PutFixed32(&raw, k.rid.page);
      PutFixed16(&raw, k.rid.slot);
      PutFixed16(&raw, static_cast<uint16_t>(k.key.size()));
      raw.append(k.key.data(), k.key.size());
      PutFixed16(&pending_blob, static_cast<uint16_t>(raw.size()));
      pending_blob.append(raw);
      ++pending_count;
      if (stats != nullptr) ++stats->inserted;
      ++i;
    }
    OIB_RETURN_IF_ERROR(flush_pending());
  }
  if (stats != nullptr) stats->splits = splits_.load();
  return Status::OK();
}

// ----------------------------- scans --------------------------------

Status BTree::ScanAll(const std::function<void(std::string_view, const Rid&,
                                               uint8_t)>& fn) const {
  ReadPageGuard leaf;
  OIB_RETURN_IF_ERROR(DescendToLeafRead("", Rid::MinusInfinity(), &leaf));
  for (;;) {
    BTreePage page(const_cast<char*>(leaf.data()), page_size());
    for (int i = 0; i < page.count(); ++i) {
      fn(page.KeyAt(i), page.RidAt(i), page.FlagsAt(i));
    }
    PageId next = page.next();
    if (next == kInvalidPageId) return Status::OK();
    auto ng = pool_->FetchRead(next);
    if (!ng.ok()) return ng.status();
    leaf = std::move(*ng);
  }
}

Status BTree::CollectLeaves(std::vector<PageId>* out) const {
  out->clear();
  ReadPageGuard leaf;
  OIB_RETURN_IF_ERROR(DescendToLeafRead("", Rid::MinusInfinity(), &leaf));
  for (;;) {
    out->push_back(leaf.page_id());
    BTreePage page(const_cast<char*>(leaf.data()), page_size());
    PageId next = page.next();
    if (next == kInvalidPageId) return Status::OK();
    auto ng = pool_->FetchRead(next);
    if (!ng.ok()) return ng.status();
    leaf = std::move(*ng);
  }
}

// ------------------------------ BtreeRm ------------------------------

void BtreeRm::RedoPageSet(const LogRecord& rec, std::vector<PageId>* out) {
  out->clear();
  BtreeOp op = static_cast<BtreeOp>(rec.opcode);
  if (op == BtreeOp::kSplit) {
    SplitPayload p;
    if (DecodeSplitPayload(rec.redo, &p).ok()) {
      out->push_back(p.new_page);
      out->push_back(rec.page_id);
      if (p.parent != kInvalidPageId) out->push_back(p.parent);
    } else {
      // Undecodable: force a barrier; Redo will report the corruption.
      out->assign(2, rec.page_id);
    }
    return;
  }
  if (op == BtreeOp::kNewRoot) {
    PageId anchor, old_root;
    uint8_t level;
    if (DecodeNewRootPayload(rec.redo, &anchor, &old_root, &level).ok()) {
      out->push_back(rec.page_id);
      out->push_back(anchor);
    } else {
      out->assign(2, rec.page_id);
    }
    return;
  }
  out->push_back(rec.page_id);
}

Status BtreeRm::Redo(const LogRecord& rec) {
  BtreeOp op = static_cast<BtreeOp>(rec.opcode);
  size_t page_size = pool_->disk()->page_size();

  if (op == BtreeOp::kSplit) {
    SplitPayload p;
    OIB_RETURN_IF_ERROR(DecodeSplitPayload(rec.redo, &p));
    {
      auto ng = pool_->FetchWrite(p.new_page);
      if (!ng.ok()) return ng.status();
      if (ng->page_lsn() < rec.lsn) {
        BTreePage np(ng->data(), page_size);
        np.Init(p.is_leaf != 0, p.level);
        np.set_leftmost_child(p.new_leftmost);
        OIB_RETURN_IF_ERROR(np.AppendSerialized(p.moved));
        np.set_next(p.new_next);
        ng->set_page_lsn(rec.lsn);
      }
    }
    {
      auto og = pool_->FetchWrite(rec.page_id);
      if (!og.ok()) return og.status();
      if (og->page_lsn() < rec.lsn) {
        BTreePage node(og->data(), page_size);
        int cut = node.LowerBound(p.sep_key, p.sep_rid);
        node.TruncateFrom(cut);
        if (p.is_leaf) node.set_next(p.new_page);
        og->set_page_lsn(rec.lsn);
      }
    }
    if (p.parent != kInvalidPageId) {
      auto pg = pool_->FetchWrite(p.parent);
      if (!pg.ok()) return pg.status();
      if (pg->page_lsn() < rec.lsn) {
        BTreePage parent(pg->data(), page_size);
        int pos = parent.LowerBound(p.sep_key, p.sep_rid);
        OIB_RETURN_IF_ERROR(
            parent.InsertInternalAt(pos, p.sep_key, p.sep_rid, p.new_page));
        pg->set_page_lsn(rec.lsn);
      }
    }
    return Status::OK();
  }

  if (op == BtreeOp::kNewRoot) {
    PageId anchor, old_root;
    uint8_t level;
    OIB_RETURN_IF_ERROR(
        DecodeNewRootPayload(rec.redo, &anchor, &old_root, &level));
    {
      auto rg = pool_->FetchWrite(rec.page_id);
      if (!rg.ok()) return rg.status();
      if (rg->page_lsn() < rec.lsn) {
        BTreePage np(rg->data(), page_size);
        np.Init(/*leaf=*/false, level);
        np.set_leftmost_child(old_root);
        rg->set_page_lsn(rec.lsn);
      }
    }
    {
      auto ag = pool_->FetchWrite(anchor);
      if (!ag.ok()) return ag.status();
      if (ag->page_lsn() < rec.lsn) {
        EncodeFixed32(ag->data() + kAnchorRootOff, rec.page_id);
        ag->set_page_lsn(rec.lsn);
      }
    }
    return Status::OK();
  }

  auto guard = pool_->FetchWrite(rec.page_id);
  if (!guard.ok()) return guard.status();
  if (guard->page_lsn() >= rec.lsn) return Status::OK();
  BTreePage page(guard->data(), page_size);

  switch (op) {
    case BtreeOp::kFormat: {
      if (rec.redo.size() < 2) return Status::Corruption("format redo");
      page.Init(rec.redo[0] != 0, static_cast<uint8_t>(rec.redo[1]));
      break;
    }
    case BtreeOp::kInitAnchor: {
      BufferReader r(rec.redo);
      uint32_t root;
      if (!r.GetFixed32(&root)) return Status::Corruption("anchor redo");
      EncodeFixed32(guard->data() + kAnchorRootOff, root);
      break;
    }
    case BtreeOp::kInsertKey: {
      KeyPayload kp;
      OIB_RETURN_IF_ERROR(DecodeKeyPayload(rec.redo, &kp));
      int pos = page.LowerBound(kp.key, kp.rid);
      OIB_RETURN_IF_ERROR(
          page.InsertLeafAt(pos, kp.key, kp.rid, kp.flags));
      break;
    }
    case BtreeOp::kPseudoDelete:
    case BtreeOp::kReactivate: {
      KeyPayload kp;
      OIB_RETURN_IF_ERROR(DecodeKeyPayload(rec.redo, &kp));
      int pos = page.FindExact(kp.key, kp.rid);
      if (pos < 0) return Status::Corruption("redo flag on absent key");
      page.SetFlagsAt(pos, op == BtreeOp::kPseudoDelete
                               ? kEntryPseudoDeleted
                               : 0);
      break;
    }
    case BtreeOp::kPhysicalDelete:
    case BtreeOp::kGcRemove: {
      KeyPayload kp;
      OIB_RETURN_IF_ERROR(DecodeKeyPayload(rec.redo, &kp));
      int pos = page.FindExact(kp.key, kp.rid);
      if (pos < 0) return Status::Corruption("redo remove of absent key");
      page.RemoveAt(pos);
      break;
    }
    case BtreeOp::kBatchInsert: {
      std::vector<LeafEntryView> entries;
      OIB_RETURN_IF_ERROR(DecodeLeafEntriesBlob(rec.redo, &entries));
      for (const LeafEntryView& e : entries) {
        int pos = page.LowerBound(e.key, e.rid);
        OIB_RETURN_IF_ERROR(page.InsertLeafAt(pos, e.key, e.rid, e.flags));
      }
      break;
    }
    default:
      return Status::Corruption("unknown btree redo opcode");
  }
  guard->set_page_lsn(rec.lsn);
  return Status::OK();
}

Status BtreeRm::Undo(Transaction* txn, const LogRecord& rec) {
  if (!resolver_) return Status::Corruption("btree undo without resolver");
  BTree* tree = resolver_(rec.aux_id);
  if (tree == nullptr) {
    return Status::Corruption("btree undo: unknown index " +
                              std::to_string(rec.aux_id));
  }
  return tree->UndoKeyOp(txn, rec);
}

// Logical undo with CLRs.  Keys may have moved pages since the forward
// action, so every undo re-traverses from the root (ARIES/IM).
Status BTree::UndoKeyOp(Transaction* txn, const LogRecord& rec) {
  BtreeOp op = static_cast<BtreeOp>(rec.opcode);

  auto undo_one = [&](const KeyPayload& kp, BtreeOp fwd, Lsn undo_next,
                      bool from_ib_batch = false) -> Status {
    WritePageGuard leaf;
    OIB_RETURN_IF_ERROR(DescendToLeafWrite(kp.key, kp.rid, &leaf));
    BTreePage page(leaf.data(), page_size());
    int pos = page.FindExact(kp.key, kp.rid);
    LogRecord clr;
    clr.rm_id = RmId::kBtree;
    clr.aux_id = index_id_;
    clr.page_id = leaf.page_id();
    clr.type = LogRecordType::kClr;
    clr.undo_next_lsn = undo_next;
    switch (fwd) {
      case BtreeOp::kInsertKey: {
        if ((kp.flags & kEntryPseudoDeleted) != 0) {
          // Undo of a deleter's tombstone insert: put the key in the
          // *inserted* state (section 2.1.2), do not remove it.
          if (pos < 0) {
            // Batch re-undo after a crash may find it gone; tolerate.
            return Status::NotFound("tombstone vanished");
          }
          clr.opcode = static_cast<uint8_t>(BtreeOp::kReactivate);
          EncodeKeyPayload(&clr.redo, 0, kp.key, kp.rid);
          OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &clr));
          page.SetFlagsAt(pos, 0);
          leaf.set_page_lsn(clr.lsn);
          NotifySetFlags(kp.key, kp.rid, 0);
          return Status::OK();
        }
        if (pos < 0) return Status::NotFound("key vanished");
        if (from_ib_batch &&
            (page.FlagsAt(pos) & kEntryPseudoDeleted) != 0) {
          // A deleter tombstoned the entry after IB inserted it.  The
          // tombstone is the deleter's state, not IB's: leave it so the
          // resumed build's re-insert of this key is still rejected (the
          // record is gone).  A loser deleter's own undo reactivates it.
          return Status::OK();
        }
        if (ib_active_.load() && !from_ib_batch) {
          // Deleter discipline during an NSF build: leave a pseudo-deleted
          // trail so a late IB insert of this key is rejected (the paper's
          // section 2.2.3 example, steps 5-6).  This applies to *updater*
          // inserts only — undoing IB's own batch must remove physically,
          // because its keys name committed records the resumed build
          // re-inserts; a tombstone here would be rejected by that
          // re-insert and the key would stay dead in a ready index.
          clr.opcode = static_cast<uint8_t>(BtreeOp::kPseudoDelete);
          EncodeKeyPayload(&clr.redo, 0, kp.key, kp.rid);
          OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &clr));
          page.SetFlagsAt(pos, kEntryPseudoDeleted);
          leaf.set_page_lsn(clr.lsn);
          NotifySetFlags(kp.key, kp.rid, kEntryPseudoDeleted);
          return Status::OK();
        }
        clr.opcode = static_cast<uint8_t>(BtreeOp::kPhysicalDelete);
        EncodeKeyPayload(&clr.redo, page.FlagsAt(pos), kp.key, kp.rid);
        OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &clr));
        page.RemoveAt(pos);
        leaf.set_page_lsn(clr.lsn);
        NotifyRemove(kp.key, kp.rid);
        return Status::OK();
      }
      case BtreeOp::kPseudoDelete: {
        if (pos < 0) return Status::NotFound("key vanished");
        clr.opcode = static_cast<uint8_t>(BtreeOp::kReactivate);
        EncodeKeyPayload(&clr.redo, 0, kp.key, kp.rid);
        OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &clr));
        page.SetFlagsAt(pos, 0);
        leaf.set_page_lsn(clr.lsn);
        NotifySetFlags(kp.key, kp.rid, 0);
        return Status::OK();
      }
      case BtreeOp::kReactivate: {
        if (pos < 0) return Status::NotFound("key vanished");
        clr.opcode = static_cast<uint8_t>(BtreeOp::kPseudoDelete);
        EncodeKeyPayload(&clr.redo, 0, kp.key, kp.rid);
        OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &clr));
        page.SetFlagsAt(pos, kEntryPseudoDeleted);
        leaf.set_page_lsn(clr.lsn);
        NotifySetFlags(kp.key, kp.rid, kEntryPseudoDeleted);
        return Status::OK();
      }
      case BtreeOp::kPhysicalDelete: {
        // Re-insert with the original flags (kept in the undo payload).
        if (pos >= 0) return Status::OK();  // already back (re-undo)
        leaf.Release();
        // May need splits: go through the pessimistic path.
        std::vector<WritePageGuard> path;
        OIB_RETURN_IF_ERROR(
            DescendPessimistic(kp.key, kp.rid, kp.key.size(), &path));
        OIB_RETURN_IF_ERROR(
            MakeRoomInLeaf(&path, kp.key, kp.rid, /*ib_mode=*/false));
        BTreePage lp(path.back().data(), page_size());
        int ipos = lp.LowerBound(kp.key, kp.rid);
        clr.page_id = path.back().page_id();
        clr.opcode = static_cast<uint8_t>(BtreeOp::kInsertKey);
        EncodeKeyPayload(&clr.redo, kp.flags, kp.key, kp.rid);
        OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &clr));
        OIB_RETURN_IF_ERROR(
            lp.InsertLeafAt(ipos, kp.key, kp.rid, kp.flags));
        path.back().set_page_lsn(clr.lsn);
        NotifyInsert(kp.key, kp.rid, kp.flags);
        return Status::OK();
      }
      default:
        return Status::Corruption("bad btree undo op");
    }
  };

  switch (op) {
    case BtreeOp::kInsertKey:
    case BtreeOp::kPseudoDelete:
    case BtreeOp::kReactivate: {
      KeyPayload kp;
      OIB_RETURN_IF_ERROR(DecodeKeyPayload(rec.redo, &kp));
      Status s = undo_one(kp, op, rec.prev_lsn);
      if (s.IsNotFound()) {
        // kUndoOnly insert (NSF dup case) may name a key IB never actually
        // inserted after a crash-restart; skip-with-CLR is not needed
        // because no page changed.  Strictness elsewhere.
        if (rec.type == LogRecordType::kUndoOnly) return Status::OK();
        return Status::OK();
      }
      return s;
    }
    case BtreeOp::kPhysicalDelete: {
      KeyPayload kp;
      OIB_RETURN_IF_ERROR(DecodeKeyPayload(rec.undo, &kp));
      return undo_one(kp, op, rec.prev_lsn);
    }
    case BtreeOp::kBatchInsert: {
      std::vector<LeafEntryView> entries;
      OIB_RETURN_IF_ERROR(DecodeLeafEntriesBlob(rec.redo, &entries));
      // Multi-entry undo: every CLR but the last points back at this
      // record, so a crash mid-undo re-runs the whole (idempotent,
      // skip-absent) batch; the last CLR releases it.
      for (size_t j = 0; j < entries.size(); ++j) {
        const LeafEntryView& e = entries[j];
        KeyPayload kp{e.flags, e.rid, e.key};
        Lsn undo_next =
            (j + 1 == entries.size()) ? rec.prev_lsn : rec.lsn;
        Status s = undo_one(kp, BtreeOp::kInsertKey, undo_next,
                            /*from_ib_batch=*/true);
        if (!s.ok() && !s.IsNotFound()) return s;
      }
      return Status::OK();
    }
    default:
      return Status::Corruption("undo of non-undoable btree op");
  }
}

}  // namespace oib
