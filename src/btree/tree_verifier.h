// TreeVerifier: structural invariant checks and physical-clustering
// statistics for B+-trees.
//
// The clustering statistics quantify the paper's section 4 claim that "the
// index built by SF would be more clustered (i.e., consecutive keys being
// on consecutive pages on disk) than the one built by NSF", which the
// paper explicitly leaves to be quantified.

#ifndef OIB_BTREE_TREE_VERIFIER_H_
#define OIB_BTREE_TREE_VERIFIER_H_

#include <cstdint>
#include <string>

#include "btree/btree.h"

namespace oib {

struct TreeCheckReport {
  bool ok = false;
  std::string error;          // first violated invariant, if any
  uint64_t leaf_pages = 0;
  uint64_t internal_pages = 0;
  uint64_t entries = 0;        // live + pseudo-deleted leaf entries
  uint64_t pseudo_deleted = 0;
  uint32_t height = 0;         // 1 = root is a leaf
};

struct ClusteringStats {
  uint64_t leaf_pages = 0;
  // Fraction of consecutive leaf-chain pairs whose page ids are physically
  // adjacent (id+1).  1.0 = perfect clustering (pure bottom-up build).
  double adjacency = 0.0;
  // Mean absolute page-id gap between consecutive leaves.
  double mean_gap = 0.0;
  // Mean leaf space utilization (used bytes / page size).
  double utilization = 0.0;
  uint64_t entries = 0;
  uint64_t pseudo_deleted = 0;
  // Bytes leaf prefix truncation saves versus storing every key in full:
  // sum over leaves of (count - 1) * prefix_len.
  uint64_t prefix_saved_bytes = 0;
  // Mean shared-prefix length across non-empty leaves.
  double mean_leaf_prefix_len = 0.0;
  // entries / leaf_pages; rises as prefix truncation packs leaves denser.
  double entries_per_leaf = 0.0;
};

class TreeVerifier {
 public:
  TreeVerifier(BTree* tree, BufferPool* pool) : tree_(tree), pool_(pool) {}

  // Full structural check: in-order keys across the leaf chain, exact
  // separator/child consistency at every internal node, uniform leaf
  // depth, and leaf-chain/agreement with an in-order tree walk.
  // The tree must be quiescent (no concurrent writers).
  StatusOr<TreeCheckReport> Check();

  StatusOr<ClusteringStats> Clustering();

 private:
  Status CheckSubtree(PageId page, uint32_t expect_level,
                      const std::string* low_key, const Rid* low_rid,
                      const std::string* high_key, const Rid* high_rid,
                      TreeCheckReport* report,
                      std::vector<PageId>* leaves_in_order);

  BTree* tree_;
  BufferPool* pool_;
};

}  // namespace oib

#endif  // OIB_BTREE_TREE_VERIFIER_H_
