// BTree: the index manager.
//
// A B+-tree over <key value, RID> entries with:
//  * latch-crabbing concurrent descent (S latches; X only on the leaf, or
//    on the whole unsafe path when a split is needed) — transactions and
//    the index builder never hold a data-page latch while inserting keys
//    (deadlock-avoidance rule of paper section 1.2);
//  * pseudo-delete support: logical key deletion via a flag bit, tombstone
//    inserts by deleters when the key is absent, reactivation on re-insert
//    (sections 2.1.2, 2.2.3);
//  * a multi-key IB insert interface with the remembered-path optimization
//    and the specialized "move only higher keys" IB split, leaving
//    configurable free space in each leaf (section 2.3.1);
//  * ARIES-style logging: undo-redo records for key operations (logical
//    undo via re-traversal, with CLRs), redo-only nested-top-action
//    records for page splits and root growth.
//
// The root pointer lives in a dedicated *anchor page* so that root growth
// is recoverable with ordinary page-LSN-guarded redo.  An in-memory atomic
// caches the root; descents validate it after latching (the splitter
// publishes the new root while still holding the old root's X latch, so a
// stale descent always observes the change and retries).

#ifndef OIB_BTREE_BTREE_H_
#define OIB_BTREE_BTREE_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "btree/btree_page.h"
#include "common/options.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"

namespace oib {

// B+-tree RM opcodes.
enum class BtreeOp : uint8_t {
  kFormat = 1,         // NTA: init a page (payload: leaf u8, level u8)
  kInitAnchor = 2,     // NTA: write root id into the anchor page
  kInsertKey = 3,      // undo-redo (or undo-only, NSF section 2.1.1)
  kPhysicalDelete = 4, // undo-redo; also the CLR image of undo-of-insert
  kPseudoDelete = 5,   // undo-redo: set the pseudo-delete flag
  kReactivate = 6,     // undo-redo: clear the pseudo-delete flag
  kBatchInsert = 7,    // undo-redo: IB multi-key insert into one leaf
  kSplit = 8,          // NTA: page split (old + new + parent)
  kNewRoot = 9,        // NTA: tree grows a level
  kGcRemove = 10,      // redo-only: GC removal of a committed tombstone
};

// A key headed for the index: extracted <key value, RID>.
struct IndexKeyRef {
  std::string_view key;
  Rid rid;
};

// Payload codec for single-key log records: [flags][rid][klen][key].
void EncodeKeyPayload(std::string* out, uint8_t flags, std::string_view key,
                      const Rid& rid);
struct KeyPayload {
  uint8_t flags;
  Rid rid;
  std::string_view key;
};
Status DecodeKeyPayload(std::string_view in, KeyPayload* out);

// Observer of *logical* leaf-entry changes: one callback per entry
// inserted, physically removed, or flag-flipped, fired at every mutation
// choke point (forward ops, IB batch inserts, GC, and logical undo CLRs)
// while the leaf's X latch is still held — so the event stream is
// serialized per entry and exactly mirrors the tree's contents.  Page
// splits move entries without changing the logical set, so they emit
// nothing.  Recovery redo runs before observers are attached (the hash
// fragment repopulates from a scan afterwards); bulk loads bypass the
// tree's mutation paths and populate the mirror explicitly.
//
// Implementations must be cheap and must only acquire locks ranked above
// kPageLatch (the hash fragment's kHashShard qualifies).
class IndexEntryObserver {
 public:
  virtual ~IndexEntryObserver() = default;
  virtual void OnLeafInsert(std::string_view key, const Rid& rid,
                            uint8_t flags) = 0;
  virtual void OnLeafRemove(std::string_view key, const Rid& rid) = 0;
  virtual void OnLeafSetFlags(std::string_view key, const Rid& rid,
                              uint8_t flags) = 0;
};

class BTree {
 public:
  enum class InsertResult {
    kInserted,        // physically added
    kReactivated,     // pseudo-deleted entry put back in inserted state
    kAlreadyPresent,  // exact live <key,RID> existed; nothing done
  };
  enum class DeleteResult {
    kPseudoDeleted,      // live entry marked deleted
    kTombstoneInserted,  // key was absent; pseudo-deleted key inserted
    kAlreadyPseudo,      // already marked; nothing done
  };
  struct LookupResult {
    bool found = false;
    bool pseudo_deleted = false;
  };
  struct ValueMatch {
    bool found = false;
    Rid rid;
    bool pseudo_deleted = false;
  };
  struct IbStats {
    uint64_t inserted = 0;
    uint64_t skipped_duplicates = 0;  // rejected <key,RID> duplicates
    uint64_t skipped_tombstones = 0;  // rejected: pseudo-deleted key found
    uint64_t splits = 0;
    uint64_t log_records = 0;
    uint64_t descents = 0;  // root-to-leaf traversals actually performed
  };
  // Called when an IB insert of `key` for `new_rid` finds an entry with an
  // equal key value under a different RID (`existing`); only invoked for
  // unique indexes.  Return OK to proceed with the insert, UniqueViolation
  // to abort the build, or any other error to propagate.
  using UniqueConflictFn = std::function<Status(
      std::string_view key, const Rid& existing_rid, bool existing_pseudo,
      const Rid& new_rid)>;

  BTree(IndexId id, BufferPool* pool, TransactionManager* txns,
        const Options* options)
      : index_id_(id), pool_(pool), txns_(txns), options_(options) {}

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  // Allocates the anchor page and an empty root leaf (NTA-logged).
  Status Create();
  // Opens an existing tree from its anchor page.
  Status Open(PageId anchor);

  IndexId index_id() const { return index_id_; }
  PageId anchor_page() const { return anchor_; }
  PageId root() const { return root_.load(); }

  // ---- transactional key operations ----

  // See InsertResult.  `flags` lets a deleter insert a tombstone directly
  // (kEntryPseudoDeleted); plain inserts pass 0.  `log_type` is kUpdate
  // for forward processing; rollback *compensation* inserts (Figure 2
  // logical index undo) pass kRedoOnly so they are never re-undone.
  StatusOr<InsertResult> Insert(
      Transaction* txn, std::string_view key, const Rid& rid,
      uint8_t flags = 0,
      LogRecordType log_type = LogRecordType::kUpdate);

  // Deleter logic of section 2.2.3 ("IB and Delete Operations").
  StatusOr<DeleteResult> PseudoDelete(Transaction* txn, std::string_view key,
                                      const Rid& rid);

  // Physical key removal (normal maintenance when no build is active, and
  // the CLR image of undo-of-insert).  NotFound if absent.  See Insert for
  // log_type.
  Status PhysicalDelete(Transaction* txn, std::string_view key,
                        const Rid& rid,
                        LogRecordType log_type = LogRecordType::kUpdate);

  // NSF section 2.1.1: the transaction found its key already inserted by
  // IB; it writes an undo-only record so rollback will delete the key,
  // without touching the page now.
  Status LogUndoOnlyInsert(Transaction* txn, std::string_view key,
                           const Rid& rid);

  // GC path (section 2.2.4): physically removes a pseudo-deleted entry,
  // redo-only logged (the deletion it garbage-collects is committed).
  Status GcRemove(std::string_view key, const Rid& rid);

  // ---- lookups ----

  StatusOr<LookupResult> Lookup(std::string_view key, const Rid& rid) const;
  // First entry whose key value equals `key` (unique-index support);
  // prefers a live entry over pseudo-deleted ones.
  StatusOr<ValueMatch> FindKeyValue(std::string_view key) const;

  // ---- index-builder interface (NSF) ----

  // Inserts `keys` (ascending <key,RID> order) on behalf of the builder
  // transaction.  Implements the multi-keys-per-call interface, remembered
  // path, duplicate rejection, IB split mode, and one log record per leaf
  // touched (section 2.2.3 / 2.3.1).
  Status IbInsertBatch(Transaction* txn, const std::vector<IndexKeyRef>& keys,
                       bool unique, const UniqueConflictFn& on_conflict,
                       IbStats* stats);

  // ---- scans & inspection ----

  // Walks all leaf entries in order: fn(key, rid, flags).  Latches one
  // leaf at a time.
  Status ScanAll(const std::function<void(std::string_view, const Rid&,
                                          uint8_t)>& fn) const;
  // Leaf page ids in leaf-chain order (clustering measurements, GC).
  Status CollectLeaves(std::vector<PageId>* out) const;

  uint64_t split_count() const { return splits_.load(); }

  // True while an NSF build is in progress on this index.  Controls the
  // deleter discipline during rollback: undoing a key insert must
  // *pseudo-delete* the key rather than remove it ("the key delete may be
  // happening as a result of ... a rollback action (undo of an earlier
  // key insert)", section 2.2.3), because IB may have extracted the key
  // and would otherwise resurrect a pointer to a rolled-back record.
  void set_ib_active(bool active) { ib_active_.store(active); }
  bool ib_active() const { return ib_active_.load(); }

  // Logical undo dispatch (called by BtreeRm): reverses one key-operation
  // log record, writing CLRs; re-traverses from the root because keys may
  // have moved across pages (ARIES/IM-style logical undo).
  Status UndoKeyOp(Transaction* txn, const LogRecord& rec);

  // Attaches/detaches the logical entry observer (the hash fast path's
  // mirror).  The pointer must outlive the tree or be detached first;
  // attachment is atomic so it can happen while the tree is live.
  void set_entry_observer(IndexEntryObserver* obs) {
    observer_.store(obs, std::memory_order_release);
  }
  IndexEntryObserver* entry_observer() const {
    return observer_.load(std::memory_order_acquire);
  }

 private:
  friend class BtreeRm;
  friend class BulkLoader;

  // Latches the current root (shared or exclusive), validating the cached
  // root pointer after the latch is held.
  Status LatchRootRead(ReadPageGuard* out) const;

  // Read descent to the leaf that (key, rid) routes to.
  Status DescendToLeafRead(std::string_view key, const Rid& rid,
                           ReadPageGuard* out) const;
  // Optimistic write descent: S latches down, X latch on the leaf only.
  Status DescendToLeafWrite(std::string_view key, const Rid& rid,
                            WritePageGuard* out);
  // Exclusive upper bound of a leaf's key space, taken from the parent
  // separators along a descent.  `valid` is false on the rightmost edge
  // (no bound: the leaf covers everything above its low fence).
  struct KeyBound {
    std::string key;
    Rid rid;
    bool valid = false;
  };

  // Pessimistic write descent: X latches the path, releasing safe
  // ancestors; `path` holds root..leaf (only the unsafe suffix).  If
  // `high` is non-null it receives the leaf's true high fence — the
  // tightest parent separator above the descent edge.  IbInsertBatch
  // bounds its leaf runs with this rather than the right sibling's first
  // key: sibling content drifts (recovery undo or GC can physically
  // remove the sibling's first entry), the key-space partition does not.
  Status DescendPessimistic(std::string_view key, const Rid& rid,
                            size_t key_len_for_safety,
                            std::vector<WritePageGuard>* path,
                            bool ib_mode = false, KeyBound* high = nullptr);

  // Ensures the leaf guarded by path->back() has room for an entry with
  // `key`; splits (and grows the root) as needed, re-routing so that on
  // return path->back() is the leaf where (key, rid) belongs and has room.
  // `ib_mode` applies the section 2.3.1 specialized split.
  Status MakeRoomInLeaf(std::vector<WritePageGuard>* path,
                        std::string_view key, const Rid& rid, bool ib_mode);

  // Splits the node at path index `idx` (path holds X guards from some
  // ancestor down to idx).  Chooses split point `split_at`, logs a kSplit
  // NTA, and applies it.  Outputs the new sibling's guard and the
  // separator that now bounds it from below.  May grow the tree and/or
  // split parents recursively; indices in `path` stay aligned (a new root
  // is inserted at the front).
  Status SplitNode(std::vector<WritePageGuard>* path, size_t* idx,
                   int split_at, WritePageGuard* new_guard,
                   std::string* out_sep_key, Rid* out_sep_rid);

  // Leaf-only split that moves nothing: opens an empty right sibling
  // bounded below by (key, rid) — the bottom-up-mimicking append split and
  // the "no higher keys" case of the IB split (section 2.3.1).  On return
  // path->back() is the new empty leaf.
  Status SplitEmptyRight(std::vector<WritePageGuard>* path, size_t idx,
                         std::string_view key, const Rid& rid);

  // Ensures path[idx-1] (the parent) can absorb a separator of sep_len
  // bytes, splitting it first if needed and re-aiming the guard at
  // whichever half will receive (sep_key, sep_rid).  `idx` is updated if
  // the tree grew.
  Status EnsureParentHasRoom(std::vector<WritePageGuard>* path, size_t* idx,
                             std::string_view sep_key, const Rid& sep_rid);

  // Grows the tree: makes a new root above the current path[0] (which must
  // be the old root), inserting the new root guard at path->begin().
  Status GrowRoot(std::vector<WritePageGuard>* path);

  // Single-key logged page mutations used by the public ops (page guard
  // already held exclusively).
  Status LoggedLeafInsert(Transaction* txn, WritePageGuard* leaf, int pos,
                          std::string_view key, const Rid& rid,
                          uint8_t flags, LogRecordType type);
  Status LoggedSetFlags(Transaction* txn, WritePageGuard* leaf, int pos,
                        std::string_view key, const Rid& rid, BtreeOp op,
                        LogRecordType type);
  Status LoggedLeafRemove(Transaction* txn, WritePageGuard* leaf, int pos,
                          std::string_view key, const Rid& rid,
                          LogRecordType type);

  size_t page_size() const { return pool_->disk()->page_size(); }
  size_t LeafSoftCapacity() const;  // fill-factor-limited bytes for IB

  // Observer notification helpers (called with the leaf X latch held,
  // immediately after the page mutation they describe).
  void NotifyInsert(std::string_view key, const Rid& rid, uint8_t flags) {
    if (IndexEntryObserver* o = entry_observer()) {
      o->OnLeafInsert(key, rid, flags);
    }
  }
  void NotifyRemove(std::string_view key, const Rid& rid) {
    if (IndexEntryObserver* o = entry_observer()) o->OnLeafRemove(key, rid);
  }
  void NotifySetFlags(std::string_view key, const Rid& rid, uint8_t flags) {
    if (IndexEntryObserver* o = entry_observer()) {
      o->OnLeafSetFlags(key, rid, flags);
    }
  }

  IndexId index_id_;
  BufferPool* pool_;
  TransactionManager* txns_;
  const Options* options_;

  PageId anchor_ = kInvalidPageId;
  std::atomic<PageId> root_{kInvalidPageId};
  std::atomic<uint64_t> splits_{0};
  std::atomic<bool> ib_active_{false};
  std::atomic<IndexEntryObserver*> observer_{nullptr};
};

// Recovery handler for all B+-trees.  Redo is physical per page; undo is
// logical and needs the live tree object, found through the resolver
// (index id -> BTree*), because keys may have moved across pages.
class BtreeRm : public ResourceManager {
 public:
  using TreeResolver = std::function<BTree*(IndexId)>;

  BtreeRm(BufferPool* pool, TransactionManager* txns)
      : pool_(pool), txns_(txns) {}

  void SetResolver(TreeResolver resolver) { resolver_ = std::move(resolver); }

  RmId rm_id() const override { return RmId::kBtree; }
  Status Redo(const LogRecord& rec) override;
  Status Undo(Transaction* txn, const LogRecord& rec) override;
  // kSplit touches {new page, split page, parent}; kNewRoot touches
  // {new root, anchor}.  Everything else is single-page.
  void RedoPageSet(const LogRecord& rec, std::vector<PageId>* out) override;

 private:
  BufferPool* pool_;
  TransactionManager* txns_;
  TreeResolver resolver_;
};

}  // namespace oib

#endif  // OIB_BTREE_BTREE_H_
