#include "btree/btree_page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace oib {

int CompareIndexKey(std::string_view a_key, const Rid& a_rid,
                    std::string_view b_key, const Rid& b_rid) {
  int c = KeySlice(a_key).Compare(KeySlice(b_key));
  if (c != 0) return c;
  if (a_rid < b_rid) return -1;
  if (b_rid < a_rid) return 1;
  return 0;
}

void BTreePage::Init(bool leaf, uint8_t level) {
  data_[kTypeOff] = static_cast<char>(leaf ? PageType::kBtreeLeaf
                                           : PageType::kBtreeInternal);
  data_[kLevelOff] = static_cast<char>(level);
  set_count(0);
  set_prefix_len(0);
  set_free_end(static_cast<uint16_t>(page_size_));
  set_next(kInvalidPageId);
  set_leftmost_child(kInvalidPageId);
}

bool BTreePage::is_leaf() const {
  return static_cast<PageType>(static_cast<uint8_t>(data_[kTypeOff])) ==
         PageType::kBtreeLeaf;
}

uint8_t BTreePage::level() const {
  return static_cast<uint8_t>(data_[kLevelOff]);
}

uint16_t BTreePage::count() const { return DecodeFixed16(data_ + kCountOff); }
void BTreePage::set_count(uint16_t v) { EncodeFixed16(data_ + kCountOff, v); }

PageId BTreePage::next() const { return DecodeFixed32(data_ + kNextOff); }
void BTreePage::set_next(PageId id) { EncodeFixed32(data_ + kNextOff, id); }

PageId BTreePage::leftmost_child() const {
  return DecodeFixed32(data_ + kLeftmostOff);
}
void BTreePage::set_leftmost_child(PageId id) {
  EncodeFixed32(data_ + kLeftmostOff, id);
}

size_t BTreePage::prefix_len() const {
  return DecodeFixed16(data_ + kPrefixLenOff);
}
void BTreePage::set_prefix_len(uint16_t v) {
  EncodeFixed16(data_ + kPrefixLenOff, v);
}

std::string_view BTreePage::prefix() const {
  size_t pl = prefix_len();
  return std::string_view(data_ + page_size_ - pl, pl);
}

uint16_t BTreePage::free_end() const {
  return DecodeFixed16(data_ + kFreeEndOff);
}
void BTreePage::set_free_end(uint16_t v) {
  EncodeFixed16(data_ + kFreeEndOff, v);
}

uint16_t BTreePage::entry_offset(int i) const {
  return DecodeFixed16(data_ + kOffsetsOff + 2 * i);
}
void BTreePage::set_entry_offset(int i, uint16_t off) {
  EncodeFixed16(data_ + kOffsetsOff + 2 * i, off);
}

size_t BTreePage::EntryHeaderSize() const {
  // leaf: flags(1) + rid(6); internal: child(4) + rid(6).
  return is_leaf() ? 1 + 6 : 4 + 6;
}

std::string_view BTreePage::RawEntry(int i) const {
  uint16_t off = entry_offset(i);
  size_t hdr = EntryHeaderSize();
  uint16_t slen = DecodeFixed16(data_ + off + hdr);
  return std::string_view(data_ + off, hdr + 2 + slen);
}

std::string_view BTreePage::SuffixAt(int i) const {
  uint16_t off = entry_offset(i);
  size_t hdr = EntryHeaderSize();
  uint16_t slen = DecodeFixed16(data_ + off + hdr);
  return std::string_view(data_ + off + hdr + 2, slen);
}

std::string BTreePage::KeyAt(int i) const {
  std::string_view pfx = prefix();
  std::string_view sfx = SuffixAt(i);
  std::string key;
  key.reserve(pfx.size() + sfx.size());
  key.append(pfx);
  key.append(sfx);
  return key;
}

Rid BTreePage::RidAt(int i) const {
  uint16_t off = entry_offset(i);
  size_t rid_off = is_leaf() ? 1 : 4;
  PageId page = DecodeFixed32(data_ + off + rid_off);
  SlotId slot = DecodeFixed16(data_ + off + rid_off + 4);
  return Rid(page, slot);
}

uint8_t BTreePage::FlagsAt(int i) const {
  assert(is_leaf());
  return static_cast<uint8_t>(data_[entry_offset(i)]);
}

void BTreePage::SetFlagsAt(int i, uint8_t f) {
  assert(is_leaf());
  data_[entry_offset(i)] = static_cast<char>(f);
}

PageId BTreePage::ChildAt(int i) const {
  assert(!is_leaf());
  if (i < 0) return leftmost_child();
  return DecodeFixed32(data_ + entry_offset(i));
}

int BTreePage::CompareEntryAt(int i, std::string_view key,
                              const Rid& rid) const {
  int c = ComparePrefixedKey(KeySlice(prefix()), KeySlice(SuffixAt(i)),
                             KeySlice(key));
  if (c != 0) return c;
  Rid r = RidAt(i);
  if (r < rid) return -1;
  if (rid < r) return 1;
  return 0;
}

int BTreePage::LowerBound(std::string_view key, const Rid& rid) const {
  int lo = 0, hi = count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CompareEntryAt(mid, key, rid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTreePage::FindExact(std::string_view key, const Rid& rid) const {
  int i = LowerBound(key, rid);
  if (i < count() && CompareEntryAt(i, key, rid) == 0) {
    return i;
  }
  return -1;
}

PageId BTreePage::Route(std::string_view key, const Rid& rid) const {
  assert(!is_leaf());
  // Largest entry <= (key, rid); LowerBound gives first >=.
  int i = LowerBound(key, rid);
  if (i < count() && CompareEntryAt(i, key, rid) == 0) {
    return ChildAt(i);
  }
  return ChildAt(i - 1);
}

size_t BTreePage::ContiguousFree() const {
  size_t dir_end = kOffsetsOff + 2 * count();
  uint16_t fe = free_end();
  return fe > dir_end ? fe - dir_end : 0;
}

size_t BTreePage::UsedEntryBytes() const {
  size_t used = 0;
  for (int i = 0; i < count(); ++i) used += RawEntry(i).size();
  return used;
}

size_t BTreePage::FreeBytes() const {
  size_t dir_end = kOffsetsOff + 2 * count();
  return page_size_ - dir_end - UsedEntryBytes() - prefix_len();
}

size_t BTreePage::LogicalFreeBytes() const {
  size_t f = FreeBytes();
  size_t pl = prefix_len();
  if (count() == 0) return f + pl;
  size_t savings = static_cast<size_t>(count() - 1) * pl;
  return f > savings ? f - savings : 0;
}

size_t BTreePage::EntryGrowth(KeySlice key) const {
  size_t fixed = EntryHeaderSize() + 2 /* slen */ + 2 /* offset slot */;
  size_t pl = prefix_len();
  if (count() == 0) {
    // The key becomes the new whole-page prefix (replacing the old one).
    size_t prefix_growth = key.size() > pl ? key.size() - pl : 0;
    return fixed + prefix_growth;
  }
  size_t p = CommonPrefixLen(KeySlice(prefix()), key);
  // A shrink to p widens every resident suffix by (pl - p) but also frees
  // the (pl - p) cut bytes of the stored prefix, hence count() - 1.
  return fixed + (key.size() - p) + (pl - p) * (count() - 1);
}

bool BTreePage::HasSpaceFor(KeySlice key) const {
  // Logical admission with a prefix_len reserve.  If the insert shrinks
  // the prefix from L to p over n entries, the physical cost exceeds the
  // logical cost by L - p*(n+1) <= L, so logical_free >= logical_need + L
  // guarantees the physical fit.
  size_t logical_need = EntryHeaderSize() + 2 + key.size() + 2;
  return LogicalFreeBytes() >= logical_need + prefix_len();
}

void BTreePage::ResetPrefix(KeySlice key) {
  assert(count() == 0);
  uint16_t pl = static_cast<uint16_t>(key.size());
  set_prefix_len(pl);
  std::memcpy(data_ + page_size_ - pl, key.data(), pl);
  set_free_end(static_cast<uint16_t>(page_size_ - pl));
}

void BTreePage::ShrinkPrefix(size_t new_len) {
  assert(new_len <= prefix_len());
  if (new_len == prefix_len()) return;
  int n = count();
  size_t hdr = EntryHeaderSize();
  std::string_view pfx = prefix();
  // Bytes migrating from the shared prefix into every entry's suffix.
  std::string ext(pfx.substr(new_len));
  std::vector<std::string> raws;
  raws.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::string_view raw = RawEntry(i);
    uint16_t slen = DecodeFixed16(raw.data() + hdr);
    std::string widened;
    widened.reserve(raw.size() + ext.size());
    widened.append(raw.substr(0, hdr));
    PutFixed16(&widened, static_cast<uint16_t>(ext.size() + slen));
    widened.append(ext);
    widened.append(raw.substr(hdr + 2, slen));
    raws.push_back(std::move(widened));
  }
  std::string kept(pfx.substr(0, new_len));
  set_prefix_len(static_cast<uint16_t>(new_len));
  std::memcpy(data_ + page_size_ - new_len, kept.data(), new_len);
  uint16_t fe = static_cast<uint16_t>(page_size_ - new_len);
  for (int i = 0; i < n; ++i) {
    fe = static_cast<uint16_t>(fe - raws[i].size());
    std::memcpy(data_ + fe, raws[i].data(), raws[i].size());
    set_entry_offset(i, fe);
  }
  set_free_end(fe);
}

void BTreePage::AdjustPrefixFor(KeySlice key) {
  if (count() == 0) {
    ResetPrefix(key);
    return;
  }
  size_t p = CommonPrefixLen(KeySlice(prefix()), key);
  if (p < prefix_len()) ShrinkPrefix(p);
}

void BTreePage::Compact() {
  std::vector<std::string> raws;
  int n = count();
  raws.reserve(n);
  for (int i = 0; i < n; ++i) {
    raws.emplace_back(RawEntry(i));
  }
  uint16_t fe = static_cast<uint16_t>(page_size_ - prefix_len());
  for (int i = 0; i < n; ++i) {
    fe = static_cast<uint16_t>(fe - raws[i].size());
    std::memcpy(data_ + fe, raws[i].data(), raws[i].size());
    set_entry_offset(i, fe);
  }
  set_free_end(fe);
}

uint16_t BTreePage::WriteEntry(std::string_view raw) {
  uint16_t fe = static_cast<uint16_t>(free_end() - raw.size());
  std::memcpy(data_ + fe, raw.data(), raw.size());
  set_free_end(fe);
  return fe;
}

Status BTreePage::InsertRawAt(int i, std::string_view raw) {
  size_t need = raw.size() + 2;
  if (FreeBytes() < need) return Status::Busy("btree page full");
  if (ContiguousFree() < need) Compact();
  uint16_t off = WriteEntry(raw);
  // Shift offset array right.
  int n = count();
  std::memmove(data_ + kOffsetsOff + 2 * (i + 1),
               data_ + kOffsetsOff + 2 * i, 2 * (n - i));
  set_entry_offset(i, off);
  set_count(static_cast<uint16_t>(n + 1));
  return Status::OK();
}

Status BTreePage::InsertFullAt(int i, std::string_view key,
                               std::string_view header) {
  if (FreeBytes() < EntryGrowth(KeySlice(key))) {
    return Status::Busy("btree page full");
  }
  AdjustPrefixFor(KeySlice(key));
  size_t pl = prefix_len();
  std::string raw;
  raw.reserve(header.size() + 2 + key.size() - pl);
  raw.append(header);
  PutFixed16(&raw, static_cast<uint16_t>(key.size() - pl));
  raw.append(key.substr(pl));
  return InsertRawAt(i, raw);
}

Status BTreePage::InsertLeafAt(int i, std::string_view key, const Rid& rid,
                               uint8_t flags) {
  assert(is_leaf());
  std::string header;
  header.push_back(static_cast<char>(flags));
  PutFixed32(&header, rid.page);
  PutFixed16(&header, rid.slot);
  return InsertFullAt(i, key, header);
}

Status BTreePage::InsertInternalAt(int i, std::string_view key,
                                   const Rid& rid, PageId child) {
  assert(!is_leaf());
  std::string header;
  PutFixed32(&header, child);
  PutFixed32(&header, rid.page);
  PutFixed16(&header, rid.slot);
  return InsertFullAt(i, key, header);
}

void BTreePage::RemoveAt(int i) {
  int n = count();
  std::memmove(data_ + kOffsetsOff + 2 * i,
               data_ + kOffsetsOff + 2 * (i + 1), 2 * (n - i - 1));
  set_count(static_cast<uint16_t>(n - 1));
  // Entry bytes become garbage, reclaimed by Compact.  The prefix stays:
  // it remains a common prefix of any subset.
}

std::string BTreePage::SerializeEntries(int from, int to) const {
  // Full-key raw entries, independent of this page's prefix, so the blob
  // can be replayed into any page (splits, batch inserts, checkpoints).
  std::string blob;
  PutFixed16(&blob, static_cast<uint16_t>(to - from));
  std::string_view pfx = prefix();
  size_t hdr = EntryHeaderSize();
  for (int i = from; i < to; ++i) {
    std::string_view raw = RawEntry(i);
    std::string_view sfx = raw.substr(hdr + 2);
    PutFixed16(&blob,
               static_cast<uint16_t>(hdr + 2 + pfx.size() + sfx.size()));
    blob.append(raw.substr(0, hdr));
    PutFixed16(&blob, static_cast<uint16_t>(pfx.size() + sfx.size()));
    blob.append(pfx);
    blob.append(sfx);
  }
  return blob;
}

Status BTreePage::AppendSerialized(std::string_view blob) {
  BufferReader r(blob);
  uint16_t n;
  if (!r.GetFixed16(&n)) return Status::Corruption("entry blob");
  size_t hdr = EntryHeaderSize();
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t len;
    if (!r.GetFixed16(&len)) return Status::Corruption("entry blob len");
    if (r.remaining() < len) return Status::Corruption("entry blob bytes");
    std::string_view raw(blob.data() + r.position(), len);
    if (len < hdr + 2) return Status::Corruption("entry blob entry");
    uint16_t klen = DecodeFixed16(raw.data() + hdr);
    if (hdr + 2 + klen != len) return Status::Corruption("entry blob entry");
    // Re-encode under this page's prefix.
    OIB_RETURN_IF_ERROR(
        InsertFullAt(count(), raw.substr(hdr + 2, klen), raw.substr(0, hdr)));
    r.Skip(len);
  }
  return Status::OK();
}

void BTreePage::TruncateFrom(int from) {
  set_count(static_cast<uint16_t>(from));
  Compact();
}

}  // namespace oib
