#include "btree/btree_page.h"

#include <cassert>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace oib {

int CompareIndexKey(std::string_view a_key, const Rid& a_rid,
                    std::string_view b_key, const Rid& b_rid) {
  int c = a_key.compare(b_key);
  if (c != 0) return c < 0 ? -1 : 1;
  if (a_rid < b_rid) return -1;
  if (b_rid < a_rid) return 1;
  return 0;
}

void BTreePage::Init(bool leaf, uint8_t level) {
  data_[kTypeOff] = static_cast<char>(leaf ? PageType::kBtreeLeaf
                                           : PageType::kBtreeInternal);
  data_[kLevelOff] = static_cast<char>(level);
  set_count(0);
  set_free_end(static_cast<uint16_t>(page_size_));
  set_next(kInvalidPageId);
  set_leftmost_child(kInvalidPageId);
}

bool BTreePage::is_leaf() const {
  return static_cast<PageType>(static_cast<uint8_t>(data_[kTypeOff])) ==
         PageType::kBtreeLeaf;
}

uint8_t BTreePage::level() const {
  return static_cast<uint8_t>(data_[kLevelOff]);
}

uint16_t BTreePage::count() const { return DecodeFixed16(data_ + kCountOff); }
void BTreePage::set_count(uint16_t v) { EncodeFixed16(data_ + kCountOff, v); }

PageId BTreePage::next() const { return DecodeFixed32(data_ + kNextOff); }
void BTreePage::set_next(PageId id) { EncodeFixed32(data_ + kNextOff, id); }

PageId BTreePage::leftmost_child() const {
  return DecodeFixed32(data_ + kLeftmostOff);
}
void BTreePage::set_leftmost_child(PageId id) {
  EncodeFixed32(data_ + kLeftmostOff, id);
}

uint16_t BTreePage::free_end() const {
  return DecodeFixed16(data_ + kFreeEndOff);
}
void BTreePage::set_free_end(uint16_t v) {
  EncodeFixed16(data_ + kFreeEndOff, v);
}

uint16_t BTreePage::entry_offset(int i) const {
  return DecodeFixed16(data_ + kOffsetsOff + 2 * i);
}
void BTreePage::set_entry_offset(int i, uint16_t off) {
  EncodeFixed16(data_ + kOffsetsOff + 2 * i, off);
}

size_t BTreePage::EntryHeaderSize() const {
  // leaf: flags(1) + rid(6); internal: child(4) + rid(6).
  return is_leaf() ? 1 + 6 : 4 + 6;
}

std::string_view BTreePage::RawEntry(int i) const {
  uint16_t off = entry_offset(i);
  size_t hdr = EntryHeaderSize();
  uint16_t klen = DecodeFixed16(data_ + off + hdr);
  return std::string_view(data_ + off, hdr + 2 + klen);
}

std::string_view BTreePage::KeyAt(int i) const {
  uint16_t off = entry_offset(i);
  size_t hdr = EntryHeaderSize();
  uint16_t klen = DecodeFixed16(data_ + off + hdr);
  return std::string_view(data_ + off + hdr + 2, klen);
}

Rid BTreePage::RidAt(int i) const {
  uint16_t off = entry_offset(i);
  size_t rid_off = is_leaf() ? 1 : 4;
  PageId page = DecodeFixed32(data_ + off + rid_off);
  SlotId slot = DecodeFixed16(data_ + off + rid_off + 4);
  return Rid(page, slot);
}

uint8_t BTreePage::FlagsAt(int i) const {
  assert(is_leaf());
  return static_cast<uint8_t>(data_[entry_offset(i)]);
}

void BTreePage::SetFlagsAt(int i, uint8_t f) {
  assert(is_leaf());
  data_[entry_offset(i)] = static_cast<char>(f);
}

PageId BTreePage::ChildAt(int i) const {
  assert(!is_leaf());
  if (i < 0) return leftmost_child();
  return DecodeFixed32(data_ + entry_offset(i));
}

int BTreePage::LowerBound(std::string_view key, const Rid& rid) const {
  int lo = 0, hi = count();
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CompareIndexKey(KeyAt(mid), RidAt(mid), key, rid) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int BTreePage::FindExact(std::string_view key, const Rid& rid) const {
  int i = LowerBound(key, rid);
  if (i < count() && CompareIndexKey(KeyAt(i), RidAt(i), key, rid) == 0) {
    return i;
  }
  return -1;
}

PageId BTreePage::Route(std::string_view key, const Rid& rid) const {
  assert(!is_leaf());
  // Largest entry <= (key, rid); LowerBound gives first >=.
  int i = LowerBound(key, rid);
  if (i < count() && CompareIndexKey(KeyAt(i), RidAt(i), key, rid) == 0) {
    return ChildAt(i);
  }
  return ChildAt(i - 1);
}

size_t BTreePage::ContiguousFree() const {
  size_t dir_end = kOffsetsOff + 2 * count();
  uint16_t fe = free_end();
  return fe > dir_end ? fe - dir_end : 0;
}

size_t BTreePage::UsedEntryBytes() const {
  size_t used = 0;
  for (int i = 0; i < count(); ++i) used += RawEntry(i).size();
  return used;
}

size_t BTreePage::FreeBytes() const {
  size_t dir_end = kOffsetsOff + 2 * count();
  return page_size_ - dir_end - UsedEntryBytes();
}

bool BTreePage::HasSpaceFor(size_t key_len) const {
  size_t need = EntryHeaderSize() + 2 + key_len + 2 /* offset slot */;
  return FreeBytes() >= need;
}

void BTreePage::Compact() {
  std::vector<std::string> raws;
  int n = count();
  raws.reserve(n);
  for (int i = 0; i < n; ++i) {
    raws.emplace_back(RawEntry(i));
  }
  uint16_t fe = static_cast<uint16_t>(page_size_);
  for (int i = 0; i < n; ++i) {
    fe = static_cast<uint16_t>(fe - raws[i].size());
    std::memcpy(data_ + fe, raws[i].data(), raws[i].size());
    set_entry_offset(i, fe);
  }
  set_free_end(fe);
}

uint16_t BTreePage::WriteEntry(std::string_view raw) {
  uint16_t fe = static_cast<uint16_t>(free_end() - raw.size());
  std::memcpy(data_ + fe, raw.data(), raw.size());
  set_free_end(fe);
  return fe;
}

Status BTreePage::InsertRawAt(int i, std::string_view raw) {
  size_t need = raw.size() + 2;
  if (FreeBytes() < need) return Status::Busy("btree page full");
  if (ContiguousFree() < need) Compact();
  uint16_t off = WriteEntry(raw);
  // Shift offset array right.
  int n = count();
  std::memmove(data_ + kOffsetsOff + 2 * (i + 1),
               data_ + kOffsetsOff + 2 * i, 2 * (n - i));
  set_entry_offset(i, off);
  set_count(static_cast<uint16_t>(n + 1));
  return Status::OK();
}

Status BTreePage::InsertLeafAt(int i, std::string_view key, const Rid& rid,
                               uint8_t flags) {
  assert(is_leaf());
  std::string raw;
  raw.push_back(static_cast<char>(flags));
  PutFixed32(&raw, rid.page);
  PutFixed16(&raw, rid.slot);
  PutFixed16(&raw, static_cast<uint16_t>(key.size()));
  raw.append(key.data(), key.size());
  return InsertRawAt(i, raw);
}

Status BTreePage::InsertInternalAt(int i, std::string_view key,
                                   const Rid& rid, PageId child) {
  assert(!is_leaf());
  std::string raw;
  PutFixed32(&raw, child);
  PutFixed32(&raw, rid.page);
  PutFixed16(&raw, rid.slot);
  PutFixed16(&raw, static_cast<uint16_t>(key.size()));
  raw.append(key.data(), key.size());
  return InsertRawAt(i, raw);
}

void BTreePage::RemoveAt(int i) {
  int n = count();
  std::memmove(data_ + kOffsetsOff + 2 * i,
               data_ + kOffsetsOff + 2 * (i + 1), 2 * (n - i - 1));
  set_count(static_cast<uint16_t>(n - 1));
  // Entry bytes become garbage, reclaimed by Compact.
}

std::string BTreePage::SerializeEntries(int from, int to) const {
  std::string blob;
  PutFixed16(&blob, static_cast<uint16_t>(to - from));
  for (int i = from; i < to; ++i) {
    std::string_view raw = RawEntry(i);
    PutFixed16(&blob, static_cast<uint16_t>(raw.size()));
    blob.append(raw.data(), raw.size());
  }
  return blob;
}

Status BTreePage::AppendSerialized(std::string_view blob) {
  BufferReader r(blob);
  uint16_t n;
  if (!r.GetFixed16(&n)) return Status::Corruption("entry blob");
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t len;
    if (!r.GetFixed16(&len)) return Status::Corruption("entry blob len");
    if (r.remaining() < len) return Status::Corruption("entry blob bytes");
    std::string_view raw(blob.data() + r.position(), len);
    OIB_RETURN_IF_ERROR(InsertRawAt(count(), raw));
    r.Skip(len);
  }
  return Status::OK();
}

void BTreePage::TruncateFrom(int from) {
  set_count(static_cast<uint16_t>(from));
  Compact();
}

}  // namespace oib
