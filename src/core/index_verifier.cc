#include "core/index_verifier.h"

#include <map>
#include <set>

#include "btree/tree_verifier.h"
#include "core/schema.h"

namespace oib {

StatusOr<IndexVerifyReport> IndexVerifier::Verify(TableId table,
                                                  IndexId index) {
  IndexVerifyReport report;
  Catalog* catalog = engine_->catalog();
  HeapFile* heap = catalog->table(table);
  BTree* tree = catalog->index(index);
  if (heap == nullptr || tree == nullptr) {
    return Status::NotFound("table or index missing");
  }
  auto desc = catalog->descriptor(index);
  if (!desc.ok()) return desc.status();

  // Expected key set from the table.
  std::map<std::pair<std::string, Rid>, int> expected;
  Status extract_error = Status::OK();
  OIB_RETURN_IF_ERROR(
      heap->ForEach([&](const Rid& rid, std::string_view rec) {
        auto key = Schema::ExtractKey(rec, desc->key_cols, desc->key_types);
        if (!key.ok()) {
          extract_error = key.status();
          return;
        }
        expected[{std::move(*key), rid}] += 1;
        ++report.table_records;
      }));
  OIB_RETURN_IF_ERROR(extract_error);

  // Walk the index.
  std::map<std::pair<std::string, Rid>, int> live;
  std::set<std::pair<std::string, Rid>> pseudo;
  std::map<std::string, int> live_values;
  OIB_RETURN_IF_ERROR(
      tree->ScanAll([&](std::string_view key, const Rid& rid,
                        uint8_t flags) {
        if ((flags & kEntryPseudoDeleted) != 0) {
          ++report.pseudo_entries;
          pseudo.insert({std::string(key), rid});
        } else {
          ++report.live_entries;
          live[{std::string(key), rid}] += 1;
          live_values[std::string(key)] += 1;
        }
      }));

  auto fail = [&](std::string msg) {
    report.ok = false;
    report.error = std::move(msg);
    return report;
  };

  for (const auto& [kv, count] : live) {
    if (count != 1) {
      return fail("duplicate live entry " + kv.first + "@" +
                  kv.second.ToString());
    }
    auto it = expected.find(kv);
    if (it == expected.end()) {
      return fail("index entry without record: " + kv.first + "@" +
                  kv.second.ToString());
    }
  }
  for (const auto& [kv, count] : expected) {
    (void)count;
    if (live.find(kv) == live.end()) {
      return fail("record key missing from index: " + kv.first + "@" +
                  kv.second.ToString());
    }
  }
  for (const auto& kv : pseudo) {
    if (expected.find(kv) != expected.end()) {
      return fail("pseudo-deleted entry shadows a live record: " +
                  kv.first + "@" + kv.second.ToString());
    }
  }
  if (desc->unique) {
    for (const auto& [value, count] : live_values) {
      if (count > 1) {
        return fail("unique index holds " + std::to_string(count) +
                    " live entries for value " + value);
      }
    }
  }

  TreeVerifier tv(tree, engine_->pool());
  auto structural = tv.Check();
  if (!structural.ok()) return structural.status();
  if (!structural->ok) {
    return fail("structural: " + structural->error);
  }

  report.ok = true;
  return report;
}

}  // namespace oib
