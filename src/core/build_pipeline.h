// BuildPipeline: the scan/sort/consume machinery shared by all three
// index builders (offline, NSF, SF).
//
// Stage 1 — partitioned scan.  The heap chain is split into contiguous
// page-id ranges (PlanPartitionedScan); each partition is scanned by a
// worker under the existing page S latches, feeding a private
// replacement-selection RunWriter per target index (ExternalSorter).
// Restartability generalizes the paper's §5.1 highest-key checkpoint to
// per-partition checkpoints: a worker checkpoints its own writer state and
// scan position into its slot of the shared ScanPlan, and the whole plan —
// deterministic partition boundaries plus per-partition run lists — is
// persisted in BuildMeta.phase_blob so Resume re-creates the same plan.
//
// Stage 2 — merge to consumer.  After FinishWriters() a single N-way merge
// over all partitions' runs feeds the consumer (BulkLoader for SF/offline,
// IbInsertBatch for NSF) in batches.  With build_threads > 1 the merge
// runs on its own thread behind a bounded queue so merge and load/insert
// overlap; each batch carries the merge counters (§5.2) at its end, which
// is the consumer's checkpoint position.
//
// With build_threads == 1 both stages run inline on the calling thread
// and are step-for-step equivalent to the original sequential builders
// (same failpoint cadence, same checkpoint positions).

#ifndef OIB_CORE_BUILD_PIPELINE_H_
#define OIB_CORE_BUILD_PIPELINE_H_

#include <functional>
#include <string>
#include <vector>

#include "common/key.h"
#include "common/status.h"
#include "heap/heap_file.h"
#include "sort/external_sorter.h"

namespace oib {

namespace obs {
class Tracer;
}  // namespace obs

// One contiguous page-id range of the heap chain.  `next` is the first
// unscanned page (advanced by checkpoints); `bound` is the exclusive
// page-id upper bound (kInvalidPageId for the final, unbounded partition,
// which follows the chain to stop_page / its current end).
struct ScanPartition {
  PageId next = kInvalidPageId;
  PageId bound = kInvalidPageId;
  // Per-target RunWriter checkpoint blobs (empty until the partition's
  // first checkpoint).
  std::vector<std::string> sorter_blobs;
};

struct ScanPlan {
  // Inclusive last page to scan (NSF notes the tail at build start);
  // kInvalidPageId means "follow the chain to its current end" (SF).
  PageId stop_page = kInvalidPageId;
  std::vector<ScanPartition> parts;
};

std::string EncodeScanPlan(const ScanPlan& plan);
Status DecodeScanPlan(const std::string& blob, ScanPlan* plan);

// Splits the chain (walked once, up to stop_page) into at most `threads`
// contiguous partitions of roughly equal page counts.  Deterministic for
// a given chain prefix.  Never returns zero partitions.
StatusOr<ScanPlan> PlanPartitionedScan(const HeapFile* heap, PageId stop_page,
                                       size_t threads);

class BuildPipeline {
 public:
  struct ScanTarget {
    std::vector<uint32_t> key_cols;
    std::vector<KeyColumnType> key_types;  // empty = all kString
    ExternalSorter* sorter = nullptr;
  };

  struct ScanHooks {
    // Invoked while the page's S latch is still held (SF publishes the
    // global Current-RID frontier here).  `page` is the page just
    // extracted.
    std::function<void(PageId page)> page_scanned;
    // Persists the (re-encoded) plan; invoked with the pipeline's
    // internal plan mutex held, so calls are serialized across workers.
    std::function<Status(const std::string& plan_blob)> checkpoint;
    // Relaxed progress feed (ActiveBuild::keys_done).
    std::function<void(uint64_t keys)> keys_progress;
    // Failpoint name checked once per page per worker (crash tests).
    const char* failpoint = nullptr;
    // Per-partition span names (static literals); workers beyond
    // span_name_count reuse the last name.
    const char* const* span_names = nullptr;
    size_t span_name_count = 0;
  };

  struct ScanResult {
    uint64_t keys_extracted = 0;
    uint64_t pages_scanned = 0;
    uint64_t checkpoints = 0;
    // Summed per-worker busy time (not wall clock; see BuildStats).
    double busy_ms = 0.0;
    // Last page the unbounded partition scanned (SF tail re-probe).
    PageId tail_last_scanned = kInvalidPageId;
  };

  // Runs the partitioned scan.  Creates one RunWriter per (target,
  // partition) — resuming writers from the plan's checkpoint blobs — and
  // executes plan->parts.size() workers (inline when there is only one).
  // Checkpoints fire per partition every `checkpoint_every_keys` extracted
  // keys (0 disables them).  On success the targets' writers are still
  // open: the caller may append tail keys (SF extension race) and must
  // then call FinishWriters() on each sorter before merging.
  static Status RunScan(const HeapFile* heap, obs::Tracer* tracer,
                        const std::vector<ScanTarget>& targets, ScanPlan* plan,
                        const ScanHooks& hooks, size_t checkpoint_every_keys,
                        ScanResult* result);

  // One merge->consumer hand-off unit.  `counters` is the §5.2 merge
  // checkpoint vector *after* the batch's last item: a consumer that has
  // durably processed the batch may checkpoint it as its resume position.
  struct Batch {
    std::vector<SortItem> items;
    std::vector<uint64_t> counters;
  };

  struct MergeStats {
    double merge_busy_ms = 0.0;
    double consume_busy_ms = 0.0;
  };

  // Streams `cursor` into `consume` in batches of `batch_keys` items.
  // When `overlapped`, the merge runs on a producer thread behind a
  // bounded queue of `queue_depth` batches (gauge
  // "build.merge_queue_depth"); `consume` always runs on the calling
  // thread.  The first non-OK status from either side stops the pipeline
  // and is returned.
  static Status MergeToConsumer(
      MergeCursor* cursor, size_t batch_keys, size_t queue_depth,
      bool overlapped, const std::function<Status(const Batch&)>& consume,
      MergeStats* stats = nullptr);
};

}  // namespace oib

#endif  // OIB_CORE_BUILD_PIPELINE_H_
