// RecordManager: the record-operation front door transactions use, and
// the component that implements the paper's Figure 1 (index updates during
// forward processing) and Figure 2 (index updates during rollback).
//
// Responsibilities:
//  * table IX / record X locking around heap operations;
//  * computing the "count of visible indexes" under the data-page latch
//    (via HeapFile's VisibleCountFn) and planning the exact index
//    maintenance actions against the same snapshot;
//  * index maintenance: direct tree updates for ready indexes, pseudo-
//    delete discipline for an NSF build in progress, side-file appends
//    for an SF build whose scan has passed the target RID;
//  * Figure 2 rollback compensation (via HeapRm's undo hook, invoked
//    under the data-page latch): comparing the logged count with the
//    current count and logically undoing index changes on indexes made
//    visible since the original data change — a side-file entry for an
//    index still being built, a (redo-only) tree update for one that has
//    completed.
//
// Active builds register here; the registry carries the SF scan position
// (Current-RID), the Index_Build flag, and the drain gate IB uses to flip
// the flag without losing in-flight appends.

#ifndef OIB_CORE_RECORD_MANAGER_H_
#define OIB_CORE_RECORD_MANAGER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "core/catalog.h"
#include "core/schema.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "txn/lock_manager.h"

namespace oib {

// Packs a RID into an atomically updatable word, preserving order.
inline uint64_t PackRid(const Rid& rid) {
  return (static_cast<uint64_t>(rid.page) << 16) | rid.slot;
}
inline Rid UnpackRid(uint64_t v) {
  return Rid(static_cast<PageId>(v >> 16), static_cast<SlotId>(v & 0xffff));
}

// One index being built by an active builder on some table.
struct InBuildIndex {
  IndexId id = kInvalidIndexId;
  BTree* tree = nullptr;
  SideFile* side_file = nullptr;  // SF only
  bool unique = false;
  std::vector<uint32_t> key_cols;
  std::vector<KeyColumnType> key_types;  // empty = all kString
};

// Shared state between an index builder and concurrent transactions.
struct ActiveBuild {
  BuildAlgo algo = BuildAlgo::kNone;
  std::vector<InBuildIndex> indexes;  // >1 for multi-index single scan
  // SF: IB's scan position; MinusInfinity before the scan starts,
  // Infinity after the last data page (section 3.2.2).
  std::atomic<uint64_t> current_rid{PackRid(Rid::MinusInfinity())};
  // Index_Build flag (section 3.2.1); cleared by IB after draining the
  // side-file.
  std::atomic<bool> index_build{true};
  // Drain gate: transactions hold it shared from the visibility decision
  // through their side-file append; IB holds it exclusive while applying
  // the final side-file entries and flipping index_build, so no decided-
  // but-unappended entry can be lost.  Acquired through the helpers
  // below: the underlying rwlock makes no fairness promise (glibc's
  // prefers readers), so with updaters continuously re-acquiring the
  // gate shared, a bare exclusive lock() could be starved indefinitely.
  // IB raises gate_closing first; new readers back off until it clears,
  // so IB waits only for the readers already past the check — each
  // holding the gate for one short append.
  //
  // Rank kDrainGate is EXEMPT from the order check: the gate is taken
  // shared under a data-page latch (the visibility decision) while page
  // latches are taken under the gate (side-file appends, final drain) —
  // a benign cycle over disjoint page sets that no total order can
  // express (see common/sync.h).
  sync::SharedMutex gate{sync::LockRank::kDrainGate, "activebuild.gate"};
  std::atomic<bool> gate_closing{false};

  sync::SharedLock EnterGateShared() {
    while (gate_closing.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    return sync::SharedLock(&gate);
  }
  sync::UniqueLock CloseGate() {
    gate_closing.store(true, std::memory_order_release);
    sync::UniqueLock g(&gate);
    // Only raised while the writer *waits*: once the gate is held
    // exclusively the rwlock itself blocks readers, and clearing here
    // means no early-return path can leave readers spinning on the flag.
    gate_closing.store(false, std::memory_order_release);
    return g;
  }

  // ---- live progress (obs): written by the builder / transactions with
  // relaxed atomics, snapshotted by Engine::GetBuildProgress ----
  std::atomic<int> phase{static_cast<int>(obs::BuildPhase::kIdle)};
  std::atomic<uint64_t> keys_done{0};          // extracted + loaded/inserted
  std::atomic<uint64_t> side_file_appended{0};
  std::atomic<uint64_t> side_file_applied{0};
  uint64_t start_ns = 0;  // set once at registration

  Rid CurrentRid() const { return UnpackRid(current_rid.load()); }
  void SetCurrentRid(const Rid& rid) { current_rid.store(PackRid(rid)); }
  void SetPhase(obs::BuildPhase p) {
    phase.store(static_cast<int>(p), std::memory_order_relaxed);
  }
};

struct RecordManagerStats {
  std::atomic<uint64_t> side_file_appends{0};
  std::atomic<uint64_t> nsf_duplicate_inserts{0};  // undo-only records
  std::atomic<uint64_t> tombstone_inserts{0};
  std::atomic<uint64_t> rollback_compensations{0};
};

class RecordManager {
 public:
  RecordManager(Catalog* catalog, LockManager* locks,
                TransactionManager* txns, const Options* options)
      : catalog_(catalog), locks_(locks), txns_(txns), options_(options) {}

  ~RecordManager();

  RecordManager(const RecordManager&) = delete;
  RecordManager& operator=(const RecordManager&) = delete;

  // Registers records.{side_file_appends,nsf_duplicate_inserts,
  // tombstone_inserts,rollback_compensations} with `registry` as value
  // functions over stats() (owner = this; the destructor detaches them).
  void AttachMetrics(obs::MetricsRegistry* registry);

  // Wires the Figure 2 hook into the heap's recovery handler.
  void AttachHeapRm(HeapRm* heap_rm);

  // ---- record operations (Figure 1) ----
  StatusOr<Rid> InsertRecord(Transaction* txn, TableId table,
                             std::string_view record);
  Status DeleteRecord(Transaction* txn, TableId table, Rid rid);
  Status UpdateRecord(Transaction* txn, TableId table, Rid rid,
                      std::string_view new_record);
  StatusOr<std::string> ReadRecord(Transaction* txn, TableId table, Rid rid);
  // Point read through an index: resolves `key` to a RID — via the hash
  // fast path when enable_hash_index is set (tree descent on a miss),
  // via BTree::FindKeyValue otherwise — then S-locks and fetches the
  // record.  The fetched record's key is re-extracted and compared, with
  // a bounded retry on mismatch, so both resolution paths return exactly
  // the record whose key matches or NotFound.  The index must be kReady.
  StatusOr<std::string> ReadRecordByKey(Transaction* txn, TableId table,
                                        IndexId index, std::string_view key);
  // Test helper: insert at a specific dead RID (paper 2.2.3 example).
  Status InsertRecordAt(Transaction* txn, TableId table, Rid rid,
                        std::string_view record);

  // ---- build registry ----
  std::shared_ptr<ActiveBuild> RegisterBuild(
      TableId table, BuildAlgo algo, std::vector<InBuildIndex> indexes);
  void UnregisterBuild(TableId table);
  std::shared_ptr<ActiveBuild> GetBuild(TableId table) const;

  const RecordManagerStats& stats() const { return stats_; }

 private:
  // Maintenance plan, fixed under the data-page latch.
  struct MaintPlan {
    std::vector<IndexDescriptor> ready;   // ready indexes, creation order
    std::shared_ptr<ActiveBuild> build;   // null if no build active
    sync::SharedLock gate;                // held while build != null
    bool sf_visible = false;  // SF: Target-RID < Current-RID at decision
    uint32_t visible_count = 0;
  };

  // Runs under the data-page latch: decides visibility and the count.
  MaintPlan PlanFor(TableId table, const Rid& rid);

  // Key maintenance for one index change.
  Status InsertKey(Transaction* txn, TableId table, BTree* tree, bool unique,
                   bool nsf_build, std::string_view key, const Rid& rid);
  Status DeleteKey(Transaction* txn, BTree* tree, bool nsf_build,
                   std::string_view key, const Rid& rid);

  // Applies the plan after a heap change.  old_rec/new_rec may be empty
  // depending on the operation.
  Status Maintain(Transaction* txn, TableId table, const MaintPlan& plan,
                  HeapOp op, const Rid& rid, std::string_view old_rec,
                  std::string_view new_rec);

  // Figure 2 hook (called under the data-page latch, pre-CLR).
  Status UndoHook(Transaction* txn, TableId table, HeapOp original_op,
                  Rid rid, std::string_view before, std::string_view after,
                  uint32_t logged_visible_count);

  // For a unique index: resolves a key-value conflict with `existing`
  // following the paper's committed-ness protocol.  Returns OK if the
  // insert may proceed, UniqueViolation if it must fail.
  Status ResolveUniqueConflict(Transaction* txn, TableId table, BTree* tree,
                               std::string_view key, const Rid& new_rid);

  Catalog* catalog_;
  LockManager* locks_;
  TransactionManager* txns_;
  const Options* options_;

  mutable sync::Mutex builds_mu_{sync::LockRank::kRecordBuilds,
                                 "recordmanager.builds_mu"};
  std::map<TableId, std::shared_ptr<ActiveBuild>> builds_
      OIB_GUARDED_BY(builds_mu_);
  RecordManagerStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  // Hash fast-path outcome counters (registry-owned; cached here by
  // AttachMetrics so the read hot path is one relaxed fetch-add).
  obs::Counter* hash_hits_ = nullptr;
  obs::Counter* hash_misses_ = nullptr;
  obs::Counter* hash_fallbacks_ = nullptr;
};

}  // namespace oib

#endif  // OIB_CORE_RECORD_MANAGER_H_
