// Algorithm SF — Bottom-Up Index Build with Side-File (paper section 3).
//
// No quiesce, ever.  The builder maintains Current-RID as it scans; a
// transaction whose Target-RID is behind the scan sees the index as
// visible and appends <op, key> entries to the side-file (Figure 1),
// otherwise it ignores the index and IB extracts the final state.  Keys
// are sorted (restartable) and loaded bottom-up with *no logging*;
// durability comes from loader checkpoints that flush the index pages and
// record the highest key + rightmost branch (3.2.4).  Finally IB drains
// the side-file — logged, committed and checkpointed in batches — and
// flips the Index_Build flag under a short drain gate (3.2.5).
//
// The scan is partitioned across build_threads workers by the shared
// BuildPipeline.  Current-RID stays a single global frontier: each worker
// advances it under the page's S latch to the *maximum* page it has
// extracted (CAS-max).  Pages in not-yet-scanned gaps below the frontier
// then take both routes — side-file entry *and* later extraction — which
// the tolerant apply (duplicate inserts rejected, absent deletes ignored)
// absorbs; the unsafe direction, a change on an extracted page with no
// side-file entry, can never happen (see DESIGN.md).
//
// BuildMany() builds several indexes in one scan (section 6.2): one
// sorter per index fed by a single pass over the data pages, then
// per-index load and apply phases.

#include <algorithm>
#include <chrono>

#include "btree/bulk_loader.h"
#include "common/coding.h"
#include "common/failpoint.h"
#include "core/build_pipeline.h"
#include "core/index_builder.h"
#include "core/schema.h"
#include "obs/trace.h"
#include "sort/external_sorter.h"

namespace oib {

namespace {

// Phase-1 blob: the encoded ScanPlan (per-partition scan positions + one
// run-writer checkpoint per index per partition).

// Phase-2 blob: [loading_idx][n sort blobs][loader blob (may be empty)].
std::string EncodeSfLoadState(uint32_t loading_idx,
                              const std::vector<std::string>& sort_blobs,
                              const std::string& loader_blob) {
  std::string out;
  PutFixed32(&out, loading_idx);
  PutFixed32(&out, static_cast<uint32_t>(sort_blobs.size()));
  for (const std::string& b : sort_blobs) PutLengthPrefixed(&out, b);
  PutLengthPrefixed(&out, loader_blob);
  return out;
}

Status DecodeSfLoadState(const std::string& blob, uint32_t* loading_idx,
                         std::vector<std::string>* sort_blobs,
                         std::string* loader_blob) {
  BufferReader r(blob);
  uint32_t n;
  if (!r.GetFixed32(loading_idx) || !r.GetFixed32(&n)) {
    return Status::Corruption("sf load state");
  }
  sort_blobs->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string b;
    if (!r.GetLengthPrefixed(&b)) return Status::Corruption("sf sort blob");
    sort_blobs->push_back(std::move(b));
  }
  if (!r.GetLengthPrefixed(loader_blob)) {
    return Status::Corruption("sf loader blob");
  }
  return Status::OK();
}

// Phase-3 blob: [applying_idx][cursor page][cursor slot][ordinal][applied].
std::string EncodeSfApplyState(uint32_t applying_idx, PageId page,
                               SlotId slot, uint64_t ordinal,
                               uint64_t applied) {
  std::string out;
  PutFixed32(&out, applying_idx);
  PutFixed32(&out, page);
  PutFixed16(&out, slot);
  PutFixed64(&out, ordinal);
  PutFixed64(&out, applied);
  return out;
}

Status DecodeSfApplyState(const std::string& blob, uint32_t* applying_idx,
                          PageId* page, SlotId* slot, uint64_t* ordinal,
                          uint64_t* applied) {
  BufferReader r(blob);
  uint16_t s;
  if (!r.GetFixed32(applying_idx) || !r.GetFixed32(page) ||
      !r.GetFixed16(&s) || !r.GetFixed64(ordinal) ||
      !r.GetFixed64(applied)) {
    return Status::Corruption("sf apply state");
  }
  *slot = s;
  return Status::OK();
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool FencedOut(const std::vector<SideFileFence>& fences, uint64_t ordinal,
               const Rid& rid) {
  uint64_t packed = PackRid(rid);
  for (const SideFileFence& f : fences) {
    if (ordinal < f.before_ordinal && packed >= f.rid_floor &&
        packed < f.rid_ceiling) {
      return true;
    }
  }
  return false;
}

constexpr const char* kSfScanSpans[] = {
    "sf.scan.p0", "sf.scan.p1", "sf.scan.p2", "sf.scan.p3",
    "sf.scan.p4", "sf.scan.p5", "sf.scan.p6", "sf.scan.p7"};

}  // namespace

Status SfIndexBuilder::Build(const BuildParams& params, IndexId* out,
                             BuildStats* stats) {
  std::vector<IndexId> ids;
  OIB_RETURN_IF_ERROR(BuildMany({params}, &ids, stats));
  if (out != nullptr) *out = ids[0];
  return Status::OK();
}

Status SfIndexBuilder::BuildMany(const std::vector<BuildParams>& params,
                                 std::vector<IndexId>* out,
                                 BuildStats* stats) {
  if (params.empty()) return Status::InvalidArgument("no indexes requested");
  TableId table = params[0].table;
  for (const BuildParams& p : params) {
    if (p.table != table) {
      return Status::InvalidArgument("one scan covers one table");
    }
  }
  Catalog* catalog = engine_->catalog();

  // Descriptor creation without quiescing (section 3.2.1); the
  // Index_Build flag is raised by registering the ActiveBuild.
  std::vector<IndexId> ids;
  std::vector<InBuildIndex> in_build;
  for (const BuildParams& p : params) {
    auto desc =
        catalog->CreateIndex(p.name, table, p.unique, p.key_cols,
                             BuildAlgo::kSf, p.key_types);
    if (!desc.ok()) return desc.status();
    ids.push_back(desc->id);
    InBuildIndex ib;
    ib.id = desc->id;
    ib.tree = catalog->index(desc->id);
    ib.side_file = catalog->side_file(desc->id);
    ib.unique = p.unique;
    ib.key_cols = p.key_cols;
    ib.key_types = p.key_types;
    in_build.push_back(std::move(ib));
  }
  engine_->records()->RegisterBuild(table, BuildAlgo::kSf,
                                    std::move(in_build));

  BuildMeta meta;
  meta.algo = BuildAlgo::kSf;
  meta.indexes = ids;
  meta.phase = 1;
  meta.current_rid = PackRid(Rid::MinusInfinity());
  meta.fences.assign(ids.size(), {});
  OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, table, meta));

  if (out != nullptr) *out = ids;
  return Run(table, ids, /*start_phase=*/1, "", stats);
}

Status SfIndexBuilder::Resume(TableId table, BuildStats* stats) {
  auto meta = LoadBuildMeta(engine_, table);
  if (!meta.ok()) return meta.status();
  if (meta->algo != BuildAlgo::kSf) {
    return Status::InvalidArgument("not an interrupted SF build");
  }
  return Run(table, meta->indexes, meta->phase, meta->phase_blob, stats);
}

Status SfIndexBuilder::Cancel(TableId table) {
  auto meta = LoadBuildMeta(engine_, table);
  if (!meta.ok()) return meta.status();
  Transaction* txn = engine_->Begin();
  LockOptions opt;
  opt.timeout_ms = 60'000;
  OIB_RETURN_IF_ERROR(engine_->locks()->Lock(
      txn->id(), TableLockId(table), LockMode::kS, opt));
  engine_->records()->UnregisterBuild(table);
  for (IndexId id : meta->indexes) {
    OIB_RETURN_IF_ERROR(engine_->catalog()->DropIndex(id));
  }
  OIB_RETURN_IF_ERROR(ClearBuildMeta(engine_, table));
  return engine_->Commit(txn);
}

Status SfIndexBuilder::Run(TableId table, std::vector<IndexId> ids,
                           int start_phase, std::string phase_blob,
                           BuildStats* stats) {
  Catalog* catalog = engine_->catalog();
  HeapFile* heap = catalog->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");
  auto build = engine_->records()->GetBuild(table);
  if (!build) return Status::Corruption("SF build not registered");
  const Options& options = engine_->options();
  LogStats log_before = engine_->log()->stats();
  uint64_t key_raw_before = engine_->runs()->raw_key_bytes();
  uint64_t key_stored_before = engine_->runs()->stored_key_bytes();
  BuildStats local;
  auto t_run = std::chrono::steady_clock::now();

  size_t n = ids.size();
  std::vector<BTree*> trees(n);
  std::vector<SideFile*> side_files(n);
  std::vector<IndexDescriptor> descs(n);
  for (size_t i = 0; i < n; ++i) {
    trees[i] = catalog->index(ids[i]);
    side_files[i] = catalog->side_file(ids[i]);
    auto d = catalog->descriptor(ids[i]);
    if (!d.ok()) return d.status();
    descs[i] = *d;
    if (trees[i] == nullptr || side_files[i] == nullptr) {
      return Status::Corruption("missing SF build objects");
    }
  }

  std::vector<std::unique_ptr<ExternalSorter>> sorters;
  for (size_t i = 0; i < n; ++i) {
    sorters.push_back(
        std::make_unique<ExternalSorter>(engine_->runs(), &options));
  }

  BuildMeta meta;
  {
    auto loaded = LoadBuildMeta(engine_, table);
    if (!loaded.ok()) return loaded.status();
    meta = std::move(*loaded);
  }

  std::vector<std::string> sort_blobs;
  uint32_t loading_idx = 0;
  std::string loader_blob;

  obs::Tracer* tracer = engine_->tracer();

  if (start_phase <= 1) {
    // ---- Phase 1: partitioned scan + pipelined sort.  Current-RID
    // advances under each page's S latch (section 3.2.2) to the maximum
    // extracted page across all workers.
    build->SetPhase(obs::BuildPhase::kScan);
    obs::ScopedSpan scan_span(tracer, "sf.scan");
    ScanPlan plan;
    if (!phase_blob.empty()) {
      OIB_RETURN_IF_ERROR(DecodeScanPlan(phase_blob, &plan));
      if (plan.parts.empty()) return Status::Corruption("sf scan plan");
    } else {
      auto planned =
          PlanPartitionedScan(heap, kInvalidPageId, options.build_threads);
      if (!planned.ok()) return planned.status();
      plan = std::move(*planned);
    }

    std::vector<BuildPipeline::ScanTarget> targets;
    targets.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      targets.push_back(
          {descs[i].key_cols, descs[i].key_types, sorters[i].get()});
    }
    BuildPipeline::ScanHooks hooks;
    hooks.failpoint = "sf.scan";
    hooks.span_names = kSfScanSpans;
    hooks.span_name_count = 8;
    hooks.page_scanned = [&](PageId page) {
      // Still holding the page's S latch: every record in this page is
      // now "behind" the scan.  CAS-max keeps the global frontier
      // monotone when workers publish out of order.
      uint64_t candidate = PackRid(Rid(page, kInvalidSlotId));
      uint64_t cur = build->current_rid.load(std::memory_order_relaxed);
      while (cur < candidate &&
             !build->current_rid.compare_exchange_weak(cur, candidate)) {
      }
    };
    hooks.keys_progress = [&](uint64_t k) {
      build->keys_done.fetch_add(k, std::memory_order_relaxed);
    };
    hooks.checkpoint = [&](const std::string& blob) -> Status {
      obs::ScopedSpan ckpt_span(tracer, "sf.ckpt");
      meta.phase = 1;
      meta.current_rid = build->current_rid.load();
      meta.phase_blob = blob;
      return SaveBuildMeta(engine_, table, meta);
    };
    BuildPipeline::ScanResult scan_res;
    OIB_RETURN_IF_ERROR(BuildPipeline::RunScan(
        heap, tracer, targets, &plan, hooks,
        options.sort_checkpoint_every_keys, &scan_res));
    local.keys_extracted = scan_res.keys_extracted;
    local.data_pages_scanned = scan_res.pages_scanned;
    local.checkpoints += scan_res.checkpoints;
    local.scan_ms = scan_res.busy_ms;

    build->SetCurrentRid(Rid::Infinity());
    // Extension race: a transaction may have chained a new page after the
    // tail worker read next == invalid but before Current-RID became
    // infinity; its inserts decided "invisible" and made no side-file
    // entries.  Now that infinity is published, re-read the tail's next
    // under the latch: any page linked before that re-read must still be
    // extracted (pages linked after it see infinity and go through the
    // side-file — the extraction below is then merely redundant, which
    // the tolerant apply handles).  Tail keys land in the last
    // partition's still-open run writer.
    PageId last_scanned = scan_res.tail_last_scanned;
    const size_t tail_writer = plan.parts.size() - 1;
    while (last_scanned != kInvalidPageId) {
      PageId more = kInvalidPageId;
      {
        std::vector<std::pair<Rid, std::string>> probe;
        auto next = heap->ExtractPage(last_scanned, &probe);
        if (!next.ok()) return next.status();
        // Records on last_scanned were already extracted; only the link
        // matters (ExtractPage reads it under the latch).
        more = *next;
      }
      if (more == kInvalidPageId) break;
      std::vector<std::pair<Rid, std::string>> recs;
      auto next = heap->ExtractPage(more, &recs);
      if (!next.ok()) return next.status();
      std::string key_buf;
      for (const auto& [rid, rec] : recs) {
        for (size_t i = 0; i < n; ++i) {
          OIB_RETURN_IF_ERROR(Schema::ExtractKeyTo(
              rec, descs[i].key_cols, descs[i].key_types, &key_buf));
          OIB_RETURN_IF_ERROR(
              sorters[i]->writer(tail_writer)->Add(key_buf, rid));
        }
        ++local.keys_extracted;
        build->keys_done.fetch_add(1, std::memory_order_relaxed);
      }
      ++local.data_pages_scanned;
      last_scanned = more;
    }

    scan_span.set_arg(local.keys_extracted);
    scan_span.End();
    build->SetPhase(obs::BuildPhase::kSortMerge);
    obs::ScopedSpan sort_span(tracer, "sf.sort.merge_prep");
    sort_blobs.clear();
    for (size_t i = 0; i < n; ++i) {
      OIB_RETURN_IF_ERROR(sorters[i]->FinishWriters());
      OIB_RETURN_IF_ERROR(sorters[i]->PrepareMerge());
      local.sort_runs += sorters[i]->runs().size();
      auto b = sorters[i]->CheckpointSortPhase("");
      if (!b.ok()) return b.status();
      sort_blobs.push_back(std::move(*b));
    }
    meta.phase = 2;
    meta.current_rid = PackRid(Rid::Infinity());
    meta.phase_blob = EncodeSfLoadState(0, sort_blobs, "");
    OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, table, meta));
  } else if (start_phase == 2) {
    OIB_RETURN_IF_ERROR(DecodeSfLoadState(phase_blob, &loading_idx,
                                          &sort_blobs, &loader_blob));
    for (size_t i = loading_idx; i < n; ++i) {
      auto caller = sorters[i]->ResumeSortPhase(sort_blobs[i]);
      if (!caller.ok()) return caller.status();
    }
  }

  // A transaction used only for the unique-verification lock protocol and
  // the side-file application.
  Transaction* txn = engine_->Begin();
  auto abort_build = [&](const Status& cause) -> Status {
    (void)engine_->Rollback(txn);
    OIB_RETURN_IF_ERROR(Cancel(table));
    return cause;
  };

  if (start_phase <= 2) {
    // ---- Phase 2: bottom-up, unlogged, checkpointed load (3.2.4), fed
    // by the final merge — on its own thread when the build is parallel.
    // Checkpoints happen at merge-batch boundaries, where the batch's
    // counters snapshot identifies the merge position the consumer has
    // actually reached (the shared cursor runs ahead under overlap).
    build->SetPhase(obs::BuildPhase::kLoad);
    obs::ScopedSpan load_span(tracer, "sf.load");
    for (uint32_t idx = loading_idx; idx < n; ++idx) {
      BulkLoader loader(trees[idx], engine_->pool(), &options);
      std::unique_ptr<MergeCursor> cursor;
      if (idx == loading_idx && !loader_blob.empty()) {
        auto caller = loader.Resume(loader_blob);
        if (!caller.ok()) return caller.status();
        BufferReader r(*caller);
        std::vector<uint64_t> counters;
        if (!GetCounters(&r, &counters)) {
          return Status::Corruption("sf loader counters");
        }
        auto c = sorters[idx]->OpenMerge(&counters);
        if (!c.ok()) return c.status();
        cursor = std::move(*c);
      } else {
        // After a crash without a loader checkpoint the tree may contain
        // flushed-but-abandoned pages; start from an empty root.
        OIB_RETURN_IF_ERROR(loader.ResetToEmpty());
        auto c = sorters[idx]->OpenMerge(nullptr);
        if (!c.ok()) return c.status();
        cursor = std::move(*c);
      }

      std::string prev_key;
      Rid prev_rid;
      bool has_prev = loader.has_high_key();
      if (has_prev) {
        prev_key = loader.high_key();
        prev_rid = loader.high_rid();
      }
      uint64_t since_ckpt = 0;
      // Feed the hash mirror alongside the loader: bulk-loaded leaves
      // bypass the tree's mutation choke points, so the observer never
      // fires for them.  A resumed build re-scans the whole tree after
      // this phase (see below), so missing the pre-crash prefix is fine.
      HashIndex* hash = catalog->hash_index(ids[idx]);
      auto consume = [&](const BuildPipeline::Batch& mb) -> Status {
        for (const SortItem& item : mb.items) {
          OIB_FAIL_POINT("sf.load");
          if (descs[idx].unique && has_prev && item.key.view() == prev_key &&
              !(item.rid == prev_rid)) {
            OIB_RETURN_IF_ERROR(VerifyUniqueConflict(
                engine_, txn->id(), table, descs[idx].key_cols,
                descs[idx].key_types, item.key.view(), prev_rid, item.rid));
          }
          OIB_RETURN_IF_ERROR(loader.Add(item.key, item.rid));
          if (hash != nullptr) {
            OIB_FAIL_POINT("hash.populate");
            hash->BulkAdd(item.key.view(), item.rid, 0);
          }
          prev_key.assign(item.key.data(), item.key.size());
          prev_rid = item.rid;
          has_prev = true;
          ++local.keys_loaded;
          ++since_ckpt;
          build->keys_done.fetch_add(1, std::memory_order_relaxed);
        }
        if (options.ib_checkpoint_every_keys > 0 &&
            since_ckpt >= options.ib_checkpoint_every_keys) {
          obs::ScopedSpan ckpt_span(tracer, "sf.ckpt");
          std::string counters_blob;
          PutCounters(&counters_blob, mb.counters);
          auto ckpt = loader.Checkpoint(counters_blob);
          if (!ckpt.ok()) return ckpt.status();
          meta.phase = 2;
          meta.phase_blob = EncodeSfLoadState(idx, sort_blobs, *ckpt);
          OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, table, meta));
          ++local.checkpoints;
          since_ckpt = 0;
        }
        return Status::OK();
      };
      BuildPipeline::MergeStats merge_stats;
      Status s = BuildPipeline::MergeToConsumer(
          cursor.get(), options.merge_batch_keys, options.merge_queue_depth,
          options.build_threads > 1, consume, &merge_stats);
      if (!s.ok()) {
        if (s.IsInjected()) return s;  // crash-test hook: leave state as-is
        // Rollback latches pages and takes txn-level mutexes; the
        // loader's open leaf/level latches must go first.
        loader.Abandon();
        return abort_build(s);
      }
      local.merge_ms += merge_stats.merge_busy_ms;
      local.load_ms += merge_stats.consume_busy_ms;
      OIB_RETURN_IF_ERROR(loader.Finish());
      OIB_RETURN_IF_ERROR(engine_->pool()->FlushAll());
      meta.phase = 2;
      meta.phase_blob = EncodeSfLoadState(idx + 1, sort_blobs, "");
      OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, table, meta));
    }
    meta.phase = 3;
    meta.phase_blob = EncodeSfApplyState(0, kInvalidPageId, 0, 0, 0);
    OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, table, meta));
    phase_blob = meta.phase_blob;
  }

  // A resumed build skipped Catalog::Load's hash population (the tree's
  // tail may have been torn at that point) and phase-2 consume only saw
  // keys loaded in this run, so the mirrors may be missing a prefix — or
  // whole trees loaded before the crash.  Updaters never touch an
  // SF-building tree directly (they route through the side-file), so the
  // trees are stable here and a full rescan rebuilds every mirror.
  if (start_phase >= 2) {
    for (size_t i = 0; i < n; ++i) {
      if (HashIndex* hash = catalog->hash_index(ids[i])) {
        Status s = PopulateHashFromTree(trees[i], hash);
        if (!s.ok()) {
          if (s.IsInjected()) return s;  // crash-test hook
          return abort_build(s);
        }
      }
    }
  }
  auto t_apply = std::chrono::steady_clock::now();

  // ---- Phase 3: side-file application (3.2.5).
  build->SetPhase(obs::BuildPhase::kApply);
  obs::ScopedSpan apply_span(tracer, "sf.apply");
  // Cumulative mirror of build->side_file_applied: paired with
  // records.side_file_appends it lets the time-series sampler plot the
  // side-file backlog without holding a reference to this build.
  obs::Counter* applied_counter =
      obs::MetricsRegistry::Default().GetCounter("sidefile.applied");
  uint32_t applying_idx = 0;
  PageId cur_page = kInvalidPageId;
  SlotId cur_slot = 0;
  uint64_t ordinal = 0, applied = 0;
  OIB_RETURN_IF_ERROR(DecodeSfApplyState(
      start_phase == 3 ? phase_blob : meta.phase_blob, &applying_idx,
      &cur_page, &cur_slot, &ordinal, &applied));

  // Re-load fences (restart may have added some).
  {
    auto loaded = LoadBuildMeta(engine_, table);
    if (loaded.ok()) meta.fences = loaded->fences;
    if (meta.fences.size() != n) meta.fences.assign(n, {});
  }

  auto apply_entry = [&](uint32_t idx, const SideFile::Entry& e) -> Status {
    BTree* tree = trees[idx];
    if (e.op == SideFileOp::kInsertKey) {
      if (descs[idx].unique) {
        // Verify value uniqueness against whatever entry exists.
        auto vm = tree->FindKeyValue(e.key);
        if (!vm.ok()) return vm.status();
        if (vm->found && !(vm->rid == e.rid) && !vm->pseudo_deleted) {
          Status s = VerifyUniqueConflict(engine_, txn->id(), table,
                                          descs[idx].key_cols,
                                          descs[idx].key_types, e.key,
                                          vm->rid, e.rid);
          if (!s.ok()) return s;
        }
      }
      auto r = tree->Insert(txn, e.key, e.rid);
      if (!r.ok()) return r.status();
      // kAlreadyPresent / kReactivated are expected: IB may have loaded
      // the key, or a stale duplicate was filtered by commit/crash races.
      return Status::OK();
    }
    // Delete: remove if present; absent is fine (the corresponding insert
    // entry was lost to a pre-commit crash, or this is a crash-repeated
    // compensation) — see DESIGN.md.
    Status s = tree->PhysicalDelete(txn, e.key, e.rid);
    if (s.IsNotFound()) return Status::OK();
    return s;
  };

  for (uint32_t idx = applying_idx; idx < n; ++idx) {
    SideFile::Cursor cursor;
    if (idx == applying_idx && cur_page != kInvalidPageId) {
      cursor.page = cur_page;
      cursor.slot = cur_slot;
    } else {
      cursor = side_files[idx]->Begin();
      ordinal = 0;
      applied = 0;
    }
    if (options.sf_sort_side_file) {
      // Section 3.2.5 optimization: "IB could sort the entries of the
      // side-file, without modifying the relative positions of the
      // identical keys, before applying those updates to the index."
      // Entries appended while the sorted batch is applied are processed
      // sequentially by the normal loop below.  This pass is not
      // checkpointed (a crash repeats it; the application is idempotent
      // only as a full in-order replay, so the whole batch re-runs).
      std::vector<std::pair<uint64_t, SideFile::Entry>> batch;
      for (;;) {
        std::vector<SideFile::Entry> entries;
        auto got = side_files[idx]->ReadBatch(&cursor, 1024, &entries);
        if (!got.ok()) return abort_build(got.status());
        if (*got == 0) break;
        for (SideFile::Entry& e : entries) {
          if (!FencedOut(meta.fences[idx], ordinal, e.rid)) {
            batch.emplace_back(ordinal, std::move(e));
          } else {
            ++local.side_file_skipped_stale;
          }
          ++ordinal;
        }
      }
      std::stable_sort(batch.begin(), batch.end(),
                       [](const auto& a, const auto& b) {
                         int c = CompareKeySlice(a.second.key, b.second.key);
                         if (c != 0) return c < 0;
                         if (a.second.rid < b.second.rid) return true;
                         if (b.second.rid < a.second.rid) return false;
                         return false;  // stable keeps append order
                       });
      for (const auto& [ord, e] : batch) {
        (void)ord;
        Status s = apply_entry(idx, e);
        if (!s.ok()) return abort_build(s);
        ++applied;
        ++local.side_file_applied;
        build->side_file_applied.fetch_add(1, std::memory_order_relaxed);
        applied_counter->Inc();
      }
      OIB_RETURN_IF_ERROR(engine_->Commit(txn));
      ++local.commits;
      txn = engine_->Begin();
    }
    uint64_t since_commit = 0;
    // Section 3.2.5 quiesces updaters when IB gets *close* to the end of
    // the side-file, not at the literal end — and the chase must
    // terminate even when the appenders outpace IB (a read-until-empty
    // loop has no bound: they can append faster than IB applies).  Chase
    // a snapshot of the tail; on reaching it, re-snapshot and go again a
    // fixed number of times; whatever remains is applied under the drain
    // gate below, where appenders are blocked and the walk is finite.
    uint64_t chase_target = side_files[idx]->entries_appended();
    int chase_passes = 0;
    for (;;) {
      OIB_FAIL_POINT("sf.apply");
      obs::ScopedSpan batch_span(tracer, "sf.apply.batch");
      std::vector<SideFile::Entry> entries;
      auto got = side_files[idx]->ReadBatch(&cursor, options.sf_apply_batch,
                                            &entries);
      if (!got.ok()) return abort_build(got.status());
      if (*got == 0) break;  // caught up (for now)
      batch_span.set_arg(*got);
      for (const SideFile::Entry& e : entries) {
        if (FencedOut(meta.fences[idx], ordinal, e.rid)) {
          ++ordinal;
          ++local.side_file_skipped_stale;
          continue;
        }
        ++ordinal;
        Status s = apply_entry(idx, e);
        if (!s.ok()) {
          if (s.IsUniqueViolation()) return abort_build(s);
          return abort_build(s);
        }
        ++applied;
        ++local.side_file_applied;
        build->side_file_applied.fetch_add(1, std::memory_order_relaxed);
        applied_counter->Inc();
      }
      since_commit += *got;
      if (since_commit >= options.sf_apply_batch) {
        // Periodic commit + progress checkpoint (3.2.5).
        obs::ScopedSpan ckpt_span(tracer, "sf.ckpt");
        OIB_RETURN_IF_ERROR(engine_->Commit(txn));
        ++local.commits;
        meta.phase = 3;
        meta.phase_blob = EncodeSfApplyState(idx, cursor.page, cursor.slot,
                                             ordinal, applied);
        OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, table, meta));
        ++local.checkpoints;
        txn = engine_->Begin();
        since_commit = 0;
      }
      if (ordinal >= chase_target) {
        uint64_t appended = side_files[idx]->entries_appended();
        if (appended - ordinal <= options.sf_apply_batch ||
            ++chase_passes >= 3) {
          break;
        }
        chase_target = appended;
      }
    }
  }

  // Final drain under the gate: no transaction can be between its
  // visibility decision and its append, so after applying the residual
  // entries and flipping the flag, every future update goes directly to
  // the index.
  apply_span.End();
  // Finalize edge: drain gate + index publication are next.  Injected
  // here the build aborts cleanly, gate never taken.
  OIB_FAIL_POINT("sf.finalize");
  build->SetPhase(obs::BuildPhase::kDrain);
  {
    obs::ScopedSpan drain_span(tracer, "sf.drain");
    // CloseGate backs new readers off first — a bare lock() could be
    // starved forever by updaters re-acquiring the reader-preferring
    // rwlock (see ActiveBuild).
    sync::UniqueLock gate = build->CloseGate();
    for (uint32_t idx = 0; idx < n; ++idx) {
      // Residual entries appended since each index's catch-up loop ended.
      // (Cheap: re-walk from the recorded cursor for the last index; for
      // the others, from their own end positions we did not retain, so
      // walk from the beginning and skip already-applied entries by
      // ordinal.)
      SideFile::Cursor cursor = side_files[idx]->Begin();
      uint64_t ord = 0;
      for (;;) {
        std::vector<SideFile::Entry> entries;
        auto got = side_files[idx]->ReadBatch(&cursor, 256, &entries);
        if (!got.ok()) return got.status();
        if (*got == 0) break;
        for (const SideFile::Entry& e : entries) {
          bool already_applied =
              (idx == n - 1) ? (ord < ordinal) : false;
          bool fenced = FencedOut(meta.fences[idx], ord, e.rid);
          ++ord;
          if (fenced) continue;
          if (already_applied) continue;
          if (idx != n - 1) {
            // Re-apply idempotently: Insert tolerates duplicates and
            // Delete tolerates absence.
          }
          Status s = apply_entry(idx, e);
          if (!s.ok()) {
            if (s.IsUniqueViolation()) return abort_build(s);
            return s;
          }
          ++local.side_file_applied;
          build->side_file_applied.fetch_add(1, std::memory_order_relaxed);
          applied_counter->Inc();
        }
      }
    }
    // Commit edge: the residual applies must be durable *before* the
    // indexes are published.  SetIndexReady persists the catalog
    // directly, so the reverse order has a crash window where a ready
    // index loses its residual applies to loser-transaction undo at
    // restart (the build is no longer kBuilding, so nothing resumes it).
    // Committing first is safe: a crash before the ready flip leaves a
    // kBuilding index that Resume finishes idempotently.
    OIB_FAIL_POINT("sf.commit");
    OIB_RETURN_IF_ERROR(engine_->Commit(txn));
    ++local.commits;
    for (uint32_t idx = 0; idx < n; ++idx) {
      OIB_RETURN_IF_ERROR(catalog->SetIndexReady(ids[idx]));
    }
    build->index_build.store(false);
    build->SetPhase(obs::BuildPhase::kDone);
  }
  engine_->records()->UnregisterBuild(table);
  OIB_RETURN_IF_ERROR(ClearBuildMeta(engine_, table));
  local.apply_ms = MsSince(t_apply);

  LogStats log_after = engine_->log()->stats();
  local.log_records = log_after.records - log_before.records;
  local.log_bytes = log_after.bytes - log_before.bytes;
  local.key_bytes_moved = engine_->runs()->raw_key_bytes() - key_raw_before;
  local.key_bytes_stored =
      engine_->runs()->stored_key_bytes() - key_stored_before;
  local.elapsed_ms = MsSince(t_run);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace oib
