// IndexVerifier: end-to-end consistency check between a table and one of
// its indexes — the correctness oracle for every concurrent-build test.
//
// With all transactions quiesced, an index is correct iff:
//  * its *live* entries are exactly { (ExtractKey(rec), rid) } over the
//    table's records — no missing, no extra, no duplicates;
//  * no pseudo-deleted entry shadows a live (key, rid) pair;
//  * for a unique index, no two live entries share a key value;
//  * the tree passes the structural TreeVerifier check.

#ifndef OIB_CORE_INDEX_VERIFIER_H_
#define OIB_CORE_INDEX_VERIFIER_H_

#include <string>

#include "core/engine.h"

namespace oib {

struct IndexVerifyReport {
  bool ok = false;
  std::string error;
  uint64_t table_records = 0;
  uint64_t live_entries = 0;
  uint64_t pseudo_entries = 0;
};

class IndexVerifier {
 public:
  explicit IndexVerifier(Engine* engine) : engine_(engine) {}

  // The caller must ensure no concurrent transactions or builders touch
  // the table/index during verification.
  StatusOr<IndexVerifyReport> Verify(TableId table, IndexId index);

 private:
  Engine* engine_;
};

}  // namespace oib

#endif  // OIB_CORE_INDEX_VERIFIER_H_
