// Workload: the concurrent transaction driver used by tests, examples,
// and benches — the "(ordinary) transactions" of the paper's execution
// model, running insert/delete/update/read mixes against a table while an
// index builder works on it.
//
// Each worker thread owns a shard of the table's rows (so threads do not
// contend on the same records; the lock manager still sees real
// inter-thread conflicts on pages and trees) and tracks its live RIDs
// transactionally: local bookkeeping changes commit or roll back with the
// transaction.  A configurable fraction of transactions is deliberately
// rolled back to exercise the paper's undo paths.

#ifndef OIB_CORE_WORKLOAD_H_
#define OIB_CORE_WORKLOAD_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/engine.h"
#include "obs/metrics.h"

namespace oib {

// Distribution of which live row a point read targets.
enum class ReadKeyDist : uint8_t {
  kUniform = 0,  // every live row equally likely
  kZipfian = 1,  // rank-skewed (hot keys); theta below
};

struct WorkloadOptions {
  uint32_t threads = 2;
  uint32_t ops_per_txn = 4;
  // Operation mix; the remainder after insert+del+update is point reads.
  double insert_pct = 0.3;
  double delete_pct = 0.2;
  double update_pct = 0.3;
  // Point reads resolve by key through this index (the hash fast path
  // when enable_hash_index is set, a tree descent otherwise) instead of
  // by remembered RID.  kInvalidIndexId keeps the RID-based read.
  IndexId read_index = kInvalidIndexId;
  // Which live row a read targets; zipfian concentrates on hot ranks.
  ReadKeyDist read_dist = ReadKeyDist::kUniform;
  double zipf_theta = 0.99;
  // Fraction of update operations that change the key column (causing
  // index delete+insert) rather than only the payload.
  double update_changes_key = 0.5;
  // Fraction of transactions deliberately rolled back.
  double rollback_pct = 0.05;
  size_t key_width = 12;
  size_t payload_width = 32;
  uint64_t seed = 42;
};

struct WorkloadStats {
  uint64_t commits = 0;
  uint64_t rollbacks = 0;        // deliberate
  uint64_t aborts = 0;           // lock-timeout / forced
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t updates = 0;
  uint64_t reads = 0;
  uint64_t unique_rejections = 0;
  uint64_t rollback_errors = 0;  // Rollback() itself failed — always a bug
  double elapsed_ms = 0;

  void Add(const WorkloadStats& o) {
    commits += o.commits;
    rollbacks += o.rollbacks;
    aborts += o.aborts;
    inserts += o.inserts;
    deletes += o.deletes;
    updates += o.updates;
    reads += o.reads;
    unique_rejections += o.unique_rejections;
    rollback_errors += o.rollback_errors;
  }
  uint64_t ops() const { return inserts + deletes + updates + reads; }
};

class Workload {
 public:
  Workload(Engine* engine, TableId table, WorkloadOptions options)
      : engine_(engine), table_(table), options_(options) {
    // Per-op latency histograms (registry-owned, shared across workload
    // instances): these are what the E2 availability experiment reads to
    // report update p50/p95/p99 while a build is in flight.
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    insert_ns_ = reg.GetHistogram("workload.insert_ns");
    delete_ns_ = reg.GetHistogram("workload.delete_ns");
    update_ns_ = reg.GetHistogram("workload.update_ns");
    read_ns_ = reg.GetHistogram("workload.read_ns");
    commit_ns_ = reg.GetHistogram("workload.commit_ns");
    // Committed-op counter mirrored into the registry so the time-series
    // sampler can derive update throughput per tick without a Workload ref.
    ops_counter_ = reg.GetCounter("workload.ops");
  }

  ~Workload();

  Workload(const Workload&) = delete;
  Workload& operator=(const Workload&) = delete;

  // Loads `rows` records (fixed-width zero-padded decimal keys, field 0)
  // and returns their RIDs.  Uses its own transactions.
  static StatusOr<std::vector<Rid>> Populate(Engine* engine, TableId table,
                                             uint64_t rows,
                                             const WorkloadOptions& options);
  // Key/record helpers shared with tests and benches.
  static std::string MakeKey(uint64_t id, size_t width);
  static std::string MakeRecord(const std::string& key, size_t payload_width,
                                Random* rng);

  // Seeds the worker shards with existing rows (from Populate).
  void Seed(const std::vector<Rid>& rids, uint64_t next_key_id);

  // Runs `total_ops` operations (spread over the threads), synchronously.
  Status Run(uint64_t total_ops, WorkloadStats* stats);

  // Asynchronous mode for benches that run a builder concurrently.
  void Start();
  WorkloadStats Stop();

  uint64_t ops_done() const { return ops_done_.load(); }

 private:
  struct Shard {
    std::vector<std::pair<Rid, std::string>> live;  // (rid, key)
    uint64_t next_key_id = 0;
  };

  void WorkerLoop(uint32_t worker, uint64_t op_budget);
  // One transaction; updates shard-local state only on commit.  `zipf`
  // is the worker's read-rank generator (null = uniform reads).
  void RunTxn(uint32_t worker, Random* rng, ZipfGenerator* zipf,
              WorkloadStats* stats);

  Engine* engine_;
  TableId table_;
  WorkloadOptions options_;

  obs::Histogram* insert_ns_ = nullptr;
  obs::Histogram* delete_ns_ = nullptr;
  obs::Histogram* update_ns_ = nullptr;
  obs::Histogram* read_ns_ = nullptr;
  obs::Histogram* commit_ns_ = nullptr;
  obs::Counter* ops_counter_ = nullptr;

  std::vector<Shard> shards_;
  std::vector<std::thread> threads_;
  std::vector<WorkloadStats> thread_stats_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> ops_done_{0};
  std::atomic<uint64_t> key_counter_{0};
};

}  // namespace oib

#endif  // OIB_CORE_WORKLOAD_H_
