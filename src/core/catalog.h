// Catalog: tables and index descriptors, with durable metadata.
//
// Index descriptors follow the paper's lifecycle: once created, the index
// is *maintainable* (update transactions must account for it — directly in
// NSF, via visibility + side-file in SF) but not yet *readable*; it
// becomes readable when the build completes.  Descriptors are appended to
// a per-table ordered list; the "count of visible indexes" logged with
// every data-page update (Figures 1-2) is an index into that list, which
// works because the index count can only grow while update transactions
// are active (dropping requires a table S lock — paper footnote 6).
//
// Catalog metadata persists through DiskManager::PutMeta (atomic w.r.t.
// simulated crashes) rather than the WAL; see DESIGN.md.

#ifndef OIB_CORE_CATALOG_H_
#define OIB_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/key.h"
#include "common/options.h"
#include "common/status.h"
#include "common/sync.h"
#include "hashidx/hash_index.h"
#include "heap/heap_file.h"
#include "sidefile/side_file.h"
#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"

namespace oib {

enum class BuildAlgo : uint8_t {
  kNone = 0,     // not being built (ready or offline-built)
  kOffline = 1,
  kNsf = 2,
  kSf = 3,
};

enum class IndexState : uint8_t {
  kBuilding = 1,  // descriptor exists; build in progress (or interrupted)
  kReady = 2,     // available as an access path for reads
};

struct IndexDescriptor {
  IndexId id = kInvalidIndexId;
  std::string name;
  TableId table = 0;
  bool unique = false;
  std::vector<uint32_t> key_cols;
  // Normalized-encoding column types, parallel to key_cols (empty =
  // all kString); see common/key.h.
  std::vector<KeyColumnType> key_types;
  PageId anchor = kInvalidPageId;
  PageId side_file_first = kInvalidPageId;  // SF builds only
  IndexState state = IndexState::kBuilding;
  BuildAlgo algo = BuildAlgo::kNone;
};

struct TableInfo {
  TableId id = 0;
  std::string name;
  PageId first_page = kInvalidPageId;
};

class Catalog {
 public:
  Catalog(BufferPool* pool, TransactionManager* txns, DiskManager* disk,
          const Options* options)
      : pool_(pool), txns_(txns), disk_(disk), options_(options) {}

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // ---- tables ----
  StatusOr<TableId> CreateTable(const std::string& name);
  HeapFile* table(TableId id) const;
  StatusOr<TableId> TableByName(const std::string& name) const;

  // ---- indexes ----
  // Creates descriptor + empty tree (+ side-file for SF).  The caller
  // (builder) is responsible for the quiesce protocol around this.
  StatusOr<IndexDescriptor> CreateIndex(
      const std::string& name, TableId table, bool unique,
      std::vector<uint32_t> key_cols, BuildAlgo algo,
      std::vector<KeyColumnType> key_types = {});
  // Marks an index ready for reads (build complete) and persists.
  Status SetIndexReady(IndexId id);
  // Removes an index entirely (cancel / drop).  Caller holds the table
  // S lock per section 2.3.2.
  Status DropIndex(IndexId id);

  BTree* index(IndexId id) const;
  SideFile* side_file(IndexId id) const;
  // Hash fast-path fragment for an index; nullptr when the engine runs
  // with enable_hash_index off (the default).
  HashIndex* hash_index(IndexId id) const;
  StatusOr<IndexDescriptor> descriptor(IndexId id) const;
  // Descriptors of a table in creation order (the count-prefix order).
  std::vector<IndexDescriptor> IndexesOf(TableId table) const;
  std::vector<IndexDescriptor> AllIndexes() const;

  // ---- durability ----
  Status Persist();
  // Loads metadata and re-opens every table / tree / side-file object.
  Status Load();

 private:
  Status PersistLocked() OIB_REQUIRES(mu_);

  BufferPool* pool_;
  TransactionManager* txns_;
  DiskManager* disk_;
  const Options* options_;

  // Update transactions acquire mu_ under heap page latches (PlanFor ->
  // IndexesOf), so the catalog must never latch a page while holding it;
  // rank kCatalog > kPageLatch makes the checker enforce that direction
  // and abort on the reverse.
  mutable sync::Mutex mu_{sync::LockRank::kCatalog, "catalog.mu"};
  std::map<TableId, TableInfo> tables_ OIB_GUARDED_BY(mu_);
  std::map<TableId, std::unique_ptr<HeapFile>> heaps_ OIB_GUARDED_BY(mu_);
  std::map<IndexId, IndexDescriptor> indexes_ OIB_GUARDED_BY(mu_);
  std::map<IndexId, std::unique_ptr<BTree>> trees_ OIB_GUARDED_BY(mu_);
  std::map<IndexId, std::unique_ptr<SideFile>> side_files_
      OIB_GUARDED_BY(mu_);
  // Hash fast-path fragments, parallel to trees_ (only populated when
  // options_->enable_hash_index).  Each fragment is also installed as its
  // tree's entry observer, so erase order matters: detach first.
  std::map<IndexId, std::unique_ptr<HashIndex>> hashes_ OIB_GUARDED_BY(mu_);
  // Per-table creation order.
  std::map<TableId, std::vector<IndexId>> table_indexes_ OIB_GUARDED_BY(mu_);
  TableId next_table_id_ OIB_GUARDED_BY(mu_) = 1;
  IndexId next_index_id_ OIB_GUARDED_BY(mu_) = 1;
};

}  // namespace oib

#endif  // OIB_CORE_CATALOG_H_
