#include "core/record_manager.h"

#include "obs/trace.h"

namespace oib {

namespace {

// Logged-count semantics: the count stored in every data-page log record
// is the number of indexes the transaction maintained *directly* (ready
// indexes plus, for NSF, the indexes under construction).  An SF index
// routed through the side-file is deliberately NOT counted: during
// rollback the uniform rule "compensate every index at ordinal >=
// logged_count" then works across all visibility transitions, including
// forward-op-routed-via-side-file followed by build completion (see
// DESIGN.md for the full case analysis; the paper's Figure 2 count
// comparison is ambiguous for that case).

Status ExtractKeyFor(const std::vector<uint32_t>& cols,
                     const std::vector<KeyColumnType>& types,
                     std::string_view record, std::string* key) {
  return Schema::ExtractKeyTo(record, cols, types, key);
}

}  // namespace

RecordManager::~RecordManager() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

void RecordManager::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterValueFn(
      "records.side_file_appends",
      [this] { return stats_.side_file_appends.load(); }, this);
  registry->RegisterValueFn(
      "records.nsf_duplicate_inserts",
      [this] { return stats_.nsf_duplicate_inserts.load(); }, this);
  registry->RegisterValueFn(
      "records.tombstone_inserts",
      [this] { return stats_.tombstone_inserts.load(); }, this);
  registry->RegisterValueFn(
      "records.rollback_compensations",
      [this] { return stats_.rollback_compensations.load(); }, this);
  hash_hits_ = registry->GetCounter("hash.hits");
  hash_misses_ = registry->GetCounter("hash.misses");
  hash_fallbacks_ = registry->GetCounter("hash.fallbacks");
}

void RecordManager::AttachHeapRm(HeapRm* heap_rm) {
  heap_rm->SetUndoHook(
      [this](Transaction* txn, TableId table, HeapOp op, Rid rid,
             std::string_view before, std::string_view after,
             uint32_t logged_count) {
        return UndoHook(txn, table, op, rid, before, after, logged_count);
      });
}

// ----------------------------- planning ------------------------------

RecordManager::MaintPlan RecordManager::PlanFor(TableId table,
                                                const Rid& rid) {
  for (;;) {
    MaintPlan plan;
    // Read the Index_Build flag BEFORE snapshotting the catalog.  The
    // builder marks the index ready and THEN flips the flag (both under
    // the gate), so flag==false guarantees a subsequent catalog read sees
    // the index as ready; the reverse order could observe "still
    // building" in the catalog and "build finished" in the flag and
    // maintain nothing — losing the index update entirely.
    auto build = GetBuild(table);
    bool active = build && build->index_build.load();
    for (const IndexDescriptor& d : catalog_->IndexesOf(table)) {
      if (d.state == IndexState::kReady) plan.ready.push_back(d);
    }
    uint32_t count = static_cast<uint32_t>(plan.ready.size());
    if (active) {
      plan.build = build;
      plan.gate = build->EnterGateShared();
      // Acquiring the gate may have waited out the builder's final drain;
      // if the flag flipped meanwhile, the ready-index snapshot above is
      // stale — replan from scratch.
      if (!build->index_build.load()) continue;
      if (build->algo == BuildAlgo::kNsf) {
        count += static_cast<uint32_t>(build->indexes.size());
      } else if (build->algo == BuildAlgo::kSf) {
        plan.sf_visible = PackRid(rid) < build->current_rid.load();
      }
    }
    plan.visible_count = count;
    return plan;
  }
}

// --------------------------- key maintenance -------------------------

Status RecordManager::ResolveUniqueConflict(Transaction* txn, TableId table,
                                            BTree* tree,
                                            std::string_view key,
                                            const Rid& new_rid) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    auto vm = tree->FindKeyValue(key);
    if (!vm.ok()) return vm.status();
    if (!vm->found || vm->rid == new_rid) return Status::OK();
    // Ensure the conflicting key belongs to a finished transaction: its
    // owner holds the record X lock until commit/abort, so acquiring an
    // S lock proves it ended (the paper's committed-ness check; the
    // Commit_LSN shortcut of [Moha90b] would avoid this lock).
    LockOptions opt;
    opt.timeout_ms = options_->lock_timeout_ms;
    OIB_RETURN_IF_ERROR(locks_->Lock(
        txn->id(), RecordLockId(table, vm->rid), LockMode::kS, opt));
    // Recheck the entry now that the owner has finished.
    auto lk = tree->Lookup(key, vm->rid);
    if (!lk.ok()) return lk.status();
    if (!lk->found) continue;  // rolled back; look again
    if (lk->pseudo_deleted) {
      // Committed deletion: the tombstone is dead weight; remove it (the
      // paper resets the flag and replaces the RID — equivalent).
      Status s = tree->GcRemove(key, vm->rid);
      if (!s.ok() && !s.IsNotFound() && !s.IsInvalidArgument()) return s;
      continue;
    }
    return Status::UniqueViolation("key value exists: index " +
                                   std::to_string(tree->index_id()));
  }
  return Status::Busy("unique conflict resolution did not converge");
}

Status RecordManager::InsertKey(Transaction* txn, TableId table, BTree* tree,
                                bool unique, bool nsf_build,
                                std::string_view key, const Rid& rid) {
  if (unique) {
    OIB_RETURN_IF_ERROR(
        ResolveUniqueConflict(txn, table, tree, key, rid));
  }
  auto r = tree->Insert(txn, key, rid);
  if (!r.ok()) return r.status();
  if (*r == BTree::InsertResult::kAlreadyPresent) {
    if (nsf_build) {
      // NSF section 2.1.1: IB physically inserted the key first; the
      // transaction writes an undo-only record so its rollback would
      // delete the key.
      stats_.nsf_duplicate_inserts.fetch_add(1);
      return tree->LogUndoOnlyInsert(txn, key, rid);
    }
    return Status::Corruption("duplicate key in ready index");
  }
  return Status::OK();
}

Status RecordManager::DeleteKey(Transaction* txn, BTree* tree,
                                bool nsf_build, std::string_view key,
                                const Rid& rid) {
  if (nsf_build) {
    // Section 2.2.3 deleter logic: pseudo-delete, leaving a tombstone if
    // the key is absent (IB may insert it later).
    auto r = tree->PseudoDelete(txn, key, rid);
    if (!r.ok()) return r.status();
    if (*r == BTree::DeleteResult::kTombstoneInserted) {
      stats_.tombstone_inserts.fetch_add(1);
    }
    return Status::OK();
  }
  return tree->PhysicalDelete(txn, key, rid);
}

Status RecordManager::Maintain(Transaction* txn, TableId table,
                               const MaintPlan& plan, HeapOp op,
                               const Rid& rid, std::string_view old_rec,
                               std::string_view new_rec) {
  auto maintain_direct = [&](BTree* tree, bool unique,
                             const std::vector<uint32_t>& cols,
                             const std::vector<KeyColumnType>& types,
                             bool nsf_build) -> Status {
    std::string old_key, new_key;
    switch (op) {
      case HeapOp::kInsert:
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, new_rec, &new_key));
        return InsertKey(txn, table, tree, unique, nsf_build, new_key, rid);
      case HeapOp::kDelete:
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, old_rec, &old_key));
        return DeleteKey(txn, tree, nsf_build, old_key, rid);
      case HeapOp::kUpdate: {
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, old_rec, &old_key));
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, new_rec, &new_key));
        if (old_key == new_key) return Status::OK();
        OIB_RETURN_IF_ERROR(DeleteKey(txn, tree, nsf_build, old_key, rid));
        return InsertKey(txn, table, tree, unique, nsf_build, new_key, rid);
      }
      default:
        return Status::Corruption("bad maintenance op");
    }
  };

  for (const IndexDescriptor& d : plan.ready) {
    BTree* tree = catalog_->index(d.id);
    if (tree == nullptr) return Status::Corruption("missing ready index");
    OIB_RETURN_IF_ERROR(maintain_direct(tree, d.unique, d.key_cols,
                                        d.key_types, /*nsf_build=*/false));
  }

  if (!plan.build) return Status::OK();

  if (plan.build->algo == BuildAlgo::kNsf) {
    for (const InBuildIndex& ib : plan.build->indexes) {
      OIB_RETURN_IF_ERROR(maintain_direct(ib.tree, ib.unique, ib.key_cols,
                                          ib.key_types, /*nsf_build=*/true));
    }
    return Status::OK();
  }

  // SF: append to the side-file only when the index is visible, i.e. the
  // builder's scan has already passed this RID (Figure 1).
  if (plan.build->algo == BuildAlgo::kSf && plan.sf_visible) {
    for (const InBuildIndex& ib : plan.build->indexes) {
      std::string old_key, new_key;
      switch (op) {
        case HeapOp::kInsert:
          OIB_RETURN_IF_ERROR(
              ExtractKeyFor(ib.key_cols, ib.key_types, new_rec, &new_key));
          OIB_RETURN_IF_ERROR(ib.side_file->Append(
              txn, SideFileOp::kInsertKey, new_key, rid));
          stats_.side_file_appends.fetch_add(1);
          plan.build->side_file_appended.fetch_add(
              1, std::memory_order_relaxed);
          break;
        case HeapOp::kDelete:
          OIB_RETURN_IF_ERROR(
              ExtractKeyFor(ib.key_cols, ib.key_types, old_rec, &old_key));
          OIB_RETURN_IF_ERROR(ib.side_file->Append(
              txn, SideFileOp::kDeleteKey, old_key, rid));
          stats_.side_file_appends.fetch_add(1);
          plan.build->side_file_appended.fetch_add(
              1, std::memory_order_relaxed);
          break;
        case HeapOp::kUpdate: {
          OIB_RETURN_IF_ERROR(
              ExtractKeyFor(ib.key_cols, ib.key_types, old_rec, &old_key));
          OIB_RETURN_IF_ERROR(
              ExtractKeyFor(ib.key_cols, ib.key_types, new_rec, &new_key));
          if (old_key == new_key) break;
          OIB_RETURN_IF_ERROR(ib.side_file->Append(
              txn, SideFileOp::kDeleteKey, old_key, rid));
          OIB_RETURN_IF_ERROR(ib.side_file->Append(
              txn, SideFileOp::kInsertKey, new_key, rid));
          stats_.side_file_appends.fetch_add(2);
          plan.build->side_file_appended.fetch_add(
              2, std::memory_order_relaxed);
          break;
        }
        default:
          return Status::Corruption("bad maintenance op");
      }
    }
  }
  return Status::OK();
}

// --------------------------- record operations -----------------------

StatusOr<Rid> RecordManager::InsertRecord(Transaction* txn, TableId table,
                                          std::string_view record) {
  LockOptions opt;
  opt.timeout_ms = options_->lock_timeout_ms;
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), TableLockId(table), LockMode::kIX, opt));
  HeapFile* heap = catalog_->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");

  MaintPlan plan;
  auto rid = heap->Insert(
      txn, record,
      [&](const Rid& r) {
        plan = PlanFor(table, r);
        return plan.visible_count;
      },
      [&](const Rid& r) {
        // Claim the dead slot's lock: denied while its deleter is active.
        LockOptions claim;
        claim.conditional = true;
        return locks_
            ->Lock(txn->id(), RecordLockId(table, r), LockMode::kX, claim)
            .ok();
      });
  if (!rid.ok()) return rid.status();
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), RecordLockId(table, *rid), LockMode::kX, opt));
  OIB_RETURN_IF_ERROR(
      Maintain(txn, table, plan, HeapOp::kInsert, *rid, {}, record));
  return *rid;
}

Status RecordManager::InsertRecordAt(Transaction* txn, TableId table,
                                     Rid rid, std::string_view record) {
  LockOptions opt;
  opt.timeout_ms = options_->lock_timeout_ms;
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), TableLockId(table), LockMode::kIX, opt));
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), RecordLockId(table, rid), LockMode::kX, opt));
  HeapFile* heap = catalog_->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");

  MaintPlan plan;
  OIB_RETURN_IF_ERROR(heap->InsertAt(txn, rid, record, [&](const Rid& r) {
    plan = PlanFor(table, r);
    return plan.visible_count;
  }));
  return Maintain(txn, table, plan, HeapOp::kInsert, rid, {}, record);
}

Status RecordManager::DeleteRecord(Transaction* txn, TableId table,
                                   Rid rid) {
  LockOptions opt;
  opt.timeout_ms = options_->lock_timeout_ms;
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), TableLockId(table), LockMode::kIX, opt));
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), RecordLockId(table, rid), LockMode::kX, opt));
  HeapFile* heap = catalog_->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");

  MaintPlan plan;
  std::string old_rec;
  OIB_RETURN_IF_ERROR(heap->Delete(
      txn, rid,
      [&](const Rid& r) {
        plan = PlanFor(table, r);
        return plan.visible_count;
      },
      &old_rec));
  return Maintain(txn, table, plan, HeapOp::kDelete, rid, old_rec, {});
}

Status RecordManager::UpdateRecord(Transaction* txn, TableId table, Rid rid,
                                   std::string_view new_record) {
  LockOptions opt;
  opt.timeout_ms = options_->lock_timeout_ms;
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), TableLockId(table), LockMode::kIX, opt));
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), RecordLockId(table, rid), LockMode::kX, opt));
  HeapFile* heap = catalog_->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");

  MaintPlan plan;
  std::string old_rec;
  OIB_RETURN_IF_ERROR(heap->Update(
      txn, rid, new_record,
      [&](const Rid& r) {
        plan = PlanFor(table, r);
        return plan.visible_count;
      },
      &old_rec));
  return Maintain(txn, table, plan, HeapOp::kUpdate, rid, old_rec,
                  new_record);
}

StatusOr<std::string> RecordManager::ReadRecord(Transaction* txn,
                                                TableId table, Rid rid) {
  LockOptions opt;
  opt.timeout_ms = options_->lock_timeout_ms;
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), TableLockId(table), LockMode::kIS, opt));
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), RecordLockId(table, rid), LockMode::kS, opt));
  HeapFile* heap = catalog_->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");
  return heap->Get(rid);
}

StatusOr<std::string> RecordManager::ReadRecordByKey(Transaction* txn,
                                                     TableId table,
                                                     IndexId index,
                                                     std::string_view key) {
  LockOptions opt;
  opt.timeout_ms = options_->lock_timeout_ms;
  OIB_RETURN_IF_ERROR(
      locks_->Lock(txn->id(), TableLockId(table), LockMode::kIS, opt));
  auto desc = catalog_->descriptor(index);
  if (!desc.ok()) return desc.status();
  if (desc->table != table) {
    return Status::InvalidArgument("index not on this table");
  }
  if (desc->state != IndexState::kReady) {
    return Status::InvalidArgument("index not readable");
  }
  BTree* tree = catalog_->index(index);
  if (tree == nullptr) return Status::NotFound("no such index");
  HeapFile* heap = catalog_->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");
  HashIndex* hash =
      options_->enable_hash_index ? catalog_->hash_index(index) : nullptr;

  // Resolve key -> RID, lock, fetch, then verify the fetched record still
  // carries this key (it may have been updated between the index read and
  // the record lock); mismatch retries with fresh index state.
  for (int attempt = 0; attempt < 16; ++attempt) {
    Rid rid;
    bool resolved = false;
    if (hash != nullptr) {
      switch (hash->Probe(key, &rid)) {
        case HashProbe::kHit:
          if (hash_hits_ != nullptr) hash_hits_->Inc();
          resolved = true;
          break;
        case HashProbe::kDeleted:
          // Every entry for the key is pseudo-deleted: a tree descent
          // would surface the same tombstone and answer NotFound.
          if (hash_hits_ != nullptr) hash_hits_->Inc();
          return Status::NotFound("no record with this key");
        case HashProbe::kMiss:
          if (hash_misses_ != nullptr) hash_misses_->Inc();
          break;
        case HashProbe::kFallback:
          if (hash_fallbacks_ != nullptr) hash_fallbacks_->Inc();
          break;
      }
    }
    if (!resolved) {
      auto vm = tree->FindKeyValue(key);
      if (!vm.ok()) return vm.status();
      if (!vm->found || vm->pseudo_deleted) {
        return Status::NotFound("no record with this key");
      }
      rid = vm->rid;
    }
    OIB_RETURN_IF_ERROR(locks_->Lock(txn->id(), RecordLockId(table, rid),
                                     LockMode::kS, opt));
    auto rec = heap->Get(rid);
    if (!rec.ok()) {
      if (rec.status().IsNotFound()) continue;  // deleted after resolution
      return rec.status();
    }
    std::string actual_key;
    OIB_RETURN_IF_ERROR(
        ExtractKeyFor(desc->key_cols, desc->key_types, *rec, &actual_key));
    if (actual_key == key) return rec;
    // The record moved to a different key under us; resolve again.
  }
  return Status::Busy("point read did not converge");
}

// ------------------------------ Figure 2 -----------------------------

Status RecordManager::UndoHook(Transaction* txn, TableId table,
                               HeapOp original_op, Rid rid,
                               std::string_view before,
                               std::string_view after,
                               uint32_t logged_count) {
  // Runs under the data-page X latch, before the heap CLR.  All actions
  // here are idempotent so a crash mid-undo can safely repeat them.
  // Flag-before-catalog ordering: see PlanFor.
  auto build = GetBuild(table);
  bool build_active = build && build->index_build.load();
  std::vector<IndexDescriptor> ready;
  std::vector<IndexDescriptor> building;
  auto snapshot = [&]() {
    ready.clear();
    building.clear();
    for (const IndexDescriptor& d : catalog_->IndexesOf(table)) {
      if (d.state == IndexState::kReady) {
        ready.push_back(d);
      } else {
        building.push_back(d);
      }
    }
  };
  snapshot();
  sync::SharedLock gate;
  if (build_active) {
    gate = build->EnterGateShared();
    if (!build->index_build.load()) {
      // The final drain finished while we waited: the index is ready now;
      // recompute the partition.
      gate.Release();
      build_active = false;
      snapshot();
    }
  }

  // Direct (tree-traversal) compensation, logged redo-only: these actions
  // are themselves undo actions and must never be re-undone.
  auto compensate_direct = [&](BTree* tree, const std::vector<uint32_t>& cols,
                               const std::vector<KeyColumnType>& types)
      -> Status {
    std::string old_key, new_key;
    switch (original_op) {
      case HeapOp::kInsert: {
        // Undo of insert: the key for `after` must leave the index.
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, after, &new_key));
        Status s = tree->PhysicalDelete(txn, new_key, rid,
                                        LogRecordType::kRedoOnly);
        if (!s.ok() && !s.IsNotFound()) return s;
        return Status::OK();
      }
      case HeapOp::kDelete: {
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, before, &old_key));
        auto r = tree->Insert(txn, old_key, rid, 0,
                              LogRecordType::kRedoOnly);
        if (!r.ok()) return r.status();
        return Status::OK();
      }
      case HeapOp::kUpdate: {
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, after, &new_key));
        OIB_RETURN_IF_ERROR(ExtractKeyFor(cols, types, before, &old_key));
        if (new_key == old_key) return Status::OK();
        Status s = tree->PhysicalDelete(txn, new_key, rid,
                                        LogRecordType::kRedoOnly);
        if (!s.ok() && !s.IsNotFound()) return s;
        auto r = tree->Insert(txn, old_key, rid, 0,
                              LogRecordType::kRedoOnly);
        if (!r.ok()) return r.status();
        return Status::OK();
      }
      default:
        return Status::Corruption("bad undo op");
    }
  };

  // Inverse side-file entries for an SF build whose scan has passed this
  // RID: the undo is itself a record modification the builder will not
  // see (Figure 1 applied to the inverse operation).
  auto compensate_side_file = [&](const InBuildIndex& ib) -> Status {
    std::string old_key, new_key;
    switch (original_op) {
      case HeapOp::kInsert:
        OIB_RETURN_IF_ERROR(
            ExtractKeyFor(ib.key_cols, ib.key_types, after, &new_key));
        return ib.side_file->Append(txn, SideFileOp::kDeleteKey, new_key,
                                    rid);
      case HeapOp::kDelete:
        OIB_RETURN_IF_ERROR(
            ExtractKeyFor(ib.key_cols, ib.key_types, before, &old_key));
        return ib.side_file->Append(txn, SideFileOp::kInsertKey, old_key,
                                    rid);
      case HeapOp::kUpdate: {
        OIB_RETURN_IF_ERROR(
            ExtractKeyFor(ib.key_cols, ib.key_types, after, &new_key));
        OIB_RETURN_IF_ERROR(
            ExtractKeyFor(ib.key_cols, ib.key_types, before, &old_key));
        if (new_key == old_key) return Status::OK();
        OIB_RETURN_IF_ERROR(ib.side_file->Append(
            txn, SideFileOp::kDeleteKey, new_key, rid));
        return ib.side_file->Append(txn, SideFileOp::kInsertKey, old_key,
                                    rid);
      }
      default:
        return Status::Corruption("bad undo op");
    }
  };

  uint32_t ordinal = 0;
  for (const IndexDescriptor& d : ready) {
    if (ordinal >= logged_count) {
      // Made visible (completed) since the original change: logical undo
      // by traversing the tree (Figure 2).
      BTree* tree = catalog_->index(d.id);
      if (tree == nullptr) return Status::Corruption("missing index");
      OIB_RETURN_IF_ERROR(compensate_direct(tree, d.key_cols, d.key_types));
      stats_.rollback_compensations.fetch_add(1);
    }
    ++ordinal;
  }
  if (build_active) {
    bool sf_visible =
        build->algo == BuildAlgo::kSf &&
        PackRid(rid) < build->current_rid.load();
    for (const InBuildIndex& ib : build->indexes) {
      if (ordinal >= logged_count) {
        if (build->algo == BuildAlgo::kSf) {
          if (sf_visible) {
            OIB_RETURN_IF_ERROR(compensate_side_file(ib));
            stats_.rollback_compensations.fetch_add(1);
            build->side_file_appended.fetch_add(1, std::memory_order_relaxed);
          }
          // Invisible: IB will extract the post-undo state; nothing to do.
        } else {
          // NSF builds quiesce updates at descriptor creation (2.2.1), so
          // a transaction older than the descriptor cannot exist; kept
          // for safety with a tolerant direct compensation.
          OIB_RETURN_IF_ERROR(
              compensate_direct(ib.tree, ib.key_cols, ib.key_types));
        }
      }
      ++ordinal;
    }
  }
  return Status::OK();
}

// ------------------------------ registry -----------------------------

std::shared_ptr<ActiveBuild> RecordManager::RegisterBuild(
    TableId table, BuildAlgo algo, std::vector<InBuildIndex> indexes) {
  auto build = std::make_shared<ActiveBuild>();
  build->algo = algo;
  build->indexes = std::move(indexes);
  build->start_ns = obs::MonotonicNanos();
  if (algo == BuildAlgo::kNsf) {
    for (const InBuildIndex& ib : build->indexes) {
      if (ib.tree != nullptr) ib.tree->set_ib_active(true);
    }
  }
  sync::MutexLock g(&builds_mu_);
  builds_[table] = build;
  return build;
}

void RecordManager::UnregisterBuild(TableId table) {
  sync::MutexLock g(&builds_mu_);
  auto it = builds_.find(table);
  if (it != builds_.end()) {
    for (const InBuildIndex& ib : it->second->indexes) {
      if (ib.tree != nullptr) ib.tree->set_ib_active(false);
    }
    builds_.erase(it);
  }
}

std::shared_ptr<ActiveBuild> RecordManager::GetBuild(TableId table) const {
  sync::MutexLock g(&builds_mu_);
  auto it = builds_.find(table);
  return it == builds_.end() ? nullptr : it->second;
}

}  // namespace oib
