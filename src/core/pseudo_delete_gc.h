// PseudoDeleteGC: background garbage collection of pseudo-deleted keys
// (paper section 2.2.4).
//
// Scans the leaf pages; for every pseudo-deleted key it requests a
// *conditional instant* share lock on the corresponding record (data-only
// locking: key lock name == record lock name).  Granted -> the deletion is
// committed and the key is physically removed (redo-only logged); denied
// -> the deletion is probably uncommitted, skip it.  (The paper would
// first try the cheaper Commit_LSN test; we go straight to the lock.)

#ifndef OIB_CORE_PSEUDO_DELETE_GC_H_
#define OIB_CORE_PSEUDO_DELETE_GC_H_

#include "core/engine.h"

namespace oib {

struct GcStats {
  uint64_t leaves_scanned = 0;
  uint64_t pseudo_seen = 0;
  uint64_t removed = 0;
  uint64_t skipped_locked = 0;  // lock denied: deletion not yet committed
};

class PseudoDeleteGC {
 public:
  explicit PseudoDeleteGC(Engine* engine) : engine_(engine) {}

  // One full pass over the index.
  Status Run(IndexId index, GcStats* stats = nullptr);

 private:
  Engine* engine_;
};

}  // namespace oib

#endif  // OIB_CORE_PSEUDO_DELETE_GC_H_
