#include "core/index_builder.h"

#include <map>

#include "common/coding.h"
#include "common/failpoint.h"
#include "core/build_pipeline.h"
#include "core/schema.h"

namespace oib {

std::string BuildMetaKey(TableId table) {
  return "build_t" + std::to_string(table);
}

void PutCounters(std::string* out, const std::vector<uint64_t>& counters) {
  PutFixed32(out, static_cast<uint32_t>(counters.size()));
  for (uint64_t c : counters) PutFixed64(out, c);
}

bool GetCounters(BufferReader* r, std::vector<uint64_t>* counters) {
  uint32_t n;
  if (!r->GetFixed32(&n)) return false;
  counters->clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t c;
    if (!r->GetFixed64(&c)) return false;
    counters->push_back(c);
  }
  return true;
}

// Checkpoint format version.  v2: keys in phase blobs (sorter last-output
// keys, loader high keys, side-file positions) are normalized
// byte-comparable encodings and runs are prefix-compressed; a v1
// checkpoint's raw concatenated keys would silently mis-sort against
// them, so decoding rejects any other version and the build restarts
// from scratch.
inline constexpr uint8_t kBuildMetaVersion = 2;

std::string EncodeBuildMeta(const BuildMeta& meta) {
  std::string blob;
  blob.push_back(static_cast<char>(kBuildMetaVersion));
  blob.push_back(static_cast<char>(meta.algo));
  PutFixed32(&blob, static_cast<uint32_t>(meta.indexes.size()));
  for (IndexId id : meta.indexes) PutFixed32(&blob, id);
  blob.push_back(static_cast<char>(meta.phase));
  PutFixed64(&blob, meta.current_rid);
  PutFixed32(&blob, static_cast<uint32_t>(meta.fences.size()));
  for (const auto& per_index : meta.fences) {
    PutFixed32(&blob, static_cast<uint32_t>(per_index.size()));
    for (const SideFileFence& f : per_index) {
      PutFixed64(&blob, f.before_ordinal);
      PutFixed64(&blob, f.rid_floor);
      PutFixed64(&blob, f.rid_ceiling);
    }
  }
  PutLengthPrefixed(&blob, meta.phase_blob);
  return blob;
}

Status DecodeBuildMeta(const std::string& blob, BuildMeta* meta) {
  BufferReader r(blob);
  uint8_t version, algo, phase;
  uint32_t n_indexes, n_fences;
  if (!r.GetByte(&version)) return Status::Corruption("build meta header");
  if (version != kBuildMetaVersion) {
    return Status::Corruption("build meta version mismatch (key encoding)");
  }
  if (!r.GetByte(&algo) || !r.GetFixed32(&n_indexes)) {
    return Status::Corruption("build meta header");
  }
  meta->algo = static_cast<BuildAlgo>(algo);
  meta->indexes.clear();
  for (uint32_t i = 0; i < n_indexes; ++i) {
    uint32_t id;
    if (!r.GetFixed32(&id)) return Status::Corruption("build meta index");
    meta->indexes.push_back(id);
  }
  if (!r.GetByte(&phase) || !r.GetFixed64(&meta->current_rid) ||
      !r.GetFixed32(&n_fences)) {
    return Status::Corruption("build meta body");
  }
  meta->phase = phase;
  meta->fences.clear();
  for (uint32_t i = 0; i < n_fences; ++i) {
    uint32_t n;
    if (!r.GetFixed32(&n)) return Status::Corruption("build meta fences");
    std::vector<SideFileFence> per_index;
    for (uint32_t j = 0; j < n; ++j) {
      SideFileFence f;
      if (!r.GetFixed64(&f.before_ordinal) || !r.GetFixed64(&f.rid_floor) ||
          !r.GetFixed64(&f.rid_ceiling)) {
        return Status::Corruption("build meta fence");
      }
      per_index.push_back(f);
    }
    meta->fences.push_back(std::move(per_index));
  }
  if (!r.GetLengthPrefixed(&meta->phase_blob)) {
    return Status::Corruption("build meta phase blob");
  }
  return Status::OK();
}

Status SaveBuildMeta(Engine* engine, TableId table, const BuildMeta& meta) {
  // Every builder checkpoint persists through here: an injected failure
  // aborts the build with its last self-consistent checkpoint on disk.
  OIB_FAIL_POINT("build.save_meta");
  return engine->disk()->PutMeta(BuildMetaKey(table), EncodeBuildMeta(meta));
}

StatusOr<BuildMeta> LoadBuildMeta(Engine* engine, TableId table) {
  std::string blob;
  Status s = engine->disk()->GetMeta(BuildMetaKey(table), &blob);
  if (!s.ok()) return s;
  if (blob.empty()) return Status::NotFound("no build in progress");
  BuildMeta meta;
  OIB_RETURN_IF_ERROR(DecodeBuildMeta(blob, &meta));
  return meta;
}

Status ClearBuildMeta(Engine* engine, TableId table) {
  return engine->disk()->PutMeta(BuildMetaKey(table), "");
}

Status VerifyUniqueConflict(Engine* engine, TxnId locker, TableId table,
                            const std::vector<uint32_t>& key_cols,
                            const std::vector<KeyColumnType>& key_types,
                            std::string_view key, const Rid& existing_rid,
                            const Rid& new_rid) {
  // Section 2.2.3: IB locks both records in share mode, then verifies
  // whether the duplicate-key-value condition still exists.
  LockManager* locks = engine->locks();
  LockOptions opt;
  opt.timeout_ms = engine->options().lock_timeout_ms;
  OIB_RETURN_IF_ERROR(locks->Lock(locker, RecordLockId(table, existing_rid),
                                  LockMode::kS, opt));
  OIB_RETURN_IF_ERROR(
      locks->Lock(locker, RecordLockId(table, new_rid), LockMode::kS, opt));

  HeapFile* heap = engine->catalog()->table(table);
  if (heap == nullptr) return Status::NotFound("no such table");

  auto key_of = [&](const Rid& rid) -> StatusOr<std::string> {
    auto rec = heap->Get(rid);
    if (!rec.ok()) return rec.status();  // NotFound: record gone
    return Schema::ExtractKey(*rec, key_cols, key_types);
  };

  Status result = Status::OK();
  auto k1 = key_of(existing_rid);
  auto k2 = key_of(new_rid);
  if (k1.ok() && k2.ok() && *k1 == key && *k2 == key) {
    result = Status::UniqueViolation(
        "duplicate committed key values at " + existing_rid.ToString() +
        " and " + new_rid.ToString());
  } else if (!k1.ok() && !k1.status().IsNotFound()) {
    result = k1.status();
  } else if (!k2.ok() && !k2.status().IsNotFound()) {
    result = k2.status();
  }
  locks->Unlock(locker, RecordLockId(table, existing_rid));
  locks->Unlock(locker, RecordLockId(table, new_rid));
  return result;
}

Status ReattachInterruptedBuilds(Engine* engine) {
  std::map<TableId, std::vector<IndexDescriptor>> by_table;
  for (const IndexDescriptor& d : engine->catalog()->AllIndexes()) {
    if (d.state == IndexState::kBuilding) by_table[d.table].push_back(d);
  }
  for (auto& [table, descs] : by_table) {
    BuildAlgo algo = descs.front().algo;
    if (algo == BuildAlgo::kOffline) {
      // Offline builds hold an X table lock, which died with the crash;
      // resumption is a from-scratch rebuild, so no registration.
      continue;
    }
    std::vector<InBuildIndex> in_build;
    for (const IndexDescriptor& d : descs) {
      InBuildIndex ib;
      ib.id = d.id;
      ib.tree = engine->catalog()->index(d.id);
      ib.side_file = engine->catalog()->side_file(d.id);
      ib.unique = d.unique;
      ib.key_cols = d.key_cols;
      ib.key_types = d.key_types;
      in_build.push_back(std::move(ib));
    }
    auto build = engine->records()->RegisterBuild(table, algo,
                                                  std::move(in_build));
    if (algo == BuildAlgo::kSf) {
      auto meta = LoadBuildMeta(engine, table);
      if (!meta.ok()) {
        if (!meta.status().IsNotFound()) return meta.status();
        // Crash before the first checkpoint: the scan restarts from the
        // beginning; every pre-crash side-file entry is stale.
        BuildMeta fresh;
        fresh.algo = algo;
        for (const IndexDescriptor& d : descs) {
          fresh.indexes.push_back(d.id);
        }
        fresh.phase = 1;
        fresh.current_rid = PackRid(Rid::MinusInfinity());
        meta = std::move(fresh);
      }
      build->current_rid.store(meta->current_rid);
      // Restart fences: the resumed scan re-extracts every partition's
      // pages from its last checkpointed position up to its bound, so
      // pre-crash side-file entries for RIDs in those re-scan regions
      // describe changes IB will re-extract and must be skipped during
      // apply.  Entries for already-extracted regions (below a
      // partition's saved position) must NOT be fenced — they are the
      // only record of post-extraction changes (see DESIGN.md).  Once the
      // scan phase is durably complete (phase >= 2) nothing is rescanned
      // and no fence is needed.
      if (meta->fences.size() != meta->indexes.size()) {
        meta->fences.assign(meta->indexes.size(), {});
      }
      if (meta->phase <= 1) {
        std::vector<std::pair<uint64_t, uint64_t>> regions;
        ScanPlan plan;
        if (!meta->phase_blob.empty()) {
          OIB_RETURN_IF_ERROR(DecodeScanPlan(meta->phase_blob, &plan));
        }
        if (!plan.parts.empty()) {
          for (const ScanPartition& part : plan.parts) {
            if (part.next == kInvalidPageId) continue;
            uint64_t lo = PackRid(Rid(part.next, 0));
            uint64_t hi = part.bound == kInvalidPageId
                              ? ~0ull
                              : PackRid(Rid(part.bound, 0));
            if (lo < hi) regions.emplace_back(lo, hi);
          }
        } else {
          // Crash before the first checkpoint: the whole chain is
          // rescanned, so every pre-crash entry is stale.
          regions.emplace_back(0, ~0ull);
        }
        for (size_t i = 0; i < meta->indexes.size(); ++i) {
          SideFile* sf = engine->catalog()->side_file(meta->indexes[i]);
          if (sf == nullptr) return Status::Corruption("missing side file");
          for (const auto& [lo, hi] : regions) {
            SideFileFence fence;
            fence.before_ordinal = sf->entries_appended();
            fence.rid_floor = lo;
            fence.rid_ceiling = hi;
            meta->fences[i].push_back(fence);
          }
        }
      }
      OIB_RETURN_IF_ERROR(SaveBuildMeta(engine, table, *meta));
    }
  }
  return Status::OK();
}

}  // namespace oib
