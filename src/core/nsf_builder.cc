// Algorithm NSF — Index Build Without Side-File (paper section 2).
//
// Pipeline: (1) create the descriptor under a short table-S quiesce, after
// which transactions maintain the new index directly; (2) scan the data
// pages with latches only (no locks), extracting and sorting keys in a
// pipelined, checkpointed fashion (restartable sort, section 5) — the
// scan is partitioned across build_threads workers by the shared
// BuildPipeline, with per-partition checkpoints; (3) feed the final merge
// pass into multi-key index inserts with duplicate rejection, IB-mode
// splits, and periodic highest-position checkpoints with commits
// (section 2.2.3), overlapping merge and inserts when parallel; (4) make
// the index available for reads.

#include <chrono>

#include "btree/btree.h"
#include "common/coding.h"
#include "common/failpoint.h"
#include "core/build_pipeline.h"
#include "core/index_builder.h"
#include "core/schema.h"
#include "obs/trace.h"
#include "sort/external_sorter.h"

namespace oib {

namespace {

// NSF phase-1 blob: the encoded ScanPlan (stop_page = the tail noted at
// build start; per-partition scan positions + writer checkpoints).

// NSF phase-2 blob: [final sort blob][has_counters][counters][inserted].
std::string EncodeNsfInsertState(const std::string& sort_blob,
                                 bool has_counters,
                                 const std::vector<uint64_t>& counters,
                                 uint64_t inserted) {
  std::string out;
  PutLengthPrefixed(&out, sort_blob);
  out.push_back(has_counters ? 1 : 0);
  PutCounters(&out, counters);
  PutFixed64(&out, inserted);
  return out;
}

Status DecodeNsfInsertState(const std::string& blob, std::string* sort_blob,
                            bool* has_counters,
                            std::vector<uint64_t>* counters,
                            uint64_t* inserted) {
  BufferReader r(blob);
  uint8_t has;
  if (!r.GetLengthPrefixed(sort_blob) || !r.GetByte(&has) ||
      !GetCounters(&r, counters) || !r.GetFixed64(inserted)) {
    return Status::Corruption("nsf insert state");
  }
  *has_counters = has != 0;
  return Status::OK();
}

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr const char* kNsfScanSpans[] = {
    "nsf.scan.p0", "nsf.scan.p1", "nsf.scan.p2", "nsf.scan.p3",
    "nsf.scan.p4", "nsf.scan.p5", "nsf.scan.p6", "nsf.scan.p7"};

}  // namespace

Status NsfIndexBuilder::Build(const BuildParams& params, IndexId* out,
                              BuildStats* stats) {
  Catalog* catalog = engine_->catalog();
  RecordManager* records = engine_->records();

  // Section 2.2.1: quiesce updates (table S lock) only for the duration
  // of descriptor creation, so no transaction holds uncommitted updates
  // that predate the descriptor.
  auto t_quiesce = std::chrono::steady_clock::now();
  obs::ScopedSpan quiesce_span(engine_->tracer(), "nsf.quiesce");
  Transaction* quiesce_txn = engine_->Begin();
  LockOptions opt;
  opt.timeout_ms = 60'000;  // builds wait out active transactions
  OIB_RETURN_IF_ERROR(engine_->locks()->Lock(
      quiesce_txn->id(), TableLockId(params.table), LockMode::kS, opt));

  auto desc = catalog->CreateIndex(params.name, params.table, params.unique,
                                   params.key_cols, BuildAlgo::kNsf,
                                   params.key_types);
  if (!desc.ok()) {
    (void)engine_->Rollback(quiesce_txn);
    return desc.status();
  }
  InBuildIndex ib;
  ib.id = desc->id;
  ib.tree = catalog->index(desc->id);
  ib.side_file = nullptr;
  ib.unique = params.unique;
  ib.key_cols = params.key_cols;
  ib.key_types = params.key_types;
  auto build =
      records->RegisterBuild(params.table, BuildAlgo::kNsf, {std::move(ib)});
  build->SetPhase(obs::BuildPhase::kQuiesce);

  BuildMeta meta;
  meta.algo = BuildAlgo::kNsf;
  meta.indexes = {desc->id};
  meta.phase = 1;
  OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, params.table, meta));

  OIB_RETURN_IF_ERROR(engine_->Commit(quiesce_txn));  // end of quiesce
  quiesce_span.End();
  if (stats != nullptr) stats->quiesce_ms = MsSince(t_quiesce);

  if (out != nullptr) *out = desc->id;
  return Run(params, desc->id, /*start_phase=*/1, "", stats);
}

Status NsfIndexBuilder::Resume(TableId table, IndexId* out,
                               BuildStats* stats) {
  auto meta = LoadBuildMeta(engine_, table);
  IndexId id = kInvalidIndexId;
  int phase = 1;
  std::string phase_blob;
  if (meta.ok()) {
    if (meta->algo != BuildAlgo::kNsf || meta->indexes.size() != 1) {
      return Status::InvalidArgument("not an interrupted NSF build");
    }
    id = meta->indexes[0];
    phase = meta->phase;
    phase_blob = meta->phase_blob;
  } else if (meta.status().IsNotFound()) {
    // Crash between descriptor creation and the first checkpoint: the
    // descriptor persisted (kBuilding) but no meta did.  Nothing was
    // inserted yet, so restart the build from the beginning.
    for (const IndexDescriptor& d : engine_->catalog()->IndexesOf(table)) {
      if (d.state == IndexState::kBuilding && d.algo == BuildAlgo::kNsf) {
        id = d.id;
        break;
      }
    }
    if (id == kInvalidIndexId) return meta.status();
  } else {
    return meta.status();
  }
  auto desc = engine_->catalog()->descriptor(id);
  if (!desc.ok()) return desc.status();
  BuildParams params;
  params.name = desc->name;
  params.table = table;
  params.unique = desc->unique;
  params.key_cols = desc->key_cols;
  params.key_types = desc->key_types;
  if (out != nullptr) *out = id;
  return Run(params, id, phase, phase_blob, stats);
}

Status NsfIndexBuilder::Cancel(TableId table) {
  // Section 2.3.2: deleting the descriptor requires quiescing updates so
  // rolling-back transactions never hit a vanished index.
  auto meta = LoadBuildMeta(engine_, table);
  if (!meta.ok()) return meta.status();
  Transaction* txn = engine_->Begin();
  LockOptions opt;
  opt.timeout_ms = 60'000;
  OIB_RETURN_IF_ERROR(engine_->locks()->Lock(
      txn->id(), TableLockId(table), LockMode::kS, opt));
  engine_->records()->UnregisterBuild(table);
  for (IndexId id : meta->indexes) {
    OIB_RETURN_IF_ERROR(engine_->catalog()->DropIndex(id));
  }
  OIB_RETURN_IF_ERROR(ClearBuildMeta(engine_, table));
  return engine_->Commit(txn);
}

Status NsfIndexBuilder::Run(const BuildParams& params, IndexId index_id,
                            int start_phase, std::string phase_blob,
                            BuildStats* stats) {
  Catalog* catalog = engine_->catalog();
  HeapFile* heap = catalog->table(params.table);
  BTree* tree = catalog->index(index_id);
  if (heap == nullptr || tree == nullptr) {
    return Status::NotFound("table or index missing");
  }
  const Options& options = engine_->options();
  LogStats log_before = engine_->log()->stats();
  uint64_t key_raw_before = engine_->runs()->raw_key_bytes();
  uint64_t key_stored_before = engine_->runs()->stored_key_bytes();
  BuildStats local;
  auto build = engine_->records()->GetBuild(params.table);
  obs::Tracer* tracer = engine_->tracer();
  auto t_run = std::chrono::steady_clock::now();

  ExternalSorter sorter(engine_->runs(), &options);
  BuildMeta meta;
  meta.algo = BuildAlgo::kNsf;
  meta.indexes = {index_id};

  std::string final_sort_blob;
  bool has_counters = false;
  std::vector<uint64_t> counters;
  uint64_t inserted = 0;

  if (start_phase <= 1) {
    // ---- Phase 1: partitioned scan + pipelined sort (sections 2.2.2,
    // 5.1).  The plan's stop_page is the tail noted before scanning:
    // records appended to later extensions get their keys inserted
    // directly by transactions (section 2.3.1).
    if (build) build->SetPhase(obs::BuildPhase::kScan);
    obs::ScopedSpan scan_span(tracer, "nsf.scan");
    ScanPlan plan;
    if (!phase_blob.empty()) {
      OIB_RETURN_IF_ERROR(DecodeScanPlan(phase_blob, &plan));
      if (plan.parts.empty()) return Status::Corruption("nsf scan plan");
    } else {
      auto planned = PlanPartitionedScan(heap, heap->tail_page(),
                                         options.build_threads);
      if (!planned.ok()) return planned.status();
      plan = std::move(*planned);
    }

    BuildPipeline::ScanHooks hooks;
    hooks.failpoint = "nsf.scan";
    hooks.span_names = kNsfScanSpans;
    hooks.span_name_count = 8;
    hooks.checkpoint = [&](const std::string& blob) -> Status {
      obs::ScopedSpan ckpt_span(tracer, "nsf.ckpt");
      meta.phase = 1;
      meta.phase_blob = blob;
      return SaveBuildMeta(engine_, params.table, meta);
    };
    if (build) {
      hooks.keys_progress = [&](uint64_t n) {
        build->keys_done.fetch_add(n, std::memory_order_relaxed);
      };
    }
    BuildPipeline::ScanResult scan_res;
    Status s = BuildPipeline::RunScan(
        heap, tracer, {{params.key_cols, params.key_types, &sorter}}, &plan,
        hooks, options.sort_checkpoint_every_keys, &scan_res);
    local.keys_extracted = scan_res.keys_extracted;
    local.data_pages_scanned = scan_res.pages_scanned;
    local.checkpoints += scan_res.checkpoints;
    local.scan_ms = scan_res.busy_ms;
    if (!s.ok()) return s;

    scan_span.set_arg(local.keys_extracted);
    scan_span.End();
    if (build) build->SetPhase(obs::BuildPhase::kSortMerge);
    obs::ScopedSpan sort_span(tracer, "nsf.sort.merge_prep");
    OIB_RETURN_IF_ERROR(sorter.FinishWriters());
    OIB_RETURN_IF_ERROR(sorter.PrepareMerge());
    local.sort_runs = sorter.runs().size();

    auto blob = sorter.CheckpointSortPhase("");
    if (!blob.ok()) return blob.status();
    final_sort_blob = *blob;
    meta.phase = 2;
    meta.phase_blob =
        EncodeNsfInsertState(final_sort_blob, false, {}, 0);
    OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, params.table, meta));
  } else {
    OIB_RETURN_IF_ERROR(DecodeNsfInsertState(
        phase_blob, &final_sort_blob, &has_counters, &counters, &inserted));
    auto caller = sorter.ResumeSortPhase(final_sort_blob);
    if (!caller.ok()) return caller.status();
    local.sort_runs = sorter.runs().size();
  }

  // ---- Phase 2: multi-key inserts with periodic commits (2.2.3), fed by
  // the final merge — on its own thread when the build is parallel.
  if (build) build->SetPhase(obs::BuildPhase::kInsert);
  obs::ScopedSpan insert_span(tracer, "nsf.insert");
  auto cursor = sorter.OpenMerge(has_counters ? &counters : nullptr);
  if (!cursor.ok()) return cursor.status();

  Transaction* txn = engine_->Begin();
  auto abort_build = [&](const Status& cause) -> Status {
    (void)engine_->Rollback(txn);
    Status s = Cancel(params.table);
    if (!s.ok()) return s;
    return cause;
  };

  BTree::UniqueConflictFn on_conflict =
      [&](std::string_view key, const Rid& existing, bool existing_pseudo,
          const Rid& new_rid) -> Status {
    (void)existing_pseudo;
    return VerifyUniqueConflict(engine_, txn->id(), params.table,
                                params.key_cols, params.key_types, key,
                                existing, new_rid);
  };

  std::vector<std::pair<std::string, Rid>> batch;
  uint64_t last_ckpt_inserted = inserted;
  batch.reserve(options.ib_keys_per_call);
  // Stream-level unique detection: adjacent equal key values in the
  // sorted stream are two records with the same value — verify with the
  // lock protocol before the tree ever sees them (the in-tree neighbour
  // check below catches IB-vs-transaction conflicts).
  std::string prev_key;
  Rid prev_rid;
  bool has_prev = false;

  auto flush_batch = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    OIB_FAIL_POINT("nsf.insert_batch");
    obs::ScopedSpan batch_span(tracer, "nsf.insert.batch", batch.size());
    std::vector<IndexKeyRef> refs;
    refs.reserve(batch.size());
    for (const auto& [k, r] : batch) refs.push_back(IndexKeyRef{k, r});
    OIB_RETURN_IF_ERROR(tree->IbInsertBatch(txn, refs, params.unique,
                                            on_conflict, &local.ib));
    inserted += batch.size();
    if (build) {
      build->keys_done.fetch_add(batch.size(), std::memory_order_relaxed);
    }
    batch.clear();
    return Status::OK();
  };

  // Consumes one merge batch.  Checkpoints happen at merge-batch
  // boundaries only, where the batch's counters vector identifies the
  // exact merge position (§5.2) matching `inserted` once the pending
  // insert batch is flushed.
  auto consume = [&](const BuildPipeline::Batch& mb) -> Status {
    for (const SortItem& item : mb.items) {
      if (params.unique && has_prev && item.key.view() == prev_key &&
          !(item.rid == prev_rid)) {
        OIB_RETURN_IF_ERROR(VerifyUniqueConflict(
            engine_, txn->id(), params.table, params.key_cols,
            params.key_types, item.key.view(), prev_rid, item.rid));
      }
      prev_key.assign(item.key.data(), item.key.size());
      prev_rid = item.rid;
      has_prev = true;
      batch.emplace_back(const_cast<SortItem&>(item).key.TakeBytes(),
                         item.rid);
      if (batch.size() >= options.ib_keys_per_call) {
        OIB_RETURN_IF_ERROR(flush_batch());
      }
    }
    if (options.ib_checkpoint_every_keys > 0 &&
        inserted + batch.size() - last_ckpt_inserted >=
            options.ib_checkpoint_every_keys) {
      OIB_RETURN_IF_ERROR(flush_batch());
      obs::ScopedSpan ckpt_span(tracer, "nsf.ckpt");
      // Checkpoint the position reached, then commit, then persist: a
      // crash between the commit and the meta write only causes harmless
      // duplicate re-insertions (rejected, no log records) per 2.2.3.
      OIB_RETURN_IF_ERROR(engine_->Commit(txn));
      ++local.commits;
      meta.phase = 2;
      meta.phase_blob =
          EncodeNsfInsertState(final_sort_blob, true, mb.counters, inserted);
      OIB_RETURN_IF_ERROR(SaveBuildMeta(engine_, params.table, meta));
      ++local.checkpoints;
      last_ckpt_inserted = inserted;
      txn = engine_->Begin();
    }
    return Status::OK();
  };

  BuildPipeline::MergeStats merge_stats;
  {
    Status s = BuildPipeline::MergeToConsumer(
        cursor->get(), options.merge_batch_keys, options.merge_queue_depth,
        options.build_threads > 1, consume, &merge_stats);
    if (s.ok()) s = flush_batch();
    if (!s.ok()) {
      if (s.IsInjected()) return s;  // crash-test hook: leave state as-is
      return abort_build(s);
    }
  }
  // Commit edge: the whole insert phase is about to become durable.
  OIB_FAIL_POINT("nsf.commit");
  OIB_RETURN_IF_ERROR(engine_->Commit(txn));
  ++local.commits;
  local.merge_ms = merge_stats.merge_busy_ms;
  local.load_ms = merge_stats.consume_busy_ms;
  insert_span.End();
  if (build) build->SetPhase(obs::BuildPhase::kDone);

  // ---- Phase 3: make the index available for reads.  With data-only
  // locking no update quiesce is needed (section 6.2).
  OIB_RETURN_IF_ERROR(catalog->SetIndexReady(index_id));
  engine_->records()->UnregisterBuild(params.table);
  OIB_RETURN_IF_ERROR(ClearBuildMeta(engine_, params.table));

  LogStats log_after = engine_->log()->stats();
  local.log_records = log_after.records - log_before.records;
  local.log_bytes = log_after.bytes - log_before.bytes;
  local.key_bytes_moved = engine_->runs()->raw_key_bytes() - key_raw_before;
  local.key_bytes_stored =
      engine_->runs()->stored_key_bytes() - key_stored_before;
  local.elapsed_ms = MsSince(t_run);
  if (stats != nullptr) {
    local.quiesce_ms = stats->quiesce_ms;  // preserved from Build()
    local.elapsed_ms += stats->quiesce_ms;
    *stats = local;
  }
  return Status::OK();
}

}  // namespace oib
