#include "core/workload.h"

#include <chrono>

#include "common/key.h"
#include "core/schema.h"
#include "obs/trace.h"

namespace oib {

Workload::~Workload() {
  if (!threads_.empty()) Stop();
}

std::string Workload::MakeKey(uint64_t id, size_t width) {
  std::string digits = std::to_string(id);
  if (digits.size() < width) {
    digits.insert(0, width - digits.size(), '0');
  }
  return digits;
}

std::string Workload::MakeRecord(const std::string& key,
                                 size_t payload_width, Random* rng) {
  return Schema::EncodeRecord({key, rng->NextString(payload_width)});
}

StatusOr<std::vector<Rid>> Workload::Populate(
    Engine* engine, TableId table, uint64_t rows,
    const WorkloadOptions& options) {
  Random rng(options.seed ^ 0xabcdef);
  std::vector<Rid> rids;
  rids.reserve(rows);
  Transaction* txn = engine->Begin();
  for (uint64_t i = 0; i < rows; ++i) {
    std::string key = MakeKey(i, options.key_width);
    auto rid = engine->records()->InsertRecord(
        txn, table, MakeRecord(key, options.payload_width, &rng));
    if (!rid.ok()) {
      (void)engine->Rollback(txn);
      return rid.status();
    }
    rids.push_back(*rid);
    if ((i + 1) % 1024 == 0) {
      OIB_RETURN_IF_ERROR(engine->Commit(txn));
      txn = engine->Begin();
    }
  }
  OIB_RETURN_IF_ERROR(engine->Commit(txn));
  return rids;
}

void Workload::Seed(const std::vector<Rid>& rids, uint64_t next_key_id) {
  shards_.assign(options_.threads, {});
  key_counter_.store(next_key_id);
  // Rebuild keys from ids: Populate assigned key i to the i-th rid.
  for (size_t i = 0; i < rids.size(); ++i) {
    Shard& shard = shards_[i % options_.threads];
    shard.live.emplace_back(rids[i],
                            MakeKey(i, options_.key_width));
  }
}

void Workload::RunTxn(uint32_t worker, Random* rng, ZipfGenerator* zipf,
                      WorkloadStats* stats) {
  Shard& shard = shards_[worker];
  Transaction* txn = engine_->Begin();

  // Shard-local changes staged until commit.
  std::vector<std::pair<Rid, std::string>> added;
  std::vector<size_t> removed_idx;
  struct KeyChange {
    size_t idx;
    std::string new_key;
  };
  std::vector<KeyChange> key_changes;
  WorkloadStats txn_stats;

  bool failed = false;
  for (uint32_t op = 0; op < options_.ops_per_txn && !failed; ++op) {
    double dice = rng->NextDouble();
    Status s;
    if (dice < options_.insert_pct || shard.live.empty()) {
      uint64_t id = key_counter_.fetch_add(1);
      std::string key = MakeKey(id, options_.key_width);
      uint64_t t0 = obs::MonotonicNanos();
      auto rid = engine_->records()->InsertRecord(
          txn, table_, MakeRecord(key, options_.payload_width, rng));
      insert_ns_->Record(obs::MonotonicNanos() - t0);
      if (rid.ok()) {
        added.emplace_back(*rid, std::move(key));
        ++txn_stats.inserts;
      } else {
        s = rid.status();
      }
    } else if (dice < options_.insert_pct + options_.delete_pct) {
      size_t idx = rng->Uniform(shard.live.size());
      bool staged = false;
      for (size_t r : removed_idx) {
        if (r == idx) {
          staged = true;
          break;
        }
      }
      if (staged) continue;
      uint64_t t0 = obs::MonotonicNanos();
      s = engine_->records()->DeleteRecord(txn, table_,
                                           shard.live[idx].first);
      delete_ns_->Record(obs::MonotonicNanos() - t0);
      if (s.ok()) {
        removed_idx.push_back(idx);
        ++txn_stats.deletes;
      }
    } else if (dice <
               options_.insert_pct + options_.delete_pct +
                   options_.update_pct) {
      size_t idx = rng->Uniform(shard.live.size());
      bool staged = false;
      for (size_t r : removed_idx) {
        if (r == idx) {
          staged = true;
          break;
        }
      }
      if (staged) continue;
      std::string key = shard.live[idx].second;
      bool change_key = rng->NextDouble() < options_.update_changes_key;
      if (change_key) {
        key = MakeKey(key_counter_.fetch_add(1), options_.key_width);
      }
      uint64_t t0 = obs::MonotonicNanos();
      s = engine_->records()->UpdateRecord(
          txn, table_, shard.live[idx].first,
          MakeRecord(key, options_.payload_width, rng));
      update_ns_->Record(obs::MonotonicNanos() - t0);
      if (s.ok()) {
        ++txn_stats.updates;
        if (change_key) key_changes.push_back({idx, std::move(key)});
      }
    } else {
      size_t idx = zipf != nullptr
                       ? static_cast<size_t>(zipf->Next()) %
                             shard.live.size()
                       : rng->Uniform(shard.live.size());
      uint64_t t0 = obs::MonotonicNanos();
      if (options_.read_index != kInvalidIndexId) {
        // By-key reads take the normalized form the index stores; the
        // workload's key field is a single string column.
        std::string nkey;
        keyenc::AppendStringColumn(&nkey, shard.live[idx].second);
        s = engine_->records()
                ->ReadRecordByKey(txn, table_, options_.read_index, nkey)
                .status();
      } else {
        s = engine_->records()
                ->ReadRecord(txn, table_, shard.live[idx].first)
                .status();
      }
      read_ns_->Record(obs::MonotonicNanos() - t0);
      if (s.ok()) ++txn_stats.reads;
    }
    if (!s.ok()) {
      if (s.IsUniqueViolation()) {
        ++txn_stats.unique_rejections;
      }
      failed = true;
    }
  }

  bool deliberate_rollback =
      !failed && rng->NextDouble() < options_.rollback_pct;
  if (failed || deliberate_rollback) {
    Status rb = engine_->Rollback(txn);
    if (!rb.ok()) ++stats->rollback_errors;
    if (failed) {
      ++stats->aborts;
    } else {
      ++stats->rollbacks;
      // Rolled-back work is not visible: discard staged changes but keep
      // the read/op counts out of the stats to keep "ops" = applied ops.
    }
    return;
  }

  uint64_t t_commit = obs::MonotonicNanos();
  Status commit = engine_->Commit(txn);
  commit_ns_->Record(obs::MonotonicNanos() - t_commit);
  if (!commit.ok()) {
    ++stats->aborts;
    return;
  }
  ++stats->commits;
  stats->Add(txn_stats);
  ops_done_.fetch_add(txn_stats.ops());
  ops_counter_->Inc(txn_stats.ops());

  // Apply staged shard changes (descending index order for removals).
  std::sort(removed_idx.rbegin(), removed_idx.rend());
  for (const KeyChange& kc : key_changes) {
    shard.live[kc.idx].second = kc.new_key;
  }
  for (size_t idx : removed_idx) {
    shard.live[idx] = shard.live.back();
    shard.live.pop_back();
  }
  for (auto& a : added) shard.live.push_back(std::move(a));
}

void Workload::WorkerLoop(uint32_t worker, uint64_t op_budget) {
  obs::SetCurrentThreadName("workload." + std::to_string(worker));
  Random rng(options_.seed + worker * 7919 + 1);
  // Zipf ranks are drawn over the shard's starting population and mapped
  // onto the live vector by modulo; rank 0 is the hottest row.
  std::unique_ptr<ZipfGenerator> zipf;
  if (options_.read_dist == ReadKeyDist::kZipfian) {
    uint64_t n = std::max<uint64_t>(shards_[worker].live.size(), 1);
    zipf = std::make_unique<ZipfGenerator>(n, options_.zipf_theta,
                                           options_.seed + worker * 131 + 7);
  }
  WorkloadStats& stats = thread_stats_[worker];
  uint64_t done = 0;
  while (!stop_.load(std::memory_order_relaxed) &&
         (op_budget == 0 || done < op_budget)) {
    uint64_t before = stats.ops();
    RunTxn(worker, &rng, zipf.get(), &stats);
    done += stats.ops() - before + 1;  // +1 so failed txns still progress
  }
}

Status Workload::Run(uint64_t total_ops, WorkloadStats* stats) {
  if (shards_.empty()) shards_.assign(options_.threads, {});
  thread_stats_.assign(options_.threads, {});
  stop_.store(false);
  auto t0 = std::chrono::steady_clock::now();
  uint64_t per_thread = total_ops / options_.threads + 1;
  std::vector<std::thread> threads;
  for (uint32_t w = 0; w < options_.threads; ++w) {
    threads.emplace_back([this, w, per_thread] { WorkerLoop(w, per_thread); });
  }
  for (auto& t : threads) t.join();
  WorkloadStats total;
  for (const auto& s : thread_stats_) total.Add(s);
  total.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  if (stats != nullptr) *stats = total;
  return Status::OK();
}

void Workload::Start() {
  if (shards_.empty()) shards_.assign(options_.threads, {});
  thread_stats_.assign(options_.threads, {});
  stop_.store(false);
  for (uint32_t w = 0; w < options_.threads; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w, 0); });
  }
}

WorkloadStats Workload::Stop() {
  stop_.store(true);
  for (auto& t : threads_) t.join();
  threads_.clear();
  WorkloadStats total;
  for (const auto& s : thread_stats_) total.Add(s);
  return total;
}

}  // namespace oib
