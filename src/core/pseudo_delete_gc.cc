#include "core/pseudo_delete_gc.h"

#include "btree/btree_page.h"

namespace oib {

Status PseudoDeleteGC::Run(IndexId index, GcStats* stats) {
  Catalog* catalog = engine_->catalog();
  BTree* tree = catalog->index(index);
  if (tree == nullptr) return Status::NotFound("no such index");
  auto desc = catalog->descriptor(index);
  if (!desc.ok()) return desc.status();
  TableId table = desc->table;
  GcStats local;

  Transaction* txn = engine_->Begin();
  std::vector<PageId> leaves;
  OIB_RETURN_IF_ERROR(tree->CollectLeaves(&leaves));
  size_t page_size = engine_->disk()->page_size();

  for (PageId leaf : leaves) {
    ++local.leaves_scanned;
    // Latch the page just to collect pseudo-deleted keys (2.2.4).
    std::vector<std::pair<std::string, Rid>> candidates;
    {
      auto guard = engine_->pool()->FetchRead(leaf);
      if (!guard.ok()) return guard.status();
      BTreePage page(const_cast<char*>(guard->data()), page_size);
      if (!page.is_leaf()) continue;  // structure changed under us
      for (int i = 0; i < page.count(); ++i) {
        if ((page.FlagsAt(i) & kEntryPseudoDeleted) != 0) {
          candidates.emplace_back(std::string(page.KeyAt(i)),
                                  page.RidAt(i));
        }
      }
    }
    local.pseudo_seen += candidates.size();
    for (const auto& [key, rid] : candidates) {
      // Conditional instant share lock: granted means the deleting
      // transaction has ended (committed), so the key is garbage.
      LockOptions opt;
      opt.conditional = true;
      opt.instant = true;
      Status lock = engine_->locks()->Lock(
          txn->id(), RecordLockId(table, rid), LockMode::kS, opt);
      if (lock.IsBusy()) {
        ++local.skipped_locked;
        continue;
      }
      OIB_RETURN_IF_ERROR(lock);
      Status s = tree->GcRemove(key, rid);
      if (s.ok()) {
        ++local.removed;
      } else if (!s.IsNotFound() && !s.IsInvalidArgument()) {
        // NotFound/InvalidArgument: the entry was removed or reactivated
        // since we released the latch; both are fine.
        (void)engine_->Rollback(txn);
        return s;
      }
    }
  }
  OIB_RETURN_IF_ERROR(engine_->Commit(txn));
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace oib
