// OfflineIndexBuilder: the "current DBMSs" baseline the paper argues
// against (section 1) — updates to the table are disallowed for the whole
// duration of the build via an X table lock.  With exclusive access the
// build is a clean scan -> sort -> bottom-up load with no logging, no
// duplicate handling, and no side-file.  The scan/sort/load machinery is
// the shared BuildPipeline: the heap is scanned in build_threads page
// partitions and the final merge overlaps the bottom-up load.  Benches
// use offline as the availability baseline and as the clustering /
// throughput gold standard.

#include <chrono>

#include "btree/bulk_loader.h"
#include "common/failpoint.h"
#include "core/build_pipeline.h"
#include "core/index_builder.h"
#include "core/schema.h"
#include "obs/trace.h"
#include "sort/external_sorter.h"

namespace oib {

namespace {

constexpr const char* kOfflineScanSpans[] = {
    "offline.scan.p0", "offline.scan.p1", "offline.scan.p2",
    "offline.scan.p3", "offline.scan.p4", "offline.scan.p5",
    "offline.scan.p6", "offline.scan.p7"};

}  // namespace

Status OfflineIndexBuilder::Build(const BuildParams& params, IndexId* out,
                                  BuildStats* stats) {
  Catalog* catalog = engine_->catalog();
  HeapFile* heap = catalog->table(params.table);
  if (heap == nullptr) return Status::NotFound("no such table");
  const Options& options = engine_->options();
  LogStats log_before = engine_->log()->stats();
  uint64_t key_raw_before = engine_->runs()->raw_key_bytes();
  uint64_t key_stored_before = engine_->runs()->stored_key_bytes();
  BuildStats local;

  auto t0 = std::chrono::steady_clock::now();
  // The whole offline build runs under the X lock, so the quiesce span
  // covers everything up to the commit that releases it.
  obs::ScopedSpan quiesce_span(engine_->tracer(), "offline.quiesce");
  Transaction* txn = engine_->Begin();
  LockOptions opt;
  opt.timeout_ms = 60'000;
  OIB_RETURN_IF_ERROR(engine_->locks()->Lock(
      txn->id(), TableLockId(params.table), LockMode::kX, opt));

  auto desc = catalog->CreateIndex(params.name, params.table, params.unique,
                                   params.key_cols, BuildAlgo::kOffline,
                                   params.key_types);
  if (!desc.ok()) {
    (void)engine_->Rollback(txn);
    return desc.status();
  }
  IndexId id = desc->id;
  BTree* tree = catalog->index(id);

  auto abort_build = [&](const Status& cause) -> Status {
    (void)catalog->DropIndex(id);
    (void)engine_->Rollback(txn);
    return cause;
  };

  // Partitioned scan + per-partition run generation.  The X lock freezes
  // the chain, so the plan covers every record.
  obs::ScopedSpan scan_span(engine_->tracer(), "offline.scan");
  ExternalSorter sorter(engine_->runs(), &options);
  ScanPlan plan;
  {
    auto planned =
        PlanPartitionedScan(heap, kInvalidPageId, options.build_threads);
    if (!planned.ok()) return abort_build(planned.status());
    plan = std::move(*planned);
  }
  BuildPipeline::ScanHooks hooks;
  hooks.span_names = kOfflineScanSpans;
  hooks.span_name_count = 8;
  BuildPipeline::ScanResult scan_res;
  {
    Status s = BuildPipeline::RunScan(
        heap, engine_->tracer(),
        {{params.key_cols, params.key_types, &sorter}}, &plan, hooks,
        /*checkpoint_every_keys=*/0, &scan_res);
    if (s.ok()) s = sorter.FinishWriters();
    if (s.ok()) s = sorter.PrepareMerge();
    if (!s.ok()) return abort_build(s);
  }
  local.keys_extracted = scan_res.keys_extracted;
  local.data_pages_scanned = scan_res.pages_scanned;
  local.scan_ms = scan_res.busy_ms;
  local.sort_runs = sorter.runs().size();
  scan_span.set_arg(local.keys_extracted);
  scan_span.End();
  obs::ScopedSpan load_span(engine_->tracer(), "offline.load");

  // Merge -> bottom-up load, overlapped when the build is parallel.
  // Exclusive access means every record is committed, so a unique
  // violation is detectable directly from adjacent sorted keys.
  auto cursor = sorter.OpenMerge();
  if (!cursor.ok()) return abort_build(cursor.status());
  BulkLoader loader(tree, engine_->pool(), &options);
  {
    Status s = loader.Begin();
    if (!s.ok()) {
      loader.Abandon();
      return abort_build(s);
    }
  }
  std::string prev_key;
  bool has_prev = false;
  // The bulk loader writes leaves directly (no tree mutation choke
  // points), so the hash mirror is fed here, alongside each Add.
  HashIndex* hash = catalog->hash_index(id);
  auto consume = [&](const BuildPipeline::Batch& batch) -> Status {
    for (const SortItem& item : batch.items) {
      if (params.unique && has_prev && item.key.view() == prev_key) {
        return Status::UniqueViolation(
            "duplicate key value in offline build");
      }
      OIB_RETURN_IF_ERROR(loader.Add(item.key, item.rid));
      if (hash != nullptr) {
        OIB_FAIL_POINT("hash.populate");
        hash->BulkAdd(item.key.view(), item.rid, 0);
      }
      prev_key.assign(item.key.data(), item.key.size());
      has_prev = true;
      ++local.keys_loaded;
    }
    return Status::OK();
  };
  BuildPipeline::MergeStats merge_stats;
  {
    Status s = BuildPipeline::MergeToConsumer(
        cursor->get(), options.merge_batch_keys, options.merge_queue_depth,
        options.build_threads > 1, consume, &merge_stats);
    if (!s.ok()) {
      // Rollback latches pages and takes txn-level mutexes; the loader's
      // open leaf/level latches must go first.
      loader.Abandon();
      return abort_build(s);
    }
  }
  {
    Status s = loader.Finish();
    if (s.ok()) s = engine_->pool()->FlushAll();  // unlogged pages
    if (!s.ok()) {
      loader.Abandon();
      return abort_build(s);
    }
  }

  local.merge_ms = merge_stats.merge_busy_ms;
  local.load_ms = merge_stats.consume_busy_ms;
  load_span.set_arg(local.keys_loaded);
  load_span.End();
  OIB_RETURN_IF_ERROR(catalog->SetIndexReady(id));
  OIB_RETURN_IF_ERROR(engine_->Commit(txn));  // releases the X lock

  local.quiesce_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  local.elapsed_ms = local.quiesce_ms;
  LogStats log_after = engine_->log()->stats();
  local.log_records = log_after.records - log_before.records;
  local.log_bytes = log_after.bytes - log_before.bytes;
  local.key_bytes_moved = engine_->runs()->raw_key_bytes() - key_raw_before;
  local.key_bytes_stored =
      engine_->runs()->stored_key_bytes() - key_stored_before;
  if (out != nullptr) *out = id;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace oib
