// OfflineIndexBuilder: the "current DBMSs" baseline the paper argues
// against (section 1) — updates to the table are disallowed for the whole
// duration of the build via an X table lock.  With exclusive access the
// build is a clean scan -> sort -> bottom-up load with no logging, no
// duplicate handling, and no side-file.  Benches use it as the
// availability baseline and as the clustering/throughput gold standard.

#include <chrono>

#include "btree/bulk_loader.h"
#include "common/failpoint.h"
#include "core/index_builder.h"
#include "core/schema.h"
#include "obs/trace.h"
#include "sort/external_sorter.h"

namespace oib {

Status OfflineIndexBuilder::Build(const BuildParams& params, IndexId* out,
                                  BuildStats* stats) {
  Catalog* catalog = engine_->catalog();
  HeapFile* heap = catalog->table(params.table);
  if (heap == nullptr) return Status::NotFound("no such table");
  const Options& options = engine_->options();
  LogStats log_before = engine_->log()->stats();
  BuildStats local;

  auto t0 = std::chrono::steady_clock::now();
  // The whole offline build runs under the X lock, so the quiesce span
  // covers everything up to the commit that releases it.
  obs::ScopedSpan quiesce_span(engine_->tracer(), "offline.quiesce");
  Transaction* txn = engine_->Begin();
  LockOptions opt;
  opt.timeout_ms = 60'000;
  OIB_RETURN_IF_ERROR(engine_->locks()->Lock(
      txn->id(), TableLockId(params.table), LockMode::kX, opt));

  auto desc = catalog->CreateIndex(params.name, params.table, params.unique,
                                   params.key_cols, BuildAlgo::kOffline);
  if (!desc.ok()) {
    (void)engine_->Rollback(txn);
    return desc.status();
  }
  IndexId id = desc->id;
  BTree* tree = catalog->index(id);

  auto abort_build = [&](const Status& cause) -> Status {
    (void)catalog->DropIndex(id);
    (void)engine_->Rollback(txn);
    return cause;
  };

  // Scan + sort.
  auto t_scan = std::chrono::steady_clock::now();
  obs::ScopedSpan scan_span(engine_->tracer(), "offline.scan");
  ExternalSorter sorter(engine_->runs(), &options);
  PageId page = heap->first_page();
  while (page != kInvalidPageId) {
    std::vector<std::pair<Rid, std::string>> recs;
    auto next = heap->ExtractPage(page, &recs);
    if (!next.ok()) return abort_build(next.status());
    for (const auto& [rid, rec] : recs) {
      auto key = Schema::ExtractKey(rec, params.key_cols);
      if (!key.ok()) return abort_build(key.status());
      Status s = sorter.Add(std::move(*key), rid);
      if (!s.ok()) return abort_build(s);
    }
    ++local.data_pages_scanned;
    local.keys_extracted += recs.size();
    page = *next;
  }
  {
    Status s = sorter.FinishInput();
    if (s.ok()) s = sorter.PrepareMerge();
    if (!s.ok()) return abort_build(s);
  }
  local.sort_runs = sorter.runs().size();
  local.scan_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t_scan)
                      .count();
  scan_span.set_arg(local.keys_extracted);
  scan_span.End();
  auto t_load = std::chrono::steady_clock::now();
  obs::ScopedSpan load_span(engine_->tracer(), "offline.load");

  // Bottom-up load; exclusive access means every record is committed, so
  // a unique violation is detectable directly from adjacent sorted keys.
  auto cursor = sorter.OpenMerge();
  if (!cursor.ok()) return abort_build(cursor.status());
  BulkLoader loader(tree, engine_->pool(), &options);
  {
    Status s = loader.Begin();
    if (!s.ok()) return abort_build(s);
  }
  std::string prev_key;
  bool has_prev = false;
  for (;;) {
    SortItem item;
    auto more = (*cursor)->Next(&item);
    if (!more.ok()) return abort_build(more.status());
    if (!*more) break;
    if (params.unique && has_prev && item.key == prev_key) {
      return abort_build(
          Status::UniqueViolation("duplicate key value in offline build"));
    }
    Status s = loader.Add(item.key, item.rid);
    if (!s.ok()) return abort_build(s);
    prev_key = std::move(item.key);
    has_prev = true;
    ++local.keys_loaded;
  }
  {
    Status s = loader.Finish();
    if (s.ok()) s = engine_->pool()->FlushAll();  // unlogged pages
    if (!s.ok()) return abort_build(s);
  }

  local.load_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t_load)
                      .count();
  load_span.set_arg(local.keys_loaded);
  load_span.End();
  OIB_RETURN_IF_ERROR(catalog->SetIndexReady(id));
  OIB_RETURN_IF_ERROR(engine_->Commit(txn));  // releases the X lock

  local.quiesce_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  LogStats log_after = engine_->log()->stats();
  local.log_records = log_after.records - log_before.records;
  local.log_bytes = log_after.bytes - log_before.bytes;
  if (out != nullptr) *out = id;
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace oib
