#include "core/engine.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "common/coding.h"
#include "common/failpoint.h"
#include "core/index_builder.h"

namespace oib {

namespace {

constexpr char kMasterLsnKey[] = "master_lsn";

// Options-then-environment: OIB_FAILPOINTS can extend or override what
// the embedding application configured, which is what a crash harness
// driving a stock binary needs.
void ConfigureFailpoints(const Options& options) {
  FailPointRegistry& reg = FailPointRegistry::Instance();
  if (options.failpoint_seed != 0) reg.SetSeed(options.failpoint_seed);
  if (!options.failpoints.empty()) {
    Status s = reg.ConfigureFromSpec(options.failpoints);
    if (!s.ok()) {
      std::fprintf(stderr, "oib: bad Options::failpoints spec: %s\n",
                   s.ToString().c_str());
    }
  }
  Status s = reg.ConfigureFromEnv();
  if (!s.ok()) {
    std::fprintf(stderr, "oib: bad OIB_FAILPOINTS spec: %s\n",
                 s.ToString().c_str());
  }
}

}  // namespace

StatusOr<std::unique_ptr<Env>> Env::OnFiles(const std::string& dir,
                                            const Options& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("create env dir " + dir + ": " + ec.message());
  }
  auto env = std::make_unique<Env>();
  auto disk = FileDisk::Open(dir + "/pages", options.page_size);
  if (!disk.ok()) return disk.status();
  env->disk = std::move(*disk);
  OIB_RETURN_IF_ERROR(env->log.AttachFile(dir + "/wal"));
  OIB_RETURN_IF_ERROR(env->runs.AttachDir(dir + "/runs"));
  return env;
}

Engine::Engine(const Options& options, Env* env)
    : options_(options),
      env_(env),
      pool_(env->disk.get(), options.buffer_pool_pages,
            options.buffer_pool_shards),
      locks_(options.lock_timeout_ms),
      txns_(&env->log, &locks_, &rms_),
      heap_rm_(&pool_, &txns_),
      btree_rm_(&pool_, &txns_),
      sidefile_rm_(&pool_),
      catalog_(&pool_, &txns_, env->disk.get(), &options_),
      records_(&catalog_, &locks_, &txns_, &options_) {}

void Engine::WireUp() {
  rms_.Register(&heap_rm_);
  rms_.Register(&btree_rm_);
  rms_.Register(&sidefile_rm_);
  pool_.SetWalFlushHook([this](Lsn lsn) { return env_->log.Flush(lsn); });
  btree_rm_.SetResolver(
      [this](IndexId id) { return catalog_.index(id); });
  records_.AttachHeapRm(&heap_rm_);

  obs::MetricsRegistry* registry = &obs::MetricsRegistry::Default();
  pool_.AttachMetrics(registry);
  locks_.AttachMetrics(registry);
  env_->log.AttachMetrics(registry);
  env_->runs.AttachMetrics(registry);
  records_.AttachMetrics(registry);
  FailPointRegistry::Instance().AttachMetrics(registry);

  // Sticky-on: the profiler is process-wide, so an engine opened with the
  // flag clear must not silently disable another engine's profiling.
  if (options_.obs_lock_profile) sync::prof::SetEnabled(true);
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(const Options& options,
                                               Env* env) {
  OIB_RETURN_IF_ERROR(ValidateOptions(options));
  ConfigureFailpoints(options);
  OIB_RETURN_IF_ERROR(env->log.ConfigureRing(options.wal_ring_bytes));
  auto engine = std::unique_ptr<Engine>(new Engine(options, env));
  engine->WireUp();
  return engine;
}

StatusOr<std::unique_ptr<Engine>> Engine::Restart(const Options& options,
                                                  Env* env,
                                                  RecoveryStats* stats) {
  OIB_RETURN_IF_ERROR(ValidateOptions(options));
  ConfigureFailpoints(options);
  OIB_RETURN_IF_ERROR(env->log.ConfigureRing(options.wal_ring_bytes));
  auto engine = std::unique_ptr<Engine>(new Engine(options, env));
  engine->WireUp();

  Lsn checkpoint_lsn = kInvalidLsn;
  {
    std::string blob;
    Status s = env->disk->GetMeta(kMasterLsnKey, &blob);
    if (s.ok() && blob.size() == 8) {
      checkpoint_lsn = DecodeFixed64(blob.data());
    } else if (!s.IsNotFound() && !s.ok()) {
      return s;
    }
  }

  RecoveryManager recovery(&env->log, &engine->txns_, &engine->rms_,
                           options.recovery_threads);
  std::vector<std::pair<TxnId, Lsn>> losers;
  {
    obs::ScopedSpan span(&obs::Tracer::Default(), "recovery.analysis_redo");
    OIB_RETURN_IF_ERROR(
        recovery.AnalyzeAndRedo(checkpoint_lsn, &losers, stats));
    // Pages are now current: catalog objects can be re-opened.
    OIB_RETURN_IF_ERROR(engine->catalog_.Load());
    // Interrupted index builds re-attach before undo, so that rollback of
    // loser transactions sees the Index_Build flag and scan position.
    OIB_RETURN_IF_ERROR(ReattachInterruptedBuilds(engine.get()));
  }
  {
    obs::ScopedSpan span(&obs::Tracer::Default(), "recovery.undo",
                         losers.size());
    OIB_RETURN_IF_ERROR(recovery.UndoLosers(losers, stats));
  }
  return engine;
}

obs::BuildProgress Engine::GetBuildProgress(TableId table) {
  obs::BuildProgress p;
  std::shared_ptr<ActiveBuild> build = records_.GetBuild(table);
  if (build == nullptr) return p;
  p.active = build->index_build.load(std::memory_order_relaxed);
  p.algo = build->algo == BuildAlgo::kSf
               ? "sf"
               : (build->algo == BuildAlgo::kNsf ? "nsf" : "none");
  p.phase =
      static_cast<obs::BuildPhase>(build->phase.load(std::memory_order_relaxed));
  Rid cur = build->CurrentRid();
  p.current_rid = PackRid(cur);
  HeapFile* heap = catalog_.table(table);
  p.table_tail_page = heap != nullptr ? heap->tail_page() : 0;
  if (cur == Rid::Infinity() || p.phase > obs::BuildPhase::kScan) {
    // Scan finished (or this is an NSF build past its scan).
    p.scan_page = p.table_tail_page;
    p.scan_fraction = 1.0;
  } else {
    p.scan_page = cur.page;
    p.scan_fraction =
        p.table_tail_page > 0
            ? std::min(1.0, static_cast<double>(p.scan_page) /
                                static_cast<double>(p.table_tail_page))
            : 0.0;
  }
  p.keys_done = build->keys_done.load(std::memory_order_relaxed);
  p.side_file_appended =
      build->side_file_appended.load(std::memory_order_relaxed);
  p.side_file_applied =
      build->side_file_applied.load(std::memory_order_relaxed);
  p.side_file_backlog = p.side_file_appended > p.side_file_applied
                            ? p.side_file_appended - p.side_file_applied
                            : 0;
  uint64_t elapsed_ns = obs::MonotonicNanos() - build->start_ns;
  p.elapsed_ms = static_cast<double>(elapsed_ns) / 1e6;
  p.keys_per_sec = elapsed_ns > 0
                       ? static_cast<double>(p.keys_done) * 1e9 /
                             static_cast<double>(elapsed_ns)
                       : 0.0;
  return p;
}

Status Engine::Checkpoint() {
  obs::ScopedSpan span(&obs::Tracer::Default(), "engine.checkpoint");
  OIB_RETURN_IF_ERROR(pool_.FlushAll());
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  rec.redo = EncodeCheckpointPayload(txns_.ActiveTransactions());
  OIB_RETURN_IF_ERROR(env_->log.Append(&rec));
  OIB_RETURN_IF_ERROR(env_->log.Flush(rec.lsn));
  std::string blob;
  PutFixed64(&blob, rec.lsn);
  return env_->disk->PutMeta(kMasterLsnKey, blob);
}

Status Engine::FlushAll() {
  OIB_RETURN_IF_ERROR(env_->log.FlushAll());
  return pool_.FlushAll();
}

Status Engine::SimulateCrash() {
  pool_.DiscardAll();
  env_->log.DropUnflushed();
  env_->runs.DropUnflushed();
  return Status::OK();
}

}  // namespace oib
