#include "core/engine.h"

#include "common/coding.h"
#include "core/index_builder.h"

namespace oib {

namespace {
constexpr char kMasterLsnKey[] = "master_lsn";
}  // namespace

Engine::Engine(const Options& options, Env* env)
    : options_(options),
      env_(env),
      pool_(env->disk.get(), options.buffer_pool_pages),
      locks_(options.lock_timeout_ms),
      txns_(&env->log, &locks_, &rms_),
      heap_rm_(&pool_, &txns_),
      btree_rm_(&pool_, &txns_),
      sidefile_rm_(&pool_),
      catalog_(&pool_, &txns_, env->disk.get(), &options_),
      records_(&catalog_, &locks_, &txns_, &options_) {}

void Engine::WireUp() {
  rms_.Register(&heap_rm_);
  rms_.Register(&btree_rm_);
  rms_.Register(&sidefile_rm_);
  pool_.SetWalFlushHook([this](Lsn lsn) { return env_->log.Flush(lsn); });
  btree_rm_.SetResolver(
      [this](IndexId id) { return catalog_.index(id); });
  records_.AttachHeapRm(&heap_rm_);
}

StatusOr<std::unique_ptr<Engine>> Engine::Open(const Options& options,
                                               Env* env) {
  auto engine = std::unique_ptr<Engine>(new Engine(options, env));
  engine->WireUp();
  return engine;
}

StatusOr<std::unique_ptr<Engine>> Engine::Restart(const Options& options,
                                                  Env* env,
                                                  RecoveryStats* stats) {
  auto engine = std::unique_ptr<Engine>(new Engine(options, env));
  engine->WireUp();

  Lsn checkpoint_lsn = kInvalidLsn;
  {
    std::string blob;
    Status s = env->disk->GetMeta(kMasterLsnKey, &blob);
    if (s.ok() && blob.size() == 8) {
      checkpoint_lsn = DecodeFixed64(blob.data());
    } else if (!s.IsNotFound() && !s.ok()) {
      return s;
    }
  }

  RecoveryManager recovery(&env->log, &engine->txns_, &engine->rms_);
  std::vector<std::pair<TxnId, Lsn>> losers;
  OIB_RETURN_IF_ERROR(
      recovery.AnalyzeAndRedo(checkpoint_lsn, &losers, stats));
  // Pages are now current: catalog objects can be re-opened.
  OIB_RETURN_IF_ERROR(engine->catalog_.Load());
  // Interrupted index builds re-attach before undo, so that rollback of
  // loser transactions sees the Index_Build flag and scan position.
  OIB_RETURN_IF_ERROR(ReattachInterruptedBuilds(engine.get()));
  OIB_RETURN_IF_ERROR(recovery.UndoLosers(losers, stats));
  return engine;
}

Status Engine::Checkpoint() {
  OIB_RETURN_IF_ERROR(pool_.FlushAll());
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  rec.redo = EncodeCheckpointPayload(txns_.ActiveTransactions());
  OIB_RETURN_IF_ERROR(env_->log.Append(&rec));
  OIB_RETURN_IF_ERROR(env_->log.Flush(rec.lsn));
  std::string blob;
  PutFixed64(&blob, rec.lsn);
  return env_->disk->PutMeta(kMasterLsnKey, blob);
}

Status Engine::FlushAll() {
  OIB_RETURN_IF_ERROR(env_->log.FlushAll());
  return pool_.FlushAll();
}

Status Engine::SimulateCrash() {
  pool_.DiscardAll();
  env_->log.DropUnflushed();
  env_->runs.DropUnflushed();
  return Status::OK();
}

}  // namespace oib
