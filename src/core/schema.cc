#include "core/schema.h"

#include "common/coding.h"

namespace oib {

std::string Schema::EncodeRecord(const std::vector<std::string>& fields) {
  std::string out;
  PutFixed16(&out, static_cast<uint16_t>(fields.size()));
  for (const std::string& f : fields) {
    PutFixed16(&out, static_cast<uint16_t>(f.size()));
    out.append(f);
  }
  return out;
}

Status Schema::DecodeRecord(std::string_view record,
                            std::vector<std::string>* fields) {
  BufferReader r(record);
  uint16_t n;
  if (!r.GetFixed16(&n)) return Status::Corruption("record header");
  fields->clear();
  fields->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t len;
    if (!r.GetFixed16(&len) || r.remaining() < len) {
      return Status::Corruption("record field");
    }
    fields->emplace_back(record.substr(r.position(), len));
    r.Skip(len);
  }
  return Status::OK();
}

StatusOr<std::string> Schema::ExtractKey(
    std::string_view record, const std::vector<uint32_t>& key_cols) {
  std::vector<std::string> fields;
  OIB_RETURN_IF_ERROR(DecodeRecord(record, &fields));
  std::string key;
  for (uint32_t col : key_cols) {
    if (col >= fields.size()) {
      return Status::Corruption("key column out of range");
    }
    key.append(fields[col]);
  }
  return key;
}

}  // namespace oib
