#include "core/schema.h"

#include "common/coding.h"

namespace oib {

std::string Schema::EncodeRecord(const std::vector<std::string>& fields) {
  std::string out;
  PutFixed16(&out, static_cast<uint16_t>(fields.size()));
  for (const std::string& f : fields) {
    PutFixed16(&out, static_cast<uint16_t>(f.size()));
    out.append(f);
  }
  return out;
}

Status Schema::DecodeRecord(std::string_view record,
                            std::vector<std::string>* fields) {
  BufferReader r(record);
  uint16_t n;
  if (!r.GetFixed16(&n)) return Status::Corruption("record header");
  fields->clear();
  fields->reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t len;
    if (!r.GetFixed16(&len) || r.remaining() < len) {
      return Status::Corruption("record field");
    }
    fields->emplace_back(record.substr(r.position(), len));
    r.Skip(len);
  }
  return Status::OK();
}

std::string Schema::EncodeInt64Field(int64_t value) {
  std::string out;
  PutFixed64(&out, static_cast<uint64_t>(value));
  return out;
}

Status Schema::DecodeInt64Field(std::string_view field, int64_t* value) {
  if (field.size() != 8) return Status::Corruption("int64 field size");
  *value = static_cast<int64_t>(DecodeFixed64(field.data()));
  return Status::OK();
}

Status Schema::ExtractKeyTo(std::string_view record,
                            const std::vector<uint32_t>& key_cols,
                            const std::vector<KeyColumnType>& key_types,
                            std::string* key) {
  if (!key_types.empty() && key_types.size() != key_cols.size()) {
    return Status::InvalidArgument("key_types/key_cols size mismatch");
  }
  // Walk the record once, collecting field views; no field copies.
  BufferReader r(record);
  uint16_t n;
  if (!r.GetFixed16(&n)) return Status::Corruption("record header");
  std::vector<std::string_view> fields;
  fields.reserve(n);
  for (uint16_t i = 0; i < n; ++i) {
    uint16_t len;
    if (!r.GetFixed16(&len) || r.remaining() < len) {
      return Status::Corruption("record field");
    }
    fields.push_back(record.substr(r.position(), len));
    r.Skip(len);
  }
  std::string out;
  out.swap(*key);  // reuse the caller's capacity
  out.clear();
  for (size_t i = 0; i < key_cols.size(); ++i) {
    uint32_t col = key_cols[i];
    if (col >= fields.size()) {
      key->swap(out);
      return Status::Corruption("key column out of range");
    }
    KeyColumnType type =
        key_types.empty() ? KeyColumnType::kString : key_types[i];
    switch (type) {
      case KeyColumnType::kString:
        keyenc::AppendStringColumn(&out, fields[col]);
        break;
      case KeyColumnType::kInt64: {
        int64_t v;
        Status s = DecodeInt64Field(fields[col], &v);
        if (!s.ok()) {
          key->swap(out);
          return s;
        }
        keyenc::AppendInt64Column(&out, v);
        break;
      }
    }
  }
  key->swap(out);
  return Status::OK();
}

StatusOr<std::string> Schema::ExtractKey(
    std::string_view record, const std::vector<uint32_t>& key_cols) {
  std::string key;
  OIB_RETURN_IF_ERROR(ExtractKeyTo(record, key_cols, {}, &key));
  return key;
}

StatusOr<std::string> Schema::ExtractKey(
    std::string_view record, const std::vector<uint32_t>& key_cols,
    const std::vector<KeyColumnType>& key_types) {
  std::string key;
  OIB_RETURN_IF_ERROR(ExtractKeyTo(record, key_cols, key_types, &key));
  return key;
}

}  // namespace oib
