// Online index builders — the paper's core contribution.
//
//  * OfflineIndexBuilder — the "current DBMSs" baseline (section 1): an X
//    table lock blocks every update for the whole build; scan, sort, and
//    bottom-up load run without interference.
//  * NsfIndexBuilder — algorithm NSF (section 2): short quiesce to create
//    the descriptor, lock-free latched scan, restartable sort, multi-key
//    logged inserts into the shared tree with duplicate rejection and the
//    specialized IB split, periodic highest-key checkpoints with commits.
//  * SfIndexBuilder — algorithm SF (section 3): no quiesce ever; the scan
//    position (Current-RID) drives per-transaction visibility; keys are
//    sorted and loaded bottom-up with no logging; transactions' concurrent
//    changes accumulate in a side-file that IB drains at the end (logged,
//    checkpointed, committed in batches) before flipping the Index_Build
//    flag.  BuildMany() builds several indexes in one data scan
//    (section 6.2).
//
// All builders are restartable: progress checkpoints live in disk
// metadata (keyed by table), and Resume() continues an interrupted build
// after Engine::Restart.  ReattachInterruptedBuilds() (called during
// restart) re-registers the ActiveBuild state so transactions maintain
// half-built indexes correctly even before Resume runs.

#ifndef OIB_CORE_INDEX_BUILDER_H_
#define OIB_CORE_INDEX_BUILDER_H_

#include <string>
#include <vector>

#include "btree/btree.h"
#include "core/engine.h"

namespace oib {

struct BuildParams {
  std::string name;
  TableId table = 0;
  bool unique = false;
  std::vector<uint32_t> key_cols;
  // Normalized-encoding column types, parallel to key_cols (empty =
  // all kString).
  std::vector<KeyColumnType> key_types;
};

struct BuildStats {
  uint64_t keys_extracted = 0;
  uint64_t data_pages_scanned = 0;
  uint64_t sort_runs = 0;
  BTree::IbStats ib;  // NSF insert-phase stats
  uint64_t keys_loaded = 0;          // SF/offline bottom-up load
  uint64_t side_file_applied = 0;    // SF
  uint64_t side_file_skipped_stale = 0;  // SF restart fences
  uint64_t checkpoints = 0;
  uint64_t commits = 0;
  double quiesce_ms = 0.0;  // time updates were blocked (NSF descriptor /
                            // offline whole build)
  // Phase timings.  With the parallel BuildPipeline, stages overlap (N
  // scan workers; merge runs concurrently with load/insert), so these are
  // per-stage *busy* times: scan_ms sums every scan worker's active time,
  // merge_ms is the final merge's producer-side time, load_ms the
  // consumer's (bulk load / IbInsertBatch) time.  They no longer add up
  // to wall clock — elapsed_ms is the build's wall-clock duration.
  double scan_ms = 0.0;   // partitioned scan + run generation (summed busy)
  double merge_ms = 0.0;  // final N-way merge (busy)
  double load_ms = 0.0;   // bottom-up load (SF/offline) / key inserts (NSF)
  double apply_ms = 0.0;  // side-file application (SF, wall clock)
  double elapsed_ms = 0.0;  // whole build, wall clock
  // Log volume attributable to the build (delta of LogManager stats
  // between build start and end; includes transaction traffic if any ran
  // concurrently — benches isolate as needed).
  uint64_t log_records = 0;
  uint64_t log_bytes = 0;
  // Key-byte movement through the sort/merge path (delta of RunStore
  // counters over the build): raw normalized key bytes submitted vs the
  // prefix-compressed bytes actually written into runs.
  uint64_t key_bytes_moved = 0;
  uint64_t key_bytes_stored = 0;
};

class OfflineIndexBuilder {
 public:
  explicit OfflineIndexBuilder(Engine* engine) : engine_(engine) {}
  Status Build(const BuildParams& params, IndexId* out,
               BuildStats* stats = nullptr);

 private:
  Engine* engine_;
};

class NsfIndexBuilder {
 public:
  explicit NsfIndexBuilder(Engine* engine) : engine_(engine) {}

  Status Build(const BuildParams& params, IndexId* out,
               BuildStats* stats = nullptr);
  // Continues an interrupted NSF build on `table` after restart.
  Status Resume(TableId table, IndexId* out, BuildStats* stats = nullptr);
  // Section 2.3.2: cancel an in-progress build (quiesces updates briefly
  // to drop the descriptor).
  Status Cancel(TableId table);

 private:
  Status Run(const BuildParams& params, IndexId index_id, int start_phase,
             std::string phase_blob, BuildStats* stats);
  Engine* engine_;
};

class SfIndexBuilder {
 public:
  explicit SfIndexBuilder(Engine* engine) : engine_(engine) {}

  Status Build(const BuildParams& params, IndexId* out,
               BuildStats* stats = nullptr);
  // Section 6.2: multiple indexes in one scan of the data.
  Status BuildMany(const std::vector<BuildParams>& params,
                   std::vector<IndexId>* out, BuildStats* stats = nullptr);
  Status Resume(TableId table, BuildStats* stats = nullptr);
  Status Cancel(TableId table);

 private:
  Status Run(TableId table, std::vector<IndexId> ids, int start_phase,
             std::string phase_blob, BuildStats* stats);
  Engine* engine_;
};

// Restart hook: re-registers ActiveBuild state for every interrupted
// NSF/SF build found in the catalog, adding SF restart fences so stale
// pre-crash side-file entries are skipped during apply (see DESIGN.md).
Status ReattachInterruptedBuilds(Engine* engine);

// Shared by NSF inserts and SF load/apply for unique indexes: the paper's
// verification protocol — S-lock both records, recheck that the duplicate
// key-value condition still exists (section 2.2.3).  Returns OK when the
// insert may proceed, UniqueViolation when the build must be terminated.
Status VerifyUniqueConflict(Engine* engine, TxnId locker, TableId table,
                            const std::vector<uint32_t>& key_cols,
                            const std::vector<KeyColumnType>& key_types,
                            std::string_view key, const Rid& existing_rid,
                            const Rid& new_rid);

// --- build-progress metadata (shared by builders and restart) ---

std::string BuildMetaKey(TableId table);

// Restart fence: a pre-crash side-file entry (ordinal < before_ordinal)
// whose RID falls in [rid_floor, rid_ceiling) describes a change the
// resumed scan will re-extract, so it must be skipped during apply.  With
// per-partition checkpoints there is one fence per re-scan region (each
// partition's saved position up to its bound); the single-frontier case is
// the special case {ordinal, current_rid, UINT64_MAX}.
struct SideFileFence {
  uint64_t before_ordinal = 0;  // applies to entries appended before this
  uint64_t rid_floor = 0;       // packed RID, inclusive
  uint64_t rid_ceiling = ~0ull;  // packed RID, exclusive
};

struct BuildMeta {
  BuildAlgo algo = BuildAlgo::kNone;
  std::vector<IndexId> indexes;
  int phase = 0;
  uint64_t current_rid = 0;  // packed (SF)
  std::vector<std::vector<SideFileFence>> fences;  // per index (SF)
  std::string phase_blob;
};

std::string EncodeBuildMeta(const BuildMeta& meta);
Status DecodeBuildMeta(const std::string& blob, BuildMeta* meta);
Status SaveBuildMeta(Engine* engine, TableId table, const BuildMeta& meta);
StatusOr<BuildMeta> LoadBuildMeta(Engine* engine, TableId table);
Status ClearBuildMeta(Engine* engine, TableId table);

void PutCounters(std::string* out, const std::vector<uint64_t>& counters);
bool GetCounters(BufferReader* r, std::vector<uint64_t>* counters);

}  // namespace oib

#endif  // OIB_CORE_INDEX_BUILDER_H_
