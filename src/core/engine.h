// Engine: wires the whole system together — buffer pool, WAL, locks,
// transactions, recovery, catalog, and the record manager — over a
// durable Env that survives simulated crashes.
//
// Crash testing model:
//   Env env; auto engine = Engine::Open(opts, &env);
//   ... work ...
//   engine->SimulateCrash();            // volatile state gone
//   engine.reset();
//   auto engine2 = Engine::Restart(opts, &env);   // recovery runs
//
// Restart order matters: physical redo first (pages become current), then
// the catalog re-opens tables/trees/side-files from metadata, interrupted
// index builds re-attach (so rollback sees the Index_Build flag and scan
// position), and only then are loser transactions rolled back — B+-tree
// undo is logical and needs live tree objects.

#ifndef OIB_CORE_ENGINE_H_
#define OIB_CORE_ENGINE_H_

#include <memory>

#include "common/options.h"
#include "common/status.h"
#include "core/catalog.h"
#include "core/record_manager.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "sort/run.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "txn/lock_manager.h"
#include "txn/transaction_manager.h"
#include "wal/log_manager.h"
#include "wal/recovery.h"

namespace oib {

// The durable world: disk image, log, and sort runs.  Outlives Engine
// incarnations.
struct Env {
  std::unique_ptr<DiskManager> disk;
  LogManager log;
  RunStore runs;

  static std::unique_ptr<Env> InMemory(const Options& options) {
    auto env = std::make_unique<Env>();
    env->disk = std::make_unique<InMemoryDisk>(options.page_size);
    return env;
  }

  // File-backed world rooted at `dir` (created if missing): pages in
  // `dir`/pages(+.meta,.dw), the WAL in `dir`/wal, spilled sort runs in
  // `dir`/runs/.  Re-opening an existing directory repairs torn tails and
  // yields exactly the durable prefix of each component, so a process
  // kill at any instant leaves a recoverable Env.
  static StatusOr<std::unique_ptr<Env>> OnFiles(const std::string& dir,
                                                const Options& options);
};

class Engine {
 public:
  // Opens a fresh database (Env must be empty).
  static StatusOr<std::unique_ptr<Engine>> Open(const Options& options,
                                                Env* env);
  // Re-opens after a crash (or clean shutdown): runs restart recovery.
  static StatusOr<std::unique_ptr<Engine>> Restart(
      const Options& options, Env* env, RecoveryStats* stats = nullptr);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const Options& options() const { return options_; }
  Env* env() { return env_; }
  BufferPool* pool() { return &pool_; }
  LogManager* log() { return &env_->log; }
  LockManager* locks() { return &locks_; }
  TransactionManager* txns() { return &txns_; }
  Catalog* catalog() { return &catalog_; }
  RecordManager* records() { return &records_; }
  RunStore* runs() { return &env_->runs; }
  DiskManager* disk() { return env_->disk.get(); }

  // Observability: the process-wide registry/tracer all components attach
  // to (WireUp registers bufferpool.*, lock.*, wal.* and records.*).
  obs::MetricsRegistry* metrics() { return &obs::MetricsRegistry::Default(); }
  obs::Tracer* tracer() { return &obs::Tracer::Default(); }

  // Live snapshot of an in-flight index build on `table` (phase,
  // Current-RID vs heap tail, side-file backlog, keys/sec).  Returns a
  // default (inactive) snapshot when no build is registered.
  obs::BuildProgress GetBuildProgress(TableId table);

  Transaction* Begin() { return txns_.Begin(); }
  Status Commit(Transaction* txn) { return txns_.Commit(txn); }
  Status Rollback(Transaction* txn) { return txns_.Rollback(txn); }

  // Sharp checkpoint: flush all pages, log the active-transaction table,
  // and record the checkpoint LSN in metadata (bounds restart redo).
  Status Checkpoint();

  // Clean shutdown convenience: flush everything so Restart has no work.
  Status FlushAll();

  // Crash simulation: discards the buffer pool and unflushed log/run
  // tails.  The engine object must be discarded afterwards.
  Status SimulateCrash();

 private:
  Engine(const Options& options, Env* env);

  void WireUp();

  Options options_;
  Env* env_;
  BufferPool pool_;
  LockManager locks_;
  RmRegistry rms_;
  TransactionManager txns_;
  HeapRm heap_rm_;
  BtreeRm btree_rm_;
  SideFileRm sidefile_rm_;
  Catalog catalog_;
  RecordManager records_;
};

}  // namespace oib

#endif  // OIB_CORE_ENGINE_H_
