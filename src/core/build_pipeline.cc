#include "core/build_pipeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <string>
#include <thread>

#include "common/coding.h"
#include "common/failpoint.h"
#include "common/sync.h"
#include "core/schema.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oib {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

std::string EncodeScanPlan(const ScanPlan& plan) {
  std::string out;
  PutFixed32(&out, plan.stop_page);
  PutFixed32(&out, static_cast<uint32_t>(plan.parts.size()));
  for (const ScanPartition& part : plan.parts) {
    PutFixed32(&out, part.next);
    PutFixed32(&out, part.bound);
    PutFixed32(&out, static_cast<uint32_t>(part.sorter_blobs.size()));
    for (const std::string& b : part.sorter_blobs) PutLengthPrefixed(&out, b);
  }
  return out;
}

Status DecodeScanPlan(const std::string& blob, ScanPlan* plan) {
  BufferReader r(blob);
  uint32_t parts;
  if (!r.GetFixed32(&plan->stop_page) || !r.GetFixed32(&parts)) {
    return Status::Corruption("scan plan header");
  }
  plan->parts.clear();
  for (uint32_t k = 0; k < parts; ++k) {
    ScanPartition part;
    uint32_t blobs;
    if (!r.GetFixed32(&part.next) || !r.GetFixed32(&part.bound) ||
        !r.GetFixed32(&blobs)) {
      return Status::Corruption("scan plan partition");
    }
    for (uint32_t i = 0; i < blobs; ++i) {
      std::string b;
      if (!r.GetLengthPrefixed(&b)) {
        return Status::Corruption("scan plan sorter blob");
      }
      part.sorter_blobs.push_back(std::move(b));
    }
    plan->parts.push_back(std::move(part));
  }
  return Status::OK();
}

StatusOr<ScanPlan> PlanPartitionedScan(const HeapFile* heap, PageId stop_page,
                                       size_t threads) {
  auto pages = heap->ChainPages(stop_page);
  if (!pages.ok()) return pages.status();
  ScanPlan plan;
  plan.stop_page = stop_page;
  const size_t n = pages->size();
  if (n == 0) {
    ScanPartition part;
    part.next = heap->first_page();
    plan.parts.push_back(std::move(part));
    return plan;
  }
  const size_t count = std::max<size_t>(1, std::min(threads, n));
  for (size_t k = 0; k < count; ++k) {
    ScanPartition part;
    part.next = (*pages)[n * k / count];
    part.bound =
        (k + 1 < count) ? (*pages)[n * (k + 1) / count] : kInvalidPageId;
    plan.parts.push_back(std::move(part));
  }
  return plan;
}

Status BuildPipeline::RunScan(const HeapFile* heap, obs::Tracer* tracer,
                              const std::vector<ScanTarget>& targets,
                              ScanPlan* plan, const ScanHooks& hooks,
                              size_t checkpoint_every_keys,
                              ScanResult* result) {
  const size_t parts = plan->parts.size();
  if (parts == 0) return Status::InvalidArgument("empty scan plan");
  for (const ScanTarget& t : targets) {
    OIB_RETURN_IF_ERROR(t.sorter->CreateWriters(parts));
  }
  for (size_t k = 0; k < parts; ++k) {
    const ScanPartition& part = plan->parts[k];
    if (part.sorter_blobs.empty()) continue;
    if (part.sorter_blobs.size() != targets.size()) {
      return Status::Corruption("scan plan writer blobs mismatch");
    }
    for (size_t ti = 0; ti < targets.size(); ++ti) {
      OIB_RETURN_IF_ERROR(
          targets[ti].sorter->writer(k)->Resume(part.sorter_blobs[ti]));
    }
  }

  // Guards *plan and serializes hooks.checkpoint.  Lowest rank in the
  // lattice: the checkpoint hook flushes the WAL and writes catalog meta
  // pages, so the WAL flush mutex and page latches all nest under it.
  sync::Mutex plan_mu{sync::LockRank::kBuildPlan, "buildpipeline.plan_mu"};
  std::atomic<bool> stop{false};
  std::vector<Status> worker_status(parts, Status::OK());
  std::vector<uint64_t> keys(parts, 0), pages(parts, 0), ckpts(parts, 0);
  std::vector<double> busy(parts, 0.0);
  // Only the single unbounded (final) partition's worker writes this.
  PageId tail_last = kInvalidPageId;

  auto work = [&](size_t k) -> Status {
    const char* span_name = "build.scan";
    if (hooks.span_names != nullptr && hooks.span_name_count > 0) {
      span_name = hooks.span_names[std::min(k, hooks.span_name_count - 1)];
    }
    obs::ScopedSpan span(tracer, span_name);
    auto t0 = std::chrono::steady_clock::now();
    PageId next, bound;
    {
      sync::MutexLock g(&plan_mu);
      next = plan->parts[k].next;
      bound = plan->parts[k].bound;
    }
    const PageId stop_page = plan->stop_page;  // never mutated
    uint64_t keys_since_ckpt = 0;
    std::vector<std::pair<Rid, std::string>> recs;
    std::string key_buf;  // normalized-key scratch, reused per record
    Status status;
    while (next != kInvalidPageId && !stop.load(std::memory_order_relaxed)) {
      if (hooks.failpoint != nullptr &&
          FailPointRegistry::Instance().Check(hooks.failpoint)) {
        status = Status::Injected(hooks.failpoint);
        break;
      }
      recs.clear();
      const PageId page = next;
      auto got = heap->ExtractPage(
          page, &recs,
          hooks.page_scanned
              ? std::function<void()>([&] { hooks.page_scanned(page); })
              : std::function<void()>{});
      if (!got.ok()) {
        status = got.status();
        break;
      }
      for (auto& [rid, rec] : recs) {
        for (size_t ti = 0; ti < targets.size() && status.ok(); ++ti) {
          status = Schema::ExtractKeyTo(rec, targets[ti].key_cols,
                                        targets[ti].key_types, &key_buf);
          if (status.ok()) {
            status = targets[ti].sorter->writer(k)->Add(key_buf, rid);
          }
        }
        if (!status.ok()) break;
        ++keys[k];
        ++keys_since_ckpt;
      }
      if (!status.ok()) break;
      if (hooks.keys_progress && !recs.empty()) {
        hooks.keys_progress(recs.size());
      }
      ++pages[k];
      if (bound == kInvalidPageId) tail_last = page;
      const bool done =
          (stop_page != kInvalidPageId && page == stop_page) ||
          *got == kInvalidPageId ||
          (bound != kInvalidPageId && *got >= bound);
      next = done ? kInvalidPageId : *got;

      if (checkpoint_every_keys > 0 && hooks.checkpoint &&
          keys_since_ckpt >= checkpoint_every_keys &&
          next != kInvalidPageId) {
        // Per-partition §5.1 checkpoint: this worker's writer state + scan
        // position land in its plan slot; the whole plan (other slots at
        // their last self-consistent checkpoint) is persisted.
        std::vector<std::string> blobs;
        blobs.reserve(targets.size());
        for (size_t ti = 0; ti < targets.size() && status.ok(); ++ti) {
          auto b = targets[ti].sorter->writer(k)->Checkpoint();
          if (!b.ok()) {
            status = b.status();
          } else {
            blobs.push_back(std::move(*b));
          }
        }
        if (!status.ok()) break;
        sync::MutexLock g(&plan_mu);
        plan->parts[k].next = next;
        plan->parts[k].sorter_blobs = std::move(blobs);
        status = hooks.checkpoint(EncodeScanPlan(*plan));
        if (!status.ok()) break;
        ++ckpts[k];
        keys_since_ckpt = 0;
      }
    }
    busy[k] = MsSince(t0);
    return status;
  };

  if (parts == 1) {
    worker_status[0] = work(0);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(parts);
    for (size_t k = 0; k < parts; ++k) {
      workers.emplace_back([&, k] {
        obs::SetCurrentThreadName("build.scan." + std::to_string(k));
        worker_status[k] = work(k);
        if (!worker_status[k].ok()) {
          stop.store(true, std::memory_order_relaxed);
        }
      });
    }
    for (auto& t : workers) t.join();
  }

  Status first = Status::OK();
  for (size_t k = 0; k < parts; ++k) {
    if (first.ok() && !worker_status[k].ok()) first = worker_status[k];
    result->keys_extracted += keys[k];
    result->pages_scanned += pages[k];
    result->checkpoints += ckpts[k];
    result->busy_ms += busy[k];
  }
  result->tail_last_scanned = tail_last;
  return first;
}

Status BuildPipeline::MergeToConsumer(
    MergeCursor* cursor, size_t batch_keys, size_t queue_depth,
    bool overlapped, const std::function<Status(const Batch&)>& consume,
    MergeStats* stats) {
  if (batch_keys == 0) batch_keys = 1;
  MergeStats local;

  // Pulls up to batch_keys items; false when the stream is exhausted and
  // nothing was pulled.  The counters snapshot identifies the position
  // *after* the batch (§5.2), i.e. the consumer's checkpoint.
  auto fill = [&](Batch* b) -> StatusOr<bool> {
    // Per-batch span on the filling thread's track: in overlapped mode
    // the Perfetto view shows build.merge (producer) and build.consume
    // (loader) interleaving instead of alternating.
    obs::ScopedSpan span(&obs::Tracer::Default(), "build.merge");
    auto t0 = std::chrono::steady_clock::now();
    b->items.clear();
    b->items.reserve(batch_keys);
    SortItem item;
    while (b->items.size() < batch_keys) {
      auto more = cursor->Next(&item);
      if (!more.ok()) return more.status();
      if (!*more) break;
      b->items.push_back(std::move(item));
    }
    b->counters = cursor->counters();
    local.merge_busy_ms += MsSince(t0);
    span.set_arg(b->items.size());
    return !b->items.empty();
  };

  Status status;
  if (!overlapped || queue_depth == 0) {
    for (;;) {
      Batch b;
      auto more = fill(&b);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) break;
      auto t0 = std::chrono::steady_clock::now();
      {
        obs::ScopedSpan span(&obs::Tracer::Default(), "build.consume",
                             b.items.size());
        status = consume(b);
      }
      local.consume_busy_ms += MsSince(t0);
      if (!status.ok()) break;
      if (b.items.size() < batch_keys) break;  // stream ended mid-batch
    }
  } else {
    obs::Gauge* depth_gauge =
        obs::MetricsRegistry::Default().GetGauge("build.merge_queue_depth");
    // The consumer drains batches under page latches' *callers* — but
    // consume() always runs with mu released, so the queue mutex leads a
    // leaf-free life; rank kMergeQueue only orders it against the plan
    // mutex held by no one here.
    sync::Mutex mu{sync::LockRank::kMergeQueue, "buildpipeline.merge_queue.mu"};
    sync::CondVar can_push, can_pop;
    std::deque<Batch> queue;
    bool produced_all = false;
    bool abort = false;
    Status producer_status;

    std::thread producer([&] {
      obs::SetCurrentThreadName("build.merge");
      for (;;) {
        Batch b;
        auto more = fill(&b);
        sync::MutexLock lk(&mu);
        if (!more.ok() || !*more) {
          if (!more.ok()) producer_status = more.status();
          produced_all = true;
          can_pop.NotifyAll();
          return;
        }
        const bool last = b.items.size() < batch_keys;
        can_push.Wait(mu, [&] { return queue.size() < queue_depth || abort; });
        if (abort) return;
        queue.push_back(std::move(b));
        depth_gauge->Set(static_cast<int64_t>(queue.size()));
        can_pop.NotifyAll();
        if (last) {
          produced_all = true;
          return;
        }
      }
    });

    for (;;) {
      Batch b;
      {
        sync::MutexLock lk(&mu);
        can_pop.Wait(mu, [&] { return !queue.empty() || produced_all; });
        if (queue.empty()) {
          status = producer_status;
          break;
        }
        b = std::move(queue.front());
        queue.pop_front();
        depth_gauge->Set(static_cast<int64_t>(queue.size()));
        can_push.NotifyAll();
      }
      auto t0 = std::chrono::steady_clock::now();
      {
        obs::ScopedSpan span(&obs::Tracer::Default(), "build.consume",
                             b.items.size());
        status = consume(b);
      }
      local.consume_busy_ms += MsSince(t0);
      if (!status.ok()) break;
    }
    {
      sync::MutexLock lk(&mu);
      abort = true;
    }
    can_push.NotifyAll();
    producer.join();
    depth_gauge->Set(0);
  }

  if (stats != nullptr) {
    stats->merge_busy_ms += local.merge_busy_ms;
    stats->consume_busy_ms += local.consume_busy_ms;
  }
  return status;
}

}  // namespace oib
