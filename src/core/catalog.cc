#include "core/catalog.h"

#include "common/coding.h"
#include "common/failpoint.h"
#include "obs/metrics.h"

namespace oib {

namespace {
constexpr char kCatalogMetaKey[] = "catalog";
}  // namespace

// Lock ordering: update transactions acquire mu_ (via IndexesOf in
// RecordManager::PlanFor) while holding heap page latches, so the catalog
// must never take a page latch while holding mu_.  Mutators therefore
// reserve the name/id under mu_, release it for the page-latching
// Create()/Open() work (the new object's pages are private to this thread
// until published), then re-acquire mu_ to publish and persist.

StatusOr<TableId> Catalog::CreateTable(const std::string& name) {
  TableId id;
  {
    sync::MutexLock g(&mu_);
    for (const auto& [tid, info] : tables_) {
      if (info.name == name) return Status::InvalidArgument("table exists");
    }
    id = next_table_id_++;
  }
  auto heap = std::make_unique<HeapFile>(id, pool_, txns_);
  OIB_RETURN_IF_ERROR(heap->Create());
  sync::MutexLock g(&mu_);
  for (const auto& [tid, info] : tables_) {
    if (info.name == name) return Status::InvalidArgument("table exists");
  }
  TableInfo info{id, name, heap->first_page()};
  tables_[id] = info;
  heaps_[id] = std::move(heap);
  table_indexes_[id];
  OIB_RETURN_IF_ERROR(PersistLocked());
  return id;
}

HeapFile* Catalog::table(TableId id) const {
  sync::MutexLock g(&mu_);
  auto it = heaps_.find(id);
  return it == heaps_.end() ? nullptr : it->second.get();
}

StatusOr<TableId> Catalog::TableByName(const std::string& name) const {
  sync::MutexLock g(&mu_);
  for (const auto& [id, info] : tables_) {
    if (info.name == name) return id;
  }
  return Status::NotFound("no such table");
}

StatusOr<IndexDescriptor> Catalog::CreateIndex(
    const std::string& name, TableId table, bool unique,
    std::vector<uint32_t> key_cols, BuildAlgo algo,
    std::vector<KeyColumnType> key_types) {
  if (!key_types.empty() && key_types.size() != key_cols.size()) {
    return Status::InvalidArgument("key_types/key_cols size mismatch");
  }
  IndexId id;
  {
    sync::MutexLock g(&mu_);
    if (tables_.find(table) == tables_.end()) {
      return Status::NotFound("no such table");
    }
    for (const auto& [iid, d] : indexes_) {
      if (d.name == name) return Status::InvalidArgument("index exists");
    }
    id = next_index_id_++;
  }
  auto tree = std::make_unique<BTree>(id, pool_, txns_, options_);
  OIB_RETURN_IF_ERROR(tree->Create());

  // The hash mirror attaches before the tree is published, so every leaf
  // mutation the tree will ever see is reflected; under NSF that alone
  // keeps the mirror complete (IbInsertBatch notifies), under SF/offline
  // the bulk loader bypasses the tree paths and the builder's consume
  // stage BulkAdds explicitly.
  std::unique_ptr<HashIndex> hash;
  if (options_->enable_hash_index) {
    hash = std::make_unique<HashIndex>(id, options_->hash_index_shards);
    hash->AttachMetrics(&obs::MetricsRegistry::Default());
    tree->set_entry_observer(hash.get());
  }

  IndexDescriptor d;
  d.id = id;
  d.name = name;
  d.table = table;
  d.unique = unique;
  d.key_cols = std::move(key_cols);
  d.key_types = std::move(key_types);
  d.anchor = tree->anchor_page();
  d.state = IndexState::kBuilding;
  d.algo = algo;

  std::unique_ptr<SideFile> sf;
  if (algo == BuildAlgo::kSf) {
    sf = std::make_unique<SideFile>(id, pool_, txns_);
    OIB_RETURN_IF_ERROR(sf->Create());
    d.side_file_first = sf->first_page();
  }

  sync::MutexLock g(&mu_);
  if (tables_.find(table) == tables_.end()) {
    return Status::NotFound("no such table");
  }
  for (const auto& [iid, existing] : indexes_) {
    if (existing.name == name) return Status::InvalidArgument("index exists");
  }
  if (sf != nullptr) side_files_[id] = std::move(sf);
  if (hash != nullptr) hashes_[id] = std::move(hash);
  indexes_[id] = d;
  trees_[id] = std::move(tree);
  table_indexes_[table].push_back(id);
  OIB_RETURN_IF_ERROR(PersistLocked());
  return d;
}

Status Catalog::SetIndexReady(IndexId id) {
  sync::MutexLock g(&mu_);
  auto it = indexes_.find(id);
  if (it == indexes_.end()) return Status::NotFound("no such index");
  auto hit = hashes_.find(id);
  if (hit != hashes_.end()) {
    // Publish the hash fragment together with the index state flip; a
    // crash here leaves the index kBuilding, so the resumed build's
    // repopulation + retry covers the fragment too.
    OIB_FAIL_POINT("hash.commit");
    hit->second->set_readable(true);
  }
  it->second.state = IndexState::kReady;
  it->second.algo = BuildAlgo::kNone;
  return PersistLocked();
}

Status Catalog::DropIndex(IndexId id) {
  sync::MutexLock g(&mu_);
  auto it = indexes_.find(id);
  if (it == indexes_.end()) return Status::NotFound("no such index");
  auto& order = table_indexes_[it->second.table];
  order.erase(std::remove(order.begin(), order.end(), id), order.end());
  indexes_.erase(it);
  // Detach the hash mirror before the tree or the fragment dies: a
  // cancelled build's fragment must not dangle as the tree's observer.
  auto tit = trees_.find(id);
  if (tit != trees_.end()) tit->second->set_entry_observer(nullptr);
  hashes_.erase(id);
  trees_.erase(id);
  side_files_.erase(id);
  return PersistLocked();
}

BTree* Catalog::index(IndexId id) const {
  sync::MutexLock g(&mu_);
  auto it = trees_.find(id);
  return it == trees_.end() ? nullptr : it->second.get();
}

SideFile* Catalog::side_file(IndexId id) const {
  sync::MutexLock g(&mu_);
  auto it = side_files_.find(id);
  return it == side_files_.end() ? nullptr : it->second.get();
}

HashIndex* Catalog::hash_index(IndexId id) const {
  sync::MutexLock g(&mu_);
  auto it = hashes_.find(id);
  return it == hashes_.end() ? nullptr : it->second.get();
}

StatusOr<IndexDescriptor> Catalog::descriptor(IndexId id) const {
  sync::MutexLock g(&mu_);
  auto it = indexes_.find(id);
  if (it == indexes_.end()) return Status::NotFound("no such index");
  return it->second;
}

std::vector<IndexDescriptor> Catalog::IndexesOf(TableId table) const {
  sync::MutexLock g(&mu_);
  std::vector<IndexDescriptor> out;
  auto it = table_indexes_.find(table);
  if (it == table_indexes_.end()) return out;
  for (IndexId id : it->second) {
    out.push_back(indexes_.at(id));
  }
  return out;
}

std::vector<IndexDescriptor> Catalog::AllIndexes() const {
  sync::MutexLock g(&mu_);
  std::vector<IndexDescriptor> out;
  for (const auto& [id, d] : indexes_) {
    (void)id;
    out.push_back(d);
  }
  return out;
}

Status Catalog::PersistLocked() {
  // The metadata names pages (heap chains, tree anchors, side-files)
  // whose formatting lives in the log; force the log first so a crash
  // right after the meta write never exposes references to unformatted
  // pages.
  OIB_RETURN_IF_ERROR(txns_->log()->FlushAll());
  std::string blob;
  PutFixed32(&blob, next_table_id_);
  PutFixed32(&blob, next_index_id_);
  PutFixed32(&blob, static_cast<uint32_t>(tables_.size()));
  for (const auto& [id, info] : tables_) {
    PutFixed32(&blob, id);
    PutLengthPrefixed(&blob, info.name);
    PutFixed32(&blob, info.first_page);
  }
  PutFixed32(&blob, static_cast<uint32_t>(indexes_.size()));
  for (const auto& [id, d] : indexes_) {
    PutFixed32(&blob, id);
    PutLengthPrefixed(&blob, d.name);
    PutFixed32(&blob, d.table);
    blob.push_back(d.unique ? 1 : 0);
    PutFixed32(&blob, static_cast<uint32_t>(d.key_cols.size()));
    for (uint32_t c : d.key_cols) PutFixed32(&blob, c);
    PutFixed32(&blob, static_cast<uint32_t>(d.key_types.size()));
    for (KeyColumnType t : d.key_types) {
      blob.push_back(static_cast<char>(t));
    }
    PutFixed32(&blob, d.anchor);
    PutFixed32(&blob, d.side_file_first);
    blob.push_back(static_cast<char>(d.state));
    blob.push_back(static_cast<char>(d.algo));
  }
  // Per-table creation order.
  PutFixed32(&blob, static_cast<uint32_t>(table_indexes_.size()));
  for (const auto& [table, order] : table_indexes_) {
    PutFixed32(&blob, table);
    PutFixed32(&blob, static_cast<uint32_t>(order.size()));
    for (IndexId id : order) PutFixed32(&blob, id);
  }
  return disk_->PutMeta(kCatalogMetaKey, blob);
}

Status Catalog::Persist() {
  sync::MutexLock g(&mu_);
  return PersistLocked();
}

Status Catalog::Load() {
  std::string blob;
  Status s = disk_->GetMeta(kCatalogMetaKey, &blob);
  if (s.IsNotFound()) return Status::OK();  // fresh database
  OIB_RETURN_IF_ERROR(s);

  // Parse and re-open every object into locals first: Open() latches
  // pages, which must not happen under mu_ (see the ordering note above
  // CreateTable).  Load runs during startup before updaters exist, but
  // the mu_ -> page-latch edge would still poison the process-wide lock
  // order.
  std::map<TableId, TableInfo> tables;
  std::map<TableId, std::unique_ptr<HeapFile>> heaps;
  std::map<IndexId, IndexDescriptor> indexes;
  std::map<IndexId, std::unique_ptr<BTree>> trees;
  std::map<IndexId, std::unique_ptr<SideFile>> side_files;
  std::map<IndexId, std::unique_ptr<HashIndex>> hashes;
  std::map<TableId, std::vector<IndexId>> table_indexes;
  uint32_t next_table_id, next_index_id;

  BufferReader r(blob);
  uint32_t n_tables, n_indexes, n_orders;
  if (!r.GetFixed32(&next_table_id) || !r.GetFixed32(&next_index_id) ||
      !r.GetFixed32(&n_tables)) {
    return Status::Corruption("catalog blob");
  }
  for (uint32_t i = 0; i < n_tables; ++i) {
    TableInfo info;
    if (!r.GetFixed32(&info.id) || !r.GetLengthPrefixed(&info.name) ||
        !r.GetFixed32(&info.first_page)) {
      return Status::Corruption("catalog table entry");
    }
    tables[info.id] = info;
    auto heap = std::make_unique<HeapFile>(info.id, pool_, txns_);
    OIB_RETURN_IF_ERROR(heap->Open(info.first_page));
    heaps[info.id] = std::move(heap);
  }
  if (!r.GetFixed32(&n_indexes)) return Status::Corruption("catalog blob");
  for (uint32_t i = 0; i < n_indexes; ++i) {
    IndexDescriptor d;
    uint8_t unique_byte, state_byte, algo_byte;
    uint32_t n_cols;
    if (!r.GetFixed32(&d.id) || !r.GetLengthPrefixed(&d.name) ||
        !r.GetFixed32(&d.table) || !r.GetByte(&unique_byte) ||
        !r.GetFixed32(&n_cols)) {
      return Status::Corruption("catalog index entry");
    }
    d.unique = unique_byte != 0;
    for (uint32_t c = 0; c < n_cols; ++c) {
      uint32_t col;
      if (!r.GetFixed32(&col)) return Status::Corruption("key col");
      d.key_cols.push_back(col);
    }
    uint32_t n_types;
    if (!r.GetFixed32(&n_types)) return Status::Corruption("key types");
    for (uint32_t c = 0; c < n_types; ++c) {
      uint8_t t;
      if (!r.GetByte(&t)) return Status::Corruption("key type");
      d.key_types.push_back(static_cast<KeyColumnType>(t));
    }
    if (!r.GetFixed32(&d.anchor) || !r.GetFixed32(&d.side_file_first) ||
        !r.GetByte(&state_byte) || !r.GetByte(&algo_byte)) {
      return Status::Corruption("catalog index entry");
    }
    d.state = static_cast<IndexState>(state_byte);
    d.algo = static_cast<BuildAlgo>(algo_byte);

    auto tree = std::make_unique<BTree>(d.id, pool_, txns_, options_);
    OIB_RETURN_IF_ERROR(tree->Open(d.anchor));
    if (options_->enable_hash_index) {
      auto hash =
          std::make_unique<HashIndex>(d.id, options_->hash_index_shards);
      hash->AttachMetrics(&obs::MetricsRegistry::Default());
      tree->set_entry_observer(hash.get());
      // Repopulate from the quiescent tree — restart redo ran before Load,
      // and loser undo (after Load) is mirrored through the observer.  An
      // interrupted SF build is the exception: its loader may hold a torn
      // tail that SfIndexBuilder::Resume truncates, so Resume owns the
      // repopulation for those.
      if (d.state == IndexState::kReady || d.algo != BuildAlgo::kSf) {
        OIB_RETURN_IF_ERROR(PopulateHashFromTree(tree.get(), hash.get()));
      }
      if (d.state == IndexState::kReady) hash->set_readable(true);
      hashes[d.id] = std::move(hash);
    }
    trees[d.id] = std::move(tree);
    if (d.side_file_first != kInvalidPageId) {
      auto sf = std::make_unique<SideFile>(d.id, pool_, txns_);
      OIB_RETURN_IF_ERROR(sf->Open(d.side_file_first));
      side_files[d.id] = std::move(sf);
    }
    indexes[d.id] = std::move(d);
  }
  if (!r.GetFixed32(&n_orders)) return Status::Corruption("catalog blob");
  for (uint32_t i = 0; i < n_orders; ++i) {
    uint32_t table, n;
    if (!r.GetFixed32(&table) || !r.GetFixed32(&n)) {
      return Status::Corruption("catalog order entry");
    }
    std::vector<IndexId>& order = table_indexes[table];
    for (uint32_t j = 0; j < n; ++j) {
      uint32_t id;
      if (!r.GetFixed32(&id)) return Status::Corruption("order id");
      order.push_back(id);
    }
  }

  sync::MutexLock g(&mu_);
  next_table_id_ = next_table_id;
  next_index_id_ = next_index_id;
  tables_ = std::move(tables);
  heaps_ = std::move(heaps);
  indexes_ = std::move(indexes);
  trees_ = std::move(trees);
  side_files_ = std::move(side_files);
  hashes_ = std::move(hashes);
  table_indexes_ = std::move(table_indexes);
  return Status::OK();
}

}  // namespace oib
