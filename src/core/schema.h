// Schema: minimal record codec and normalized key extraction.
//
// A record is a sequence of string fields: [n u16] ([len u16][bytes])*.
// An index key covers a list of columns (paper section 1.1); ExtractKey
// emits the *normalized* byte-comparable encoding of those columns (see
// common/key.h), so every downstream comparison — sort, merge, bulk load,
// B+-tree lookup, side-file ordering — is a raw memcmp.
//
// Each key column carries a KeyColumnType (default kString).  An kInt64
// column's record field must be the 8-byte little-endian payload written
// by EncodeInt64Field; its normalized form is order-preserving across
// negative values.
//
// The former encoding — plain concatenation of the column values — was
// only order-preserving for fixed-width columns and collided composites
// like ("ab","c") and ("a","bc"); the normalized encoding terminates every
// string column, so those extract to distinct, correctly ordered keys.

#ifndef OIB_CORE_SCHEMA_H_
#define OIB_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/key.h"
#include "common/status.h"

namespace oib {

class Schema {
 public:
  static std::string EncodeRecord(const std::vector<std::string>& fields);
  static Status DecodeRecord(std::string_view record,
                             std::vector<std::string>* fields);

  // Record-field payload for an int64-typed key column.
  static std::string EncodeInt64Field(int64_t value);
  static Status DecodeInt64Field(std::string_view field, int64_t* value);

  // Normalized key of the named columns, all treated as strings.
  static StatusOr<std::string> ExtractKey(
      std::string_view record, const std::vector<uint32_t>& key_cols);
  // Typed variant; `key_types` runs parallel to `key_cols` (empty =
  // all kString).
  static StatusOr<std::string> ExtractKey(
      std::string_view record, const std::vector<uint32_t>& key_cols,
      const std::vector<KeyColumnType>& key_types);
  // Core implementation: appends nothing on error, replaces *key on
  // success.  Reuses *key's capacity — the per-record extraction path of
  // the build scan calls this in a loop.
  static Status ExtractKeyTo(std::string_view record,
                             const std::vector<uint32_t>& key_cols,
                             const std::vector<KeyColumnType>& key_types,
                             std::string* key);
};

}  // namespace oib

#endif  // OIB_CORE_SCHEMA_H_
