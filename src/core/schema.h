// Schema: minimal record codec and key extraction.
//
// A record is a sequence of string fields: [n u16] ([len u16][bytes])*.
// An index key is the concatenation of the values of the key columns
// (paper section 1.1: "key value is the concatenation of the values of
// the columns of the table over which the index is defined").
//
// NOTE: plain concatenation is order-preserving only when each key column
// is fixed-width (e.g. zero-padded decimal strings); workloads, examples,
// and tests use fixed-width fields.

#ifndef OIB_CORE_SCHEMA_H_
#define OIB_CORE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace oib {

class Schema {
 public:
  static std::string EncodeRecord(const std::vector<std::string>& fields);
  static Status DecodeRecord(std::string_view record,
                             std::vector<std::string>* fields);
  // Concatenation of the named columns' values.
  static StatusOr<std::string> ExtractKey(
      std::string_view record, const std::vector<uint32_t>& key_cols);
};

}  // namespace oib

#endif  // OIB_CORE_SCHEMA_H_
