// Deterministic pseudo-random generators for tests, workloads, and benches:
// a fast xorshift core plus uniform / Zipfian key distributions.

#ifndef OIB_COMMON_RANDOM_H_
#define OIB_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace oib {

// xorshift64* PRNG.  Not thread-safe; give each thread its own instance.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  // Uniform in [0, n).  n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  // Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  // True with probability p (0 <= p <= 1).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) / (1ULL << 53) < p;
  }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) / (1ULL << 53);
  }

  // Random printable-alphanumeric string of exactly `len` bytes.
  std::string NextString(size_t len);

 private:
  uint64_t state_;
};

// Zipfian distribution over [0, n) with exponent theta (0 < theta < 1
// typical; theta -> 0 approaches uniform).  Uses the Gray et al. method
// with precomputed zeta.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 12345);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double zetan_;
  double alpha_;
  double eta_;
  Random rng_;
};

}  // namespace oib

#endif  // OIB_COMMON_RANDOM_H_
