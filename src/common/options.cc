#include "common/options.h"

#include "common/status.h"

namespace oib {

Status ValidateOptions(const Options& options) {
  auto bad = [](const char* what) {
    return Status::InvalidArgument(std::string("options: ") + what);
  };
  auto power_of_two = [](size_t v) { return v != 0 && (v & (v - 1)) == 0; };
  if (options.page_size < 256) return bad("page_size must be >= 256");
  if (options.buffer_pool_pages < 4) {
    return bad("buffer_pool_pages must be >= 4");
  }
  if (options.buffer_pool_shards != 0 &&
      !power_of_two(options.buffer_pool_shards)) {
    return bad("buffer_pool_shards must be 0 (auto) or a power of two");
  }
  if (options.wal_ring_bytes < 64 * 1024 ||
      !power_of_two(options.wal_ring_bytes)) {
    return bad("wal_ring_bytes must be a power of two >= 64 KiB");
  }
  if (options.sort_workspace_keys == 0) {
    return bad("sort_workspace_keys must be > 0");
  }
  if (options.sort_merge_fanin < 2) return bad("sort_merge_fanin must be >= 2");
  if (options.leaf_fill_factor <= 0.0 || options.leaf_fill_factor > 1.0) {
    return bad("leaf_fill_factor must be in (0, 1]");
  }
  if (options.ib_keys_per_call == 0) return bad("ib_keys_per_call must be > 0");
  if (options.sf_apply_batch == 0) return bad("sf_apply_batch must be > 0");
  if (options.build_threads == 0) return bad("build_threads must be >= 1");
  if (options.recovery_threads == 0) {
    return bad("recovery_threads must be >= 1");
  }
  if (options.hash_index_shards != 0 &&
      !power_of_two(options.hash_index_shards)) {
    return bad("hash_index_shards must be 0 (auto) or a power of two");
  }
  if (options.merge_batch_keys == 0) return bad("merge_batch_keys must be > 0");
  if (options.merge_queue_depth == 0) {
    return bad("merge_queue_depth must be >= 1");
  }
  return Status::OK();
}

}  // namespace oib
