#include "common/coding.h"

namespace oib {

void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  EncodeFixed16(buf, v);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutFixed32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool BufferReader::GetByte(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_]);
  pos_ += 1;
  return true;
}

bool BufferReader::Skip(size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

bool BufferReader::GetFixed16(uint16_t* v) {
  if (remaining() < 2) return false;
  *v = DecodeFixed16(data_.data() + pos_);
  pos_ += 2;
  return true;
}

bool BufferReader::GetFixed32(uint32_t* v) {
  if (remaining() < 4) return false;
  *v = DecodeFixed32(data_.data() + pos_);
  pos_ += 4;
  return true;
}

bool BufferReader::GetFixed64(uint64_t* v) {
  if (remaining() < 8) return false;
  *v = DecodeFixed64(data_.data() + pos_);
  pos_ += 8;
  return true;
}

bool BufferReader::GetLengthPrefixed(std::string_view* v) {
  uint32_t len;
  if (!GetFixed32(&len)) return false;
  if (remaining() < len) {
    pos_ -= 4;
    return false;
  }
  *v = data_.substr(pos_, len);
  pos_ += len;
  return true;
}

bool BufferReader::GetLengthPrefixed(std::string* v) {
  std::string_view sv;
  if (!GetLengthPrefixed(&sv)) return false;
  v->assign(sv.data(), sv.size());
  return true;
}

}  // namespace oib
