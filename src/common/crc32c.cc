#include "common/crc32c.h"

#include <array>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define OIB_CRC32C_X86_DISPATCH 1
#include <nmmintrin.h>
#endif

namespace oib {
namespace crc32c {
namespace {

// Reflected Castagnoli polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Table {
  std::array<uint32_t, 256> at;
  Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      at[i] = crc;
    }
  }
};

uint32_t ExtendPortable(uint32_t crc, const char* data, size_t n) {
  static const Table table;
  uint32_t l = crc ^ 0xffffffffu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    l = table.at[(l ^ p[i]) & 0xff] ^ (l >> 8);
  }
  return l ^ 0xffffffffu;
}

#ifdef OIB_CRC32C_X86_DISPATCH

__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t crc,
                                                    const char* data,
                                                    size_t n) {
  uint64_t l = crc ^ 0xffffffffu;
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  const unsigned char* end = p + n;
  // Align to 8 bytes, then crunch a word at a time.
  while (p < end && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    l = _mm_crc32_u8(static_cast<uint32_t>(l), *p++);
  }
  while (end - p >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
    l = _mm_crc32_u64(l, word);
    p += 8;
  }
  while (p < end) {
    l = _mm_crc32_u8(static_cast<uint32_t>(l), *p++);
  }
  return static_cast<uint32_t>(l) ^ 0xffffffffu;
}

bool HaveSse42() { return __builtin_cpu_supports("sse4.2") != 0; }

#endif  // OIB_CRC32C_X86_DISPATCH

}  // namespace

uint32_t Extend(uint32_t crc, const char* data, size_t n) {
#ifdef OIB_CRC32C_X86_DISPATCH
  static const bool hw = HaveSse42();
  if (hw) return ExtendHw(crc, data, n);
#endif
  return ExtendPortable(crc, data, n);
}

}  // namespace crc32c
}  // namespace oib
