#include "common/sync.h"

#include <cstdio>
#include <cstdlib>

namespace oib {
namespace sync {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kBuildPlan:      return "BuildPlan";
    case LockRank::kDrainGate:      return "DrainGate";
    case LockRank::kHeapExtend:     return "HeapExtend";
    case LockRank::kSideFileExtend: return "SideFileExtend";
    case LockRank::kTxnActive:      return "TxnActive";
    case LockRank::kPageLatch:      return "PageLatch";
    case LockRank::kBufferShard:    return "BufferShard";
    case LockRank::kRecordBuilds:   return "RecordBuilds";
    case LockRank::kCatalog:        return "Catalog";
    case LockRank::kHashShard:      return "HashShard";
    case LockRank::kHeapHints:      return "HeapHints";
    case LockRank::kSideFileCount:  return "SideFileCount";
    case LockRank::kLockTable:      return "LockTable";
    case LockRank::kWalFlush:       return "WalFlush";
    case LockRank::kWalDrain:       return "WalDrain";
    case LockRank::kRunStore:       return "RunStore";
    case LockRank::kMergeQueue:     return "MergeQueue";
    case LockRank::kDisk:           return "Disk";
    case LockRank::kFailPoint:      return "FailPoint";
    case LockRank::kStatsSampler:   return "StatsSampler";
    case LockRank::kObs:            return "Obs";
  }
  return "?";
}

bool RankCheckActive() { return OIB_RANK_CHECK != 0; }

#if OIB_RANK_CHECK

namespace internal {
namespace {

struct HeldLock {
  const void* mu;
  LockRank rank;
  const char* name;
};

// Fixed-capacity per-thread stack of held locks.  Crabbing holds a
// handful of page latches at once; 64 leaves a wide margin, and hitting
// the cap is itself a discipline bug worth aborting on.
struct RankStack {
  static constexpr int kMax = 64;
  HeldLock held[kMax];
  int depth = 0;
};

RankStack& TlsStack() {
  thread_local RankStack stack;
  return stack;
}

[[noreturn]] void RankAbort(const char* what, const HeldLock& acquiring,
                            const HeldLock& holding) {
  std::fprintf(
      stderr,
      "oib sync: %s: acquiring \"%s\" (rank %u %s) while holding \"%s\" "
      "(rank %u %s)\n",
      what, acquiring.name, static_cast<unsigned>(acquiring.rank),
      LockRankName(acquiring.rank), holding.name,
      static_cast<unsigned>(holding.rank), LockRankName(holding.rank));
  std::abort();
}

void Push(RankStack& s, const void* mu, LockRank rank, const char* name) {
  if (s.depth >= RankStack::kMax) {
    std::fprintf(stderr,
                 "oib sync: held-lock stack overflow (%d locks) acquiring "
                 "\"%s\"\n",
                 s.depth, name);
    std::abort();
  }
  s.held[s.depth++] = HeldLock{mu, rank, name};
}

void CheckRecursion(const RankStack& s, const void* mu, LockRank rank,
                    const char* name) {
  for (int i = 0; i < s.depth; ++i) {
    if (s.held[i].mu == mu) {
      RankAbort("recursive acquisition", HeldLock{mu, rank, name}, s.held[i]);
    }
  }
}

}  // namespace

void OnAcquire(const void* mu, LockRank rank, const char* name) {
  RankStack& s = TlsStack();
  CheckRecursion(s, mu, rank, name);
  if (!LockRankExempt(rank)) {
    for (int i = 0; i < s.depth; ++i) {
      const HeldLock& h = s.held[i];
      if (LockRankExempt(h.rank)) continue;
      bool ok = h.rank < rank ||
                (h.rank == rank && LockRankNestable(rank));
      if (!ok) {
        RankAbort("lock rank violation", HeldLock{mu, rank, name}, h);
      }
    }
  }
  Push(s, mu, rank, name);
}

void OnTryAcquire(const void* mu, LockRank rank, const char* name) {
  // Runs before the attempt: same-thread reacquisition is UB on the
  // underlying mutex whether or not try_lock would "fail", so it must
  // abort up front.  Order is not checked — a failed try-acquire cannot
  // deadlock.
  RankStack& s = TlsStack();
  CheckRecursion(s, mu, rank, name);
}

void OnTryAcquired(const void* mu, LockRank rank, const char* name) {
  // The successful acquisition joins the stack so later blocking
  // acquisitions under it are still rank-checked.
  Push(TlsStack(), mu, rank, name);
}

void OnRelease(const void* mu, const char* name) {
  RankStack& s = TlsStack();
  // Search from the top: releases are usually LIFO, but not always (a
  // page latch is released while the drain gate, acquired after it, is
  // still held), so remove by identity rather than popping blindly.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.held[i].mu == mu) {
      for (int j = i; j + 1 < s.depth; ++j) s.held[j] = s.held[j + 1];
      --s.depth;
      return;
    }
  }
  std::fprintf(stderr, "oib sync: releasing \"%s\" not held by this thread\n",
               name);
  std::abort();
}

}  // namespace internal

#endif  // OIB_RANK_CHECK

}  // namespace sync
}  // namespace oib
