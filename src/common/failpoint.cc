#include "common/failpoint.h"

namespace oib {

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* instance = new FailPointRegistry();
  return *instance;
}

void FailPointRegistry::Arm(const std::string& name, int countdown) {
  sync::MutexLock g(&mu_);
  auto [it, inserted] = points_.insert_or_assign(name, countdown);
  (void)it;
  if (inserted) armed_count_.fetch_add(1);
}

void FailPointRegistry::Disarm(const std::string& name) {
  sync::MutexLock g(&mu_);
  if (points_.erase(name) > 0) armed_count_.fetch_sub(1);
}

void FailPointRegistry::Reset() {
  sync::MutexLock g(&mu_);
  armed_count_.store(0);
  fired_.store(0);
  points_.clear();
}

bool FailPointRegistry::Check(const std::string& name) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;
  sync::MutexLock g(&mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return false;
  if (it->second > 0) {
    --it->second;
    return false;
  }
  points_.erase(it);
  armed_count_.fetch_sub(1);
  fired_.fetch_add(1);
  return true;
}

}  // namespace oib
