#include "common/failpoint.h"

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/metrics.h"

namespace oib {

namespace {

// xorshift64* — tiny, seedable, good enough for fire/no-fire draws.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dULL;
}

double NextUniform(uint64_t* state) {
  return double(NextRand(state) >> 11) * 0x1.0p-53;
}

[[noreturn]] void HardAbort(const std::string& name) {
  // The crash harness greps for this line to confirm the kill site.
  std::fprintf(stderr, "[failpoint] %s: hard abort (SIGKILL)\n", name.c_str());
  std::fflush(stderr);
  ::kill(::getpid(), SIGKILL);
  std::abort();  // unreachable unless SIGKILL is somehow blocked
}

}  // namespace

void FailPointHardAbort(const std::string& site) { HardAbort(site); }

const char* FailPointActionName(FailPointAction a) {
  switch (a) {
    case FailPointAction::kOff:
      return "off";
    case FailPointAction::kReturnError:
      return "error";
    case FailPointAction::kShortWrite:
      return "short";
    case FailPointAction::kTornWrite:
      return "torn";
    case FailPointAction::kDelay:
      return "delay";
    case FailPointAction::kAbort:
      return "abort";
  }
  return "unknown";
}

void FailPoint::SetPolicy(const FailPointPolicy& policy, uint64_t seed) {
  bool was_armed;
  {
    sync::MutexLock g(&mu_);
    policy_ = policy;
    fires_left_ = policy.max_fires;
    // Mix the point name into the seed so two points armed with the same
    // global seed draw independent sequences, then finalize with
    // splitmix64 so adjacent seeds land far apart in state space.
    uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (char c : name_) h = (h ^ uint8_t(c)) * 1099511628211ULL;
    uint64_t z = (seed ^ h) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    rng_ = (z ^ (z >> 31)) | 1;  // xorshift state must be nonzero
    was_armed = armed_.exchange(true, std::memory_order_relaxed);
  }
  if (!was_armed) FailPointRegistry::Instance().armed_points_.fetch_add(1);
}

void FailPoint::Disarm() {
  bool was_armed;
  {
    sync::MutexLock g(&mu_);
    was_armed = armed_.exchange(false, std::memory_order_relaxed);
  }
  if (was_armed) FailPointRegistry::Instance().armed_points_.fetch_sub(1);
}

void FailPoint::ResetCounts() { fired_.store(0, std::memory_order_relaxed); }

FailPointHit FailPoint::Evaluate() {
  FailPointHit hit;
  bool disarm_now = false;
  {
    sync::MutexLock g(&mu_);
    if (!armed_.load(std::memory_order_relaxed)) return hit;
    if (policy_.countdown > 0) {
      --policy_.countdown;
      return hit;
    }
    if (policy_.probability < 1.0 && NextUniform(&rng_) >= policy_.probability) {
      return hit;
    }
    hit.action = policy_.action;
    hit.arg = policy_.arg;
    fired_.fetch_add(1, std::memory_order_relaxed);
    if (fires_left_ > 0 && --fires_left_ == 0) {
      armed_.store(false, std::memory_order_relaxed);
      disarm_now = true;
    }
  }
  auto& registry = FailPointRegistry::Instance();
  registry.fired_total_.fetch_add(1, std::memory_order_relaxed);
  if (disarm_now) registry.armed_points_.fetch_sub(1);
  if (hit.action == FailPointAction::kAbort) HardAbort(name_);
  if (hit.action == FailPointAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::microseconds(hit.arg));
  }
  return hit;
}

Status FailPoint::Act() {
  FailPointHit hit = Evaluate();
  switch (hit.action) {
    case FailPointAction::kOff:
    case FailPointAction::kDelay:
      return Status::OK();
    default:
      return Status::Injected(name_);
  }
}

FailPointRegistry& FailPointRegistry::Instance() {
  static FailPointRegistry* instance = new FailPointRegistry();
  return *instance;
}

FailPoint* FailPointRegistry::GetOrCreate(std::string_view name) {
  sync::MutexLock g(&mu_);
  auto it = points_.find(std::string(name));
  if (it != points_.end()) return it->second.get();
  auto point = std::unique_ptr<FailPoint>(new FailPoint(std::string(name)));
  FailPoint* raw = point.get();
  points_.emplace(raw->name(), std::move(point));
  return raw;
}

void FailPointRegistry::ArmPolicy(const std::string& name,
                                  const FailPointPolicy& policy) {
  GetOrCreate(name)->SetPolicy(policy, seed_.load(std::memory_order_relaxed));
}

void FailPointRegistry::Arm(const std::string& name, int countdown) {
  FailPointPolicy policy;  // kReturnError, fire once
  policy.countdown = countdown;
  ArmPolicy(name, policy);
}

void FailPointRegistry::Disarm(const std::string& name) {
  GetOrCreate(name)->Disarm();
}

void FailPointRegistry::Reset() {
  std::vector<FailPoint*> all;
  {
    sync::MutexLock g(&mu_);
    all.reserve(points_.size());
    for (auto& [_, point] : points_) all.push_back(point.get());
  }
  for (FailPoint* p : all) {
    p->Disarm();
    p->ResetCounts();
  }
  fired_total_.store(0, std::memory_order_relaxed);
}

bool FailPointRegistry::Check(const std::string& name) {
  if (armed_points_.load(std::memory_order_relaxed) == 0) return false;
  FailPoint* point = GetOrCreate(name);
  if (!point->armed()) return false;
  FailPointHit hit = point->Evaluate();
  switch (hit.action) {
    case FailPointAction::kOff:
    case FailPointAction::kDelay:
      return false;
    default:
      return true;
  }
}

void FailPointRegistry::SetSeed(uint64_t seed) {
  seed_.store(seed, std::memory_order_relaxed);
}

namespace {

Status BadSpec(std::string_view spec, const std::string& why) {
  return Status::InvalidArgument("failpoint spec \"" + std::string(spec) +
                                 "\": " + why);
}

bool ParseAction(std::string_view token, FailPointAction* action) {
  if (token == "error") *action = FailPointAction::kReturnError;
  else if (token == "short") *action = FailPointAction::kShortWrite;
  else if (token == "torn") *action = FailPointAction::kTornWrite;
  else if (token == "delay") *action = FailPointAction::kDelay;
  else if (token == "abort") *action = FailPointAction::kAbort;
  else if (token == "off") *action = FailPointAction::kOff;
  else return false;
  return true;
}

}  // namespace

Status FailPointRegistry::ConfigureFromSpec(std::string_view spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return BadSpec(entry, "expected name=action");
    }
    std::string name(entry.substr(0, eq));
    std::string_view rest = entry.substr(eq + 1);

    size_t colon = rest.find(':');
    std::string_view action_tok = rest.substr(0, colon);
    FailPointPolicy policy;
    if (!ParseAction(action_tok, &policy.action)) {
      return BadSpec(entry, "unknown action \"" + std::string(action_tok) +
                                "\"");
    }
    if (policy.action == FailPointAction::kOff) {
      Disarm(name);
      continue;
    }
    while (colon != std::string_view::npos) {
      rest = rest.substr(colon + 1);
      colon = rest.find(':');
      std::string_view param = rest.substr(0, colon);
      size_t peq = param.find('=');
      if (peq == std::string_view::npos) {
        return BadSpec(entry, "expected key=value, got \"" +
                                  std::string(param) + "\"");
      }
      std::string key(param.substr(0, peq));
      std::string value(param.substr(peq + 1));
      errno = 0;
      char* parse_end = nullptr;
      if (key == "p") {
        policy.probability = std::strtod(value.c_str(), &parse_end);
      } else if (key == "count") {
        policy.countdown = int(std::strtol(value.c_str(), &parse_end, 10));
      } else if (key == "fires") {
        policy.max_fires = int(std::strtol(value.c_str(), &parse_end, 10));
      } else if (key == "arg") {
        policy.arg = uint32_t(std::strtoul(value.c_str(), &parse_end, 10));
      } else {
        return BadSpec(entry, "unknown param \"" + key + "\"");
      }
      if (errno != 0 || parse_end == value.c_str() || *parse_end != '\0') {
        return BadSpec(entry, "bad value for \"" + key + "\"");
      }
    }
    if (policy.probability < 0.0 || policy.probability > 1.0) {
      return BadSpec(entry, "probability outside [0, 1]");
    }
    ArmPolicy(name, policy);
  }
  return Status::OK();
}

Status FailPointRegistry::ConfigureFromEnv() {
  if (const char* seed = std::getenv("OIB_FAILPOINT_SEED")) {
    SetSeed(std::strtoull(seed, nullptr, 10));
  }
  if (const char* spec = std::getenv("OIB_FAILPOINTS")) {
    return ConfigureFromSpec(spec);
  }
  return Status::OK();
}

int64_t FailPointRegistry::fired_count(const std::string& name) {
  sync::MutexLock g(&mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second->fired();
}

std::vector<std::string> FailPointRegistry::ArmedNames() {
  std::vector<std::string> names;
  sync::MutexLock g(&mu_);
  for (auto& [name, point] : points_) {
    if (point->armed()) names.push_back(name);
  }
  return names;
}

void FailPointRegistry::AttachMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterValueFn(
      "failpoint.armed",
      [this] { return uint64_t(armed_points_.load(std::memory_order_relaxed)); },
      this);
  registry->RegisterValueFn(
      "failpoint.fired",
      [this] { return uint64_t(fired_total_.load(std::memory_order_relaxed)); },
      this);
}

}  // namespace oib
