#include "common/status.h"

namespace oib {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIoError:
      return "IoError";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kDuplicateKey:
      return "DuplicateKey";
    case Status::Code::kUniqueViolation:
      return "UniqueViolation";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kInjected:
      return "Injected";
    case Status::Code::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = CodeName(code_);
  if (!msg_.empty()) {
    result += ": ";
    result += msg_;
  }
  return result;
}

}  // namespace oib
