// Status / StatusOr: exception-free error handling for all fallible paths.
//
// Follows the RocksDB/Arrow idiom mandated by the project guides: every
// operation that can fail returns a Status (or StatusOr<T> when it also
// produces a value), and callers propagate with OIB_RETURN_IF_ERROR.

#ifndef OIB_COMMON_STATUS_H_
#define OIB_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace oib {

// [[nodiscard]]: ignoring a Status is almost always a bug — every caller
// must either propagate, handle, or explicitly (void)-cast with a comment
// saying why dropping the error is correct.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIoError = 4,
    kBusy = 5,            // Lock/latch not granted (conditional request).
    kAborted = 6,         // Transaction aborted (deadlock timeout, etc.).
    kDuplicateKey = 7,    // Exact <key value, RID> already present.
    kUniqueViolation = 8, // Unique index key-value violation.
    kNotSupported = 9,
    kInjected = 10,       // Fail-point fired (tests/benches only).
    kCancelled = 11,      // Operation cancelled (e.g., index build cancel).
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(Code::kIoError, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status DuplicateKey(std::string msg = "") {
    return Status(Code::kDuplicateKey, std::move(msg));
  }
  static Status UniqueViolation(std::string msg = "") {
    return Status(Code::kUniqueViolation, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Injected(std::string msg = "") {
    return Status(Code::kInjected, std::move(msg));
  }
  static Status Cancelled(std::string msg = "") {
    return Status(Code::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIoError() const { return code_ == Code::kIoError; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsDuplicateKey() const { return code_ == Code::kDuplicateKey; }
  bool IsUniqueViolation() const { return code_ == Code::kUniqueViolation; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInjected() const { return code_ == Code::kInjected; }
  bool IsCancelled() const { return code_ == Code::kCancelled; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// Value-or-error. The value is only accessible when status().ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status s) : status_(std::move(s)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace oib

// Propagates a non-OK Status from an expression to the caller.
#define OIB_RETURN_IF_ERROR(expr)               \
  do {                                          \
    ::oib::Status _oib_status = (expr);         \
    if (!_oib_status.ok()) return _oib_status;  \
  } while (0)

// Evaluates a StatusOr expression, propagating error or binding the value.
#define OIB_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto OIB_CONCAT_(_oib_sor_, __LINE__) = (expr);        \
  if (!OIB_CONCAT_(_oib_sor_, __LINE__).ok())            \
    return OIB_CONCAT_(_oib_sor_, __LINE__).status();    \
  lhs = std::move(OIB_CONCAT_(_oib_sor_, __LINE__)).value()

#define OIB_CONCAT_INNER_(a, b) a##b
#define OIB_CONCAT_(a, b) OIB_CONCAT_INNER_(a, b)

#endif  // OIB_COMMON_STATUS_H_
