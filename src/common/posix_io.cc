#include "common/posix_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace oib {

Status PreadFull(int fd, char* buf, size_t n, uint64_t off) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd, buf + done, n - done, off_t(off + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (r == 0) return Status::IoError("pread: unexpected EOF");
    done += size_t(r);
  }
  return Status::OK();
}

Status PwriteFull(int fd, const char* buf, size_t n, uint64_t off) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::pwrite(fd, buf + done, n - done, off_t(off + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    done += size_t(w);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  out->clear();
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Status::IoError("open " + path + ": " + std::strerror(errno));
  }
  char buf[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) out->append(buf, size_t(n));
  int saved = errno;
  ::close(fd);
  if (n < 0) {
    return Status::IoError("read " + path + ": " + std::strerror(saved));
  }
  return Status::OK();
}

}  // namespace oib
