// Fundamental identifier types shared by every subsystem: pages, records
// (RIDs), log sequence numbers, transactions, tables, and indexes.

#ifndef OIB_COMMON_TYPES_H_
#define OIB_COMMON_TYPES_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace oib {

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

using SlotId = uint16_t;
inline constexpr SlotId kInvalidSlotId = std::numeric_limits<SlotId>::max();

using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

using TableId = uint32_t;
using IndexId = uint32_t;
inline constexpr IndexId kInvalidIndexId =
    std::numeric_limits<IndexId>::max();

// Record identifier: physical address of a record within a heap file.
// Ordered by (page, slot); this ordering is what SF's Current-RID /
// Target-RID visibility comparison (paper section 3.1) relies on.
struct Rid {
  PageId page = kInvalidPageId;
  SlotId slot = kInvalidSlotId;

  constexpr Rid() = default;
  constexpr Rid(PageId p, SlotId s) : page(p), slot(s) {}

  // Sentinel greater than every real RID.  SF's index builder sets its scan
  // position to Infinity after the last data page so that records added to
  // file extensions are handled via the side-file (paper section 3.2.2).
  static constexpr Rid Infinity() {
    return Rid(kInvalidPageId, kInvalidSlotId);
  }
  // Sentinel smaller than every real RID (scan not yet started).
  static constexpr Rid MinusInfinity() { return Rid(0, 0); }

  bool valid() const { return page != kInvalidPageId; }

  friend constexpr bool operator==(const Rid& a, const Rid& b) {
    return a.page == b.page && a.slot == b.slot;
  }
  friend constexpr auto operator<=>(const Rid& a, const Rid& b) {
    if (auto c = a.page <=> b.page; c != 0) return c;
    return a.slot <=> b.slot;
  }

  std::string ToString() const;
};

inline std::string Rid::ToString() const {
  if (*this == Infinity()) return "(inf)";
  return "(" + std::to_string(page) + "," + std::to_string(slot) + ")";
}

struct RidHash {
  size_t operator()(const Rid& rid) const {
    return std::hash<uint64_t>()((static_cast<uint64_t>(rid.page) << 16) |
                                 rid.slot);
  }
};

}  // namespace oib

#endif  // OIB_COMMON_TYPES_H_
