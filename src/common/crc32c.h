// CRC32C (Castagnoli) checksums for torn-write detection.
//
// Every FileDisk page slot and every WAL frame carries a CRC32C over its
// payload; a write that lands partially (process killed mid-pwrite, or a
// torn-write failpoint) fails verification instead of being replayed or
// served as valid data.  Stored checksums are *masked* (rotate + constant,
// the LevelDB/RocksDB trick) so that checksumming data which itself
// embeds checksums cannot produce the degenerate fixed point crc(x) == x.

#ifndef OIB_COMMON_CRC32C_H_
#define OIB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace oib {
namespace crc32c {

// Extends `crc` (the running checksum of some prefix) over data[0, n).
uint32_t Extend(uint32_t crc, const char* data, size_t n);

// Checksum of one contiguous buffer.
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

inline constexpr uint32_t kMaskDelta = 0xa282ead8ul;

// Rotated-plus-constant masking for checksums stored next to the bytes
// they cover.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}
inline uint32_t Unmask(uint32_t masked) {
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace oib

#endif  // OIB_COMMON_CRC32C_H_
