#include "common/random.h"

#include <cmath>

namespace oib {

std::string Random::NextString(size_t len) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[Uniform(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  zetan_ = Zeta(n, theta);
  alpha_ = 1.0 / (1.0 - theta);
  double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  return static_cast<uint64_t>(
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
}

}  // namespace oib
