// Little-endian fixed-width and length-prefixed encodings used by page
// layouts, log records, and sort-run files.

#ifndef OIB_COMMON_CODING_H_
#define OIB_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace oib {

inline void EncodeFixed16(char* dst, uint16_t v) { std::memcpy(dst, &v, 2); }
inline void EncodeFixed32(char* dst, uint32_t v) { std::memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { std::memcpy(dst, &v, 8); }

inline uint16_t DecodeFixed16(const char* src) {
  uint16_t v;
  std::memcpy(&v, src, 2);
  return v;
}
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

void PutFixed16(std::string* dst, uint16_t v);
void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);

// Length-prefixed (fixed32) string.
void PutLengthPrefixed(std::string* dst, std::string_view value);

// Reader over a byte buffer; each Get* advances the cursor.  All Get*
// methods return false on truncation and leave outputs untouched.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data), pos_(0) {}

  bool GetByte(uint8_t* v);
  bool Skip(size_t n);
  bool GetFixed16(uint16_t* v);
  bool GetFixed32(uint32_t* v);
  bool GetFixed64(uint64_t* v);
  bool GetLengthPrefixed(std::string* v);
  bool GetLengthPrefixed(std::string_view* v);

  size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return pos_ >= data_.size(); }
  size_t position() const { return pos_; }

 private:
  std::string_view data_;
  size_t pos_;
};

}  // namespace oib

#endif  // OIB_COMMON_CODING_H_
