// Normalized, byte-comparable index keys.
//
// Every key that travels the build path — scan extraction, replacement-
// selection sort, run storage, merge, bulk load, B+-tree pages, side-file
// entries, WAL key payloads — is a *normalized* byte string: a schema-
// driven encoding of the key columns such that plain memcmp over the
// encoded bytes orders keys exactly like the column-wise comparison of the
// decoded tuples (MongoDB's KeyString is the best-known production
// example of the idiom).  Normalization happens once, at extraction time;
// nothing on the build or lookup path ever decodes a key.
//
// Column encodings (appended in key-column order):
//   string  each byte copied; 0x00 escaped as 0x00 0xFF; column terminated
//           by 0x00 0x00.  The terminator sorts below every escaped or
//           literal byte, so ("ab","c") > ("a","bc") just as tuple order
//           demands, and embedded NULs are preserved.
//   int64   sign bit flipped, then the 8 bytes big-endian.  Fixed width,
//           so no terminator is needed; negative values sort below
//           positive ones.
//
// Two vocabulary types replace the former std::string plumbing:
//   KeySlice       non-owning pointer+length view (memcmp comparisons)
//   NormalizedKey  owning buffer with capacity reuse (Assign never shrinks)

#ifndef OIB_COMMON_KEY_H_
#define OIB_COMMON_KEY_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace oib {

// Non-owning view over normalized key bytes.  Converts implicitly to and
// from std::string_view so it interoperates with existing interfaces; all
// ordering goes through Compare(), which is raw memcmp.
class KeySlice {
 public:
  constexpr KeySlice() = default;
  constexpr KeySlice(const char* data, size_t size)
      : data_(data), size_(size) {}
  KeySlice(std::string_view v) : data_(v.data()), size_(v.size()) {}
  KeySlice(const std::string& s) : data_(s.data()), size_(s.size()) {}

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::string_view view() const { return std::string_view(data_, size_); }
  operator std::string_view() const { return view(); }
  std::string ToString() const { return std::string(data_, size_); }
  KeySlice Prefix(size_t n) const {
    return KeySlice(data_, n < size_ ? n : size_);
  }

  // memcmp over the shared length, then shorter-sorts-first.
  int Compare(KeySlice o) const {
    size_t n = size_ < o.size_ ? size_ : o.size_;
    int c = n == 0 ? 0 : std::memcmp(data_, o.data_, n);
    if (c != 0) return c < 0 ? -1 : 1;
    if (size_ == o.size_) return 0;
    return size_ < o.size_ ? -1 : 1;
  }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
};

inline int CompareKeySlice(KeySlice a, KeySlice b) { return a.Compare(b); }

inline bool operator==(KeySlice a, KeySlice b) { return a.Compare(b) == 0; }
inline bool operator!=(KeySlice a, KeySlice b) { return a.Compare(b) != 0; }
inline bool operator<(KeySlice a, KeySlice b) { return a.Compare(b) < 0; }

// Owning buffer of normalized key bytes.  Assign() reuses capacity, which
// is what lets the sorter's workspace slots and run readers run without a
// per-key allocation in steady state.
class NormalizedKey {
 public:
  NormalizedKey() = default;
  explicit NormalizedKey(std::string bytes) : bytes_(std::move(bytes)) {}

  void Assign(KeySlice s) { bytes_.assign(s.data(), s.size()); }
  void Assign(const char* data, size_t size) { bytes_.assign(data, size); }
  void clear() { bytes_.clear(); }

  KeySlice slice() const { return KeySlice(bytes_.data(), bytes_.size()); }
  std::string_view view() const { return bytes_; }
  operator KeySlice() const { return slice(); }
  const std::string& bytes() const { return bytes_; }
  // Direct buffer access for codecs that append/reconstruct in place.
  std::string* mutable_bytes() { return &bytes_; }
  // Moves the bytes out, leaving the key empty (consumers that adopt the
  // buffer, e.g. NSF's insert batches).
  std::string TakeBytes() { return std::move(bytes_); }

  const char* data() const { return bytes_.data(); }
  size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  int Compare(KeySlice o) const { return slice().Compare(o); }

 private:
  std::string bytes_;
};

inline bool operator==(const NormalizedKey& a, const NormalizedKey& b) {
  return a.Compare(b.slice()) == 0;
}

// Length of the longest common prefix of a and b.
size_t CommonPrefixLen(KeySlice a, KeySlice b);

// Compares the logical concatenation prefix+suffix against probe without
// materializing it.  Used by B+-tree pages, whose entries store only the
// suffix past the page's common prefix.
int ComparePrefixedKey(KeySlice prefix, KeySlice suffix, KeySlice probe);

// Separator suffix (tail) truncation: the shortest prefix of `right_first`
// that still sorts strictly above `left_max`.  Returns true and fills
// *sep when such a proper prefix exists; returns false when the full key
// is needed (right_first <= left_max column-wise, i.e. equal keys that
// only a RID tie-break separates).  Requires left_max <= right_first.
bool TruncateSeparator(KeySlice left_max, KeySlice right_first,
                       std::string* sep);

// ---- normalized column codec ----

enum class KeyColumnType : uint8_t {
  kString = 0,
  kInt64 = 1,
};

namespace keyenc {

// Appends one column's normalized encoding (see file header).
void AppendStringColumn(std::string* out, std::string_view value);
void AppendInt64Column(std::string* out, int64_t value);

}  // namespace keyenc

// Decodes a normalized key column by column; for tests, verification and
// diagnostics only — the engine never decodes keys.
class KeyDecoder {
 public:
  explicit KeyDecoder(KeySlice key) : data_(key.data()), size_(key.size()) {}

  bool DecodeString(std::string* out);
  bool DecodeInt64(int64_t* out);
  bool done() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace oib

#endif  // OIB_COMMON_KEY_H_
