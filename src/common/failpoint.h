// Deterministic fault injection for crash/restart testing.
//
// A fail point is a named site in library code.  Each site caches a
// pointer to its registry entry in a function-local static, so a disarmed
// site costs exactly one relaxed atomic load of its own flag — arming one
// point does not slow any other point down.
//
// A point is armed with a FailPointPolicy:
//
//   action       what happens when the point fires:
//                  kReturnError  the site returns Status::Injected
//                  kShortWrite   an I/O site truncates the write to
//                                `arg` bytes (then reports injected)
//                  kTornWrite    an I/O site writes the first `arg`
//                                bytes, corrupts the rest on disk
//                  kDelay        the site sleeps `arg` microseconds and
//                                continues (armed stays on)
//                  kAbort        the process SIGKILLs itself — the crash
//                                harness's kill switch
//   countdown    number of evaluations to skip before the point can fire
//   probability  chance each subsequent evaluation fires (seeded
//                per-point RNG, so a given seed is byte-reproducible)
//   max_fires    disarm after this many fires (-1 = never disarm)
//   arg          action-specific parameter (bytes kept / delay usec)
//
// Policies come from tests (ArmPolicy), from Options::failpoints, or from
// the OIB_FAILPOINTS environment variable; see ConfigureFromSpec for the
// spec grammar.  The legacy API — Arm(name, countdown) arming a
// fire-once kReturnError point, Check(name) for runtime-chosen names —
// is preserved on top of the same machinery.

#ifndef OIB_COMMON_FAILPOINT_H_
#define OIB_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace oib {

namespace obs {
class MetricsRegistry;
}  // namespace obs

enum class FailPointAction : uint8_t {
  kOff = 0,
  kReturnError,
  kShortWrite,
  kTornWrite,
  kDelay,
  kAbort,
};

const char* FailPointActionName(FailPointAction a);

// SIGKILLs the process the way the kAbort action does.  I/O sites call
// this after honouring a kTornWrite hit: a torn write the process
// survives cannot exist (if write() returned, the bytes are down), so
// tearing implies dying.
[[noreturn]] void FailPointHardAbort(const std::string& site);

struct FailPointPolicy {
  FailPointAction action = FailPointAction::kReturnError;
  int countdown = 0;
  double probability = 1.0;
  int max_fires = 1;  // -1 = unlimited
  uint32_t arg = 0;
};

// What an armed site should do right now.  kOff means the evaluation was
// a miss (countdown still running, probability said no, already disarmed).
struct FailPointHit {
  FailPointAction action = FailPointAction::kOff;
  uint32_t arg = 0;
};

// One named injection site.  Instances are created by the registry and
// live for the process lifetime (sites cache raw pointers in statics).
class FailPoint {
 public:
  const std::string& name() const { return name_; }

  // The only cost a disarmed site pays.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  // Slow path, call only when armed().  Runs countdown/probability/
  // max_fires bookkeeping.  kDelay is served here (sleeps, returns the
  // hit so callers may count it); kAbort never returns.
  FailPointHit Evaluate();

  // Generic-site helper: Evaluate() and fold any hit into
  // Status::Injected(name).  Short/torn hits also map to Injected —
  // only I/O sites that understand partial writes use Evaluate directly.
  Status Act();

  // Fires since this point was last Reset.
  int64_t fired() const { return fired_.load(std::memory_order_relaxed); }

 private:
  friend class FailPointRegistry;
  explicit FailPoint(std::string name) : name_(std::move(name)) {}

  void SetPolicy(const FailPointPolicy& policy, uint64_t seed);
  void Disarm();
  void ResetCounts();

  const std::string name_;
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> fired_{0};
  sync::Mutex mu_{sync::LockRank::kFailPoint, "failpoint.point_mu"};
  FailPointPolicy policy_ OIB_GUARDED_BY(mu_);
  int fires_left_ OIB_GUARDED_BY(mu_) = 0;  // -1 = unlimited
  uint64_t rng_ OIB_GUARDED_BY(mu_) = 0;
};

class FailPointRegistry {
 public:
  // Process-wide singleton.
  static FailPointRegistry& Instance();

  // Returns the (never-deallocated) point for `name`, creating it on
  // first use.  Sites cache the result in a function-local static.
  FailPoint* GetOrCreate(std::string_view name);

  // Arms `name` with a full policy.  Probability draws use the current
  // seed (SetSeed) mixed with the point name, so runs are reproducible.
  void ArmPolicy(const std::string& name, const FailPointPolicy& policy);

  // Legacy API: the (countdown+1)-th Check()/Evaluate() triggers once
  // with kReturnError, then the point disarms.  countdown=0 means the
  // very next evaluation triggers.
  void Arm(const std::string& name, int countdown = 0);

  // Disarms `name` (no-op if not armed).
  void Disarm(const std::string& name);

  // Disarms everything and zeroes fire counters (used between tests).
  // Registered points stay alive — site statics keep pointing at them.
  void Reset();

  // Legacy runtime-name check: true if the point fires now with an
  // error-like action (kDelay sleeps and reports false; kAbort kills the
  // process).  Hot-path cheap when nothing is armed anywhere.
  bool Check(const std::string& name);

  // Seed for probability draws of points armed *after* this call.
  void SetSeed(uint64_t seed);

  // Applies a failpoint spec.  Grammar (whitespace-free):
  //
  //   spec    := entry (';' entry)*
  //   entry   := name '=' action (':' param)*
  //   action  := error | short | torn | delay | abort | off
  //   param   := 'count=' N | 'p=' FLOAT | 'fires=' N | 'arg=' N
  //
  // e.g.  "filedisk.write=torn:count=12:arg=512;wal.flush=abort:p=0.01"
  // `off` disarms the named point.  fires=-1 keeps the point armed
  // forever.  Defaults: count=0, p=1.0, fires=1, arg=0.
  Status ConfigureFromSpec(std::string_view spec);

  // Reads OIB_FAILPOINT_SEED (uint64) and OIB_FAILPOINTS (spec as above);
  // returns the spec parse status.  Called from Engine::Open.
  Status ConfigureFromEnv();

  // Number of times any armed point fired since last Reset.
  int64_t fired_count() const {
    return fired_total_.load(std::memory_order_relaxed);
  }

  // Fires recorded against one point (0 if never created).
  int64_t fired_count(const std::string& name);

  // Currently armed point names (diagnostics / harness repro lines).
  std::vector<std::string> ArmedNames();

  // Registers failpoint.armed / failpoint.fired value callbacks.
  void AttachMetrics(obs::MetricsRegistry* registry);

 private:
  friend class FailPoint;
  FailPointRegistry() = default;

  // Points that are currently armed (fast-path gate for Check()).
  std::atomic<int> armed_points_{0};
  std::atomic<int64_t> fired_total_{0};
  std::atomic<uint64_t> seed_{0};
  sync::Mutex mu_{sync::LockRank::kFailPoint, "failpoint.mu"};
  std::unordered_map<std::string, std::unique_ptr<FailPoint>> points_
      OIB_GUARDED_BY(mu_);
};

}  // namespace oib

// Use at generic injection sites inside library code:
//   OIB_FAIL_POINT("nsf.before_insert_batch");
// expands to an early return of Status::Injected when the point fires.
// `name` must be a string literal (it is evaluated once).
#define OIB_FAIL_POINT(name)                                          \
  do {                                                                \
    static ::oib::FailPoint* const _oib_fp_site =                     \
        ::oib::FailPointRegistry::Instance().GetOrCreate(name);       \
    if (_oib_fp_site->armed()) {                                      \
      ::oib::Status _oib_fp_status = _oib_fp_site->Act();             \
      if (!_oib_fp_status.ok()) return _oib_fp_status;                \
    }                                                                 \
  } while (0)

// Use at I/O sites that can honour short/torn writes.  Fills `hit_var`
// (a FailPointHit lvalue) when the point fires; leaves it kOff otherwise.
#define OIB_FAIL_POINT_HIT(name, hit_var)                             \
  do {                                                                \
    static ::oib::FailPoint* const _oib_fp_site =                     \
        ::oib::FailPointRegistry::Instance().GetOrCreate(name);       \
    if (_oib_fp_site->armed()) (hit_var) = _oib_fp_site->Evaluate();  \
  } while (0)

#endif  // OIB_COMMON_FAILPOINT_H_
