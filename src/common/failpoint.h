// Failure-injection points for crash/restart testing.
//
// A fail point is a named site in library code.  Tests arm a point with a
// countdown; when the countdown reaches zero the site reports "triggered"
// and the enclosing operation returns Status::Injected.  The test then
// simulates a crash and exercises the restart path.  Disarmed points cost
// one atomic load.

#ifndef OIB_COMMON_FAILPOINT_H_
#define OIB_COMMON_FAILPOINT_H_

#include <atomic>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/sync.h"

namespace oib {

class FailPointRegistry {
 public:
  // Process-wide singleton.
  static FailPointRegistry& Instance();

  // Arms `name`: the (countdown+1)-th Check() on it triggers.  countdown=0
  // means the very next Check() triggers.
  void Arm(const std::string& name, int countdown = 0);

  // Disarms `name` (no-op if not armed).
  void Disarm(const std::string& name);

  // Disarms everything (used between tests).
  void Reset();

  // Returns true if the point fires now.  Hot-path cheap when nothing is
  // armed anywhere.
  bool Check(const std::string& name);

  // Number of times any armed point fired since last Reset.
  int64_t fired_count() const { return fired_.load(); }

 private:
  FailPointRegistry() = default;

  std::atomic<int> armed_count_{0};
  std::atomic<int64_t> fired_{0};
  sync::Mutex mu_{sync::LockRank::kFailPoint, "failpoint.mu"};
  std::unordered_map<std::string, int> points_ OIB_GUARDED_BY(mu_);
};

}  // namespace oib

// Use at injection sites inside library code:
//   OIB_FAIL_POINT("nsf.before_insert_batch");
// expands to an early return of Status::Injected when the point fires.
#define OIB_FAIL_POINT(name)                                        \
  do {                                                              \
    if (::oib::FailPointRegistry::Instance().Check(name)) {         \
      return ::oib::Status::Injected(name);                         \
    }                                                               \
  } while (0)

#endif  // OIB_COMMON_FAILPOINT_H_
