// Small POSIX I/O helpers shared by the file-backed storage layers
// (FileDisk, the WAL file sink, RunStore spill files): full-transfer
// pread/pwrite loops that retry EINTR and short transfers, and a
// whole-file reader.

#ifndef OIB_COMMON_POSIX_IO_H_
#define OIB_COMMON_POSIX_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace oib {

// pread/pwrite until all n bytes transfer.  EINTR and short transfers
// are retried in place; only a hard error (or EOF on read) fails.
Status PreadFull(int fd, char* buf, size_t n, uint64_t off);
Status PwriteFull(int fd, const char* buf, size_t n, uint64_t off);

// Reads the entire file at `path` into *out.  NotFound if it does not
// exist.
Status ReadFileToString(const std::string& path, std::string* out);

}  // namespace oib

#endif  // OIB_COMMON_POSIX_IO_H_
