// Annotated synchronization primitives with a static lock-rank registry.
//
// Every mutex in src/ is a sync::Mutex or sync::SharedMutex constructed
// with a LockRank and a name.  Two enforcement layers share that rank:
//
//  * Compile time (Clang only): the OIB_* macros below expand to Clang's
//    thread-safety capability attributes, so `-Werror=thread-safety`
//    rejects guarded-field access without the guarding mutex held and
//    REQUIRES/EXCLUDES contract violations.  On other compilers the
//    macros expand to nothing and the wrappers are thin forwarding shims.
//
//  * Run time (debug builds): each thread keeps a stack of held locks;
//    a blocking acquisition whose rank is not strictly above every held
//    rank aborts with both mutex names in the message.  This complements
//    the TSan CI job, which runs with detect_deadlocks=0 because frame
//    recycling in the buffer pool merges unrelated page-latch edges into
//    spurious inversion cycles (see .github/workflows/ci.yml).
//
// The rank lattice (ascending = outer -> inner acquisition order) is the
// machine-checked form of DESIGN.md section 6; change them together.
// Four deliberate carve-outs, each encoded as a rank property:
//
//  * kPageLatch is NESTABLE: crabbing acquires a child page latch while
//    holding the parent's (tree root -> leaf, heap head -> tail), so
//    equal-rank acquisition is allowed for this rank only.  The order
//    over live pages is acyclic by construction (always top-down).
//  * kDrainGate is EXEMPT: the ActiveBuild drain gate is acquired shared
//    *under* a data-page latch (visibility decision, record_manager.cc)
//    while page latches are acquired *under* the gate (side-file append,
//    final drain in sf_builder.cc).  That cycle is benign — the pages
//    latched under the gate are never the page latched above it, and the
//    gate_closing protocol bounds writer wait — but no total order can
//    express it, so the gate participates in recursion/release checking
//    only.
//  * kSideFileExtend is EXEMPT for the same disjoint-page-sets reason:
//    the Figure 2 undo hook appends side-file compensation entries while
//    the *data* page being undone is still latched, and a full tail
//    makes that append take extend_mu_; ExtendChain then latches
//    *side-file* pages (plus WAL/shard/disk mutexes) under extend_mu_.
//    A side-file chain page is never a data page, so the two directions
//    cannot close a cycle.
//  * Try-acquisitions skip the order check (failure is handled, so they
//    cannot deadlock) but successful ones still push onto the stack.
//
// Condition-variable waits release the mutex while blocked: CondVar pops
// the rank entry on entry and re-checks + re-pushes on wakeup.

#ifndef OIB_COMMON_SYNC_H_
#define OIB_COMMON_SYNC_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros (no-ops elsewhere).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define OIB_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define OIB_THREAD_ANNOTATION_(x)
#endif

#define OIB_CAPABILITY(x) OIB_THREAD_ANNOTATION_(capability(x))
#define OIB_SCOPED_CAPABILITY OIB_THREAD_ANNOTATION_(scoped_lockable)
#define OIB_GUARDED_BY(x) OIB_THREAD_ANNOTATION_(guarded_by(x))
#define OIB_PT_GUARDED_BY(x) OIB_THREAD_ANNOTATION_(pt_guarded_by(x))
#define OIB_REQUIRES(...) \
  OIB_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define OIB_REQUIRES_SHARED(...) \
  OIB_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define OIB_ACQUIRE(...) \
  OIB_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define OIB_ACQUIRE_SHARED(...) \
  OIB_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define OIB_RELEASE(...) \
  OIB_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define OIB_RELEASE_SHARED(...) \
  OIB_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define OIB_RELEASE_GENERIC(...) \
  OIB_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))
#define OIB_TRY_ACQUIRE(...) \
  OIB_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define OIB_TRY_ACQUIRE_SHARED(...) \
  OIB_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))
#define OIB_EXCLUDES(...) OIB_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define OIB_ASSERT_CAPABILITY(x) \
  OIB_THREAD_ANNOTATION_(assert_capability(x))
#define OIB_RETURN_CAPABILITY(x) OIB_THREAD_ANNOTATION_(lock_returned(x))
#define OIB_NO_THREAD_SAFETY_ANALYSIS \
  OIB_THREAD_ANNOTATION_(no_thread_safety_analysis)

// The runtime rank checker rides on assertions: on in Debug, off in
// RelWithDebInfo/Release (zero overhead on the hot path), forceable for
// tooling that wants it in optimized builds.
#if !defined(NDEBUG) || defined(OIB_FORCE_RANK_CHECK)
#define OIB_RANK_CHECK 1
#else
#define OIB_RANK_CHECK 0
#endif

namespace oib {
namespace sync {

// Acquisition order lattice, ascending: holding rank R, a thread may
// block only on ranks > R (== R is allowed for nestable ranks; exempt
// ranks are ignored in both directions).  Gaps leave room for new locks.
enum class LockRank : uint16_t {
  kBuildPlan = 10,       // BuildPipeline scan-plan mutex (checkpoint persist
                         // runs under it: sorter writers -> RunStore, disk)
  kDrainGate = 20,       // ActiveBuild::gate — EXEMPT, see file comment
  kHeapExtend = 30,      // HeapFile::extend_mu_ (new page + relink under it)
  kSideFileExtend = 40,  // SideFile::extend_mu_ — EXEMPT, see file comment
  kTxnActive = 50,       // TransactionManager::mu_ (active-txn table)
  kPageLatch = 60,       // Page::latch_ — NESTABLE (crabbing)
  kBufferShard = 70,     // BufferPool Shard::mu (evict flushes WAL + disk
                         // under it; acquired under a parent page latch)
  kRecordBuilds = 80,    // RecordManager::builds_mu_ (build registry)
  kCatalog = 90,         // Catalog::mu_ (persist flushes WAL + disk under it;
                         // acquired under a data-page latch by PlanFor)
  kHashShard = 95,       // HashIndex Shard::mu (probe/mirror; mirrored under
                         // a leaf page latch, probed with no latch held)
  kHeapHints = 100,      // HeapFile::hints_mu_ (under a page latch)
  kSideFileCount = 105,  // SideFile::count_mu_
  kLockTable = 110,      // LockManager::mu_ (+ cv_)
  kWalFlush = 120,       // LogManager::flush_mu_ (group-commit leader)
  kWalDrain = 130,       // LogManager::drain_mu_ (nested under flush_mu_)
  kRunStore = 140,       // RunStore::mu_ (spill store)
  kMergeQueue = 150,     // BuildPipeline merge/consume handoff queue
  kDisk = 160,           // DiskManager::mu_ (leaf; held across simulated IO)
  kFailPoint = 170,      // FailPointRegistry::mu_ (checked under latches)
  kStatsSampler = 175,   // obs::StatsSampler::mu_ (sample ring + lifecycle;
                         // the sampler thread snapshots the registry with
                         // this released, but kObs still nests above it)
  kObs = 180,            // MetricsRegistry::mu_ (registration/snapshot)
};

const char* LockRankName(LockRank rank);

// Dense 0-based index used by the per-rank lock-contention profiler
// (obs/lock_profile.cc).  Keep in sync with the enum above.
inline constexpr int kNumLockRanks = 21;
constexpr int LockRankIndex(LockRank rank) {
  switch (rank) {
    case LockRank::kBuildPlan:      return 0;
    case LockRank::kDrainGate:      return 1;
    case LockRank::kHeapExtend:     return 2;
    case LockRank::kSideFileExtend: return 3;
    case LockRank::kTxnActive:      return 4;
    case LockRank::kPageLatch:      return 5;
    case LockRank::kBufferShard:    return 6;
    case LockRank::kRecordBuilds:   return 7;
    case LockRank::kCatalog:        return 8;
    case LockRank::kHashShard:      return 9;
    case LockRank::kHeapHints:      return 10;
    case LockRank::kSideFileCount:  return 11;
    case LockRank::kLockTable:      return 12;
    case LockRank::kWalFlush:       return 13;
    case LockRank::kWalDrain:       return 14;
    case LockRank::kRunStore:       return 15;
    case LockRank::kMergeQueue:     return 16;
    case LockRank::kDisk:           return 17;
    case LockRank::kFailPoint:      return 18;
    case LockRank::kStatsSampler:   return 19;
    case LockRank::kObs:            return 20;
  }
  return 0;
}

// Equal-rank acquisition allowed (page-latch crabbing).
constexpr bool LockRankNestable(LockRank rank) {
  return rank == LockRank::kPageLatch;
}
// Excluded from the order check entirely (cyclic with page latches by
// design; recursion and release bookkeeping still apply).
constexpr bool LockRankExempt(LockRank rank) {
  return rank == LockRank::kDrainGate ||
         rank == LockRank::kSideFileExtend;
}

// True when the runtime rank checker is compiled in and active.
bool RankCheckActive();

// ---------------------------------------------------------------------------
// Lock-contention profiler hooks
// ---------------------------------------------------------------------------
//
// When enabled at runtime (Options::obs_lock_profile, or a bench calling
// SetLockProfileEnabled directly), every *contended* blocking acquisition
// records its wait time, and the hold that follows records its duration
// on release, into per-rank log-scaled histograms owned by
// obs/lock_profile.cc.  The design keeps the instrumented paths honest:
//
//  * the uncontended acquire path is a single try_lock atomic — no clock
//    reads, no histogram touches, nothing but the relaxed enabled-flag
//    load on top of the unprofiled build;
//  * only contended acquisitions pay for timestamps and recording, so the
//    profiler's cost is proportional to the contention it measures;
//  * shared (reader) acquisitions record wait time only — hold tracking
//    needs a per-owner cell, and readers are many.
//
// Defining OIB_NO_LOCK_PROFILE (cmake -DOIB_NO_LOCK_PROFILE=ON) compiles
// the whole mechanism out: the hooks become empty inlines, the enabled
// flag disappears, and Mutex/SharedMutex shrink back to bare wrappers.
#if !defined(OIB_NO_LOCK_PROFILE)
#define OIB_LOCK_PROFILE 1
#else
#define OIB_LOCK_PROFILE 0
#endif

namespace prof {
#if OIB_LOCK_PROFILE
extern std::atomic<bool> g_lock_profile_enabled;
inline bool Enabled() {
  return g_lock_profile_enabled.load(std::memory_order_relaxed);
}
// Defined in obs/lock_profile.cc (steady-clock read; called only on the
// contended path, so an out-of-line call is fine).
uint64_t NowNanos();
void RecordWait(LockRank rank, uint64_t wait_ns);
void RecordHold(LockRank rank, uint64_t hold_ns);
void SetEnabled(bool on);
#else
inline bool Enabled() { return false; }
inline uint64_t NowNanos() { return 0; }
inline void RecordWait(LockRank, uint64_t) {}
inline void RecordHold(LockRank, uint64_t) {}
inline void SetEnabled(bool) {}
#endif
}  // namespace prof

namespace internal {
#if OIB_RANK_CHECK
// All take the raw native-handle address as the lock identity.
void OnAcquire(const void* mu, LockRank rank, const char* name);     // checked
// Before the try_lock attempt: same-thread reacquisition is UB on the
// underlying mutex regardless of the attempt's outcome, so recursion is
// checked up front; order is not (a failed try cannot deadlock).
void OnTryAcquire(const void* mu, LockRank rank, const char* name);
void OnTryAcquired(const void* mu, LockRank rank, const char* name); // pushed
void OnRelease(const void* mu, const char* name);
#else
inline void OnAcquire(const void*, LockRank, const char*) {}
inline void OnTryAcquire(const void*, LockRank, const char*) {}
inline void OnTryAcquired(const void*, LockRank, const char*) {}
inline void OnRelease(const void*, const char*) {}
#endif
}  // namespace internal

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

class OIB_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() OIB_ACQUIRE() {
    internal::OnAcquire(&mu_, rank_, name_);
#if OIB_LOCK_PROFILE
    if (prof::Enabled()) {
      if (mu_.try_lock()) return;  // uncontended: one atomic, no stats
      uint64_t t0 = prof::NowNanos();
      mu_.lock();
      uint64_t t1 = prof::NowNanos();
      prof::RecordWait(rank_, t1 - t0);
      hold_start_ns_ = t1;
      return;
    }
#endif
    mu_.lock();
  }
  bool TryLock() OIB_TRY_ACQUIRE(true) {
    internal::OnTryAcquire(&mu_, rank_, name_);
    if (!mu_.try_lock()) return false;
    internal::OnTryAcquired(&mu_, rank_, name_);
    return true;
  }
  void Unlock() OIB_RELEASE() {
    internal::OnRelease(&mu_, name_);
#if OIB_LOCK_PROFILE
    if (hold_start_ns_ != 0) {
      prof::RecordHold(rank_, prof::NowNanos() - hold_start_ns_);
      hold_start_ns_ = 0;
    }
#endif
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

  // BasicLockable interface for std interop (CondVar's wait internals);
  // invisible to the static analysis — annotated code uses Lock/Unlock.
  void lock() OIB_NO_THREAD_SAFETY_ANALYSIS { Lock(); }
  void unlock() OIB_NO_THREAD_SAFETY_ANALYSIS { Unlock(); }

 private:
  std::mutex mu_;
#if OIB_LOCK_PROFILE
  // Start of the current contended hold; written and cleared only by the
  // holder while the mutex is held, so plain (non-atomic) access is
  // race-free.  Zero = the current hold was uncontended (untracked).
  uint64_t hold_start_ns_ = 0;
#endif
  const LockRank rank_;
  const char* const name_;
};

// ---------------------------------------------------------------------------
// SharedMutex
// ---------------------------------------------------------------------------

class OIB_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() OIB_ACQUIRE() {
    internal::OnAcquire(&mu_, rank_, name_);
#if OIB_LOCK_PROFILE
    if (prof::Enabled()) {
      if (mu_.try_lock()) return;  // uncontended: one atomic, no stats
      uint64_t t0 = prof::NowNanos();
      mu_.lock();
      uint64_t t1 = prof::NowNanos();
      prof::RecordWait(rank_, t1 - t0);
      hold_start_ns_ = t1;
      return;
    }
#endif
    mu_.lock();
  }
  bool TryLock() OIB_TRY_ACQUIRE(true) {
    internal::OnTryAcquire(&mu_, rank_, name_);
    if (!mu_.try_lock()) return false;
    internal::OnTryAcquired(&mu_, rank_, name_);
    return true;
  }
  void Unlock() OIB_RELEASE() {
    internal::OnRelease(&mu_, name_);
#if OIB_LOCK_PROFILE
    if (hold_start_ns_ != 0) {
      prof::RecordHold(rank_, prof::NowNanos() - hold_start_ns_);
      hold_start_ns_ = 0;
    }
#endif
    mu_.unlock();
  }

  void LockShared() OIB_ACQUIRE_SHARED() {
    internal::OnAcquire(&mu_, rank_, name_);
#if OIB_LOCK_PROFILE
    // Shared acquisitions record wait only (see the prof file comment).
    if (prof::Enabled()) {
      if (mu_.try_lock_shared()) return;
      uint64_t t0 = prof::NowNanos();
      mu_.lock_shared();
      prof::RecordWait(rank_, prof::NowNanos() - t0);
      return;
    }
#endif
    mu_.lock_shared();
  }
  bool TryLockShared() OIB_TRY_ACQUIRE_SHARED(true) {
    internal::OnTryAcquire(&mu_, rank_, name_);
    if (!mu_.try_lock_shared()) return false;
    internal::OnTryAcquired(&mu_, rank_, name_);
    return true;
  }
  void UnlockShared() OIB_RELEASE_SHARED() {
    internal::OnRelease(&mu_, name_);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
#if OIB_LOCK_PROFILE
  // See Mutex::hold_start_ns_; tracks exclusive holds only.
  uint64_t hold_start_ns_ = 0;
#endif
  const LockRank rank_;
  const char* const name_;
};

// ---------------------------------------------------------------------------
// Scoped guards
// ---------------------------------------------------------------------------

class OIB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) OIB_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() OIB_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// Non-blocking variant: check owns_lock() after construction.
class OIB_SCOPED_CAPABILITY TryMutexLock {
 public:
  explicit TryMutexLock(Mutex* mu) OIB_TRY_ACQUIRE(true, mu)
      : mu_(mu), owned_(mu->TryLock()) {}
  ~TryMutexLock() OIB_RELEASE() {
    if (owned_) mu_->Unlock();
  }

  TryMutexLock(const TryMutexLock&) = delete;
  TryMutexLock& operator=(const TryMutexLock&) = delete;

  bool owns_lock() const { return owned_; }

 private:
  Mutex* const mu_;
  const bool owned_;
};

class OIB_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) OIB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() OIB_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

class OIB_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) OIB_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() OIB_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Movable shared-ownership guard (the drain gate outlives the function
// that acquires it: PlanFor hands it to Maintain inside MaintPlan).  The
// static analysis cannot track ownership moves, so this class is opaque
// to it; the runtime checker still sees acquire/release.
class SharedLock {
 public:
  SharedLock() = default;
  explicit SharedLock(SharedMutex* mu) OIB_NO_THREAD_SAFETY_ANALYSIS
      : mu_(mu) {
    mu_->LockShared();
  }
  SharedLock(SharedLock&& o) noexcept : mu_(o.mu_) { o.mu_ = nullptr; }
  SharedLock& operator=(SharedLock&& o) noexcept {
    Release();
    mu_ = o.mu_;
    o.mu_ = nullptr;
    return *this;
  }
  ~SharedLock() OIB_NO_THREAD_SAFETY_ANALYSIS { Release(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

  bool owns_lock() const { return mu_ != nullptr; }
  void Release() OIB_NO_THREAD_SAFETY_ANALYSIS {
    if (mu_ != nullptr) {
      mu_->UnlockShared();
      mu_ = nullptr;
    }
  }

 private:
  SharedMutex* mu_ = nullptr;
};

// Movable exclusive guard over a SharedMutex (CloseGate returns one).
class UniqueLock {
 public:
  UniqueLock() = default;
  explicit UniqueLock(SharedMutex* mu) OIB_NO_THREAD_SAFETY_ANALYSIS
      : mu_(mu) {
    mu_->Lock();
  }
  UniqueLock(UniqueLock&& o) noexcept : mu_(o.mu_) { o.mu_ = nullptr; }
  UniqueLock& operator=(UniqueLock&& o) noexcept {
    Release();
    mu_ = o.mu_;
    o.mu_ = nullptr;
    return *this;
  }
  ~UniqueLock() OIB_NO_THREAD_SAFETY_ANALYSIS { Release(); }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  bool owns_lock() const { return mu_ != nullptr; }
  void Release() OIB_NO_THREAD_SAFETY_ANALYSIS {
    if (mu_ != nullptr) {
      mu_->Unlock();
      mu_ = nullptr;
    }
  }

 private:
  SharedMutex* mu_ = nullptr;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

// Condition variable bound to sync::Mutex.  Waits go through the mutex's
// BasicLockable shims, so the rank stack stays consistent: the entry is
// popped while blocked and re-checked + re-pushed on wakeup.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) OIB_REQUIRES(mu) OIB_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) OIB_REQUIRES(mu)
      OIB_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu, std::move(pred));
  }
  std::cv_status WaitUntil(Mutex& mu,
                           std::chrono::steady_clock::time_point deadline)
      OIB_REQUIRES(mu) OIB_NO_THREAD_SAFETY_ANALYSIS {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace sync
}  // namespace oib

#endif  // OIB_COMMON_SYNC_H_
