// Engine-wide tunables.  Every knob the paper discusses as a design choice
// (keys per log record, IB checkpoint interval, leaf fill factor, ...) is a
// field here so the ablation benches can sweep it.

#ifndef OIB_COMMON_OPTIONS_H_
#define OIB_COMMON_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace oib {

struct Options {
  // --- storage ---
  size_t page_size = 4096;
  size_t buffer_pool_pages = 4096;  // 16 MiB at default page size.
  // Buffer-pool shards (power of two).  Each shard owns a slice of the
  // frames with its own mutex, page table, free list, and CLOCK hand, so
  // concurrent fetches on different pages never serialize on one lock.
  // 0 = auto: min(16, hardware_concurrency), capped so that every shard
  // keeps at least kMinPagesPerShard frames.
  size_t buffer_pool_shards = 0;

  // --- write-ahead log ---
  // Capacity of the WAL append ring buffer (power of two).  Appenders
  // reserve space with one fetch-add and copy outside any lock; the ring
  // is drained into the log's backing store by Flush (group commit) or by
  // an appender that finds it full.  Must exceed the largest single log
  // record (a record spanning a full page plus framing fits comfortably
  // at the 1 MiB default).
  size_t wal_ring_bytes = 1 << 20;

  // --- recovery ---
  // Worker threads for the restart redo phase.  1 replays the log on the
  // calling thread (analysis and redo share one forward pass); N > 1
  // first collects redo work during analysis, then partitions it by
  // page id across N workers — per-page LSN order is preserved because a
  // page's records all land in the same partition, and multi-page records
  // (B+-tree splits, root growth) act as barriers applied serially.
  size_t recovery_threads = 1;

  // --- fault injection ---
  // Failpoint spec applied at Engine::Open/Restart (see
  // FailPointRegistry::ConfigureFromSpec for the grammar); empty = none.
  // The OIB_FAILPOINTS / OIB_FAILPOINT_SEED environment variables are
  // applied on top, so a harness can inject faults into any binary.
  std::string failpoints;
  // Seed for failpoint probability draws (reproducible crash schedules).
  uint64_t failpoint_seed = 0;

  // --- locking ---
  // Milliseconds a lock request waits before the requester is told to
  // abort (timeout-based deadlock resolution).
  uint64_t lock_timeout_ms = 2000;

  // --- external sort ---
  // Keys held in memory by the tournament tree during run generation.
  size_t sort_workspace_keys = 64 * 1024;
  // Maximum input runs merged in one pass.
  size_t sort_merge_fanin = 64;

  // --- B+-tree ---
  // Fraction of a leaf filled during bottom-up build / IB inserts; the
  // remainder is left free for future inserts (paper section 2.2.3).
  double leaf_fill_factor = 0.9;

  // --- index build (both algorithms) ---
  // Keys passed to the index manager per multi-key insert call
  // (paper: "the index manager will accept multiple keys in a single call").
  size_t ib_keys_per_call = 64;
  // Keys per IB progress checkpoint ("periodically checkpoint the highest
  // key", sections 2.2.3 / 3.2.4); 0 disables IB checkpoints.
  size_t ib_checkpoint_every_keys = 100000;
  // Pages read per simulated sequential-prefetch I/O (section 2.2.2).
  size_t ib_prefetch_pages = 32;
  // Sort-phase checkpoint interval, in extracted keys (section 5.1);
  // 0 disables sort checkpoints.
  size_t sort_checkpoint_every_keys = 100000;

  // --- SF specifics ---
  // Side-file entries applied between IB commits during catch-up
  // (section 3.2.5).
  size_t sf_apply_batch = 1024;
  // Sort the side-file before applying it (section 3.2.5 optimization).
  bool sf_sort_side_file = false;

  // --- build pipeline ---
  // Scan workers for the partitioned extract+sort phase.  1 keeps the
  // whole build on the calling thread (deterministic, seed-equivalent);
  // N > 1 splits the heap chain into N page ranges scanned concurrently.
  size_t build_threads = 1;
  // Sorted items handed from the final merge to the consumer (bulk loader
  // / IbInsertBatch) per batch; also the consumer's checkpoint grain.
  size_t merge_batch_keys = 1024;
  // Bounded merge->consumer queue depth when the merge runs on its own
  // thread (build_threads > 1).  2 = classic double buffering.
  size_t merge_queue_depth = 2;

  // --- hash fast path ---
  // Maintains a sharded hash table over <normalized key -> RID> next to
  // every B+-tree index and consults it first on point reads
  // (RecordManager::ReadRecordByKey), falling back to a tree descent on
  // a miss.  The hash mirrors the tree's leaf entries (including
  // pseudo-delete flags) via the tree's entry observer, so NSF/SF
  // visibility rules carry over unchanged.  Off by default: the engine is
  // byte-identical with the flag clear.
  bool enable_hash_index = false;
  // Shards per hash fragment (power of two).  0 = auto:
  // min(16, hardware_concurrency) rounded down to a power of two.
  size_t hash_index_shards = 0;

  // --- observability ---
  // Turns on the per-rank lock-contention profiler (common/sync.h,
  // obs/lock_profile.h): contended mutex acquisitions record wait and
  // hold times per LockRank.  Uncontended acquisitions stay a single
  // atomic either way; builds with OIB_NO_LOCK_PROFILE compile the whole
  // mechanism out and ignore this flag.  The switch is process-wide
  // (sticky-on): opening any engine with it set enables profiling.
  bool obs_lock_profile = false;
};

class Status;

// Rejects configurations the engine would silently misbehave on (zero
// workspaces, zero batch sizes, build_threads == 0, ...).  Called by
// Engine::Open/Restart before any component is wired up.
Status ValidateOptions(const Options& options);

}  // namespace oib

#endif  // OIB_COMMON_OPTIONS_H_
