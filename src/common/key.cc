#include "common/key.h"

namespace oib {

size_t CommonPrefixLen(KeySlice a, KeySlice b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  size_t i = 0;
  while (i < n && a.data()[i] == b.data()[i]) ++i;
  return i;
}

int ComparePrefixedKey(KeySlice prefix, KeySlice suffix, KeySlice probe) {
  size_t n = prefix.size() < probe.size() ? prefix.size() : probe.size();
  int c = n == 0 ? 0 : std::memcmp(prefix.data(), probe.data(), n);
  if (c != 0) return c < 0 ? -1 : 1;
  if (probe.size() <= prefix.size()) {
    // probe exhausted inside (or exactly at) the prefix.
    if (probe.size() == prefix.size() && suffix.empty()) return 0;
    return 1;  // prefix+suffix is longer -> greater
  }
  return suffix.Compare(
      KeySlice(probe.data() + prefix.size(), probe.size() - prefix.size()));
}

bool TruncateSeparator(KeySlice left_max, KeySlice right_first,
                       std::string* sep) {
  size_t d = CommonPrefixLen(left_max, right_first);
  if (d >= right_first.size()) {
    // right_first equals left_max or is a prefix of it; no proper prefix
    // of right_first exceeds left_max.
    return false;
  }
  // right_first[0..d] differs from (or extends past) left_max, so the
  // (d+1)-byte prefix already sorts strictly above left_max.
  size_t len = d + 1;
  if (len >= right_first.size()) return false;  // no shorter than the key
  sep->assign(right_first.data(), len);
  return true;
}

namespace keyenc {

void AppendStringColumn(std::string* out, std::string_view value) {
  for (char ch : value) {
    if (ch == '\0') {
      out->push_back('\0');
      out->push_back(static_cast<char>(0xFF));
    } else {
      out->push_back(ch);
    }
  }
  out->push_back('\0');
  out->push_back('\0');
}

void AppendInt64Column(std::string* out, int64_t value) {
  uint64_t u = static_cast<uint64_t>(value) ^ (uint64_t{1} << 63);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((u >> shift) & 0xFF));
  }
}

}  // namespace keyenc

bool KeyDecoder::DecodeString(std::string* out) {
  out->clear();
  while (pos_ + 1 < size_ || (pos_ < size_ && data_[pos_] != '\0')) {
    char ch = data_[pos_];
    if (ch != '\0') {
      out->push_back(ch);
      ++pos_;
      continue;
    }
    char next = data_[pos_ + 1];
    pos_ += 2;
    if (next == '\0') return true;  // terminator
    if (static_cast<uint8_t>(next) == 0xFF) {
      out->push_back('\0');
      continue;
    }
    return false;  // invalid escape
  }
  return false;  // ran out of bytes before the terminator
}

bool KeyDecoder::DecodeInt64(int64_t* out) {
  if (pos_ + 8 > size_) return false;
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<uint8_t>(data_[pos_ + i]);
  }
  pos_ += 8;
  *out = static_cast<int64_t>(u ^ (uint64_t{1} << 63));
  return true;
}

}  // namespace oib
