// StatsSampler: a background thread that snapshots a MetricsRegistry at a
// fixed interval into a bounded in-memory time series.
//
// Point-in-time bench numbers (one snapshot at the end of a build) cannot
// say *when* the WAL ring backed up or which phase starved the buffer
// pool; the sampler turns the registry into a per-tick series so every
// BENCH_*.json gains a "timeseries" section (update throughput, WAL
// flushed-LSN lag, per-shard buffer-pool hit rate, side-file backlog —
// see obs::TimeseriesToJson) alongside the end-of-run totals.
//
// Each tick stores every counter and gauge plus the count/sum of every
// histogram (enough to derive rates and mean latencies per window)
// tagged with milliseconds since Start().  The ring keeps the most
// recent `capacity` samples.  Start/Stop are idempotent; Stop takes one
// final sample so even a sub-interval run reports at least one point.

#ifndef OIB_OBS_SAMPLER_H_
#define OIB_OBS_SAMPLER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace oib {
namespace obs {

class StatsSampler {
 public:
  struct Sample {
    double t_ms = 0;  // since Start() (0 for SampleNow before any Start)
    std::map<std::string, uint64_t> counters;  // + histogram .count/.sum
    std::map<std::string, int64_t> gauges;
  };

  explicit StatsSampler(MetricsRegistry* registry, uint64_t interval_ms = 100,
                        size_t capacity = 4096);
  ~StatsSampler();  // stops the thread if still running

  StatsSampler(const StatsSampler&) = delete;
  StatsSampler& operator=(const StatsSampler&) = delete;

  // Idempotent: a second Start while running is a no-op; Start after Stop
  // resumes sampling (the ring is kept).
  void Start();
  // Idempotent (including before any Start): stops the thread after one
  // final sample and joins it.
  void Stop();
  bool running() const;

  // Takes one sample immediately on the calling thread (works whether or
  // not the background thread is running).
  void SampleNow();

  uint64_t interval_ms() const { return interval_ms_; }

  // Oldest first.
  std::vector<Sample> Samples() const;
  void Clear();

 private:
  void Loop();
  void Push(Sample sample);
  Sample Collect() const;  // snapshots the registry (no sampler lock held)

  MetricsRegistry* const registry_;
  const uint64_t interval_ms_;
  const size_t capacity_;

  mutable sync::Mutex mu_{sync::LockRank::kStatsSampler, "obs.sampler.mu"};
  sync::CondVar cv_;
  bool running_ OIB_GUARDED_BY(mu_) = false;
  bool stop_ OIB_GUARDED_BY(mu_) = false;
  std::deque<Sample> ring_ OIB_GUARDED_BY(mu_);

  std::thread thread_;  // accessed only by Start/Stop callers
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace oib

#endif  // OIB_OBS_SAMPLER_H_
