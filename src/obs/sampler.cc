#include "obs/sampler.h"

#include <utility>

namespace oib {
namespace obs {

StatsSampler::StatsSampler(MetricsRegistry* registry, uint64_t interval_ms,
                           size_t capacity)
    : registry_(registry),
      interval_ms_(interval_ms == 0 ? 1 : interval_ms),
      capacity_(capacity == 0 ? 1 : capacity),
      start_(std::chrono::steady_clock::now()) {}

StatsSampler::~StatsSampler() { Stop(); }

void StatsSampler::Start() {
  {
    sync::MutexLock lock(&mu_);
    if (running_) return;
    running_ = true;
    stop_ = false;
  }
  start_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { Loop(); });
}

void StatsSampler::Stop() {
  {
    sync::MutexLock lock(&mu_);
    if (!running_) return;
    stop_ = true;
    cv_.NotifyAll();
  }
  thread_.join();
  sync::MutexLock lock(&mu_);
  running_ = false;
}

bool StatsSampler::running() const {
  sync::MutexLock lock(&mu_);
  return running_;
}

void StatsSampler::SampleNow() { Push(Collect()); }

std::vector<StatsSampler::Sample> StatsSampler::Samples() const {
  sync::MutexLock lock(&mu_);
  return std::vector<Sample>(ring_.begin(), ring_.end());
}

void StatsSampler::Clear() {
  sync::MutexLock lock(&mu_);
  ring_.clear();
}

void StatsSampler::Loop() {
  auto next = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(interval_ms_);
  for (;;) {
    {
      sync::MutexLock lock(&mu_);
      while (!stop_ && std::chrono::steady_clock::now() < next) {
        cv_.WaitUntil(mu_, next);
      }
      if (stop_) break;
    }
    // Snapshot outside mu_: TakeSnapshot takes the registry lock (kObs)
    // and runs value callbacks; holding the sampler lock across it would
    // stall Stop() for the whole collection.
    Push(Collect());
    next += std::chrono::milliseconds(interval_ms_);
    // If collection overran the interval, skip ahead rather than firing a
    // burst of back-to-back samples.
    auto now = std::chrono::steady_clock::now();
    if (next < now) next = now + std::chrono::milliseconds(interval_ms_);
  }
  // Final sample on the way out so a run shorter than one interval still
  // reports at least one point.
  Push(Collect());
}

void StatsSampler::Push(Sample sample) {
  sync::MutexLock lock(&mu_);
  ring_.push_back(std::move(sample));
  while (ring_.size() > capacity_) ring_.pop_front();
}

StatsSampler::Sample StatsSampler::Collect() const {
  Sample s;
  s.t_ms = std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
               .count();
  MetricsSnapshot snap = registry_->TakeSnapshot();
  s.counters = std::move(snap.counters);
  for (const auto& [name, g] : snap.gauges) s.gauges[name] = g;
  // Histograms are folded to count/sum: enough to derive per-window rates
  // and mean latencies without storing 252 buckets per tick.
  for (const auto& [name, h] : snap.histograms) {
    s.counters[name + ".count"] = h.count;
    s.counters[name + ".sum"] = h.sum;
  }
  return s;
}

}  // namespace obs
}  // namespace oib
