#include "obs/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace oib {
namespace obs {

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  need_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  need_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendEscaped(key);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::Value(std::string_view v) {
  MaybeComma();
  AppendEscaped(v);
}

void JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
}

void JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

std::string RenderMetricsTable(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-40s %20" PRIu64 "\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "%-40s %20" PRId64 "\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s n=%-10" PRIu64 " mean=%-12.0f p50=%-12" PRIu64
                  " p95=%-12" PRIu64 " p99=%-12" PRIu64 " max=%" PRIu64 "\n",
                  name.c_str(), h.count, h.mean(), h.Percentile(50),
                  h.Percentile(95), h.Percentile(99), h.max);
    out += line;
  }
  return out;
}

void MetricsToJson(const MetricsSnapshot& snapshot, JsonWriter* w) {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w->Key(name);
    w->Value(value);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w->Key(name);
    w->Value(value);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Value(h.count);
    w->Key("sum");
    w->Value(h.sum);
    w->Key("mean");
    w->Value(h.mean());
    w->Key("p50");
    w->Value(h.Percentile(50));
    w->Key("p95");
    w->Value(h.Percentile(95));
    w->Key("p99");
    w->Value(h.Percentile(99));
    w->Key("max");
    w->Value(h.max);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

void SpansToJson(const std::vector<Span>& spans, JsonWriter* w) {
  w->BeginObject();
  for (const auto& [name, agg] : AggregateSpans(spans)) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Value(agg.count);
    w->Key("total_ns");
    w->Value(agg.total_ns);
    w->Key("max_ns");
    w->Value(agg.max_ns);
    w->EndObject();
  }
  w->EndObject();
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t n = std::fwrite(data.data(), 1, data.size(), f);
  int rc = std::fclose(f);
  if (n != data.size() || rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace oib
