#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

namespace oib {
namespace obs {

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_.push_back(',');
    need_comma_.back() = true;
  }
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  need_comma_.push_back(false);
}

void JsonWriter::EndObject() {
  out_.push_back('}');
  need_comma_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  need_comma_.push_back(false);
}

void JsonWriter::EndArray() {
  out_.push_back(']');
  need_comma_.pop_back();
}

void JsonWriter::Key(std::string_view key) {
  MaybeComma();
  AppendEscaped(key);
  out_.push_back(':');
  after_key_ = true;
}

void JsonWriter::Value(std::string_view v) {
  MaybeComma();
  AppendEscaped(v);
}

void JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_ += buf;
}

void JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_ += buf;
}

void JsonWriter::Value(double v) {
  MaybeComma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_ += buf;
}

void JsonWriter::Value(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
}

void JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
}

void JsonWriter::RawNumber(std::string_view v) {
  MaybeComma();
  out_ += v;
}

std::string RenderMetricsTable(const MetricsSnapshot& snapshot) {
  std::string out;
  char line[256];
  for (const auto& [name, value] : snapshot.counters) {
    std::snprintf(line, sizeof(line), "%-40s %20" PRIu64 "\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "%-40s %20" PRId64 "\n", name.c_str(),
                  value);
    out += line;
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "%-40s n=%-10" PRIu64 " mean=%-12.0f p50=%-12" PRIu64
                  " p95=%-12" PRIu64 " p99=%-12" PRIu64 " max=%" PRIu64 "\n",
                  name.c_str(), h.count, h.mean(), h.Percentile(50),
                  h.Percentile(95), h.Percentile(99), h.max);
    out += line;
  }
  return out;
}

void MetricsToJson(const MetricsSnapshot& snapshot, JsonWriter* w) {
  w->BeginObject();
  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    w->Key(name);
    w->Value(value);
  }
  w->EndObject();
  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    w->Key(name);
    w->Value(value);
  }
  w->EndObject();
  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : snapshot.histograms) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Value(h.count);
    w->Key("sum");
    w->Value(h.sum);
    w->Key("mean");
    w->Value(h.mean());
    w->Key("p50");
    w->Value(h.Percentile(50));
    w->Key("p95");
    w->Value(h.Percentile(95));
    w->Key("p99");
    w->Value(h.Percentile(99));
    w->Key("max");
    w->Value(h.max);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

void SpansToJson(const std::vector<Span>& spans, JsonWriter* w) {
  w->BeginObject();
  for (const auto& [name, agg] : AggregateSpans(spans)) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Value(agg.count);
    w->Key("total_ns");
    w->Value(agg.total_ns);
    w->Key("max_ns");
    w->Value(agg.max_ns);
    w->EndObject();
  }
  w->EndObject();
}

namespace {

void HistogramSummaryToJson(const HistogramSnapshot& h, JsonWriter* w) {
  w->BeginObject();
  w->Key("count");
  w->Value(h.count);
  w->Key("total_ns");
  w->Value(h.sum);
  w->Key("p50_ns");
  w->Value(h.Percentile(50));
  w->Key("p99_ns");
  w->Value(h.Percentile(99));
  w->Key("max_ns");
  w->Value(h.max);
  w->EndObject();
}

uint64_t GetCounter(const std::map<std::string, uint64_t>& counters,
                    const std::string& name) {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

// Counter deltas are clamped at zero: a MetricsRegistry::ResetAll between
// two ticks must read as "no progress", not a negative rate.
uint64_t ClampedDelta(uint64_t cur, uint64_t prev) {
  return cur >= prev ? cur - prev : 0;
}

}  // namespace

void LockContentionToJson(const std::vector<LockRankContention>& ranks,
                          JsonWriter* w) {
  std::vector<const LockRankContention*> order;
  order.reserve(ranks.size());
  for (const LockRankContention& r : ranks) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const LockRankContention* a, const LockRankContention* b) {
              return a->wait_ns.sum > b->wait_ns.sum;
            });
  w->BeginObject();
  w->Key("enabled");
  w->Value(LockProfileEnabled());
  w->Key("ranks");
  w->BeginObject();
  for (const LockRankContention* r : order) {
    w->Key(r->name);
    w->BeginObject();
    w->Key("rank");
    w->Value(static_cast<uint64_t>(r->rank));
    w->Key("waits");
    w->Value(r->waits);
    w->Key("wait");
    HistogramSummaryToJson(r->wait_ns, w);
    w->Key("hold");
    HistogramSummaryToJson(r->hold_ns, w);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

void TimeseriesToJson(const std::vector<StatsSampler::Sample>& samples,
                      uint64_t interval_ms, JsonWriter* w) {
  w->BeginObject();
  w->Key("interval_ms");
  w->Value(interval_ms);
  w->Key("samples");
  w->BeginArray();
  const StatsSampler::Sample* prev = nullptr;
  for (const StatsSampler::Sample& s : samples) {
    double dt_ms = prev != nullptr ? s.t_ms - prev->t_ms : s.t_ms;
    w->BeginObject();
    w->Key("t_ms");
    w->Value(s.t_ms);

    uint64_t ops = GetCounter(s.counters, "workload.ops");
    uint64_t dops =
        prev != nullptr
            ? ClampedDelta(ops, GetCounter(prev->counters, "workload.ops"))
            : ops;
    w->Key("ops");
    w->Value(ops);
    w->Key("update_ops_per_sec");
    w->Value(dt_ms > 0 ? static_cast<double>(dops) * 1000.0 / dt_ms : 0.0);

    uint64_t reserved = GetCounter(s.counters, "wal.reserved_bytes");
    uint64_t flushed = GetCounter(s.counters, "wal.flushed_bytes");
    w->Key("wal_lag_bytes");
    w->Value(reserved >= flushed ? reserved - flushed : 0);

    uint64_t appended = GetCounter(s.counters, "records.side_file_appends");
    uint64_t applied = GetCounter(s.counters, "sidefile.applied");
    w->Key("side_file_backlog");
    w->Value(appended >= applied ? appended - applied : 0);

    // Per-shard hit rate over this window; null when a shard saw no
    // traffic (0/0 is "no data", not 0% or 100%).
    w->Key("bp_hit_rate");
    w->BeginArray();
    for (size_t i = 0;; ++i) {
      std::string prefix = "bufferpool.shard" + std::to_string(i);
      auto it = s.counters.find(prefix + ".hits");
      if (it == s.counters.end()) break;
      uint64_t hits = it->second;
      uint64_t misses = GetCounter(s.counters, prefix + ".misses");
      uint64_t dh = prev != nullptr
                        ? ClampedDelta(hits, GetCounter(prev->counters,
                                                        prefix + ".hits"))
                        : hits;
      uint64_t dm = prev != nullptr
                        ? ClampedDelta(misses, GetCounter(prev->counters,
                                                          prefix + ".misses"))
                        : misses;
      if (dh + dm == 0) {
        w->Null();
      } else {
        w->Value(static_cast<double>(dh) / static_cast<double>(dh + dm));
      }
    }
    w->EndArray();
    w->EndObject();
    prev = &s;
  }
  w->EndArray();
  w->EndObject();
}

std::string TraceToChromeJson(const std::vector<Span>& spans,
                              uint64_t dropped) {
  // Rebase timestamps so ts stays small enough for ns precision to
  // survive the fixed %.3f microsecond format.
  uint64_t base = 0;
  if (!spans.empty()) {
    base = spans.front().start_ns;
    for (const Span& s : spans) base = std::min(base, s.start_ns);
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit");
  w.Value("ns");
  w.Key("otherData");
  w.BeginObject();
  w.Key("span_count");
  w.Value(static_cast<uint64_t>(spans.size()));
  w.Key("dropped_spans");
  w.Value(dropped);
  w.EndObject();
  w.Key("traceEvents");
  w.BeginArray();
  w.BeginObject();
  w.Key("name");
  w.Value("process_name");
  w.Key("ph");
  w.Value("M");
  w.Key("pid");
  w.Value(static_cast<uint64_t>(1));
  w.Key("tid");
  w.Value(static_cast<uint64_t>(0));
  w.Key("args");
  w.BeginObject();
  w.Key("name");
  w.Value("oib");
  w.EndObject();
  w.EndObject();
  for (const auto& [tid, name] : ThreadNames()) {
    w.BeginObject();
    w.Key("name");
    w.Value("thread_name");
    w.Key("ph");
    w.Value("M");
    w.Key("pid");
    w.Value(static_cast<uint64_t>(1));
    w.Key("tid");
    w.Value(static_cast<uint64_t>(tid));
    w.Key("args");
    w.BeginObject();
    w.Key("name");
    w.Value(name);
    w.EndObject();
    w.EndObject();
  }
  char num[32];
  for (const Span& s : spans) {
    w.BeginObject();
    w.Key("name");
    w.Value(s.name);
    w.Key("ph");
    w.Value("X");
    w.Key("pid");
    w.Value(static_cast<uint64_t>(1));
    w.Key("tid");
    w.Value(static_cast<uint64_t>(s.tid));
    w.Key("ts");
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(s.start_ns - base) / 1000.0);
    w.RawNumber(num);
    w.Key("dur");
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(s.duration_ns()) / 1000.0);
    w.RawNumber(num);
    w.Key("args");
    w.BeginObject();
    w.Key("arg");
    w.Value(s.arg);
    w.Key("seq");
    w.Value(s.seq);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Status WriteStringToFile(const std::string& path, const std::string& data) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  size_t n = std::fwrite(data.data(), 1, data.size(), f);
  int rc = std::fclose(f);
  if (n != data.size() || rc != 0) {
    return Status::IoError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace oib
