#include "obs/trace.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <map>

#include "common/sync.h"

namespace oib {
namespace obs {

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t CurrentThreadTid() {
  static std::atomic<uint32_t> next_tid{0};
  thread_local uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed) + 1;
  return tid;
}

namespace {

struct ThreadNameTable {
  sync::Mutex mu{sync::LockRank::kObs, "trace.thread_names_mu"};
  std::map<uint32_t, std::string> names OIB_GUARDED_BY(mu);
};

ThreadNameTable& NameTable() {
  static ThreadNameTable* table = new ThreadNameTable();
  return *table;
}

}  // namespace

void SetCurrentThreadName(const std::string& name) {
  ThreadNameTable& table = NameTable();
  sync::MutexLock lock(&table.mu);
  table.names[CurrentThreadTid()] = name;
}

std::vector<std::pair<uint32_t, std::string>> ThreadNames() {
  ThreadNameTable& table = NameTable();
  sync::MutexLock lock(&table.mu);
  return {table.names.begin(), table.names.end()};
}

Tracer& Tracer::Default() {
  // Sized so one full build run (a few thousand phase spans plus one span
  // per WAL group-commit batch) fits without wrapping — an evicted load
  // phase would make exported traces show only the tail of the run.
  static Tracer* global = new Tracer(32768);
  return *global;
}

Tracer::Tracer(size_t capacity) {
  if (capacity < 2) capacity = 2;
  size_t cap = std::bit_ceil(capacity);
  ring_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

void Tracer::Record(const char* name, uint64_t start_ns, uint64_t end_ns,
                    uint64_t arg) {
  uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed) + 1;
  Slot& slot = ring_[ticket & mask_];
  slot.seq.store(0, std::memory_order_release);  // invalidate for readers
  size_t len = std::strlen(name);
  if (len > sizeof(slot.name) - 1) len = sizeof(slot.name) - 1;
  std::memcpy(slot.name, name, len);
  slot.name[len] = '\0';
  slot.start_ns = start_ns;
  slot.end_ns = end_ns;
  slot.arg = arg;
  slot.tid = CurrentThreadTid();
  slot.seq.store(ticket, std::memory_order_release);
}

std::vector<Span> Tracer::Snapshot() const {
  std::vector<Span> out;
  out.reserve(mask_ + 1);
  for (size_t i = 0; i <= mask_; ++i) {
    const Slot& slot = ring_[i];
    uint64_t seq1 = slot.seq.load(std::memory_order_acquire);
    if (seq1 == 0) continue;
    Span span;
    span.seq = seq1;
    std::memcpy(span.name, slot.name, sizeof(span.name));
    span.start_ns = slot.start_ns;
    span.end_ns = slot.end_ns;
    span.arg = slot.arg;
    span.tid = slot.tid;
    uint64_t seq2 = slot.seq.load(std::memory_order_acquire);
    if (seq1 != seq2) continue;  // torn by a concurrent writer: drop
    out.push_back(span);
  }
  std::sort(out.begin(), out.end(),
            [](const Span& a, const Span& b) { return a.seq < b.seq; });
  return out;
}

void Tracer::Reset() {
  for (size_t i = 0; i <= mask_; ++i) {
    ring_[i].seq.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_relaxed);
}

std::vector<std::pair<std::string, SpanAggregate>> AggregateSpans(
    const std::vector<Span>& spans) {
  std::map<std::string, SpanAggregate> agg;
  for (const Span& s : spans) {
    SpanAggregate& a = agg[s.name];
    ++a.count;
    uint64_t d = s.duration_ns();
    a.total_ns += d;
    if (d > a.max_ns) a.max_ns = d;
  }
  return {agg.begin(), agg.end()};
}

}  // namespace obs
}  // namespace oib
