// Per-rank lock-contention profile: the read side of the sync::prof
// hooks (common/sync.h).
//
// Every contended blocking acquisition of a sync::Mutex / sync::SharedMutex
// records its wait time into a per-LockRank log-scaled histogram, and the
// exclusive hold that follows records its duration on release.  Because
// PR 4 gave every mutex in the engine a rank, a rank is a subsystem:
// "WalFlush waited 40 ms total, p99 900 us" attributes latency to the WAL
// group-commit path without any per-call-site instrumentation.
//
// Recording is lock-free (atomic histogram cells in static storage) and
// gated by Options::obs_lock_profile / sync::prof::SetEnabled.  Building
// with OIB_NO_LOCK_PROFILE compiles the hooks out entirely; Collect()
// then reports enabled=false and no ranks.

#ifndef OIB_OBS_LOCK_PROFILE_H_
#define OIB_OBS_LOCK_PROFILE_H_

#include <cstdint>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace oib {
namespace obs {

// One rank's accumulated contention since the last ResetLockProfile().
struct LockRankContention {
  sync::LockRank rank;
  const char* name = nullptr;       // LockRankName(rank)
  uint64_t waits = 0;               // contended blocking acquisitions
  HistogramSnapshot wait_ns;        // per-wait blocked time
  HistogramSnapshot hold_ns;        // exclusive holds after a contended wait
};

// True when the profiler is compiled in AND currently enabled.
bool LockProfileEnabled();

// Ranks with at least one recorded wait, ascending by rank.
std::vector<LockRankContention> CollectLockProfile();

// Zeroes every rank's counters and histograms.  Best-effort under
// concurrent recording (benches call it between measurement windows).
void ResetLockProfile();

}  // namespace obs
}  // namespace oib

#endif  // OIB_OBS_LOCK_PROFILE_H_
