// Exporters: human-readable metric tables and machine-readable JSON
// snapshots.  Every bench_e* binary writes a BENCH_<experiment>.json via
// bench_util's reporter so results are diffable across PRs.

#ifndef OIB_OBS_EXPORT_H_
#define OIB_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/lock_profile.h"
#include "obs/metrics.h"
#include "obs/sampler.h"
#include "obs/trace.h"

namespace oib {
namespace obs {

// Minimal streaming JSON writer.  The caller is responsible for a
// well-formed call sequence (Begin/End pairing, Key before each value
// inside an object); commas are inserted automatically.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(double v);  // non-finite values emitted as null
  void Value(bool v);
  void Null();
  // Emits a pre-formatted numeric token verbatim (for callers that need a
  // fixed decimal format, e.g. microsecond timestamps with ns precision).
  void RawNumber(std::string_view v);

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view s);

  std::string out_;
  // One flag per open container: true once a value/key was emitted.
  std::vector<bool> need_comma_{};
  bool after_key_ = false;
};

// Fixed-width table of every metric in the snapshot (histograms as
// count/mean/p50/p95/p99/max rows).
std::string RenderMetricsTable(const MetricsSnapshot& snapshot);

// Emits {"counters":{..},"gauges":{..},"histograms":{name:{count,sum,max,
// mean,p50,p95,p99}}} as one JSON object into `w`.
void MetricsToJson(const MetricsSnapshot& snapshot, JsonWriter* w);

// Emits {"name":{"count":..,"total_ns":..,"max_ns":..},..} per span name.
void SpansToJson(const std::vector<Span>& spans, JsonWriter* w);

// Emits {"enabled":bool,"ranks":{name:{rank,waits,wait:{count,total_ns,
// p50_ns,p99_ns,max_ns},hold:{...}}}} — the per-LockRank contention
// profile (obs/lock_profile.h), ranks ordered by total wait descending.
void LockContentionToJson(const std::vector<LockRankContention>& ranks,
                          JsonWriter* w);

// Emits {"interval_ms":..,"samples":[{"t_ms":..,"update_ops_per_sec":..,
// "wal_lag_bytes":..,"side_file_backlog":..,"bp_hit_rate":[per shard],
// ...},..]} derived from consecutive sampler ticks.  Rate deltas are
// clamped at zero so a mid-run MetricsRegistry::ResetAll cannot produce
// negative throughput.
void TimeseriesToJson(const std::vector<StatsSampler::Sample>& samples,
                      uint64_t interval_ms, JsonWriter* w);

// Renders `spans` as a Chrome trace_event JSON document (loadable in
// ui.perfetto.dev / chrome://tracing): one "X" complete event per span on
// its emitting thread's track, plus thread_name metadata from
// ThreadNames() and a "dropped_spans" count in the top-level metadata.
std::string TraceToChromeJson(const std::vector<Span>& spans,
                              uint64_t dropped);

Status WriteStringToFile(const std::string& path, const std::string& data);

}  // namespace obs
}  // namespace oib

#endif  // OIB_OBS_EXPORT_H_
