// Exporters: human-readable metric tables and machine-readable JSON
// snapshots.  Every bench_e* binary writes a BENCH_<experiment>.json via
// bench_util's reporter so results are diffable across PRs.

#ifndef OIB_OBS_EXPORT_H_
#define OIB_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oib {
namespace obs {

// Minimal streaming JSON writer.  The caller is responsible for a
// well-formed call sequence (Begin/End pairing, Key before each value
// inside an object); commas are inserted automatically.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(std::string_view key);
  void Value(std::string_view v);
  void Value(const char* v) { Value(std::string_view(v)); }
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(double v);  // non-finite values emitted as null
  void Value(bool v);
  void Null();

  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void AppendEscaped(std::string_view s);

  std::string out_;
  // One flag per open container: true once a value/key was emitted.
  std::vector<bool> need_comma_{};
  bool after_key_ = false;
};

// Fixed-width table of every metric in the snapshot (histograms as
// count/mean/p50/p95/p99/max rows).
std::string RenderMetricsTable(const MetricsSnapshot& snapshot);

// Emits {"counters":{..},"gauges":{..},"histograms":{name:{count,sum,max,
// mean,p50,p95,p99}}} as one JSON object into `w`.
void MetricsToJson(const MetricsSnapshot& snapshot, JsonWriter* w);

// Emits {"name":{"count":..,"total_ns":..,"max_ns":..},..} per span name.
void SpansToJson(const std::vector<Span>& spans, JsonWriter* w);

Status WriteStringToFile(const std::string& path, const std::string& data);

}  // namespace obs
}  // namespace oib

#endif  // OIB_OBS_EXPORT_H_
