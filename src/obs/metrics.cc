#include "obs/metrics.h"

#include <bit>

namespace oib {
namespace obs {

uint32_t HistogramBuckets::Index(uint64_t v) {
  if (v < kSub) return static_cast<uint32_t>(v);
  uint32_t log = 63 - static_cast<uint32_t>(std::countl_zero(v));
  uint32_t sub = static_cast<uint32_t>(v >> (log - kSubBits)) & (kSub - 1);
  return (log - kSubBits) * kSub + sub + kSub;
}

uint64_t HistogramBuckets::LowerBound(uint32_t bucket) {
  if (bucket < kSub) return bucket;
  uint32_t t = bucket - kSub;
  uint32_t log = t / kSub + kSubBits;
  uint64_t sub = t % kSub;
  return (uint64_t{1} << log) + (sub << (log - kSubBits));
}

uint64_t HistogramBuckets::UpperBound(uint32_t bucket) {
  if (bucket < kSub) return bucket;
  uint32_t t = bucket - kSub;
  uint32_t log = t / kSub + kSubBits;
  uint64_t width = uint64_t{1} << (log - kSubBits);
  uint64_t lower = LowerBound(bucket);
  // The topmost bucket saturates instead of wrapping.
  if (lower + width - 1 < lower) return ~uint64_t{0};
  return lower + width - 1;
}

void Histogram::Record(uint64_t v) {
  buckets_[HistogramBuckets::Index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  s.buckets.resize(HistogramBuckets::kNumBuckets);
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return s;
}

void Histogram::Reset() {
  for (uint32_t i = 0; i < HistogramBuckets::kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::Percentile(double p) const {
  // Rank over the bucket counts, not `count`: the two can disagree briefly
  // under concurrent recording.
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * total);
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cum = 0;
  for (uint32_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      // Interpolate linearly within the bucket: rank k of the c samples
      // that landed here maps to lo + (hi-lo)*k/c, assuming the samples
      // are spread uniformly across [lo, hi].  Returning the raw upper
      // bound would bias every quantile high by up to the bucket width
      // (25% relative at this layout's resolution).
      uint64_t lo = HistogramBuckets::LowerBound(i);
      uint64_t hi = HistogramBuckets::UpperBound(i);
      if (max != 0 && hi > max) hi = max;  // top bucket: max is exact
      if (hi <= lo) return hi;
      uint64_t c = buckets[i];
      uint64_t k = rank - (cum - c);  // 1-based rank within this bucket
      return lo + static_cast<uint64_t>(static_cast<double>(hi - lo) *
                                        static_cast<double>(k) /
                                        static_cast<double>(c));
    }
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* global = new MetricsRegistry();
  return *global;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  sync::MutexLock g(&mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr && e.gauge == nullptr && e.histogram == nullptr &&
      !e.fn) {
    e.owned_counter = std::make_unique<Counter>();
    e.counter = e.owned_counter.get();
  }
  return e.counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  sync::MutexLock g(&mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr && e.gauge == nullptr && e.histogram == nullptr &&
      !e.fn) {
    e.owned_gauge = std::make_unique<Gauge>();
    e.gauge = e.owned_gauge.get();
  }
  return e.gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  sync::MutexLock g(&mu_);
  Entry& e = entries_[name];
  if (e.counter == nullptr && e.gauge == nullptr && e.histogram == nullptr &&
      !e.fn) {
    e.owned_histogram = std::make_unique<Histogram>();
    e.histogram = e.owned_histogram.get();
  }
  return e.histogram;
}

void MetricsRegistry::RegisterCounter(const std::string& name, Counter* c,
                                      const void* owner) {
  sync::MutexLock g(&mu_);
  Entry e;
  e.counter = c;
  e.owner = owner;
  entries_[name] = std::move(e);
}

void MetricsRegistry::RegisterGauge(const std::string& name, Gauge* g,
                                    const void* owner) {
  sync::MutexLock lk(&mu_);
  Entry e;
  e.gauge = g;
  e.owner = owner;
  entries_[name] = std::move(e);
}

void MetricsRegistry::RegisterHistogram(const std::string& name, Histogram* h,
                                        const void* owner) {
  sync::MutexLock g(&mu_);
  Entry e;
  e.histogram = h;
  e.owner = owner;
  entries_[name] = std::move(e);
}

void MetricsRegistry::RegisterValueFn(const std::string& name,
                                      std::function<uint64_t()> fn,
                                      const void* owner) {
  sync::MutexLock g(&mu_);
  Entry e;
  e.fn = std::move(fn);
  e.owner = owner;
  entries_[name] = std::move(e);
}

void MetricsRegistry::DetachOwner(const void* owner) {
  if (owner == nullptr) return;
  sync::MutexLock g(&mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.owner == owner) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void MetricsRegistry::ResetAll() {
  sync::MutexLock g(&mu_);
  for (auto& [name, e] : entries_) {
    (void)name;
    if (e.counter != nullptr) e.counter->Reset();
    if (e.gauge != nullptr) e.gauge->Reset();
    if (e.histogram != nullptr) e.histogram->Reset();
  }
}

MetricsSnapshot MetricsRegistry::TakeSnapshot() const {
  // Copy the entry pointers under the lock, then read the (atomic) values
  // outside it so a slow histogram copy never blocks registration.
  struct Ref {
    std::string name;
    Counter* counter;
    Gauge* gauge;
    Histogram* histogram;
    std::function<uint64_t()> fn;
  };
  std::vector<Ref> refs;
  {
    sync::MutexLock g(&mu_);
    refs.reserve(entries_.size());
    for (const auto& [name, e] : entries_) {
      refs.push_back({name, e.counter, e.gauge, e.histogram, e.fn});
    }
  }
  MetricsSnapshot snap;
  for (const Ref& r : refs) {
    if (r.counter != nullptr) {
      snap.counters[r.name] = r.counter->value();
    } else if (r.fn) {
      snap.counters[r.name] = r.fn();
    } else if (r.gauge != nullptr) {
      snap.gauges[r.name] = r.gauge->value();
    } else if (r.histogram != nullptr) {
      snap.histograms[r.name] = r.histogram->Snapshot();
    }
  }
  return snap;
}

}  // namespace obs
}  // namespace oib
