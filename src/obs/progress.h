// Live build-progress reporting types (paper sections 2/3: the phases of
// NSF and SF index builds, plus Current-RID and side-file backlog).
//
// The builders publish phase transitions and per-key counters into the
// ActiveBuild registration (relaxed atomics); Engine::GetBuildProgress()
// assembles this snapshot for monitors, tests, and benches without
// touching the builder's hot path.

#ifndef OIB_OBS_PROGRESS_H_
#define OIB_OBS_PROGRESS_H_

#include <cstdint>

namespace oib {
namespace obs {

// Ordered so that any legal phase sequence of one build is monotonically
// non-decreasing (offline/NSF: quiesce -> scan -> sort -> insert; SF:
// scan -> sort -> load -> apply -> drain -> done).
enum class BuildPhase : int {
  kIdle = 0,
  kQuiesce = 1,      // NSF/offline: updates blocked
  kDescriptor = 2,   // descriptor creation
  kScan = 3,         // data scan + pipelined sort runs
  kSortMerge = 4,    // run finish + merge preparation
  kLoad = 5,         // SF/offline bottom-up load
  kInsert = 6,       // NSF IB insert batches
  kApply = 7,        // SF side-file catch-up
  kDrain = 8,        // SF final drain under the gate
  kDone = 9,
};

const char* BuildPhaseName(BuildPhase phase);

struct BuildProgress {
  bool active = false;
  const char* algo = "none";  // "nsf" | "sf" | "none"
  BuildPhase phase = BuildPhase::kIdle;

  // SF scan position vs the heap's current tail (Current-RID, 3.2.2).
  uint64_t current_rid = 0;      // packed RID
  uint64_t scan_page = 0;        // page component of current_rid
  uint64_t table_tail_page = 0;  // heap tail at snapshot time
  double scan_fraction = 0.0;    // ~scan_page/tail, 1.0 once scan finished

  uint64_t keys_done = 0;  // keys extracted + loaded/inserted so far

  // SF side-file depth: entries appended by transactions vs applied by IB.
  uint64_t side_file_appended = 0;
  uint64_t side_file_applied = 0;
  uint64_t side_file_backlog = 0;

  double elapsed_ms = 0.0;
  double keys_per_sec = 0.0;
};

inline const char* BuildPhaseName(BuildPhase phase) {
  switch (phase) {
    case BuildPhase::kIdle:
      return "idle";
    case BuildPhase::kQuiesce:
      return "quiesce";
    case BuildPhase::kDescriptor:
      return "descriptor";
    case BuildPhase::kScan:
      return "scan";
    case BuildPhase::kSortMerge:
      return "sort-merge";
    case BuildPhase::kLoad:
      return "load";
    case BuildPhase::kInsert:
      return "insert";
    case BuildPhase::kApply:
      return "apply";
    case BuildPhase::kDrain:
      return "drain";
    case BuildPhase::kDone:
      return "done";
  }
  return "?";
}

}  // namespace obs
}  // namespace oib

#endif  // OIB_OBS_PROGRESS_H_
