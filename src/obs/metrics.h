// Unified observability metrics: process-wide registry of named counters,
// gauges, and log-bucketed latency histograms.
//
// Design rules (the hot path is an index build racing a transaction
// workload, so instrumentation must be invisible):
//  * every update is a relaxed atomic op on a preallocated cell — no
//    locks, no allocation, no branches beyond the bucket computation;
//  * the registry mutex guards only registration/lookup (cold path);
//    components cache the returned pointers at construction;
//  * reading (TakeSnapshot) is racy-by-design: relaxed loads give a
//    consistent-enough view for reporting without stalling writers.
//
// Two ownership styles coexist:
//  * registry-owned metrics: GetCounter/GetGauge/GetHistogram create (or
//    return) a metric owned by the registry — used by ad-hoc sites like
//    the workload driver and benches;
//  * component-owned metrics: a subsystem that keeps its own atomics
//    (BufferPool, LockManager, LogManager) registers them by pointer with
//    an `owner` token and detaches via DetachOwner() before destruction.
//
// Naming scheme (see DESIGN.md "Observability"): `subsystem.metric[_unit]`,
// e.g. `bufferpool.hits`, `lock.wait_ns`, `workload.update_ns`.

#ifndef OIB_OBS_METRICS_H_
#define OIB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace oib {
namespace obs {

// Assumed size of a destructive-interference cache line.  Hot metric cells
// are padded to this so that adjacent instances (e.g. the per-shard
// hit/miss/eviction counters inside a buffer-pool shard array) never share
// a line: with the packed layout, relaxed fetch-adds from different shards
// would still ping-pong the same cache line between cores.
inline constexpr size_t kCacheLineSize = 64;

class alignas(kCacheLineSize) Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
  char pad_[kCacheLineSize - sizeof(std::atomic<uint64_t>)];
};
static_assert(sizeof(Counter) == kCacheLineSize);

class alignas(kCacheLineSize) Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
  char pad_[kCacheLineSize - sizeof(std::atomic<int64_t>)];
};
static_assert(sizeof(Gauge) == kCacheLineSize);

// Fixed log-scaled bucket layout shared by Histogram and its snapshots.
// Values 0..3 get exact buckets; above that each power-of-two octave is
// split into 4 sub-buckets (2 mantissa bits), giving <= 25% relative
// error on quantiles over the full uint64 range with 252 buckets.
struct HistogramBuckets {
  static constexpr uint32_t kSubBits = 2;
  static constexpr uint32_t kSub = 1u << kSubBits;           // 4
  static constexpr uint32_t kNumBuckets = (64 - kSubBits) * kSub + kSub;

  static uint32_t Index(uint64_t v);
  static uint64_t LowerBound(uint32_t bucket);
  // Inclusive upper bound of the bucket's value range.
  static uint64_t UpperBound(uint32_t bucket);
};

// Point-in-time copy of a histogram, with quantile extraction.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  std::vector<uint64_t> buckets;  // kNumBuckets entries

  // p in [0,100].  Returns the inclusive upper bound of the bucket that
  // contains the p-th percentile rank, clamped to the observed max
  // (so Percentile(100) == max).  0 when empty.
  uint64_t Percentile(double p) const;
  double mean() const { return count == 0 ? 0.0 : double(sum) / count; }
};

class alignas(kCacheLineSize) Histogram {
 public:
  void Record(uint64_t v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  // count/sum/max are touched on every Record; keep them on their own
  // line so a neighbouring object's hot field can't false-share with
  // them, and start the bucket array on a fresh line.
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  char pad_[kCacheLineSize - 3 * sizeof(std::atomic<uint64_t>)];
  std::atomic<uint64_t> buckets_[HistogramBuckets::kNumBuckets]{};
};

struct MetricsSnapshot {
  // Counters and value-callbacks merged: both are monotonic uint64 reads.
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem attaches to.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Registry-owned create-or-get.  Returned pointers stay valid for the
  // registry's lifetime.  Returns nullptr if `name` is already registered
  // as a different kind.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Component-owned registration.  `owner` groups entries so a component
  // can detach everything it registered before it is destroyed.
  // Re-registering a name replaces the previous entry (an engine restart
  // re-attaches the same metric names).
  void RegisterCounter(const std::string& name, Counter* c, const void* owner);
  void RegisterGauge(const std::string& name, Gauge* g, const void* owner);
  void RegisterHistogram(const std::string& name, Histogram* h,
                         const void* owner);
  // Read-only value callback (for subsystems with pre-existing stats
  // fields); shows up among the counters in snapshots.
  void RegisterValueFn(const std::string& name, std::function<uint64_t()> fn,
                       const void* owner);

  void DetachOwner(const void* owner);

  // Zeroes every counter/gauge/histogram (owned and registered); value
  // callbacks are left alone.  Best-effort under concurrent writers —
  // benches call it between measurement windows.
  void ResetAll();

  MetricsSnapshot TakeSnapshot() const;

 private:
  struct Entry {
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
    std::function<uint64_t()> fn;
    // Set when the registry owns the metric.
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
    const void* owner = nullptr;
  };

  mutable sync::Mutex mu_{sync::LockRank::kObs, "metrics.mu"};
  std::map<std::string, Entry> entries_ OIB_GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace oib

#endif  // OIB_OBS_METRICS_H_
