#include "obs/lock_profile.h"

#include <chrono>

namespace oib {

#if OIB_LOCK_PROFILE

namespace {

// Static per-rank slots.  obs::Histogram cells are relaxed atomics, so
// recording from any thread under any lock set is safe and lock-free;
// static storage means the hooks work before main() and cost nothing to
// reach (no registry lookup on the contended path).
struct RankSlot {
  obs::Counter waits;
  obs::Histogram wait_ns;
  obs::Histogram hold_ns;
};

RankSlot g_slots[sync::kNumLockRanks];

}  // namespace

namespace sync {
namespace prof {

std::atomic<bool> g_lock_profile_enabled{false};

void SetEnabled(bool on) {
  g_lock_profile_enabled.store(on, std::memory_order_relaxed);
}

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordWait(LockRank rank, uint64_t wait_ns) {
  RankSlot& slot = g_slots[LockRankIndex(rank)];
  slot.waits.Inc();
  slot.wait_ns.Record(wait_ns);
}

void RecordHold(LockRank rank, uint64_t hold_ns) {
  g_slots[sync::LockRankIndex(rank)].hold_ns.Record(hold_ns);
}

}  // namespace prof
}  // namespace sync

#endif  // OIB_LOCK_PROFILE

namespace obs {

bool LockProfileEnabled() { return sync::prof::Enabled(); }

std::vector<LockRankContention> CollectLockProfile() {
  std::vector<LockRankContention> out;
#if OIB_LOCK_PROFILE
  static constexpr sync::LockRank kAllRanks[] = {
      sync::LockRank::kBuildPlan,      sync::LockRank::kDrainGate,
      sync::LockRank::kHeapExtend,     sync::LockRank::kSideFileExtend,
      sync::LockRank::kTxnActive,      sync::LockRank::kPageLatch,
      sync::LockRank::kBufferShard,    sync::LockRank::kRecordBuilds,
      sync::LockRank::kCatalog,        sync::LockRank::kHeapHints,
      sync::LockRank::kSideFileCount,  sync::LockRank::kLockTable,
      sync::LockRank::kWalFlush,       sync::LockRank::kWalDrain,
      sync::LockRank::kRunStore,       sync::LockRank::kMergeQueue,
      sync::LockRank::kDisk,           sync::LockRank::kFailPoint,
      sync::LockRank::kStatsSampler,   sync::LockRank::kObs,
  };
  for (sync::LockRank rank : kAllRanks) {
    const RankSlot& slot = g_slots[sync::LockRankIndex(rank)];
    uint64_t waits = slot.waits.value();
    if (waits == 0) continue;
    LockRankContention c;
    c.rank = rank;
    c.name = sync::LockRankName(rank);
    c.waits = waits;
    c.wait_ns = slot.wait_ns.Snapshot();
    c.hold_ns = slot.hold_ns.Snapshot();
    out.push_back(std::move(c));
  }
#endif
  return out;
}

void ResetLockProfile() {
#if OIB_LOCK_PROFILE
  for (auto& slot : g_slots) {
    slot.waits.Reset();
    slot.wait_ns.Reset();
    slot.hold_ns.Reset();
  }
#endif
}

}  // namespace obs
}  // namespace oib
