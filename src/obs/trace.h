// Phase tracer: scoped spans recorded into a bounded lock-free ring
// buffer with monotonic timestamps.
//
// Builders emit a span per paper-relevant phase (quiesce window,
// descriptor creation, data scan, sort merge, IB insert batches,
// bottom-up load, side-file drain batches, checkpoint/commit points) and
// restart recovery emits analysis/redo/undo spans.  The ring holds the
// most recent `capacity` completed spans; old entries are overwritten, so
// tracing is always on and never allocates or blocks the traced thread.
//
// Writer protocol per slot: seq=0 (invalid) -> payload stores -> seq=ticket.
// Readers double-check seq around the copy and drop torn slots.  Span
// names must be string literals (the ring stores the first 31 bytes).

#ifndef OIB_OBS_TRACE_H_
#define OIB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace oib {
namespace obs {

uint64_t MonotonicNanos();

// Dense 1-based id of the calling thread, assigned on first use.  Stable
// for the thread's lifetime; used as the Perfetto track id so traces get
// small, readable tids instead of OS handles.
uint32_t CurrentThreadTid();

// Names the calling thread's track in exported traces ("build.merge",
// "wal.flush", ...).  Last call wins; names are process-global and
// survive Tracer::Reset.
void SetCurrentThreadName(const std::string& name);

// tid -> name for every thread that called SetCurrentThreadName.
std::vector<std::pair<uint32_t, std::string>> ThreadNames();

struct Span {
  uint64_t seq = 0;  // 1-based global ticket; higher = more recent
  char name[32] = {};
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  uint64_t arg = 0;   // span-defined payload (batch size, page id, ...)
  uint32_t tid = 0;   // CurrentThreadTid() of the emitting thread

  uint64_t duration_ns() const { return end_ns - start_ns; }
};

class Tracer {
 public:
  // The process-wide tracer the engine and builders record into.
  static Tracer& Default();

  // `capacity` is rounded up to a power of two.
  explicit Tracer(size_t capacity = 4096);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void Record(const char* name, uint64_t start_ns, uint64_t end_ns,
              uint64_t arg = 0);

  // Completed spans currently in the ring, oldest first.
  std::vector<Span> Snapshot() const;

  // Total spans recorded since construction/Reset (including overwritten).
  uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return mask_ + 1; }

  // Spans evicted by ring wrap-around since construction/Reset.  Exact at
  // quiescent points; a lower bound while writers are racing (a ticket is
  // counted as dropped once `recorded` passes it by `capacity`).
  uint64_t dropped() const {
    uint64_t n = recorded();
    size_t cap = capacity();
    return n > cap ? n - cap : 0;
  }

  // Not safe against concurrent writers; call only at quiescent points
  // (between bench runs / tests).
  void Reset();

 private:
  struct Slot {
    std::atomic<uint64_t> seq{0};
    char name[32] = {};
    uint64_t start_ns = 0;
    uint64_t end_ns = 0;
    uint64_t arg = 0;
    uint32_t tid = 0;
  };

  std::unique_ptr<Slot[]> ring_;
  size_t mask_;
  std::atomic<uint64_t> next_{0};
};

// RAII span: records [construction, destruction) into the tracer.
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, uint64_t arg = 0)
      : tracer_(tracer), name_(name), arg_(arg), start_(MonotonicNanos()) {}
  ~ScopedSpan() { End(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_arg(uint64_t arg) { arg_ = arg; }

  // Records the span now (idempotent; destructor becomes a no-op).
  void End() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, start_, MonotonicNanos(), arg_);
      tracer_ = nullptr;
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  uint64_t arg_;
  uint64_t start_;
};

// Per-name rollup of a span snapshot (for exporters and benches).
struct SpanAggregate {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t max_ns = 0;
};
std::vector<std::pair<std::string, SpanAggregate>> AggregateSpans(
    const std::vector<Span>& spans);

}  // namespace obs
}  // namespace oib

#endif  // OIB_OBS_TRACE_H_
