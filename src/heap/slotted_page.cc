#include "heap/slotted_page.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace oib {

namespace {
// High bit of a slot's offset marks it dead; the remaining bits keep the
// record's (reserved) location so undo-of-delete can restore in place.
// Page sizes stay well below 32 KiB, so the bit never collides.
constexpr uint16_t kDeadBit = 0x8000;
}  // namespace

void SlottedPage::Init(PageType type) {
  data_[kTypeOff] = static_cast<char>(type);
  data_[kTypeOff + 1] = 0;
  set_slot_count(0);
  set_free_end(static_cast<uint16_t>(page_size_));
  set_next_page(kInvalidPageId);
}

PageType SlottedPage::type() const {
  return static_cast<PageType>(static_cast<uint8_t>(data_[kTypeOff]));
}

uint16_t SlottedPage::slot_count() const {
  return DecodeFixed16(data_ + kSlotCountOff);
}

void SlottedPage::set_slot_count(uint16_t v) {
  EncodeFixed16(data_ + kSlotCountOff, v);
}

uint16_t SlottedPage::free_end() const {
  return DecodeFixed16(data_ + kFreeEndOff);
}

void SlottedPage::set_free_end(uint16_t v) {
  EncodeFixed16(data_ + kFreeEndOff, v);
}

PageId SlottedPage::next_page() const {
  return DecodeFixed32(data_ + kNextPageOff);
}

void SlottedPage::set_next_page(PageId id) {
  EncodeFixed32(data_ + kNextPageOff, id);
}

uint16_t SlottedPage::slot_offset(SlotId s) const {
  return DecodeFixed16(data_ + kSlotsOff + s * kSlotSize);
}

uint16_t SlottedPage::slot_len(SlotId s) const {
  return DecodeFixed16(data_ + kSlotsOff + s * kSlotSize + 2);
}

void SlottedPage::set_slot(SlotId s, uint16_t off, uint16_t len) {
  EncodeFixed16(data_ + kSlotsOff + s * kSlotSize, off);
  EncodeFixed16(data_ + kSlotsOff + s * kSlotSize + 2, len);
}

size_t SlottedPage::ContiguousFree() const {
  size_t dir_end = kSlotsOff + slot_count() * kSlotSize;
  uint16_t fe = free_end();
  return fe > dir_end ? fe - dir_end : 0;
}

size_t SlottedPage::TotalFree() const {
  // Bytes of live records AND dead-but-reserved records are not free.
  size_t held = 0;
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (slot_offset(s) != 0) held += slot_len(s);
  }
  size_t dir_end = kSlotsOff + slot_count() * kSlotSize;
  return page_size_ - dir_end - held;
}

size_t SlottedPage::FreeSpaceForInsert() const {
  size_t total = TotalFree();
  bool has_dead = false;
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (!IsLive(s)) {
      has_dead = true;
      break;
    }
  }
  size_t slot_cost = has_dead ? 0 : kSlotSize;
  return total > slot_cost ? total - slot_cost : 0;
}

void SlottedPage::Compact() {
  struct Held {
    SlotId slot;
    uint16_t flags;  // kDeadBit or 0
    uint16_t len;
    std::string bytes;
  };
  std::vector<Held> held;
  for (SlotId s = 0; s < slot_count(); ++s) {
    uint16_t off = slot_offset(s);
    if (off == 0) continue;
    uint16_t real = static_cast<uint16_t>(off & ~kDeadBit);
    uint16_t len = slot_len(s);
    held.push_back({s, static_cast<uint16_t>(off & kDeadBit), len,
                    std::string(data_ + real, len)});
  }
  uint16_t fe = static_cast<uint16_t>(page_size_);
  for (const Held& r : held) {
    fe = static_cast<uint16_t>(fe - r.len);
    std::memcpy(data_ + fe, r.bytes.data(), r.len);
    set_slot(r.slot, static_cast<uint16_t>(fe | r.flags), r.len);
  }
  set_free_end(fe);
}

StatusOr<SlotId> SlottedPage::Insert(std::string_view rec) {
  SlotId target = kInvalidSlotId;
  for (SlotId s = 0; s < slot_count(); ++s) {
    if (!IsLive(s)) {
      target = s;
      break;
    }
  }
  if (target != kInvalidSlotId) {
    OIB_RETURN_IF_ERROR(InsertAt(target, rec));
    return target;
  }
  target = slot_count();
  OIB_RETURN_IF_ERROR(InsertAt(target, rec));
  return target;
}

Status SlottedPage::InsertAt(SlotId slot, std::string_view rec) {
  if (slot < slot_count() && IsLive(slot)) {
    return Status::InvalidArgument("slot already live");
  }
  // Reusing a dead slot reclaims its reserved bytes; same-or-smaller
  // records go straight back into the reserved region (this is what makes
  // undo-of-delete infallible).
  if (slot < slot_count() && slot_offset(slot) != 0) {
    uint16_t off = static_cast<uint16_t>(slot_offset(slot) & ~kDeadBit);
    uint16_t reserved = slot_len(slot);
    if (rec.size() <= reserved) {
      std::memcpy(data_ + off, rec.data(), rec.size());
      set_slot(slot, off, static_cast<uint16_t>(rec.size()));
      return Status::OK();
    }
    // Larger: release the reservation and fall through to allocation.
    set_slot(slot, 0, 0);
  }
  size_t new_slots = slot >= slot_count() ? (slot - slot_count() + 1) : 0;
  size_t need = rec.size() + new_slots * kSlotSize;
  if (TotalFree() < need) return Status::Busy("page full");
  // Compact before growing the directory: the new slot entries must not
  // overwrite record bytes sitting at the old free boundary.
  if (ContiguousFree() < need) Compact();
  if (slot >= slot_count()) {
    for (SlotId s = slot_count(); s <= slot; ++s) set_slot(s, 0, 0);
    set_slot_count(static_cast<uint16_t>(slot + 1));
  }
  uint16_t fe = static_cast<uint16_t>(free_end() - rec.size());
  std::memcpy(data_ + fe, rec.data(), rec.size());
  set_free_end(fe);
  set_slot(slot, fe, static_cast<uint16_t>(rec.size()));
  return Status::OK();
}

Status SlottedPage::Delete(SlotId slot) {
  if (slot >= slot_count() || !IsLive(slot)) {
    return Status::NotFound("no such record");
  }
  // Keep offset and length: the bytes stay reserved for a possible undo.
  set_slot(slot, static_cast<uint16_t>(slot_offset(slot) | kDeadBit),
           slot_len(slot));
  return Status::OK();
}

Status SlottedPage::Update(SlotId slot, std::string_view rec) {
  if (slot >= slot_count() || !IsLive(slot)) {
    return Status::NotFound("no such record");
  }
  uint16_t off = slot_offset(slot);
  uint16_t old_len = slot_len(slot);
  if (rec.size() <= old_len) {
    std::memcpy(data_ + off, rec.data(), rec.size());
    set_slot(slot, off, static_cast<uint16_t>(rec.size()));
    return Status::OK();
  }
  // Grow: release the old region, then place the new image.  (A grow
  // rolled back later may need to re-grow; see DESIGN.md on update
  // reservations.)
  set_slot(slot, 0, 0);
  if (TotalFree() < rec.size()) {
    set_slot(slot, off, old_len);  // restore
    return Status::Busy("page full");
  }
  if (ContiguousFree() < rec.size()) Compact();
  uint16_t fe = static_cast<uint16_t>(free_end() - rec.size());
  std::memcpy(data_ + fe, rec.data(), rec.size());
  set_free_end(fe);
  set_slot(slot, fe, static_cast<uint16_t>(rec.size()));
  return Status::OK();
}

StatusOr<std::string_view> SlottedPage::Get(SlotId slot) const {
  if (slot >= slot_count() || !IsLive(slot)) {
    return Status::NotFound("no such record");
  }
  return std::string_view(data_ + slot_offset(slot), slot_len(slot));
}

bool SlottedPage::IsLive(SlotId slot) const {
  if (slot >= slot_count()) return false;
  uint16_t off = slot_offset(slot);
  return off != 0 && (off & kDeadBit) == 0;
}

}  // namespace oib
