#include "heap/heap_file.h"

#include "common/coding.h"

namespace oib {

void EncodeHeapPayload(std::string* out, SlotId slot, uint32_t visible_count,
                       std::string_view bytes) {
  PutFixed16(out, slot);
  PutFixed32(out, visible_count);
  out->append(bytes.data(), bytes.size());
}

Status DecodeHeapPayload(std::string_view in, HeapRecPayload* out) {
  BufferReader r(in);
  if (!r.GetFixed16(&out->slot) || !r.GetFixed32(&out->visible_count)) {
    return Status::Corruption("heap payload");
  }
  out->bytes = in.substr(r.position());
  return Status::OK();
}

// ----------------------------- HeapFile -----------------------------

Status HeapFile::Create() {
  PageId id;
  auto guard = pool_->NewPageNoReuse(&id);
  if (!guard.ok()) return guard.status();
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  sp.Init(PageType::kHeap);
  // NTA: format record (system action, no transaction, redo-only).
  LogRecord rec;
  rec.type = LogRecordType::kRedoOnly;
  rec.rm_id = RmId::kHeap;
  rec.opcode = static_cast<uint8_t>(HeapOp::kFormat);
  rec.page_id = id;
  rec.aux_id = table_id_;
  OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
  guard->set_page_lsn(rec.lsn);
  first_page_ = id;
  tail_page_.store(id);
  {
    sync::MutexLock g(&hints_mu_);
    page_count_ = 1;
    chain_pages_.assign(1, id);
  }
  return Status::OK();
}

Status HeapFile::Open(PageId first) {
  first_page_ = first;
  PageId cur = first;
  PageId tail = first;
  size_t count = 0;
  uint64_t live = 0;
  std::vector<PageId> hints;
  std::vector<PageId> chain;
  while (cur != kInvalidPageId) {
    auto guard = pool_->FetchRead(cur);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(const_cast<char*>(guard->data()),
                   pool_->disk()->page_size());
    if (sp.type() != PageType::kHeap) {
      return Status::Corruption("heap chain reaches a non-heap page " +
                                std::to_string(cur));
    }
    if (sp.next_page() == cur) {
      return Status::Corruption("heap chain self-loop at page " +
                                std::to_string(cur));
    }
    for (SlotId s = 0; s < sp.slot_count(); ++s) {
      if (sp.IsLive(s)) ++live;
    }
    if (sp.FreeSpaceForInsert() > 64) hints.push_back(cur);
    chain.push_back(cur);
    ++count;
    tail = cur;
    cur = sp.next_page();
  }
  tail_page_.store(tail);
  live_records_.store(live);
  sync::MutexLock g(&hints_mu_);
  page_count_ = count;
  free_hints_ = std::move(hints);
  chain_pages_ = std::move(chain);
  return Status::OK();
}

StatusOr<PageId> HeapFile::ExtendChain() {
  PageId old_tail = tail_page_.load();
  PageId id;
  {
    auto guard = pool_->NewPageNoReuse(&id);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(guard->data(), pool_->disk()->page_size());
    sp.Init(PageType::kHeap);
    LogRecord rec;
    rec.type = LogRecordType::kRedoOnly;
    rec.rm_id = RmId::kHeap;
    rec.opcode = static_cast<uint8_t>(HeapOp::kFormat);
    rec.page_id = id;
    rec.aux_id = table_id_;
    OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
    guard->set_page_lsn(rec.lsn);
  }
  {
    auto guard = pool_->FetchWrite(old_tail);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(guard->data(), pool_->disk()->page_size());
    sp.set_next_page(id);
    LogRecord rec;
    rec.type = LogRecordType::kRedoOnly;
    rec.rm_id = RmId::kHeap;
    rec.opcode = static_cast<uint8_t>(HeapOp::kLink);
    rec.page_id = old_tail;
    rec.aux_id = table_id_;
    PutFixed32(&rec.redo, id);
    OIB_RETURN_IF_ERROR(txns_->AppendLog(nullptr, &rec));
    guard->set_page_lsn(rec.lsn);
  }
  tail_page_.store(id);
  {
    sync::MutexLock g(&hints_mu_);
    ++page_count_;
    chain_pages_.push_back(id);
  }
  return id;
}

StatusOr<WritePageGuard> HeapFile::PageForInsert(size_t need) {
  // Try free-space hints first, then the tail, then extend.
  for (;;) {
    PageId candidate = kInvalidPageId;
    {
      sync::MutexLock g(&hints_mu_);
      while (!free_hints_.empty() && candidate == kInvalidPageId) {
        candidate = free_hints_.back();
        free_hints_.pop_back();
      }
    }
    if (candidate == kInvalidPageId) candidate = tail_page_.load();
    auto guard = pool_->FetchWrite(candidate);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(guard->data(), pool_->disk()->page_size());
    if (sp.FreeSpaceForInsert() >= need) {
      if (sp.FreeSpaceForInsert() >= 2 * need + 64) {
        // Page still roomy: keep it as a hint for the next insert.
        sync::MutexLock g(&hints_mu_);
        free_hints_.push_back(candidate);
      }
      return guard;
    }
    guard->Release();
    if (candidate == tail_page_.load()) {
      // Serialize extension: re-check tail after taking the slow path.
      sync::MutexLock ext(&extend_mu_);
      if (candidate == tail_page_.load()) {
        auto extended = ExtendChain();
        if (!extended.ok()) return extended.status();
      }
    }
  }
}

StatusOr<Rid> HeapFile::Insert(Transaction* txn, std::string_view rec,
                               const VisibleCountFn& visible_count_fn,
                               const TryClaimRidFn& try_claim) {
  auto guard = PageForInsert(rec.size());
  if (!guard.ok()) return guard.status();
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  SlotId target = kInvalidSlotId;
  if (try_claim) {
    // Reuse a dead slot only if its RID lock is claimable (its deleter
    // committed); otherwise append a fresh slot.
    for (SlotId s2 = 0; s2 < sp.slot_count(); ++s2) {
      if (!sp.IsLive(s2) && try_claim(Rid(guard->page_id(), s2))) {
        target = s2;
        break;
      }
    }
    if (target == kInvalidSlotId) target = sp.slot_count();
    Status ins = sp.InsertAt(target, rec);
    if (ins.IsBusy()) {
      // The page's free space was tied up in unclaimable dead slots; put
      // the record on a fresh page instead.
      guard->Release();
      sync::MutexLock ext(&extend_mu_);
      auto extended = ExtendChain();
      if (!extended.ok()) return extended.status();
      auto g2 = pool_->FetchWrite(*extended);
      if (!g2.ok()) return g2.status();
      *guard = std::move(*g2);
      SlottedPage sp2(guard->data(), pool_->disk()->page_size());
      target = sp2.slot_count();
      OIB_RETURN_IF_ERROR(sp2.InsertAt(target, rec));
    } else if (!ins.ok()) {
      return ins;
    }
  } else {
    auto slot = sp.Insert(rec);
    if (!slot.ok()) return slot.status();
    target = *slot;
  }
  Rid rid(guard->page_id(), target);
  uint32_t visible_count = visible_count_fn ? visible_count_fn(rid) : 0;

  LogRecord lr;
  lr.type = LogRecordType::kUpdate;
  lr.rm_id = RmId::kHeap;
  lr.opcode = static_cast<uint8_t>(HeapOp::kInsert);
  lr.page_id = rid.page;
  lr.aux_id = table_id_;
  EncodeHeapPayload(&lr.redo, rid.slot, visible_count, rec);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &lr));
  guard->set_page_lsn(lr.lsn);
  live_records_.fetch_add(1);
  return rid;
}

Status HeapFile::InsertAt(Transaction* txn, Rid rid, std::string_view rec,
                          const VisibleCountFn& visible_count_fn) {
  auto guard = pool_->FetchWrite(rid.page);
  if (!guard.ok()) return guard.status();
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  OIB_RETURN_IF_ERROR(sp.InsertAt(rid.slot, rec));
  uint32_t visible_count = visible_count_fn ? visible_count_fn(rid) : 0;
  LogRecord lr;
  lr.type = LogRecordType::kUpdate;
  lr.rm_id = RmId::kHeap;
  lr.opcode = static_cast<uint8_t>(HeapOp::kInsert);
  lr.page_id = rid.page;
  lr.aux_id = table_id_;
  EncodeHeapPayload(&lr.redo, rid.slot, visible_count, rec);
  OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &lr));
  guard->set_page_lsn(lr.lsn);
  live_records_.fetch_add(1);
  return Status::OK();
}

Status HeapFile::Delete(Transaction* txn, Rid rid,
                        const VisibleCountFn& visible_count_fn,
                        std::string* old_rec) {
  auto guard = pool_->FetchWrite(rid.page);
  if (!guard.ok()) return guard.status();
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  auto old = sp.Get(rid.slot);
  if (!old.ok()) return old.status();
  std::string old_copy(old->data(), old->size());
  uint32_t visible_count = visible_count_fn ? visible_count_fn(rid) : 0;
  OIB_RETURN_IF_ERROR(sp.Delete(rid.slot));

  LogRecord lr;
  lr.type = LogRecordType::kUpdate;
  lr.rm_id = RmId::kHeap;
  lr.opcode = static_cast<uint8_t>(HeapOp::kDelete);
  lr.page_id = rid.page;
  lr.aux_id = table_id_;
  EncodeHeapPayload(&lr.redo, rid.slot, visible_count, {});
  lr.undo = old_copy;
  OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &lr));
  guard->set_page_lsn(lr.lsn);
  live_records_.fetch_sub(1);
  if (old_rec != nullptr) *old_rec = std::move(old_copy);
  {
    sync::MutexLock g(&hints_mu_);
    if (free_hints_.size() < 64) free_hints_.push_back(rid.page);
  }
  return Status::OK();
}

Status HeapFile::Update(Transaction* txn, Rid rid, std::string_view rec,
                        const VisibleCountFn& visible_count_fn,
                        std::string* old_rec) {
  auto guard = pool_->FetchWrite(rid.page);
  if (!guard.ok()) return guard.status();
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  auto old = sp.Get(rid.slot);
  if (!old.ok()) return old.status();
  std::string old_copy(old->data(), old->size());
  uint32_t visible_count = visible_count_fn ? visible_count_fn(rid) : 0;
  OIB_RETURN_IF_ERROR(sp.Update(rid.slot, rec));

  LogRecord lr;
  lr.type = LogRecordType::kUpdate;
  lr.rm_id = RmId::kHeap;
  lr.opcode = static_cast<uint8_t>(HeapOp::kUpdate);
  lr.page_id = rid.page;
  lr.aux_id = table_id_;
  EncodeHeapPayload(&lr.redo, rid.slot, visible_count, rec);
  lr.undo = old_copy;
  OIB_RETURN_IF_ERROR(txns_->AppendLog(txn, &lr));
  guard->set_page_lsn(lr.lsn);
  if (old_rec != nullptr) *old_rec = std::move(old_copy);
  return Status::OK();
}

StatusOr<std::string> HeapFile::Get(Rid rid) const {
  auto guard = pool_->FetchRead(rid.page);
  if (!guard.ok()) return guard.status();
  SlottedPage sp(const_cast<char*>(guard->data()),
                 pool_->disk()->page_size());
  auto rec = sp.Get(rid.slot);
  if (!rec.ok()) return rec.status();
  return std::string(rec->data(), rec->size());
}

bool HeapFile::Exists(Rid rid) const {
  auto guard = pool_->FetchRead(rid.page);
  if (!guard.ok()) return false;
  SlottedPage sp(const_cast<char*>(guard->data()),
                 pool_->disk()->page_size());
  return sp.IsLive(rid.slot);
}

StatusOr<PageId> HeapFile::ExtractPage(
    PageId page, std::vector<std::pair<Rid, std::string>>* out,
    const std::function<void()>& under_latch) const {
  auto guard = pool_->FetchRead(page);
  if (!guard.ok()) return guard.status();
  SlottedPage sp(const_cast<char*>(guard->data()),
                 pool_->disk()->page_size());
  for (SlotId s = 0; s < sp.slot_count(); ++s) {
    auto rec = sp.Get(s);
    if (rec.ok()) {
      out->emplace_back(Rid(page, s), std::string(rec->data(), rec->size()));
    }
  }
  if (under_latch) under_latch();
  return sp.next_page();
}

StatusOr<std::vector<PageId>> HeapFile::ChainPages(PageId stop_at) const {
  sync::MutexLock g(&hints_mu_);
  if (stop_at == kInvalidPageId) return chain_pages_;
  std::vector<PageId> pages;
  pages.reserve(chain_pages_.size());
  for (PageId p : chain_pages_) {
    pages.push_back(p);
    if (p == stop_at) break;
  }
  return pages;
}

Status HeapFile::ForEach(
    const std::function<void(const Rid&, std::string_view)>& fn) const {
  PageId cur = first_page_;
  while (cur != kInvalidPageId) {
    std::vector<std::pair<Rid, std::string>> recs;
    auto next = ExtractPage(cur, &recs);
    if (!next.ok()) return next.status();
    for (const auto& [rid, bytes] : recs) fn(rid, bytes);
    cur = *next;
  }
  return Status::OK();
}

size_t HeapFile::page_count() const {
  sync::MutexLock g(&hints_mu_);
  return page_count_;
}

// ------------------------------ HeapRm ------------------------------

Status HeapRm::Redo(const LogRecord& rec) {
  HeapOp op = static_cast<HeapOp>(rec.opcode);
  auto guard = pool_->FetchWrite(rec.page_id);
  if (!guard.ok()) return guard.status();
  if (guard->page_lsn() >= rec.lsn) return Status::OK();  // already applied
  SlottedPage sp(guard->data(), pool_->disk()->page_size());
  switch (op) {
    case HeapOp::kFormat:
      sp.Init(PageType::kHeap);
      break;
    case HeapOp::kLink: {
      BufferReader r(rec.redo);
      uint32_t next;
      if (!r.GetFixed32(&next)) return Status::Corruption("link redo");
      sp.set_next_page(next);
      break;
    }
    case HeapOp::kInsert: {
      HeapRecPayload p;
      OIB_RETURN_IF_ERROR(DecodeHeapPayload(rec.redo, &p));
      OIB_RETURN_IF_ERROR(sp.InsertAt(p.slot, p.bytes));
      break;
    }
    case HeapOp::kDelete: {
      HeapRecPayload p;
      OIB_RETURN_IF_ERROR(DecodeHeapPayload(rec.redo, &p));
      OIB_RETURN_IF_ERROR(sp.Delete(p.slot));
      break;
    }
    case HeapOp::kUpdate: {
      HeapRecPayload p;
      OIB_RETURN_IF_ERROR(DecodeHeapPayload(rec.redo, &p));
      OIB_RETURN_IF_ERROR(sp.Update(p.slot, p.bytes));
      break;
    }
  }
  guard->set_page_lsn(rec.lsn);
  return Status::OK();
}

Status HeapRm::Undo(Transaction* txn, const LogRecord& rec) {
  HeapOp op = static_cast<HeapOp>(rec.opcode);
  HeapRecPayload p;
  OIB_RETURN_IF_ERROR(DecodeHeapPayload(rec.redo, &p));
  Rid rid(rec.page_id, p.slot);

  // Figure 2: X-latch the target page; decide index-compensation actions
  // *under the latch* (the Current-RID comparison must be ordered with IB's
  // scan by the page latch) and log them (redo-only) BEFORE the CLR — a
  // crash in between re-runs the whole undo, and the compensations are
  // idempotent; the reverse order would lose them.  Then modify the
  // record, write the CLR, bump the page LSN, and unlatch.
  std::string before;  // image restored by this undo
  std::string after;   // image removed by this undo
  {
    auto guard = pool_->FetchWrite(rec.page_id);
    if (!guard.ok()) return guard.status();
    SlottedPage sp(guard->data(), pool_->disk()->page_size());

    switch (op) {
      case HeapOp::kInsert:
        after.assign(p.bytes.data(), p.bytes.size());
        break;
      case HeapOp::kDelete:
        before = rec.undo;
        break;
      case HeapOp::kUpdate:
        before = rec.undo;
        after.assign(p.bytes.data(), p.bytes.size());
        break;
      default:
        return Status::Corruption("undo of non-undoable heap op");
    }
    if (undo_hook_) {
      OIB_RETURN_IF_ERROR(undo_hook_(txn, rec.aux_id, op, rid, before,
                                     after, p.visible_count));
    }

    LogRecord clr;
    clr.rm_id = RmId::kHeap;
    clr.page_id = rec.page_id;
    clr.aux_id = rec.aux_id;
    switch (op) {
      case HeapOp::kInsert: {
        OIB_RETURN_IF_ERROR(sp.Delete(p.slot));
        clr.opcode = static_cast<uint8_t>(HeapOp::kDelete);
        EncodeHeapPayload(&clr.redo, p.slot, p.visible_count, {});
        break;
      }
      case HeapOp::kDelete: {
        OIB_RETURN_IF_ERROR(sp.InsertAt(p.slot, rec.undo));
        clr.opcode = static_cast<uint8_t>(HeapOp::kInsert);
        EncodeHeapPayload(&clr.redo, p.slot, p.visible_count, rec.undo);
        break;
      }
      case HeapOp::kUpdate: {
        OIB_RETURN_IF_ERROR(sp.Update(p.slot, rec.undo));
        clr.opcode = static_cast<uint8_t>(HeapOp::kUpdate);
        EncodeHeapPayload(&clr.redo, p.slot, p.visible_count, rec.undo);
        break;
      }
      default:
        return Status::Corruption("undo of non-undoable heap op");
    }
    OIB_RETURN_IF_ERROR(txns_->AppendClr(txn, rec, &clr));
    guard->set_page_lsn(clr.lsn);
  }
  return Status::OK();
}

}  // namespace oib
