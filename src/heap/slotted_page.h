// SlottedPage: classic slot-directory page layout for variable-length
// records, viewed over a raw page buffer.
//
// Layout (offsets within the page):
//   [0..8)    page LSN (owned by storage/page.h)
//   [8]       page type
//   [9]       flags (unused)
//   [10..12)  slot count
//   [12..14)  free_end — lowest byte offset used by record data
//   [14..18)  next page id (intrusive singly-linked file chain)
//   [18..)    slot directory, 4 bytes per slot: record offset u16, len u16
//   ...       free space
//   [free_end..page_size)  record data, growing downward
//
// Slots are never removed once allocated, so RIDs stay stable across
// deletes; a dead slot can be *reused* by a later insert, which is exactly
// the "T2 inserts a record at the same location (RID R)" situation in the
// paper's section 2.2.3 example.
//
// Space reservation: deleting a record marks the slot dead (high bit of
// its offset) but RETAINS its bytes.  The bytes are reclaimed only when
// the slot itself is reused (InsertAt) — and callers gate slot reuse on
// the record lock — so the undo of an uncommitted delete can always
// restore the record in place.  Without this, concurrent inserts could
// consume the freed bytes and make rollback fail with "page full".

#ifndef OIB_HEAP_SLOTTED_PAGE_H_
#define OIB_HEAP_SLOTTED_PAGE_H_

#include <string_view>

#include "common/status.h"
#include "common/types.h"

namespace oib {

enum class PageType : uint8_t {
  kFree = 0,
  kHeap = 1,
  kBtreeLeaf = 2,
  kBtreeInternal = 3,
  kSideFile = 4,
};

class SlottedPage {
 public:
  SlottedPage(char* data, size_t page_size)
      : data_(data), page_size_(page_size) {}

  // Formats a fresh page.
  void Init(PageType type);

  PageType type() const;
  uint16_t slot_count() const;
  PageId next_page() const;
  void set_next_page(PageId id);

  // Inserts a record, reusing a dead slot if one exists.  Fails with Busy
  // when the page lacks space (after compaction).  NOTE: reuses dead
  // slots unconditionally; callers that must respect the delete
  // reservation protocol enumerate dead slots themselves and use
  // InsertAt after claiming the RID lock.
  StatusOr<SlotId> Insert(std::string_view rec);

  // Places a record into a specific slot (must be dead or beyond the
  // current count).  Used by redo and by undo-of-delete, which must
  // restore the original RID.
  Status InsertAt(SlotId slot, std::string_view rec);

  // Marks a slot dead.  The record bytes become reclaimable garbage.
  Status Delete(SlotId slot);

  // Replaces a record in place (same RID).  Fails with Busy if the page
  // cannot hold the new image even after compaction.
  Status Update(SlotId slot, std::string_view rec);

  StatusOr<std::string_view> Get(SlotId slot) const;
  bool IsLive(SlotId slot) const;

  // Space available for a fresh insert that also needs a new slot entry.
  size_t FreeSpaceForInsert() const;

 private:
  static constexpr size_t kTypeOff = 8;
  static constexpr size_t kSlotCountOff = 10;
  static constexpr size_t kFreeEndOff = 12;
  static constexpr size_t kNextPageOff = 14;
  static constexpr size_t kSlotsOff = 18;
  static constexpr size_t kSlotSize = 4;

  uint16_t free_end() const;
  void set_free_end(uint16_t v);
  void set_slot_count(uint16_t v);
  uint16_t slot_offset(SlotId s) const;
  uint16_t slot_len(SlotId s) const;
  void set_slot(SlotId s, uint16_t off, uint16_t len);

  // Contiguous free bytes between slot directory end and free_end.
  size_t ContiguousFree() const;
  // Total reclaimable bytes (contiguous + dead-record garbage).
  size_t TotalFree() const;
  // Rewrites record data to squeeze out garbage.
  void Compact();

  char* data_;
  size_t page_size_;
};

}  // namespace oib

#endif  // OIB_HEAP_SLOTTED_PAGE_H_
