// HeapFile: a table's records, stored in a chain of slotted data pages.
//
// Operations follow the paper's execution model exactly:
//  * every record insert/delete/update X-latches the data page, applies the
//    change, writes an undo-redo log record that *includes the count of
//    visible indexes* (needed by SF's rollback logic, Figure 2), bumps the
//    page LSN, and unlatches — index/side-file maintenance happens after
//    the latch is released (Figure 1);
//  * the index builder extracts keys one page at a time under an S latch
//    and without any record locks (section 2.2.2); the extraction hook runs
//    while the latch is still held so SF can advance Current-RID atomically
//    with respect to updaters of that page.
//
// Heap pages are allocated without page-id reuse so that RID order agrees
// with chain (scan) order; SF's Target-RID < Current-RID visibility test
// (section 3.1) depends on this monotonicity.
//
// HeapRm is the heap's recovery handler: physical per-page redo, plus undo
// that restores the record and then invokes an optional hook so the record
// manager can run the Figure 2 index-compensation logic.

#ifndef OIB_HEAP_HEAP_FILE_H_
#define OIB_HEAP_HEAP_FILE_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/types.h"
#include "heap/slotted_page.h"
#include "storage/buffer_pool.h"
#include "txn/transaction_manager.h"

namespace oib {

// Heap RM opcodes.
enum class HeapOp : uint8_t {
  kInsert = 1,
  kDelete = 2,
  kUpdate = 3,
  kFormat = 4,  // NTA: initialize a fresh heap page
  kLink = 5,    // NTA: chain a new page after the old tail
};

class HeapFile {
 public:
  HeapFile(TableId id, BufferPool* pool, TransactionManager* txns)
      : table_id_(id), pool_(pool), txns_(txns) {}

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  // Allocates and formats the first page of a new heap.
  Status Create();
  // Opens an existing heap rooted at `first`, rebuilding in-memory hints
  // by walking the page chain.
  Status Open(PageId first);

  TableId table_id() const { return table_id_; }
  PageId first_page() const { return first_page_; }
  PageId tail_page() const { return tail_page_.load(); }

  // Logged record operations.  `visible_count_fn` is invoked *while the
  // data page is X-latched* with the affected RID and must return the
  // number of indexes visible to the modifying transaction; the result is
  // stored in the log record per Figure 1/2.  Evaluating under the latch
  // is what orders the SF Target-RID/Current-RID comparison against IB's
  // scan (section 3.1).  Old images are returned so the caller can
  // extract keys for index maintenance.
  using VisibleCountFn = std::function<uint32_t(const Rid&)>;

  // Called (under the page latch) before a dead slot is reused for a new
  // record: must claim the RID's lock for the inserting transaction and
  // return true, or return false if the slot is unavailable (typically
  // because its deleter has not committed yet — reusing it would make the
  // deleter's rollback unable to restore the record).  Fresh slots are
  // never subject to claiming.
  using TryClaimRidFn = std::function<bool(const Rid&)>;

  StatusOr<Rid> Insert(Transaction* txn, std::string_view rec,
                       const VisibleCountFn& visible_count_fn,
                       const TryClaimRidFn& try_claim = {});
  Status Delete(Transaction* txn, Rid rid,
                const VisibleCountFn& visible_count_fn,
                std::string* old_rec = nullptr);
  Status Update(Transaction* txn, Rid rid, std::string_view rec,
                const VisibleCountFn& visible_count_fn,
                std::string* old_rec = nullptr);

  // Places a record at a specific dead RID (used by tests reproducing the
  // paper's "T2 inserts a record at the same location (RID R)" scenario).
  Status InsertAt(Transaction* txn, Rid rid, std::string_view rec,
                  const VisibleCountFn& visible_count_fn);

  // Point read under an S latch.  NotFound for dead/absent records.
  StatusOr<std::string> Get(Rid rid) const;
  bool Exists(Rid rid) const;

  // IB extraction: S-latches `page`, collects all live records, invokes
  // `under_latch` (if any) while still latched — SF advances Current-RID
  // there — and returns the next page id in the chain (kInvalidPageId at
  // the chain's current end).
  StatusOr<PageId> ExtractPage(
      PageId page, std::vector<std::pair<Rid, std::string>>* out,
      const std::function<void()>& under_latch = {}) const;

  // Partition planning (BuildPipeline): returns the page ids in chain
  // order from the in-memory chain cache (rebuilt by Open's walk, extended
  // on allocation) — no page I/O, so planning never adds a physical pass
  // over the table.  Stops after `stop_at` when given (inclusive), else at
  // the chain's current end.  Because page ids are never reused and the
  // chain only grows at the tail, the returned prefix stays valid for the
  // whole build even while transactions extend the chain.
  StatusOr<std::vector<PageId>> ChainPages(
      PageId stop_at = kInvalidPageId) const;

  // Unlatched convenience full scan (tests / verification): fn per record.
  Status ForEach(
      const std::function<void(const Rid&, std::string_view)>& fn) const;

  uint64_t live_records() const { return live_records_.load(); }
  size_t page_count() const;

 private:
  // Finds or creates a page with room for `need` bytes; returns it
  // X-latched.
  StatusOr<WritePageGuard> PageForInsert(size_t need);
  // Allocates, formats, and links a fresh tail page (NTA-logged).
  StatusOr<PageId> ExtendChain();

  TableId table_id_;
  BufferPool* pool_;
  TransactionManager* txns_;

  PageId first_page_ = kInvalidPageId;
  std::atomic<PageId> tail_page_{kInvalidPageId};
  std::atomic<uint64_t> live_records_{0};

  // Taken under a heap page latch on the insert path (recording a
  // free-space hint while the page is still latched), hence ranked above
  // kPageLatch.
  mutable sync::Mutex hints_mu_{sync::LockRank::kHeapHints,
                                "heapfile.hints_mu"};
  // Pages believed to have insert room.
  std::vector<PageId> free_hints_ OIB_GUARDED_BY(hints_mu_);
  // The chain, in order (append-only).
  std::vector<PageId> chain_pages_ OIB_GUARDED_BY(hints_mu_);
  size_t page_count_ OIB_GUARDED_BY(hints_mu_) = 0;

  // Serializes chain extension; taken only with no page latch held, and
  // page latches, shard mutexes and the WAL are all acquired under it.
  sync::Mutex extend_mu_{sync::LockRank::kHeapExtend, "heapfile.extend_mu"};
};

// Recovery handler for all heap files (dispatch key: rec.aux_id == table,
// rec.page_id == page; redo is purely physical so no table lookup needed).
class HeapRm : public ResourceManager {
 public:
  // Figure 2 hook: invoked during undo of a record operation *while the
  // data page is X-latched and before the CLR is written*, so the record
  // manager can decide visibility under the latch and log idempotent
  // index compensations that survive a crash mid-undo.  original_op is
  // the HeapOp being undone; `before` is the record image being restored
  // (empty for undo-of-insert), `after` the image being removed (empty
  // for undo-of-delete).
  using UndoHook = std::function<Status(
      Transaction* txn, TableId table, HeapOp original_op, Rid rid,
      std::string_view before, std::string_view after,
      uint32_t logged_visible_count)>;

  HeapRm(BufferPool* pool, TransactionManager* txns)
      : pool_(pool), txns_(txns) {}

  void SetUndoHook(UndoHook hook) { undo_hook_ = std::move(hook); }

  RmId rm_id() const override { return RmId::kHeap; }
  Status Redo(const LogRecord& rec) override;
  Status Undo(Transaction* txn, const LogRecord& rec) override;

 private:
  BufferPool* pool_;
  TransactionManager* txns_;
  UndoHook undo_hook_;
};

// Payload helpers shared by HeapFile (logging) and HeapRm (recovery).
struct HeapRecPayload {
  SlotId slot = 0;
  uint32_t visible_count = 0;
  std::string_view bytes;  // record image (empty for delete redo)
};
void EncodeHeapPayload(std::string* out, SlotId slot, uint32_t visible_count,
                       std::string_view bytes);
Status DecodeHeapPayload(std::string_view in, HeapRecPayload* out);

}  // namespace oib

#endif  // OIB_HEAP_HEAP_FILE_H_
