#include "wal/log_manager.h"

#include <functional>

#include "common/coding.h"
#include "obs/trace.h"

namespace oib {

namespace {
// Each record is framed as [len:u32][payload:len].
constexpr size_t kFrameHeader = 4;
}  // namespace

LogManager::~LogManager() {
  if (metrics_ != nullptr) metrics_->DetachOwner(this);
}

void LogManager::AttachMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  registry->RegisterValueFn(
      "wal.records", [this] { return stats().records; }, this);
  registry->RegisterValueFn(
      "wal.bytes", [this] { return stats().bytes; }, this);
  registry->RegisterValueFn(
      "wal.flushes", [this] { return stats().flushes; }, this);
  registry->RegisterHistogram("wal.append_ns", &append_ns_, this);
  registry->RegisterHistogram("wal.flush_ns", &flush_ns_, this);
}

Status LogManager::Append(LogRecord* rec) {
  const bool timed =
      (append_tick_.fetch_add(1, std::memory_order_relaxed) &
       kAppendSampleMask) == 0;
  const uint64_t t0 = timed ? obs::MonotonicNanos() : 0;
  std::string payload;
  rec->SerializeTo(&payload);
  std::lock_guard<std::mutex> g(mu_);
  Lsn lsn = durable_.size() + tail_.size() + 1;
  rec->lsn = lsn;
  PutFixed32(&tail_, static_cast<uint32_t>(payload.size()));
  tail_.append(payload);
  ++stats_.records;
  stats_.bytes += kFrameHeader + payload.size();
  size_t rm = static_cast<size_t>(rec->rm_id);
  if (rm < stats_.records_by_rm.size()) {
    ++stats_.records_by_rm[rm];
    stats_.bytes_by_rm[rm] += kFrameHeader + payload.size();
  }
  if (timed) append_ns_.Record(obs::MonotonicNanos() - t0);
  return Status::OK();
}

Status LogManager::Flush(Lsn lsn) {
  uint64_t t0 = obs::MonotonicNanos();
  std::lock_guard<std::mutex> g(mu_);
  // Records never straddle the durable boundary (flush always moves the
  // whole tail), so a record is durable iff it starts inside durable_.
  if (lsn != kInvalidLsn && lsn - 1 < durable_.size()) return Status::OK();
  if (tail_.empty()) return Status::OK();
  durable_.append(tail_);
  tail_.clear();
  ++stats_.flushes;
  flush_ns_.Record(obs::MonotonicNanos() - t0);
  return Status::OK();
}

Status LogManager::ReadRecord(Lsn lsn, LogRecord* rec) const {
  std::lock_guard<std::mutex> g(mu_);
  if (lsn == kInvalidLsn) return Status::InvalidArgument("invalid lsn");
  size_t off = lsn - 1;
  auto read_from = [&](const std::string& region, size_t pos) -> Status {
    if (pos + kFrameHeader > region.size()) {
      return Status::Corruption("lsn beyond log end");
    }
    uint32_t len = DecodeFixed32(region.data() + pos);
    if (pos + kFrameHeader + len > region.size()) {
      return Status::Corruption("truncated record");
    }
    Status s = LogRecord::DeserializeFrom(
        std::string_view(region.data() + pos + kFrameHeader, len), rec);
    if (s.ok()) rec->lsn = lsn;
    return s;
  };
  if (off < durable_.size()) return read_from(durable_, off);
  return read_from(tail_, off - durable_.size());
}

Status LogManager::ScanDurable(
    Lsn start_lsn, const std::function<bool(const LogRecord&)>& fn) const {
  // Snapshot the durable region and run the callback with mu_ released:
  // redo callbacks latch pages, while the forward path appends to the
  // log under page latches — calling out with mu_ held would invert
  // that page-latch -> log-mu_ order.  Records flushed after the call
  // are not seen, which is the contract ("durable as of the call").
  std::string snapshot;
  {
    std::lock_guard<std::mutex> g(mu_);
    snapshot = durable_;
  }
  size_t pos = (start_lsn == kInvalidLsn) ? 0 : start_lsn - 1;
  while (pos + kFrameHeader <= snapshot.size()) {
    uint32_t len = DecodeFixed32(snapshot.data() + pos);
    if (pos + kFrameHeader + len > snapshot.size()) break;  // torn tail
    LogRecord rec;
    OIB_RETURN_IF_ERROR(LogRecord::DeserializeFrom(
        std::string_view(snapshot.data() + pos + kFrameHeader, len), &rec));
    rec.lsn = pos + 1;
    if (!fn(rec)) break;
    pos += kFrameHeader + len;
  }
  return Status::OK();
}

Lsn LogManager::next_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_.size() + tail_.size() + 1;
}

Lsn LogManager::flushed_lsn() const {
  std::lock_guard<std::mutex> g(mu_);
  return durable_.size() + 1;
}

void LogManager::DropUnflushed() {
  std::lock_guard<std::mutex> g(mu_);
  tail_.clear();
}

LogStats LogManager::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void LogManager::ResetStats() {
  std::lock_guard<std::mutex> g(mu_);
  stats_ = LogStats{};
}

}  // namespace oib
